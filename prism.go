// Package prism is the public API of the PRISM reproduction: a
// discrete-event simulation of the Linux NAPI receive path with PRISM's
// priority-based streamlined packet processing (Munikar, Lei, Lu, Rao —
// "PRISM: Streamlined Packet Processing for Containers with Flow
// Prioritization", ICDCS 2022).
//
// A Simulation wires the paper's testbed: a server machine whose receive
// pipeline (NIC → VXLAN decap → bridge → veth → socket) is simulated in
// full, Docker-style containers on a VXLAN overlay, sockperf-like traffic
// generators, and the three receive engines under study — the vanilla
// two-list NAPI, PRISM-batch, and PRISM-sync.
//
// Quick start:
//
//	sim := prism.NewSimulation(prism.WithMode(prism.ModeSync))
//	srv := sim.AddContainer("server")
//	sim.MarkHighPriority(srv.IP, 11111)
//	flow := sim.NewLatencyFlow(srv, 11111, 1000) // 1 kpps ping-pong
//	sim.NewBackgroundFlood(sim.AddContainer("noise"), 5001, 300_000)
//	sim.Run(time.Second)
//	fmt.Println(flow.Summary())
//
// The experiment harnesses that regenerate every figure of the paper live
// behind RunFig3 … RunFig13; `cmd/prismsim` exposes them on the command
// line.
package prism

import (
	"fmt"
	"io"
	"time"

	"prism/internal/cpu"
	"prism/internal/experiments"
	"prism/internal/netdev"
	"prism/internal/nic"
	"prism/internal/overlay"
	"prism/internal/pcap"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/socket"
	"prism/internal/softirq"
	"prism/internal/stats"
	"prism/internal/traffic"
)

// Mode selects the receive engine.
type Mode = prio.Mode

// Receive-engine modes.
const (
	// ModeVanilla is the unmodified Linux NAPI baseline (Fig. 2).
	ModeVanilla = prio.ModeVanilla
	// ModeBatch is PRISM-batch: dual per-device queues with batch-level
	// preemption via head insertion (Fig. 7).
	ModeBatch = prio.ModeBatch
	// ModeSync is PRISM-sync: run-to-completion processing of
	// high-priority packets through all stages in one softirq.
	ModeSync = prio.ModeSync
)

// Re-exported building blocks for advanced use.
type (
	// Costs is the central CPU cost model (see DefaultCosts).
	Costs = netdev.Costs
	// Summary is a latency distribution summary.
	Summary = stats.Summary
	// CDFPoint is one point of a latency CDF.
	CDFPoint = stats.CDFPoint
	// Container is a server-side container on the overlay network.
	Container = overlay.Container
	// IPv4 is a dotted-quad address.
	IPv4 = pkt.IPv4
	// Message is a datagram as seen by a container application.
	Message = socket.Message
	// App consumes messages delivered to a bound socket.
	App = socket.App
	// AppFunc adapts functions to App.
	AppFunc = socket.AppFunc
	// VirtualTime is a point in simulated time (nanoseconds).
	VirtualTime = sim.Time
)

// DefaultCosts returns the calibrated cost model for the paper's testbed
// (Xeon Silver 4114, ConnectX-5 100 GbE, Linux 5.4).
func DefaultCosts() *Costs { return netdev.DefaultCosts() }

// Option configures a Simulation.
type Option func(*config)

type config struct {
	mode    Mode
	seed    uint64
	costs   *netdev.Costs
	cstates []cpu.CState
	nic     nic.Config
	policy  string
}

// WithMode selects the receive engine (default ModeVanilla).
func WithMode(m Mode) Option { return func(c *config) { c.mode = m } }

// WithSeed sets the deterministic random seed (default 42).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithCosts overrides the CPU cost model.
func WithCosts(costs *Costs) Option { return func(c *config) { c.costs = costs } }

// WithoutPowerManagement disables C-states (always-on cores).
func WithoutPowerManagement() Option { return func(c *config) { c.cstates = nil } }

// WithNICModeration sets static interrupt moderation (rx-usecs/rx-frames).
func WithNICModeration(usecs time.Duration, frames int) Option {
	return func(c *config) {
		c.nic.RxUsecs = sim.Duration(usecs)
		c.nic.RxFrames = frames
	}
}

// WithoutGRO disables generic receive offload at the NIC.
func WithoutGRO() Option { return func(c *config) { c.nic.GRO = false } }

// WithDriverPriority enables the §VII-1 extension: NIC-level priority
// rings (hardware flow steering), which remove the stage-1 limitation.
// Effective only with PRISM modes; vanilla cannot use the extra ring.
func WithDriverPriority() Option { return func(c *config) { c.nic.PriorityRings = true } }

// WithPolicy overrides the softirq poll policy by registry name
// ("vanilla", "prism", or an ablation such as "headonly" or "dualq").
// By default the policy is derived from the mode; the override lets the
// paper's mechanisms be enabled one at a time. Panics at NewSimulation if
// the name is not registered (see Policies).
func WithPolicy(name string) Option { return func(c *config) { c.policy = name } }

// Policies returns the registered softirq poll policy names, sorted.
func Policies() []string { return softirq.Policies() }

// Simulation is a fully wired testbed instance.
type Simulation struct {
	eng    *sim.Engine
	host   *overlay.Host
	client *traffic.Client

	nextClientIdx int
}

// NewSimulation builds the paper's server machine with the given options.
func NewSimulation(opts ...Option) *Simulation {
	cfg := config{
		mode:    ModeVanilla,
		seed:    42,
		cstates: cpu.C1,
		nic: nic.Config{
			RxUsecs:      8 * sim.Microsecond,
			RxFrames:     32,
			AdaptiveIdle: 100 * sim.Microsecond,
			GRO:          true,
		},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	eng := sim.NewEngine(cfg.seed)
	host := overlay.NewHost(eng, overlay.Config{
		Mode:       cfg.mode,
		Policy:     cfg.policy,
		Costs:      cfg.costs,
		CStates:    cfg.cstates,
		AppCStates: cfg.cstates,
		NIC:        cfg.nic,
	})
	return &Simulation{eng: eng, host: host, client: traffic.NewClient(host)}
}

// AddContainer creates a container on the overlay with its own
// application core and network namespace.
func (s *Simulation) AddContainer(name string) *Container {
	return s.host.AddContainer(name)
}

// MarkHighPriority adds an (IP, port) rule to the runtime priority
// database — the paper's procfs interface. A zero IP or port is a
// wildcard.
func (s *Simulation) MarkHighPriority(ip IPv4, port uint16) {
	s.host.DB.Add(prio.Rule{IP: ip, Port: port})
}

// MarkPriorityLevel is the multi-level variant (§VII-3): level 1 is the
// paper's single high class; higher levels (up to 8) preempt lower ones
// within every high-priority queue.
func (s *Simulation) MarkPriorityLevel(ip IPv4, port uint16, level int) {
	s.host.DB.Add(prio.Rule{IP: ip, Port: port, Level: level})
}

// SetMode switches the PRISM operation mode at runtime (between ModeBatch
// and ModeSync; the engine choice vanilla-vs-PRISM is fixed at
// construction, as it is a kernel build in the paper).
func (s *Simulation) SetMode(m Mode) { s.host.DB.SetMode(m) }

// ApplyRule parses a textual "ip:port" rule (with "*" wildcards) and adds
// ("add") or removes ("del") it — the procfs write path of cmd/prismctl.
func (s *Simulation) ApplyRule(op, rule string) error {
	r, err := prio.ParseRule(rule)
	if err != nil {
		return err
	}
	switch op {
	case "add":
		s.host.DB.Add(r)
	case "del":
		s.host.DB.Remove(r)
	default:
		return fmt.Errorf("prism: unknown rule op %q", op)
	}
	return nil
}

// Rules returns the current priority database as sorted "ip:port" strings.
func (s *Simulation) Rules() []string {
	rules := s.host.DB.Rules()
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.String()
	}
	return out
}

// Addr builds an IPv4 address.
func Addr(a, b, c, d byte) IPv4 { return pkt.Addr(a, b, c, d) }

// LatencyFlow is a sockperf-style measured ping-pong flow.
type LatencyFlow struct {
	pp *traffic.PingPong
}

// NewLatencyFlow starts a rate-limited ping-pong flow from a fresh client
// container to the target container's UDP port, with a default echo
// server installed. Latency is recorded as RTT/2, as sockperf reports.
func (s *Simulation) NewLatencyFlow(target *Container, port uint16, pps float64) *LatencyFlow {
	src := overlay.ClientContainer(s.nextClientIdx, uint16(40000+s.nextClientIdx))
	s.nextClientIdx++
	pp := traffic.NewPingPong(s.eng, s.host, target, src, port, pps)
	if err := pp.InstallEcho(500 * sim.Nanosecond); err != nil {
		panic("prism: " + err.Error())
	}
	pp.Start(s.client, 0)
	return &LatencyFlow{pp: pp}
}

// Summary returns the measured latency distribution (RTT/2).
func (f *LatencyFlow) Summary() Summary { return f.pp.Hist.Summarize() }

// KernelSummary returns the server-side in-kernel residence distribution
// (NIC ring to socket buffer).
func (f *LatencyFlow) KernelSummary() Summary { return f.pp.KernelHist.Summarize() }

// CDF returns the measured latency CDF.
func (f *LatencyFlow) CDF() []CDFPoint { return f.pp.Hist.CDF() }

// Sent and Received report flow counters.
func (f *LatencyFlow) Sent() uint64 { return f.pp.Sent }

// Received reports replies seen by the client.
func (f *LatencyFlow) Received() uint64 { return f.pp.Received }

// BackgroundFlood is an open-loop low-priority traffic source.
type BackgroundFlood struct {
	fl *traffic.UDPFlood
}

// NewBackgroundFlood starts a sockperf-throughput-style UDP flood of small
// packets to the target container, with a counting sink installed.
func (s *Simulation) NewBackgroundFlood(target *Container, port uint16, pps float64) *BackgroundFlood {
	src := overlay.ClientContainer(s.nextClientIdx, uint16(40000+s.nextClientIdx))
	s.nextClientIdx++
	fl := traffic.NewUDPFlood(s.eng, s.host, target, src, port, pps)
	if err := fl.InstallSink(600 * sim.Nanosecond); err != nil {
		panic("prism: " + err.Error())
	}
	fl.Start(0)
	return &BackgroundFlood{fl: fl}
}

// DeliveredKpps reports the delivered background rate at time now.
func (b *BackgroundFlood) Delivered() uint64 { return b.fl.Delivered.Count() }

// Bind installs a custom application on a container port (UDP).
func (s *Simulation) Bind(ctr *Container, port uint16, app App) error {
	_, err := ctr.Bind(pkt.ProtoUDP, port, app, 4096)
	return err
}

// CapturePackets streams every wire frame (both directions) to w in pcap
// format; the capture opens in Wireshark with full dissection, since the
// simulator carries byte-accurate Ethernet/IPv4/UDP/TCP/VXLAN frames.
// Call before Run; returns the writer whose Packets counter reports the
// number captured.
func (s *Simulation) CapturePackets(w io.Writer) *pcap.Writer {
	pw := pcap.NewWriter(w)
	s.host.Tap = func(now sim.Time, frame []byte, _ bool) {
		// Ignore write errors here: a failing sink must not abort the
		// simulation; the caller sees the count and can Flush.
		_ = pw.WritePacket(now, frame)
	}
	return pw
}

// Run advances the simulation by d of virtual time.
func (s *Simulation) Run(d time.Duration) {
	if err := s.eng.Run(s.eng.Now() + sim.Duration(d)); err != nil {
		panic("prism: " + err.Error())
	}
}

// Now returns the current virtual time.
func (s *Simulation) Now() VirtualTime { return s.eng.Now() }

// ProcessingUtilization returns the packet-processing core's busy fraction
// since the last ResetUtilization call.
func (s *Simulation) ProcessingUtilization() float64 {
	return s.host.ProcCore.Utilization(s.eng.Now())
}

// ResetUtilization starts a fresh utilization window.
func (s *Simulation) ResetUtilization() {
	s.host.ProcCore.ResetWindow(s.eng.Now())
}

// ExperimentParams are the shared experiment knobs.
type ExperimentParams = experiments.Params

// DefaultExperimentParams returns the calibrated defaults used throughout
// EXPERIMENTS.md.
func DefaultExperimentParams() ExperimentParams { return experiments.Default() }

// The per-figure harnesses; see EXPERIMENTS.md for paper-vs-measured.
var (
	// RunFig3 measures vanilla overlay latency, idle vs busy.
	RunFig3 = experiments.Fig3
	// RunFig6 captures the NAPI poll-order tables.
	RunFig6 = experiments.Fig6
	// RunFig8 measures per-mode latency and single-core max throughput.
	RunFig8 = experiments.Fig8
	// RunFig9 measures overlay priority differentiation under load.
	RunFig9 = experiments.Fig9
	// RunFig10 repeats Fig9 on the host network (null result).
	RunFig10 = experiments.Fig10
	// RunFig11 sweeps background load.
	RunFig11 = experiments.Fig11
	// RunFig12 runs the memcached benchmark.
	RunFig12 = experiments.Fig12
	// RunFig13 runs the web-serving benchmark.
	RunFig13 = experiments.Fig13
	// RunPolicies runs the softirq poll-policy ablation (nil variants =
	// the default ladder: vanilla, dualq, headonly, prism-batch, -sync).
	RunPolicies = experiments.Policies
)
