package prism_test

import (
	"prism/internal/cpu"
	"prism/internal/nic"
	"prism/internal/overlay"
	"prism/internal/prio"
	"prism/internal/sim"
)

// newBenchHost builds a vanilla-mode host with the standard experiment NIC
// settings, toggling GRO.
func newBenchHost(eng *sim.Engine, gro bool) *overlay.Host {
	return overlay.NewHost(eng, overlay.Config{
		Mode:       prio.ModeVanilla,
		CStates:    cpu.C1,
		AppCStates: cpu.C1,
		NIC: nic.Config{
			RxUsecs:      8 * sim.Microsecond,
			RxFrames:     32,
			AdaptiveIdle: 100 * sim.Microsecond,
			GRO:          gro,
		},
	})
}

// benchClient returns a client-side endpoint for background flows.
func benchClient(idx int) overlay.RemoteEndpoint {
	return overlay.ClientContainer(idx, uint16(41000+idx))
}
