package prism_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"

	"prism/internal/cpu"
	"prism/internal/experiments"
	"prism/internal/nic"
	"prism/internal/overlay"
	"prism/internal/prio"
	"prism/internal/sim"
)

// newBenchHost builds a vanilla-mode host with the standard experiment NIC
// settings, toggling GRO.
func newBenchHost(eng *sim.Engine, gro bool) *overlay.Host {
	return overlay.NewHost(eng, overlay.Config{
		Mode:       prio.ModeVanilla,
		CStates:    cpu.C1,
		AppCStates: cpu.C1,
		NIC: nic.Config{
			RxUsecs:      8 * sim.Microsecond,
			RxFrames:     32,
			AdaptiveIdle: 100 * sim.Microsecond,
			GRO:          gro,
		},
	})
}

// benchClient returns a client-side endpoint for background flows.
func benchClient(idx int) overlay.RemoteEndpoint {
	return overlay.ClientContainer(idx, uint16(41000+idx))
}

// ---------------------------------------------------------------------------
// BENCH_results.json: machine-readable mirror of the benchmark output.

// benchRecord is one benchmark's entry in BENCH_results.json.
type benchRecord struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// PktsPerSec is the simulator's processing rate: (estimated) wire
	// frames one iteration simulates divided by wall-clock time per op.
	PktsPerSec float64            `json:"pkts_per_sec,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

var (
	benchMu  sync.Mutex
	benchOut = map[string]benchRecord{}
)

// record reports metrics on b (sorted, so output order is stable) and
// captures the measurement for BENCH_results.json. pktsPerOp is the
// number of wire frames one iteration simulates — estimated from the
// offered load unless the benchmark counts deliveries — and 0 skips the
// rate. The testing package re-invokes benchmarks while calibrating b.N;
// later invocations overwrite earlier entries, so the file keeps only the
// final, largest-N numbers.
func record(b *testing.B, pktsPerOp float64, metrics map[string]float64) {
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.ReportMetric(metrics[k], k)
	}
	ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	rec := benchRecord{Name: b.Name(), NsPerOp: ns, Metrics: metrics}
	if pktsPerOp > 0 && ns > 0 {
		rec.PktsPerSec = pktsPerOp * 1e9 / ns
	}
	benchMu.Lock()
	benchOut[rec.Name] = rec
	benchMu.Unlock()
}

// runPkts estimates the wire frames one latency-under-load run injects:
// a request+reply pair per high-priority probe plus one frame per
// background message, over warmup and the measured interval.
func runPkts(p experiments.Params, bg float64) float64 {
	d := (p.Warmup + p.Duration).Seconds()
	return (2*p.HighRate + bg) * d
}

// fig11Pkts sums runPkts over the sweep's mode×load grid.
func fig11Pkts(p experiments.Params, loads []float64) float64 {
	total := 0.0
	for _, l := range loads {
		total += runPkts(p, l)
	}
	return 2 * total
}

// TestMain writes BENCH_results.json next to the module root whenever
// benchmarks ran (go test -bench=...); plain test runs leave it untouched.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 && len(benchOut) > 0 {
		if err := writeBenchResults("BENCH_results.json"); err != nil {
			fmt.Fprintf(os.Stderr, "writing BENCH_results.json: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeBenchResults(path string) error {
	// Merge over an existing file so a filtered run (-bench=Fig09)
	// refreshes its own entries without dropping everyone else's.
	if buf, err := os.ReadFile(path); err == nil {
		var prev []benchRecord
		if json.Unmarshal(buf, &prev) == nil {
			for _, r := range prev {
				if _, fresh := benchOut[r.Name]; !fresh {
					benchOut[r.Name] = r
				}
			}
		}
	}
	recs := make([]benchRecord, 0, len(benchOut))
	for _, r := range benchOut {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	buf, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
