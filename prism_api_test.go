package prism_test

import (
	"bytes"
	"testing"
	"time"

	"prism"
	"prism/internal/pcap"
	"prism/internal/pkt"
)

func TestSimulationQuickstartPath(t *testing.T) {
	sim := prism.NewSimulation(prism.WithMode(prism.ModeSync), prism.WithSeed(7))
	srv := sim.AddContainer("server")
	sim.MarkHighPriority(srv.IP, 11111)
	flow := sim.NewLatencyFlow(srv, 11111, 1000)
	sim.NewBackgroundFlood(sim.AddContainer("noise"), 5001, 200_000)
	sim.Run(300 * time.Millisecond)

	if flow.Sent() < 290 || flow.Received() < flow.Sent()-5 {
		t.Fatalf("flow sent/received = %d/%d", flow.Sent(), flow.Received())
	}
	s := flow.Summary()
	if s.Count == 0 || s.Mean <= 0 {
		t.Fatalf("summary = %+v", s)
	}
	k := flow.KernelSummary()
	if k.Count == 0 || k.Mean >= s.Mean*2 {
		t.Fatalf("kernel summary implausible: %+v vs %+v", k, s)
	}
	if len(flow.CDF()) == 0 {
		t.Error("CDF empty")
	}
	if u := sim.ProcessingUtilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestSimulationModesDiffer(t *testing.T) {
	measure := func(mode prism.Mode) float64 {
		sim := prism.NewSimulation(prism.WithMode(mode), prism.WithSeed(7))
		srv := sim.AddContainer("server")
		sim.MarkHighPriority(srv.IP, 11111)
		flow := sim.NewLatencyFlow(srv, 11111, 1000)
		sim.NewBackgroundFlood(sim.AddContainer("noise"), 5001, 300_000)
		sim.Run(500 * time.Millisecond)
		return float64(flow.Summary().Mean)
	}
	vanilla := measure(prism.ModeVanilla)
	syncM := measure(prism.ModeSync)
	if syncM >= vanilla {
		t.Errorf("sync mean %.0f >= vanilla mean %.0f under load", syncM, vanilla)
	}
}

func TestRuleManagement(t *testing.T) {
	sim := prism.NewSimulation()
	if err := sim.ApplyRule("add", "10.0.0.1:80"); err != nil {
		t.Fatal(err)
	}
	if err := sim.ApplyRule("add", "*:443"); err != nil {
		t.Fatal(err)
	}
	if got := sim.Rules(); len(got) != 2 {
		t.Fatalf("rules = %v", got)
	}
	if err := sim.ApplyRule("del", "10.0.0.1:80"); err != nil {
		t.Fatal(err)
	}
	if got := sim.Rules(); len(got) != 1 || got[0] != "*:443" {
		t.Fatalf("rules = %v", got)
	}
	if err := sim.ApplyRule("add", "garbage"); err == nil {
		t.Error("bad rule accepted")
	}
	if err := sim.ApplyRule("replace", "*:1"); err == nil {
		t.Error("bad op accepted")
	}
}

func TestCustomApp(t *testing.T) {
	simu := prism.NewSimulation(prism.WithSeed(9))
	srv := simu.AddContainer("svc")
	var got int
	app := prism.AppFunc{
		Cost: func(prism.Message) prism.VirtualTime { return 1000 },
		Fn:   func(_ prism.VirtualTime, m prism.Message) { got++ },
	}
	if err := simu.Bind(srv, 9999, app); err != nil {
		t.Fatal(err)
	}
	// Drive it with a background flood targeted at the custom app's port.
	fl := simu.NewBackgroundFlood(srv, 9998, 50_000)
	_ = fl
	// The flood targets 9998 (its own sink); the custom app sees nothing.
	simu.Run(50 * time.Millisecond)
	if got != 0 {
		t.Errorf("custom app got %d stray messages", got)
	}
}

func TestOptions(t *testing.T) {
	c := prism.DefaultCosts()
	c.NICPacket *= 2
	sim := prism.NewSimulation(
		prism.WithCosts(c),
		prism.WithoutPowerManagement(),
		prism.WithoutGRO(),
		prism.WithNICModeration(16*time.Microsecond, 64),
		prism.WithSeed(1),
	)
	srv := sim.AddContainer("server")
	flow := sim.NewLatencyFlow(srv, 11111, 1000)
	sim.Run(100 * time.Millisecond)
	if flow.Received() == 0 {
		t.Fatal("no traffic with custom options")
	}
	// Without power management the idle latency must drop below the
	// default (C1 exits removed from both cores).
	def := prism.NewSimulation(prism.WithSeed(1))
	srvD := def.AddContainer("server")
	flowD := def.NewLatencyFlow(srvD, 11111, 1000)
	def.Run(100 * time.Millisecond)
	_ = flowD
}

func TestAddr(t *testing.T) {
	if prism.Addr(10, 1, 2, 3).String() != "10.1.2.3" {
		t.Error("Addr broken")
	}
}

func TestCapturePackets(t *testing.T) {
	var buf bytes.Buffer
	sim := prism.NewSimulation(prism.WithSeed(5))
	pw := sim.CapturePackets(&buf)
	srv := sim.AddContainer("server")
	flow := sim.NewLatencyFlow(srv, 11111, 1000)
	sim.Run(20 * time.Millisecond)
	if flow.Received() == 0 {
		t.Fatal("no traffic")
	}
	// Both directions captured: requests in, replies out.
	if pw.Packets < 2*flow.Received() {
		t.Errorf("captured %d packets for %d round trips", pw.Packets, flow.Received())
	}
	recs, err := pcap.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != pw.Packets {
		t.Fatalf("parsed %d records, wrote %d", len(recs), pw.Packets)
	}
	// Every captured frame is a dissectable VXLAN packet.
	for i, r := range recs {
		if !pkt.IsVXLAN(r.Frame) {
			t.Fatalf("record %d is not VXLAN", i)
		}
		if _, _, err := pkt.Decapsulate(r.Frame); err != nil {
			t.Fatalf("record %d does not decapsulate: %v", i, err)
		}
	}
	// Timestamps are non-decreasing.
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatalf("capture timestamps decrease at %d", i)
		}
	}
}
