// Command prismtrace prints Fig.-6-style NAPI poll-order traces: the
// sequence of device polls and poll-list states for a saturated overlay
// pipeline, under the vanilla and PRISM engines. It is the simulator's
// equivalent of the paper's eBPF tracing.
//
// Usage:
//
//	prismtrace               # both engines, 9 iterations
//	prismtrace -iters 20 -mode prism
//	prismtrace -json         # machine-readable observations
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"prism/internal/experiments"
	"prism/internal/napi"
	"prism/internal/trace"
)

// jsonObservation is the machine-readable form of one poll iteration;
// times are integer nanoseconds of virtual time.
type jsonObservation struct {
	Iteration uint64   `json:"iteration"`
	TimeNs    int64    `json:"time_ns"`
	Device    string   `json:"device"`
	PollList  []string `json:"poll_list"`
}

func toJSON(obs []napi.PollObservation) []jsonObservation {
	out := make([]jsonObservation, len(obs))
	for i, o := range obs {
		out[i] = jsonObservation{
			Iteration: o.Iteration,
			TimeNs:    int64(o.Time),
			Device:    o.Device,
			PollList:  o.PollList,
		}
	}
	return out
}

func main() {
	var (
		iters  = flag.Int("iters", 9, "loop iterations to capture")
		mode   = flag.String("mode", "both", "vanilla|prism|both")
		asJSON = flag.Bool("json", false, "emit observations as JSON instead of tables")
	)
	flag.Parse()

	p := experiments.Default()
	res := experiments.Fig6(p)

	clip := func(obs []napi.PollObservation) []napi.PollObservation {
		if len(obs) > *iters {
			obs = obs[:*iters]
		}
		return obs
	}
	show := func(title string, obs []napi.PollObservation) {
		rec := &trace.Recorder{Observations: clip(obs)}
		fmt.Println(rec.Table(title))
	}

	if *asJSON {
		out := map[string]any{}
		switch *mode {
		case "vanilla":
			out["vanilla"] = toJSON(clip(res.Vanilla))
		case "prism":
			out["prism"] = toJSON(clip(res.Prism))
		case "both":
			out["vanilla"] = toJSON(clip(res.Vanilla))
			out["prism"] = toJSON(clip(res.Prism))
			out["vanilla_interleaved"] = res.VanillaInterleaved
			out["prism_streamlined"] = res.PrismStreamlined
		default:
			fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
			os.Exit(2)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	switch *mode {
	case "vanilla":
		show("Vanilla NAPI (two poll lists, tail insertion)", res.Vanilla)
	case "prism":
		show("PRISM (single poll list, priority head insertion)", res.Prism)
	case "both":
		show("Vanilla NAPI (two poll lists, tail insertion)", res.Vanilla)
		show("PRISM (single poll list, priority head insertion)", res.Prism)
		fmt.Printf("vanilla interleaves batches: %v\nprism streamlined eth->br->veth: %v\n",
			res.VanillaInterleaved, res.PrismStreamlined)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
