// Command prismtrace prints Fig.-6-style NAPI poll-order traces: the
// sequence of device polls and poll-list states for a saturated overlay
// pipeline, under the vanilla and PRISM engines. It is the simulator's
// equivalent of the paper's eBPF tracing.
//
// Usage:
//
//	prismtrace               # both engines, 9 iterations
//	prismtrace -iters 20 -mode prism
package main

import (
	"flag"
	"fmt"
	"os"

	"prism/internal/experiments"
	"prism/internal/napi"
	"prism/internal/trace"
)

func main() {
	var (
		iters = flag.Int("iters", 9, "loop iterations to capture")
		mode  = flag.String("mode", "both", "vanilla|prism|both")
	)
	flag.Parse()

	p := experiments.Default()
	res := experiments.Fig6(p)

	show := func(title string, obs []napi.PollObservation) {
		if len(obs) > *iters {
			obs = obs[:*iters]
		}
		rec := &trace.Recorder{Observations: obs}
		fmt.Println(rec.Table(title))
	}
	switch *mode {
	case "vanilla":
		show("Vanilla NAPI (two poll lists, tail insertion)", res.Vanilla)
	case "prism":
		show("PRISM (single poll list, priority head insertion)", res.Prism)
	case "both":
		show("Vanilla NAPI (two poll lists, tail insertion)", res.Vanilla)
		show("PRISM (single poll list, priority head insertion)", res.Prism)
		fmt.Printf("vanilla interleaves batches: %v\nprism streamlined eth->br->veth: %v\n",
			res.VanillaInterleaved, res.PrismStreamlined)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
