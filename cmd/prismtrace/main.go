// Command prismtrace prints Fig.-6-style NAPI poll-order traces: the
// sequence of device polls and poll-list states for a saturated overlay
// pipeline, under the vanilla and PRISM engines. It is the simulator's
// equivalent of the paper's eBPF tracing.
//
// Usage:
//
//	prismtrace               # both engines, 9 iterations
//	prismtrace -iters 20 -mode prism
//	prismtrace -json         # machine-readable observations
//
// With -follow, prismtrace instead tails a live prismsim's /trace
// endpoint (see prismsim -listen): the NDJSON Chrome-trace stream is
// pretty-printed one event per line as checkpoints flush, until the run
// finishes or the connection drops. Combine with -json to pass the raw
// NDJSON through unformatted.
//
//	prismtrace -follow -url http://localhost:8080
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"prism/internal/experiments"
	"prism/internal/napi"
	"prism/internal/trace"
)

// jsonObservation is the machine-readable form of one poll iteration;
// times are integer nanoseconds of virtual time.
type jsonObservation struct {
	Iteration uint64   `json:"iteration"`
	TimeNs    int64    `json:"time_ns"`
	Device    string   `json:"device"`
	PollList  []string `json:"poll_list"`
}

func toJSON(obs []napi.PollObservation) []jsonObservation {
	out := make([]jsonObservation, len(obs))
	for i, o := range obs {
		out[i] = jsonObservation{
			Iteration: o.Iteration,
			TimeNs:    int64(o.Time),
			Device:    o.Device,
			PollList:  o.PollList,
		}
	}
	return out
}

func main() {
	var (
		iters   = flag.Int("iters", 9, "loop iterations to capture")
		mode    = flag.String("mode", "both", "vanilla|prism|both")
		asJSON  = flag.Bool("json", false, "emit observations as JSON instead of tables")
		follow  = flag.Bool("follow", false, "tail a live prismsim's /trace NDJSON stream and pretty-print it")
		liveURL = flag.String("url", "http://localhost:8080", "live operator surface base URL for -follow")
	)
	flag.Parse()

	if *follow {
		if err := followTrace(*liveURL, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	p := experiments.Default()
	res := experiments.Fig6(p)

	clip := func(obs []napi.PollObservation) []napi.PollObservation {
		if len(obs) > *iters {
			obs = obs[:*iters]
		}
		return obs
	}
	show := func(title string, obs []napi.PollObservation) {
		rec := &trace.Recorder{Observations: clip(obs)}
		fmt.Println(rec.Table(title))
	}

	if *asJSON {
		out := map[string]any{}
		switch *mode {
		case "vanilla":
			out["vanilla"] = toJSON(clip(res.Vanilla))
		case "prism":
			out["prism"] = toJSON(clip(res.Prism))
		case "both":
			out["vanilla"] = toJSON(clip(res.Vanilla))
			out["prism"] = toJSON(clip(res.Prism))
			out["vanilla_interleaved"] = res.VanillaInterleaved
			out["prism_streamlined"] = res.PrismStreamlined
		default:
			fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
			os.Exit(2)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	switch *mode {
	case "vanilla":
		show("Vanilla NAPI (two poll lists, tail insertion)", res.Vanilla)
	case "prism":
		show("PRISM (single poll list, priority head insertion)", res.Prism)
	case "both":
		show("Vanilla NAPI (two poll lists, tail insertion)", res.Vanilla)
		show("PRISM (single poll list, priority head insertion)", res.Prism)
		fmt.Printf("vanilla interleaves batches: %v\nprism streamlined eth->br->veth: %v\n",
			res.VanillaInterleaved, res.PrismStreamlined)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// traceEvent is the subset of a Chrome trace event -follow renders.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// followTrace tails the live surface's /trace NDJSON stream. Metadata
// rows name the process and per-device threads; span and instant rows
// are printed as they arrive, until the run finishes (the server closes
// the stream after its Finish) or the connection drops.
func followTrace(base string, raw bool) error {
	url := strings.TrimRight(base, "/") + "/trace"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}

	threads := map[int]string{} // tid → device (thread_name metadata)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if raw {
			fmt.Println(string(line))
			continue
		}
		var ev traceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("trace line %q: %w", line, err)
		}
		switch {
		case ev.Ph == "M":
			name, _ := ev.Args["name"].(string)
			switch ev.Name {
			case "process_name":
				fmt.Printf("# process %s\n", name)
			case "thread_name":
				threads[ev.Tid] = name
				fmt.Printf("# thread %d: %s\n", ev.Tid, name)
			}
		case ev.Ph == "X" && ev.Dur != nil:
			fmt.Printf("[%12.3fms] %-16s %-10s pkt=%-7v prio=%v %8.1fµs\n",
				ev.Ts/1000, threads[ev.Tid], ev.Name, ev.Args["pkt"], ev.Args["priority"], *ev.Dur)
		default:
			fmt.Printf("[%12.3fms] %-16s %-10s pkt=%-7v prio=%v\n",
				ev.Ts/1000, threads[ev.Tid], ev.Name, ev.Args["pkt"], ev.Args["priority"])
		}
	}
	return sc.Err()
}
