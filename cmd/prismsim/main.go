// Command prismsim runs the paper's experiments and prints the tables and
// series each figure reports.
//
// Usage:
//
//	prismsim -exp fig3          # one experiment
//	prismsim -exp all           # everything (takes a few minutes)
//	prismsim -exp fig9 -duration 2s -bg 250000 -seed 7
//	prismsim -exp fig3 -cdf     # also dump CDF points for plotting
//	prismsim -exp fig11 -parallel 4   # fan the sweep's points over 4 workers
//	prismsim -exp stages -metrics-out m.prom -trace-out t.json
//	prismsim -exp policies            # softirq poll-policy ablation ladder
//	prismsim -exp policies -policy headonly   # one policy variant only
//
// -parallel N runs multi-point experiments (fig9, fig10, fig11, scaling,
// and the sweeps) with up to N parameter points in flight, each on its own
// engine (internal/par). Results are bit-identical for every N.
//
// -metrics-out and -trace-out run the instrumented stages experiment (or
// accompany -exp stages) and export its observability data: metrics as a
// JSON snapshot (path ending in .json) or Prometheus text exposition
// (any other extension), and the span streams as Chrome trace-event JSON
// loadable in Perfetto / chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prism/internal/experiments"
	"prism/internal/obs"
	"prism/internal/sim"
	"prism/internal/stats"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: fig3|fig6|fig8|fig9|fig10|fig11|fig12|fig13|extdriver|batchsweep|scaling|stages|policies|chaos|all")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		duration  = flag.Duration("duration", time.Second, "measured duration (virtual time)")
		warmup    = flag.Duration("warmup", 100*time.Millisecond, "warmup (virtual time)")
		bg        = flag.Float64("bg", 300_000, "background rate (pps)")
		high      = flag.Float64("high", 1000, "high-priority flow rate (pps)")
		load      = flag.Float64("load", 270_000, "fig8 latency load (pps)")
		burst     = flag.Int("burst", 96, "background burst size (frames)")
		cdf       = flag.Bool("cdf", false, "dump CDF points for CDF figures")
		policy    = flag.String("policy", "all", "softirq poll policy for -exp policies: vanilla|dualq|headonly|prism|all")
		faultrate = flag.Float64("faultrate", 0.4, "chaos experiment's top fault intensity (the ladder is 0, r/4, r/2, r)")
		parallel  = flag.Int("parallel", 1, "worker count for multi-point experiments (deterministic: results identical for any value)")

		metricsOut = flag.String("metrics-out", "", "write the stages experiment's metrics here (.json = JSON snapshot, otherwise Prometheus text)")
		traceOut   = flag.String("trace-out", "", "write the stages experiment's span streams here as Chrome trace-event JSON")
	)
	flag.Parse()

	// Export flags imply the instrumented experiment.
	if (*metricsOut != "" || *traceOut != "") && *exp == "all" {
		*exp = "stages"
	}

	p := experiments.Default()
	p.Seed = *seed
	p.Duration = sim.Duration(*duration)
	p.Warmup = sim.Duration(*warmup)
	p.BGRate = *bg
	p.HighRate = *high
	p.LoadRate = *load
	p.BGBurst = *burst
	p.Workers = *parallel

	ok := false
	run := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fn()
			ok = true
		}
	}
	run("fig3", func() {
		r := experiments.Fig3(p)
		fmt.Println(r)
		if *cdf {
			fmt.Println("idle CDF (µs, fraction):")
			fmt.Print(stats.FormatCDF(r.IdleCDF))
			fmt.Println("busy CDF (µs, fraction):")
			fmt.Print(stats.FormatCDF(r.BusyCDF))
		}
	})
	run("fig6", func() { fmt.Println(experiments.Fig6(p)) })
	run("fig8", func() { fmt.Println(experiments.Fig8(p)) })
	run("fig9", func() {
		r := experiments.Fig9(p)
		fmt.Println(r)
		if *cdf {
			fmt.Println("idle CDF (µs, fraction):")
			fmt.Print(stats.FormatCDF(r.IdleCDF))
			for _, row := range r.Rows {
				fmt.Printf("%s busy CDF (µs, fraction):\n", row.Mode)
				fmt.Print(stats.FormatCDF(row.BusyCDF))
			}
		}
	})
	run("fig10", func() { fmt.Println(experiments.Fig10(p)) })
	run("fig11", func() { fmt.Println(experiments.Fig11(p, nil)) })
	run("fig12", func() { fmt.Println(experiments.Fig12(p)) })
	run("fig13", func() { fmt.Println(experiments.Fig13(p)) })
	run("extdriver", func() { fmt.Println(experiments.ExtDriver(p)) })
	run("policies", func() {
		r := experiments.Policies(p, experiments.PolicyByName(*policy))
		fmt.Println(r)
		if *cdf {
			for _, row := range r.Rows {
				fmt.Printf("%s busy CDF (µs, fraction):\n", row.Variant.Label())
				fmt.Print(stats.FormatCDF(row.BusyCDF))
			}
		}
	})
	run("chaos", func() {
		fmt.Println(experiments.Chaos(p, nil, experiments.ChaosRates(*faultrate)))
	})
	run("batchsweep", func() { fmt.Println(experiments.AblationBatch(p, nil)) })
	run("scaling", func() { fmt.Println(experiments.Scaling(p, nil)) })
	run("stages", func() {
		r := experiments.Stages(p)
		fmt.Println(r)
		if *metricsOut != "" {
			if err := writeMetrics(*metricsOut, r.MergedRegistry()); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics written to %s\n", *metricsOut)
		}
		if *traceOut != "" {
			if err := writeTrace(*traceOut, r.TraceProcesses()); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s (load in Perfetto / chrome://tracing)\n", *traceOut)
		}
	})

	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// writeMetrics exports a registry: JSON snapshot for .json paths,
// Prometheus text exposition otherwise.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if len(path) > 5 && path[len(path)-5:] == ".json" {
		b, err := obs.MetricsJSON(reg)
		if err != nil {
			return err
		}
		_, err = f.Write(b)
		return err
	}
	return obs.WritePrometheus(f, reg)
}

// writeTrace exports span streams as Chrome trace-event JSON.
func writeTrace(path string, procs []obs.TraceProcess) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return obs.WriteChromeTrace(f, procs...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
