// Command prismsim runs the paper's experiments and prints the tables and
// series each figure reports.
//
// Usage:
//
//	prismsim -exp fig3          # one experiment
//	prismsim -exp all           # everything (takes a few minutes)
//	prismsim -exp fig9 -duration 2s -bg 250000 -seed 7
//	prismsim -exp fig3 -cdf     # also dump CDF points for plotting
//	prismsim -exp fig11 -parallel 4   # fan the sweep's points over 4 workers
//	prismsim -exp stages -metrics-out m.prom -trace-out t.json
//	prismsim -exp policies            # softirq poll-policy ablation ladder
//	prismsim -exp policies -policy headonly   # one policy variant only
//	prismsim -exp cluster -hosts 16 -containers 1000   # datacenter run
//	prismsim -exp cluster -listen :8080    # + live operator surface
//	prismsim -exp failover                 # kill-and-recover grid
//	prismsim -scenario scenarios/incast.yaml   # declarative scenario file
//
// -scenario runs a declarative scenario file (YAML subset or JSON, see
// scenarios/ and internal/scenario) instead of -exp: the file picks the
// topology, traffic mix, fault timeline and SLO assertions, and the run
// exits non-zero when an assertion fails (1) or the file is malformed
// (2, with a path-qualified error). -parallel still applies; every other
// tuning flag comes from the file.
//
// -parallel N runs multi-point experiments (fig9, fig10, fig11, scaling,
// and the sweeps) with up to N parameter points in flight, each on its own
// engine (internal/par), and shards the cluster experiment's hosts and
// switches over N workers. Results are bit-identical for every N.
//
// -metrics-out and -trace-out run the instrumented stages experiment (or
// accompany -exp stages) and export its observability data: metrics as a
// JSON snapshot (path ending in .json) or Prometheus text exposition
// (any other extension), and the span streams as Chrome trace-event JSON
// loadable in Perfetto / chrome://tracing.
//
// -listen addr serves the live operator surface while experiments run:
// /metrics (Prometheus exposition of the latest virtual-time checkpoint),
// /capture (streaming pcap with container/priority selectors — pipe it
// into Wireshark), /trace (Chrome trace events as NDJSON), and /status
// (SSE run progress). The cluster and chaos experiments publish into it;
// attaching the surface never changes results — the determinism gates
// re-derive the golden digests with it enabled. -checkpoint sets the
// snapshot cadence in virtual time; -linger keeps the server answering
// for a real-time grace period after the runs finish.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"prism/internal/cluster"
	"prism/internal/experiments"
	"prism/internal/live"
	"prism/internal/obs"
	"prism/internal/scenario"
	"prism/internal/sim"
	"prism/internal/stats"
)

// appCtx carries the parsed flags into the experiment runners.
type appCtx struct {
	p experiments.Params

	cdf        bool
	policy     string
	faultrate  float64
	hosts      int
	containers int
	placement  string
	metricsOut string
	traceOut   string
}

// experiment is one registry entry: the -exp name and its runner. The
// usage string, validation, and dispatch all derive from the registry, so
// adding an experiment is one entry here and nothing else.
type experiment struct {
	name string
	run  func(a *appCtx)
}

// registry lists every experiment in presentation order.
var registry = []experiment{
	{"fig3", func(a *appCtx) {
		r := experiments.Fig3(a.p)
		fmt.Println(r)
		if a.cdf {
			fmt.Println("idle CDF (µs, fraction):")
			fmt.Print(stats.FormatCDF(r.IdleCDF))
			fmt.Println("busy CDF (µs, fraction):")
			fmt.Print(stats.FormatCDF(r.BusyCDF))
		}
	}},
	{"fig6", func(a *appCtx) { fmt.Println(experiments.Fig6(a.p)) }},
	{"fig8", func(a *appCtx) { fmt.Println(experiments.Fig8(a.p)) }},
	{"fig9", func(a *appCtx) {
		r := experiments.Fig9(a.p)
		fmt.Println(r)
		if a.cdf {
			fmt.Println("idle CDF (µs, fraction):")
			fmt.Print(stats.FormatCDF(r.IdleCDF))
			for _, row := range r.Rows {
				fmt.Printf("%s busy CDF (µs, fraction):\n", row.Mode)
				fmt.Print(stats.FormatCDF(row.BusyCDF))
			}
		}
	}},
	{"fig10", func(a *appCtx) { fmt.Println(experiments.Fig10(a.p)) }},
	{"fig11", func(a *appCtx) { fmt.Println(experiments.Fig11(a.p, nil)) }},
	{"fig12", func(a *appCtx) { fmt.Println(experiments.Fig12(a.p)) }},
	{"fig13", func(a *appCtx) { fmt.Println(experiments.Fig13(a.p)) }},
	{"extdriver", func(a *appCtx) { fmt.Println(experiments.ExtDriver(a.p)) }},
	{"policies", func(a *appCtx) {
		r := experiments.Policies(a.p, experiments.PolicyByName(a.policy))
		fmt.Println(r)
		if a.cdf {
			for _, row := range r.Rows {
				fmt.Printf("%s busy CDF (µs, fraction):\n", row.Variant.Label())
				fmt.Print(stats.FormatCDF(row.BusyCDF))
			}
		}
	}},
	{"chaos", func(a *appCtx) {
		fmt.Println(experiments.Chaos(a.p, nil, experiments.ChaosRates(a.faultrate)))
	}},
	{"batchsweep", func(a *appCtx) { fmt.Println(experiments.AblationBatch(a.p, nil)) }},
	{"scaling", func(a *appCtx) { fmt.Println(experiments.Scaling(a.p, nil)) }},
	{"cluster", func(a *appCtx) {
		cc := experiments.DefaultClusterConfig()
		if a.hosts > 0 {
			cc.Hosts = a.hosts
		}
		if a.containers > 0 {
			cc.Containers = a.containers
		}
		if a.placement != "" && a.placement != "all" {
			pol, err := cluster.ParsePlacement(a.placement)
			if err != nil {
				fatal(err)
			}
			cc.Placements = []cluster.Placement{pol}
		}
		fmt.Println(experiments.Cluster(a.p, cc))
	}},
	{"failover", func(a *appCtx) {
		fc := experiments.DefaultFailoverConfig()
		if a.hosts > 0 {
			fc.Hosts = a.hosts
		}
		if a.containers > 0 {
			fc.Containers = a.containers
		}
		if a.placement != "" && a.placement != "all" {
			pol, err := cluster.ParsePlacement(a.placement)
			if err != nil {
				fatal(err)
			}
			fc.Placements = []cluster.Placement{pol}
		}
		fmt.Println(experiments.Failover(a.p, fc))
	}},
	{"stages", func(a *appCtx) {
		r := experiments.Stages(a.p)
		fmt.Println(r)
		if a.metricsOut != "" {
			if err := writeMetrics(a.metricsOut, r.MergedRegistry()); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics written to %s\n", a.metricsOut)
		}
		if a.traceOut != "" {
			if err := writeTrace(a.traceOut, r.TraceProcesses()); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s (load in Perfetto / chrome://tracing)\n", a.traceOut)
		}
	}},
}

// expNames renders the registry's names for the usage string.
func expNames() string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return strings.Join(names, "|")
}

// selectExperiments resolves the -exp value against the registry: a
// single name, or "all" for the whole list. Unknown names fail fast with
// the valid set.
func selectExperiments(name string) ([]experiment, error) {
	if name == "all" {
		return registry, nil
	}
	for _, e := range registry {
		if e.name == name {
			return []experiment{e}, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (valid: %s|all)", name, expNames())
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: "+expNames()+"|all")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		duration  = flag.Duration("duration", time.Second, "measured duration (virtual time)")
		warmup    = flag.Duration("warmup", 100*time.Millisecond, "warmup (virtual time)")
		bg        = flag.Float64("bg", 300_000, "background rate (pps)")
		high      = flag.Float64("high", 1000, "high-priority flow rate (pps)")
		load      = flag.Float64("load", 270_000, "fig8 latency load (pps)")
		burst     = flag.Int("burst", 96, "background burst size (frames)")
		cdf       = flag.Bool("cdf", false, "dump CDF points for CDF figures")
		policy    = flag.String("policy", "all", "softirq poll policy for -exp policies: vanilla|dualq|headonly|prism|all")
		faultrate = flag.Float64("faultrate", 0.4, "chaos experiment's top fault intensity (the ladder is 0, r/4, r/2, r)")
		parallel  = flag.Int("parallel", 1, "worker count for multi-point and cluster experiments (deterministic: results identical for any value)")

		hosts      = flag.Int("hosts", 0, "cluster experiment host count (0 = default 16)")
		containers = flag.Int("containers", 0, "cluster experiment container count (0 = default 1000)")
		placement  = flag.String("placement", "all", "cluster placement policy: spread|pack|priority|all")

		metricsOut = flag.String("metrics-out", "", "write the stages experiment's metrics here (.json = JSON snapshot, otherwise Prometheus text)")
		traceOut   = flag.String("trace-out", "", "write the stages experiment's span streams here as Chrome trace-event JSON")

		scenarioFile = flag.String("scenario", "", "run a declarative scenario file (YAML/JSON, see scenarios/) instead of -exp")

		listen     = flag.String("listen", "", "serve the live operator surface (/metrics, /capture, /trace, /status) on this address while experiments run, e.g. :8080")
		checkpoint = flag.Duration("checkpoint", time.Duration(live.DefaultInterval), "live surface snapshot cadence (virtual time)")
		linger     = flag.Duration("linger", 0, "keep the live surface serving snapshots this long (real time) after the runs complete")
	)
	flag.Parse()

	if *scenarioFile != "" {
		if flagWasSet("exp") {
			fmt.Fprintln(os.Stderr, "prismsim: -scenario and -exp are mutually exclusive (the scenario file names its experiment or topology)")
			os.Exit(2)
		}
		runScenario(*scenarioFile, *parallel)
		return
	}

	// Export flags imply the instrumented experiment.
	if (*metricsOut != "" || *traceOut != "") && *exp == "all" {
		*exp = "stages"
	}

	selected, err := selectExperiments(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	p := experiments.Default()
	p.Seed = *seed
	p.Duration = sim.Duration(*duration)
	p.Warmup = sim.Duration(*warmup)
	p.BGRate = *bg
	p.HighRate = *high
	p.LoadRate = *load
	p.BGBurst = *burst
	p.Workers = *parallel

	if *listen != "" {
		lv := live.NewServer()
		if iv := sim.Duration(*checkpoint); iv > 0 {
			lv.Interval = iv
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		// The determinism gates diff stdout across runs; the bound address
		// (often an ephemeral port) goes to stderr.
		fmt.Fprintf(os.Stderr, "live: listening on http://%s\n", ln.Addr())
		go func() {
			if err := lv.Serve(ln); err != nil {
				fmt.Fprintln(os.Stderr, "live:", err)
			}
		}()
		p.Live = lv
	}

	a := &appCtx{
		p:          p,
		cdf:        *cdf,
		policy:     *policy,
		faultrate:  *faultrate,
		hosts:      *hosts,
		containers: *containers,
		placement:  *placement,
		metricsOut: *metricsOut,
		traceOut:   *traceOut,
	}
	for _, e := range selected {
		e.run(a)
	}

	if lv := a.p.Live; lv != nil {
		lv.Finish()
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "live: runs complete; serving snapshots for %v\n", *linger)
			time.Sleep(*linger)
		}
		lv.Close()
	}
}

// flagWasSet reports whether the user passed the named flag explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runScenario loads, compiles and executes a scenario file. Malformed
// files exit 2 with the decoder's path-qualified error; a run whose SLO
// assertions fail exits 1 after printing the measured values.
func runScenario(path string, parallel int) {
	s, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prismsim:", err)
		os.Exit(2)
	}
	plan, err := scenario.Compile(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prismsim: %s: %v\n", path, err)
		os.Exit(2)
	}
	// The file's workers field is the default; an explicit -parallel wins.
	if flagWasSet("parallel") {
		plan.Params.Workers = parallel
	}
	res, err := plan.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "prismsim: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Print(res.String())
	if !res.Passed() {
		fmt.Fprintf(os.Stderr, "prismsim: %s: SLO assertions failed\n", path)
		os.Exit(1)
	}
}

// writeMetrics exports a registry: JSON snapshot for .json paths,
// Prometheus text exposition otherwise.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if len(path) > 5 && path[len(path)-5:] == ".json" {
		b, err := obs.MetricsJSON(reg)
		if err != nil {
			return err
		}
		_, err = f.Write(b)
		return err
	}
	return obs.WritePrometheus(f, reg)
}

// writeTrace exports span streams as Chrome trace-event JSON.
func writeTrace(path string, procs []obs.TraceProcess) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return obs.WriteChromeTrace(f, procs...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
