package main

import (
	"strings"
	"testing"
)

// The registry is the single source of truth for -exp: names must be
// unique and non-empty, every runner wired, and the usage string derived
// from it must list each one.
func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range registry {
		if e.name == "" {
			t.Error("registry entry with empty name")
		}
		if e.name == "all" {
			t.Error(`"all" is reserved for the whole registry and cannot name an entry`)
		}
		if seen[e.name] {
			t.Errorf("duplicate registry entry %q", e.name)
		}
		seen[e.name] = true
		if e.run == nil {
			t.Errorf("registry entry %q has no runner", e.name)
		}
	}
	if !seen["cluster"] {
		t.Error("registry is missing the cluster experiment")
	}

	usage := expNames()
	for _, e := range registry {
		if !strings.Contains(usage, e.name) {
			t.Errorf("usage string %q omits experiment %q", usage, e.name)
		}
	}
}

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil || len(all) != len(registry) {
		t.Fatalf(`selectExperiments("all") = %d entries, err %v; want the full registry`, len(all), err)
	}

	one, err := selectExperiments("cluster")
	if err != nil || len(one) != 1 || one[0].name != "cluster" {
		t.Fatalf(`selectExperiments("cluster") = %v, err %v`, one, err)
	}

	if _, err := selectExperiments("fig99"); err == nil {
		t.Fatal("unknown experiment name accepted")
	} else if msg := err.Error(); !strings.Contains(msg, "fig99") || !strings.Contains(msg, "cluster") {
		t.Fatalf("error should name the bad input and list valid experiments, got: %v", msg)
	}
}
