// Command prismctl demonstrates PRISM's control plane — the paper's
// procfs interface (§IV-A) — as a scripted scenario: it starts a loaded
// simulation, then applies the given control commands at the given virtual
// times and reports the effect on the measured flow.
//
// Commands mirror the procfs writes:
//
//	add <ip:port>       add a high-priority rule ("*" wildcards allowed)
//	del <ip:port>       remove a rule
//	mode <batch|sync>   switch the PRISM operation mode
//	show                print the rule database
//
// Usage:
//
//	prismctl -at 1s "add 172.17.0.2:11111" -at 2s "mode sync"
//
// Each -at pair (a duration, then a command) takes effect at that virtual
// time; the simulation runs for
// -total (default 3s) and prints a windowed latency summary per phase.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"prism"
)

type action struct {
	at  time.Duration
	cmd string
}

type actionFlags struct {
	actions []action
	pending time.Duration
}

func (a *actionFlags) String() string { return "" }

func (a *actionFlags) Set(v string) error {
	if a.pending == 0 {
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("expected a duration before a command: %w", err)
		}
		a.pending = d
		return nil
	}
	a.actions = append(a.actions, action{at: a.pending, cmd: v})
	a.pending = 0
	return nil
}

func main() {
	var acts actionFlags
	flag.Var(&acts, "at", "virtual time, then (in the next -at) the command")
	total := flag.Duration("total", 3*time.Second, "total virtual run time")
	pcapPath := flag.String("pcap", "", "write all wire traffic to this pcap file (opens in Wireshark)")
	policy := flag.String("policy", "", "softirq poll policy override (vanilla|prism|headonly|dualq); default derives from the mode")
	flag.Parse()

	opts := []prism.Option{prism.WithMode(prism.ModeBatch)}
	if *policy != "" {
		known := false
		for _, name := range prism.Policies() {
			known = known || name == *policy
		}
		if !known {
			fmt.Fprintf(os.Stderr, "unknown policy %q (have %v)\n", *policy, prism.Policies())
			os.Exit(2)
		}
		opts = append(opts, prism.WithPolicy(*policy))
	}
	sim := prism.NewSimulation(opts...)
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		pw := sim.CapturePackets(f)
		defer func() {
			_ = pw.Flush()
			fmt.Printf("captured %d frames to %s\n", pw.Packets, *pcapPath)
		}()
	}
	srv := sim.AddContainer("svc")
	flow := sim.NewLatencyFlow(srv, 11111, 1000)
	sim.NewBackgroundFlood(sim.AddContainer("noise"), 5001, 300_000)
	fmt.Printf("service container at %s; measured flow on port 11111\n", srv.IP)

	if len(acts.actions) == 0 {
		acts.actions = []action{
			{at: time.Second, cmd: fmt.Sprintf("add %s:11111", srv.IP)},
			{at: 2 * time.Second, cmd: "mode sync"},
		}
		fmt.Println("(no -at flags given; running the default scenario)")
	}

	var elapsed time.Duration
	for _, a := range acts.actions {
		if a.at < elapsed {
			fmt.Fprintf(os.Stderr, "actions must be time-ordered\n")
			os.Exit(2)
		}
		sim.Run(a.at - elapsed)
		elapsed = a.at
		if err := apply(sim, srv, a.cmd); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		s := flow.Summary()
		fmt.Printf("t=%-6s applied %-28q  cumulative p50=%6.1fµs p99=%6.1fµs\n",
			a.at, a.cmd, s.P50.Micros(), s.P99.Micros())
	}
	if *total > elapsed {
		sim.Run(*total - elapsed)
	}
	s := flow.Summary()
	fmt.Printf("final: n=%d p50=%.1fµs mean=%.1fµs p99=%.1fµs\n",
		s.Count, s.P50.Micros(), s.Mean.Micros(), s.P99.Micros())
}

func apply(sim *prism.Simulation, srv *prism.Container, cmd string) error {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return fmt.Errorf("empty command")
	}
	switch fields[0] {
	case "add", "del":
		if len(fields) != 2 {
			return fmt.Errorf("%s needs ip:port", fields[0])
		}
		return sim.ApplyRule(fields[0], fields[1])
	case "mode":
		if len(fields) != 2 {
			return fmt.Errorf("mode needs batch|sync")
		}
		switch fields[1] {
		case "batch":
			sim.SetMode(prism.ModeBatch)
		case "sync":
			sim.SetMode(prism.ModeSync)
		default:
			return fmt.Errorf("unknown mode %q", fields[1])
		}
		return nil
	case "show":
		for _, r := range sim.Rules() {
			fmt.Printf("  rule %s\n", r)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}
