// Command pcapdump validates and summarizes a pcap capture — the CI
// smoke check for /capture streams and the quick look when Wireshark is
// overkill. It reads a classic pcap (either timestamp magic) from a file
// or stdin, exits nonzero if the capture does not parse, and prints one
// summary line; -v adds a per-record listing with nanosecond virtual
// timestamps.
//
// Usage:
//
//	pcapdump capture.pcap
//	curl -s "localhost:8080/capture?prio=hi&max=50" | pcapdump -v -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"prism/internal/pcap"
	"prism/internal/sim"
)

func main() {
	verbose := flag.Bool("v", false, "list every record")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	recs, err := pcap.Parse(in)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}

	var bytes int
	for i, rec := range recs {
		bytes += len(rec.Frame)
		if *verbose {
			fmt.Printf("%6d  %15d ns  %5d bytes\n", i, int64(rec.At), len(rec.Frame))
		}
	}
	span := ""
	if n := len(recs); n > 0 {
		span = fmt.Sprintf(", %v .. %v", sim.Time(recs[0].At), sim.Time(recs[n-1].At))
	}
	fmt.Printf("%s: valid pcap, %d packets, %d bytes%s\n", name, len(recs), bytes, span)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
