// Command benchgate compares a fresh benchmark run against a committed
// BENCH_results.json baseline and fails when any shared benchmark's ns/op
// regressed by more than the threshold. CI copies the committed file
// aside, reruns the gated benchmarks (which rewrite BENCH_results.json in
// place), and then invokes this gate:
//
//	cp BENCH_results.json /tmp/baseline.json
//	go test -run XXX -bench "$(go run ./cmd/benchgate -print-gated-regex)" -benchmem .
//	go run ./cmd/benchgate -baseline /tmp/baseline.json
//
// The gated set lives in one place — gatedBenchRegex below — and CI
// derives its -bench expression from -print-gated-regex, so adding a
// benchmark to the gate is one edit here and nothing else.
//
// Benchmarks present on only one side are reported but never fail the
// gate, so adding or retiring a benchmark does not need a baseline dance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// gatedBenchRegex selects the regression-gated benchmarks: the pooled
// softirq hot path, the burst ablation, the cluster sweep, and the event
// queue microbenchmarks guarding the timing wheel. This is the single
// source of truth — the CI bench job runs exactly this set.
const gatedBenchRegex = "BenchmarkSoftirqPoll|BenchmarkAblationBurst|BenchmarkClusterSweep|BenchmarkEventQueue"

type record struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

func load(path string) (map[string]record, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(buf, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]record, len(recs))
	for _, r := range recs {
		out[r.Name] = r
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline BENCH_results.json")
	current := flag.String("current", "BENCH_results.json", "freshly generated results")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional ns/op regression")
	printRegex := flag.Bool("print-gated-regex", false, "print the gated benchmark -bench regex and exit")
	flag.Parse()
	if *printRegex {
		fmt.Println(gatedBenchRegex)
		return
	}
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Printf("  new       %-60s %14.0f ns/op\n", name, c.NsPerOp)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		if delta > *threshold {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("  %-9s %-60s %14.0f -> %14.0f ns/op (%+.1f%%)\n",
			verdict, name, b.NsPerOp, c.NsPerOp, 100*delta)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: ns/op regressed more than %.0f%% against %s\n",
			100**threshold, *baseline)
		os.Exit(1)
	}
}
