// Package prism_test holds the top-level benchmark harness: one benchmark
// per table/figure of the paper's evaluation (§V), plus ablations of the
// design choices called out in DESIGN.md. Each benchmark runs the full
// experiment at a reduced duration and reports the figure's headline
// quantities as custom metrics, so
//
//	go test -bench=Fig -benchmem
//
// regenerates the whole evaluation in miniature; cmd/prismsim runs the
// full-length versions.
package prism_test

import (
	"testing"

	"prism"
	"prism/internal/cluster"
	"prism/internal/experiments"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/traffic"
)

// benchParams shortens runs so each b.N iteration stays subsecond.
func benchParams() experiments.Params {
	p := experiments.Default()
	p.Warmup = 20 * sim.Millisecond
	p.Duration = 150 * sim.Millisecond
	return p
}

// BenchmarkFig03 — latency of the vanilla overlay with and without
// background traffic (busy/idle ratios as metrics).
func BenchmarkFig03(b *testing.B) {
	p := benchParams()
	var res experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig3(p)
	}
	record(b, runPkts(p, 0)+runPkts(p, p.BGRate), map[string]float64{
		"busy/idle-p50": res.MedianRatio,
		"busy/idle-p99": res.P99Ratio,
		"busy-mean-µs":  res.Busy.Mean.Micros(),
	})
}

// BenchmarkFig06 — poll-order trace capture (device order booleans).
func BenchmarkFig06(b *testing.B) {
	p := benchParams()
	var res experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig6(p)
	}
	bool01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	record(b, 2*runPkts(p, p.BGRate), map[string]float64{
		"vanilla-interleaved": bool01(res.VanillaInterleaved),
		"prism-streamlined":   bool01(res.PrismStreamlined),
	})
}

// BenchmarkFig08 — per-mode latency and single-core max throughput.
func BenchmarkFig08(b *testing.B) {
	p := benchParams()
	var res experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig8(p)
	}
	metrics := map[string]float64{}
	for _, row := range res.Rows {
		metrics[row.Mode.String()+"-kpps"] = row.MaxKpps
		metrics[row.Mode.String()+"-p50µs"] = row.Latency.P50.Micros()
	}
	record(b, 3*runPkts(p, p.LoadRate), metrics)
}

// BenchmarkFig09 — overlay priority differentiation under background load.
func BenchmarkFig09(b *testing.B) {
	p := benchParams()
	var res experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig9(p)
	}
	record(b, runPkts(p, 0)+3*runPkts(p, p.BGRate), map[string]float64{
		"sync-avg-cut-%":      100 * res.Improvement(prio.ModeSync, experiments.MeanOf),
		"sync-p99-cut-%":      100 * res.Improvement(prio.ModeSync, experiments.P99Of),
		"sync-kern-avg-cut-%": 100 * res.KernelImprovement(prio.ModeSync, experiments.MeanOf),
		"batch-avg-cut-%":     100 * res.Improvement(prio.ModeBatch, experiments.MeanOf),
	})
}

// BenchmarkFig10 — the host-network null result.
func BenchmarkFig10(b *testing.B) {
	p := benchParams()
	var res experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig10(p)
	}
	record(b, runPkts(p, 0)+3*runPkts(p, p.BGRate), map[string]float64{
		"sync-avg-cut-%": 100 * res.Improvement(prio.ModeSync, experiments.MeanOf),
	})
}

// BenchmarkFig11 — the background-load sweep (three representative loads).
func BenchmarkFig11(b *testing.B) {
	p := benchParams()
	loads := []float64{10_000, 150_000, 300_000}
	var res experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig11(p, loads)
	}
	metrics := map[string]float64{}
	for _, s := range res.Series {
		last := s.Points[len(s.Points)-1]
		metrics[s.Mode.String()+"-avg-µs@300k"] = last.Avg.Micros()
	}
	record(b, fig11Pkts(p, loads), metrics)
}

// BenchmarkFig12 — memcached/memaslap.
func BenchmarkFig12(b *testing.B) {
	p := benchParams()
	var res experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig12(p)
	}
	vanBusy, _ := res.Find(prio.ModeVanilla, true)
	synBusy, _ := res.Find(prio.ModeSync, true)
	vanIdle, _ := res.Find(prio.ModeVanilla, false)
	metrics := map[string]float64{}
	if vanIdle.KOps > 0 {
		metrics["vanilla-busy/idle-tput"] = vanBusy.KOps / vanIdle.KOps
	}
	if vanBusy.KOps > 0 {
		metrics["sync/vanilla-busy-tput"] = synBusy.KOps / vanBusy.KOps
	}
	record(b, 0, metrics)
}

// BenchmarkFig13 — nginx/wrk2.
func BenchmarkFig13(b *testing.B) {
	p := benchParams()
	var res experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig13(p)
	}
	vanBusy, _ := res.Find(prio.ModeVanilla, true)
	metrics := map[string]float64{}
	for _, mode := range []prio.Mode{prio.ModeBatch, prio.ModeSync} {
		row, _ := res.Find(mode, true)
		if vanBusy.Latency.Mean > 0 {
			metrics[mode.String()+"-avg-cut-%"] = 100 * (1 - float64(row.Latency.Mean)/float64(vanBusy.Latency.Mean))
		}
	}
	record(b, 0, metrics)
}

// ---------------------------------------------------------------------------
// Ablations: the design choices DESIGN.md calls out.

// ablate runs the Fig. 9 rig under a cost/config mutation and reports the
// sync-mode improvement.
func ablate(b *testing.B, mutate func(*experiments.Params)) {
	p := benchParams()
	if mutate != nil {
		mutate(&p)
	}
	var res experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig9(p)
	}
	record(b, runPkts(p, 0)+3*runPkts(p, p.BGRate), map[string]float64{
		"sync-avg-cut-%":  100 * res.Improvement(prio.ModeSync, experiments.MeanOf),
		"sync-kern-cut-%": 100 * res.KernelImprovement(prio.ModeSync, experiments.MeanOf),
	})
}

// BenchmarkAblationBurst sweeps background burstiness: PRISM's advantage
// shrinks as the stage-1 FIFO share of the delay grows.
func BenchmarkAblationBurst(b *testing.B) {
	for _, burst := range []int{32, 96, 192} {
		burst := burst
		b.Run(benchName("burst", burst), func(b *testing.B) {
			ablate(b, func(p *experiments.Params) { p.BGBurst = burst })
		})
	}
}

// BenchmarkAblationLoad sweeps the background rate.
func BenchmarkAblationLoad(b *testing.B) {
	for _, rate := range []float64{150_000, 300_000, 350_000} {
		rate := rate
		b.Run(benchName("kpps", int(rate/1000)), func(b *testing.B) {
			ablate(b, func(p *experiments.Params) { p.BGRate = rate })
		})
	}
}

// BenchmarkAblationRawPipeline measures the raw simulator event rate for a
// saturated three-stage pipeline — the engine-level cost of the framework.
func BenchmarkAblationRawPipeline(b *testing.B) {
	for _, mode := range []prio.Mode{prio.ModeVanilla, prio.ModeBatch, prio.ModeSync} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			sim := prism.NewSimulation(prism.WithMode(mode), prism.WithSeed(3))
			srv := sim.AddContainer("sink")
			sim.MarkHighPriority(srv.IP, 11111)
			fl := sim.NewBackgroundFlood(srv, 11111, 600_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Run(1_000_000) // 1ms of virtual time per iteration
			}
			b.StopTimer()
			if fl.Delivered() == 0 {
				b.Fatal("pipeline delivered nothing")
			}
			record(b, float64(fl.Delivered())/float64(b.N), nil)
		})
	}
}

// BenchmarkSoftirqPoll measures the unified softirq runtime's poll loop
// under a saturating flood of prioritized traffic, one sub-benchmark per
// registered poll policy — vanilla and prism exercise the paper's two
// engines through the shared runtime; headonly and dualq the ablations.
// The per-op cost is the runtime+policy overhead of simulating ~1ms of
// saturated receive; pkts_per_sec is the simulator's processing rate.
func BenchmarkSoftirqPoll(b *testing.B) {
	variants := []struct {
		name, policy string
		mode         prism.Mode
	}{
		{"vanilla", "vanilla", prism.ModeVanilla},
		{"prism-batch", "prism", prism.ModeBatch},
		{"prism-sync", "prism", prism.ModeSync},
		{"headonly", "headonly", prism.ModeBatch},
		{"dualq", "dualq", prism.ModeBatch},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			sim := prism.NewSimulation(prism.WithMode(v.mode),
				prism.WithPolicy(v.policy), prism.WithSeed(3))
			srv := sim.AddContainer("sink")
			sim.MarkHighPriority(srv.IP, 11111)
			fl := sim.NewBackgroundFlood(srv, 11111, 600_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Run(1_000_000) // 1ms of virtual time per iteration
			}
			b.StopTimer()
			if fl.Delivered() == 0 {
				b.Fatal("poll loop delivered nothing")
			}
			record(b, float64(fl.Delivered())/float64(b.N), nil)
		})
	}
}

// BenchmarkAblationGRO compares TCP background cost with and without GRO.
func BenchmarkAblationGRO(b *testing.B) {
	for _, gro := range []bool{true, false} {
		gro := gro
		name := "gro-on"
		if !gro {
			name = "gro-off"
		}
		b.Run(name, func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				util = tcpBGUtil(gro)
			}
			record(b, 0, map[string]float64{"proc-core-util-%": 100 * util})
		})
	}
}

// tcpBGUtil measures processing-core utilization under a TCP bulk
// background, built on internals (the facade keeps the public API small).
func tcpBGUtil(gro bool) float64 {
	eng := sim.NewEngine(3)
	host := newBenchHost(eng, gro)
	ctr := host.AddContainer("bg")
	st := traffic.NewTCPStream(eng, host, ctr, benchClient(1), 5201, 30_000)
	if err := st.InstallSink(600); err != nil {
		panic(err)
	}
	host.ProcCore.ResetWindow(0)
	st.Start(0)
	if err := eng.Run(100 * sim.Millisecond); err != nil {
		panic(err)
	}
	return host.ProcCore.Utilization(eng.Now())
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "-0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "-" + string(buf[i:])
}

// ---------------------------------------------------------------------------
// BenchmarkEventQueue measures the engine's event queue — the hierarchical
// timing wheel — in isolation, one dispatched event per op. The three
// workloads bracket what the datapath generates: churn is the softirq
// steady state (a few hundred outstanding events, microsecond-scale
// delays), cancel-rearm is the kernel-timer pattern (most timers cancelled
// and re-armed before firing), and cascade-far forces events through the
// coarse wheels and the overflow level. Gated by cmd/benchgate alongside
// the datapath benchmarks; pkts_per_sec here means events per second.

// eqChurn re-arms itself with an exponential delay on every dispatch,
// keeping a fixed population of outstanding events. eqChurnFire is the
// allocation-free CallAt trampoline.
type eqChurn struct {
	eng  *sim.Engine
	mean sim.Time
}

func eqChurnFire(now sim.Time, a1, _ any) {
	c := a1.(*eqChurn)
	c.eng.CallAt(now+c.eng.RNG().ExpDuration(c.mean), eqChurnFire, a1, nil)
}

func BenchmarkEventQueue(b *testing.B) {
	b.Run("churn-256", func(b *testing.B) {
		eng := sim.NewEngine(7)
		c := &eqChurn{eng: eng, mean: sim.Microsecond}
		for i := 0; i < 256; i++ {
			eng.CallAt(eng.RNG().ExpDuration(c.mean), eqChurnFire, c, nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Step()
		}
		b.StopTimer()
		record(b, 1, nil)
	})

	b.Run("cancel-rearm", func(b *testing.B) {
		eng := sim.NewEngine(7)
		const armed = 256
		handles := make([]*sim.Event, armed)
		nop := func() {}
		arm := func(i int) {
			handles[i] = eng.At(eng.Now()+10*sim.Microsecond+sim.Time(eng.RNG().Intn(4096)), nop)
		}
		for i := range handles {
			arm(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := eng.RNG().Intn(armed)
			eng.Cancel(handles[j])
			arm(j)
			if i&1 == 0 {
				eng.Step()
			}
		}
		b.StopTimer()
		record(b, 1, nil)
	})

	b.Run("cascade-far", func(b *testing.B) {
		eng := sim.NewEngine(7)
		c := &eqChurn{eng: eng, mean: 4 * sim.Millisecond}
		for i := 0; i < 256; i++ {
			eng.CallAt(eng.RNG().ExpDuration(c.mean), eqChurnFire, c, nil)
		}
		// A sparse population of far-future events keeps the coarse
		// wheels and the overflow level populated across the run.
		far := &eqChurn{eng: eng, mean: 300 * sim.Second}
		for i := 0; i < 16; i++ {
			eng.CallAt(eng.RNG().ExpDuration(far.mean), eqChurnFire, far, nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Step()
		}
		b.StopTimer()
		record(b, 1, nil)
	})
}

// BenchmarkExtDriver evaluates the §VII-1 extension: driver-level priority
// rings, which remove the stage-1 FIFO limitation.
func BenchmarkExtDriver(b *testing.B) {
	p := benchParams()
	var res experiments.ExtDriverResult
	for i := 0; i < b.N; i++ {
		res = experiments.ExtDriver(p)
	}
	record(b, 0, map[string]float64{
		"overlay-driver-mean-µs": res.OverlayDriver.Mean.Micros(),
		"overlay-stock-mean-µs":  res.OverlayStock.Mean.Micros(),
		"host-driver-mean-µs":    res.HostDriver.Mean.Micros(),
	})
}

// BenchmarkParallelScaling measures the parallel sweep driver on a
// representative multi-point workload: the Fig. 11 mode×load grid (six
// independent simulations) at 1, 2, and 4 workers. speedup-vs-1w is
// wall-clock sequential time over this worker count's time; the
// determinism tests guarantee the results are identical at every point,
// so available cores convert directly into speedup (a single-CPU host
// reports ~1.0 by construction — see BENCH_results.json notes).
func BenchmarkParallelScaling(b *testing.B) {
	loads := []float64{10_000, 150_000, 300_000}
	var seqNs float64
	for _, w := range []int{1, 2, 4} {
		w := w
		b.Run(benchName("workers", w), func(b *testing.B) {
			p := benchParams()
			p.Workers = w
			var res experiments.Fig11Result
			for i := 0; i < b.N; i++ {
				res = experiments.Fig11(p, loads)
			}
			if len(res.Series) == 0 || len(res.Series[0].Points) == 0 {
				b.Fatal("empty sweep")
			}
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if w == 1 {
				seqNs = ns
			}
			metrics := map[string]float64{
				"sweep-points": float64(len(res.Series) * len(res.Series[0].Points)),
			}
			if w > 1 && seqNs > 0 && ns > 0 {
				metrics["speedup-vs-1w"] = seqNs / ns
			}
			record(b, fig11Pkts(p, loads), metrics)
		})
	}
}

// BenchmarkClusterSweep — the multi-host datacenter experiment at reduced
// scale: 8 hosts with the full ToR fabric and admission control plane,
// 200 containers under priority-aware placement. One op is one complete
// cluster simulation (build, run, settle, invariant check).
func BenchmarkClusterSweep(b *testing.B) {
	p := benchParams()
	cc := experiments.ClusterConfig{
		Hosts:      8,
		Containers: 200,
		Placements: []cluster.Placement{cluster.PlacePriority},
	}
	var res experiments.ClusterResult
	for i := 0; i < b.N; i++ {
		res = experiments.Cluster(p, cc)
	}
	row := res.Rows[0]
	record(b, float64(2*(row.HiSent+row.LoSent))+float64(row.FloodRecv), map[string]float64{
		"hi-p99-µs":       row.Hi.P99.Micros(),
		"lo-p99-µs":       row.Lo.P99.Micros(),
		"fabric-util-max": row.FabricUtilMax,
		"admit-denied":    float64(row.AdmitDenied),
	})
}
