// Webserver: the paper's Fig. 13 scenario as a standalone program — an
// nginx-style container serving a small static page to a wrk2-style
// constant-rate client, while a TCP bulk transfer (64 KB messages,
// GRO-coalesced at the NIC) hammers a neighbour container.
//
//	go run ./examples/webserver
package main

import (
	"fmt"

	"prism"
)

func main() {
	p := prism.DefaultExperimentParams()
	res := prism.RunFig13(p)
	fmt.Println(res)

	van, _ := res.Find(prism.ModeVanilla, true)
	for _, mode := range []prism.Mode{prism.ModeBatch, prism.ModeSync} {
		row, _ := res.Find(mode, true)
		fmt.Printf("busy server: %-12s cuts avg latency %.0f%% and p99 %.0f%% vs vanilla\n",
			mode,
			100*(1-float64(row.Latency.Mean)/float64(van.Latency.Mean)),
			100*(1-float64(row.Latency.P99)/float64(van.Latency.P99)))
	}
}
