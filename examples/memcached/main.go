// Memcached: the paper's Fig. 12 scenario as a standalone program — a
// memcached container under a memaslap closed-loop client, with and
// without background traffic, on vanilla vs PRISM-sync.
//
//	go run ./examples/memcached
package main

import (
	"fmt"

	"prism"
)

func main() {
	p := prism.DefaultExperimentParams()
	res := prism.RunFig12(p)
	fmt.Println(res)

	van, _ := res.Find(prism.ModeVanilla, true)
	syn, _ := res.Find(prism.ModeSync, true)
	vanIdle, _ := res.Find(prism.ModeVanilla, false)
	fmt.Printf("busy-server throughput: vanilla keeps %.0f%% of idle; PRISM-sync %.0f%% (%.2fx vanilla)\n",
		100*van.KOps/vanIdle.KOps, 100*syn.KOps/vanIdle.KOps, syn.KOps/van.KOps)
	fmt.Printf("busy-server avg latency: PRISM-sync cuts %.0f%% vs vanilla\n",
		100*(1-float64(syn.Latency.Mean)/float64(van.Latency.Mean)))
}
