// Multilevel: the §VII-3 extension — tiered service classes sharing one
// packet-processing core. A low-rate control-plane flow competes with a
// *heavy* latency-sensitive service flow (both high-priority) on top of
// bulk background traffic. With the paper's single high class the control
// packets queue behind the service packets in every high-priority queue;
// at level 2 they overtake them.
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"time"

	"prism"
)

// measure returns the control flow's latency summary with the control
// flow at the given priority level.
func measure(controlLevel int) prism.Summary {
	// Driver-level priority rings (§VII-1) let the classes separate at the
	// NIC itself; without them, high-class contention hides inside the
	// priority-blind stage-1 FIFO ring.
	sim := prism.NewSimulation(
		prism.WithMode(prism.ModeBatch),
		prism.WithDriverPriority(),
		prism.WithSeed(21),
	)

	control := sim.AddContainer("etcd") // raft heartbeats: low rate, urgent
	service := sim.AddContainer("api")  // user-facing: high-priority AND heavy
	bulk := sim.AddContainer("backup")  // best-effort throughput hog

	sim.MarkPriorityLevel(control.IP, 2379, controlLevel)
	sim.MarkPriorityLevel(service.IP, 8080, 1)

	ctl := sim.NewLatencyFlow(control, 2379, 500)
	sim.NewBackgroundFlood(service, 8080, 60_000) // heavy high-priority class
	sim.NewBackgroundFlood(bulk, 5001, 250_000)   // best-effort background

	sim.Run(2 * time.Second)
	return ctl.KernelSummary()
}

func main() {
	flat := measure(1)   // paper's single high class: control == service
	tiered := measure(2) // control outranks service

	fmt.Println("Control-plane kernel latency among competing service classes:")
	fmt.Printf("  single high class (paper):    p50=%6.1fµs  p99=%7.1fµs\n",
		flat.P50.Micros(), flat.P99.Micros())
	fmt.Printf("  control at level 2 (§VII-3):  p50=%6.1fµs  p99=%7.1fµs\n",
		tiered.P50.Micros(), tiered.P99.Micros())
	fmt.Printf("  p99 cut from tiering: %.0f%%\n",
		100*(1-float64(tiered.P99)/float64(flat.P99)))
}
