// Quickstart: build the paper's testbed, run a latency-sensitive flow
// against heavy background traffic, and compare the three receive engines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"prism"
)

func measure(mode prism.Mode) prism.Summary {
	sim := prism.NewSimulation(prism.WithMode(mode), prism.WithSeed(7))

	// A latency-sensitive service (e.g. a key-value store) in one
	// container, marked high priority in PRISM's runtime flow database.
	srv := sim.AddContainer("kv-store")
	sim.MarkHighPriority(srv.IP, 11111)
	flow := sim.NewLatencyFlow(srv, 11111, 1000) // 1 kpps ping-pong

	// A throughput-hungry neighbour (e.g. an analytics shuffle) blasting
	// 300 kpps of small UDP packets at a second container. Both containers
	// share the single packet-processing core, as in the paper's setup.
	noisy := sim.AddContainer("analytics")
	sim.NewBackgroundFlood(noisy, 5001, 300_000)

	sim.Run(2 * time.Second)
	return flow.Summary()
}

func main() {
	fmt.Println("High-priority flow latency (RTT/2) against 300 kpps background:")
	fmt.Println()
	for _, mode := range []prism.Mode{prism.ModeVanilla, prism.ModeBatch, prism.ModeSync} {
		s := measure(mode)
		fmt.Printf("  %-12s p50=%6.1fµs  mean=%6.1fµs  p99=%6.1fµs\n",
			mode, s.P50.Micros(), s.Mean.Micros(), s.P99.Micros())
	}
	fmt.Println()
	fmt.Println("PRISM lets the latency-sensitive flow preempt the background at")
	fmt.Println("every stage past the NIC ring; vanilla NAPI processes FCFS.")
}
