// Priority: demonstrate the runtime flow-priority database (the paper's
// procfs interface) — marking and unmarking flows while traffic runs, and
// switching between PRISM-batch and PRISM-sync on the fly.
//
//	go run ./examples/priority
package main

import (
	"fmt"
	"time"

	"prism"
)

func main() {
	sim := prism.NewSimulation(prism.WithMode(prism.ModeBatch), prism.WithSeed(11))

	srv := sim.AddContainer("api-server")
	flow := sim.NewLatencyFlow(srv, 11111, 1000)
	sim.NewBackgroundFlood(sim.AddContainer("batch-job"), 5001, 300_000)

	// Phase 1: PRISM engine, but the flow is NOT in the priority database:
	// it is treated like any other traffic (FCFS).
	sim.Run(time.Second)
	unmarked := flow.Summary()

	// Phase 2: operator marks the flow high-priority at runtime — the
	// equivalent of `echo "172.17.0.2:11111" > /proc/prism/flows`.
	sim.MarkHighPriority(srv.IP, 11111)
	sim.Run(time.Second)
	marked := flow.Summary() // cumulative; the tail now reflects both phases

	// Phase 3: switch the machine from batch-level preemption to
	// run-to-completion, `echo 1 > /proc/prism/sync`.
	sim.SetMode(prism.ModeSync)
	sim.Run(time.Second)
	final := flow.Summary()

	fmt.Println("Runtime reconfiguration of PRISM (cumulative distributions):")
	fmt.Printf("  after 1s unmarked (FCFS):        p50=%6.1fµs p99=%6.1fµs\n",
		unmarked.P50.Micros(), unmarked.P99.Micros())
	fmt.Printf("  after 1s marked (PRISM-batch):   p50=%6.1fµs p99=%6.1fµs\n",
		marked.P50.Micros(), marked.P99.Micros())
	fmt.Printf("  after 1s in PRISM-sync:          p50=%6.1fµs p99=%6.1fµs\n",
		final.P50.Micros(), final.P99.Micros())
	fmt.Printf("  replies received: %d of %d sent\n", flow.Received(), flow.Sent())
}
