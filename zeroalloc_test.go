package prism_test

import (
	"testing"

	"prism"
)

// TestSteadyStateRxPathZeroAlloc is the allocation regression gate for the
// tentpole pooling work: once the pools, the event free list, and the
// poll-list backing arrays have warmed up, simulating more receive traffic
// must not touch the heap at all. Each probe run pushes ~1ms of saturated
// flood through the full NIC → decap → bridge → veth → socket pipeline.
func TestSteadyStateRxPathZeroAlloc(t *testing.T) {
	for _, mode := range []prism.Mode{prism.ModeVanilla, prism.ModeBatch, prism.ModeSync} {
		t.Run(mode.String(), func(t *testing.T) {
			s := prism.NewSimulation(prism.WithMode(mode), prism.WithSeed(3))
			srv := s.AddContainer("sink")
			s.MarkHighPriority(srv.IP, 11111)
			fl := s.NewBackgroundFlood(srv, 11111, 600_000)

			// Warm up: grow every pool and backing array to the traffic's
			// working-set size. Queue depths fluctuate under the Poisson
			// arrivals, so the working set keeps inching up for a while;
			// 200ms of virtual time is past the deepest excursions.
			s.Run(200_000_000)
			if fl.Delivered() == 0 {
				t.Fatal("warmup delivered nothing")
			}

			if avg := testing.AllocsPerRun(10, func() {
				s.Run(1_000_000)
			}); avg != 0 {
				t.Errorf("steady-state RX path allocates: %.1f allocs per 1ms of virtual time", avg)
			}
		})
	}
}
