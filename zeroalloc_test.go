package prism_test

import (
	"testing"

	"prism"
	"prism/internal/par"
	"prism/internal/sim"
)

// TestSteadyStateRxPathZeroAlloc is the allocation regression gate for the
// tentpole pooling work: once the pools, the event free list, and the
// poll-list backing arrays have warmed up, simulating more receive traffic
// must not touch the heap at all. Each probe run pushes ~1ms of saturated
// flood through the full NIC → decap → bridge → veth → socket pipeline.
func TestSteadyStateRxPathZeroAlloc(t *testing.T) {
	for _, mode := range []prism.Mode{prism.ModeVanilla, prism.ModeBatch, prism.ModeSync} {
		t.Run(mode.String(), func(t *testing.T) {
			s := prism.NewSimulation(prism.WithMode(mode), prism.WithSeed(3))
			srv := s.AddContainer("sink")
			s.MarkHighPriority(srv.IP, 11111)
			fl := s.NewBackgroundFlood(srv, 11111, 600_000)

			// Warm up: grow every pool and backing array to the traffic's
			// working-set size. Queue depths fluctuate under the Poisson
			// arrivals, so the working set keeps inching up for a while;
			// 200ms of virtual time is past the deepest excursions.
			s.Run(200_000_000)
			if fl.Delivered() == 0 {
				t.Fatal("warmup delivered nothing")
			}

			if avg := testing.AllocsPerRun(10, func() {
				s.Run(1_000_000)
			}); avg != 0 {
				t.Errorf("steady-state RX path allocates: %.1f allocs per 1ms of virtual time", avg)
			}
		})
	}
}

// TestCrossShardInjectZeroAlloc gates the parallel runtime's cross-shard
// path: two shards ping-pong a pooled token pointer over 1µs-lookahead
// links, so every synchronization window exercises Link.Send, the barrier
// collect/sort, and Group.inject's batched CallAt scheduling. Once the
// link buffers, inboxes and event free-lists have warmed up, running more
// windows must not allocate — this is the path that regressed when inject
// captured a closure per message.
func TestCrossShardInjectZeroAlloc(t *testing.T) {
	g := par.NewGroup()
	sa := g.Add("a", sim.NewEngine(1))
	sb := g.Add("b", sim.NewEngine(2))
	const lookahead = sim.Microsecond
	var ab, ba *par.Link
	ab = g.Connect(sa, sb, lookahead, func(at sim.Time, payload any) {
		ba.Send(at, lookahead, payload)
	})
	ba = g.Connect(sb, sa, lookahead, func(at sim.Time, payload any) {
		ab.Send(at, lookahead, payload)
	})
	token := new(int)
	ab.Send(0, lookahead, token)

	// Warm up the link buffers, inbox slices and both engines' free lists.
	horizon := 10 * sim.Millisecond
	if err := g.Run(horizon, 1); err != nil {
		t.Fatal(err)
	}
	if g.Windows == 0 {
		t.Fatal("warmup ran no synchronization windows")
	}

	if avg := testing.AllocsPerRun(10, func() {
		horizon += sim.Millisecond
		if err := g.Run(horizon, 1); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("cross-shard inject path allocates: %.1f allocs per 1ms of virtual time", avg)
	}
}
