package live

import (
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"prism/internal/pcap"
	"prism/internal/sim"
)

// Classify resolves a wire frame to its capture identity: which container
// workload it belongs to and whether it is high priority. Implementations
// (cluster.ClassifyFrame, the chaos rig's port table) run on simulation
// shard goroutines, so they must be thread-safe and read-only.
type Classify func(frame []byte) (container string, hi bool, ok bool)

// selector is one /capture subscription's filter.
type selector struct {
	container string // exact container name; "" matches any
	host      string // exact host name; "" matches any
	prio      string // "hi", "lo", "" / "any"
	dir       string // "rx", "tx", "" for both
}

// String renders the filter the way it was asked for on the query string,
// so an operator reading /status can tell the subscriptions apart.
func (sel selector) String() string {
	var parts []string
	if sel.container != "" {
		parts = append(parts, "container="+sel.container)
	}
	if sel.host != "" {
		parts = append(parts, "host="+sel.host)
	}
	if sel.prio != "" && sel.prio != "any" {
		parts = append(parts, "prio="+sel.prio)
	}
	if sel.dir != "" {
		parts = append(parts, "dir="+sel.dir)
	}
	if len(parts) == 0 {
		return "all"
	}
	return strings.Join(parts, " ")
}

// capturePkt is one tapped frame, already copied out of simulation
// ownership. Subscribers matching the same frame share the copy
// (read-only from here on).
type capturePkt struct {
	at    sim.Time
	frame []byte
}

// subBufDepth is each subscriber's channel depth; a consumer that falls
// further behind than this loses frames (counted, never blocking the sim).
const subBufDepth = 1024

type subscriber struct {
	id      uint64
	sel     selector
	ch      chan capturePkt
	dropped uint64
}

// hub fans tapped frames out to capture subscribers. The tap path is the
// only code called from simulation goroutines: one atomic load when idle,
// and a short critical section (match, copy, non-blocking send) when
// someone is capturing.
type hub struct {
	active atomic.Int32

	mu       sync.Mutex
	classify Classify
	subs     map[*subscriber]bool
	nextID   uint64
	dropped  uint64
	closed   bool
}

func (h *hub) init() { h.subs = make(map[*subscriber]bool) }

func (h *hub) setClassify(fn Classify) {
	h.mu.Lock()
	h.classify = fn
	h.mu.Unlock()
}

func (h *hub) droppedCount() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// subscribe registers a capture stream; the returned subscriber's channel
// closes when the hub shuts down. Subscribing after closeAll yields an
// already-closed channel (the handler then serves an empty capture).
func (h *hub) subscribe(sel selector) *subscriber {
	sub := &subscriber{sel: sel, ch: make(chan capturePkt, subBufDepth)}
	h.mu.Lock()
	if h.closed {
		close(sub.ch)
	} else {
		h.nextID++
		sub.id = h.nextID
		h.subs[sub] = true
		h.active.Store(int32(len(h.subs)))
	}
	h.mu.Unlock()
	return sub
}

// CaptureSub is one live /capture subscription's health, as surfaced on
// the /status stream: which filter it runs, how deep its buffer sits and
// how many frames it has lost to falling behind.
type CaptureSub struct {
	ID       uint64 `json:"id"`
	Selector string `json:"selector"`
	Queued   int    `json:"queued"`
	Dropped  uint64 `json:"dropped"`
}

// subscriberStats snapshots every live subscription, oldest first.
func (h *hub) subscriberStats() []CaptureSub {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) == 0 {
		return nil
	}
	out := make([]CaptureSub, 0, len(h.subs))
	for sub := range h.subs {
		out = append(out, CaptureSub{
			ID:       sub.id,
			Selector: sub.sel.String(),
			Queued:   len(sub.ch),
			Dropped:  sub.dropped,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	if h.subs[sub] {
		delete(h.subs, sub)
		h.active.Store(int32(len(h.subs)))
	}
	h.mu.Unlock()
}

// closeAll ends every capture stream (end of run).
func (h *hub) closeAll() {
	h.mu.Lock()
	h.closed = true
	for sub := range h.subs {
		close(sub.ch)
		delete(h.subs, sub)
	}
	h.active.Store(0)
	h.mu.Unlock()
}

// tap fans one frame out to matching subscribers. Runs in event context
// on a simulation shard goroutine; it must stay cheap and never block.
func (h *hub) tap(host string, now sim.Time, frame []byte, tx bool) {
	if h.active.Load() == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) == 0 {
		return
	}
	dir := "rx"
	if tx {
		dir = "tx"
	}
	var (
		classified  bool
		container   string
		hi, classOK bool
		shared      []byte
	)
	for sub := range h.subs {
		sel := sub.sel
		if sel.host != "" && sel.host != host {
			continue
		}
		if sel.dir != "" && sel.dir != dir {
			continue
		}
		if sel.container != "" || sel.prio == "hi" || sel.prio == "lo" {
			if !classified {
				classified = true
				if h.classify != nil {
					container, hi, classOK = h.classify(frame)
				}
			}
			if !classOK {
				continue
			}
			if sel.container != "" && sel.container != container {
				continue
			}
			if sel.prio == "hi" && !hi {
				continue
			}
			if sel.prio == "lo" && hi {
				continue
			}
		}
		if shared == nil {
			shared = append([]byte(nil), frame...)
		}
		select {
		case sub.ch <- capturePkt{at: now, frame: shared}:
		default:
			sub.dropped++
			h.dropped++
		}
	}
}

// flushWriter flushes the HTTP response after every write, so each pcap
// record reaches a tailing consumer (Wireshark, curl) immediately.
type flushWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if err == nil {
		fw.fl.Flush()
	}
	return n, err
}

func (s *Server) handleCapture(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sel, max, err := parseCaptureQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sub := s.hub.subscribe(sel)
	defer s.hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "application/vnd.tcpdump.pcap")
	w.Header().Set("Content-Disposition", `attachment; filename="prism-live.pcap"`)
	sw, err := pcap.NewStreamWriter(flushWriter{w: w, fl: fl})
	if err != nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case pk, open := <-sub.ch:
			if !open {
				return
			}
			if err := sw.WritePacket(pk.at, pk.frame); err != nil {
				return
			}
			if max > 0 && sw.Packets >= uint64(max) {
				return
			}
		}
	}
}

// CaptureDropped reports frames dropped across all capture subscribers
// (for tests and diagnostics).
func (s *Server) CaptureDropped() uint64 { return s.hub.droppedCount() }

// CaptureSubscribers reports the number of active /capture streams —
// used by tests (and operators) to confirm a subscription is armed
// before a run starts.
func (s *Server) CaptureSubscribers() int { return int(s.hub.active.Load()) }
