package live

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prism/internal/obs"
	"prism/internal/pcap"
	"prism/internal/sim"
)

func checkpointOnce(s *Server, at sim.Time, delivered uint64, events []obs.Event) {
	reg := obs.NewRegistry()
	reg.Counter("prism_delivered_total", obs.Labels{Device: "c0", Priority: 1}).Add(delivered)
	s.Checkpoint(at, reg, events)
}

func TestMetricsEndpoint(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("pre-checkpoint /metrics = %d, want 503", resp.StatusCode)
	}

	checkpointOnce(s, 10*sim.Millisecond, 42, nil)
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "# TYPE prism_delivered_total counter") ||
		!strings.Contains(string(body), "prism_delivered_total{device=\"c0\",priority=\"1\"} 42") {
		t.Errorf("/metrics body:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}

	// JSON twin parses.
	resp, err = http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics.json is not a snapshot: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 42 {
		t.Errorf("snapshot counters = %+v", snap.Counters)
	}
}

func TestStatusSSE(t *testing.T) {
	s := NewServer()
	s.SetRun("cluster/prism", 110*sim.Millisecond)
	s.PublishFabric(map[string]float64{"tor00->host00": 0.25})
	checkpointOnce(s, 10*sim.Millisecond, 100, nil)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	rd := bufio.NewReader(resp.Body)
	readEvent := func() Status {
		t.Helper()
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				t.Fatalf("SSE read: %v", err)
			}
			if strings.HasPrefix(line, "data: ") {
				var st Status
				if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &st); err != nil {
					t.Fatalf("SSE payload: %v", err)
				}
				return st
			}
		}
	}
	st := readEvent()
	if st.Run != "cluster/prism" || st.Delivered != 100 || st.VirtualNs != int64(10*sim.Millisecond) {
		t.Errorf("initial status = %+v", st)
	}
	if st.FabricUtil["tor00->host00"] != 0.25 {
		t.Errorf("fabric util missing: %+v", st.FabricUtil)
	}
	// 10ms of virtual time, 100 packets → 10k pkts/sec virtual.
	if st.PktsPerSec < 9999 || st.PktsPerSec > 10001 {
		t.Errorf("pkts/sec = %v, want ~10000", st.PktsPerSec)
	}

	// A new checkpoint arrives as a new event; Finish ends the stream.
	checkpointOnce(s, 20*sim.Millisecond, 250, nil)
	st = readEvent()
	if st.Delivered != 250 || st.Checkpoints != 2 {
		t.Errorf("second status = %+v", st)
	}
	s.Finish()
	deadline := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		io.ReadAll(rd)
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("SSE stream did not terminate after Finish")
	}
}

func span(seq uint64, dev string, start, end sim.Time) obs.Event {
	return obs.Event{Seq: seq, Kind: obs.KindSpan, Stage: obs.StageNIC, Device: dev, Pkt: seq, Priority: 1, Start: start, End: end}
}

func TestTraceNDJSONBacklogAndLive(t *testing.T) {
	s := NewServer()
	checkpointOnce(s, 10*sim.Millisecond, 1, []obs.Event{span(0, "eth0", 100, 130)})

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	// A later checkpoint streams to the open connection; Finish ends it.
	checkpointOnce(s, 20*sim.Millisecond, 2, []obs.Event{span(1, "eth0", 200, 230)})
	s.Finish()

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		var ev struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		names = append(names, ev.Ph+":"+ev.Name)
	}
	want := []string{"M:process_name", "M:thread_name", "X:nic", "X:nic"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("trace lines = %v, want %v", names, want)
	}
}

func TestCaptureSelectorsAndPcap(t *testing.T) {
	s := NewServer()
	s.SetClassifier(func(frame []byte) (string, bool, bool) {
		switch {
		case bytes.HasPrefix(frame, []byte("hi:")):
			return "hi0001", true, true
		case bytes.HasPrefix(frame, []byte("lo:")):
			return "lo0001", false, true
		}
		return "", false, false
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, error) { return http.Get(ts.URL + path) }

	// Bad queries are rejected.
	for _, p := range []string{"/capture?prio=nope", "/capture?max=-1", "/capture?dir=sideways"} {
		resp, err := get(p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", p, resp.StatusCode)
		}
	}

	// Streaming capture: only hi-priority frames on host01, bounded at 2.
	resp, err := get("/capture?prio=hi&host=host01&max=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Wait until the subscription is registered before tapping.
	for i := 0; s.hub.active.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.hub.active.Load() == 0 {
		t.Fatal("capture subscription never registered")
	}
	s.Tap("host00", 1000, []byte("hi:wrong-host"), false)
	s.Tap("host01", 2000, []byte("lo:wrong-prio"), false)
	s.Tap("host01", 3*sim.Millisecond+7, []byte("hi:match-1"), false)
	s.Tap("host01", 4000, []byte("??:unclassifiable"), false)
	s.Tap("host01", 5*sim.Millisecond+11, []byte("hi:match-2"), true)

	body, err := io.ReadAll(resp.Body) // max=2 closes the stream
	if err != nil {
		t.Fatal(err)
	}
	recs, err := pcap.Parse(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("streamed capture does not parse: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("captured %d frames, want 2", len(recs))
	}
	if string(recs[0].Frame) != "hi:match-1" || string(recs[1].Frame) != "hi:match-2" {
		t.Errorf("wrong frames captured: %q, %q", recs[0].Frame, recs[1].Frame)
	}
	// Nanosecond-exact timestamps survive the stream.
	if recs[0].At != 3*sim.Millisecond+7 || recs[1].At != 5*sim.Millisecond+11 {
		t.Errorf("timestamps = %v, %v", recs[0].At, recs[1].At)
	}

	// An unfiltered capture ends at Finish with whatever arrived.
	resp2, err := get("/capture")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	for i := 0; s.hub.active.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	s.Tap("host09", 7000, []byte("??:anything"), false)
	s.Finish()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	recs2, err := pcap.Parse(bytes.NewReader(body2))
	if err != nil || len(recs2) != 1 {
		t.Fatalf("unfiltered capture = %d recs, err %v; want 1", len(recs2), err)
	}

	// After Finish, a new capture returns an empty-but-valid pcap.
	resp3, err := get("/capture")
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if recs3, err := pcap.Parse(bytes.NewReader(body3)); err != nil || len(recs3) != 0 {
		t.Errorf("post-finish capture = %d recs, err %v; want empty capture", len(recs3), err)
	}
}

// /status breaks capture drops down per subscriber: each live stream
// appears with its filter, queue depth and own drop counter, oldest
// subscription first.
func TestStatusCaptureSubscriberDrops(t *testing.T) {
	s := NewServer()
	slow := s.hub.subscribe(selector{prio: "hi", host: "host01"})
	defer s.hub.unsubscribe(slow)
	fast := s.hub.subscribe(selector{})
	defer s.hub.unsubscribe(fast)

	// Overflow both buffers; the all-frames subscriber drains first so
	// only the stalled hi-filter stream keeps dropping.
	s.SetClassifier(func(frame []byte) (string, bool, bool) { return "hi0001", true, true })
	for i := 0; i < subBufDepth+5; i++ {
		s.Tap("host01", sim.Time(i), []byte("hi:x"), false)
	}
	for len(fast.ch) > 0 {
		<-fast.ch
	}
	for i := 0; i < 3; i++ {
		s.Tap("host01", sim.Time(i), []byte("hi:y"), false)
	}
	checkpointOnce(s, 10*sim.Millisecond, 1, nil)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)
	var st Status
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v", err)
		}
		if strings.HasPrefix(line, "data: ") {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &st); err != nil {
				t.Fatalf("SSE payload: %v", err)
			}
			break
		}
	}
	if len(st.CaptureSubs) != 2 {
		t.Fatalf("capture_subs = %+v, want 2 entries", st.CaptureSubs)
	}
	if st.CaptureSubs[0].ID >= st.CaptureSubs[1].ID {
		t.Errorf("capture_subs not id-ordered: %+v", st.CaptureSubs)
	}
	sl, fa := st.CaptureSubs[0], st.CaptureSubs[1]
	if sl.Selector != "host=host01 prio=hi" || fa.Selector != "all" {
		t.Errorf("selectors = %q, %q", sl.Selector, fa.Selector)
	}
	if sl.Dropped != 8 || sl.Queued != subBufDepth {
		t.Errorf("stalled sub = %+v, want dropped 8 queued %d", sl, subBufDepth)
	}
	if fa.Dropped != 5 || fa.Queued != 3 {
		t.Errorf("drained sub = %+v, want dropped 5 queued 3", fa)
	}
	if st.CaptureDropped != sl.Dropped+fa.Dropped {
		t.Errorf("capture_dropped = %d, want %d", st.CaptureDropped, sl.Dropped+fa.Dropped)
	}
}

// The tap path is free when nobody subscribes and never blocks when a
// subscriber stalls: excess frames are dropped and counted.
func TestTapNonBlocking(t *testing.T) {
	s := NewServer()
	// No subscribers: taps are no-ops.
	s.Tap("host00", 1, []byte("x"), false)

	sub := s.hub.subscribe(selector{})
	defer s.hub.unsubscribe(sub)
	for i := 0; i < subBufDepth+10; i++ {
		s.Tap("host00", sim.Time(i), []byte("y"), false)
	}
	if got := s.CaptureDropped(); got != 10 {
		t.Errorf("dropped = %d, want 10", got)
	}
	if len(sub.ch) != subBufDepth {
		t.Errorf("buffered = %d, want %d", len(sub.ch), subBufDepth)
	}
}
