// Package live is the simulator's operator surface: an HTTP server that
// exposes a running simulation's observability streams while it executes —
// live Prometheus metrics, streaming pcap capture you can pipe straight
// into Wireshark, incremental Chrome-trace spans as NDJSON, and SSE run
// progress. It is the consumer half of the obs.Sink seam: the simulation
// side (testbed/cluster checkpoints, host taps) hands over immutable
// snapshots and frame copies at quiescent points, and everything here —
// rendering, buffering, HTTP delivery — happens off the simulation's
// critical path behind a mutex, so enabling the surface never perturbs
// the deterministic event schedule. Slow or stalled HTTP consumers lose
// data (bounded buffers, drop counters) rather than exert backpressure.
//
// Endpoints:
//
//	/metrics   Prometheus text exposition of the latest checkpoint snapshot
//	/metrics.json  the same snapshot as JSON
//	/capture   streaming pcap; ?container=<name>&prio=<hi|lo>&host=<h>&dir=<rx|tx>&max=<n>
//	/trace     Chrome trace events as NDJSON, backlog then live
//	/status    SSE run progress (virtual time, pkts/sec, fabric utilization)
package live

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"

	"prism/internal/obs"
	"prism/internal/sim"
)

// DefaultInterval is the default virtual-time checkpoint cadence.
const DefaultInterval = 10 * sim.Millisecond

// maxTraceBacklog bounds the retained NDJSON trace bytes; older chunks
// are discarded (and counted) once the backlog exceeds it.
const maxTraceBacklog = 8 << 20

// Status is one run-progress sample, published at every checkpoint and
// streamed over /status as SSE.
type Status struct {
	Run         string `json:"run"`
	Done        bool   `json:"done"`
	VirtualNs   int64  `json:"virtual_ns"`
	HorizonNs   int64  `json:"horizon_ns"`
	Checkpoints uint64 `json:"checkpoints"`
	Delivered   uint64 `json:"delivered"`
	// PktsPerSec is the delivery rate over the last checkpoint interval,
	// in packets per second of virtual time.
	PktsPerSec float64 `json:"pkts_per_sec"`
	// TraceDropped counts NDJSON backlog chunks discarded under the
	// retention bound; CaptureDropped counts frames dropped on slow
	// capture subscribers.
	TraceDropped   uint64 `json:"trace_dropped,omitempty"`
	CaptureDropped uint64 `json:"capture_dropped,omitempty"`
	// CaptureSubs breaks CaptureDropped down per live /capture stream, so
	// an operator can tell which consumer is falling behind.
	CaptureSubs []CaptureSub `json:"capture_subs,omitempty"`
	// FabricUtil is per-port fabric transmit occupancy (cluster runs).
	FabricUtil map[string]float64 `json:"fabric_util,omitempty"`
}

// Server implements obs.Sink over HTTP. One Server serves a whole
// prismsim invocation; experiments publish checkpoints, frames and status
// into it as they run. All methods are safe for concurrent use — chaos
// grid points run in parallel and publish interleaved, last writer wins.
type Server struct {
	// Interval is the virtual-time checkpoint cadence runners should use
	// when wiring their SetCheckpoint calls.
	Interval sim.Time

	hub hub

	mu       sync.Mutex
	status   Status
	fabric   map[string]float64
	prom     []byte
	metaJSON []byte
	chrome   *obs.ChromeStream

	// backlog retains recent NDJSON trace chunks for late /trace joiners.
	backlog      [][]byte
	backlogBytes int

	statusSubs map[chan []byte]bool
	traceSubs  map[chan []byte]bool
	done       bool

	// rate bookkeeping for PktsPerSec.
	lastAt        sim.Time
	lastDelivered uint64

	httpSrv *http.Server
}

// NewServer returns a live surface with the default checkpoint interval
// and no run attached.
func NewServer() *Server {
	s := &Server{
		Interval:   DefaultInterval,
		chrome:     obs.NewChromeStream("prism-live"),
		statusSubs: make(map[chan []byte]bool),
		traceSubs:  make(map[chan []byte]bool),
	}
	s.hub.init()
	return s
}

// SetRun labels the run whose checkpoints follow and resets the rate
// window. horizon is the run's virtual end time, for progress reporting.
func (s *Server) SetRun(name string, horizon sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.status.Run = name
	s.status.HorizonNs = int64(horizon)
	s.lastAt = 0
	s.lastDelivered = 0
	s.fabric = nil
}

// SetClassifier installs the frame → (container, priority) resolver the
// capture selectors use. The function runs on simulation shard goroutines
// and must be thread-safe and read-only.
func (s *Server) SetClassifier(fn Classify) {
	if s == nil {
		return
	}
	s.hub.setClassify(fn)
}

// PublishFabric records per-port fabric utilization for the next status
// sample. Call it just before the checkpoint that should carry it.
func (s *Server) PublishFabric(util map[string]float64) {
	if s == nil {
		return
	}
	cp := make(map[string]float64, len(util))
	for k, v := range util {
		cp[k] = v
	}
	s.mu.Lock()
	s.fabric = cp
	s.mu.Unlock()
}

// Checkpoint implements obs.Sink: it renders the snapshot into every
// serving format and wakes the streams. The registry and delta are owned
// by the server from here on.
func (s *Server) Checkpoint(at sim.Time, reg *obs.Registry, delta []obs.Event) {
	if s == nil {
		return
	}
	prom := []byte(obs.PrometheusText(reg))
	metaJSON, err := obs.MetricsJSON(reg)
	if err != nil {
		metaJSON = []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))
	}
	delivered := reg.CounterValue("prism_delivered_total", obs.Labels{})

	s.mu.Lock()
	s.prom = prom
	s.metaJSON = metaJSON
	s.status.VirtualNs = int64(at)
	s.status.Checkpoints++
	s.status.Delivered = delivered
	if at > s.lastAt && delivered >= s.lastDelivered {
		dt := float64(at-s.lastAt) / float64(sim.Second)
		s.status.PktsPerSec = float64(delivered-s.lastDelivered) / dt
	}
	s.lastAt, s.lastDelivered = at, delivered
	s.status.FabricUtil = s.fabric
	s.status.CaptureDropped = s.hub.droppedCount()
	s.status.CaptureSubs = s.hub.subscriberStats()

	// Render the trace delta as one NDJSON chunk, retain it, wake readers.
	// The first chunk carries the process metadata row even with no events.
	var buf bytes.Buffer
	var chunk []byte
	if err := s.chrome.Append(&buf, delta); err == nil {
		chunk = buf.Bytes()
	}
	if len(chunk) > 0 {
		s.backlog = append(s.backlog, chunk)
		s.backlogBytes += len(chunk)
		for s.backlogBytes > maxTraceBacklog && len(s.backlog) > 1 {
			s.backlogBytes -= len(s.backlog[0])
			s.backlog = s.backlog[1:]
			s.status.TraceDropped++
		}
		for ch := range s.traceSubs {
			select {
			case ch <- chunk:
			default:
			}
		}
	}
	s.broadcastStatusLocked()
	s.mu.Unlock()
}

func (s *Server) broadcastStatusLocked() {
	b, err := json.Marshal(s.status)
	if err != nil {
		return
	}
	for ch := range s.statusSubs {
		select {
		case ch <- b:
		default:
		}
	}
}

// Tap observes one wire frame (the cluster.SetTap signature). It is the
// simulation-side entry point of /capture: free (one atomic load) while
// nobody is capturing, and copy + non-blocking fan-out when someone is.
func (s *Server) Tap(host string, now sim.Time, frame []byte, tx bool) {
	if s == nil {
		return
	}
	s.hub.tap(host, now, frame, tx)
}

// HostTap adapts Tap to the overlay.Host.Tap signature for single-host
// rigs.
func (s *Server) HostTap(host string) func(now sim.Time, frame []byte, tx bool) {
	return func(now sim.Time, frame []byte, tx bool) { s.Tap(host, now, frame, tx) }
}

// Finish marks the run set complete: streams terminate after delivering
// what they have, so bounded consumers (curl of /capture, -follow) see
// EOF instead of hanging. The snapshot endpoints keep serving.
func (s *Server) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.done = true
		s.status.Done = true
		s.broadcastStatusLocked()
		for ch := range s.statusSubs {
			close(ch)
			delete(s.statusSubs, ch)
		}
		for ch := range s.traceSubs {
			close(ch)
			delete(s.traceSubs, ch)
		}
	}
	s.mu.Unlock()
	s.hub.closeAll()
}

// Handler returns the operator surface's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/capture", s.handleCapture)
	return mux
}

// Serve serves the operator surface on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	return srv.Serve(ln)
}

// Close tears the HTTP server down (after Finish has ended the streams).
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `prism live operator surface
  /metrics        Prometheus text exposition (latest checkpoint)
  /metrics.json   the same snapshot as JSON
  /status         SSE run progress
  /trace          Chrome trace events, NDJSON
  /capture        streaming pcap; ?container=<name>&prio=<hi|lo>&host=<h>&dir=<rx|tx>&max=<n>
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	body := s.prom
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if len(body) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "# no checkpoint yet")
		return
	}
	w.Write(body)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	body := s.metaJSON
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if len(body) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"no checkpoint yet"}`)
		return
	}
	w.Write(body)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	s.mu.Lock()
	cur, _ := json.Marshal(s.status)
	var ch chan []byte
	if !s.done {
		ch = make(chan []byte, 16)
		s.statusSubs[ch] = true
	}
	s.mu.Unlock()

	writeEvent := func(b []byte) bool {
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !writeEvent(cur) || ch == nil {
		s.dropStatusSub(ch)
		return
	}
	defer s.dropStatusSub(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case b, open := <-ch:
			if !open {
				return
			}
			if !writeEvent(b) {
				return
			}
		}
	}
}

func (s *Server) dropStatusSub(ch chan []byte) {
	if ch == nil {
		return
	}
	s.mu.Lock()
	delete(s.statusSubs, ch)
	s.mu.Unlock()
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")

	s.mu.Lock()
	backlog := make([][]byte, len(s.backlog))
	copy(backlog, s.backlog)
	var ch chan []byte
	if !s.done {
		ch = make(chan []byte, 64)
		s.traceSubs[ch] = true
	}
	s.mu.Unlock()

	for _, chunk := range backlog {
		if _, err := w.Write(chunk); err != nil {
			s.dropTraceSub(ch)
			return
		}
	}
	fl.Flush()
	if ch == nil {
		return
	}
	defer s.dropTraceSub(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case chunk, open := <-ch:
			if !open {
				return
			}
			if _, err := w.Write(chunk); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) dropTraceSub(ch chan []byte) {
	if ch == nil {
		return
	}
	s.mu.Lock()
	delete(s.traceSubs, ch)
	s.mu.Unlock()
}

// parseCaptureQuery builds a selector from /capture query parameters.
func parseCaptureQuery(r *http.Request) (selector, int, error) {
	q := r.URL.Query()
	sel := selector{
		container: q.Get("container"),
		host:      q.Get("host"),
		prio:      q.Get("prio"),
		dir:       q.Get("dir"),
	}
	switch sel.prio {
	case "", "any", "hi", "lo":
	default:
		return sel, 0, fmt.Errorf("prio must be hi, lo or any, got %q", sel.prio)
	}
	switch sel.dir {
	case "", "rx", "tx":
	default:
		return sel, 0, fmt.Errorf("dir must be rx or tx, got %q", sel.dir)
	}
	max := 0
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return sel, 0, fmt.Errorf("max must be a non-negative integer, got %q", v)
		}
		max = n
	}
	return sel, max, nil
}
