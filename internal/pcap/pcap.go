// Package pcap writes simulated traffic in the classic libpcap capture
// format. Because the simulator carries byte-accurate frames (Ethernet,
// IPv4 with checksums, UDP/TCP, RFC-7348 VXLAN), a capture opens cleanly
// in Wireshark/tcpdump with full dissection — handy for debugging
// topologies and for demonstrating that the datapath is real.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"prism/internal/sim"
)

// File-format constants (pcap classic). sim.Time is nanoseconds, so the
// writer uses the nanosecond-resolution magic; Parse also accepts the
// legacy microsecond magic for captures written by older versions.
const (
	// MagicMicros is the classic pcap magic (microsecond timestamps).
	MagicMicros = 0xa1b2c3d4
	// MagicNanos is the nanosecond-resolution pcap magic (PCAP_NSEC_MAGIC).
	MagicNanos = 0xa1b23c4d

	versionMajor = 2
	versionMinor = 4
	// LinkTypeEthernet is LINKTYPE_ETHERNET (DLT_EN10MB).
	LinkTypeEthernet = 1
	// SnapLen is the per-packet capture limit; frames here are ≤ MTU+headers.
	SnapLen = 65535
)

func appendFileHeader(hdr *[24]byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], MagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone (0), sigfigs (0) are already zero.
	binary.LittleEndian.PutUint32(hdr[16:20], SnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
}

func appendRecordHeader(rec *[16]byte, at sim.Time, caplen int) {
	ts := int64(at)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts/int64(sim.Second)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts%int64(sim.Second)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(caplen))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(caplen))
}

// Writer emits a pcap stream. Not safe for concurrent use; the simulator
// is single-threaded.
type Writer struct {
	w       io.Writer
	started bool

	// Packets counts records written.
	Packets uint64
}

// NewWriter wraps w; the file header is written lazily on the first packet
// (or by Flush on an empty capture).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (p *Writer) writeHeader() error {
	var hdr [24]byte
	appendFileHeader(&hdr)
	_, err := p.w.Write(hdr[:])
	p.started = err == nil
	return err
}

// WritePacket appends one frame with the given virtual timestamp.
func (p *Writer) WritePacket(at sim.Time, frame []byte) error {
	if !p.started {
		if err := p.writeHeader(); err != nil {
			return fmt.Errorf("pcap: header: %w", err)
		}
	}
	if len(frame) > SnapLen {
		frame = frame[:SnapLen]
	}
	var rec [16]byte
	appendRecordHeader(&rec, at, len(frame))
	if _, err := p.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: record header: %w", err)
	}
	if _, err := p.w.Write(frame); err != nil {
		return fmt.Errorf("pcap: payload: %w", err)
	}
	p.Packets++
	return nil
}

// Flush ensures at least the file header exists (valid empty capture).
func (p *Writer) Flush() error {
	if p.started {
		return nil
	}
	return p.writeHeader()
}

// StreamWriter emits a pcap stream incrementally: the file header goes out
// eagerly at construction and each record is written in a single Write
// call, so a consumer tailing the stream (Wireshark on a pipe, curl over
// HTTP chunked encoding) sees a valid capture at every record boundary.
// Not safe for concurrent use; callers serialize WritePacket.
type StreamWriter struct {
	w   io.Writer
	buf []byte

	// Packets and Bytes count records and payload+header bytes written.
	Packets uint64
	Bytes   uint64
}

// NewStreamWriter wraps w and immediately writes the pcap file header, so
// even a packet-less stream is a valid (empty) capture.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	var hdr [24]byte
	appendFileHeader(&hdr)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: stream header: %w", err)
	}
	return &StreamWriter{w: w, Bytes: uint64(len(hdr))}, nil
}

// WritePacket appends one frame with the given virtual timestamp. Record
// header and payload are coalesced into one Write so downstream flushers
// never observe a torn record.
func (p *StreamWriter) WritePacket(at sim.Time, frame []byte) error {
	if len(frame) > SnapLen {
		frame = frame[:SnapLen]
	}
	var rec [16]byte
	appendRecordHeader(&rec, at, len(frame))
	p.buf = append(p.buf[:0], rec[:]...)
	p.buf = append(p.buf, frame...)
	n, err := p.w.Write(p.buf)
	p.Bytes += uint64(n)
	if err != nil {
		return fmt.Errorf("pcap: stream record: %w", err)
	}
	p.Packets++
	return nil
}

// Record is one parsed capture record (for tests and tooling).
type Record struct {
	At    sim.Time
	Frame []byte
}

// Parse reads back a little-endian pcap stream written by Writer or
// StreamWriter. Both the nanosecond (0xa1b23c4d) and classic microsecond
// (0xa1b2c3d4) magics are accepted; the sub-second field is scaled
// accordingly.
func Parse(r io.Reader) ([]Record, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: short header: %w", err)
	}
	var subsecUnit int64
	switch magic := binary.LittleEndian.Uint32(hdr[0:4]); magic {
	case MagicNanos:
		subsecUnit = 1
	case MagicMicros:
		subsecUnit = int64(sim.Microsecond)
	default:
		return nil, fmt.Errorf("pcap: bad magic %#x", magic)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	var out []Record
	for {
		var rec [16]byte
		if _, err := io.ReadFull(r, rec[:]); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("pcap: truncated record header: %w", err)
		}
		caplen := binary.LittleEndian.Uint32(rec[8:12])
		if caplen > SnapLen {
			return nil, fmt.Errorf("pcap: caplen %d exceeds snaplen", caplen)
		}
		frame := make([]byte, caplen)
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil, fmt.Errorf("pcap: truncated payload: %w", err)
		}
		at := sim.Time(int64(binary.LittleEndian.Uint32(rec[0:4]))*int64(sim.Second) +
			int64(binary.LittleEndian.Uint32(rec[4:8]))*subsecUnit)
		out = append(out, Record{At: at, Frame: frame})
	}
}
