// Package pcap writes simulated traffic in the classic libpcap capture
// format. Because the simulator carries byte-accurate frames (Ethernet,
// IPv4 with checksums, UDP/TCP, RFC-7348 VXLAN), a capture opens cleanly
// in Wireshark/tcpdump with full dissection — handy for debugging
// topologies and for demonstrating that the datapath is real.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"prism/internal/sim"
)

// File-format constants (pcap classic, microsecond timestamps).
const (
	magicNumber  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	// LinkTypeEthernet is LINKTYPE_ETHERNET (DLT_EN10MB).
	LinkTypeEthernet = 1
	// SnapLen is the per-packet capture limit; frames here are ≤ MTU+headers.
	SnapLen = 65535
)

// Writer emits a pcap stream. Not safe for concurrent use; the simulator
// is single-threaded.
type Writer struct {
	w       io.Writer
	started bool

	// Packets counts records written.
	Packets uint64
}

// NewWriter wraps w; the file header is written lazily on the first packet
// (or by Flush on an empty capture).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (p *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNumber)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone (0), sigfigs (0) are already zero.
	binary.LittleEndian.PutUint32(hdr[16:20], SnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	_, err := p.w.Write(hdr[:])
	p.started = err == nil
	return err
}

// WritePacket appends one frame with the given virtual timestamp.
func (p *Writer) WritePacket(at sim.Time, frame []byte) error {
	if !p.started {
		if err := p.writeHeader(); err != nil {
			return fmt.Errorf("pcap: header: %w", err)
		}
	}
	if len(frame) > SnapLen {
		frame = frame[:SnapLen]
	}
	var rec [16]byte
	ts := int64(at)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts/int64(sim.Second)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts%int64(sim.Second)/int64(sim.Microsecond)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := p.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: record header: %w", err)
	}
	if _, err := p.w.Write(frame); err != nil {
		return fmt.Errorf("pcap: payload: %w", err)
	}
	p.Packets++
	return nil
}

// Flush ensures at least the file header exists (valid empty capture).
func (p *Writer) Flush() error {
	if p.started {
		return nil
	}
	return p.writeHeader()
}

// Record is one parsed capture record (for tests and tooling).
type Record struct {
	At    sim.Time
	Frame []byte
}

// Parse reads back a classic little-endian pcap stream written by Writer.
func Parse(r io.Reader) ([]Record, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magicNumber {
		return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	var out []Record
	for {
		var rec [16]byte
		if _, err := io.ReadFull(r, rec[:]); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("pcap: truncated record header: %w", err)
		}
		caplen := binary.LittleEndian.Uint32(rec[8:12])
		if caplen > SnapLen {
			return nil, fmt.Errorf("pcap: caplen %d exceeds snaplen", caplen)
		}
		frame := make([]byte, caplen)
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil, fmt.Errorf("pcap: truncated payload: %w", err)
		}
		at := sim.Time(int64(binary.LittleEndian.Uint32(rec[0:4]))*int64(sim.Second) +
			int64(binary.LittleEndian.Uint32(rec[4:8]))*int64(sim.Microsecond))
		out = append(out, Record{At: at, Frame: frame})
	}
}
