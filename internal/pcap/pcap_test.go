package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"prism/internal/pkt"
	"prism/internal/sim"
)

func sampleFrame(payload string) []byte {
	return pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: pkt.MAC{1, 2, 3, 4, 5, 6}, DstMAC: pkt.MAC{6, 5, 4, 3, 2, 1},
		SrcIP: pkt.Addr(10, 0, 0, 1), DstIP: pkt.Addr(10, 0, 0, 2),
		SrcPort: 1000, DstPort: 2000, Payload: []byte(payload),
	})
}

func TestHeaderFormat(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("header length = %d", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != MagicNanos {
		t.Errorf("magic = %#x, want nanosecond magic %#x",
			binary.LittleEndian.Uint32(b[0:4]), uint32(MagicNanos))
	}
	if binary.LittleEndian.Uint16(b[4:6]) != 2 || binary.LittleEndian.Uint16(b[6:8]) != 4 {
		t.Error("version != 2.4")
	}
	if binary.LittleEndian.Uint32(b[20:24]) != LinkTypeEthernet {
		t.Error("link type != ethernet")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := []struct {
		at    sim.Time
		frame []byte
	}{
		{1500*sim.Microsecond + 3, sampleFrame("one")},
		{2*sim.Second + 7*sim.Microsecond + 891, sampleFrame("two")},
	}
	for _, f := range frames {
		if err := w.WritePacket(f.at, f.frame); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets != 2 {
		t.Errorf("Packets = %d", w.Packets)
	}
	recs, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records", len(recs))
	}
	for i, r := range recs {
		if !bytes.Equal(r.Frame, frames[i].frame) {
			t.Errorf("record %d frame corrupted", i)
		}
		// Timestamps round-trip exactly (nanosecond magic).
		if r.At != frames[i].at {
			t.Errorf("record %d at %v, want %v", i, r.At, frames[i].at)
		}
		// The payload must still parse as a real frame.
		if _, err := pkt.ParseFlow(r.Frame); err != nil {
			t.Errorf("record %d not a valid frame: %v", i, err)
		}
	}
}

// Captures written with the legacy microsecond magic still parse, with
// sub-second timestamps scaled back to nanoseconds.
func TestParseAcceptsMicrosecondMagic(t *testing.T) {
	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MagicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], SnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	frame := sampleFrame("legacy")
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], 3)    // seconds
	binary.LittleEndian.PutUint32(rec[4:8], 1500) // microseconds
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	buf.Write(rec[:])
	buf.Write(frame)

	recs, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed %d records", len(recs))
	}
	want := 3*sim.Second + 1500*sim.Microsecond
	if recs[0].At != want {
		t.Errorf("At = %v, want %v", recs[0].At, want)
	}
	if !bytes.Equal(recs[0].Frame, frame) {
		t.Error("frame corrupted")
	}
}

// A StreamWriter output is a valid capture at every record boundary: the
// header is present before any packet, and each prefix parses cleanly.
func TestStreamWriterIncremental(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs, err := Parse(bytes.NewReader(buf.Bytes())); err != nil || len(recs) != 0 {
		t.Fatalf("empty stream should parse as 0 records, got %d, %v", len(recs), err)
	}
	stamps := []sim.Time{7, 1500*sim.Microsecond + 3, 2*sim.Second + 123456789}
	for i, at := range stamps {
		if err := sw.WritePacket(at, sampleFrame("pkt")); err != nil {
			t.Fatal(err)
		}
		recs, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("prefix after %d records does not parse: %v", i+1, err)
		}
		if len(recs) != i+1 {
			t.Fatalf("prefix parsed %d records, want %d", len(recs), i+1)
		}
		if recs[i].At != at {
			t.Errorf("record %d at %v, want exact nanosecond %v", i, recs[i].At, at)
		}
	}
	if sw.Packets != uint64(len(stamps)) {
		t.Errorf("Packets = %d", sw.Packets)
	}
	if sw.Bytes != uint64(buf.Len()) {
		t.Errorf("Bytes = %d, buffer holds %d", sw.Bytes, buf.Len())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(bytes.NewReader([]byte("not a pcap"))); err == nil {
		t.Error("garbage parsed")
	}
	// Wrong magic.
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0xdeadbeef)
	if _, err := Parse(bytes.NewReader(hdr[:])); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(0, sampleFrame("x")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := Parse(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated capture parsed")
	}
}

// Property: any sequence of frames round-trips in order with exact bytes.
func TestRoundTripProperty(t *testing.T) {
	prop := func(payloads [][]byte) bool {
		if len(payloads) > 50 {
			payloads = payloads[:50]
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var want [][]byte
		for i, p := range payloads {
			if len(p) > 1400 {
				p = p[:1400]
			}
			f := sampleFrame(string(p))
			want = append(want, f)
			if err := w.WritePacket(sim.Time(i)*sim.Millisecond, f); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		recs, err := Parse(&buf)
		if err != nil || len(recs) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(recs[i].Frame, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
