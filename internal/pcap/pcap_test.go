package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"prism/internal/pkt"
	"prism/internal/sim"
)

func sampleFrame(payload string) []byte {
	return pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: pkt.MAC{1, 2, 3, 4, 5, 6}, DstMAC: pkt.MAC{6, 5, 4, 3, 2, 1},
		SrcIP: pkt.Addr(10, 0, 0, 1), DstIP: pkt.Addr(10, 0, 0, 2),
		SrcPort: 1000, DstPort: 2000, Payload: []byte(payload),
	})
}

func TestHeaderFormat(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("header length = %d", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != 0xa1b2c3d4 {
		t.Errorf("magic = %#x", binary.LittleEndian.Uint32(b[0:4]))
	}
	if binary.LittleEndian.Uint16(b[4:6]) != 2 || binary.LittleEndian.Uint16(b[6:8]) != 4 {
		t.Error("version != 2.4")
	}
	if binary.LittleEndian.Uint32(b[20:24]) != LinkTypeEthernet {
		t.Error("link type != ethernet")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := []struct {
		at    sim.Time
		frame []byte
	}{
		{1500 * sim.Microsecond, sampleFrame("one")},
		{2*sim.Second + 7*sim.Microsecond, sampleFrame("two")},
	}
	for _, f := range frames {
		if err := w.WritePacket(f.at, f.frame); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets != 2 {
		t.Errorf("Packets = %d", w.Packets)
	}
	recs, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records", len(recs))
	}
	for i, r := range recs {
		if !bytes.Equal(r.Frame, frames[i].frame) {
			t.Errorf("record %d frame corrupted", i)
		}
		// Timestamps round-trip at microsecond resolution.
		want := frames[i].at / sim.Microsecond * sim.Microsecond
		if r.At != want {
			t.Errorf("record %d at %v, want %v", i, r.At, want)
		}
		// The payload must still parse as a real frame.
		if _, err := pkt.ParseFlow(r.Frame); err != nil {
			t.Errorf("record %d not a valid frame: %v", i, err)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(bytes.NewReader([]byte("not a pcap"))); err == nil {
		t.Error("garbage parsed")
	}
	// Wrong magic.
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0xdeadbeef)
	if _, err := Parse(bytes.NewReader(hdr[:])); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(0, sampleFrame("x")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := Parse(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated capture parsed")
	}
}

// Property: any sequence of frames round-trips in order with exact bytes.
func TestRoundTripProperty(t *testing.T) {
	prop := func(payloads [][]byte) bool {
		if len(payloads) > 50 {
			payloads = payloads[:50]
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var want [][]byte
		for i, p := range payloads {
			if len(p) > 1400 {
				p = p[:1400]
			}
			f := sampleFrame(string(p))
			want = append(want, f)
			if err := w.WritePacket(sim.Time(i)*sim.Millisecond, f); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		recs, err := Parse(&buf)
		if err != nil || len(recs) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(recs[i].Frame, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
