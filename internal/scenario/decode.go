package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"prism/internal/sim"
)

// The strict decoder walks the generic node tree (map[string]any, []any,
// string scalars) produced by parseTree. Every accessor records the keys
// it consumed; finish() then rejects any key the schema never asked for,
// with a path-qualified message listing the valid set — the unknown-field
// guarantee the satellite tests pin with hostile inputs.

// obj is one map node with its field path and consumed-key tracking.
type obj struct {
	path string
	m    map[string]any
	used map[string]bool
	keys []string // consumption order = the valid-key list in errors
}

func (o *obj) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", o.path, fmt.Sprintf(format, args...))
}

func (o *obj) fieldPath(key string) string { return o.path + "." + key }

// asObj asserts v is a map node.
func asObj(path string, v any) (*obj, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("%s: expected a mapping, got %s", path, nodeKind(v))
	}
	return &obj{path: path, m: m, used: map[string]bool{}}, nil
}

func nodeKind(v any) string {
	switch v.(type) {
	case map[string]any:
		return "a mapping"
	case []any:
		return "a list"
	case string:
		return "a scalar"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// get marks a key consumed and returns its node.
func (o *obj) get(key string) (any, bool) {
	if !o.used[key] {
		o.used[key] = true
		o.keys = append(o.keys, key)
	}
	v, ok := o.m[key]
	return v, ok
}

// finish fails on any key present in the document but never consumed by
// the schema — the strict-decoding contract.
func (o *obj) finish() error {
	var unknown []string
	for k := range o.m {
		if !o.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	valid := append([]string(nil), o.keys...)
	sort.Strings(valid)
	return fmt.Errorf("%s: unknown field %q (valid: %s)",
		o.path, unknown[0], strings.Join(valid, ", "))
}

// scalar fetches a scalar field; ok=false when absent.
func (o *obj) scalar(key string) (string, bool, error) {
	v, ok := o.get(key)
	if !ok {
		return "", false, nil
	}
	s, isStr := v.(string)
	if !isStr {
		return "", false, fmt.Errorf("%s: expected a scalar, got %s", o.fieldPath(key), nodeKind(v))
	}
	return s, true, nil
}

func (o *obj) str(key, def string) (string, error) {
	s, ok, err := o.scalar(key)
	if err != nil || !ok {
		return def, err
	}
	return s, nil
}

func (o *obj) strRequired(key string) (string, error) {
	s, ok, err := o.scalar(key)
	if err != nil {
		return "", err
	}
	if !ok || s == "" {
		return "", fmt.Errorf("%s: required field missing", o.fieldPath(key))
	}
	return s, nil
}

// enum fetches a scalar restricted to the allowed values.
func (o *obj) enum(key, def string, allowed ...string) (string, error) {
	s, err := o.str(key, def)
	if err != nil {
		return "", err
	}
	for _, a := range allowed {
		if s == a {
			return s, nil
		}
	}
	return "", fmt.Errorf("%s: unknown value %q (valid: %s)",
		o.fieldPath(key), s, strings.Join(allowed, ", "))
}

func (o *obj) boolean(key string, def bool) (bool, error) {
	s, ok, err := o.scalar(key)
	if err != nil || !ok {
		return def, err
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, fmt.Errorf("%s: expected true or false, got %q", o.fieldPath(key), s)
}

func (o *obj) integer(key string, def int64) (int64, error) {
	s, ok, err := o.scalar(key)
	if err != nil || !ok {
		return def, err
	}
	n, perr := strconv.ParseInt(strings.ReplaceAll(s, "_", ""), 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("%s: expected an integer, got %q", o.fieldPath(key), s)
	}
	return n, nil
}

func (o *obj) float(key string, def float64) (float64, error) {
	s, ok, err := o.scalar(key)
	if err != nil || !ok {
		return def, err
	}
	return parseFloatScalar(o.fieldPath(key), s)
}

func parseFloatScalar(path, s string) (float64, error) {
	f, err := strconv.ParseFloat(strings.ReplaceAll(s, "_", ""), 64)
	if err != nil {
		return 0, fmt.Errorf("%s: expected a number, got %q", path, s)
	}
	return f, nil
}

// duration parses time.ParseDuration syntax ("5ms", "1.5us") into
// simulated time.
func (o *obj) duration(key string, def sim.Time) (sim.Time, error) {
	s, ok, err := o.scalar(key)
	if err != nil || !ok {
		return def, err
	}
	d, perr := time.ParseDuration(s)
	if perr != nil {
		return 0, fmt.Errorf("%s: expected a duration like 5ms, got %q", o.fieldPath(key), s)
	}
	if d < 0 {
		return 0, fmt.Errorf("%s: duration must not be negative, got %q", o.fieldPath(key), s)
	}
	return sim.Duration(d), nil
}

// list fetches a list field; absent yields (nil, false).
func (o *obj) list(key string) ([]any, bool, error) {
	v, ok := o.get(key)
	if !ok {
		return nil, false, nil
	}
	l, isList := v.([]any)
	if !isList {
		return nil, false, fmt.Errorf("%s: expected a list, got %s", o.fieldPath(key), nodeKind(v))
	}
	return l, true, nil
}

// floatList fetches a list of numeric scalars.
func (o *obj) floatList(key string) ([]float64, error) {
	l, ok, err := o.list(key)
	if err != nil || !ok {
		return nil, err
	}
	out := make([]float64, len(l))
	for i, e := range l {
		s, isStr := e.(string)
		if !isStr {
			return nil, fmt.Errorf("%s[%d]: expected a number, got %s", o.fieldPath(key), i, nodeKind(e))
		}
		f, perr := parseFloatScalar(fmt.Sprintf("%s[%d]", o.fieldPath(key), i), s)
		if perr != nil {
			return nil, perr
		}
		out[i] = f
	}
	return out, nil
}

// strList fetches a list of string scalars.
func (o *obj) strList(key string) ([]string, error) {
	l, ok, err := o.list(key)
	if err != nil || !ok {
		return nil, err
	}
	out := make([]string, len(l))
	for i, e := range l {
		s, isStr := e.(string)
		if !isStr {
			return nil, fmt.Errorf("%s[%d]: expected a scalar, got %s", o.fieldPath(key), i, nodeKind(e))
		}
		out[i] = s
	}
	return out, nil
}

// child fetches a nested mapping; absent yields (nil, nil).
func (o *obj) child(key string) (*obj, error) {
	v, ok := o.get(key)
	if !ok {
		return nil, nil
	}
	return asObj(o.fieldPath(key), v)
}

// children fetches a list of mappings.
func (o *obj) children(key string) ([]*obj, error) {
	l, ok, err := o.list(key)
	if err != nil || !ok {
		return nil, err
	}
	out := make([]*obj, len(l))
	for i, e := range l {
		c, cerr := asObj(fmt.Sprintf("%s[%d]", o.fieldPath(key), i), e)
		if cerr != nil {
			return nil, cerr
		}
		out[i] = c
	}
	return out, nil
}
