package scenario

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"

	"prism/internal/fault"
	"prism/internal/sim"
	"prism/internal/softirq"
)

// Version is the schema version this package decodes; the `scenario:`
// field of every file must match it.
const Version = "v1"

// Experiment kinds the scenario layer dispatches to the paper-figure
// harnesses in internal/experiments.
var experimentKinds = []string{
	"fig3", "fig8", "fig9", "fig10", "fig11", "stages", "policies", "chaos", "cluster",
}

// Scenario is one fully decoded, validated scenario document.
type Scenario struct {
	Name        string
	Description string

	Seed     uint64
	Warmup   sim.Time
	Duration sim.Time
	Workers  int

	// Traffic carries the shared rate/cost knobs (experiments.Params
	// overrides); nil fields keep the calibrated defaults.
	Traffic TrafficParams

	// Experiment dispatches to a paper-figure harness; Topology +
	// Workload describe a custom run. Exactly one of the two is set.
	Experiment *Experiment
	Topology   *Topology
	Workload   []Group

	// Link overrides the wire cost model (the WiFi-AP-style asymmetric
	// link point).
	Link *Link
	// Faults is the deterministic fault plane configuration, including
	// start/stop windows (custom monolithic runs only).
	Faults *Faults
	// SLOs are the declarative assertions checked after the run.
	SLOs []SLO
	// Conservation requires the post-run packet-conservation / zero-leak
	// invariant check (custom monolithic and cluster runs).
	Conservation bool
}

// TrafficParams are the experiments.Params overrides a scenario may set.
// Zero values defer to experiments.Default().
type TrafficParams struct {
	HighRate   float64
	BGRate     float64
	LoadRate   float64
	BGBurst    int
	EchoCost   sim.Time
	SinkCost   sim.Time
	DriverPrio bool
}

// Experiment selects a paper-figure harness plus its grid knobs.
type Experiment struct {
	Kind string

	// Loads is fig11's background-load grid (pps).
	Loads []float64
	// Rates is the chaos fault-rate ladder.
	Rates []float64
	// Policy filters the policies ablation to one registry policy.
	Policy string
	// Hosts / Containers / Placements size the cluster experiment.
	Hosts      int
	Containers int
	Placements []string
}

// Topology describes a custom run's machine layout.
type Topology struct {
	Split     string // monolithic | wire-split | rss-split | cluster
	Mode      string // vanilla | prism-batch | prism-sync
	Policy    string // softirq poll policy registry name ("" = from mode)
	RxQueues  int
	BatchSize int
	Shed      bool

	// Cluster-only fields.
	Hosts     int
	Racks     int
	HostCap   int
	Placement string
	Admission *Admission
}

// Admission is the per-host ingress token bucket.
type Admission struct {
	Rate      float64
	Burst     int
	HiReserve float64
}

// Link overrides the wire cost model.
type Link struct {
	WireLatency  sim.Time
	BandwidthBps int64
}

// Group is one traffic workload: an echo (request/response latency flow),
// a flood (open-loop UDP background), or a tcp stream (elephant flow).
type Group struct {
	Name     string
	Type     string // echo | flood | tcp
	Priority string // hi | lo
	Rate     float64
	Port     int

	// Senders fans the flood out over N synchronized-destination sources
	// (incast); Count replicates the group across cluster containers.
	Senders int
	Count   int

	// Flood shaping.
	Burst      int
	Poisson    bool
	poissonSet bool
	JitterFrac float64
	jitterSet  bool
	PayloadLen int

	// TCP stream shaping.
	MsgSize int

	// Ingress pins the cluster flow's ingress host (-1 = deterministic
	// spread).
	Ingress int

	// Phases scale the group's rate over time (diurnal load); StopAt
	// ceases emission early.
	Phases []RatePhase
	StopAt sim.Time
}

// RatePhase multiplies the group's base rate from time At onward.
type RatePhase struct {
	At    sim.Time
	RateX float64
}

// Faults configures the deterministic fault plane, flat or windowed.
type Faults struct {
	Seed    uint64
	seedSet bool
	Shed    bool
	Rate    float64
	Classes fault.Class
	Phases  []FaultPhase
}

// FaultPhase is one entry of the fault timeline: either a rate window
// (Rate/Classes over [From, Until)) or — on cluster topologies — a
// scripted failure event (Kind host_crash / tor_link_down at From,
// restored at Until).
type FaultPhase struct {
	From    sim.Time
	Until   sim.Time
	Rate    float64
	Classes fault.Class

	// Kind, when set, makes this a scripted cluster failure instead of a
	// rate window; Host / Tor pick the victim.
	Kind string
	Host int
	Tor  int
}

var groupNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Load reads and decodes a scenario file. Errors are prefixed with the
// file path, so the CLI's rejection message is path-qualified end to end.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse decodes a scenario document (YAML subset or JSON).
func Parse(data []byte) (*Scenario, error) {
	tree, err := parseTree(data)
	if err != nil {
		return nil, err
	}
	root, err := asObj("scenario", tree)
	if err != nil {
		return nil, err
	}
	return decodeScenario(root)
}

func decodeScenario(root *obj) (*Scenario, error) {
	s := &Scenario{}
	version, err := root.strRequired("scenario")
	if err != nil {
		return nil, fmt.Errorf("scenario.scenario: schema version missing (`scenario: %s` must be the document's version field)", Version)
	}
	if version != Version {
		return nil, fmt.Errorf("scenario.scenario: unsupported version %q (this build reads %s)", version, Version)
	}
	if s.Name, err = root.str("name", ""); err != nil {
		return nil, err
	}
	if s.Description, err = root.str("description", ""); err != nil {
		return nil, err
	}
	seed, err := root.integer("seed", 42)
	if err != nil {
		return nil, err
	}
	if seed < 0 {
		return nil, root.errf("seed: must not be negative")
	}
	s.Seed = uint64(seed)
	if s.Warmup, err = root.duration("warmup", 100*sim.Millisecond); err != nil {
		return nil, err
	}
	if s.Duration, err = root.duration("duration", sim.Second); err != nil {
		return nil, err
	}
	if s.Duration <= 0 {
		return nil, root.errf("duration: must be positive")
	}
	workers, err := root.integer("workers", 1)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, root.errf("workers: must be >= 1")
	}
	s.Workers = int(workers)

	if err := decodeTraffic(root, &s.Traffic); err != nil {
		return nil, err
	}
	if s.Experiment, err = decodeExperiment(root); err != nil {
		return nil, err
	}
	if s.Topology, err = decodeTopology(root); err != nil {
		return nil, err
	}
	if s.Workload, err = decodeWorkload(root); err != nil {
		return nil, err
	}
	if s.Link, err = decodeLink(root); err != nil {
		return nil, err
	}
	if s.Faults, err = decodeFaults(root); err != nil {
		return nil, err
	}
	if s.SLOs, err = decodeSLOs(root); err != nil {
		return nil, err
	}
	consv, err := root.enum("conservation", "", "", "required")
	if err != nil {
		return nil, err
	}
	s.Conservation = consv == "required"

	if err := root.finish(); err != nil {
		return nil, err
	}
	return s, validate(s)
}

func decodeTraffic(root *obj, t *TrafficParams) error {
	o, err := root.child("traffic")
	if err != nil || o == nil {
		return err
	}
	if t.HighRate, err = o.float("high_rate", 0); err != nil {
		return err
	}
	if t.BGRate, err = o.float("bg_rate", 0); err != nil {
		return err
	}
	if t.LoadRate, err = o.float("load_rate", 0); err != nil {
		return err
	}
	burst, err := o.integer("bg_burst", 0)
	if err != nil {
		return err
	}
	t.BGBurst = int(burst)
	if t.EchoCost, err = o.duration("echo_cost", 0); err != nil {
		return err
	}
	if t.SinkCost, err = o.duration("sink_cost", 0); err != nil {
		return err
	}
	if t.DriverPrio, err = o.boolean("driver_prio", false); err != nil {
		return err
	}
	return o.finish()
}

func decodeExperiment(root *obj) (*Experiment, error) {
	o, err := root.child("experiment")
	if err != nil || o == nil {
		return nil, err
	}
	e := &Experiment{}
	if e.Kind, err = o.enum("kind", "", experimentKinds...); err != nil {
		return nil, err
	}
	if e.Kind == "" {
		return nil, o.errf("kind: required field missing")
	}
	if e.Loads, err = o.floatList("loads"); err != nil {
		return nil, err
	}
	if e.Rates, err = o.floatList("rates"); err != nil {
		return nil, err
	}
	if e.Policy, err = o.str("policy", ""); err != nil {
		return nil, err
	}
	hosts, err := o.integer("hosts", 0)
	if err != nil {
		return nil, err
	}
	e.Hosts = int(hosts)
	containers, err := o.integer("containers", 0)
	if err != nil {
		return nil, err
	}
	e.Containers = int(containers)
	if e.Placements, err = o.strList("placements"); err != nil {
		return nil, err
	}
	if err := o.finish(); err != nil {
		return nil, err
	}
	return e, validateExperiment(o, e)
}

func validateExperiment(o *obj, e *Experiment) error {
	deny := func(field, kinds string, bad bool) error {
		if bad {
			return fmt.Errorf("%s: only valid for the %s experiment", o.fieldPath(field), kinds)
		}
		return nil
	}
	if err := deny("loads", "fig11", len(e.Loads) > 0 && e.Kind != "fig11"); err != nil {
		return err
	}
	if err := deny("rates", "chaos", len(e.Rates) > 0 && e.Kind != "chaos"); err != nil {
		return err
	}
	if err := deny("policy", "policies", e.Policy != "" && e.Kind != "policies"); err != nil {
		return err
	}
	clusterSized := e.Hosts > 0 || e.Containers > 0 || len(e.Placements) > 0
	if err := deny("hosts", "cluster", clusterSized && e.Kind != "cluster"); err != nil {
		return err
	}
	if e.Policy != "" {
		if err := knownPolicy(o.fieldPath("policy"), e.Policy); err != nil {
			return err
		}
	}
	for i, r := range e.Rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("%s[%d]: fault rate %v outside [0, 1]", o.fieldPath("rates"), i, r)
		}
	}
	return nil
}

func decodeTopology(root *obj) (*Topology, error) {
	o, err := root.child("topology")
	if err != nil || o == nil {
		return nil, err
	}
	t := &Topology{}
	if t.Split, err = o.enum("split", "monolithic", "monolithic", "wire-split", "rss-split", "cluster"); err != nil {
		return nil, err
	}
	if t.Mode, err = o.enum("mode", "prism-sync", "vanilla", "prism-batch", "prism-sync"); err != nil {
		return nil, err
	}
	if t.Policy, err = o.str("policy", ""); err != nil {
		return nil, err
	}
	if t.Policy != "" {
		if err := knownPolicy(o.fieldPath("policy"), t.Policy); err != nil {
			return nil, err
		}
	}
	queues, err := o.integer("rx_queues", 0)
	if err != nil {
		return nil, err
	}
	t.RxQueues = int(queues)
	batch, err := o.integer("batch_size", 0)
	if err != nil {
		return nil, err
	}
	t.BatchSize = int(batch)
	if t.Shed, err = o.boolean("shed", false); err != nil {
		return nil, err
	}
	hosts, err := o.integer("hosts", 0)
	if err != nil {
		return nil, err
	}
	t.Hosts = int(hosts)
	racks, err := o.integer("racks", 0)
	if err != nil {
		return nil, err
	}
	t.Racks = int(racks)
	cap_, err := o.integer("host_cap", 0)
	if err != nil {
		return nil, err
	}
	t.HostCap = int(cap_)
	if t.Placement, err = o.enum("placement", "", "", "spread", "pack", "priority"); err != nil {
		return nil, err
	}
	adm, err := o.child("admission")
	if err != nil {
		return nil, err
	}
	if adm != nil {
		a := &Admission{}
		if a.Rate, err = adm.float("rate", 0); err != nil {
			return nil, err
		}
		burst, berr := adm.integer("burst", 0)
		if berr != nil {
			return nil, berr
		}
		a.Burst = int(burst)
		if a.HiReserve, err = adm.float("hi_reserve", 0); err != nil {
			return nil, err
		}
		if err := adm.finish(); err != nil {
			return nil, err
		}
		t.Admission = a
	}
	if err := o.finish(); err != nil {
		return nil, err
	}

	cluster := t.Split == "cluster"
	if !cluster {
		if t.Hosts > 0 || t.Racks > 0 || t.HostCap > 0 || t.Placement != "" || t.Admission != nil {
			return nil, o.errf("hosts/racks/host_cap/placement/admission: only valid with split: cluster")
		}
	}
	if cluster && (t.RxQueues > 0 || t.BatchSize > 0) {
		return nil, o.errf("rx_queues/batch_size: not valid with split: cluster (set them on the host template via policy knobs)")
	}
	if t.RxQueues > 0 && t.Split == "monolithic" && t.RxQueues > 1 {
		// allowed: monolithic hosts own all queues
		_ = t
	}
	return t, nil
}

func knownPolicy(path, name string) error {
	known := softirq.Policies()
	for _, p := range known {
		if p == name {
			return nil
		}
	}
	sort.Strings(known)
	return fmt.Errorf("%s: unknown poll policy %q (valid: %s)", path, name, strings.Join(known, ", "))
}

func decodeWorkload(root *obj) ([]Group, error) {
	items, err := root.children("workload")
	if err != nil || items == nil {
		return nil, err
	}
	groups := make([]Group, len(items))
	names := map[string]bool{}
	for i, o := range items {
		g, gerr := decodeGroup(o)
		if gerr != nil {
			return nil, gerr
		}
		if names[g.Name] {
			return nil, o.errf("name: duplicate group name %q", g.Name)
		}
		names[g.Name] = true
		groups[i] = g
	}
	return groups, nil
}

func decodeGroup(o *obj) (Group, error) {
	g := Group{Ingress: -1}
	var err error
	if g.Name, err = o.strRequired("name"); err != nil {
		return g, err
	}
	if !groupNameRe.MatchString(g.Name) {
		return g, o.errf("name: %q must match %s (it names the group's metrics)", g.Name, groupNameRe)
	}
	if g.Type, err = o.enum("type", "", "echo", "flood", "tcp"); err != nil {
		return g, err
	}
	if g.Type == "" {
		return g, o.errf("type: required field missing")
	}
	if g.Priority, err = o.enum("priority", "lo", "hi", "lo"); err != nil {
		return g, err
	}
	if g.Rate, err = o.float("rate", 0); err != nil {
		return g, err
	}
	if g.Rate <= 0 {
		return g, o.errf("rate: must be positive")
	}
	port, err := o.integer("port", 0)
	if err != nil {
		return g, err
	}
	if port < 0 || port > 65535 {
		return g, o.errf("port: %d outside [0, 65535]", port)
	}
	g.Port = int(port)
	senders, err := o.integer("senders", 1)
	if err != nil {
		return g, err
	}
	if senders < 1 {
		return g, o.errf("senders: must be >= 1")
	}
	g.Senders = int(senders)
	count, err := o.integer("count", 1)
	if err != nil {
		return g, err
	}
	if count < 1 {
		return g, o.errf("count: must be >= 1")
	}
	g.Count = int(count)
	burst, err := o.integer("burst", 0)
	if err != nil {
		return g, err
	}
	g.Burst = int(burst)
	if _, ok := o.m["poisson"]; ok {
		g.poissonSet = true
	}
	if g.Poisson, err = o.boolean("poisson", false); err != nil {
		return g, err
	}
	if _, ok := o.m["jitter_frac"]; ok {
		g.jitterSet = true
	}
	if g.JitterFrac, err = o.float("jitter_frac", 0); err != nil {
		return g, err
	}
	payload, err := o.integer("payload_len", 0)
	if err != nil {
		return g, err
	}
	g.PayloadLen = int(payload)
	msgSize, err := o.integer("msg_size", 0)
	if err != nil {
		return g, err
	}
	g.MsgSize = int(msgSize)
	ingress, err := o.integer("ingress", -1)
	if err != nil {
		return g, err
	}
	g.Ingress = int(ingress)
	if g.StopAt, err = o.duration("stop_at", 0); err != nil {
		return g, err
	}
	phases, err := o.children("phases")
	if err != nil {
		return g, err
	}
	for _, po := range phases {
		var ph RatePhase
		if ph.At, err = po.duration("at", 0); err != nil {
			return g, err
		}
		if ph.RateX, err = po.float("rate_x", 0); err != nil {
			return g, err
		}
		if ph.RateX <= 0 {
			return g, po.errf("rate_x: must be positive (use stop_at to end a flow)")
		}
		if err = po.finish(); err != nil {
			return g, err
		}
		if n := len(g.Phases); n > 0 && ph.At <= g.Phases[n-1].At {
			return g, po.errf("at: phases must be in strictly increasing time order")
		}
		g.Phases = append(g.Phases, ph)
	}
	if err := o.finish(); err != nil {
		return g, err
	}

	if g.Type != "flood" && (g.Burst > 0 || g.Senders > 1 || g.poissonSet || g.jitterSet) {
		return g, o.errf("burst/senders/poisson/jitter_frac: only valid for type: flood")
	}
	if g.Type != "tcp" && g.MsgSize > 0 {
		return g, o.errf("msg_size: only valid for type: tcp")
	}
	if g.Type == "tcp" && g.Priority == "hi" {
		return g, o.errf("priority: tcp streams are background (elephant) flows; only echo/flood can be hi")
	}
	return g, nil
}

func decodeLink(root *obj) (*Link, error) {
	o, err := root.child("link")
	if err != nil || o == nil {
		return nil, err
	}
	l := &Link{}
	if l.WireLatency, err = o.duration("wire_latency", 0); err != nil {
		return nil, err
	}
	bw, err := o.float("bandwidth_bps", 0)
	if err != nil {
		return nil, err
	}
	if bw < 0 {
		return nil, o.errf("bandwidth_bps: must not be negative")
	}
	l.BandwidthBps = int64(bw)
	if err := o.finish(); err != nil {
		return nil, err
	}
	if l.WireLatency == 0 && l.BandwidthBps == 0 {
		return nil, o.errf("at least one of wire_latency / bandwidth_bps must be set")
	}
	return l, nil
}

var faultClassNames = map[string]fault.Class{
	"corrupt":  fault.ClassCorrupt,
	"ring":     fault.ClassRing,
	"link":     fault.ClassLink,
	"consumer": fault.ClassConsumer,
	"softirq":  fault.ClassSoftirq,
	"all":      fault.ClassAll,
	// Cluster-only classes (deliberately outside "all": they require the
	// recovery controller, and arming them must not perturb the RNG
	// draws of datapath-fault configurations).
	"host_crash": fault.ClassHostCrash,
	"tor_link":   fault.ClassTorLink,
}

func decodeClasses(o *obj, key string) (fault.Class, error) {
	names, err := o.strList(key)
	if err != nil {
		return 0, err
	}
	var c fault.Class
	for i, n := range names {
		cl, ok := faultClassNames[n]
		if !ok {
			valid := make([]string, 0, len(faultClassNames))
			for k := range faultClassNames {
				valid = append(valid, k)
			}
			sort.Strings(valid)
			return 0, fmt.Errorf("%s[%d]: unknown fault class %q (valid: %s)",
				o.fieldPath(key), i, n, strings.Join(valid, ", "))
		}
		c |= cl
	}
	return c, nil
}

func decodeFaults(root *obj) (*Faults, error) {
	o, err := root.child("faults")
	if err != nil || o == nil {
		return nil, err
	}
	f := &Faults{}
	if _, ok := o.m["seed"]; ok {
		f.seedSet = true
	}
	seed, err := o.integer("seed", 0)
	if err != nil {
		return nil, err
	}
	if seed < 0 {
		return nil, o.errf("seed: must not be negative")
	}
	f.Seed = uint64(seed)
	if f.Shed, err = o.boolean("shed", false); err != nil {
		return nil, err
	}
	if f.Rate, err = o.float("rate", 0); err != nil {
		return nil, err
	}
	if f.Rate < 0 || f.Rate > 1 {
		return nil, o.errf("rate: %v outside [0, 1]", f.Rate)
	}
	if f.Classes, err = decodeClasses(o, "classes"); err != nil {
		return nil, err
	}
	phases, err := o.children("phases")
	if err != nil {
		return nil, err
	}
	for _, po := range phases {
		var ph FaultPhase
		if ph.From, err = po.duration("from", 0); err != nil {
			return nil, err
		}
		if ph.Until, err = po.duration("until", 0); err != nil {
			return nil, err
		}
		if ph.Kind, err = po.enum("kind", "", "", "host_crash", "tor_link_down"); err != nil {
			return nil, err
		}
		host, err := po.integer("host", 0)
		if err != nil {
			return nil, err
		}
		ph.Host = int(host)
		tor, err := po.integer("tor", 0)
		if err != nil {
			return nil, err
		}
		ph.Tor = int(tor)
		if ph.Rate, err = po.float("rate", 0); err != nil {
			return nil, err
		}
		if ph.Classes, err = decodeClasses(po, "classes"); err != nil {
			return nil, err
		}
		if ph.Kind != "" {
			// A scripted failure event: the victim is the payload, rate
			// windows don't apply.
			if ph.Rate != 0 || ph.Classes != 0 {
				return nil, po.errf("kind: scripted %s entries carry host/tor, not rate/classes", ph.Kind)
			}
			if ph.From <= 0 {
				return nil, po.errf("from: a scripted %s needs a positive event time", ph.Kind)
			}
		} else {
			if ph.Rate <= 0 || ph.Rate > 1 {
				return nil, po.errf("rate: %v outside (0, 1]", ph.Rate)
			}
			if ph.Host != 0 || ph.Tor != 0 {
				return nil, po.errf("host/tor: only valid on scripted entries (set kind)")
			}
		}
		if ph.Until > 0 && ph.Until <= ph.From {
			return nil, po.errf("until: must be after from (or omitted for open-ended)")
		}
		if err = po.finish(); err != nil {
			return nil, err
		}
		f.Phases = append(f.Phases, ph)
	}
	if err := o.finish(); err != nil {
		return nil, err
	}
	if f.Rate == 0 && len(f.Phases) == 0 {
		return nil, o.errf("either rate or phases must be set")
	}
	rateWindows := 0
	for _, ph := range f.Phases {
		if ph.Kind == "" {
			rateWindows++
		}
	}
	if f.Rate > 0 && rateWindows > 0 {
		return nil, o.errf("rate and rate-window phases are mutually exclusive (phases carry their own rates)")
	}
	return f, nil
}

func decodeSLOs(root *obj) ([]SLO, error) {
	items, err := root.strList("slo")
	if err != nil || items == nil {
		return nil, err
	}
	slos := make([]SLO, len(items))
	for i, raw := range items {
		s, perr := parseSLO(fmt.Sprintf("scenario.slo[%d]", i), raw)
		if perr != nil {
			return nil, perr
		}
		slos[i] = s
	}
	return slos, nil
}

// validate enforces the cross-section rules a single section cannot see.
func validate(s *Scenario) error {
	switch {
	case s.Experiment != nil && s.Topology != nil:
		return fmt.Errorf("scenario: experiment and topology are mutually exclusive")
	case s.Experiment == nil && s.Topology == nil:
		return fmt.Errorf("scenario: exactly one of experiment / topology is required")
	}
	if s.Experiment != nil {
		if len(s.Workload) > 0 {
			return fmt.Errorf("scenario.workload: not valid with an experiment (the harness defines the workload)")
		}
		if s.Faults != nil && s.Experiment.Kind != "chaos" {
			return fmt.Errorf("scenario.faults: only the chaos experiment injects faults (use rates); declare a custom topology for fault timelines")
		}
		if s.Faults != nil {
			return fmt.Errorf("scenario.faults: the chaos experiment derives its planes from rates; faults is for custom topologies")
		}
		if s.Link != nil {
			return fmt.Errorf("scenario.link: link overrides need a custom topology (experiments pin the paper's cost model)")
		}
		if s.Conservation && s.Experiment.Kind != "chaos" && s.Experiment.Kind != "cluster" {
			return fmt.Errorf("scenario.conservation: only chaos, cluster and custom runs drain to the invariant check")
		}
		return nil
	}

	// Custom topology rules.
	t := s.Topology
	if len(s.Workload) == 0 {
		return fmt.Errorf("scenario.workload: a custom topology needs at least one traffic group")
	}
	if s.Faults != nil && t.Split != "monolithic" && t.Split != "cluster" {
		return fmt.Errorf("scenario.faults: fault injection requires split: monolithic or cluster (a plane is engine-local state)")
	}
	if s.Conservation && t.Split != "monolithic" && t.Split != "cluster" {
		return fmt.Errorf("scenario.conservation: only monolithic and cluster runs drain to the strict invariant check")
	}
	for i, g := range s.Workload {
		path := fmt.Sprintf("scenario.workload[%d]", i)
		if t.Split == "cluster" {
			if g.Type == "tcp" {
				return fmt.Errorf("%s.type: tcp streams are not wired on cluster topologies", path)
			}
			if g.Senders > 1 {
				return fmt.Errorf("%s.senders: incast fan-in needs a single-host topology", path)
			}
			if g.Burst > 0 || g.poissonSet || g.jitterSet || g.PayloadLen > 0 || g.Port > 0 {
				return fmt.Errorf("%s: burst/poisson/jitter_frac/payload_len/port are not configurable on cluster topologies (the cluster wires generators itself)", path)
			}
			if len(g.Phases) > 0 || g.StopAt > 0 {
				return fmt.Errorf("%s: phases/stop_at are not supported on cluster topologies yet", path)
			}
			if g.Ingress >= t.Hosts {
				return fmt.Errorf("%s.ingress: host %d outside the %d-host cluster", path, g.Ingress, t.Hosts)
			}
		} else {
			if g.Count > 1 {
				return fmt.Errorf("%s.count: container replication needs split: cluster", path)
			}
			if g.Ingress >= 0 {
				return fmt.Errorf("%s.ingress: only valid with split: cluster", path)
			}
		}
		if g.StopAt > 0 && g.StopAt > s.Warmup+s.Duration {
			return fmt.Errorf("%s.stop_at: past the run horizon", path)
		}
		for j, ph := range g.Phases {
			if ph.At > s.Warmup+s.Duration {
				return fmt.Errorf("%s.phases[%d].at: past the run horizon", path, j)
			}
		}
	}
	if t.Split == "cluster" && t.Hosts < 1 {
		return fmt.Errorf("scenario.topology.hosts: a cluster needs at least 1 host")
	}
	if s.Faults != nil {
		horizon := s.Warmup + s.Duration
		clusterClasses := fault.ClassHostCrash | fault.ClassTorLink
		if t.Split != "cluster" && s.Faults.Classes&clusterClasses != 0 {
			return fmt.Errorf("scenario.faults.classes: host_crash / tor_link need split: cluster (they fail whole hosts and fabric uplinks)")
		}
		racks := t.Racks
		if racks <= 0 && t.Hosts > 0 {
			racks = (t.Hosts + 7) / 8 // the fabric's default rack shape
		}
		for i, ph := range s.Faults.Phases {
			if ph.From >= horizon {
				return fmt.Errorf("scenario.faults.phases[%d].from: past the run horizon", i)
			}
			if ph.Kind == "" {
				if t.Split != "cluster" && ph.Classes&clusterClasses != 0 {
					return fmt.Errorf("scenario.faults.phases[%d].classes: host_crash / tor_link need split: cluster", i)
				}
				continue
			}
			if t.Split != "cluster" {
				return fmt.Errorf("scenario.faults.phases[%d].kind: scripted %s needs split: cluster", i, ph.Kind)
			}
			switch ph.Kind {
			case "host_crash":
				if ph.Host < 0 || ph.Host >= t.Hosts {
					return fmt.Errorf("scenario.faults.phases[%d].host: host %d outside the %d-host cluster", i, ph.Host, t.Hosts)
				}
			case "tor_link_down":
				if racks < 2 {
					return fmt.Errorf("scenario.faults.phases[%d]: tor_link_down needs a multi-rack fabric (set topology.racks >= 2)", i)
				}
				if ph.Tor < 0 || ph.Tor >= racks {
					return fmt.Errorf("scenario.faults.phases[%d].tor: rack %d outside the %d-rack fabric", i, ph.Tor, racks)
				}
			}
		}
	}
	return nil
}
