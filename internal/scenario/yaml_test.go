package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func parseYAML(t *testing.T, doc string) any {
	t.Helper()
	v, err := parseTree([]byte(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return v
}

func TestYAMLBlockStructures(t *testing.T) {
	doc := `
# full-line comment
scenario: v1
name: demo
nested:
  a: 1
  b: two words  # trailing comment
  deep:
    c: "quoted # not a comment"
list:
  - plain
  - "quoted"
inline:
  - key: v1
    extra: 5
  - key: v2
flow: [1, 2.5, three]
`
	got := parseYAML(t, doc)
	want := map[string]any{
		"scenario": "v1",
		"name":     "demo",
		"nested": map[string]any{
			"a": "1",
			"b": "two words",
			"deep": map[string]any{
				"c": "quoted # not a comment",
			},
		},
		"list": []any{"plain", "quoted"},
		"inline": []any{
			map[string]any{"key": "v1", "extra": "5"},
			map[string]any{"key": "v2"},
		},
		"flow": []any{"1", "2.5", "three"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tree mismatch\ngot:  %#v\nwant: %#v", got, want)
	}
}

func TestJSONInputNormalizes(t *testing.T) {
	doc := `{"scenario": "v1", "seed": 7, "flag": true, "list": [1, 2.5], "nested": {"x": null}}`
	got := parseYAML(t, doc)
	want := map[string]any{
		"scenario": "v1",
		"seed":     "7",
		"flag":     "true",
		"list":     []any{"1", "2.5"},
		"nested":   map[string]any{"x": ""},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tree mismatch\ngot:  %#v\nwant: %#v", got, want)
	}
}

func TestYAMLLexicalErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"tab indent", "a: 1\n\tb: 2\n", "tab in indentation"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"empty value", "a:\nb: 2\n", "has no value"},
		{"bad indent", "a: 1\n    b: 2\n", "unexpected indentation"},
		{"list in map", "a: 1\n- b\n", "list item in a mapping block"},
		{"bare brace", "a: {inline: map}\n", "must be double-quoted"},
		{"unterminated flow", "a: [1, 2\n", "unterminated flow list"},
		{"empty flow element", "a: [1, , 2]\n", "empty element"},
		{"bad quoted", `a: "unclosed` + "\n", "bad quoted string"},
		{"not a key", "just words\n", "expected `key: value`"},
		{"empty doc", "# only a comment\n", "empty document"},
		{"json trailing", `{"scenario": "v1"} {"x": 1}`, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTree([]byte(tc.doc))
			if err == nil {
				t.Fatalf("no error for %q", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestYAMLLineNumbersInErrors(t *testing.T) {
	_, err := parseTree([]byte("a: 1\nb: 2\n\tc: d\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("want line 3 in error, got %v", err)
	}
}
