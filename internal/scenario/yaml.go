// Package scenario makes runs data: a versioned, strictly-decoded
// JSON/YAML schema covering topology (monolithic, wire-split, RSS-split,
// multi-host cluster), poll policy and knobs, traffic mixes (CBR, bursty,
// incast, elephant/mice, diurnal), fault timelines, admission control,
// and declarative SLO assertions. Compile lowers a Scenario onto the
// exact structures the Go harnesses use — experiments.Params,
// experiments.BaseSpec, testbed.Spec, cluster.Config — so a scenario file
// and the equivalent figure harness build byte-identical simulations; the
// round-trip tests prove the committed paper-figure scenarios reproduce
// the existing golden fixtures bit-for-bit at 1/2/4 workers.
//
// The repository has no dependencies, so YAML input is handled by a
// strict subset parser rather than a full YAML library. The subset is
// exactly what configuration needs and nothing more:
//
//   - block maps (`key: value`, `key:` + indented block)
//   - block lists (`- value`, `- key: value` inline maps)
//   - flow lists of scalars (`[a, b, c]`)
//   - double-quoted scalars with Go escapes, and bare scalars
//   - `#` comments (whole-line, or after a value preceded by a space)
//   - two-or-more space indentation; tabs are an error
//
// Anchors, aliases, multi-line strings, multiple documents and implicit
// typing are deliberately absent: every scalar stays a string until the
// schema decoder coerces it, so errors always carry the full field path.
// Files whose first non-blank byte is '{' are parsed as JSON instead;
// both syntaxes feed the same strict decoder.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// parseTree parses a scenario document into the generic node tree the
// strict decoder walks: map[string]any / []any / string scalars.
func parseTree(data []byte) (any, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return parseJSONTree(data)
	}
	return parseYAMLTree(data)
}

// parseJSONTree decodes JSON with numbers kept as json.Number, then
// normalizes every leaf to a string scalar so the schema decoder sees the
// same tree shape for both syntaxes.
func parseJSONTree(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("json: %w", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err == nil {
		return nil, fmt.Errorf("json: trailing data after document")
	}
	return normalizeJSON(v), nil
}

func normalizeJSON(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = normalizeJSON(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = normalizeJSON(e)
		}
		return out
	case json.Number:
		return t.String()
	case bool:
		return strconv.FormatBool(t)
	case nil:
		return ""
	default:
		return fmt.Sprint(t)
	}
}

// yline is one significant (non-blank, non-comment) line of a YAML
// document.
type yline struct {
	num    int // 1-based source line
	indent int
	text   string // trimmed content, trailing comment stripped
}

var keyRe = regexp.MustCompile(`^[A-Za-z0-9_.-]+:(\s|$)`)

// lexYAML splits the document into significant lines, enforcing the
// subset's lexical rules (no tabs in indentation, comments stripped).
func lexYAML(data []byte) ([]yline, error) {
	var out []yline
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", i+1)
		}
		text := line[indent:]
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		text = stripComment(text)
		if text == "" {
			continue
		}
		out = append(out, yline{num: i + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing ` #...` comment outside double quotes.
func stripComment(s string) string {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\\' && inQuote:
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case s[i] == '#' && !inQuote && i > 0 && s[i-1] == ' ':
			return strings.TrimRight(s[:i], " ")
		}
	}
	return strings.TrimRight(s, " ")
}

type yparser struct {
	lines []yline
	pos   int
}

func parseYAMLTree(data []byte) (any, error) {
	lines, err := lexYAML(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	p := &yparser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
	}
	return v, nil
}

// parseBlock parses the map or list whose entries sit at exactly this
// indent, stopping at the first line indented less.
func (p *yparser) parseBlock(indent int) (any, error) {
	l := p.lines[p.pos]
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func (p *yparser) parseMap(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("line %d: list item in a mapping block", l.num)
		}
		if !keyRe.MatchString(l.text) {
			return nil, fmt.Errorf("line %d: expected `key: value`, got %q", l.num, l.text)
		}
		colon := strings.Index(l.text, ":")
		key := l.text[:colon]
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		rest := strings.TrimSpace(l.text[colon+1:])
		p.pos++
		if rest != "" {
			v, err := parseScalarOrFlow(l.num, rest)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// `key:` introduces a nested block on the following lines.
		if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
			return nil, fmt.Errorf("line %d: key %q has no value (nested block must be indented)", l.num, key)
		}
		v, err := p.parseBlock(p.lines[p.pos].indent)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

func (p *yparser) parseList(indent int) (any, error) {
	var list []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("line %d: expected `- item` in list block, got %q", l.num, l.text)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// `-` alone: the item is the nested block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: empty list item", l.num)
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			continue
		}
		if keyRe.MatchString(rest) {
			// `- key: value` starts an inline map whose remaining keys sit
			// on the following lines, aligned with the first key (the dash
			// plus one space deep). Rewrite the line as that first key and
			// let parseMap consume the whole item.
			itemIndent := indent + 2
			p.lines[p.pos] = yline{num: l.num, indent: itemIndent, text: rest}
			v, err := p.parseMap(itemIndent)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			continue
		}
		v, err := parseScalarOrFlow(l.num, rest)
		if err != nil {
			return nil, err
		}
		list = append(list, v)
		p.pos++
	}
	return list, nil
}

// parseScalarOrFlow parses an inline value: a flow list of scalars, a
// double-quoted string, or a bare scalar (kept verbatim).
func parseScalarOrFlow(lineNum int, s string) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("line %d: unterminated flow list %q", lineNum, s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		parts, err := splitFlow(lineNum, inner)
		if err != nil {
			return nil, err
		}
		list := make([]any, len(parts))
		for i, part := range parts {
			v, err := parseScalar(lineNum, part)
			if err != nil {
				return nil, err
			}
			list[i] = v
		}
		return list, nil
	}
	return parseScalar(lineNum, s)
}

// splitFlow splits a flow list body on top-level commas, respecting
// double quotes.
func splitFlow(lineNum int, s string) ([]string, error) {
	var parts []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\\' && inQuote:
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case s[i] == ',' && !inQuote:
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if inQuote {
		return nil, fmt.Errorf("line %d: unterminated quote in flow list", lineNum)
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("line %d: empty element in flow list", lineNum)
		}
	}
	return parts, nil
}

func parseScalar(lineNum int, s string) (string, error) {
	if strings.HasPrefix(s, `"`) {
		v, err := strconv.Unquote(s)
		if err != nil {
			return "", fmt.Errorf("line %d: bad quoted string %s: %v", lineNum, s, err)
		}
		return v, nil
	}
	if strings.ContainsAny(s, `"{}`) {
		return "", fmt.Errorf("line %d: scalar %q must be double-quoted (contains %q characters)", lineNum, s, `"{}`)
	}
	return s, nil
}
