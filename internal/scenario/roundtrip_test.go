package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The round-trip suite is the refactor's proof obligation: the committed
// scenario files must reproduce the experiment packages' golden fixtures
// bit-identically — same JSON bytes — at 1, 2 and 4 workers, so the DSL
// is a faithful re-expression of the hard-coded harnesses, not a fork.
var updateGolden = flag.Bool("update-golden", false, "rewrite the scenario golden result datasets")

var roundtripWorkers = []int{1, 2, 4}

func runCorpus(t *testing.T, name string, workers int) *Result {
	t.Helper()
	plan := loadCorpus(t, name)
	plan.Params.Workers = workers
	res, err := plan.Run()
	if err != nil {
		t.Fatalf("run %s (workers=%d): %v", name, workers, err)
	}
	return res
}

// compactJSON re-serializes an indented fixture subtree to the canonical
// single-line form json.Marshal produces for the same value: Go emits
// struct fields in declaration order and identical number tokens, so
// Compact(MarshalIndent(v)) == Marshal(v) byte for byte.
func compactJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact fixture: %v", err)
	}
	return buf.Bytes()
}

func loadFixture(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture %s: %v", path, err)
	}
	return raw
}

// TestFigureScenariosReproduceGoldens runs each paper-figure scenario
// file and compares the raw harness result against the corresponding
// subtree of the experiments package's committed datapath fixture.
func TestFigureScenariosReproduceGoldens(t *testing.T) {
	var fixture map[string]json.RawMessage
	if err := json.Unmarshal(loadFixture(t, "../experiments/testdata/datapath_golden.json"), &fixture); err != nil {
		t.Fatalf("decode datapath fixture: %v", err)
	}
	figures := []struct{ file, key string }{
		{"fig3.yaml", "Fig3"},
		{"fig8.yaml", "Fig8"},
		{"fig9.yaml", "Fig9"},
		{"fig11.yaml", "Fig11"},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.key, func(t *testing.T) {
			raw, ok := fixture[fig.key]
			if !ok {
				t.Fatalf("fixture has no %s subtree", fig.key)
			}
			want := compactJSON(t, raw)
			for _, w := range roundtripWorkers {
				res := runCorpus(t, fig.file, w)
				got, err := json.Marshal(res.Experiment)
				if err != nil {
					t.Fatalf("marshal result: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: %s diverges from the golden fixture (len got %d, want %d)",
						w, fig.file, len(got), len(want))
				}
			}
		})
	}
}

// TestChaosScenarioReproducesGolden proves chaos.yaml is the chaos
// harness: same fault planes, same digests, every worker count.
func TestChaosScenarioReproducesGolden(t *testing.T) {
	want := compactJSON(t, loadFixture(t, "../experiments/testdata/chaos_golden.json"))
	for _, w := range roundtripWorkers {
		res := runCorpus(t, "chaos.yaml", w)
		got, err := json.Marshal(res.Experiment)
		if err != nil {
			t.Fatalf("marshal result: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: chaos.yaml diverges from the golden fixture", w)
		}
	}
}

// TestClusterScenarioReproducesGolden proves cluster.yaml is the
// datacenter harness at the acceptance-scale point (16 hosts, 1000
// containers, all placement policies).
func TestClusterScenarioReproducesGolden(t *testing.T) {
	want := compactJSON(t, loadFixture(t, "../experiments/testdata/cluster_golden.json"))
	for _, w := range roundtripWorkers {
		res := runCorpus(t, "cluster.yaml", w)
		got, err := json.Marshal(res.Experiment)
		if err != nil {
			t.Fatalf("marshal result: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: cluster.yaml diverges from the golden fixture", w)
		}
	}
}

// TestScenarioCorpusGoldenDatasets runs every committed scenario file and
// compares the marshaled Result against its golden dataset under
// scenarios/testdata. Regenerate with:
//
//	go test ./internal/scenario -run TestScenarioCorpusGoldenDatasets -update-golden
func TestScenarioCorpusGoldenDatasets(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.yaml"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario corpus at %s (err=%v)", corpusDir, err)
	}
	for _, file := range files {
		base := filepath.Base(file)
		name := strings.TrimSuffix(base, ".yaml")
		t.Run(name, func(t *testing.T) {
			res := runCorpus(t, base, 1)
			for _, s := range res.SLOs {
				if !s.Pass {
					t.Errorf("SLO failed: %s (measured %v)", s.Expr, s.Measured)
				}
			}
			b, err := json.MarshalIndent(res, "", "\t")
			if err != nil {
				t.Fatalf("marshal result: %v", err)
			}
			b = append(b, '\n')
			goldenPath := filepath.Join(corpusDir, "testdata", name+".golden.json")
			if *updateGolden {
				if err := os.WriteFile(goldenPath, b, 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				t.Logf("golden dataset rewritten: %s", goldenPath)
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update-golden): %v", err)
			}
			if !bytes.Equal(b, want) {
				t.Errorf("%s diverges from its golden dataset %s", base, goldenPath)
			}
		})
	}
}

// TestScenarioWorkerDeterminism re-runs the parallel-capable custom
// scenarios at 2 and 4 workers and requires the full marshaled Result —
// metrics, digests, SLO verdicts — to match the single-worker bytes.
func TestScenarioWorkerDeterminism(t *testing.T) {
	for _, name := range []string{"split-burst.yaml", "rss-split.yaml", "stages.yaml", "policies.yaml"} {
		name := name
		t.Run(strings.TrimSuffix(name, ".yaml"), func(t *testing.T) {
			base, err := json.Marshal(runCorpus(t, name, 1))
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			for _, w := range []int{2, 4} {
				got, err := json.Marshal(runCorpus(t, name, w))
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				if !bytes.Equal(got, base) {
					t.Errorf("workers=%d: result diverges from single-worker run", w)
				}
			}
		})
	}
}
