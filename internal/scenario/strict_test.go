package scenario

import (
	"strings"
	"testing"

	"prism/internal/sim"
)

// mustParse decodes a document that is expected to be valid.
func mustParse(t *testing.T, doc string) *Scenario {
	t.Helper()
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

const minimalExperiment = "scenario: v1\nexperiment:\n  kind: fig3\n"

func TestDefaults(t *testing.T) {
	s := mustParse(t, minimalExperiment)
	if s.Seed != 42 || s.Warmup != 100*sim.Millisecond || s.Duration != sim.Second || s.Workers != 1 {
		t.Errorf("defaults wrong: seed=%d warmup=%v duration=%v workers=%d",
			s.Seed, s.Warmup, s.Duration, s.Workers)
	}
	if s.Experiment == nil || s.Experiment.Kind != "fig3" {
		t.Errorf("experiment not decoded: %+v", s.Experiment)
	}
}

func TestGroupDefaults(t *testing.T) {
	s := mustParse(t, `scenario: v1
topology:
  split: monolithic
workload:
  - name: hi
    type: echo
    priority: hi
    rate: 1000
  - name: bg
    type: flood
    rate: 50000
`)
	hi, bg := s.Workload[0], s.Workload[1]
	if hi.Senders != 1 || hi.Count != 1 || hi.Ingress != -1 {
		t.Errorf("echo defaults wrong: %+v", hi)
	}
	if bg.Priority != "lo" || bg.poissonSet || bg.jitterSet {
		t.Errorf("flood defaults wrong: %+v", bg)
	}
	if s.Topology.Mode != "prism-sync" {
		t.Errorf("mode default wrong: %q", s.Topology.Mode)
	}
}

// TestHostileInputs feeds the decoder malformed documents and asserts
// every rejection is path-qualified: the error names the offending field
// by its scenario.* path and, for closed sets, lists the valid values.
func TestHostileInputs(t *testing.T) {
	cases := []struct {
		name, doc string
		want      []string // all must appear in the error
	}{
		{
			"missing version",
			"name: x\nexperiment:\n  kind: fig3\n",
			[]string{"scenario.scenario", "schema version missing"},
		},
		{
			"wrong version",
			"scenario: v2\nexperiment:\n  kind: fig3\n",
			[]string{"scenario.scenario", `unsupported version "v2"`},
		},
		{
			"unknown root field",
			minimalExperiment + "bogus: 1\n",
			[]string{"scenario:", `unknown field "bogus"`, "valid:"},
		},
		{
			"unknown topology field",
			"scenario: v1\ntopology:\n  split: monolithic\n  rx_queue: 2\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n",
			[]string{"scenario.topology", `unknown field "rx_queue"`, "rx_queues"},
		},
		{
			"unknown group field",
			"scenario: v1\ntopology:\n  split: monolithic\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n    ratex: 2\n",
			[]string{"scenario.workload[0]", `unknown field "ratex"`},
		},
		{
			"unknown enum split",
			"scenario: v1\ntopology:\n  split: sharded\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n",
			[]string{"scenario.topology.split", `unknown value "sharded"`, "rss-split"},
		},
		{
			"unknown enum mode",
			"scenario: v1\ntopology:\n  split: monolithic\n  mode: turbo\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n",
			[]string{"scenario.topology.mode", `unknown value "turbo"`, "vanilla"},
		},
		{
			"unknown experiment kind",
			"scenario: v1\nexperiment:\n  kind: fig99\n",
			[]string{"scenario.experiment.kind", `unknown value "fig99"`, "fig11"},
		},
		{
			"unknown poll policy",
			"scenario: v1\ntopology:\n  split: monolithic\n  policy: warp\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n",
			[]string{"scenario.topology.policy", `unknown poll policy "warp"`},
		},
		{
			"bad duration",
			"scenario: v1\nwarmup: fast\nexperiment:\n  kind: fig3\n",
			[]string{"scenario.warmup", "duration like 5ms"},
		},
		{
			"negative duration",
			"scenario: v1\nwarmup: -5ms\nexperiment:\n  kind: fig3\n",
			[]string{"scenario.warmup", "must not be negative"},
		},
		{
			"bad integer",
			"scenario: v1\nworkers: two\nexperiment:\n  kind: fig3\n",
			[]string{"scenario.workers", "expected an integer"},
		},
		{
			"bad boolean",
			"scenario: v1\nconservation: yes\nexperiment:\n  kind: chaos\n  rates: [0.2]\n",
			[]string{"scenario.conservation", `unknown value "yes"`},
		},
		{
			"experiment and topology",
			"scenario: v1\nexperiment:\n  kind: fig3\ntopology:\n  split: monolithic\n",
			[]string{"experiment and topology are mutually exclusive"},
		},
		{
			"neither experiment nor topology",
			"scenario: v1\nname: empty\n",
			[]string{"exactly one of experiment / topology"},
		},
		{
			"workload with experiment",
			minimalExperiment + "workload:\n  - name: a\n    type: echo\n    rate: 10\n",
			[]string{"scenario.workload", "not valid with an experiment"},
		},
		{
			"loads on non-fig11",
			"scenario: v1\nexperiment:\n  kind: fig3\n  loads: [1000]\n",
			[]string{"scenario.experiment.loads", "only valid for the fig11"},
		},
		{
			"chaos rate out of range",
			"scenario: v1\nexperiment:\n  kind: chaos\n  rates: [0.2, 1.5]\n",
			[]string{"scenario.experiment.rates[1]", "outside [0, 1]"},
		},
		{
			"bad slo operator",
			minimalExperiment + "slo:\n  - \"p99 ~= 5\"\n",
			[]string{"scenario.slo[0]", `unknown operator "~="`, "<="},
		},
		{
			"malformed slo",
			minimalExperiment + "slo:\n  - p99_too_low\n",
			[]string{"scenario.slo[0]", "want `metric op value`"},
		},
		{
			"unknown fault class",
			"scenario: v1\ntopology:\n  split: monolithic\nworkload:\n  - name: a\n    type: echo\n    rate: 10\nfaults:\n  rate: 0.2\n  classes: [gamma]\n",
			[]string{"scenario.faults.classes[0]", `unknown fault class "gamma"`, "softirq"},
		},
		{
			"fault rate and phases",
			"scenario: v1\ntopology:\n  split: monolithic\nworkload:\n  - name: a\n    type: echo\n    rate: 10\nfaults:\n  rate: 0.2\n  phases:\n    - from: 1ms\n      rate: 0.1\n",
			[]string{"scenario.faults", "mutually exclusive"},
		},
		{
			"fault phase out of order",
			"scenario: v1\ntopology:\n  split: monolithic\nworkload:\n  - name: a\n    type: echo\n    rate: 10\nfaults:\n  phases:\n    - from: 10ms\n      until: 5ms\n      rate: 0.1\n",
			[]string{"scenario.faults.phases[0]", "must be after from"},
		},
		{
			"faults on wire-split",
			"scenario: v1\ntopology:\n  split: wire-split\nworkload:\n  - name: a\n    type: echo\n    rate: 10\nfaults:\n  rate: 0.2\n",
			[]string{"scenario.faults", "requires split: monolithic"},
		},
		{
			"duplicate group name",
			"scenario: v1\ntopology:\n  split: monolithic\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n  - name: a\n    type: flood\n    rate: 10\n",
			[]string{"scenario.workload[1]", `duplicate group name "a"`},
		},
		{
			"bad group name",
			"scenario: v1\ntopology:\n  split: monolithic\nworkload:\n  - name: Hi-Flow\n    type: echo\n    rate: 10\n",
			[]string{"scenario.workload[0]", "must match"},
		},
		{
			"hi tcp stream",
			"scenario: v1\ntopology:\n  split: monolithic\nworkload:\n  - name: a\n    type: tcp\n    priority: hi\n    rate: 10\n",
			[]string{"scenario.workload[0]", "only echo/flood can be hi"},
		},
		{
			"senders on echo",
			"scenario: v1\ntopology:\n  split: monolithic\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n    senders: 4\n",
			[]string{"scenario.workload[0]", "only valid for type: flood"},
		},
		{
			"cluster fields on monolithic",
			"scenario: v1\ntopology:\n  split: monolithic\n  hosts: 4\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n",
			[]string{"scenario.topology", "only valid with split: cluster"},
		},
		{
			"ingress outside cluster size",
			"scenario: v1\ntopology:\n  split: cluster\n  hosts: 4\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n    ingress: 7\n",
			[]string{"scenario.workload[0].ingress", "outside the 4-host cluster"},
		},
		{
			"phase past horizon",
			"scenario: v1\nwarmup: 1ms\nduration: 10ms\ntopology:\n  split: monolithic\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n    phases:\n      - at: 50ms\n        rate_x: 2\n",
			[]string{"scenario.workload[0].phases[0].at", "past the run horizon"},
		},
		{
			"unknown admission field",
			"scenario: v1\ntopology:\n  split: cluster\n  hosts: 4\n  admission:\n    rate: 1000\n    reserve: 0.5\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n",
			[]string{"scenario.topology.admission", `unknown field "reserve"`, "hi_reserve"},
		},
		{
			"unknown link field",
			"scenario: v1\ntopology:\n  split: monolithic\nlink:\n  latency: 5ms\nworkload:\n  - name: a\n    type: echo\n    rate: 10\n",
			[]string{"scenario.link", `unknown field "latency"`, "wire_latency"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("hostile input accepted:\n%s", tc.doc)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

func TestSLOEvalUnknownMetric(t *testing.T) {
	s, err := parseSLO("scenario.slo[0]", "nope_p99_us <= 10")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = s.Eval(map[string]float64{"hi_p99_us": 3, "util": 0.5})
	if err == nil || !strings.Contains(err.Error(), `unknown metric "nope_p99_us"`) ||
		!strings.Contains(err.Error(), "hi_p99_us, util") {
		t.Errorf("want unknown-metric error listing produced metrics, got %v", err)
	}
}

func TestSLOEvalOperators(t *testing.T) {
	m := map[string]float64{"x": 5}
	cases := []struct {
		expr string
		pass bool
	}{
		{"x <= 5", true}, {"x < 5", false}, {"x >= 5", true},
		{"x > 5", false}, {"x == 5", true}, {"x != 5", false},
	}
	for _, tc := range cases {
		s, err := parseSLO("t", tc.expr)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		r, err := s.Eval(m)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		if r.Pass != tc.pass {
			t.Errorf("%s: pass=%v, want %v", tc.expr, r.Pass, tc.pass)
		}
		if r.Measured != 5 {
			t.Errorf("%s: measured=%v", tc.expr, r.Measured)
		}
	}
}
