package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"prism/internal/cluster"
	"prism/internal/experiments"
	"prism/internal/obs"
	"prism/internal/overlay"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/stats"
	"prism/internal/testbed"
	"prism/internal/traffic"
)

// Result is one executed scenario: a flat metric namespace (the SLO
// surface), the observability digests the determinism gates diff across
// worker counts, and the evaluated assertions. Marshaling a Result is
// deterministic — maps serialize with sorted keys — so the committed
// golden datasets under scenarios/testdata are byte-comparable.
type Result struct {
	Name    string
	Kind    string
	Metrics map[string]float64
	Digests map[string]string `json:",omitempty"`
	SLOs    []SLOResult       `json:",omitempty"`

	// Experiment is the raw harness result (Fig3Result, ChaosResult, …)
	// the round-trip golden tests compare against the figure fixtures;
	// Table its human rendering. Neither is part of the marshaled dataset.
	Experiment any    `json:"-"`
	Table      string `json:"-"`
}

// Passed reports whether every SLO assertion held.
func (r *Result) Passed() bool {
	for _, s := range r.SLOs {
		if !s.Pass {
			return false
		}
	}
	return true
}

// String renders the harness table (when the run produced one), the
// sorted metric namespace, digests and SLO verdicts — deterministically,
// so CI can diff the output across worker counts byte for byte.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s [%s]\n", r.Name, r.Kind)
	if r.Table != "" {
		b.WriteString(r.Table)
		if !strings.HasSuffix(r.Table, "\n") {
			b.WriteByte('\n')
		}
	}
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("metrics:\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-40s %s\n", k, strconv.FormatFloat(r.Metrics[k], 'g', -1, 64))
	}
	if len(r.Digests) > 0 {
		dk := make([]string, 0, len(r.Digests))
		for k := range r.Digests {
			dk = append(dk, k)
		}
		sort.Strings(dk)
		b.WriteString("digests:\n")
		for _, k := range dk {
			fmt.Fprintf(&b, "  %-40s %s\n", k, r.Digests[k])
		}
	}
	for _, s := range r.SLOs {
		verdict := "PASS"
		if !s.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "slo %s: %s (measured %s)\n", verdict, s.Expr,
			strconv.FormatFloat(s.Measured, 'g', -1, 64))
	}
	return b.String()
}

// Run executes the compiled plan and evaluates its SLOs. An SLO that
// fails does not error — callers check Result.Passed — but an assertion
// naming a metric the run never produced does.
func (p *Plan) Run() (*Result, error) {
	res, err := p.execute()
	if err != nil {
		return nil, err
	}
	res.Name = p.Scenario.Name
	if res.Name == "" {
		res.Name = p.Kind
	}
	res.Kind = p.Kind
	for _, slo := range p.Scenario.SLOs {
		ev, err := slo.Eval(res.Metrics)
		if err != nil {
			return nil, err
		}
		res.SLOs = append(res.SLOs, ev)
	}
	return res, nil
}

func (p *Plan) execute() (*Result, error) {
	switch {
	case p.Spec != nil:
		return p.runCustom()
	case p.ClusterRun != nil:
		return p.runCustomCluster()
	}
	return p.runExperiment()
}

func addSummary(m map[string]float64, prefix string, s stats.Summary) {
	m[prefix+"_p50_us"] = s.P50.Micros()
	m[prefix+"_p99_us"] = s.P99.Micros()
	m[prefix+"_mean_us"] = s.Mean.Micros()
	m[prefix+"_max_us"] = s.Max.Micros()
}

func fmtRate(r float64) string { return strconv.FormatFloat(r, 'g', -1, 64) }

func (p *Plan) runExperiment() (*Result, error) {
	pm := p.Params
	res := &Result{Metrics: map[string]float64{}}
	m := res.Metrics
	switch p.Kind {
	case "fig3":
		r := experiments.Fig3(pm)
		addSummary(m, "idle", r.Idle)
		addSummary(m, "busy", r.Busy)
		m["median_ratio"] = r.MedianRatio
		m["p99_ratio"] = r.P99Ratio
		m["busy_util"] = r.BusyUtil
		res.Experiment, res.Table = r, r.String()
	case "fig8":
		r := experiments.Fig8(pm)
		for _, row := range r.Rows {
			k := row.Mode.String()
			addSummary(m, k, row.Latency)
			m[k+"_kpps"] = row.MaxKpps
			m[k+"_util"] = row.OfferedUtil
		}
		res.Experiment, res.Table = r, r.String()
	case "fig9", "fig10":
		var r experiments.Fig9Result
		if p.Kind == "fig9" {
			r = experiments.Fig9(pm)
		} else {
			r = experiments.Fig10(pm)
		}
		addSummary(m, "idle", r.Idle)
		for _, row := range r.Rows {
			k := row.Mode.String()
			addSummary(m, k, row.Busy)
			m[k+"_util"] = row.Util
			m[k+"_kernel_p99_us"] = row.Kernel.P99.Micros()
			m[k+"_avg_cut"] = r.Improvement(row.Mode, experiments.MeanOf)
			m[k+"_p99_cut"] = r.Improvement(row.Mode, experiments.P99Of)
		}
		res.Experiment, res.Table = r, r.String()
	case "fig11":
		r := experiments.Fig11(pm, p.Fig11Loads)
		for _, s := range r.Series {
			for _, pt := range s.Points {
				k := fmt.Sprintf("%s_bg%.0fk", s.Mode, pt.BGKpps)
				m[k+"_min_us"] = pt.Min.Micros()
				m[k+"_avg_us"] = pt.Avg.Micros()
				m[k+"_p99_us"] = pt.P99.Micros()
				m[k+"_util"] = pt.Util
			}
		}
		res.Experiment, res.Table = r, r.String()
	case "stages":
		r := experiments.Stages(pm)
		for _, row := range r.Rows {
			k := row.Mode.String()
			m[k+"_e2e_p99_us"] = row.E2E.P99.Micros()
			m[k+"_hi_e2e_p99_us"] = row.HighE2E.P99.Micros()
			m[k+"_delivered"] = float64(row.Delivered)
			m[k+"_dropped"] = float64(row.Dropped)
		}
		res.Experiment, res.Table = r, r.String()
	case "policies":
		r := experiments.Policies(pm, p.Variants)
		for _, row := range r.Rows {
			k := row.Variant.Label()
			addSummary(m, k, row.Busy)
			m[k+"_util"] = row.Util
		}
		res.Experiment, res.Table = r, r.String()
	case "chaos":
		r := experiments.Chaos(pm, nil, p.ChaosRates)
		res.Digests = map[string]string{}
		for _, row := range r.Rows {
			k := fmt.Sprintf("%s_r%s", row.Variant.Label(), fmtRate(row.FaultRate))
			m[k+"_hi_p99_us"] = row.High.P99.Micros()
			m[k+"_lo_p99_us"] = row.Low.P99.Micros()
			m[k+"_hi_recv"] = float64(row.HighRecv)
			m[k+"_lo_recv"] = float64(row.LowRecv)
			m[k+"_bg_recv"] = float64(row.BGRecv)
			m[k+"_shed"] = float64(row.Shed)
			m[k+"_rescues"] = float64(row.Rescues)
			m[k+"_util"] = row.Util
			res.Digests[k+"_metrics"] = row.MetricsSHA
			res.Digests[k+"_spans"] = row.SpansSHA
		}
		res.Experiment, res.Table = r, r.String()
	case "cluster":
		r := experiments.Cluster(pm, p.ClusterCfg)
		res.Digests = map[string]string{}
		for _, row := range r.Rows {
			k := row.Placement
			m[k+"_hi_p50_us"] = row.Hi.P50.Micros()
			m[k+"_hi_p99_us"] = row.Hi.P99.Micros()
			m[k+"_lo_p50_us"] = row.Lo.P50.Micros()
			m[k+"_lo_p99_us"] = row.Lo.P99.Micros()
			m[k+"_hi_recv"] = float64(row.HiRecv)
			m[k+"_lo_recv"] = float64(row.LoRecv)
			m[k+"_flood_recv"] = float64(row.FloodRecv)
			m[k+"_admit_denied"] = float64(row.AdmitDenied)
			m[k+"_fabric_drops"] = float64(row.FabricDrops)
			m[k+"_fabric_shed"] = float64(row.FabricShed)
			m[k+"_fabric_util_max"] = row.FabricUtilMax
			m[k+"_windows"] = float64(row.Windows)
			res.Digests[k+"_metrics"] = row.MetricsSHA
			res.Digests[k+"_spans"] = row.SpansSHA
		}
		res.Experiment, res.Table = r, r.String()
	default:
		return nil, fmt.Errorf("scenario: unknown experiment kind %q", p.Kind)
	}
	return res, nil
}

// generator is one wired traffic source and the handles the metric and
// teardown passes need.
type generator struct {
	group Group
	pp    *traffic.PingPong
	flood *traffic.UDPFlood // first sender (owns the shared sink counter)
	subs  []*traffic.UDPFlood
	tcp   *traffic.TCPStream
	host  *overlay.Host
}

func (g *generator) stop() {
	if g.pp != nil {
		g.pp.Stop()
	}
	for _, f := range g.subs {
		f.Stop()
	}
	if g.tcp != nil {
		g.tcp.Stop()
	}
}

// steeredEndpoint probes client source ports until the flow RSS-hashes
// onto queue q — the same placement contract the RSS scaling tests use.
func steeredEndpoint(tb *testbed.Testbed, ctr *overlay.Container, port uint16, q, idx int) (overlay.RemoteEndpoint, error) {
	for i := 0; i < 256; i++ {
		cand := overlay.ClientContainer(idx, uint16(43000+256*idx+i))
		if tb.QueueFor(overlay.EncapToServer(cand, ctr, port, make([]byte, 64))) == q {
			return cand, nil
		}
	}
	return overlay.RemoteEndpoint{}, fmt.Errorf("scenario: no client port steers flow %d to RX queue %d", idx, q)
}

// runCustom wires and runs a single-machine topology (monolithic,
// wire-split or RSS-split) from the declared workload groups.
func (p *Plan) runCustom() (*Result, error) {
	s := p.Scenario
	pm := p.Params
	spec := *p.Spec
	if spec.Split != testbed.RSSSplit {
		name := s.Name
		if name == "" {
			name = "scenario"
		}
		spec.Pipe = obs.NewPipeline(name)
	}
	tb := testbed.New(spec)
	genEng := tb.ClientEng()

	gens := make([]*generator, len(s.Workload))
	srcIdx := 0
	for i, g := range s.Workload {
		q := 0
		if spec.Split == testbed.RSSSplit {
			q = i % len(tb.Hosts)
		}
		host := tb.Hosts[q]
		ctr := host.AddContainer(g.Name)
		port := uint16(g.Port)
		if port == 0 {
			port = uint16(15000 + i)
		}
		if g.Priority == "hi" {
			host.DB.Add(prio.Rule{IP: ctr.IP, Port: port})
		}
		src := func(idx int) (overlay.RemoteEndpoint, error) {
			if spec.Split == testbed.RSSSplit {
				return steeredEndpoint(tb, ctr, port, q, idx)
			}
			return overlay.ClientContainer(idx, uint16(40000+idx)), nil
		}
		inject := tb.Inject(q)
		gen := &generator{group: g, host: host}
		switch g.Type {
		case "echo":
			ep, err := src(srcIdx)
			if err != nil {
				return nil, err
			}
			srcIdx++
			pp := traffic.NewPingPong(genEng, host, ctr, ep, port, g.Rate)
			pp.Warmup = pm.Warmup
			if inject != nil {
				pp.Inject = inject
			}
			if err := pp.InstallEcho(pm.EchoCost); err != nil {
				return nil, fmt.Errorf("scenario: group %s: %w", g.Name, err)
			}
			pp.Start(tb.Client, 0)
			gen.pp = pp
			schedulePhases(genEng, g, g.Rate, func(r float64) { pp.Rate = r })
			if g.StopAt > 0 {
				genEng.At(g.StopAt, pp.Stop)
			}
		case "flood":
			perSender := g.Rate / float64(g.Senders)
			for k := 0; k < g.Senders; k++ {
				ep, err := src(srcIdx)
				if err != nil {
					return nil, err
				}
				srcIdx++
				fl := traffic.NewUDPFlood(genEng, host, ctr, ep, port, perSender)
				if g.Burst > 0 {
					fl.Burst = g.Burst
				}
				if g.poissonSet {
					fl.Poisson = g.Poisson
				}
				if g.jitterSet {
					fl.JitterFrac = g.JitterFrac
				}
				if g.PayloadLen > 0 {
					fl.PayloadLen = g.PayloadLen
				}
				if inject != nil {
					fl.Inject = inject
				}
				if k == 0 {
					// One shared sink: the first sender's counter tallies
					// every delivery to the port, whoever sent it.
					if err := fl.InstallSink(pm.SinkCost); err != nil {
						return nil, fmt.Errorf("scenario: group %s: %w", g.Name, err)
					}
					host.Eng.At(pm.Warmup, func() { fl.Delivered.Start(pm.Warmup) })
					gen.flood = fl
				}
				fl.Start(0)
				gen.subs = append(gen.subs, fl)
				flc := fl
				schedulePhases(genEng, g, perSender, func(r float64) { flc.Rate = r })
				if g.StopAt > 0 {
					genEng.At(g.StopAt, flc.Stop)
				}
			}
		case "tcp":
			ep, err := src(srcIdx)
			if err != nil {
				return nil, err
			}
			srcIdx++
			ts := traffic.NewTCPStream(genEng, host, ctr, ep, port, g.Rate)
			if g.MsgSize > 0 {
				ts.MsgSize = g.MsgSize
			}
			if inject != nil {
				ts.Inject = inject
			}
			if err := ts.InstallSink(pm.SinkCost); err != nil {
				return nil, fmt.Errorf("scenario: group %s: %w", g.Name, err)
			}
			host.Eng.At(pm.Warmup, func() { ts.Delivered.Start(pm.Warmup) })
			ts.Start(0)
			gen.tcp = ts
			schedulePhases(genEng, g, g.Rate, func(r float64) { ts.MsgRate = r })
			if g.StopAt > 0 {
				genEng.At(g.StopAt, ts.Stop)
			}
		}
		gens[i] = gen
	}

	if err := tb.Run(pm.Warmup, pm.Duration, pm.Workers); err != nil {
		return nil, err
	}

	res := &Result{Metrics: map[string]float64{}, Digests: map[string]string{}}
	m := res.Metrics
	var util float64
	for _, h := range tb.Hosts {
		util += h.ProcCore.Utilization(h.Eng.Now())
	}
	m["util"] = util / float64(len(tb.Hosts))
	var shed uint64
	for _, h := range tb.Hosts {
		for _, n := range h.NICs {
			shed += n.ShedDrops
		}
		for _, rx := range h.Rxs {
			shed += rx.Stats().Shed
		}
	}
	m["shed"] = float64(shed)
	for _, gen := range gens {
		g := gen.group
		now := gen.host.Eng.Now()
		switch {
		case gen.pp != nil:
			addSummary(m, g.Name, gen.pp.Hist.Summarize())
			m[g.Name+"_kernel_p99_us"] = gen.pp.KernelHist.Summarize().P99.Micros()
			m[g.Name+"_sent"] = float64(gen.pp.Sent)
			m[g.Name+"_recv"] = float64(gen.pp.Received)
		case gen.flood != nil:
			var sent uint64
			for _, f := range gen.subs {
				sent += f.Sent
			}
			m[g.Name+"_sent"] = float64(sent)
			m[g.Name+"_delivered"] = float64(gen.flood.Delivered.Count())
			m[g.Name+"_kpps"] = gen.flood.Delivered.Kpps(now)
		case gen.tcp != nil:
			m[g.Name+"_sent_pkts"] = float64(gen.tcp.SentPkts)
			m[g.Name+"_delivered"] = float64(gen.tcp.Delivered.Count())
			m[g.Name+"_kpps"] = gen.tcp.Delivered.Kpps(now)
		}
	}
	if planes := tb.Planes; len(planes) > 0 {
		var injected, rescues uint64
		for _, pl := range planes {
			c := pl.Stats()
			injected += c.Corrupted + c.LinkDropped + c.Jittered + c.OverrunDropped +
				c.IRQsLost + c.IRQsSpurious + c.SoftirqStalls + c.ConsumerStalls
			rescues += c.WatchdogRescues
		}
		m["faults_injected"] = float64(injected)
		m["faults_rescues"] = float64(rescues)
	}

	if s.Conservation {
		for _, gen := range gens {
			gen.stop()
		}
		if err := tb.Drain(); err != nil {
			return nil, err
		}
		if err := tb.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("scenario: conservation check failed: %w", err)
		}
		m["conservation_ok"] = 1
	}

	var regs []*obs.Registry
	var streams [][]obs.Event
	for _, pipe := range tb.Pipes {
		if pipe == nil {
			continue
		}
		regs = append(regs, pipe.M)
		streams = append(streams, pipe.T.Events())
	}
	if len(regs) > 0 {
		res.Digests["metrics"] = digestBytes([]byte(obs.PrometheusText(obs.MergeRegistries(regs...))))
		spans, err := json.Marshal(obs.MergeEvents(streams...))
		if err != nil {
			return nil, err
		}
		res.Digests["spans"] = digestBytes(spans)
	}
	return res, nil
}

// schedulePhases arms the diurnal rate timeline: at each phase boundary
// the generator's rate becomes base × rate_x. The mutations run on the
// generator's own engine, so they are deterministic at any worker count.
func schedulePhases(eng *sim.Engine, g Group, base float64, set func(rate float64)) {
	for _, ph := range g.Phases {
		x := ph.RateX
		eng.At(ph.At, func() { set(base * x) })
	}
}

// runCustomCluster runs a declared multi-host topology, mirroring the
// cluster experiment's measurement pass.
func (p *Plan) runCustomCluster() (*Result, error) {
	s := p.Scenario
	pm := p.Params
	c, err := cluster.New(*p.ClusterRun)
	if err != nil {
		return nil, err
	}
	if err := c.Run(pm.Duration, pm.Workers); err != nil {
		return nil, err
	}

	res := &Result{Metrics: map[string]float64{}, Digests: map[string]string{}}
	m := res.Metrics
	hiH, loH := c.LatencyHists()
	addSummary(m, "hi", hiH.Summarize())
	addSummary(m, "lo", loH.Summarize())
	hiSent, hiRecv, loSent, loRecv, _, floodRecv := c.FlowCounts()
	m["hi_sent"], m["hi_recv"] = float64(hiSent), float64(hiRecv)
	m["lo_sent"], m["lo_recv"] = float64(loSent), float64(loRecv)
	m["flood_recv"] = float64(floodRecv)
	m["admit_denied"] = float64(c.AdmissionDenied())
	drops, shed := c.FabricDrops()
	m["fabric_drops"], m["fabric_shed"] = float64(drops), float64(shed)
	max, mean := c.FabricUtilization(c.Horizon())
	m["fabric_util_max"], m["fabric_util_mean"] = max, mean
	m["windows"] = float64(c.Group.Windows)
	m["racks"] = float64(c.Cfg.Fabric.Racks)
	if p.ClusterRun.Recovery != nil {
		m["detections"] = float64(len(c.Detections()))
		m["migrated"] = float64(len(c.Migrations()))
		m["snapshot_version"] = float64(c.Snapshot().Version)
		rx, tx := c.CrashDrops()
		m["crash_dropped"] = float64(rx + tx)
		m["epoch_dropped"] = float64(c.EpochDrops())
		m["admit_retries"] = float64(c.RecoveryRetries())
	}
	if c.Cfg.Host.Fault != nil {
		var injected uint64
		for _, n := range c.Nodes {
			st := n.Plane.Stats()
			injected += st.Corrupted + st.LinkDropped + st.Jittered + st.OverrunDropped +
				st.IRQsLost + st.IRQsSpurious + st.SoftirqStalls + st.ConsumerStalls +
				st.HostCrashes
		}
		m["faults_injected"] = float64(injected)
	}

	pipes := c.Pipes()
	regs := make([]*obs.Registry, len(pipes))
	streams := make([][]obs.Event, len(pipes))
	for i, pipe := range pipes {
		regs[i] = pipe.M
		streams[i] = pipe.T.Events()
	}
	res.Digests["metrics"] = digestBytes([]byte(obs.PrometheusText(obs.MergeRegistries(regs...))))
	spans, err := json.Marshal(obs.MergeEvents(streams...))
	if err != nil {
		return nil, err
	}
	res.Digests["spans"] = digestBytes(spans)

	if err := c.Settle(0, pm.Workers); err != nil {
		return nil, err
	}
	if err := c.CheckInvariants(s.Conservation); err != nil {
		return nil, fmt.Errorf("scenario: conservation check failed: %w", err)
	}
	if s.Conservation {
		m["conservation_ok"] = 1
	}
	return res, nil
}

func digestBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
