package scenario

import (
	"path/filepath"
	"reflect"
	"testing"

	"prism/internal/experiments"
	"prism/internal/sim"
	"prism/internal/testbed"
)

const corpusDir = "../../scenarios"

func loadCorpus(t *testing.T, name string) *Plan {
	t.Helper()
	s, err := Load(filepath.Join(corpusDir, name))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	plan, err := Compile(s)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return plan
}

// goldenParams is the exact parameter block the committed experiment
// fixtures were captured with (detParams in internal/experiments); the
// figure scenario files must compile to it bit for bit.
func goldenParams() experiments.Params {
	p := experiments.Default()
	p.Warmup = 5 * sim.Millisecond
	p.Duration = 50 * sim.Millisecond
	return p
}

// TestFigureScenariosCompileToGoldenParams proves the refactor's central
// claim at the input layer: each committed paper-figure scenario lowers
// onto exactly the harness parameters the golden fixtures pin.
func TestFigureScenariosCompileToGoldenParams(t *testing.T) {
	want := goldenParams()
	for _, name := range []string{"fig3.yaml", "fig8.yaml", "fig9.yaml", "fig11.yaml",
		"stages.yaml", "policies.yaml", "chaos.yaml", "cluster.yaml"} {
		plan := loadCorpus(t, name)
		if !reflect.DeepEqual(plan.Params, want) {
			t.Errorf("%s: compiled params diverge from detParams\ngot:  %+v\nwant: %+v",
				name, plan.Params, want)
		}
	}
}

func TestFigureScenarioGrids(t *testing.T) {
	if got := loadCorpus(t, "fig11.yaml").Fig11Loads; !reflect.DeepEqual(got, []float64{0, 100_000, 300_000}) {
		t.Errorf("fig11 loads = %v", got)
	}
	if got := loadCorpus(t, "chaos.yaml").ChaosRates; !reflect.DeepEqual(got, []float64{0, 0.2, 0.4}) {
		t.Errorf("chaos rates = %v", got)
	}
	cc := loadCorpus(t, "cluster.yaml").ClusterCfg
	want := experiments.DefaultClusterConfig()
	if !reflect.DeepEqual(cc, want) {
		t.Errorf("cluster config = %+v, want %+v", cc, want)
	}
}

func TestCustomCompile(t *testing.T) {
	t.Run("incast", func(t *testing.T) {
		plan := loadCorpus(t, "incast.yaml")
		if plan.Spec == nil {
			t.Fatal("incast should compile to a testbed spec")
		}
		if plan.Spec.Split != testbed.Monolithic || !plan.Spec.Shed {
			t.Errorf("spec = %+v", plan.Spec)
		}
		fanin := plan.Scenario.Workload[1]
		if fanin.Senders != 8 {
			t.Errorf("fan-in senders = %d", fanin.Senders)
		}
	})
	t.Run("wifi-ap", func(t *testing.T) {
		plan := loadCorpus(t, "wifi-ap.yaml")
		c := plan.Spec.Costs
		if c == nil {
			t.Fatal("wifi-ap must override the link cost model")
		}
		if c.WireLatency != 200*sim.Microsecond || c.LinkBandwidthBps != 54_000_000 {
			t.Errorf("link costs = latency %v bw %d", c.WireLatency, c.LinkBandwidthBps)
		}
	})
	t.Run("fault-window", func(t *testing.T) {
		plan := loadCorpus(t, "fault-window.yaml")
		f := plan.Spec.Fault
		if f == nil {
			t.Fatal("fault-window must attach a fault plane")
		}
		if len(f.Phases) != 2 {
			t.Fatalf("phases = %+v", f.Phases)
		}
		if f.Seed != plan.Params.Seed {
			t.Errorf("fault seed %d should default to the scenario seed %d", f.Seed, plan.Params.Seed)
		}
		if f.Phases[0].From != 15*sim.Millisecond || f.Phases[0].Until != 25*sim.Millisecond {
			t.Errorf("phase 0 window = %+v", f.Phases[0])
		}
		if !plan.Spec.Shed {
			t.Error("shed should be on")
		}
	})
	t.Run("rss-split", func(t *testing.T) {
		plan := loadCorpus(t, "rss-split.yaml")
		if plan.Spec.Split != testbed.RSSSplit || plan.Spec.RxQueues != 2 {
			t.Errorf("spec = %+v", plan.Spec)
		}
	})
	t.Run("diurnal", func(t *testing.T) {
		plan := loadCorpus(t, "diurnal.yaml")
		var phased *Group
		for i := range plan.Scenario.Workload {
			if len(plan.Scenario.Workload[i].Phases) > 0 {
				phased = &plan.Scenario.Workload[i]
			}
		}
		if phased == nil || len(phased.Phases) != 2 {
			t.Fatalf("diurnal needs a phased group: %+v", plan.Scenario.Workload)
		}
	})
}
