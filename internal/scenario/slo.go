package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// SLO is one declarative assertion over the run's metrics, written as
// `metric op value` (e.g. `hi_p99_us <= 500`). Every metric a run
// produces is fair game; an assertion naming an unknown metric fails the
// run with the valid names listed.
type SLO struct {
	Metric string
	Op     string
	Value  float64
	// Raw is the assertion as written, for rendering.
	Raw string
}

var sloOps = map[string]func(a, b float64) bool{
	"<=": func(a, b float64) bool { return a <= b },
	">=": func(a, b float64) bool { return a >= b },
	"<":  func(a, b float64) bool { return a < b },
	">":  func(a, b float64) bool { return a > b },
	"==": func(a, b float64) bool { return a == b },
	"!=": func(a, b float64) bool { return a != b },
}

func parseSLO(path, raw string) (SLO, error) {
	fields := strings.Fields(raw)
	if len(fields) != 3 {
		return SLO{}, fmt.Errorf("%s: want `metric op value`, got %q", path, raw)
	}
	s := SLO{Metric: fields[0], Op: fields[1], Value: 0, Raw: raw}
	if _, ok := sloOps[s.Op]; !ok {
		ops := make([]string, 0, len(sloOps))
		for op := range sloOps {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		return SLO{}, fmt.Errorf("%s: unknown operator %q (valid: %s)",
			path, s.Op, strings.Join(ops, ", "))
	}
	v, err := parseFloatScalar(path, fields[2])
	if err != nil {
		return SLO{}, err
	}
	s.Value = v
	return s, nil
}

// SLOResult is one evaluated assertion.
type SLOResult struct {
	Expr     string
	Measured float64
	Pass     bool
}

// Eval checks the assertion against the run's metrics.
func (s SLO) Eval(metrics map[string]float64) (SLOResult, error) {
	v, ok := metrics[s.Metric]
	if !ok {
		names := make([]string, 0, len(metrics))
		for n := range metrics {
			names = append(names, n)
		}
		sort.Strings(names)
		return SLOResult{}, fmt.Errorf("slo %q: unknown metric %q (this run produced: %s)",
			s.Raw, s.Metric, strings.Join(names, ", "))
	}
	return SLOResult{Expr: s.Raw, Measured: v, Pass: sloOps[s.Op](v, s.Value)}, nil
}
