package scenario

import (
	"fmt"

	"prism/internal/cluster"
	"prism/internal/experiments"
	"prism/internal/fault"
	"prism/internal/netdev"
	"prism/internal/prio"
	rec "prism/internal/recover"
	"prism/internal/testbed"
)

// Plan is a compiled scenario: the exact inputs the Go harnesses take.
// Compile is a pure lowering — no simulation state is built here — so a
// Plan can be inspected, and Run executed, independently.
type Plan struct {
	Scenario *Scenario

	// Params is the shared harness parameter block; every topology and
	// experiment derives from it, exactly as the figure code does.
	Params experiments.Params

	// Kind names what Run will execute: an experiment kind (fig3 …
	// cluster) or "custom/<split>".
	Kind string

	// Experiment dispatch (nil for custom topologies).
	Fig11Loads []float64
	ChaosRates []float64
	Variants   []experiments.PolicyVariant
	ClusterCfg experiments.ClusterConfig

	// Custom topology targets: Spec for single-host splits, Cluster for
	// multi-host runs. Exactly one is non-nil on a custom plan.
	Spec       *testbed.Spec
	ClusterRun *cluster.Config
}

var modeNames = map[string]prio.Mode{
	"vanilla":     prio.ModeVanilla,
	"prism-batch": prio.ModeBatch,
	"prism-sync":  prio.ModeSync,
}

// Compile lowers a validated Scenario onto experiments.Params,
// testbed.Spec and cluster.Config. The paper-figure scenarios compile to
// byte-identical harness inputs — the round-trip tests prove the outputs
// match the committed golden fixtures bit for bit.
func Compile(s *Scenario) (*Plan, error) {
	p := experiments.Default()
	p.Seed = s.Seed
	p.Warmup = s.Warmup
	p.Duration = s.Duration
	p.Workers = s.Workers
	tp := s.Traffic
	if tp.HighRate > 0 {
		p.HighRate = tp.HighRate
	}
	if tp.BGRate > 0 {
		p.BGRate = tp.BGRate
	}
	if tp.LoadRate > 0 {
		p.LoadRate = tp.LoadRate
	}
	if tp.BGBurst > 0 {
		p.BGBurst = tp.BGBurst
	}
	if tp.EchoCost > 0 {
		p.EchoCost = tp.EchoCost
	}
	if tp.SinkCost > 0 {
		p.SinkCost = tp.SinkCost
	}
	p.DriverPrio = tp.DriverPrio
	plan := &Plan{Scenario: s, Params: p}

	if e := s.Experiment; e != nil {
		plan.Kind = e.Kind
		switch e.Kind {
		case "fig11":
			plan.Fig11Loads = e.Loads
		case "chaos":
			plan.ChaosRates = e.Rates
		case "policies":
			plan.Variants = experiments.PolicyByName(e.Policy)
		case "cluster":
			cc := experiments.ClusterConfig{Hosts: e.Hosts, Containers: e.Containers}
			for _, name := range e.Placements {
				pol, err := cluster.ParsePlacement(name)
				if err != nil {
					return nil, fmt.Errorf("scenario.experiment.placements: %w", err)
				}
				cc.Placements = append(cc.Placements, pol)
			}
			plan.ClusterCfg = cc
		}
		return plan, nil
	}

	t := s.Topology
	plan.Kind = "custom/" + t.Split
	mode := modeNames[t.Mode]
	var costs *netdev.Costs
	if l := s.Link; l != nil {
		c := *netdev.DefaultCosts()
		if l.WireLatency > 0 {
			c.WireLatency = l.WireLatency
		}
		if l.BandwidthBps > 0 {
			c.LinkBandwidthBps = l.BandwidthBps
		}
		costs = &c
	}

	if t.Split == "cluster" {
		host := experiments.BaseSpec(p, mode)
		host.Policy = t.Policy
		host.Costs = costs
		host.Shed = t.Shed
		cfg := &cluster.Config{
			Hosts:    t.Hosts,
			HostCap:  t.HostCap,
			Seed:     p.Seed,
			Host:     host,
			Fabric:   cluster.FabricConfig{Racks: t.Racks},
			Warmup:   p.Warmup,
			EchoCost: p.EchoCost,
			SinkCost: p.SinkCost,
		}
		if t.Placement != "" {
			pol, err := cluster.ParsePlacement(t.Placement)
			if err != nil {
				return nil, fmt.Errorf("scenario.topology.placement: %w", err)
			}
			cfg.Placement = pol
		}
		if a := t.Admission; a != nil {
			cfg.Admission = &cluster.Admission{
				Rate: a.Rate, Burst: float64(a.Burst), HiReserve: a.HiReserve,
			}
		}
		for _, g := range s.Workload {
			for k := 0; k < g.Count; k++ {
				name := g.Name
				if g.Count > 1 {
					name = fmt.Sprintf("%s%03d", g.Name, k)
				}
				cfg.Specs = append(cfg.Specs, cluster.ContainerSpec{
					Name:    name,
					Hi:      g.Priority == "hi",
					Rate:    g.Rate,
					Flood:   g.Type == "flood",
					Ingress: g.Ingress,
				})
			}
		}
		if f := s.Faults; f != nil {
			// A fault section on a cluster arms the recovery controller:
			// scripted kind entries lower to its failure script, rate
			// content to per-host fault planes (cluster.New re-derives
			// each plane's seed from the host's engine stream).
			rc := &cluster.RecoveryConfig{}
			fcfg := &fault.Config{Rate: f.Rate, Classes: f.Classes}
			rateContent := f.Rate > 0
			for _, ph := range f.Phases {
				if ph.Kind != "" {
					kind, err := rec.ParseEventKind(ph.Kind)
					if err != nil {
						return nil, fmt.Errorf("scenario.faults.phases: %w", err)
					}
					rc.Script = append(rc.Script, rec.Event{
						Kind: kind, Host: ph.Host, Tor: ph.Tor,
						At: ph.From, Until: ph.Until,
					})
					continue
				}
				rateContent = true
				fcfg.Phases = append(fcfg.Phases, fault.Phase{
					From: ph.From, Until: ph.Until, Rate: ph.Rate, Classes: ph.Classes,
				})
			}
			if rateContent {
				cfg.Host.Fault = fcfg
				cfg.Host.Shed = cfg.Host.Shed || f.Shed
			}
			cfg.Recovery = rc
		}
		plan.ClusterRun = cfg
		return plan, nil
	}

	spec := experiments.BaseSpec(p, mode)
	switch t.Split {
	case "wire-split":
		spec.Split = testbed.WireSplit
	case "rss-split":
		spec.Split = testbed.RSSSplit
	default:
		spec.Split = testbed.Monolithic
	}
	spec.Policy = t.Policy
	spec.Costs = costs
	spec.RxQueues = t.RxQueues
	spec.BatchSize = t.BatchSize
	spec.Shed = t.Shed
	if f := s.Faults; f != nil {
		cfg := &fault.Config{
			Seed:    f.Seed,
			Rate:    f.Rate,
			Classes: f.Classes,
		}
		if !f.seedSet {
			cfg.Seed = p.Seed
		}
		for _, ph := range f.Phases {
			cfg.Phases = append(cfg.Phases, fault.Phase{
				From: ph.From, Until: ph.Until, Rate: ph.Rate, Classes: ph.Classes,
			})
		}
		spec.Fault = cfg
		spec.Shed = spec.Shed || f.Shed
	}
	plan.Spec = &spec
	return plan, nil
}
