// Package testnet provides synthetic device chains for engine-level tests:
// a fixed-cost eth→br→veth pipeline with canned handlers, independent of
// the real protocol handlers. It lets the NAPI engine tests assert
// scheduling behaviour (poll order, preemption, budgets) in isolation.
package testnet

import (
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/sim"
)

// Chain is a three-stage synthetic pipeline.
type Chain struct {
	Eth, Br, Veth *netdev.Device

	// Delivered records (skb, time) for every packet that completed the
	// pipeline, in delivery order.
	Delivered []Delivery

	// StageCost is charged per packet at every stage.
	StageCost sim.Time
}

// Delivery is one completed packet.
type Delivery struct {
	SKB *pkt.SKB
	At  sim.Time
}

// NewChain builds the synthetic pipeline. Packets flow eth→br→veth and are
// recorded on delivery. Each stage charges stageCost per packet.
func NewChain(stageCost sim.Time, queueCap int) *Chain {
	c := &Chain{StageCost: stageCost}
	c.Veth = netdev.NewDevice("veth", netdev.DriverBacklog, netdev.HandlerFunc(
		func(now sim.Time, s *pkt.SKB) netdev.Result {
			return netdev.Result{
				Verdict: netdev.VerdictDeliver,
				Cost:    stageCost,
				Deliver: func(at sim.Time) { c.Delivered = append(c.Delivered, Delivery{SKB: s, At: at}) },
			}
		}), queueCap)
	c.Br = netdev.NewDevice("br", netdev.DriverGroCells, netdev.HandlerFunc(
		func(now sim.Time, s *pkt.SKB) netdev.Result {
			return netdev.Result{Verdict: netdev.VerdictForward, Cost: stageCost, Next: c.Veth}
		}), queueCap)
	c.Eth = netdev.NewDevice("eth", netdev.DriverNIC, netdev.HandlerFunc(
		func(now sim.Time, s *pkt.SKB) netdev.Result {
			return netdev.Result{Verdict: netdev.VerdictForward, Cost: stageCost, Next: c.Br}
		}), queueCap)
	return c
}

// Inject places n packets into the eth ring with the given priority flag
// and arrival timestamp, then notifies the scheduler once, as a NIC DMA
// burst followed by a single IRQ would.
func (c *Chain) Inject(sched netdev.Scheduler, n int, high bool, at sim.Time, firstID uint64) {
	for i := 0; i < n; i++ {
		c.Eth.LowQ.Enqueue(&pkt.SKB{ID: firstID + uint64(i), HighPriority: high, Arrived: at})
	}
	sched.NotifyArrival(c.Eth, false)
}

// TestCosts returns a cost model with simple round numbers for assertions.
func TestCosts() *netdev.Costs {
	return &netdev.Costs{
		NICPacket:        100,
		BridgePacket:     100,
		VethPacket:       100,
		HostPacket:       200,
		BatchOverhead:    1000,
		StageSwitch:      50,
		IRQ:              500,
		SoftirqRestart:   2000,
		GROPacket:        10,
		AppWakeup:        3000,
		AppTx:            2000,
		WireLatency:      1000,
		LinkBandwidthBps: 100e9,
		BatchSize:        64,
		Budget:           300,
	}
}
