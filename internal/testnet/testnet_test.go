package testnet

import (
	"testing"

	"prism/internal/cpu"
	"prism/internal/napi"
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/sim"
)

func TestChainWiring(t *testing.T) {
	c := NewChain(100, 16)
	skb := &pkt.SKB{ID: 1}

	res := c.Eth.Handler.HandlePacket(0, skb)
	if res.Verdict != netdev.VerdictForward || res.Next != c.Br || res.Cost != 100 {
		t.Fatalf("eth result = %+v", res)
	}
	res = c.Br.Handler.HandlePacket(0, skb)
	if res.Verdict != netdev.VerdictForward || res.Next != c.Veth || res.Cost != 100 {
		t.Fatalf("br result = %+v", res)
	}
	res = c.Veth.Handler.HandlePacket(0, skb)
	if res.Verdict != netdev.VerdictDeliver || res.Deliver == nil {
		t.Fatalf("veth result = %+v", res)
	}
	res.Deliver(500)
	if len(c.Delivered) != 1 || c.Delivered[0].SKB != skb || c.Delivered[0].At != 500 {
		t.Fatalf("delivered = %+v", c.Delivered)
	}
}

func TestChainDriverKinds(t *testing.T) {
	c := NewChain(100, 16)
	kinds := []struct {
		dev  *netdev.Device
		want netdev.DriverKind
	}{
		{c.Eth, netdev.DriverNIC},
		{c.Br, netdev.DriverGroCells},
		{c.Veth, netdev.DriverBacklog},
	}
	for _, k := range kinds {
		if k.dev.Kind != k.want {
			t.Errorf("%s kind = %v, want %v", k.dev.Name, k.dev.Kind, k.want)
		}
	}
}

type fakeSched struct {
	calls []*netdev.Device
	highs []bool
}

func (f *fakeSched) NotifyArrival(dev *netdev.Device, high bool) {
	f.calls = append(f.calls, dev)
	f.highs = append(f.highs, high)
}

func TestInjectBatchesOneIRQ(t *testing.T) {
	c := NewChain(100, 16)
	fs := &fakeSched{}
	c.Inject(fs, 3, true, 42, 10)
	if len(fs.calls) != 1 || fs.calls[0] != c.Eth {
		t.Fatalf("NotifyArrival calls = %v, want one for eth", fs.calls)
	}
	if fs.highs[0] {
		t.Error("DMA-burst IRQ carried a priority hint; the ring cannot know priority")
	}
	var ids []uint64
	for !c.Eth.LowQ.Empty() {
		s := c.Eth.LowQ.Dequeue()
		ids = append(ids, s.ID)
		if !s.HighPriority || s.Arrived != 42 {
			t.Errorf("skb %d = %+v", s.ID, s)
		}
	}
	if len(ids) != 3 || ids[0] != 10 || ids[1] != 11 || ids[2] != 12 {
		t.Errorf("ids = %v, want [10 11 12]", ids)
	}
}

// TestChainThroughSoftirq drives the synthetic pipeline through a real
// softirq engine and checks packets complete in FIFO order.
func TestChainThroughSoftirq(t *testing.T) {
	eng := sim.NewEngine(1)
	rx := napi.NewEngine(eng, cpu.NewCore(1, nil), TestCosts())
	c := NewChain(100, 64)
	eng.At(0, func() { c.Inject(rx, 5, false, 0, 1) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(c.Delivered) != 5 {
		t.Fatalf("delivered %d packets, want 5", len(c.Delivered))
	}
	for i, d := range c.Delivered {
		if d.SKB.ID != uint64(i+1) {
			t.Errorf("delivery %d has ID %d, want FIFO order", i, d.SKB.ID)
		}
		if d.SKB.Stage != 3 {
			t.Errorf("delivery %d completed %d stages, want 3", i, d.SKB.Stage)
		}
	}
	st := rx.Stats()
	if st.Packets != 15 {
		t.Errorf("engine processed %d stage-passes, want 15 (5 packets x 3 stages)", st.Packets)
	}
	if st.Delivered != 5 || st.Dropped != 0 {
		t.Errorf("delivered/dropped = %d/%d, want 5/0", st.Delivered, st.Dropped)
	}
}

func TestTestCostsRoundNumbers(t *testing.T) {
	costs := TestCosts()
	if costs.BatchSize != 64 || costs.Budget != 300 {
		t.Errorf("batch/budget = %d/%d, want the kernel defaults 64/300", costs.BatchSize, costs.Budget)
	}
	if costs.NICPacket != costs.BridgePacket || costs.BridgePacket != costs.VethPacket {
		t.Error("per-stage costs differ; chain assertions rely on uniform stage cost")
	}
}
