package cluster

import (
	"fmt"

	"prism/internal/sim"
)

// The control plane is deliberately simple and wholly deterministic: a
// placement decision made at build time, an immutable routing snapshot
// distributed to every switch, and a per-host token bucket at fabric
// ingress. Real cluster managers converge to the same shape — a
// scheduler output plus a versioned route table pushed to the dataplane.
// Each snapshot is immutable; live recovery (recovery.go) replaces the
// whole snapshot through one atomic pointer at a barrier epoch, so
// switches on different shards always read a consistent table and the
// parallel simulation stays bit-identical: within a window every shard
// sees the same version, and swaps happen only while all shards are
// quiescent.

// Placement selects the container scheduling policy.
type Placement int

const (
	// PlaceSpread balances container count across hosts (the default
	// Kubernetes-like least-loaded choice).
	PlaceSpread Placement = iota
	// PlacePack fills hosts in order, moving on only when one is full —
	// the bin-packing / consolidation policy.
	PlacePack
	// PlacePriority packs best-effort containers first, then spreads the
	// high-priority ones across the least-loaded hosts, so prioritized
	// flows land where per-host contention is lowest.
	PlacePriority
)

// Placements lists the compared policies in presentation order.
var Placements = []Placement{PlaceSpread, PlacePack, PlacePriority}

// String names the policy as experiments report it.
func (p Placement) String() string {
	switch p {
	case PlaceSpread:
		return "spread"
	case PlacePack:
		return "pack"
	case PlacePriority:
		return "priority"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// ParsePlacement resolves a policy by its String name.
func ParsePlacement(name string) (Placement, error) {
	for _, p := range Placements {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown placement policy %q (valid: spread, pack, priority)", name)
}

// ContainerSpec declares one container workload for the placer: its
// priority class, offered rate, shape (echo server or flood sink), and
// the host whose client machine originates its flow.
type ContainerSpec struct {
	Name string
	// Hi marks the container's flow as high priority: the control plane
	// installs a rule in the destination host's priority database and
	// the fabric serves its frames from the strict-priority queue.
	Hi bool
	// Rate is the flow's offered packets per second.
	Rate float64
	// Flood selects an open-loop UDP flood into a counting sink instead
	// of a latency-measured echo flow.
	Flood bool
	// Ingress is the host whose client machine sends this flow (< 0
	// derives a deterministic spread from the container index).
	Ingress int
}

// Place assigns each container to a host, deterministically: ties break
// toward the lowest host ID, and the input order is part of the contract
// (the same specs always yield the same assignment). hostCap bounds
// containers per host; it errors when the policy cannot respect it.
func Place(policy Placement, specs []ContainerSpec, hosts, hostCap int) ([]int, error) {
	if hosts < 1 {
		return nil, fmt.Errorf("cluster: placement needs at least one host")
	}
	if hostCap < 1 {
		return nil, fmt.Errorf("cluster: host capacity must be positive")
	}
	if len(specs) > hosts*hostCap {
		return nil, fmt.Errorf("cluster: %d containers exceed cluster capacity %d (%d hosts × %d)",
			len(specs), hosts*hostCap, hosts, hostCap)
	}
	count := make([]int, hosts)
	assign := make([]int, len(specs))
	leastLoaded := func() int {
		best := -1
		for h := 0; h < hosts; h++ {
			if count[h] >= hostCap {
				continue
			}
			if best < 0 || count[h] < count[best] {
				best = h
			}
		}
		return best
	}
	firstFit := func() int {
		for h := 0; h < hosts; h++ {
			if count[h] < hostCap {
				return h
			}
		}
		return -1
	}
	place := func(i, h int) {
		assign[i] = h
		count[h]++
	}
	switch policy {
	case PlaceSpread:
		for i := range specs {
			place(i, leastLoaded())
		}
	case PlacePack:
		for i := range specs {
			place(i, firstFit())
		}
	case PlacePriority:
		// Best-effort first, packed; then high priority onto the hosts
		// the packing left emptiest.
		for i, s := range specs {
			if !s.Hi {
				place(i, firstFit())
			}
		}
		for i, s := range specs {
			if s.Hi {
				place(i, leastLoaded())
			}
		}
	default:
		return nil, fmt.Errorf("cluster: unknown placement policy %d", int(policy))
	}
	return assign, nil
}

// Route is one snapshot entry: where frames for a destination port go.
type Route struct {
	// Host is the destination host ID — the container's host for service
	// ports, the flow's ingress host for client (reply) ports.
	Host int
	// Hi selects the fabric's strict-priority queue.
	Hi bool
	// ToClient marks a reply route: the destination host delivers the
	// frame to its client demux instead of its NIC.
	ToClient bool
}

// Snapshot is an immutable port→route table, versioned like a real
// control plane's pushed state. Nothing mutates a snapshot after
// construction, so concurrent reads from parallel shards are safe and
// deterministic; reconfiguration builds a new snapshot (copying the
// route map — the old snapshot still aliases its own) with a strictly
// larger version and swaps it in atomically at a barrier.
type Snapshot struct {
	Version int
	routes  map[uint16]Route
}

// NewSnapshot builds a snapshot from a route table (the map is not
// copied; callers must not retain it).
func NewSnapshot(version int, routes map[uint16]Route) *Snapshot {
	return &Snapshot{Version: version, routes: routes}
}

// Lookup resolves a destination port.
func (s *Snapshot) Lookup(port uint16) (Route, bool) {
	r, ok := s.routes[port]
	return r, ok
}

// Len reports the number of installed routes.
func (s *Snapshot) Len() int { return len(s.routes) }

// cloneRoutes copies the route table — the first step of building a
// successor snapshot without mutating the published one.
func (s *Snapshot) cloneRoutes() map[uint16]Route {
	m := make(map[uint16]Route, len(s.routes))
	for k, v := range s.routes {
		m[k] = v
	}
	return m
}

// Admission configures the per-host ingress token bucket.
type Admission struct {
	// Rate is tokens (frames) per second; Burst the bucket depth.
	Rate  float64
	Burst float64
	// HiReserve is the fraction of Burst only high-priority frames may
	// consume: best-effort admission stops once the bucket drains to
	// HiReserve×Burst, keeping headroom for prioritized flows — the
	// admission-control analogue of the paper's shed policy.
	HiReserve float64
}

// TokenBucket is a deterministic virtual-time token bucket: refill is a
// pure function of the event clock, so admission decisions are identical
// for any worker count.
type TokenBucket struct {
	// rate is the live refill rate; base the configured one (rate =
	// base × capacity factor while the cluster is degraded).
	rate   float64
	base   float64
	burst  float64
	floor  float64
	tokens float64
	last   sim.Time

	AdmittedHi, AdmittedLo uint64
	DeniedHi, DeniedLo     uint64
}

// NewTokenBucket builds a bucket that starts full.
func NewTokenBucket(a Admission) *TokenBucket {
	if a.Rate <= 0 || a.Burst <= 0 {
		return nil
	}
	return &TokenBucket{
		rate:   a.Rate,
		base:   a.Rate,
		burst:  a.Burst,
		floor:  a.HiReserve * a.Burst,
		tokens: a.Burst,
	}
}

// SetFactor rescales the refill rate to factor × the configured rate —
// the capacity-aware degraded-mode refill: with a fraction of the
// cluster down, ingress admission shrinks proportionally instead of
// funneling the full offered load at the survivors. Refill accrued at
// the old rate is settled up to now first, so the change is exact at the
// boundary. Call only from quiescent points (barriers); nil-safe.
func (b *TokenBucket) SetFactor(now sim.Time, factor float64) {
	if b == nil {
		return
	}
	if now > b.last {
		b.tokens += float64(now-b.last) * b.rate / float64(sim.Second)
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if factor < 0 {
		factor = 0
	}
	b.rate = b.base * factor
}

// Admit charges one token for a frame at virtual time now. A nil bucket
// admits everything (admission disabled). Best-effort frames are refused
// once the level falls to the high-priority reserve.
func (b *TokenBucket) Admit(now sim.Time, hi bool) bool {
	if b == nil {
		return true
	}
	if now > b.last {
		b.tokens += float64(now-b.last) * b.rate / float64(sim.Second)
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	avail := b.tokens
	if !hi {
		avail -= b.floor
	}
	if avail < 1 {
		if hi {
			b.DeniedHi++
		} else {
			b.DeniedLo++
		}
		return false
	}
	b.tokens--
	if hi {
		b.AdmittedHi++
	} else {
		b.AdmittedLo++
	}
	return true
}

// Denied returns the bucket's total refusals (zero for nil).
func (b *TokenBucket) Denied() uint64 {
	if b == nil {
		return 0
	}
	return b.DeniedHi + b.DeniedLo
}
