package cluster

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"prism/internal/cpu"
	"prism/internal/fault"
	"prism/internal/nic"
	"prism/internal/obs"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/testbed"
)

// --- control plane ---

func specsOf(pattern string) []ContainerSpec {
	specs := make([]ContainerSpec, len(pattern))
	for i, c := range pattern {
		specs[i] = ContainerSpec{Name: fmt.Sprintf("c%d", i), Hi: c == 'H'}
	}
	return specs
}

func TestPlaceSpread(t *testing.T) {
	got, err := Place(PlaceSpread, specsOf("LLLLL"), 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Least-loaded with lowest-ID ties: round-robin.
	want := []int{0, 1, 2, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spread placement = %v, want %v", got, want)
	}
}

func TestPlacePack(t *testing.T) {
	got, err := Place(PlacePack, specsOf("LLLLL"), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pack placement = %v, want %v", got, want)
	}
}

func TestPlacePriority(t *testing.T) {
	// Best-effort packs hosts 0 and 1; the high-priority containers then
	// go to the emptiest hosts.
	got, err := Place(PlacePriority, specsOf("LLHLH"), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("priority placement = %v, want %v", got, want)
	}
}

func TestPlaceRespectsCapacity(t *testing.T) {
	for _, pol := range Placements {
		assign, err := Place(pol, specsOf("HLHLHLHL"), 2, 4)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		count := map[int]int{}
		for _, h := range assign {
			count[h]++
		}
		for h, n := range count {
			if n > 4 {
				t.Fatalf("%v: host %d got %d containers, cap 4", pol, h, n)
			}
		}
	}
	if _, err := Place(PlaceSpread, specsOf("LLLLL"), 2, 2); err == nil {
		t.Fatal("placement over capacity must error")
	}
}

func TestParsePlacement(t *testing.T) {
	for _, p := range Placements {
		got, err := ParsePlacement(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePlacement(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePlacement("bogus"); err == nil {
		t.Fatal("unknown placement must error")
	}
}

func TestTokenBucket(t *testing.T) {
	b := NewTokenBucket(Admission{Rate: 1_000_000, Burst: 4, HiReserve: 0.5})
	// Burst of 4; best-effort stops at the reserve floor of 2.
	if !b.Admit(0, false) || !b.Admit(0, false) {
		t.Fatal("best-effort should drain down to the reserve")
	}
	if b.Admit(0, false) {
		t.Fatal("best-effort must stop at the hi reserve")
	}
	if !b.Admit(0, true) || !b.Admit(0, true) {
		t.Fatal("high priority should use the reserve")
	}
	if b.Admit(0, true) {
		t.Fatal("empty bucket must refuse even high priority")
	}
	// 1M tokens/s → 1 token per µs of virtual time.
	if !b.Admit(2*sim.Microsecond, true) {
		t.Fatal("refill must restore tokens")
	}
	if b.DeniedLo != 1 || b.DeniedHi != 1 || b.AdmittedHi != 3 || b.AdmittedLo != 2 {
		t.Fatalf("counter mismatch: %+v", b)
	}
	var nilBucket *TokenBucket
	if !nilBucket.Admit(0, false) {
		t.Fatal("nil bucket admits everything")
	}
}

func TestSnapshotLookup(t *testing.T) {
	s := NewSnapshot(7, map[uint16]Route{
		SvcPort(0): {Host: 3, Hi: true},
		CliPort(0): {Host: 1, Hi: true, ToClient: true},
	})
	if s.Version != 7 || s.Len() != 2 {
		t.Fatalf("snapshot meta wrong: v%d len %d", s.Version, s.Len())
	}
	if r, ok := s.Lookup(SvcPort(0)); !ok || r.Host != 3 || !r.Hi || r.ToClient {
		t.Fatalf("service route wrong: %+v %v", r, ok)
	}
	if _, ok := s.Lookup(9999); ok {
		t.Fatal("unknown port must miss")
	}
}

// --- full cluster ---

func testHostSpec() testbed.Spec {
	return testbed.Spec{
		Mode:       prio.ModeSync,
		CStates:    cpu.C1,
		AppCStates: cpu.C1,
		NIC: nic.Config{
			RxUsecs:      8 * sim.Microsecond,
			RxFrames:     32,
			AdaptiveIdle: 100 * sim.Microsecond,
			GRO:          true,
		},
	}
}

// testSpecs builds a small mixed workload: one flood per two hosts, every
// fifth remaining container a high-priority echo, the rest best-effort
// echoes.
func testSpecs(hosts, n int) []ContainerSpec {
	specs := make([]ContainerSpec, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i < hosts/2:
			specs = append(specs, ContainerSpec{Flood: true, Rate: 20_000, Ingress: i % hosts})
		case i%5 == 0:
			specs = append(specs, ContainerSpec{Hi: true, Rate: 2_000, Ingress: -1})
		default:
			specs = append(specs, ContainerSpec{Rate: 500, Ingress: -1})
		}
	}
	return specs
}

func smallConfig(seed uint64) Config {
	return Config{
		Hosts:     4,
		Placement: PlacePriority,
		Seed:      seed,
		Host:      testHostSpec(),
		Specs:     testSpecs(4, 24),
		Admission: &Admission{Rate: 200_000, Burst: 64, HiReserve: 0.25},
		Fabric:    FabricConfig{Racks: 2},
		Warmup:    2 * sim.Millisecond,
	}
}

func TestClusterRunsAndConserves(t *testing.T) {
	c, err := New(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(20*sim.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	hiSent, hiRecv, loSent, loRecv, _, floodRecv := c.FlowCounts()
	if hiSent == 0 || hiRecv == 0 || loSent == 0 || loRecv == 0 || floodRecv == 0 {
		t.Fatalf("flows idle: hi %d/%d lo %d/%d flood %d", hiSent, hiRecv, loSent, loRecv, floodRecv)
	}
	if err := c.CheckInvariants(false); err != nil {
		t.Fatalf("mid-run invariants: %v", err)
	}
	// The ToRs must have carried traffic, and with two racks the spine
	// must have seen cross-rack flows.
	for _, tor := range c.Tors {
		if tor.RxFrames == 0 {
			t.Fatalf("%s saw no frames", tor.Name)
		}
	}
	if c.Spine == nil || c.Spine.RxFrames == 0 {
		t.Fatal("spine saw no cross-rack frames")
	}
	if n := c.Terms(); n.Injected == 0 {
		t.Fatal("no frames entered the fabric")
	}
	// Settle and apply the zero-leak assertion.
	if err := c.Settle(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(true); err != nil {
		t.Fatalf("strict invariants after settle: %v", err)
	}
	if got := c.fabricInFlight(); got != 0 {
		t.Fatalf("settled fabric holds %d frames", got)
	}
}

// clusterFingerprint captures everything a deterministic run must
// reproduce: per-flow delivered sample sequences, the conservation terms,
// flow counts, and the merged metrics exposition.
type clusterFingerprint struct {
	samples [][]uint64
	terms   testbed.ClusterTerms
	counts  [6]uint64
	metrics string
	windows uint64
}

func runFingerprint(t *testing.T, cfg Config, workers int) clusterFingerprint {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([][]uint64, len(c.Flows))
	for _, f := range c.Flows {
		if f.PP == nil {
			continue
		}
		i := f.Index
		f.PP.OnSample = func(seq uint64, lat sim.Time) {
			samples[i] = append(samples[i], seq, uint64(lat))
		}
	}
	if err := c.Run(20*sim.Millisecond, workers); err != nil {
		t.Fatal(err)
	}
	var regs []*obs.Registry
	for _, p := range c.Pipes() {
		regs = append(regs, p.M)
	}
	hiS, hiR, loS, loR, flS, flR := c.FlowCounts()
	return clusterFingerprint{
		samples: samples,
		terms:   c.Terms(),
		counts:  [6]uint64{hiS, hiR, loS, loR, flS, flR},
		metrics: obs.PrometheusText(obs.MergeRegistries(regs...)),
		windows: c.Group.Windows,
	}
}

func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	base := runFingerprint(t, smallConfig(3), 1)
	if len(base.metrics) == 0 {
		t.Fatal("no metrics collected")
	}
	for _, workers := range []int{2, 4} {
		got := runFingerprint(t, smallConfig(3), workers)
		if !reflect.DeepEqual(got.samples, base.samples) {
			t.Fatalf("workers=%d: delivered sample sequences diverge", workers)
		}
		if !reflect.DeepEqual(got.terms, base.terms) {
			t.Fatalf("workers=%d: terms diverge: %+v vs %+v", workers, got.terms, base.terms)
		}
		if got.counts != base.counts {
			t.Fatalf("workers=%d: flow counts diverge: %v vs %v", workers, got.counts, base.counts)
		}
		if got.metrics != base.metrics {
			t.Fatalf("workers=%d: merged metrics diverge", workers)
		}
		if got.windows != base.windows {
			t.Fatalf("workers=%d: window schedule diverges: %d vs %d", workers, got.windows, base.windows)
		}
	}
}

func TestClusterAdmissionShedsLowFirst(t *testing.T) {
	cfg := smallConfig(5)
	// Starve the buckets so the floods overrun admission.
	cfg.Admission = &Admission{Rate: 5_000, Burst: 16, HiReserve: 0.5}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(20*sim.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	var deniedLo, admittedHi uint64
	for _, n := range c.Nodes {
		deniedLo += n.Bucket.DeniedLo
		admittedHi += n.Bucket.AdmittedHi
	}
	if deniedLo == 0 {
		t.Fatal("starved buckets refused no best-effort frames")
	}
	if admittedHi == 0 {
		t.Fatal("the hi reserve admitted no high-priority frames")
	}
	if c.AdmissionDenied() == 0 {
		t.Fatal("AdmissionDenied lost the refusals")
	}
	if err := c.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
}

func TestClusterWithFaultsStaysDeterministic(t *testing.T) {
	cfg := smallConfig(9)
	cfg.Host.Fault = &fault.Config{Rate: 0.2}
	base := runFingerprint(t, cfg, 1)
	got := runFingerprint(t, cfg, 3)
	if !reflect.DeepEqual(got.samples, base.samples) {
		t.Fatal("faulted cluster diverges across worker counts")
	}
	if got.metrics != base.metrics {
		t.Fatal("faulted cluster metrics diverge across worker counts")
	}
}

func TestClusterFaultPlanesInjectPerHost(t *testing.T) {
	cfg := smallConfig(11)
	cfg.Host.Fault = &fault.Config{Rate: 0.3}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30*sim.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	var injected uint64
	seen := map[uint64]bool{}
	for _, n := range c.Nodes {
		if n.Plane == nil {
			t.Fatalf("%s built without a plane", n.Name)
		}
		st := n.Plane.Stats()
		sum := st.Corrupted + st.LinkDropped + st.Jittered + st.OverrunDropped +
			st.IRQsLost + st.IRQsSpurious + st.SoftirqStalls + st.ConsumerStalls
		injected += sum
		seen[sum] = true
	}
	if injected == 0 {
		t.Fatal("no faults injected anywhere")
	}
	if len(seen) < 2 {
		t.Fatal("per-host fault streams look identical — seeds not derived per host")
	}
	if err := c.Settle(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(true); err != nil {
		t.Fatalf("strict invariants after faulted settle: %v", err)
	}
}

func TestClusterFabricObservability(t *testing.T) {
	c, err := New(smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10*sim.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	var regs []*obs.Registry
	for _, p := range c.Pipes() {
		regs = append(regs, p.M)
	}
	merged := obs.MergeRegistries(regs...)
	if merged.CounterValue("prism_fabric_frames_total", obs.Labels{}) == 0 {
		t.Fatal("no fabric spans recorded")
	}
	text := obs.PrometheusText(merged)
	for _, want := range []string{`shard="host00"`, `shard="tor00"`, `shard="spine"`, "prism_fabric_frames_total"} {
		if !strings.Contains(text, want) {
			t.Fatalf("merged exposition lacks %s", want)
		}
	}
	max, mean := c.FabricUtilization(c.Horizon())
	if max <= 0 || mean <= 0 || max > 1 || mean > max {
		t.Fatalf("implausible fabric utilization max=%v mean=%v", max, mean)
	}
}

func TestClusterFabricOverflowShedsLow(t *testing.T) {
	// A slow, shallow egress port: the flood's bursts overflow it, and
	// high-priority arrivals evict queued best-effort frames.
	cfg := Config{
		Hosts:     2,
		Placement: PlacePack,
		Seed:      17,
		Host:      testHostSpec(),
		Specs: []ContainerSpec{
			{Name: "bg", Flood: true, Rate: 60_000, Ingress: 1},
			{Name: "hi", Hi: true, Rate: 20_000, Ingress: 1},
		},
		Fabric: FabricConfig{Racks: 1, LinkGbps: 0.5, QueueCap: 2},
		Warmup: sim.Millisecond,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(20*sim.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	dropped, shed := c.FabricDrops()
	if dropped == 0 {
		t.Fatal("saturated port dropped nothing")
	}
	if shed == 0 {
		t.Fatal("high-priority arrivals shed no best-effort frames")
	}
	if err := c.CheckInvariants(false); err != nil {
		t.Fatalf("invariants with fabric drops: %v", err)
	}
	if err := c.Settle(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(true); err != nil {
		t.Fatalf("strict invariants after lossy run: %v", err)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Hosts: 2}); err == nil {
		t.Fatal("empty spec list must error")
	}
	cfg := smallConfig(1)
	cfg.Hosts = 1
	cfg.HostCap = 4
	if _, err := New(cfg); err == nil {
		t.Fatal("over-capacity placement must error")
	}
}
