package cluster

import (
	"reflect"
	"strings"
	"testing"

	"prism/internal/fault"
	rec "prism/internal/recover"
	"prism/internal/sim"
)

// --- token bucket degraded-mode refill ---

func TestTokenBucketRefillAtDepletionBoundary(t *testing.T) {
	// 1M tokens/s = exactly one token per microsecond of virtual time.
	b := NewTokenBucket(Admission{Rate: 1_000_000, Burst: 4})
	for i := 0; i < 4; i++ {
		if !b.Admit(0, false) {
			t.Fatalf("admit %d of the initial burst refused", i)
		}
	}
	if b.Admit(0, false) {
		t.Fatal("empty bucket admitted a frame")
	}
	// Exactly one refill interval later the bucket holds exactly one
	// token: the admit at the boundary must succeed, and the very next
	// one at the same instant must not.
	if !b.Admit(sim.Microsecond, false) {
		t.Fatal("boundary refill token refused")
	}
	if b.Admit(sim.Microsecond, false) {
		t.Fatal("second admit at the refill boundary succeeded")
	}
}

func TestTokenBucketSetFactor(t *testing.T) {
	b := NewTokenBucket(Admission{Rate: 1_000_000, Burst: 8})
	for i := 0; i < 8; i++ {
		b.Admit(0, false)
	}
	// 4µs at the full rate accrued 4 tokens; SetFactor must settle them
	// before halving the rate.
	b.SetFactor(4*sim.Microsecond, 0.5)
	for i := 0; i < 4; i++ {
		if !b.Admit(4*sim.Microsecond, false) {
			t.Fatalf("token %d accrued before SetFactor lost", i)
		}
	}
	if b.Admit(4*sim.Microsecond, false) {
		t.Fatal("settled bucket over-admitted")
	}
	// From here refill runs at 500k/s: 2µs buys exactly one token.
	if !b.Admit(6*sim.Microsecond, false) {
		t.Fatal("degraded refill produced no token after 2µs")
	}
	if b.Admit(6*sim.Microsecond, false) {
		t.Fatal("degraded refill produced more than one token in 2µs")
	}
	// Restoring factor 1 returns to the configured base rate.
	b.SetFactor(6*sim.Microsecond, 1)
	if !b.Admit(7*sim.Microsecond, false) {
		t.Fatal("restored rate produced no token after 1µs")
	}
	var nilBucket *TokenBucket
	nilBucket.SetFactor(0, 0.5) // must not panic
}

// --- snapshot swap ---

func TestSwapSnapshotVersionMonotonic(t *testing.T) {
	c, err := New(smallConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	if v := c.Snapshot().Version; v != 1 {
		t.Fatalf("fresh cluster snapshot version = %d, want 1", v)
	}
	routes := c.Snapshot().cloneRoutes()
	if err := c.SwapSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if err := c.SwapSnapshot(NewSnapshot(1, routes)); err == nil {
		t.Fatal("same-version snapshot accepted")
	}
	if err := c.SwapSnapshot(NewSnapshot(0, routes)); err == nil {
		t.Fatal("older snapshot accepted")
	}
	if err := c.SwapSnapshot(NewSnapshot(2, routes)); err != nil {
		t.Fatal(err)
	}
	if v := c.Snapshot().Version; v != 2 {
		t.Fatalf("swap not visible: version %d", v)
	}
	if err := c.SwapSnapshot(NewSnapshot(2, routes)); err == nil ||
		!strings.Contains(err.Error(), "must increase") {
		t.Fatalf("equal-version re-swap: got %v", err)
	}
}

// --- scripted host crash, end to end ---

func recoverySmallConfig(seed uint64) Config {
	cfg := smallConfig(seed)
	cfg.Recovery = &RecoveryConfig{
		Script:           rec.Script{{Kind: rec.HostCrash, Host: 1, At: 8 * sim.Millisecond}},
		RetryMax:         3,
		DegradeAdmission: true,
	}
	return cfg
}

func TestClusterScriptedCrashRecovers(t *testing.T) {
	c, err := New(recoverySmallConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	var orphaned []int
	for i, h := range c.Assignment {
		if h == 1 {
			orphaned = append(orphaned, i)
		}
	}
	if len(orphaned) == 0 {
		t.Fatal("test setup: no flows placed on host 1")
	}
	if err := c.Run(30*sim.Millisecond, 2); err != nil {
		t.Fatal(err)
	}

	dets := c.Detections()
	if len(dets) != 1 || dets[0].Host != 1 {
		t.Fatalf("detections = %+v, want exactly host 1", dets)
	}
	if dets[0].DownAt != 8*sim.Millisecond {
		t.Fatalf("DownAt = %d, want the scripted crash time", dets[0].DownAt)
	}
	lat := dets[0].SuspectAt - dets[0].DownAt
	rc := c.Cfg.Recovery.withDefaults()
	if lat < rc.SuspectAfter || lat > rc.SuspectAfter+rc.HeartbeatEvery+rc.CheckEvery {
		t.Fatalf("detection latency %v outside [timeout, timeout+beat+tick]", lat)
	}

	migs := c.Migrations()
	if len(migs) != len(orphaned) {
		t.Fatalf("migrated %d flows, want all %d orphans", len(migs), len(orphaned))
	}
	if v := c.Snapshot().Version; v != 2 {
		t.Fatalf("snapshot version after one recovery = %d, want 2", v)
	}
	for _, m := range migs {
		if m.OldHost != 1 || m.NewHost == 1 {
			t.Fatalf("migration %+v did not leave host 1", m)
		}
		if c.Assignment[m.Flow] != m.NewHost {
			t.Fatalf("assignment not updated for flow %d", m.Flow)
		}
		rt, ok := c.Snapshot().Lookup(SvcPort(m.Flow))
		if !ok || rt.Host != m.NewHost {
			t.Fatalf("live route for flow %d = %+v, want host %d", m.Flow, rt, m.NewHost)
		}
	}
	// The new replicas must actually serve: at least one migrated flow's
	// service count grew past its at-swap value.
	served := false
	for _, mt := range c.Terms().Migrations {
		if mt.Served > mt.ServedAtSwap {
			served = true
		}
	}
	if !served {
		t.Fatal("no migrated flow served anything after the swap")
	}
	if rx, _ := c.CrashDrops(); rx == 0 {
		t.Fatal("no frames were absorbed at the dead host's wire")
	}
	if err := c.Settle(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(true); err != nil {
		t.Fatalf("strict invariants across a migration: %v", err)
	}
}

func TestClusterRecoveryDeterministicAcrossWorkers(t *testing.T) {
	base := runFingerprint(t, recoverySmallConfig(23), 1)
	for _, workers := range []int{2, 4} {
		got := runFingerprint(t, recoverySmallConfig(23), workers)
		if !reflect.DeepEqual(got.samples, base.samples) {
			t.Fatalf("workers=%d: delivered sample sequences diverge", workers)
		}
		if !reflect.DeepEqual(got.terms, base.terms) {
			t.Fatalf("workers=%d: terms diverge", workers)
		}
		if got.metrics != base.metrics {
			t.Fatalf("workers=%d: merged metrics diverge", workers)
		}
		if got.windows != base.windows {
			t.Fatalf("workers=%d: window schedule diverges: %d vs %d", workers, got.windows, base.windows)
		}
	}
}

// --- plane-driven crash ---

func TestClusterPlaneDrivenCrash(t *testing.T) {
	cfg := smallConfig(36)
	cfg.Host.Fault = &fault.Config{
		Rate:       1,
		Classes:    fault.ClassHostCrash,
		CrashEvery: 60 * sim.Millisecond,
	}
	cfg.Recovery = &RecoveryConfig{}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(40*sim.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	var crashes uint64
	for _, n := range c.Nodes {
		crashes += n.Plane.Stats().HostCrashes
	}
	if crashes == 0 {
		t.Fatal("fault planes injected no crashes")
	}
	if len(c.Detections()) == 0 {
		t.Fatal("plane-driven crash went undetected")
	}
	if err := c.Settle(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(true); err != nil {
		t.Fatalf("strict invariants after plane-driven crashes: %v", err)
	}
}

// --- ToR uplink failure ---

func TestClusterTorLinkDownWindow(t *testing.T) {
	cfg := smallConfig(41)
	cfg.Recovery = &RecoveryConfig{
		Script: rec.Script{{
			Kind: rec.TorLinkDown, Tor: 1,
			At: 6 * sim.Millisecond, Until: 12 * sim.Millisecond,
		}},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(25*sim.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	if n := c.torUp[1].DownDropped; n == 0 {
		t.Fatal("severed uplink dropped nothing at the ToR's end")
	}
	if n := c.spineDown[1].DownDropped; n == 0 {
		t.Fatal("the spine's mirrored end dropped nothing")
	}
	// A fabric partition is not a host failure: heartbeats ride the
	// out-of-band control network, so nothing is suspected or migrated.
	if len(c.Detections()) != 0 || len(c.Migrations()) != 0 {
		t.Fatalf("tor-link failure triggered recovery: %d detections, %d migrations",
			len(c.Detections()), len(c.Migrations()))
	}
	if v := c.Snapshot().Version; v != 1 {
		t.Fatalf("tor-link failure swapped the snapshot to v%d", v)
	}
	// After the restore the partition heals: the spine keeps forwarding.
	if c.Spine.RxFrames == 0 {
		t.Fatal("no cross-rack frames at all")
	}
	if err := c.Settle(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(true); err != nil {
		t.Fatalf("strict invariants after a link-down window: %v", err)
	}
}

// --- full-cluster recovery failure is loud ---

func TestClusterRecoveryOverCapacityFailsLoudly(t *testing.T) {
	cfg := smallConfig(43)
	cfg.Hosts = 2
	cfg.HostCap = 13
	cfg.Specs = testSpecs(2, 24) // 24 containers on 2 hosts of 13: no survivor can hold both shares
	cfg.Fabric = FabricConfig{Racks: 1}
	cfg.Recovery = &RecoveryConfig{
		Script: rec.Script{{Kind: rec.HostCrash, Host: 0, At: 5 * sim.Millisecond}},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(20*sim.Millisecond, 1)
	if err == nil || !strings.Contains(err.Error(), "exceed surviving capacity") {
		t.Fatalf("over-capacity recovery: got %v, want loud capacity error", err)
	}
}

func TestClusterRecoveryScriptValidated(t *testing.T) {
	cfg := smallConfig(47)
	cfg.Recovery = &RecoveryConfig{
		Script: rec.Script{{Kind: rec.HostCrash, Host: 99, At: sim.Millisecond}},
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("out-of-range scripted host accepted")
	}
}
