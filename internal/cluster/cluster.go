// Package cluster scales the paper's single-host model out to a simulated
// datacenter: N hosts — each the full NIC→softirq→overlay→socket pipeline
// built from a testbed.Spec — connected by a two-tier ToR/spine fabric,
// with a deterministic control plane (container placement, per-host
// admission, snapshot-based flow routing) on top.
//
// Every host and every switch is one internal/par shard; all inter-shard
// traffic rides cross-shard links whose lookahead is the cable
// propagation delay, so a cluster run is bit-identical at any worker
// count — the same contract the single-host splits already honor.
//
// A flow's life: the ingress host's client machine emits a request frame;
// the ingress token bucket admits or refuses it; admitted frames ride the
// host→ToR uplink, are classified by the ToR against the control-plane
// snapshot (inner destination port → host), hop via the spine when the
// destination is in another rack, and enter the destination host's NIC
// like any wire arrival. The reply leaves over the host's WireTx, is
// routed back to the ingress host by the client-port route, and lands in
// that host's client demux, closing the latency sample.
package cluster

import (
	"fmt"
	"sync/atomic"

	"prism/internal/fault"
	"prism/internal/netdev"
	"prism/internal/obs"
	"prism/internal/overlay"
	"prism/internal/par"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/stats"
	"prism/internal/testbed"
	"prism/internal/traffic"
)

// Port bases: service ports identify destination containers, client ports
// identify flows (reply routing). Container IPs repeat across hosts —
// every host derives them from its local container index — so ports are
// the only globally unique flow identity and all fabric routing keys on
// them.
const (
	SvcPortBase = 20000
	CliPortBase = 40000
)

// SvcPort is container i's service port; CliPort its flow's client-side
// source port.
func SvcPort(i int) uint16 { return uint16(SvcPortBase + i) }

// CliPort is flow i's client-side source port (the reply destination).
func CliPort(i int) uint16 { return uint16(CliPortBase + i) }

// Config declares a whole cluster as data.
type Config struct {
	// Hosts is the number of simulated server hosts.
	Hosts int
	// HostCap bounds containers per host for the placer (default 200;
	// the overlay's address space caps it at 248).
	HostCap int
	// Placement is the container scheduling policy.
	Placement Placement
	// Seed drives every random stream; per-host engine and fault seeds
	// are derived from it.
	Seed uint64
	// Host is the per-host template: NIC config, cost model, mode,
	// policy, shed, fault plane. Split and Pipe are ignored (every host
	// is built standalone with its own pipeline); Seed and the fault
	// seed are re-derived per host.
	Host testbed.Spec
	// Specs declares the container workload; index order is part of the
	// deterministic contract (ports and placement derive from it).
	Specs []ContainerSpec
	// Admission configures the per-host ingress token bucket; nil
	// disables admission control.
	Admission *Admission
	// Fabric sizes the switching fabric.
	Fabric FabricConfig
	// Recovery arms the failure detector and recovery controller; nil
	// (the default) disables the whole subsystem — no heartbeats, no
	// controller ticks, no extra events — so pre-existing configurations
	// run bit-identically.
	Recovery *RecoveryConfig
	// Warmup is discarded from latency/utilization accounting.
	Warmup sim.Time
	// EchoCost / SinkCost are the per-request application CPU costs.
	EchoCost sim.Time
	SinkCost sim.Time
	// ObsSampling keeps one traced packet in N per pipeline (metrics are
	// never sampled); 0 defaults to 16 — a 1000-container cluster's full
	// span stream would otherwise dominate digest time. 1 disables
	// sampling.
	ObsSampling int
}

func (c Config) withDefaults() Config {
	if c.Hosts < 1 {
		c.Hosts = 1
	}
	if c.HostCap <= 0 {
		c.HostCap = 200
	}
	if c.HostCap > 248 {
		c.HostCap = 248
	}
	if c.EchoCost <= 0 {
		c.EchoCost = 500 * sim.Nanosecond
	}
	if c.SinkCost <= 0 {
		c.SinkCost = 600 * sim.Nanosecond
	}
	if c.ObsSampling <= 0 {
		c.ObsSampling = 16
	}
	return c
}

// hostSeed derives host i's engine RNG stream.
func hostSeed(seed uint64, i int) uint64 { return seed + uint64(i)*0x9e3779b97f4a7c15 }

// switchSeed derives a switch's engine RNG stream (unused by the model,
// but every engine needs one).
func switchSeed(seed uint64, i int) uint64 { return seed ^ 0x70c0ffee ^ uint64(i)*0x517cc1b727220a95 }

// Node is one host plus its cluster-side plumbing.
type Node struct {
	ID    int
	Name  string
	Shard *par.Shard
	Host  *overlay.Host
	Pipe  *obs.Pipeline
	Plane *fault.Plane
	// Client demuxes reply frames for flows whose ingress is this host.
	Client *traffic.Client
	// Bucket is the ingress admission bucket (nil = admit all).
	Bucket *TokenBucket
	// Up is the host→ToR uplink.
	Up *par.Link

	// Injected counts frames this node pushed into the fabric (admitted
	// requests + server replies); FromFabric counts fabric frames
	// delivered into the host's NIC path; ToClients counts reply frames
	// delivered to the client demux; Misrouted counts frames the fabric
	// delivered here by mistake (always zero unless the fabric is
	// broken).
	Injected   uint64
	FromFabric uint64
	ToClients  uint64
	Misrouted  uint64

	// down marks the host fail-stopped at the wire: internally its engine
	// keeps running (so the per-host ledgers stay closed), but nothing
	// enters or leaves. Written only from the host's own shard at exact
	// event times; read by the barrier controller.
	down   bool
	downAt sim.Time
	// lastBeat is the host's most recent heartbeat on the out-of-band
	// control network (written on the host shard, read at barriers).
	lastBeat sim.Time

	// CrashRx counts fabric frames that arrived while the host was down;
	// CrashTx frames the host tried to emit while down (neither enters
	// the fabric ledger — CrashTx frames were never Injected, CrashRx
	// frames are accounted as fabric drops). EpochDrops counts frames
	// that arrived here under a routing epoch that no longer maps them to
	// this host — in-flight during a snapshot swap, delivered nowhere,
	// but counted, never silently lost. Retries counts admission-refusal
	// retries scheduled while the cluster was degraded.
	CrashRx    uint64
	CrashTx    uint64
	EpochDrops uint64
	Retries    uint64
}

// Flow is one placed container workload and its generator.
type Flow struct {
	Index   int
	Spec    ContainerSpec
	HostID  int
	Ingress int
	// PP is the latency flow (nil for floods); Flood the open-loop
	// background (nil for echoes).
	PP    *traffic.PingPong
	Flood *traffic.UDPFlood
}

// Cluster is one fully wired instance of a Config.
type Cluster struct {
	Cfg   Config
	Group *par.Group
	Nodes []*Node
	Tors  []*Switch
	Spine *Switch // nil when the fabric has a single rack
	// Assignment maps flow index → host ID. It starts as the placer's
	// output and is updated by recovery migrations.
	Assignment []int
	Flows      []*Flow

	// snap is the shared routing snapshot every switch and downlink
	// classifier reads; recovery swaps it atomically at barrier epochs.
	snap atomic.Pointer[Snapshot]

	// torUp[r] is rack r's ToR→spine uplink port; spineDown[r] the
	// spine's matching downlink (both nil-length with a single rack).
	torUp     []*Port
	spineDown []*Port

	links   []*par.Link
	perRack int
	horizon sim.Time
	ckpt    *par.Ticker
	// ctrl drives the recovery controller at barrier boundaries.
	ctrl *par.Ticker
	rec  *recoveryState
}

// Snapshot returns the live routing snapshot (safe from any goroutine).
func (c *Cluster) Snapshot() *Snapshot { return c.snap.Load() }

// SwapSnapshot atomically publishes a new routing snapshot. Versions must
// be strictly increasing — the monotonicity every switch relies on to
// tell a stale epoch from the live one. Call only while the shards are
// quiescent (at a barrier, or before Run).
func (c *Cluster) SwapSnapshot(next *Snapshot) error {
	cur := c.snap.Load()
	if next == nil {
		return fmt.Errorf("cluster: nil snapshot")
	}
	if next.Version <= cur.Version {
		return fmt.Errorf("cluster: snapshot version must increase: %d -> %d", cur.Version, next.Version)
	}
	c.snap.Store(next)
	return nil
}

// New wires the cluster a Config describes: place containers, build the
// routing snapshot, instantiate hosts and switches on their shards, and
// attach every flow. The returned cluster is ready to Run.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("cluster: no container specs")
	}
	if len(cfg.Specs) > CliPortBase-SvcPortBase || CliPortBase+len(cfg.Specs) > 65535 {
		return nil, fmt.Errorf("cluster: %d containers exceed the port space", len(cfg.Specs))
	}
	costs := cfg.Host.Costs
	if costs == nil {
		costs = netdev.DefaultCosts()
	}
	fc := cfg.Fabric.withDefaults(cfg.Hosts, costs.WireLatency)
	cfg.Fabric = fc

	assign, err := Place(cfg.Placement, cfg.Specs, cfg.Hosts, cfg.HostCap)
	if err != nil {
		return nil, err
	}

	// Control-plane snapshot: service ports route to the placed host,
	// client ports route replies back to the flow's ingress host.
	routes := make(map[uint16]Route, 2*len(cfg.Specs))
	ingressOf := func(i int) int {
		in := cfg.Specs[i].Ingress
		if in < 0 || in >= cfg.Hosts {
			in = (i*13 + 7) % cfg.Hosts
		}
		return in
	}
	for i, sp := range cfg.Specs {
		routes[SvcPort(i)] = Route{Host: assign[i], Hi: sp.Hi}
		routes[CliPort(i)] = Route{Host: ingressOf(i), Hi: sp.Hi, ToClient: true}
	}
	c := &Cluster{Cfg: cfg, Group: par.NewGroup(), Assignment: assign}
	c.snap.Store(NewSnapshot(1, routes))
	c.perRack = (cfg.Hosts + fc.Racks - 1) / fc.Racks

	// Hosts, one shard each, with derived seeds and fault streams.
	for i := 0; i < cfg.Hosts; i++ {
		name := fmt.Sprintf("host%02d", i)
		hspec := cfg.Host
		hspec.Split = testbed.Monolithic
		hspec.Seed = hostSeed(cfg.Seed, i)
		hspec.Pipe = nil
		if hspec.Fault != nil {
			f := *hspec.Fault
			f.Seed = hspec.Seed ^ faultSalt
			hspec.Fault = &f
		}
		eng := sim.NewEngine(hspec.Seed)
		shard := c.Group.Add(name, eng)
		host, pipe, plane := hspec.BuildHost(eng, name)
		pipe.T.SetSampling(cfg.ObsSampling)
		n := &Node{
			ID: i, Name: name, Shard: shard, Host: host, Pipe: pipe, Plane: plane,
			Client: traffic.NewClient(host),
			Bucket: NewTokenBucket(admissionOrZero(cfg.Admission)),
		}
		c.Nodes = append(c.Nodes, n)
	}

	// Switches: one ToR per rack, plus a spine when there is more than
	// one rack.
	for r := 0; r < fc.Racks; r++ {
		tor := newSwitch(c.Group, fmt.Sprintf("tor%02d", r), switchSeed(cfg.Seed, r), fc.TorLatency, fc, &c.snap)
		tor.Pipe.T.SetSampling(cfg.ObsSampling)
		c.Tors = append(c.Tors, tor)
	}
	if fc.Racks > 1 {
		c.Spine = newSwitch(c.Group, "spine", switchSeed(cfg.Seed, fc.Racks), fc.SpineLatency, fc, &c.snap)
		c.Spine.Pipe.T.SetSampling(cfg.ObsSampling)
	}

	// Host↔ToR links and the ToRs' downlink port maps.
	torDown := make([]map[int]*Port, fc.Racks)
	for r := range torDown {
		torDown[r] = make(map[int]*Port)
	}
	for _, n := range c.Nodes {
		n := n
		r := c.rackOf(n.ID)
		tor := c.Tors[r]
		n.Up = c.connect(n.Shard, tor.Shard, fc.HostLink, func(at sim.Time, payload any) {
			tor.Receive(at, payload.([]byte))
		})
		down := c.connect(tor.Shard, n.Shard, fc.HostLink, func(at sim.Time, payload any) {
			c.deliverToNode(n, at, payload.([]byte))
		})
		torDown[r][n.ID] = tor.addPort(fmt.Sprintf("%s->%s", tor.Name, n.Name), down, fc.HostLink)

		host := n.Host
		host.WireTx = func(now, arrive sim.Time, frame []byte) {
			if n.down {
				n.CrashTx++
				return
			}
			n.Injected++
			n.Up.Send(now, arrive-now, frame)
		}
	}

	// ToR↔spine links and the routing closures.
	if c.Spine != nil {
		spineDown := make([]*Port, fc.Racks)
		c.torUp = make([]*Port, fc.Racks)
		for r, tor := range c.Tors {
			r, tor := r, tor
			upLink := c.connect(tor.Shard, c.Spine.Shard, fc.SpineLink, func(at sim.Time, payload any) {
				c.Spine.Receive(at, payload.([]byte))
			})
			torUp := tor.addPort(fmt.Sprintf("%s->spine", tor.Name), upLink, fc.SpineLink)
			c.torUp[r] = torUp
			downLink := c.connect(c.Spine.Shard, tor.Shard, fc.SpineLink, func(at sim.Time, payload any) {
				tor.Receive(at, payload.([]byte))
			})
			spineDown[r] = c.Spine.addPort(fmt.Sprintf("spine->%s", tor.Name), downLink, fc.SpineLink)

			down := torDown[r]
			tor.portFor = func(rt Route) *Port {
				if p, ok := down[rt.Host]; ok {
					return p
				}
				return torUp
			}
		}
		c.spineDown = spineDown
		c.Spine.portFor = func(rt Route) *Port { return spineDown[c.rackOf(rt.Host)] }
	} else {
		down := torDown[0]
		c.Tors[0].portFor = func(rt Route) *Port { return down[rt.Host] }
	}

	// Containers and their flows.
	for i, sp := range cfg.Specs {
		sp := sp
		if sp.Name == "" {
			sp.Name = fmt.Sprintf("c%04d", i)
		}
		dst := c.Nodes[assign[i]]
		ctr := dst.Host.AddContainer(sp.Name)
		if sp.Hi {
			dst.Host.DB.Add(prio.Rule{IP: ctr.IP, Port: SvcPort(i)})
		}
		in := c.Nodes[ingressOf(i)]
		src := overlay.ClientContainer(i, CliPort(i))
		inject := c.injectVia(in, sp.Hi)
		// Desynchronized deterministic start phases keep the cluster's
		// generators from emitting in lockstep.
		startAt := sim.Time(i%97) * 53 * sim.Microsecond
		fl := &Flow{Index: i, Spec: sp, HostID: assign[i], Ingress: in.ID}
		if sp.Flood {
			f := traffic.NewUDPFlood(in.Shard.Eng, dst.Host, ctr, src, SvcPort(i), sp.Rate)
			f.Burst = 32
			f.Poisson = false
			f.JitterFrac = 0.2
			if err := f.InstallSink(cfg.SinkCost); err != nil {
				return nil, fmt.Errorf("cluster: %s: %w", sp.Name, err)
			}
			f.Inject = inject
			f.Start(startAt)
			fl.Flood = f
		} else {
			pp := traffic.NewPingPong(in.Shard.Eng, dst.Host, ctr, src, SvcPort(i), sp.Rate)
			pp.Warmup = cfg.Warmup
			if err := pp.InstallEcho(cfg.EchoCost); err != nil {
				return nil, fmt.Errorf("cluster: %s: %w", sp.Name, err)
			}
			pp.Inject = inject
			pp.Start(in.Client, startAt)
			fl.PP = pp
		}
		c.Flows = append(c.Flows, fl)
	}
	if err := c.initRecovery(); err != nil {
		return nil, err
	}
	return c, nil
}

// faultSalt perturbs each host's fault-plane RNG stream away from its
// engine stream.
const faultSalt uint64 = 0x5eedfa017

func admissionOrZero(a *Admission) Admission {
	if a == nil {
		return Admission{}
	}
	return *a
}

// connect wraps Group.Connect, remembering the link for in-flight
// accounting.
func (c *Cluster) connect(src, dst *par.Shard, lookahead sim.Time, deliver func(at sim.Time, payload any)) *par.Link {
	l := c.Group.Connect(src, dst, lookahead, deliver)
	c.links = append(c.links, l)
	return l
}

// rackOf maps a host ID to its rack (ID-block assignment).
func (c *Cluster) rackOf(host int) int { return host / c.perRack }

// injectVia builds the generator hook for a flow entering at node in: the
// admission decision, then the uplink. Runs in event context on the
// ingress shard.
func (c *Cluster) injectVia(in *Node, hi bool) func(now, arrive sim.Time, frame []byte) {
	return func(now, arrive sim.Time, frame []byte) {
		c.inject(in, hi, now, arrive, frame, 0)
	}
}

// inject admits one generator frame into the fabric at node in, retrying
// refused admissions with exponential backoff while the cluster is
// degraded (recovery armed, a host down): the retry models clients
// backing off into the capacity-scaled bucket instead of silently losing
// offered load during failover. The retry preserves the frame's
// departure→arrival delta, so the re-sent frame still satisfies the
// uplink's lookahead contract. Runs in event context on the ingress
// shard.
func (c *Cluster) inject(in *Node, hi bool, now, arrive sim.Time, frame []byte, attempt int) {
	if in.down {
		in.CrashTx++
		return
	}
	if !in.Bucket.Admit(now, hi) {
		r := c.rec
		if r == nil || r.cfg.RetryMax <= 0 || !r.degraded || attempt >= r.cfg.RetryMax {
			return
		}
		wait := arrive - now
		delay := r.cfg.RetryBackoff.Delay(attempt + 1)
		in.Retries++
		in.Shard.Eng.At(now+delay, func() {
			nn := in.Shard.Eng.Now()
			c.inject(in, hi, nn, nn+wait, frame, attempt+1)
		})
		return
	}
	in.Injected++
	in.Up.Send(now, arrive-now, frame)
}

// deliverToNode terminates a fabric downlink: requests enter the host's
// NIC path, replies the client demux. Runs in event context on the node's
// shard. A down host absorbs the frame (CrashRx — the fail-stop wire). A
// frame whose route no longer points here was in flight across a
// snapshot swap: with recovery armed it is an epoch drop (counted, never
// silent); otherwise the fabric genuinely misrouted it.
func (c *Cluster) deliverToNode(n *Node, at sim.Time, frame []byte) {
	if n.down {
		n.CrashRx++
		return
	}
	rt, ok := classify(c.snap.Load(), frame)
	if !ok || rt.Host != n.ID {
		if ok && c.rec != nil {
			n.EpochDrops++
			return
		}
		n.Misrouted++
		return
	}
	if rt.ToClient {
		n.ToClients++
		n.Client.Deliver(at, frame)
		return
	}
	n.FromFabric++
	n.Host.InjectFromWire(at, frame)
}

// switches returns every switch in shard order.
func (c *Cluster) switches() []*Switch {
	sw := make([]*Switch, 0, len(c.Tors)+1)
	sw = append(sw, c.Tors...)
	if c.Spine != nil {
		sw = append(sw, c.Spine)
	}
	return sw
}

// SetCheckpoint arms a virtual-time checkpoint callback: fn observes the
// cluster every interval of virtual time, from the par coordinator
// goroutine at barrier boundaries where every shard is parked, so it may
// read pipelines, switch ports and node counters race-free. It must not
// mutate simulation state. The hook never perturbs the window schedule
// (the Windows counter in the committed golden fixtures is computed
// identically either way). Call before Run.
func (c *Cluster) SetCheckpoint(interval sim.Time, fn func(at sim.Time)) {
	if interval <= 0 || fn == nil {
		c.ckpt = nil
	} else {
		c.ckpt = par.NewTicker(interval, fn)
	}
	c.armBarrier()
}

// armBarrier installs the single OnBarrier hook multiplexing the
// recovery controller and the checkpoint ticker. The controller runs
// first, so checkpoints observe post-recovery state at the same epoch.
// windowEnd is exclusive, so the tickers advance to windowEnd-1 — the
// last instant whose events have all executed.
func (c *Cluster) armBarrier() {
	if c.ctrl == nil && c.ckpt == nil {
		c.Group.OnBarrier = nil
		return
	}
	c.Group.OnBarrier = func(windowEnd sim.Time) {
		c.ctrl.Advance(windowEnd - 1)
		c.ckpt.Advance(windowEnd - 1)
	}
}

// SetTap installs fn as every host's frame tap (nil uninstalls). The tap
// observes each wire frame entering (tx=false) or leaving (tx=true) a
// host, labeled with the host name. It runs in event context on that
// host's shard goroutine — possibly concurrently across hosts — so fn
// must be thread-safe, must not block, and must copy the frame if it
// retains it. Taps are read-only observation: installing one leaves the
// simulation schedule untouched.
func (c *Cluster) SetTap(fn func(host string, now sim.Time, frame []byte, tx bool)) {
	for _, n := range c.Nodes {
		if fn == nil {
			n.Host.Tap = nil
			continue
		}
		name := n.Name
		n.Host.Tap = func(now sim.Time, frame []byte, tx bool) { fn(name, now, frame, tx) }
	}
}

// ClassifyFrame resolves a wire frame to the container workload it
// belongs to. Ports are the only globally unique flow identity (container
// IPs repeat across hosts), so the inner flow's destination port — or, for
// reply frames, its source port — indexes the container spec. Safe to call
// concurrently; the flow table is immutable after New.
func (c *Cluster) ClassifyFrame(frame []byte) (container string, hi bool, ok bool) {
	inner := frame
	if pkt.IsVXLAN(frame) {
		_, in, err := pkt.Decapsulate(frame)
		if err != nil {
			return "", false, false
		}
		inner = in
	}
	fl, err := pkt.ParseFlow(inner)
	if err != nil {
		return "", false, false
	}
	if i, found := c.flowIndexForPort(fl.DstPort); found {
		return c.Flows[i].Spec.Name, c.Flows[i].Spec.Hi, true
	}
	if i, found := c.flowIndexForPort(fl.SrcPort); found {
		return c.Flows[i].Spec.Name, c.Flows[i].Spec.Hi, true
	}
	return "", false, false
}

func (c *Cluster) flowIndexForPort(port uint16) (int, bool) {
	p := int(port)
	switch {
	case p >= SvcPortBase && p < SvcPortBase+len(c.Flows):
		return p - SvcPortBase, true
	case p >= CliPortBase && p < CliPortBase+len(c.Flows):
		return p - CliPortBase, true
	}
	return 0, false
}

// Run executes warmup + duration with the given worker count, resetting
// every host core's and fabric port's utilization window at the end of
// warmup, and arming the hosts' fault timelines plus (when configured)
// the recovery subsystem: scripted failure events, heartbeats, per-ToR
// fault planes, and the barrier-quantized controller tick.
func (c *Cluster) Run(duration sim.Time, workers int) error {
	c.horizon = c.Cfg.Warmup + duration
	warmup := c.Cfg.Warmup
	c.armRecovery()
	for _, n := range c.Nodes {
		n := n
		n.Host.Eng.At(warmup, func() { n.Host.ProcCore.ResetWindow(warmup) })
		if n.Plane != nil {
			n.Plane.Start(c.horizon)
		}
	}
	for _, sw := range c.switches() {
		sw := sw
		sw.Shard.Eng.At(warmup, func() { sw.resetWindow(warmup) })
	}
	if err := c.Group.Run(c.horizon, workers); err != nil {
		return err
	}
	c.ctrl.Flush(c.horizon)
	c.ckpt.Flush(c.horizon)
	if c.rec != nil && c.rec.err != nil {
		return c.rec.err
	}
	return nil
}

// Stop ceases every generator after its current emission.
func (c *Cluster) Stop() {
	for _, f := range c.Flows {
		if f.PP != nil {
			f.PP.Stop()
		}
		if f.Flood != nil {
			f.Flood.Stop()
		}
	}
}

// Settle stops the generators and runs the cluster in grace-sized rounds
// until the fabric is empty and the fault watchdogs have nothing left to
// rescue — the precondition for strict (zero-leak) invariant checks.
func (c *Cluster) Settle(grace sim.Time, workers int) error {
	if grace <= 0 {
		grace = 50 * sim.Millisecond
	}
	c.Stop()
	end := c.horizon
	for round := 0; ; round++ {
		end += grace
		if err := c.Group.Run(end, workers); err != nil {
			return err
		}
		rescued := 0
		for _, n := range c.Nodes {
			if n.Plane != nil {
				rescued += n.Plane.RescueStuck(n.Host.Eng.Now())
			}
		}
		if rescued == 0 && c.fabricInFlight() == 0 {
			return nil
		}
		if round >= 16 {
			return fmt.Errorf("cluster: settle did not converge after %d rounds (%d in fabric, %d rescued)",
				round, c.fabricInFlight(), rescued)
		}
	}
}

// fabricInFlight counts frames inside the fabric: switch queues and
// in-serialization frames, link window buffers, and shard inboxes holding
// deliveries beyond the last horizon.
func (c *Cluster) fabricInFlight() int {
	n := 0
	for _, sw := range c.switches() {
		n += sw.inFlight()
	}
	for _, l := range c.links {
		n += l.Buffered()
	}
	for _, s := range c.Group.Shards() {
		n += s.InboxLen()
	}
	return n
}

// Terms aggregates the cluster-wide conservation terms, with per-host and
// per-switch breakdowns (so a broken equation names its residual) and one
// reconciliation record per recovery migration.
func (c *Cluster) Terms() testbed.ClusterTerms {
	var t testbed.ClusterTerms
	for _, n := range c.Nodes {
		t.Injected += n.Injected
		t.ToHosts += n.FromFabric
		t.ToClients += n.ToClients
		t.Dropped += n.Misrouted + n.CrashRx + n.EpochDrops
		t.CrashDropped += n.CrashRx
		t.EpochDropped += n.EpochDrops
		t.PerHost = append(t.PerHost, testbed.HostTerms{
			Name: n.Name, Injected: n.Injected, FromFabric: n.FromFabric,
			ToClients: n.ToClients, Misrouted: n.Misrouted,
			CrashRx: n.CrashRx, CrashTx: n.CrashTx, EpochDrops: n.EpochDrops,
		})
	}
	for _, sw := range c.switches() {
		t.Dropped += sw.dropped()
		t.PerSwitch = append(t.PerSwitch, testbed.SwitchTerms{
			Name: sw.Name, Rx: sw.RxFrames, Forwarded: sw.forwarded(),
			Dropped: sw.dropped(), InFlight: sw.inFlight(),
		})
	}
	if c.rec != nil {
		for _, m := range c.rec.migrations {
			f := c.Flows[m.Flow]
			mt := testbed.MigrationTerm{
				Flow: f.Spec.Name, OldHost: m.OldHost, NewHost: m.NewHost,
				At: m.At, ServedAtSwap: m.ServedAtSwap,
			}
			if f.PP != nil {
				mt.Sent, mt.Served, mt.Received = f.PP.Sent, f.PP.Served(), f.PP.Received
			} else if f.Flood != nil {
				mt.Sent, mt.Served = f.Flood.Sent, f.Flood.DeliveredCount()
				mt.Received = mt.Served
			}
			t.Migrations = append(t.Migrations, mt)
		}
	}
	t.InFlight = c.fabricInFlight()
	return t
}

// CheckInvariants verifies per-host and cluster-wide conservation. strict
// additionally demands zero in-flight state everywhere — call it only
// after Settle.
func (c *Cluster) CheckInvariants(strict bool) error {
	hosts := make([]*overlay.Host, len(c.Nodes))
	planes := make([]*fault.Plane, len(c.Nodes))
	for i, n := range c.Nodes {
		hosts[i] = n.Host
		planes[i] = n.Plane
	}
	return testbed.CheckCluster(hosts, planes, c.Terms(), strict)
}

// LatencyHists merges the echo flows' latency histograms by priority
// class, in flow-index order.
func (c *Cluster) LatencyHists() (hi, lo *stats.Histogram) {
	var his, los []*stats.Histogram
	for _, f := range c.Flows {
		if f.PP == nil {
			continue
		}
		if f.Spec.Hi {
			his = append(his, f.PP.Hist)
		} else {
			los = append(los, f.PP.Hist)
		}
	}
	return stats.MergeHistograms(his...), stats.MergeHistograms(los...)
}

// FlowCounts sums sent/received per class across the echo flows, and the
// floods' sink deliveries.
func (c *Cluster) FlowCounts() (hiSent, hiRecv, loSent, loRecv, floodSent, floodRecv uint64) {
	for _, f := range c.Flows {
		switch {
		case f.Flood != nil:
			floodSent += f.Flood.Sent
			floodRecv += f.Flood.DeliveredCount()
		case f.Spec.Hi:
			hiSent += f.PP.Sent
			hiRecv += f.PP.Received
		default:
			loSent += f.PP.Sent
			loRecv += f.PP.Received
		}
	}
	return
}

// AdmissionDenied sums the ingress buckets' refusals.
func (c *Cluster) AdmissionDenied() uint64 {
	var n uint64
	for _, node := range c.Nodes {
		n += node.Bucket.Denied()
	}
	return n
}

// FabricUtilization reports the egress ports' max and mean transmit
// occupancy at time at (use the measured horizon, before Settle extends
// the clocks).
func (c *Cluster) FabricUtilization(at sim.Time) (max, mean float64) {
	n := 0
	for _, sw := range c.switches() {
		for _, p := range sw.Ports {
			u := p.Utilization(at)
			if u > max {
				max = u
			}
			mean += u
			n++
		}
	}
	if n > 0 {
		mean /= float64(n)
	}
	return
}

// FabricPortUtil reports every egress port's transmit occupancy at time
// at, keyed by port name ("tor00->host03", "spine->tor01", …) — the
// per-link view behind FabricUtilization's aggregate, published to the
// live operator surface at checkpoints.
func (c *Cluster) FabricPortUtil(at sim.Time) map[string]float64 {
	util := make(map[string]float64)
	for _, sw := range c.switches() {
		for _, p := range sw.Ports {
			util[p.Name] = p.Utilization(at)
		}
	}
	return util
}

// FabricDrops sums the switches' discards; FabricShed the subset of
// best-effort victims evicted for high-priority frames.
func (c *Cluster) FabricDrops() (dropped, shed uint64) {
	for _, sw := range c.switches() {
		dropped += sw.dropped()
		for _, p := range sw.Ports {
			shed += p.ShedLo
		}
	}
	return
}

// Pipes returns every observability pipeline in shard order (hosts, then
// ToRs, then the spine) — the deterministic merge order for digests.
func (c *Cluster) Pipes() []*obs.Pipeline {
	ps := make([]*obs.Pipeline, 0, len(c.Nodes)+len(c.Tors)+1)
	for _, n := range c.Nodes {
		ps = append(ps, n.Pipe)
	}
	for _, sw := range c.switches() {
		ps = append(ps, sw.Pipe)
	}
	return ps
}

// Horizon is the end of the measured interval (warmup + duration).
func (c *Cluster) Horizon() sim.Time { return c.horizon }
