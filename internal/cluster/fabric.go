package cluster

import (
	"sync/atomic"

	"prism/internal/obs"
	"prism/internal/par"
	"prism/internal/pkt"
	"prism/internal/sim"
)

// The fabric is a two-tier Clos: every host uplinks to its rack's ToR,
// ToRs interconnect through one spine. Switches are output-queued with
// strict-priority scheduling at each egress port — the same discipline
// the paper applies inside the host, extended to the network — and each
// switch runs on its own par shard, so inter-switch and switch↔host hops
// ride cross-shard links whose lookahead is the cable's propagation
// delay.

// FabricConfig sizes the switching fabric.
type FabricConfig struct {
	// Racks is the number of ToR switches; hosts are assigned to racks
	// round-robin by ID block. 0 derives ceil(hosts/8).
	Racks int
	// TorLatency / SpineLatency are per-switch forwarding latencies
	// (port-to-port cut-through minimum).
	TorLatency   sim.Time
	SpineLatency sim.Time
	// HostLink is the host↔ToR cable propagation delay — the cross-shard
	// lookahead of those links. It must not exceed the host cost model's
	// WireLatency (generators compute arrival with WireLatency, and a
	// link cannot deliver faster than its lookahead). 0 derives it from
	// the host's Costs.
	HostLink sim.Time
	// SpineLink is the ToR↔spine cable propagation delay.
	SpineLink sim.Time
	// LinkGbps is every link's line rate, for serialization delay.
	LinkGbps float64
	// QueueCap bounds each egress port's queue (frames, both classes
	// combined). Arrivals beyond it tail-drop, except that a
	// high-priority arrival evicts the youngest queued best-effort frame
	// instead — the fabric analogue of the host shed policy.
	QueueCap int
}

func (c FabricConfig) withDefaults(hosts int, hostWire sim.Time) FabricConfig {
	if c.Racks <= 0 {
		c.Racks = (hosts + 7) / 8
	}
	if c.Racks > hosts {
		c.Racks = hosts
	}
	if c.TorLatency <= 0 {
		c.TorLatency = 600 * sim.Nanosecond
	}
	if c.SpineLatency <= 0 {
		c.SpineLatency = sim.Microsecond
	}
	if c.HostLink <= 0 || c.HostLink > hostWire {
		c.HostLink = hostWire
	}
	if c.SpineLink <= 0 {
		c.SpineLink = 4 * sim.Microsecond
	}
	if c.LinkGbps <= 0 {
		c.LinkGbps = 100
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	return c
}

// serialization returns the time to clock a frame onto a link.
func (c FabricConfig) serialization(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / c.LinkGbps)
}

// queued is one frame waiting at an egress port.
type queued struct {
	frame   []byte
	hi      bool
	arrived sim.Time
}

// Port is one switch egress: a two-class queue feeding a cross-shard
// link, serialized at line rate, strict priority across classes.
type Port struct {
	Name string
	link *par.Link
	prop sim.Time

	hi, lo []queued
	busy   bool
	cap    int
	// down marks the link severed (ToR-uplink failure): queued frames
	// are flushed and arrivals drop until it restores. Mutated only from
	// the owning switch's shard (exact-time events) or at barriers (the
	// recovery controller mirroring the remote end).
	down bool

	// Forwarded counts frames put on the wire; Dropped counts every
	// discard at this port (tail drops plus shed victims plus link-down
	// losses); ShedLo is the subset evicted to admit a high-priority
	// frame; DownDropped the subset lost to a severed link.
	Forwarded   uint64
	Dropped     uint64
	ShedLo      uint64
	DownDropped uint64

	// busyNs accumulates transmit occupancy since winStart, for the
	// utilization report.
	busyNs   sim.Time
	winStart sim.Time
}

func (p *Port) depth() int { return len(p.hi) + len(p.lo) }

// Queued reports frames currently waiting at the port (excluding the one
// being serialized).
func (p *Port) Queued() int { return p.depth() }

// Busy reports whether a frame is on the wire right now.
func (p *Port) Busy() bool { return p.busy }

// Utilization is the port's transmit occupancy since the last window
// reset.
func (p *Port) Utilization(now sim.Time) float64 {
	if now <= p.winStart {
		return 0
	}
	return float64(p.busyNs) / float64(now-p.winStart)
}

// Switch is one ToR or spine: classify against the control-plane
// snapshot, pick the egress port, queue, serialize, forward. It lives on
// its own shard; Receive runs in event context on that shard.
type Switch struct {
	Name  string
	Shard *par.Shard
	Pipe  *obs.Pipeline

	cfg     FabricConfig
	latency sim.Time
	// snap points at the cluster's shared atomic routing snapshot;
	// recovery swaps the snapshot at barrier epochs and every switch
	// observes the new version from the next window on.
	snap *atomic.Pointer[Snapshot]
	// portFor maps a route to the egress port (downlink for local
	// destinations, uplink toward the next tier).
	portFor func(Route) *Port
	Ports   []*Port

	// RxFrames counts arrivals; Unroutable counts frames whose inner
	// destination port has no snapshot entry.
	RxFrames   uint64
	Unroutable uint64
	seq        uint64
}

func newSwitch(g *par.Group, name string, seed uint64, latency sim.Time, cfg FabricConfig, snap *atomic.Pointer[Snapshot]) *Switch {
	sw := &Switch{
		Name:    name,
		Pipe:    obs.NewPipeline(name),
		cfg:     cfg,
		latency: latency,
		snap:    snap,
	}
	sw.Shard = g.Add(name, sim.NewEngine(seed))
	return sw
}

// addPort attaches an egress link to the switch.
func (s *Switch) addPort(name string, link *par.Link, prop sim.Time) *Port {
	p := &Port{Name: name, link: link, prop: prop, cap: s.cfg.QueueCap}
	s.Ports = append(s.Ports, p)
	return p
}

// classify resolves a wire frame to its snapshot route by the inner
// destination port (the globally unique flow identity — container IPs
// repeat across hosts, ports never do).
func classify(snap *Snapshot, frame []byte) (Route, bool) {
	inner := frame
	if pkt.IsVXLAN(frame) {
		_, in, err := pkt.Decapsulate(frame)
		if err != nil {
			return Route{}, false
		}
		inner = in
	}
	fl, err := pkt.ParseFlow(inner)
	if err != nil {
		return Route{}, false
	}
	return snap.Lookup(fl.DstPort)
}

// Receive handles one frame arriving at the switch at time at (event
// context on the switch's shard).
func (s *Switch) Receive(at sim.Time, frame []byte) {
	s.RxFrames++
	rt, ok := classify(s.snap.Load(), frame)
	if !ok {
		s.Unroutable++
		s.Pipe.FabricDrop(at, s.Name, "unroutable", 0)
		return
	}
	s.enqueue(at, s.portFor(rt), queued{frame: frame, hi: rt.Hi, arrived: at})
}

func (s *Switch) enqueue(now sim.Time, p *Port, q queued) {
	prio := 0
	if q.hi {
		prio = 1
	}
	if p.down {
		p.Dropped++
		p.DownDropped++
		s.Pipe.FabricDrop(now, p.Name, "link-down", prio)
		return
	}
	if p.depth() >= p.cap {
		if q.hi && len(p.lo) > 0 {
			// Evict the youngest best-effort frame: the oldest is
			// closest to transmission and dropping it wastes the most
			// queueing work.
			p.lo = p.lo[:len(p.lo)-1]
			p.ShedLo++
			p.Dropped++
			s.Pipe.FabricDrop(now, p.Name, "shed", 0)
		} else {
			p.Dropped++
			s.Pipe.FabricDrop(now, p.Name, "queue-full", prio)
			return
		}
	}
	if q.hi {
		p.hi = append(p.hi, q)
	} else {
		p.lo = append(p.lo, q)
	}
	if !p.busy {
		s.startTx(now, p)
	}
}

// startTx dequeues strict-priority and occupies the port for the switch
// latency plus the frame's serialization time.
func (s *Switch) startTx(now sim.Time, p *Port) {
	var q queued
	if len(p.hi) > 0 {
		q, p.hi = p.hi[0], p.hi[1:]
	} else if len(p.lo) > 0 {
		q, p.lo = p.lo[0], p.lo[1:]
	} else {
		return
	}
	p.busy = true
	done := now + s.latency + s.cfg.serialization(len(q.frame))
	p.busyNs += done - now
	s.Shard.Eng.At(done, func() { s.finishTx(done, p, q) })
}

func (s *Switch) finishTx(done sim.Time, p *Port, q queued) {
	prio := 0
	if q.hi {
		prio = 1
	}
	s.Pipe.Fabric(p.Name, s.seq, prio, q.arrived, done)
	s.seq++
	p.link.Send(done, p.prop, q.frame)
	p.Forwarded++
	p.busy = false
	if p.depth() > 0 {
		s.startTx(done, p)
	}
}

// setPortDown flips a port's link state. Going down flushes the queue —
// every waiting frame is a link-down loss — while a frame already in
// serialization finishes (it is on the wire). The restore never needs to
// resume transmission: arrivals drop while the link is down, so the
// queue is empty by construction — which is what lets the recovery
// controller call this at barriers (mutating quiescent state) without
// ever scheduling an event. Call from the switch's own shard in event
// context, or from a barrier while all shards are quiescent.
func (s *Switch) setPortDown(now sim.Time, p *Port, down bool) {
	if p == nil || p.down == down {
		return
	}
	p.down = down
	if !down {
		return
	}
	flushed := p.depth()
	for i := 0; i < len(p.hi); i++ {
		s.Pipe.FabricDrop(now, p.Name, "link-down", 1)
	}
	for i := 0; i < len(p.lo); i++ {
		s.Pipe.FabricDrop(now, p.Name, "link-down", 0)
	}
	p.hi, p.lo = p.hi[:0], p.lo[:0]
	p.Dropped += uint64(flushed)
	p.DownDropped += uint64(flushed)
}

// resetWindow restarts the utilization accounting at time at (scheduled
// on the switch's own engine at the end of warmup).
func (s *Switch) resetWindow(at sim.Time) {
	for _, p := range s.Ports {
		p.busyNs = 0
		p.winStart = at
	}
}

// inFlight counts frames inside this switch: queued at a port or
// currently being serialized.
func (s *Switch) inFlight() int {
	n := 0
	for _, p := range s.Ports {
		n += p.depth()
		if p.busy {
			n++
		}
	}
	return n
}

// forwarded sums the frames the switch put on its wires.
func (s *Switch) forwarded() uint64 {
	var n uint64
	for _, p := range s.Ports {
		n += p.Forwarded
	}
	return n
}

// dropped sums the switch's discards (port drops plus unroutable).
func (s *Switch) dropped() uint64 {
	n := s.Unroutable
	for _, p := range s.Ports {
		n += p.Dropped
	}
	return n
}
