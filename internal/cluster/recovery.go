package cluster

// Deterministic failure detection and live recovery. The subsystem is
// built from three deterministic clocks:
//
//   - Failures fire at exact event times on the failing component's own
//     shard: a scripted crash is an engine event on the host, a
//     plane-driven one comes from the host's seed-split fault timeline,
//     and a ToR-uplink failure runs on the ToR's engine (plane-driven
//     uplink faults get a per-ToR fault plane seeded from the switch
//     seed, so hosts' fault streams are untouched).
//
//   - Heartbeats are per-host engine events on an out-of-band control
//     network: every HeartbeatEvery the host stamps lastBeat unless it is
//     down. Fabric partitions never delay heartbeats — a severed uplink
//     loses data frames, not liveness signal — so a ToR failure degrades
//     throughput without triggering migration.
//
//   - The controller runs at barrier boundaries (par.Group.OnBarrier),
//     quantized by a CheckEvery ticker: all shards are quiescent, so it
//     may read any shard's state and mutate quiescent state, but it
//     never schedules events — which keeps the window schedule, and
//     therefore the Windows counter in golden fixtures, a pure function
//     of the event timeline. Detection latency is therefore the time to
//     the first control tick at least SuspectAfter past the crash, in
//     simulated virtual time, identical at any worker count.
//
// Recovery of a suspected host: cordon it (no failback — a restarted
// host rejoins as ingress but never gets containers back), re-place its
// containers over the survivors with the cluster's own placement policy,
// rebind each flow's server app on the destination host, and publish a
// new routing snapshot with a strictly larger version through the
// cluster's atomic pointer. Frames in flight across the swap are either
// delivered under the old epoch or counted: at a down host as CrashRx,
// at an up host whose live route points elsewhere as EpochDrops — never
// lost silently, which is what keeps the fabric conservation equation
// closed across migrations.

import (
	"fmt"

	"prism/internal/fault"
	"prism/internal/par"
	"prism/internal/prio"
	rec "prism/internal/recover"
	"prism/internal/sim"
)

// RecoveryConfig arms the failure detector and recovery controller.
type RecoveryConfig struct {
	// Script lists deterministic scripted failure events (in addition to
	// any plane-driven ones the hosts' fault configs enable via
	// fault.ClassHostCrash / fault.ClassTorLink).
	Script rec.Script
	// HeartbeatEvery is each host's heartbeat period on the out-of-band
	// control network (default 250µs).
	HeartbeatEvery sim.Time
	// SuspectAfter is the detector timeout: a host whose last heartbeat
	// is strictly older than this at a control tick is declared dead
	// (default 1ms).
	SuspectAfter sim.Time
	// CheckEvery is the controller tick period, quantized to barrier
	// boundaries (default 500µs).
	CheckEvery sim.Time
	// RetryMax bounds admission-refusal retries per frame while the
	// cluster is degraded; 0 disables retry.
	RetryMax int
	// RetryBackoff shapes the retry delays (defaults 200µs base, 2ms
	// cap).
	RetryBackoff rec.Backoff
	// DegradeAdmission scales every ingress bucket's refill rate by the
	// surviving-capacity fraction after each detection, so admission
	// tracks what the cluster can actually serve.
	DegradeAdmission bool
}

func (r RecoveryConfig) withDefaults() RecoveryConfig {
	if r.HeartbeatEvery <= 0 {
		r.HeartbeatEvery = 250 * sim.Microsecond
	}
	if r.SuspectAfter <= 0 {
		r.SuspectAfter = sim.Millisecond
	}
	if r.CheckEvery <= 0 {
		r.CheckEvery = 500 * sim.Microsecond
	}
	if r.RetryBackoff.Base <= 0 {
		r.RetryBackoff.Base = 200 * sim.Microsecond
	}
	if r.RetryBackoff.Max <= 0 {
		r.RetryBackoff.Max = 2 * sim.Millisecond
	}
	return r
}

// Detection records one suspected host: when it actually went down and
// when the detector declared it — the difference is the detection
// latency in virtual time.
type Detection struct {
	Host      int
	DownAt    sim.Time
	SuspectAt sim.Time
}

// Migration records one container re-placement: the flow moved from
// OldHost to NewHost at the barrier epoch At, with ServedAtSwap requests
// already served by the old replica at that instant. The invariant
// checker reconciles old- and new-replica service against these records.
type Migration struct {
	Flow             int
	OldHost, NewHost int
	At               sim.Time
	ServedAtSwap     uint64
}

// recoveryState is the controller's working state.
type recoveryState struct {
	cfg    RecoveryConfig
	det    *rec.Detector
	policy rec.Policy
	// alive flags hosts not yet cordoned; aliveN counts them.
	alive  []bool
	aliveN int
	// torDown mirrors each rack's authoritative uplink state (written on
	// the ToR's shard at exact event times, read at barriers to keep the
	// spine's end of the link consistent).
	torDown []bool
	// degraded latches once any host is suspected; it gates admission
	// retry.
	degraded bool

	detections []Detection
	migrations []Migration
	torPlanes  []*fault.Plane

	// err latches a controller failure (re-placement over a full
	// surviving set); Run surfaces it after the barrier loop.
	err error
}

// initRecovery validates the config and wires the failure hooks; called
// at the end of New when Cfg.Recovery is set.
func (c *Cluster) initRecovery() error {
	rc := c.Cfg.Recovery
	if rc == nil {
		return nil
	}
	cfg := rc.withDefaults()
	if err := cfg.Script.Validate(c.Cfg.Hosts, c.Cfg.Fabric.Racks); err != nil {
		return err
	}
	policy := rec.Spread
	switch c.Cfg.Placement {
	case PlacePack:
		policy = rec.Pack
	case PlacePriority:
		policy = rec.Priority
	}
	alive := make([]bool, c.Cfg.Hosts)
	for i := range alive {
		alive[i] = true
	}
	c.rec = &recoveryState{
		cfg:     cfg,
		det:     rec.NewDetector(c.Cfg.Hosts, cfg.SuspectAfter),
		policy:  policy,
		alive:   alive,
		aliveN:  c.Cfg.Hosts,
		torDown: make([]bool, len(c.Tors)),
	}
	for _, n := range c.Nodes {
		n := n
		n.Plane.OnHostCrash(func(at, restore sim.Time) { c.crashNode(n, at, restore) })
	}
	// Plane-driven uplink faults need a fault stream on the ToR's own
	// shard; seed it from the switch seed so host planes draw nothing
	// extra. The plane only arms ClassTorLink chains (it has no devices
	// or consumers, and no crash hook), so a config without the class
	// draws nothing at all.
	if c.Cfg.Host.Fault != nil && c.Spine != nil {
		for r, tor := range c.Tors {
			r := r
			fcfg := *c.Cfg.Host.Fault
			fcfg.Seed = switchSeed(c.Cfg.Seed, r) ^ faultSalt
			p := fault.NewPlane(tor.Shard.Eng, fcfg)
			p.OnTorLink(func(at, restore sim.Time) { c.torLinkDown(r, at, restore) })
			c.rec.torPlanes = append(c.rec.torPlanes, p)
		}
	}
	return nil
}

// armRecovery schedules the recovery subsystem's event chains; called
// from Run once the horizon is known. No-op without a RecoveryConfig.
func (c *Cluster) armRecovery() {
	r := c.rec
	if r == nil {
		return
	}
	for _, ev := range r.cfg.Script {
		ev := ev
		switch ev.Kind {
		case rec.HostCrash:
			n := c.Nodes[ev.Host]
			n.Host.Eng.At(ev.At, func() { c.crashNode(n, ev.At, ev.Until) })
		case rec.TorLinkDown:
			tor := ev.Tor
			c.Tors[tor].Shard.Eng.At(ev.At, func() { c.torLinkDown(tor, ev.At, ev.Until) })
		}
	}
	for _, n := range c.Nodes {
		c.armHeartbeat(n, r.cfg.HeartbeatEvery)
	}
	for _, p := range r.torPlanes {
		p.Start(c.horizon)
	}
	c.ctrl = par.NewTicker(r.cfg.CheckEvery, c.controlTick)
	c.armBarrier()
}

// armHeartbeat schedules host n's next heartbeat: stamp lastBeat unless
// the host is down, then re-arm. The chain stops at the horizon, so
// Settle's extended runs schedule nothing new.
func (c *Cluster) armHeartbeat(n *Node, at sim.Time) {
	if at > c.horizon {
		return
	}
	n.Host.Eng.At(at, func() {
		if !n.down {
			n.lastBeat = at
		}
		c.armHeartbeat(n, at+c.rec.cfg.HeartbeatEvery)
	})
}

// crashNode fail-stops host n at the wire (event context on n's shard).
// The host's engine keeps running internally — queued packets drain,
// apps fire — which is exactly what keeps its conservation ledgers
// closed; only the wire boundary changes (nothing in, nothing out). A
// positive restore schedules the restart.
func (c *Cluster) crashNode(n *Node, at, restore sim.Time) {
	if n.down {
		return
	}
	n.down = true
	n.downAt = at
	if restore > at {
		n.Host.Eng.At(restore, func() { c.restartNode(n, restore) })
	}
}

// restartNode brings a crashed host back as an ingress (its heartbeats
// and client flows resume). Its containers are not failed back: once the
// detector cordoned the host, migrated flows stay on their new homes.
func (c *Cluster) restartNode(n *Node, at sim.Time) {
	n.down = false
	n.lastBeat = at
}

// torLinkDown severs rack r's uplink at the ToR's end at exact event
// time (event context on the ToR's shard) and records the authoritative
// state for the barrier mirror. The spine's end is mirrored at the next
// control tick — the epoch-quantized analogue of remote carrier-loss
// detection. A positive restore schedules the local repair.
func (c *Cluster) torLinkDown(r int, at, restore sim.Time) {
	tor := c.Tors[r]
	tor.setPortDown(at, c.torUp[r], true)
	c.rec.torDown[r] = true
	if restore > at {
		tor.Shard.Eng.At(restore, func() {
			tor.setPortDown(restore, c.torUp[r], false)
			c.rec.torDown[r] = false
		})
	}
}

// controlTick is the barrier-quantized controller: collect heartbeats,
// recover newly suspected hosts, and mirror ToR uplink state onto the
// spine's ports. It runs on the coordinator with every shard quiescent;
// it mutates state but never schedules events. Ticks past the horizon
// (Settle's drain rounds) are ignored — no beats arrive after the
// horizon, and reacting to that silence would false-suspect every host.
func (c *Cluster) controlTick(at sim.Time) {
	r := c.rec
	if r == nil || at > c.horizon {
		return
	}
	for _, n := range c.Nodes {
		r.det.Beat(n.ID, n.lastBeat)
	}
	for _, h := range r.det.Suspects(at) {
		c.recoverHost(h, at)
	}
	if c.Spine != nil {
		for rack, down := range r.torDown {
			c.Spine.setPortDown(at, c.spineDown[rack], down)
		}
	}
}

// migrateFlow rebinds flow i's server app onto a fresh container on
// newHost, repoints its route in the pending routes map, and records the
// migration. Returns false (with r.err latched) when the rehome fails.
// Runs at a barrier (quiescent mutation only).
func (c *Cluster) migrateFlow(i, newHost int, at sim.Time, routes map[uint16]Route, version int) bool {
	r := c.rec
	fl := c.Flows[i]
	oldHost := c.Assignment[i]
	d := c.Nodes[newHost]
	ctr := d.Host.AddContainer(fmt.Sprintf("%s~%d", fl.Spec.Name, version))
	if fl.Spec.Hi {
		d.Host.DB.Add(prio.Rule{IP: ctr.IP, Port: SvcPort(i)})
	}
	var served uint64
	var err error
	if fl.PP != nil {
		served = fl.PP.Served()
		err = fl.PP.Rehome(ctr, c.Cfg.EchoCost)
	} else {
		served = fl.Flood.DeliveredCount()
		err = fl.Flood.Rehome(ctr, c.Cfg.SinkCost)
	}
	if err != nil {
		r.err = fmt.Errorf("cluster: rehoming %s: %w", fl.Spec.Name, err)
		return false
	}
	rt := routes[SvcPort(i)]
	rt.Host = newHost
	routes[SvcPort(i)] = rt
	c.Assignment[i] = newHost
	fl.HostID = newHost
	r.migrations = append(r.migrations, Migration{
		Flow: i, OldHost: oldHost, NewHost: newHost, At: at, ServedAtSwap: served,
	})
	return true
}

// recoverHost drains a suspected host: cordon it, re-place its
// containers across the survivors under the cluster's placement policy,
// rebind each flow's server app on its new home, and publish the new
// routing epoch. Runs at a barrier (quiescent mutation only).
func (c *Cluster) recoverHost(h int, at sim.Time) {
	r := c.rec
	if r.err != nil {
		return
	}
	n := c.Nodes[h]
	r.detections = append(r.detections, Detection{Host: h, DownAt: n.downAt, SuspectAt: at})
	if r.alive[h] {
		r.alive[h] = false
		r.aliveN--
	}
	r.degraded = true
	if r.cfg.DegradeAdmission {
		f := rec.CapacityFactor(r.aliveN, c.Cfg.Hosts)
		for _, node := range c.Nodes {
			node.Bucket.SetFactor(at, f)
		}
	}
	var orphans []int
	for i := range c.Flows {
		if c.Assignment[i] == h {
			orphans = append(orphans, i)
		}
	}
	if len(orphans) == 0 {
		return
	}
	hi := make([]bool, len(orphans))
	for k, i := range orphans {
		hi[k] = c.Flows[i].Spec.Hi
	}
	load := make([]int, len(c.Nodes))
	for i, node := range c.Nodes {
		load[i] = len(node.Host.Containers)
	}
	dest, err := rec.Replace(r.policy, hi, load, r.alive, c.Cfg.HostCap)
	if err != nil {
		r.err = fmt.Errorf("cluster: recovering host%02d at %d: %w", h, at, err)
		return
	}
	old := c.snap.Load()
	routes := old.cloneRoutes()
	for k, i := range orphans {
		if !c.migrateFlow(i, dest[k], at, routes, old.Version) {
			return
		}
	}
	// Under the Priority policy the crashed host is usually the packed
	// best-effort dump, and Replace necessarily re-packs that load onto a
	// survivor that is already serving prioritized flows — the isolation
	// the original placement established would silently die with the
	// host. Restore it in the same epoch: evict the prioritized flows
	// from every host that just absorbed best-effort orphans onto the
	// least-loaded survivors that did not.
	if r.policy == rec.Priority {
		dump := make([]bool, len(c.Nodes))
		dumped := false
		for k := range orphans {
			if !hi[k] {
				dump[dest[k]] = true
				dumped = true
			}
		}
		if dumped {
			count := make([]int, len(c.Nodes))
			for i, node := range c.Nodes {
				count[i] = len(node.Host.Containers)
			}
			target := func() int {
				best := -1
				for i := range c.Nodes {
					if !r.alive[i] || dump[i] || count[i] >= c.Cfg.HostCap {
						continue
					}
					if best < 0 || count[i] < count[best] {
						best = i
					}
				}
				return best
			}
			for i, fl := range c.Flows {
				if !fl.Spec.Hi || !dump[c.Assignment[i]] {
					continue
				}
				d := target()
				if d < 0 {
					break // every survivor is a dump host; leave in place
				}
				if !c.migrateFlow(i, d, at, routes, old.Version) {
					return
				}
				count[d]++
			}
		}
	}
	if err := c.SwapSnapshot(NewSnapshot(old.Version+1, routes)); err != nil {
		r.err = err
	}
}

// Detections returns the detector's suspicion records in detection
// order; nil without recovery armed.
func (c *Cluster) Detections() []Detection {
	if c.rec == nil {
		return nil
	}
	return c.rec.detections
}

// Migrations returns the recovery migrations in execution order; nil
// without recovery armed.
func (c *Cluster) Migrations() []Migration {
	if c.rec == nil {
		return nil
	}
	return c.rec.migrations
}

// RecoveryRetries sums the degraded-mode admission retries across the
// ingress nodes.
func (c *Cluster) RecoveryRetries() uint64 {
	var n uint64
	for _, node := range c.Nodes {
		n += node.Retries
	}
	return n
}

// CrashDrops sums frames absorbed at down hosts' wires: rx frames the
// fabric delivered into a dead host, tx frames a dead host tried to
// emit.
func (c *Cluster) CrashDrops() (rx, tx uint64) {
	for _, n := range c.Nodes {
		rx += n.CrashRx
		tx += n.CrashTx
	}
	return
}

// EpochDrops sums frames dropped because they crossed a routing-epoch
// swap in flight.
func (c *Cluster) EpochDrops() uint64 {
	var n uint64
	for _, node := range c.Nodes {
		n += node.EpochDrops
	}
	return n
}
