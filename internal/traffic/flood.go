package traffic

import (
	"prism/internal/overlay"
	"prism/internal/pkt"
	"prism/internal/sim"
	"prism/internal/socket"
	"prism/internal/stats"
)

// UDPFlood is the sockperf UDP throughput mode: open-loop background
// traffic at a configured average packet rate, emitted in short bursts as
// a real sender's syscall batching and the 100 GbE link deliver them.
type UDPFlood struct {
	Eng  *sim.Engine
	Host *overlay.Host

	// Target is the receiving container; nil targets the host socket.
	Target  *overlay.Container
	DstPort uint16
	Src     overlay.RemoteEndpoint

	// Rate is the average packets per second; Burst is how many frames
	// arrive back-to-back per emission (sender batching). Poisson draws
	// exponential inter-burst gaps — bursts then cluster, which is what a
	// real sender's scheduling jitter does and what builds the standing
	// queues behind Fig. 3's busy tail; JitterFrac applies instead when
	// Poisson is off.
	Rate       float64
	Burst      int
	PayloadLen int
	Poisson    bool
	JitterFrac float64

	// Inject, when set, replaces the default wire delivery with a
	// cross-shard hand-off, as on PingPong.Inject.
	Inject func(now, arrive sim.Time, frame []byte)

	// Delivered counts messages that reached the first-installed sink;
	// sinks holds every installed replica's counter (rehomed flows gain
	// one per migration — the old sink may still drain concurrently on
	// its crashed host's shard, so counters are never shared). Use
	// DeliveredCount for the flow's total.
	Delivered *stats.RateCounter
	sinks     []*stats.RateCounter
	Sent      uint64

	// frame is the wire frame, encoded once at the first burst: every
	// flood packet is byte-identical (zero payload, fixed flow), and the
	// NIC's DMA copies it, so one buffer serves the whole run.
	frame   []byte
	emitFn  func()
	stopped bool
}

// NewUDPFlood constructs a flood with the paper's defaults: small packets,
// bursts of 64 (one NAPI weight).
func NewUDPFlood(eng *sim.Engine, h *overlay.Host, target *overlay.Container,
	src overlay.RemoteEndpoint, dstPort uint16, rate float64) *UDPFlood {
	return &UDPFlood{
		Eng: eng, Host: h, Target: target, Src: src, DstPort: dstPort,
		Rate: rate, Burst: 64, PayloadLen: 64, Poisson: true, JitterFrac: 0.2,
		Delivered: stats.NewRateCounter("background-rx"),
	}
}

// InstallSink binds the receiving sockperf server: it just counts messages,
// charging perMsgCost on its application core. Each call installs a
// fresh replica sink on the current Target.
func (f *UDPFlood) InstallSink(perMsgCost sim.Time) error {
	sink := f.Delivered
	if len(f.sinks) > 0 {
		sink = stats.NewRateCounter("background-rx")
	}
	f.sinks = append(f.sinks, sink)
	app := socket.AppFunc{
		Cost: func(socket.Message) sim.Time { return perMsgCost },
		Fn: func(done sim.Time, m socket.Message) {
			sink.Add(done, 1, len(m.Payload))
		},
	}
	if f.Target != nil {
		_, err := f.Target.Bind(pkt.ProtoUDP, f.DstPort, app, 4096)
		return err
	}
	_, err := f.Host.BindHost(pkt.ProtoUDP, f.DstPort, app, 4096)
	return err
}

// Rehome migrates the flood's sink to a new container (a cluster
// recovery re-placement): the next burst re-encodes the wire frame for
// the new target, and a fresh sink replica counts deliveries there. The
// old replica stays bound on its crashed host. Call only while all
// shards are quiescent (a barrier).
func (f *UDPFlood) Rehome(target *overlay.Container, perMsgCost sim.Time) error {
	f.Target = target
	f.frame = nil
	return f.InstallSink(perMsgCost)
}

// DeliveredCount sums deliveries across every installed sink replica.
// Read only at quiescent points.
func (f *UDPFlood) DeliveredCount() uint64 {
	var n uint64
	for _, s := range f.sinks {
		n += s.Count()
	}
	return n
}

// Start schedules the first burst at time at.
func (f *UDPFlood) Start(at sim.Time) {
	if f.Rate <= 0 {
		return
	}
	f.emitFn = f.emitBurst
	f.Eng.At(at, f.emitFn)
}

// Stop ceases emission after the current burst.
func (f *UDPFlood) Stop() { f.stopped = true }

// injectFlood delivers one flood frame to the wire — a top-level function
// so the per-packet schedule (sim.CallAt) allocates nothing.
func injectFlood(at sim.Time, a1, _ any) {
	f := a1.(*UDPFlood)
	f.Host.InjectFromWire(at, f.frame)
}

func (f *UDPFlood) emitBurst() {
	if f.stopped {
		return
	}
	now := f.Eng.Now()
	if f.frame == nil {
		payload := make([]byte, f.PayloadLen)
		if f.Target != nil {
			f.frame = overlay.EncapToServer(f.Src, f.Target, f.DstPort, payload)
		} else {
			f.frame = overlay.HostUDPToServer(f.Src.Port, f.DstPort, payload)
		}
	}
	frame := f.frame
	ser := f.Host.Costs.Serialization(len(frame))
	arrive := now + f.Host.Costs.WireLatency
	for i := 0; i < f.Burst; i++ {
		at := arrive + sim.Time(i)*ser
		if f.Inject != nil {
			f.Inject(now, at, frame)
		} else {
			f.Eng.CallAt(at, injectFlood, f, nil)
		}
		f.Sent++
	}
	mean := sim.Time(float64(f.Burst) / f.Rate * float64(sim.Second))
	var gap sim.Time
	if f.Poisson {
		gap = f.Eng.RNG().ExpDuration(mean)
	} else {
		gap = mean
		if f.JitterFrac > 0 {
			gap += f.Eng.RNG().Jitter(sim.Time(float64(mean) * f.JitterFrac))
		}
	}
	if gap < 1 {
		gap = 1
	}
	if f.emitFn == nil {
		f.emitFn = f.emitBurst
	}
	f.Eng.At(now+gap, f.emitFn)
}

// TCPStream is the sockperf TCP throughput mode used as Fig. 13's
// background: large messages segmented at the MSS by the sender's egress
// stack (TSO), arriving as trains of MTU frames.
type TCPStream struct {
	Eng  *sim.Engine
	Host *overlay.Host

	Target  *overlay.Container
	DstPort uint16
	Src     overlay.RemoteEndpoint

	// MsgRate is messages per second; MsgSize bytes per message.
	MsgRate    float64
	MsgSize    int
	MSS        int
	JitterFrac float64

	// Inject, when set, replaces the default wire delivery with a
	// cross-shard hand-off, as on PingPong.Inject.
	Inject func(now, arrive sim.Time, frame []byte)

	// Delivered counts SKBs reaching the app; DeliveredBytes the payload.
	Delivered *stats.RateCounter
	SentPkts  uint64

	seq     uint32
	stopped bool

	// Segment frames live from encode until the NIC's DMA copy, so a
	// whole message's train is in flight at once; a free-list pool keeps
	// that from costing one heap frame per segment. payload and inner are
	// encode scratch reused across segments (payload is all zeros; inner
	// is consumed by EncapInto before the next segment overwrites it).
	pool    pkt.FramePool
	payload []byte
	inner   []byte
	emitFn  func()
}

// NewTCPStream constructs the Fig. 13 background: 64 KB messages.
func NewTCPStream(eng *sim.Engine, h *overlay.Host, target *overlay.Container,
	src overlay.RemoteEndpoint, dstPort uint16, msgRate float64) *TCPStream {
	return &TCPStream{
		Eng: eng, Host: h, Target: target, Src: src, DstPort: dstPort,
		MsgRate: msgRate, MsgSize: 64 * 1024,
		MSS:        pkt.MTU - pkt.IPv4HeaderLen - pkt.TCPHeaderLen,
		JitterFrac: 0.2,
		Delivered:  stats.NewRateCounter("tcp-background-rx"),
	}
}

// InstallSink binds the TCP sink app charging perSKBCost per delivered SKB.
func (t *TCPStream) InstallSink(perSKBCost sim.Time) error {
	app := socket.AppFunc{
		Cost: func(socket.Message) sim.Time { return perSKBCost },
		Fn: func(done sim.Time, m socket.Message) {
			t.Delivered.Add(done, 1, len(m.Payload))
		},
	}
	if t.Target != nil {
		_, err := t.Target.Bind(pkt.ProtoTCP, t.DstPort, app, 8192)
		return err
	}
	_, err := t.Host.BindHost(pkt.ProtoTCP, t.DstPort, app, 8192)
	return err
}

// Start schedules the first message at time at.
func (t *TCPStream) Start(at sim.Time) {
	if t.MsgRate <= 0 {
		return
	}
	t.emitFn = t.emitMessage
	t.Eng.At(at, t.emitFn)
}

// Stop ceases emission after the current message.
func (t *TCPStream) Stop() { t.stopped = true }

// injectStreamFrame hands one pooled TCP segment to the wire and returns
// the buffer; the NIC's DMA has copied it by the time InjectFromWire
// returns, so the release is safe. Top-level for sim.CallAt.
func injectStreamFrame(at sim.Time, a1, a2 any) {
	t := a1.(*TCPStream)
	buf := a2.(*pkt.Frame)
	t.Host.InjectFromWire(at, buf.B)
	buf.Release()
}

// encodeSegment writes one MSS-sized segment into a pooled frame buffer.
// The cross-shard Inject path never lands here — it needs a retained
// frame, not a recycled one.
func (t *TCPStream) encodeSegment(size int) *pkt.Frame {
	if cap(t.payload) < t.MSS {
		t.payload = make([]byte, t.MSS)
	}
	payload := t.payload[:size]
	innerLen := pkt.EthHeaderLen + pkt.IPv4HeaderLen + pkt.TCPHeaderLen + size
	if t.Target != nil {
		buf := t.pool.Get(innerLen + pkt.VXLANOverhead)
		frame, inner := overlay.EncapTCPToServerInto(buf.B, t.inner,
			t.Src, t.Target, t.DstPort, t.seq, payload)
		t.inner, buf.B = inner, frame
		return buf
	}
	buf := t.pool.Get(innerLen)
	buf.B = pkt.AppendTCPFrame(buf.B, pkt.TCPFrameSpec{
		SrcMAC: overlay.ClientMAC, DstMAC: overlay.ServerMAC,
		SrcIP: overlay.ClientIP, DstIP: overlay.ServerIP,
		SrcPort: t.Src.Port, DstPort: t.DstPort, Seq: t.seq,
		Flags: pkt.TCPAck | pkt.TCPPsh, Payload: payload,
	})
	return buf
}

func (t *TCPStream) emitMessage() {
	if t.stopped {
		return
	}
	now := t.Eng.Now()
	segments := (t.MsgSize + t.MSS - 1) / t.MSS
	arrive := now + t.Host.Costs.WireLatency
	for i := 0; i < segments; i++ {
		size := t.MSS
		if i == segments-1 {
			size = t.MsgSize - i*t.MSS
		}
		if t.Inject != nil {
			var frame []byte
			if t.Target != nil {
				frame = overlay.EncapTCPToServer(t.Src, t.Target, t.DstPort, t.seq, make([]byte, size))
			} else {
				frame = pkt.BuildTCPFrame(pkt.TCPFrameSpec{
					SrcMAC: overlay.ClientMAC, DstMAC: overlay.ServerMAC,
					SrcIP: overlay.ClientIP, DstIP: overlay.ServerIP,
					SrcPort: t.Src.Port, DstPort: t.DstPort, Seq: t.seq,
					Flags: pkt.TCPAck | pkt.TCPPsh, Payload: make([]byte, size),
				})
			}
			t.seq += uint32(size)
			arrive += t.Host.Costs.Serialization(len(frame))
			t.Inject(now, arrive, frame)
		} else {
			buf := t.encodeSegment(size)
			t.seq += uint32(size)
			arrive += t.Host.Costs.Serialization(len(buf.B))
			t.Eng.CallAt(arrive, injectStreamFrame, t, buf)
		}
		t.SentPkts++
	}
	gap := sim.Time(float64(sim.Second) / t.MsgRate)
	if t.JitterFrac > 0 {
		gap += t.Eng.RNG().Jitter(sim.Time(float64(gap) * t.JitterFrac))
	}
	if gap < 1 {
		gap = 1
	}
	if t.emitFn == nil {
		t.emitFn = t.emitMessage
	}
	t.Eng.At(now+gap, t.emitFn)
}
