package traffic

import (
	"prism/internal/nic"
	"prism/internal/sim"
)

// nicConfig builds the moderation+GRO NIC settings used by rig variants.
func nicConfig(gro bool) nic.Config {
	return nic.Config{
		RxUsecs:  6 * sim.Microsecond,
		RxFrames: 32,
		GRO:      gro,
	}
}
