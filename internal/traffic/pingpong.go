package traffic

import (
	"prism/internal/overlay"
	"prism/internal/pkt"
	"prism/internal/sim"
	"prism/internal/socket"
	"prism/internal/stats"
)

// PingPong is the sockperf under-load latency flow: requests at a constant
// rate with an embedded (sequence, send-timestamp) probe; the server echoes
// and per-packet latency is computed as RTT/2, exactly as sockperf reports.
type PingPong struct {
	Eng  *sim.Engine
	Host *overlay.Host

	// Target selects the server endpoint: a container (overlay path) or,
	// if nil, the host network socket at DstPort.
	Target  *overlay.Container
	DstPort uint16
	// Src identifies the client container (or host port when Target nil).
	Src overlay.RemoteEndpoint

	// Rate is requests per second; Poisson selects exponential gaps.
	Rate    float64
	Poisson bool

	PayloadLen int

	ClientTx sim.Time
	ClientRx sim.Time
	// Warmup discards samples whose request was sent before this time.
	Warmup sim.Time

	// Inject, when set, replaces the default wire delivery (an event on
	// Eng calling Host.InjectFromWire): the generator hands each request
	// frame with its departure and computed arrival time to the hook.
	// Parallel split topologies route it over a cross-shard link so the
	// generator can run on a client shard while the host runs elsewhere.
	Inject func(now, arrive sim.Time, frame []byte)

	// OnSample, when set, observes every post-warmup latency sample in
	// delivery order, keyed by the probe sequence number — the per-flow
	// delivered sequence the determinism tests compare.
	OnSample func(seq uint64, lat sim.Time)

	// Hist records per-packet latency (RTT/2), the value sockperf reports.
	Hist *stats.Histogram
	// KernelHist records the server-side in-kernel residence (NIC ring to
	// socket buffer) of each request — the part of the path PRISM
	// modifies, free of client-side and reverse-path constants.
	KernelHist *stats.Histogram

	Sent     uint64
	Received uint64

	// homes are the installed echo replicas, in install order. After a
	// cluster migration the old replica keeps draining its host's
	// internally queued requests while the new one serves live traffic —
	// possibly concurrently on different shards — so each home owns its
	// counters and readers sum them at quiescent points.
	homes []*echoHome

	stopped bool
}

// echoHome is one installed echo replica's private state. The first
// home's kernel histogram is the flow's KernelHist; later homes record
// into their own (merging live histograms across shards would race).
type echoHome struct {
	served uint64
	kernel *stats.Histogram
}

// NewPingPong constructs the flow with defaults filled in.
func NewPingPong(eng *sim.Engine, h *overlay.Host, target *overlay.Container,
	src overlay.RemoteEndpoint, dstPort uint16, rate float64) *PingPong {
	return &PingPong{
		Eng: eng, Host: h, Target: target, Src: src, DstPort: dstPort,
		Rate: rate, PayloadLen: 64,
		ClientTx: DefaultClientTx, ClientRx: DefaultClientRx,
		Hist:       stats.NewHistogram(),
		KernelHist: stats.NewHistogram(),
	}
}

// InstallEcho binds the echo server app with the given per-request CPU
// cost, the sockperf server analogue. Each call installs a fresh
// replica (home) on the current Target; the first call is the normal
// single-server case.
func (p *PingPong) InstallEcho(appCost sim.Time) error {
	home := &echoHome{kernel: p.KernelHist}
	if len(p.homes) > 0 {
		home.kernel = stats.NewHistogram()
	}
	p.homes = append(p.homes, home)
	if p.Target != nil {
		ctr, src, dstPort := p.Target, p.Src, p.DstPort
		app := socket.AppFunc{
			Cost: func(socket.Message) sim.Time { return appCost },
			Fn: func(done sim.Time, m socket.Message) {
				home.served++
				p.recordKernel(home, m)
				ctr.SendUDP(done, src, dstPort, m.Payload)
			},
		}
		_, err := ctr.Bind(pkt.ProtoUDP, p.DstPort, app, 4096)
		return err
	}
	h, dstPort := p.Host, p.DstPort
	app := socket.AppFunc{
		Cost: func(socket.Message) sim.Time { return appCost },
		Fn: func(done sim.Time, m socket.Message) {
			home.served++
			p.recordKernel(home, m)
			h.SendHostUDP(done, m.From.SrcPort, dstPort, m.Payload)
		},
	}
	_, err := h.BindHost(pkt.ProtoUDP, p.DstPort, app, 4096)
	return err
}

// Rehome migrates the flow's server endpoint to a new container (a
// cluster recovery re-placement) and installs a fresh echo replica
// there. The old replica stays bound — its crashed host keeps draining
// internal queues — while the generator encodes the new target from its
// next send on. Call only while all shards are quiescent (a barrier).
func (p *PingPong) Rehome(target *overlay.Container, appCost sim.Time) error {
	p.Target = target
	return p.InstallEcho(appCost)
}

// Served sums requests served across every installed replica. Homes on
// different shards update concurrently, so read only at quiescent
// points.
func (p *PingPong) Served() uint64 {
	var n uint64
	for _, h := range p.homes {
		n += h.served
	}
	return n
}

func (p *PingPong) recordKernel(home *echoHome, m socket.Message) {
	if m.Arrived < p.Warmup {
		return
	}
	home.kernel.Record(m.Delivered - m.Arrived)
}

// Start registers the reply handler and schedules the first request at
// time at. The flow runs until Stop or the simulation horizon.
func (p *PingPong) Start(client *Client, at sim.Time) {
	client.Register(p.Src.Port, p.onReply)
	p.Eng.At(at, p.sendNext)
}

// Stop ceases sending after the current request.
func (p *PingPong) Stop() { p.stopped = true }

func (p *PingPong) interval() sim.Time {
	mean := sim.Time(float64(sim.Second) / p.Rate)
	if p.Poisson {
		return p.Eng.RNG().ExpDuration(mean)
	}
	return mean
}

func (p *PingPong) sendNext() {
	if p.stopped {
		return
	}
	now := p.Eng.Now()
	payload := make([]byte, p.PayloadLen)
	pkt.PutProbe(payload, p.Sent, now)
	p.Sent++

	var frame []byte
	if p.Target != nil {
		frame = overlay.EncapToServer(p.Src, p.Target, p.DstPort, payload)
	} else {
		frame = overlay.HostUDPToServer(p.Src.Port, p.DstPort, payload)
	}
	arrive := now + p.ClientTx + p.Host.Costs.WireLatency + p.Host.Costs.Serialization(len(frame))
	if p.Inject != nil {
		p.Inject(now, arrive, frame)
	} else {
		f := frame
		p.Eng.At(arrive, func() { p.Host.InjectFromWire(p.Eng.Now(), f) })
	}
	p.Eng.At(now+p.interval(), p.sendNext)
}

func (p *PingPong) onReply(now sim.Time, payload []byte, _ pkt.FlowKey) {
	seq, sentAt, err := pkt.ParseProbe(payload)
	if err != nil {
		return
	}
	p.Received++
	if sentAt < p.Warmup {
		return
	}
	rtt := now + p.ClientRx - sentAt
	p.Hist.Record(rtt / 2)
	if p.OnSample != nil {
		p.OnSample(seq, rtt/2)
	}
}
