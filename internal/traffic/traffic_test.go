package traffic

import (
	"math"
	"testing"

	"prism/internal/cpu"
	"prism/internal/overlay"
	"prism/internal/prio"
	"prism/internal/sim"
)

func newRig(t *testing.T, mode prio.Mode) (*sim.Engine, *overlay.Host, *Client) {
	t.Helper()
	eng := sim.NewEngine(11)
	h := overlay.NewHost(eng, overlay.Config{Mode: mode, CStates: cpu.C1, AppCStates: cpu.C1})
	return eng, h, NewClient(h)
}

func TestPingPongMeasuresLatency(t *testing.T) {
	eng, h, client := newRig(t, prio.ModeVanilla)
	ctr := h.AddContainer("srv")
	pp := NewPingPong(eng, h, ctr, overlay.ClientContainer(0, 40001), 11111, 1000)
	if err := pp.InstallEcho(1 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	pp.Start(client, 0)
	if err := eng.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if pp.Sent < 99 || pp.Sent > 101 {
		t.Errorf("Sent = %d, want ~100 at 1kpps over 100ms", pp.Sent)
	}
	// All but the last in-flight request must complete on an idle server.
	if pp.Received < pp.Sent-2 {
		t.Errorf("Received = %d of %d", pp.Received, pp.Sent)
	}
	if pp.Hist.Count() == 0 {
		t.Fatal("no latency samples")
	}
	med := pp.Hist.Median()
	// Idle overlay RTT/2 lands in the tens of microseconds.
	if med < 10*sim.Microsecond || med > 120*sim.Microsecond {
		t.Errorf("idle median latency = %v, want tens of µs", med)
	}
	if client.Unrouted != 0 {
		t.Errorf("Unrouted = %d", client.Unrouted)
	}
}

func TestPingPongHostNetwork(t *testing.T) {
	eng, h, client := newRig(t, prio.ModeVanilla)
	pp := NewPingPong(eng, h, nil, overlay.RemoteEndpoint{Port: 40002}, 9000, 1000)
	if err := pp.InstallEcho(1 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	pp.Start(client, 0)
	if err := eng.Run(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if pp.Hist.Count() == 0 {
		t.Fatal("no samples on host network")
	}
	// The single-stage host path must be faster than the overlay.
	engO, hO, clientO := newRig(t, prio.ModeVanilla)
	ctr := hO.AddContainer("srv")
	ppO := NewPingPong(engO, hO, ctr, overlay.ClientContainer(0, 40001), 11111, 1000)
	if err := ppO.InstallEcho(1 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	ppO.Start(clientO, 0)
	if err := engO.Run(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if pp.Hist.Median() >= ppO.Hist.Median() {
		t.Errorf("host median %v not faster than overlay median %v",
			pp.Hist.Median(), ppO.Hist.Median())
	}
}

func TestPingPongWarmupFilters(t *testing.T) {
	eng, h, client := newRig(t, prio.ModeVanilla)
	ctr := h.AddContainer("srv")
	pp := NewPingPong(eng, h, ctr, overlay.ClientContainer(0, 40001), 11111, 1000)
	pp.Warmup = 50 * sim.Millisecond
	if err := pp.InstallEcho(0); err != nil {
		t.Fatal(err)
	}
	pp.Start(client, 0)
	if err := eng.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if pp.Hist.Count() >= pp.Received {
		t.Errorf("warmup not filtered: %d samples of %d replies", pp.Hist.Count(), pp.Received)
	}
	if pp.Hist.Count() == 0 {
		t.Error("all samples filtered")
	}
}

func TestPingPongStop(t *testing.T) {
	eng, h, client := newRig(t, prio.ModeVanilla)
	ctr := h.AddContainer("srv")
	pp := NewPingPong(eng, h, ctr, overlay.ClientContainer(0, 40001), 11111, 1000)
	if err := pp.InstallEcho(0); err != nil {
		t.Fatal(err)
	}
	pp.Start(client, 0)
	eng.At(10*sim.Millisecond, pp.Stop)
	if err := eng.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if pp.Sent > 12 {
		t.Errorf("Sent = %d after Stop at 10ms", pp.Sent)
	}
}

func TestPingPongPoisson(t *testing.T) {
	eng, h, client := newRig(t, prio.ModeVanilla)
	ctr := h.AddContainer("srv")
	pp := NewPingPong(eng, h, ctr, overlay.ClientContainer(0, 40001), 11111, 2000)
	pp.Poisson = true
	if err := pp.InstallEcho(0); err != nil {
		t.Fatal(err)
	}
	pp.Start(client, 0)
	if err := eng.Run(500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	rate := float64(pp.Sent) / 0.5
	if math.Abs(rate-2000) > 300 {
		t.Errorf("poisson rate = %.0f, want ~2000", rate)
	}
}

func TestUDPFloodRateAndDelivery(t *testing.T) {
	eng, h, _ := newRig(t, prio.ModeVanilla)
	ctr := h.AddContainer("bg")
	fl := NewUDPFlood(eng, h, ctr, overlay.ClientContainer(1, 41000), 5001, 100_000)
	if err := fl.InstallSink(500 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	fl.Start(0)
	const horizon = 200 * sim.Millisecond
	if err := eng.Run(horizon); err != nil {
		t.Fatal(err)
	}
	sentRate := float64(fl.Sent) / horizon.Seconds()
	if math.Abs(sentRate-100_000) > 10_000 {
		t.Errorf("sent rate = %.0f pps, want ~100k", sentRate)
	}
	// 100 kpps is well under capacity: nearly everything is delivered.
	if got := fl.Delivered.Count(); got < fl.Sent*95/100 {
		t.Errorf("delivered %d of %d sent", got, fl.Sent)
	}
}

func TestUDPFloodConsumesProcessingCPU(t *testing.T) {
	eng, h, _ := newRig(t, prio.ModeVanilla)
	ctr := h.AddContainer("bg")
	fl := NewUDPFlood(eng, h, ctr, overlay.ClientContainer(1, 41000), 5001, 300_000)
	if err := fl.InstallSink(500 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	h.ProcCore.ResetWindow(0)
	fl.Start(0)
	if err := eng.Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	u := h.ProcCore.Utilization(eng.Now())
	// The paper reports 60–70% of the processing core at ~300 kpps.
	if u < 0.55 || u > 0.8 {
		t.Errorf("processing-core utilization = %.2f, want ~0.6–0.7", u)
	}
}

func TestTCPStreamSegmentsMessages(t *testing.T) {
	eng, h, _ := newRig(t, prio.ModeVanilla)
	ctr := h.AddContainer("bg")
	st := NewTCPStream(eng, h, ctr, overlay.ClientContainer(1, 42000), 5201, 100)
	if err := st.InstallSink(500 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	st.Start(0)
	if err := eng.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	segsPerMsg := (st.MsgSize + st.MSS - 1) / st.MSS
	if segsPerMsg != 45 {
		t.Errorf("segments per 64KB message = %d, want 45 at MSS %d", segsPerMsg, st.MSS)
	}
	wantPkts := uint64(10) * uint64(segsPerMsg) // ~10 messages in 100ms
	if st.SentPkts < wantPkts*8/10 || st.SentPkts > wantPkts*12/10 {
		t.Errorf("SentPkts = %d, want ~%d", st.SentPkts, wantPkts)
	}
	// GRO off by default in this rig config; bytes must still be conserved
	// through the pipeline.
	if st.Delivered.Bytes() == 0 {
		t.Error("no TCP payload delivered")
	}
}

func TestTCPStreamWithGROReducesSKBs(t *testing.T) {
	run := func(gro bool) uint64 {
		eng := sim.NewEngine(3)
		h := overlay.NewHost(eng, overlay.Config{
			Mode: prio.ModeVanilla, CStates: cpu.C1, AppCStates: cpu.C1,
			NIC: nicConfig(gro),
		})
		NewClient(h)
		ctr := h.AddContainer("bg")
		st := NewTCPStream(eng, h, ctr, overlay.ClientContainer(1, 42000), 5201, 200)
		if err := st.InstallSink(500 * sim.Nanosecond); err != nil {
			t.Fatal(err)
		}
		st.Start(0)
		if err := eng.Run(100 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return st.Delivered.Count()
	}
	plain := run(false)
	gro := run(true)
	if gro*4 > plain {
		t.Errorf("GRO delivered %d SKBs vs %d without; want >=4x reduction", gro, plain)
	}
}

func TestClientUnroutedCounting(t *testing.T) {
	eng, h, client := newRig(t, prio.ModeVanilla)
	// A host app replies to a port nobody registered.
	h.SendHostUDP(0, 12345, 80, []byte("hi"))
	if err := eng.Run(sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if client.Unrouted != 1 {
		t.Errorf("Unrouted = %d, want 1", client.Unrouted)
	}
}
