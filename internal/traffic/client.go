// Package traffic implements the workload side of the experiments: the
// client machine's generators (sockperf analogues) and latency recorders.
//
// The client machine is modelled as constants rather than a second packet
// simulation: the paper's client is never the bottleneck, so its TX/RX
// stacks contribute fixed terms to the measured round-trip (sockperf
// reports RTT/2, so an un-contended client-side stack dilutes but never
// reorders comparative results — the same dilution exists in the paper's
// numbers).
package traffic

import (
	"prism/internal/overlay"
	"prism/internal/pkt"
	"prism/internal/sim"
)

// Client-side stack constants, estimated for the paper's testbed: a
// containerized sockperf on an idle machine.
const (
	// DefaultClientTx covers sendto(2) plus the client's overlay egress.
	DefaultClientTx = 8 * sim.Microsecond
	// DefaultClientRx covers the client's overlay ingress (NIC→veth→app)
	// for the reply, on an idle machine.
	DefaultClientRx = 22 * sim.Microsecond
)

// Client demuxes frames the server transmits back over the wire, routing
// them to per-port handlers (one per generator). Register handlers before
// attaching traffic.
type Client struct {
	handlers map[uint16]func(now sim.Time, payload []byte, flow pkt.FlowKey)
	// Unrouted counts reply frames without a registered handler.
	Unrouted uint64
}

// NewClient builds the client machine and attaches it to the host's wire.
func NewClient(h *overlay.Host) *Client {
	c := &Client{handlers: make(map[uint16]func(sim.Time, []byte, pkt.FlowKey))}
	h.AttachRemote(c.rx)
	return c
}

// Register installs the handler for replies whose inner destination port
// is port (i.e. the client-side source port of the flow).
func (c *Client) Register(port uint16, fn func(now sim.Time, payload []byte, flow pkt.FlowKey)) {
	c.handlers[port] = fn
}

// Deliver feeds a wire frame into the client stack at time now. The
// standard topology routes frames here automatically via AttachRemote;
// parallel split topologies (internal/par) call it from the
// server→client link's deliver hook so the client machine can run on its
// own shard.
func (c *Client) Deliver(now sim.Time, frame []byte) { c.rx(now, frame) }

func (c *Client) rx(now sim.Time, frame []byte) {
	inner := frame
	if pkt.IsVXLAN(frame) {
		_, in, err := pkt.Decapsulate(frame)
		if err != nil {
			c.Unrouted++
			return
		}
		inner = in
	}
	flow, err := pkt.ParseFlow(inner)
	if err != nil {
		c.Unrouted++
		return
	}
	h := c.handlers[flow.DstPort]
	if h == nil {
		c.Unrouted++
		return
	}
	payload, err := pkt.TransportPayload(inner)
	if err != nil {
		c.Unrouted++
		return
	}
	h(now, payload, flow)
}
