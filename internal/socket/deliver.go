package socket

import (
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/sim"
)

// DeliverToTable finishes protocol processing for a frame addressed to a
// local socket table and produces the stage result. It is the tail of both
// the host path (from the NIC stage) and the container path (from the veth
// stage): transport demux and payload validation happen here, at handler
// time — so drops are attributed to the stage — and the socket itself is
// the result's Sink, consuming the SKB at its completion time without a
// per-packet closure.
func DeliverToTable(tbl *Table, cost sim.Time, skb *pkt.SKB) netdev.Result {
	if tbl == nil {
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: cost}
	}
	sock := tbl.Lookup(skb.Flow.Proto, skb.Flow.DstPort)
	if sock == nil {
		// No listener: ICMP port-unreachable territory; count as a drop.
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: cost}
	}
	payload, err := pkt.TransportPayload(skb.Data)
	if err != nil {
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: cost}
	}
	skb.Payload = payload
	return netdev.Result{Verdict: netdev.VerdictDeliver, Cost: cost, Sink: sock}
}
