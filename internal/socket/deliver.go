package socket

import (
	"prism/internal/netdev"
	"prism/internal/obs"
	"prism/internal/pkt"
	"prism/internal/sim"
)

// DeliverToTable finishes protocol processing for a frame addressed to a
// local socket table and produces the stage result. It is the tail of both
// the host path (from the NIC stage) and the container path (from the veth
// stage): transport demux, payload extraction, and the deferred copy into
// the socket buffer at the packet's completion time.
func DeliverToTable(tbl *Table, cost sim.Time, skb *pkt.SKB) netdev.Result {
	if tbl == nil {
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: cost}
	}
	sock := tbl.Lookup(skb.Flow.Proto, skb.Flow.DstPort)
	if sock == nil {
		// No listener: ICMP port-unreachable territory; count as a drop.
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: cost}
	}
	payload, err := pkt.TransportPayload(skb.Data)
	if err != nil {
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: cost}
	}
	msg := Message{
		Payload:      payload,
		From:         skb.Flow,
		Arrived:      skb.Arrived,
		HighPriority: skb.HighPriority,
	}
	// Capture the packet identity now: the SKB is the softirq's and may be
	// reused by the time the deferred copy runs.
	id, prio := skb.ID, skb.Priority
	return netdev.Result{
		Verdict: netdev.VerdictDeliver,
		Cost:    cost,
		Deliver: func(at sim.Time) {
			msg.Delivered = at
			ok := sock.Deliver(at, msg)
			if tbl.Obs == nil {
				return
			}
			if ok {
				tbl.Obs.Deliver(at, tbl.Name, id, prio, msg.Arrived)
			} else {
				tbl.Obs.Drop(at, tbl.Name, obs.StageSocket, id, prio)
			}
		},
	}
}
