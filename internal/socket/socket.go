// Package socket models the kernel/user boundary: per-network-namespace
// socket tables, bounded receive buffers, and the handoff from softirq
// delivery to an application thread.
package socket

import (
	"fmt"

	"prism/internal/obs"
	"prism/internal/pkt"
	"prism/internal/sched"
	"prism/internal/sim"
)

// Message is one datagram (or request chunk) as seen by the application.
type Message struct {
	Payload []byte
	From    pkt.FlowKey // the flow key of the packet that carried it
	// Arrived is when the frame hit the NIC ring; Delivered is when the
	// softirq copied it into the socket buffer.
	Arrived   sim.Time
	Delivered sim.Time
	// HighPriority echoes the SKB's PRISM classification, for assertions.
	HighPriority bool
}

// App consumes messages from a socket. ProcessingCost is charged on the
// application thread per message before OnMessage runs.
type App interface {
	// ProcessingCost returns the CPU the app spends on this message.
	ProcessingCost(m Message) sim.Time
	// OnMessage runs at processing completion on the app thread.
	OnMessage(done sim.Time, m Message)
}

// Socket is a bound endpoint with a bounded receive buffer drained by an
// application thread.
type Socket struct {
	Proto uint16 // pkt.ProtoUDP or pkt.ProtoTCP (uint16 to match bind keys)
	Port  uint16

	Thread *sched.Thread
	app    App
	tbl    *Table // owning table, for delivery observability

	// RecvCap bounds the receive buffer in messages; beyond it packets are
	// dropped (rcvbuf overflow) — visible in /proc/net/udp as drops.
	RecvCap int

	// pending is the receive buffer: a head-indexed FIFO of messages
	// waiting for the app thread, each with the pooled frame backing its
	// payload (released after OnMessage returns). The backing array is
	// reused across messages, so a steady-state socket never allocates.
	pending []pendingMsg
	head    int

	queued  int
	Drops   uint64
	Receivd uint64
}

type pendingMsg struct {
	m Message
	f *pkt.Frame
}

// Deliver hands a message from softirq context to the socket: it charges
// nothing on the processing core (the copy cost is part of the stage cost)
// and schedules the app thread. It reports false on rcvbuf overflow.
func (s *Socket) Deliver(now sim.Time, m Message) bool { return s.push(now, m, nil) }

// DeliverSKB implements netdev.Sink: the softirq hands the packet over at
// its completion time, transferring SKB ownership. The frame buffer backs
// the message payload until OnMessage returns; the SKB itself is freed
// here.
func (s *Socket) DeliverSKB(at sim.Time, skb *pkt.SKB) {
	payload := skb.Payload
	if payload == nil {
		var err error
		payload, err = pkt.TransportPayload(skb.Data)
		if err != nil {
			// The handler validated the frame before returning VerdictDeliver;
			// failing now means the bytes changed in flight (use-after-put).
			panic("socket: payload vanished between handler and delivery: " + err.Error())
		}
	}
	m := Message{
		Payload:      payload,
		From:         skb.Flow,
		Arrived:      skb.Arrived,
		Delivered:    at,
		HighPriority: skb.HighPriority,
	}
	id, prio := skb.ID, skb.Priority
	f := skb.TakeFrame()
	skb.Free()
	ok := s.push(at, m, f)
	if s.tbl == nil || s.tbl.Obs == nil {
		return
	}
	if ok {
		s.tbl.Obs.Deliver(at, s.tbl.Name, id, prio, m.Arrived)
	} else {
		s.tbl.Obs.Drop(at, s.tbl.Name, obs.StageSocket, id, prio)
	}
}

func (s *Socket) push(now sim.Time, m Message, f *pkt.Frame) bool {
	if s.RecvCap > 0 && s.queued >= s.RecvCap {
		s.Drops++
		if f != nil {
			f.Release()
		}
		return false
	}
	s.queued++
	s.Receivd++
	if s.head > 0 && s.head == len(s.pending) {
		// Drained: rewind so append reuses the backing array.
		s.pending = s.pending[:0]
		s.head = 0
	}
	s.pending = append(s.pending, pendingMsg{m: m, f: f})
	s.Thread.SubmitTo(now, s.app.ProcessingCost(m), s)
	return true
}

// Run implements sched.Runner: the app-thread completion path. The thread
// executes work serially in submission order, so this run's message is the
// pending FIFO's head.
func (s *Socket) Run(done sim.Time) {
	p := s.pending[s.head]
	s.pending[s.head] = pendingMsg{}
	s.head++
	s.queued--
	s.app.OnMessage(done, p.m)
	if p.f != nil {
		p.f.Release()
	}
}

// Queued returns how many messages sit in the receive buffer awaiting the
// app thread.
func (s *Socket) Queued() int { return s.queued }

// HeldFrames returns how many pooled frame buffers the pending messages
// hold (released only after OnMessage returns). The invariant checker uses
// it: frames parked here are in-flight, not leaked.
func (s *Socket) HeldFrames() int {
	n := 0
	for i := s.head; i < len(s.pending); i++ {
		if s.pending[i].f != nil {
			n++
		}
	}
	return n
}

// Table is a per-namespace socket demux table (one per container and one
// for the host). A namespace binds a handful of ports, so the table is a
// small slice: the per-packet Lookup is a short linear scan over two-field
// compares, cheaper than hashing a composite key into a map.
type Table struct {
	Name  string
	socks []*Socket

	// Obs, when set, records socket deliveries (closing each packet's
	// lifecycle span stream) and rcvbuf-overflow drops.
	Obs *obs.Pipeline
}

// NewTable returns an empty socket table.
func NewTable(name string) *Table {
	return &Table{Name: name}
}

// Bind registers a socket for (proto, port). Binding a taken port fails,
// as bind(2) would.
func (t *Table) Bind(proto uint8, port uint16, thread *sched.Thread, app App, recvCap int) (*Socket, error) {
	if t.Lookup(proto, port) != nil {
		return nil, fmt.Errorf("socket: %s port %d/%d already bound", t.Name, proto, port)
	}
	s := &Socket{Proto: uint16(proto), Port: port, Thread: thread, app: app, tbl: t, RecvCap: recvCap}
	t.socks = append(t.socks, s)
	return s, nil
}

// Each calls fn for every bound socket, in bind order.
func (t *Table) Each(fn func(*Socket)) {
	for _, s := range t.socks {
		fn(s)
	}
}

// Lookup finds the socket bound to (proto, dstPort), or nil.
func (t *Table) Lookup(proto uint8, port uint16) *Socket {
	for _, s := range t.socks {
		if s.Port == port && s.Proto == uint16(proto) {
			return s
		}
	}
	return nil
}

// AppFunc is a convenience App built from two functions.
type AppFunc struct {
	Cost func(m Message) sim.Time
	Fn   func(done sim.Time, m Message)
}

// ProcessingCost implements App.
func (a AppFunc) ProcessingCost(m Message) sim.Time {
	if a.Cost == nil {
		return 0
	}
	return a.Cost(m)
}

// OnMessage implements App.
func (a AppFunc) OnMessage(done sim.Time, m Message) {
	if a.Fn != nil {
		a.Fn(done, m)
	}
}
