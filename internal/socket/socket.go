// Package socket models the kernel/user boundary: per-network-namespace
// socket tables, bounded receive buffers, and the handoff from softirq
// delivery to an application thread.
package socket

import (
	"fmt"

	"prism/internal/obs"
	"prism/internal/pkt"
	"prism/internal/sched"
	"prism/internal/sim"
)

// Message is one datagram (or request chunk) as seen by the application.
type Message struct {
	Payload []byte
	From    pkt.FlowKey // the flow key of the packet that carried it
	// Arrived is when the frame hit the NIC ring; Delivered is when the
	// softirq copied it into the socket buffer.
	Arrived   sim.Time
	Delivered sim.Time
	// HighPriority echoes the SKB's PRISM classification, for assertions.
	HighPriority bool
}

// App consumes messages from a socket. ProcessingCost is charged on the
// application thread per message before OnMessage runs.
type App interface {
	// ProcessingCost returns the CPU the app spends on this message.
	ProcessingCost(m Message) sim.Time
	// OnMessage runs at processing completion on the app thread.
	OnMessage(done sim.Time, m Message)
}

// Socket is a bound endpoint with a bounded receive buffer drained by an
// application thread.
type Socket struct {
	Proto uint16 // pkt.ProtoUDP or pkt.ProtoTCP (uint16 to match bind keys)
	Port  uint16

	Thread *sched.Thread
	app    App

	// RecvCap bounds the receive buffer in messages; beyond it packets are
	// dropped (rcvbuf overflow) — visible in /proc/net/udp as drops.
	RecvCap int

	queued  int
	Drops   uint64
	Receivd uint64
}

// Deliver hands a message from softirq context to the socket: it charges
// nothing on the processing core (the copy cost is part of the stage cost)
// and schedules the app thread. It reports false on rcvbuf overflow.
func (s *Socket) Deliver(now sim.Time, m Message) bool {
	if s.RecvCap > 0 && s.queued >= s.RecvCap {
		s.Drops++
		return false
	}
	s.queued++
	s.Receivd++
	cost := s.app.ProcessingCost(m)
	s.Thread.Submit(now, cost, func(done sim.Time) {
		s.queued--
		s.app.OnMessage(done, m)
	})
	return true
}

type bindKey struct {
	proto uint8
	port  uint16
}

// Table is a per-namespace socket demux table (one per container and one
// for the host).
type Table struct {
	Name  string
	socks map[bindKey]*Socket

	// Obs, when set, records socket deliveries (closing each packet's
	// lifecycle span stream) and rcvbuf-overflow drops.
	Obs *obs.Pipeline
}

// NewTable returns an empty socket table.
func NewTable(name string) *Table {
	return &Table{Name: name, socks: make(map[bindKey]*Socket)}
}

// Bind registers a socket for (proto, port). Binding a taken port fails,
// as bind(2) would.
func (t *Table) Bind(proto uint8, port uint16, thread *sched.Thread, app App, recvCap int) (*Socket, error) {
	k := bindKey{proto: proto, port: port}
	if _, taken := t.socks[k]; taken {
		return nil, fmt.Errorf("socket: %s port %d/%d already bound", t.Name, proto, port)
	}
	s := &Socket{Proto: uint16(proto), Port: port, Thread: thread, app: app, RecvCap: recvCap}
	t.socks[k] = s
	return s, nil
}

// Lookup finds the socket bound to (proto, dstPort), or nil.
func (t *Table) Lookup(proto uint8, port uint16) *Socket {
	return t.socks[bindKey{proto: proto, port: port}]
}

// AppFunc is a convenience App built from two functions.
type AppFunc struct {
	Cost func(m Message) sim.Time
	Fn   func(done sim.Time, m Message)
}

// ProcessingCost implements App.
func (a AppFunc) ProcessingCost(m Message) sim.Time {
	if a.Cost == nil {
		return 0
	}
	return a.Cost(m)
}

// OnMessage implements App.
func (a AppFunc) OnMessage(done sim.Time, m Message) {
	if a.Fn != nil {
		a.Fn(done, m)
	}
}
