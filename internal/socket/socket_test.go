package socket

import (
	"testing"

	"prism/internal/cpu"
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/sched"
	"prism/internal/sim"
)

func newThread(eng *sim.Engine) *sched.Thread {
	return sched.NewThread("app", eng, cpu.NewCore(1, nil), 1000)
}

func TestBindAndLookup(t *testing.T) {
	eng := sim.NewEngine(1)
	tbl := NewTable("ctr0")
	th := newThread(eng)
	s, err := tbl.Bind(pkt.ProtoUDP, 5000, th, AppFunc{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Lookup(pkt.ProtoUDP, 5000) != s {
		t.Error("Lookup missed bound socket")
	}
	if tbl.Lookup(pkt.ProtoTCP, 5000) != nil {
		t.Error("Lookup crossed protocols")
	}
	if tbl.Lookup(pkt.ProtoUDP, 5001) != nil {
		t.Error("Lookup crossed ports")
	}
	if _, err := tbl.Bind(pkt.ProtoUDP, 5000, th, AppFunc{}, 0); err == nil {
		t.Error("double bind succeeded")
	}
}

func TestDeliverRunsAppWithCost(t *testing.T) {
	eng := sim.NewEngine(1)
	tbl := NewTable("ctr0")
	th := newThread(eng)
	var got Message
	var doneAt sim.Time
	app := AppFunc{
		Cost: func(m Message) sim.Time { return 500 },
		Fn:   func(done sim.Time, m Message) { got, doneAt = m, done },
	}
	s, err := tbl.Bind(pkt.ProtoUDP, 7, th, app, 16)
	if err != nil {
		t.Fatal(err)
	}
	eng.At(100, func() {
		s.Deliver(100, Message{Payload: []byte("x"), Delivered: 100})
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// 100 + wakeup 1000 + cost 500.
	if doneAt != 1600 {
		t.Errorf("app done at %v, want 1600", doneAt)
	}
	if string(got.Payload) != "x" {
		t.Errorf("payload = %q", got.Payload)
	}
	if s.Receivd != 1 {
		t.Errorf("Receivd = %d", s.Receivd)
	}
}

func TestDeliverOverflowDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	tbl := NewTable("ctr0")
	th := newThread(eng)
	app := AppFunc{Cost: func(Message) sim.Time { return 1000 }}
	s, err := tbl.Bind(pkt.ProtoUDP, 7, th, app, 2)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	eng.At(0, func() {
		for i := 0; i < 5; i++ {
			if s.Deliver(0, Message{}) {
				accepted++
			}
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if accepted != 2 {
		t.Errorf("accepted %d, want 2 (rcvbuf cap)", accepted)
	}
	if s.Drops != 3 {
		t.Errorf("Drops = %d, want 3", s.Drops)
	}
}

func TestDeliverUnboundedWhenCapZero(t *testing.T) {
	eng := sim.NewEngine(1)
	tbl := NewTable("ctr0")
	th := newThread(eng)
	s, _ := tbl.Bind(pkt.ProtoUDP, 7, th, AppFunc{}, 0)
	eng.At(0, func() {
		for i := 0; i < 100; i++ {
			if !s.Deliver(0, Message{}) {
				t.Error("unbounded socket dropped")
			}
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func buildSKB(t *testing.T, dstPort uint16) *pkt.SKB {
	t.Helper()
	frame := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
		SrcIP: pkt.Addr(10, 0, 0, 1), DstIP: pkt.Addr(10, 0, 0, 2),
		SrcPort: 9999, DstPort: dstPort, Payload: []byte("payload"),
	})
	flow, err := pkt.ParseFlow(frame)
	if err != nil {
		t.Fatal(err)
	}
	return &pkt.SKB{Data: frame, Flow: flow, Arrived: 42}
}

func TestDeliverToTable(t *testing.T) {
	eng := sim.NewEngine(1)
	tbl := NewTable("host")
	th := newThread(eng)
	var got Message
	app := AppFunc{Fn: func(done sim.Time, m Message) { got = m }}
	if _, err := tbl.Bind(pkt.ProtoUDP, 5555, th, app, 0); err != nil {
		t.Fatal(err)
	}
	skb := buildSKB(t, 5555)
	res := DeliverToTable(tbl, 700, skb)
	if res.Verdict != netdev.VerdictDeliver || res.Cost != 700 {
		t.Fatalf("result = %+v", res)
	}
	if res.Sink == nil {
		t.Fatal("deliver result has no sink")
	}
	eng.At(1000, func() { res.Sink.DeliverSKB(1000, skb) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "payload" {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.Delivered != 1000 || got.Arrived != 42 {
		t.Errorf("timestamps = %v/%v", got.Arrived, got.Delivered)
	}
}

func TestDeliverToTableNoListener(t *testing.T) {
	res := DeliverToTable(NewTable("host"), 700, buildSKB(t, 1234))
	if res.Verdict != netdev.VerdictDrop {
		t.Errorf("verdict = %v, want drop", res.Verdict)
	}
	if res := DeliverToTable(nil, 700, buildSKB(t, 1)); res.Verdict != netdev.VerdictDrop {
		t.Errorf("nil table verdict = %v, want drop", res.Verdict)
	}
}

func TestDeliverToTableBadPayload(t *testing.T) {
	eng := sim.NewEngine(1)
	tbl := NewTable("host")
	th := newThread(eng)
	if _, err := tbl.Bind(pkt.ProtoUDP, 5555, th, AppFunc{}, 0); err != nil {
		t.Fatal(err)
	}
	skb := buildSKB(t, 5555)
	skb.Data = skb.Data[:20] // truncated frame
	// Flow key still cached; payload extraction must fail cleanly.
	if res := DeliverToTable(tbl, 700, skb); res.Verdict != netdev.VerdictDrop {
		t.Errorf("verdict = %v, want drop for truncated frame", res.Verdict)
	}
}
