// Package trace captures and renders NAPI poll-order traces — the
// simulator's equivalent of the eBPF tracing the paper used to produce
// Fig. 6's iteration tables.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"prism/internal/napi"
)

// Recorder accumulates poll observations. Install Hook as an engine's
// OnPoll callback.
type Recorder struct {
	// Limit stops recording after this many iterations (0 = unbounded).
	Limit int

	Observations []napi.PollObservation
}

// Hook is the OnPoll callback.
func (r *Recorder) Hook(o napi.PollObservation) {
	if r.Limit > 0 && len(r.Observations) >= r.Limit {
		return
	}
	r.Observations = append(r.Observations, o)
}

// Merge combines shard-local recorders into one, ordering observations by
// (Time, recorder index, Iteration). With one NAPI engine per shard
// (internal/par), each recorder arrives internally time-sorted, and the
// recorder index — pass recorders in shard ID order — breaks cross-shard
// timestamp ties the same way every run, so the merged trace is
// deterministic regardless of how many workers executed the shards.
func Merge(recs ...*Recorder) *Recorder {
	type keyed struct {
		obs  napi.PollObservation
		rec  int
		iter uint64
	}
	var all []keyed
	for ri, r := range recs {
		if r == nil {
			continue
		}
		for _, o := range r.Observations {
			all = append(all, keyed{obs: o, rec: ri, iter: o.Iteration})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].obs.Time != all[j].obs.Time {
			return all[i].obs.Time < all[j].obs.Time
		}
		if all[i].rec != all[j].rec {
			return all[i].rec < all[j].rec
		}
		return all[i].iter < all[j].iter
	})
	out := &Recorder{Observations: make([]napi.PollObservation, len(all))}
	for i, k := range all {
		out.Observations[i] = k.obs
	}
	return out
}

// DeviceOrder returns just the sequence of polled device names.
func (r *Recorder) DeviceOrder() []string {
	out := make([]string, len(r.Observations))
	for i, o := range r.Observations {
		out[i] = o.Device
	}
	return out
}

// Table renders the observations as the paper's Fig. 6 table, with the
// virtual time of each iteration alongside:
//
//	Iter.  Time(µs)  Device  Poll list
//	1      12.40     eth     [br eth]
func (r *Recorder) Table(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s %-9s %-8s %s\n", "Iter.", "Time(µs)", "Device", "Poll list")
	for i, o := range r.Observations {
		fmt.Fprintf(&b, "%-6d %-9.2f %-8s [%s]\n", i+1, o.Time.Micros(), o.Device, strings.Join(o.PollList, " "))
	}
	return b.String()
}

// Interleaved reports whether the trace shows cross-batch interleaving of
// a three-stage pipeline: some first-stage poll occurring between two
// polls of the final stage's predecessor chain — concretely, the pattern
// the paper highlights: the first veth poll happens only *after* a second
// eth poll.
func Interleaved(order []string, first, last string) bool {
	firstPolls := 0
	for _, d := range order {
		if d == first {
			firstPolls++
		}
		if d == last {
			return firstPolls >= 2
		}
	}
	return false
}

// Streamlined reports whether the order cycles strictly through the given
// stage sequence (allowing the cycle to terminate early at the end).
func Streamlined(order, stages []string) bool {
	if len(stages) == 0 {
		return false
	}
	for i, d := range order {
		if d != stages[i%len(stages)] {
			return false
		}
	}
	return len(order) > 0
}
