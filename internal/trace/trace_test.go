package trace

import (
	"strings"
	"testing"

	"prism/internal/napi"
	"prism/internal/sim"
)

func obs(dev string, list ...string) napi.PollObservation {
	return napi.PollObservation{Device: dev, PollList: list}
}

func TestRecorderAndTable(t *testing.T) {
	r := &Recorder{}
	r.Hook(obs("eth", "br", "eth"))
	r.Hook(obs("br", "eth", "veth"))
	tbl := r.Table("Vanilla")
	for _, want := range []string{"Vanilla", "Iter.", "eth", "[br eth]", "[eth veth]"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	order := r.DeviceOrder()
	if len(order) != 2 || order[0] != "eth" || order[1] != "br" {
		t.Errorf("order = %v", order)
	}
}

func TestRecorderLimit(t *testing.T) {
	r := &Recorder{Limit: 2}
	for i := 0; i < 5; i++ {
		r.Hook(obs("eth"))
	}
	if len(r.Observations) != 2 {
		t.Errorf("recorded %d, want 2", len(r.Observations))
	}
}

func TestInterleaved(t *testing.T) {
	tests := []struct {
		name  string
		order []string
		want  bool
	}{
		{"fig6a vanilla", []string{"eth", "br", "eth", "veth", "br", "eth"}, true},
		{"fig6b prism", []string{"eth", "br", "veth", "eth", "br", "veth"}, false},
		{"no veth at all", []string{"eth", "br", "eth", "br"}, false},
		{"empty", nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Interleaved(tt.order, "eth", "veth"); got != tt.want {
				t.Errorf("Interleaved = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStreamlined(t *testing.T) {
	stages := []string{"eth", "br", "veth"}
	if !Streamlined([]string{"eth", "br", "veth", "eth", "br"}, stages) {
		t.Error("strict cycle not recognized")
	}
	if Streamlined([]string{"eth", "br", "eth"}, stages) {
		t.Error("interleaved order recognized as streamlined")
	}
	if Streamlined(nil, stages) {
		t.Error("empty order recognized")
	}
	if Streamlined([]string{"eth"}, nil) {
		t.Error("empty stages recognized")
	}
}

func timedObs(at int64, iter uint64, dev string) napi.PollObservation {
	return napi.PollObservation{Time: sim.Time(at), Iteration: iter, Device: dev}
}

func TestMergeOrdersByTimeShardIteration(t *testing.T) {
	// Two shard-local recorders with interleaved and tying timestamps.
	a := &Recorder{Observations: []napi.PollObservation{
		timedObs(10, 1, "a1"), timedObs(30, 2, "a2"), timedObs(30, 3, "a3"),
	}}
	b := &Recorder{Observations: []napi.PollObservation{
		timedObs(5, 1, "b1"), timedObs(30, 2, "b2"),
	}}
	m := Merge(a, b)
	got := m.DeviceOrder()
	// Ties at t=30 resolve by recorder index (a before b), then iteration.
	want := []string{"b1", "a1", "a2", "a3", "b2"}
	if len(got) != len(want) {
		t.Fatalf("merged order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged order = %v, want %v", got, want)
		}
	}
	// Argument order is part of the key: swapping shards must swap ties.
	swapped := Merge(b, a).DeviceOrder()
	if swapped[2] != "b2" {
		t.Errorf("swapped merge order = %v, want b2 before a2/a3 at the tie", swapped)
	}
}

func TestMergeWithLimitedRecorders(t *testing.T) {
	// Limits apply at record time, per shard: Merge combines whatever each
	// recorder kept, and the merged recorder itself is unbounded.
	a := &Recorder{Limit: 2}
	for i, at := range []int64{10, 20, 30, 40} {
		a.Hook(timedObs(at, uint64(i+1), "a"))
	}
	b := &Recorder{Limit: 1}
	for i, at := range []int64{5, 15, 25} {
		b.Hook(timedObs(at, uint64(i+1), "b"))
	}
	m := Merge(a, b)
	got := m.DeviceOrder()
	want := []string{"b", "a", "a"} // t=5, 10, 20 — the kept prefixes
	if len(got) != len(want) {
		t.Fatalf("merged order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged order = %v, want %v", got, want)
		}
	}
	if m.Limit != 0 {
		t.Errorf("merged recorder inherited Limit %d, want unbounded", m.Limit)
	}
	m.Hook(timedObs(50, 9, "c"))
	if len(m.Observations) != 4 {
		t.Errorf("merged recorder did not accept further observations: %d", len(m.Observations))
	}
}

func TestMergeNilAndEmpty(t *testing.T) {
	if got := Merge(nil, &Recorder{}); len(got.Observations) != 0 {
		t.Errorf("merge of empties has %d observations", len(got.Observations))
	}
}
