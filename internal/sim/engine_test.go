package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockUnits(t *testing.T) {
	tests := []struct {
		name string
		t    Time
		us   float64
	}{
		{"zero", 0, 0},
		{"one microsecond", Microsecond, 1},
		{"half microsecond", 500 * Nanosecond, 0.5},
		{"one second", Second, 1e6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.t.Micros(); got != tt.us {
				t.Errorf("Micros() = %v, want %v", got, tt.us)
			}
		})
	}
}

func TestDurationRoundTrip(t *testing.T) {
	d := 1500 * time.Microsecond
	if got := Duration(d).Std(); got != d {
		t.Errorf("round trip = %v, want %v", got, d)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{42 * Microsecond, "42.0µs"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.000s"},
		{30 * Second, "30.000s"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.t), got, tt.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: got %d", i, v)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v, want [10 15]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.At(10, func() { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	e.At(10, func() { ran = append(ran, 10) })
	e.At(50, func() { ran = append(ran, 50) })
	e.At(100, func() { ran = append(ran, 100) })
	if err := e.Run(50); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran = %v, want exactly the events at 10 and 50", ran)
	}
	if e.Now() != 50 {
		t.Errorf("Now() = %v, want 50", e.Now())
	}
	// The event at 100 must still be pending.
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
}

func TestEngineRunAdvancesToHorizonWhenIdle(t *testing.T) {
	e := NewEngine(1)
	if err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 1000 {
		t.Errorf("Now() = %v, want 1000", e.Now())
	}
}

func TestEngineRunUntilPausesBeforeHorizon(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	e.At(10, func() { ran = append(ran, 10) })
	e.At(50, func() { ran = append(ran, 50) })
	e.At(100, func() { ran = append(ran, 100) })
	if err := e.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	// Strictly-before semantics: 10 fires, 50 and 100 stay pending.
	if len(ran) != 1 || ran[0] != 10 {
		t.Fatalf("ran = %v, want [10]", ran)
	}
	if e.Now() != 10 {
		t.Errorf("Now() = %v, want 10 (clock not forced to horizon)", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	// The pause point accepts injection at any time >= the horizon...
	e.At(50, func() { ran = append(ran, 51) }) // FIFO after the original 50
	// ...and resuming picks everything up in order.
	if err := e.RunUntil(101); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 50, 51, 100}
	if len(ran) != len(want) {
		t.Fatalf("ran = %v, want %v", ran, want)
	}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("ran = %v, want %v", ran, want)
		}
	}
}

func TestEngineRunUntilEmptyAndHalt(t *testing.T) {
	e := NewEngine(1)
	if err := e.RunUntil(1000); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 {
		t.Errorf("Now() = %v, want 0 on empty queue", e.Now())
	}
	e.At(5, func() { e.Halt() })
	e.At(6, func() { t.Error("event after halt ran") })
	if err := e.RunUntil(10); err != ErrHalted {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
}

func TestEngineNextAt(t *testing.T) {
	e := NewEngine(1)
	if _, ok := e.NextAt(); ok {
		t.Error("NextAt() ok on empty queue")
	}
	ev := e.At(30, func() {})
	e.At(70, func() {})
	if at, ok := e.NextAt(); !ok || at != 30 {
		t.Errorf("NextAt() = %v,%v, want 30,true", at, ok)
	}
	// Cancelled heads are skipped.
	e.Cancel(ev)
	if at, ok := e.NextAt(); !ok || at != 70 {
		t.Errorf("NextAt() after cancel = %v,%v, want 70,true", at, ok)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(1, func() {
		count++
		e.Halt()
	})
	e.At(2, func() { count++ })
	if err := e.RunUntilIdle(); err != ErrHalted {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Error("Step() on empty queue = true")
	}
}

// Property: for any set of scheduled times, dispatch order is sorted and
// stable (FIFO among equals).
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine(42)
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			at := Time(d)
			i := i
			e.At(at, func() { got = append(got, rec{at, i}) })
		}
		if err := e.RunUntilIdle(); err != nil {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return len(got) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(7).Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values, want 7", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpDurationMean(t *testing.T) {
	r := NewRNG(11)
	const mean = 1000 * Nanosecond
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		d := r.ExpDuration(mean)
		if d < 0 {
			t.Fatalf("negative duration %v", d)
		}
		sum += float64(d)
	}
	got := sum / n
	if got < 950 || got > 1050 {
		t.Errorf("empirical mean = %v, want ~1000", got)
	}
}

func TestRNGJitter(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		j := r.Jitter(100)
		if j < -100 || j > 100 {
			t.Fatalf("Jitter(100) = %v out of range", j)
		}
	}
	if r.Jitter(0) != 0 {
		t.Error("Jitter(0) != 0")
	}
}

func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}
