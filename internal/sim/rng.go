package sim

import "math"

// RNG is a small, fast, deterministic random source (xoshiro256**). The
// standard library's math/rand would also work, but a self-contained
// generator guarantees stream stability across Go releases, which keeps
// recorded experiment outputs reproducible.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from a single word via SplitMix64, as
// recommended by the xoshiro authors. A zero seed is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, used for Poisson arrival processes.
func (r *RNG) ExpDuration(mean Time) Time {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := -math.Log(u) * float64(mean)
	if d > math.MaxInt64/2 {
		d = math.MaxInt64 / 2
	}
	return Time(d)
}

// Jitter returns a uniform duration in [-spread, +spread].
func (r *RNG) Jitter(spread Time) Time {
	if spread <= 0 {
		return 0
	}
	return Time(r.Uint64()%uint64(2*spread+1)) - spread
}
