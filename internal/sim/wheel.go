package sim

import (
	"fmt"
	"math/bits"
)

// Hierarchical timing wheel — the engine's event queue.
//
// # Layout
//
// A wide near wheel plus five coarse wheels. An event at absolute time At
// is filed by its XOR distance from the wheel reference `cur`: within
// 8192 ns of the reference's block it lands on the near wheel — 8192
// one-nanosecond slots indexed by At's low 13 bits — and beyond that on
// coarse level l in {0..4}, 256 slots of width 2^(13+8l) ns indexed by
// (At >> (13+8l)) & 255, where l is selected by the highest bit in which
// At differs from the reference. Events differing above bit 52 — more
// than ~104 virtual days out — go to an unsorted overflow FIFO. The near
// wheel is sized so the datapath's common case (delays of a few hundred
// nanoseconds to a few microseconds: stage service times, wire and IRQ
// delays) schedules and dispatches without ever touching a coarse level.
//
// # Ordering
//
// Each slot is an intrusive singly-linked FIFO of *Event reusing the
// engine's free-list records. Every insertion appends, and seq increases
// monotonically per schedule, so a slot list is always seq-ascending.
// Near slots are one nanosecond wide: within cur's 8192 ns block a slot
// holds exactly one timestamp, so its FIFO is exactly (At, seq) order and
// the head of the lowest occupied near slot is the global minimum.
//
// # Cascade rule
//
// When the near wheel drains, the earliest occupied slot of the lowest
// occupied coarse level is removed whole, the reference advances to that
// slot's start time, and the slot's list is re-filed in order. Every
// event lands strictly finer (its time differs from the slot start only
// below the slot's width), re-appending preserves the seq-ascending
// property, and the reference move is safe: the slot start shares all
// bits above the slot's level with the old reference, so no other pending
// event changes level or slot. Repeating the rule funnels the earliest
// slot down to the near wheel in at most coarseLevels steps. When all
// wheels are empty the overflow list cascades the same way: the reference
// jumps to the earliest overflow timestamp and every event within wheel
// span is re-filed, in list order (seq-ascending, so FIFO survives).
//
// The reference only moves forward, inside takeNext, and only to the
// start of a slot that precedes every pending event — never past the
// clock's next dispatch. Scheduling requires At >= now >= cur, so a fresh
// event can never land behind the reference; when the queue drains
// completely, takeNext re-anchors the reference at the clock for the same
// reason.
//
// Cancellation is O(1) and lazy: the event is flagged dead and its record
// is recycled when a scan or cascade next walks its slot.

const (
	// Near wheel: 8192 slots of 1 ns.
	nearBits  = 13
	nearSlots = 1 << nearBits
	nearMask  = nearSlots - 1
	nearWords = nearSlots / 64
	nearSums  = nearWords / 64 // two summary words cover 128 bitmap words

	// Coarse wheels: 256 slots each, widths 2^13 … 2^45 ns.
	coarseBits   = 8
	coarseSlots  = 1 << coarseBits
	coarseMask   = coarseSlots - 1
	coarseWords  = coarseSlots / 64
	coarseLevels = 5

	// wheelSpan is the number of low bits of (At ^ cur) the wheels cover;
	// events differing from the reference at or above this bit overflow.
	wheelSpan = nearBits + coarseBits*coarseLevels // 53
)

// nearWheel is the 1 ns-resolution wheel with a two-tier occupancy bitmap:
// one bit per slot, one summary bit per 64-slot word, so the earliest
// occupied slot is found with three TrailingZeros.
type nearWheel struct {
	head   [nearSlots]*Event
	tail   [nearSlots]*Event
	occ    [nearWords]uint64
	occSum [nearSums]uint64
}

// firstSlot returns the lowest occupied slot index. The caller guarantees
// the wheel is nonempty (levelMask bit 0 set). No wrap handling is
// needed: every occupied slot is at or past the reference's index (see
// the cascade rule above).
func (lv *nearWheel) firstSlot() int {
	s := 0
	if lv.occSum[0] == 0 {
		s = 1
	}
	w := s<<6 | bits.TrailingZeros64(lv.occSum[s])
	return w<<6 | bits.TrailingZeros64(lv.occ[w])
}

// coarseWheel is one 256-slot wheel with a single summary word over its
// four bitmap words.
type coarseWheel struct {
	head   [coarseSlots]*Event
	tail   [coarseSlots]*Event
	occ    [coarseWords]uint64
	occSum uint32 // bit w set iff occ[w] != 0
}

// firstSlot returns the lowest occupied slot index; the caller guarantees
// the level is nonempty.
func (lv *coarseWheel) firstSlot() int {
	w := bits.TrailingZeros32(lv.occSum)
	return w<<6 | bits.TrailingZeros64(lv.occ[w])
}

// pushNear appends ev to near slot i.
func (e *Engine) pushNear(i int, ev *Event) {
	lv := &e.near
	ev.next = nil
	if lv.tail[i] == nil {
		lv.head[i] = ev
		lv.occ[i>>6] |= 1 << (uint(i) & 63)
		lv.occSum[i>>12] |= 1 << (uint(i>>6) & 63)
		e.levelMask |= 1
	} else {
		lv.tail[i].next = ev
	}
	lv.tail[i] = ev
}

// clearNear marks near slot i empty, dropping the levelMask bit when the
// whole wheel emptied.
func (e *Engine) clearNear(i int) {
	lv := &e.near
	w := i >> 6
	lv.occ[w] &^= 1 << (uint(i) & 63)
	if lv.occ[w] == 0 {
		lv.occSum[w>>6] &^= 1 << (uint(w) & 63)
		if lv.occSum[0]|lv.occSum[1] == 0 {
			e.levelMask &^= 1
		}
	}
}

// pushCoarseAt appends ev to slot i of coarse level l.
func (e *Engine) pushCoarseAt(l, i int, ev *Event) {
	lv := &e.coarse[l]
	ev.next = nil
	if lv.tail[i] == nil {
		lv.head[i] = ev
		lv.occ[i>>6] |= 1 << (uint(i) & 63)
		lv.occSum |= 1 << uint(i>>6)
		e.levelMask |= 2 << uint(l)
	} else {
		lv.tail[i].next = ev
	}
	lv.tail[i] = ev
}

// clearCoarse marks slot i of coarse level l empty, dropping the level's
// mask bit when it emptied.
func (e *Engine) clearCoarse(l, i int) {
	lv := &e.coarse[l]
	w := i >> 6
	lv.occ[w] &^= 1 << (uint(i) & 63)
	if lv.occ[w] == 0 {
		lv.occSum &^= 1 << uint(w)
		if lv.occSum == 0 {
			e.levelMask &^= 2 << uint(l)
		}
	}
}

// coarseLevelOf maps the XOR distance d (>= nearSlots, below the overflow
// span) to the coarse level covering it.
func coarseLevelOf(d uint64) int {
	return (bits.Len64(d) - nearBits - 1) / coarseBits
}

// push files ev according to At's distance from the reference. Appending
// keeps slot lists seq-ascending.
func (e *Engine) push(ev *Event) {
	d := uint64(ev.At ^ e.cur)
	if d < nearSlots {
		e.pushNear(int(uint64(ev.At)&nearMask), ev)
		return
	}
	if d>>wheelSpan != 0 {
		e.pushOverflow(ev)
		return
	}
	l := coarseLevelOf(d)
	i := int((uint64(ev.At) >> uint(nearBits+l*coarseBits)) & coarseMask)
	e.pushCoarseAt(l, i, ev)
}

// pushOverflow appends ev to the overflow FIFO.
func (e *Engine) pushOverflow(ev *Event) {
	ev.next = nil
	if e.ofTail == nil {
		e.ofHead = ev
	} else {
		e.ofTail.next = ev
	}
	e.ofTail = ev
}

// takeNext removes and returns the earliest live event, cascading coarse
// slots toward the near wheel as the search narrows. It returns nil only
// when nothing is pending, after re-anchoring the reference at the clock.
func (e *Engine) takeNext() *Event {
	for {
		if e.levelMask&1 != 0 {
			lv := &e.near
			i := lv.firstSlot()
			ev := lv.head[i]
			lv.head[i] = ev.next
			if ev.next == nil {
				lv.tail[i] = nil
				e.clearNear(i)
			}
			ev.next = nil
			if ev.dead {
				e.release(ev)
				continue
			}
			return ev
		}
		if e.cascade() {
			continue
		}
		// Nothing pending anywhere. Re-anchor at the clock so events
		// scheduled after an exhausted far-future cascade still land
		// at or ahead of the reference.
		e.cur = e.now
		return nil
	}
}

// cascade redistributes the earliest occupied coarse slot one step finer,
// advancing the wheel reference to the slot's start. It reports false
// when every wheel and the overflow list are empty.
func (e *Engine) cascade() bool {
	if e.levelMask == 0 {
		return e.cascadeOverflow()
	}
	l := bits.TrailingZeros32(e.levelMask >> 1)
	lv := &e.coarse[l]
	i := lv.firstSlot()
	head := lv.head[i]
	lv.head[i], lv.tail[i] = nil, nil
	e.clearCoarse(l, i)
	shift := uint(nearBits + l*coarseBits)
	blockMask := Time(1)<<(shift+coarseBits) - 1
	e.cur = e.cur&^blockMask | Time(i)<<shift
	for head != nil {
		ev := head
		head = ev.next
		if ev.dead {
			ev.next = nil
			e.release(ev)
			continue
		}
		e.push(ev)
	}
	return true
}

// cascadeOverflow jumps the reference to the earliest live overflow
// timestamp and re-files every overflow event, in order; events still
// beyond the wheel span re-enter the overflow list. Cancelled records are
// collected on the way. Reports false when no live event remains.
func (e *Engine) cascadeOverflow() bool {
	if e.ofHead == nil {
		return false
	}
	var head, tail *Event
	min := Time(-1)
	for ev := e.ofHead; ev != nil; {
		next := ev.next
		if ev.dead {
			ev.next = nil
			e.release(ev)
		} else {
			if min < 0 || ev.At < min {
				min = ev.At
			}
			ev.next = nil
			if tail == nil {
				head = ev
			} else {
				tail.next = ev
			}
			tail = ev
		}
		ev = next
	}
	e.ofHead, e.ofTail = nil, nil
	if head == nil {
		return false
	}
	e.cur = min
	for ev := head; ev != nil; {
		next := ev.next
		e.push(ev)
		ev = next
	}
	return true
}

// scanMin finds the earliest live event without advancing the wheel
// reference, so it is safe between dispatches (RunUntil peeks across
// barrier windows where new events may still arrive earlier than the
// current minimum). Cancelled records encountered on the way are unlinked
// and recycled.
func (e *Engine) scanMin() *Event {
	for {
		// Near wheel: the first occupied slot holds a single timestamp
		// in FIFO order, so the first live head is the global minimum.
		if e.levelMask&1 != 0 {
			lv := &e.near
			i := lv.firstSlot()
			ev := lv.head[i]
			if !ev.dead {
				return ev
			}
			lv.head[i] = ev.next
			if ev.next == nil {
				lv.tail[i] = nil
				e.clearNear(i)
			}
			ev.next = nil
			e.release(ev)
			continue
		}
		if e.levelMask == 0 {
			return e.overflowMin()
		}
		// Coarse levels: slots mix timestamps, so take the minimum of
		// the first occupied slot — disjoint ascending slot ranges and
		// the level hierarchy make it the global minimum. A slot that
		// held only cancelled events empties here; rescan.
		l := bits.TrailingZeros32(e.levelMask >> 1)
		lv := &e.coarse[l]
		if best := e.slotMin(l, lv, lv.firstSlot()); best != nil {
			return best
		}
	}
}

// slotMin unlinks cancelled events from slot i of coarse level l and
// returns the live event with the smallest (At, seq), or nil if the slot
// empties. The list is seq-ascending, so among equal timestamps the first
// found wins.
func (e *Engine) slotMin(l int, lv *coarseWheel, i int) *Event {
	var best, prev *Event
	for ev := lv.head[i]; ev != nil; {
		next := ev.next
		if ev.dead {
			if prev == nil {
				lv.head[i] = next
			} else {
				prev.next = next
			}
			if next == nil {
				lv.tail[i] = prev
			}
			ev.next = nil
			e.release(ev)
		} else {
			if best == nil || ev.At < best.At {
				best = ev
			}
			prev = ev
		}
		ev = next
	}
	if lv.head[i] == nil {
		e.clearCoarse(l, i)
		return nil
	}
	return best
}

// overflowMin returns the live overflow event with the smallest (At, seq),
// collecting cancelled records, or nil when none remain.
func (e *Engine) overflowMin() *Event {
	var best, prev *Event
	for ev := e.ofHead; ev != nil; {
		next := ev.next
		if ev.dead {
			if prev == nil {
				e.ofHead = next
			} else {
				prev.next = next
			}
			if next == nil {
				e.ofTail = prev
			}
			ev.next = nil
			e.release(ev)
		} else {
			if best == nil || ev.At < best.At {
				best = ev
			}
			prev = ev
		}
		ev = next
	}
	return best
}

// Batch is an insertion cursor for scheduling a run of CallAt events at
// nondecreasing timestamps with one wheel insert run: consecutive events
// sharing a timestamp append straight to the cached slot tail instead of
// re-deriving wheel and index. This is how the parallel runtime injects a
// barrier window's cross-shard messages — one cursor pass instead of N
// independent queue pushes.
//
// A cursor is only valid while the engine is between dispatches: any
// Step/Run in between may move the wheel reference and invalidate the
// cached slot. Obtaining a cursor is free; take a fresh one per run.
type Batch struct {
	e     *Engine
	tailp **Event
	last  Time
	ok    bool
}

// BeginBatch returns an insertion cursor for a nondecreasing run of
// CallAt schedules.
func (e *Engine) BeginBatch() Batch { return Batch{e: e} }

// CallAt schedules fn(t, a1, a2) at absolute time t, exactly like
// Engine.CallAt but through the batch cursor. Times must be nondecreasing
// across one cursor's calls; interleaving with the engine's own schedule
// calls is allowed and keeps global FIFO order (seq is shared).
func (b *Batch) CallAt(t Time, fn func(Time, any, any), a1, a2 any) *Event {
	e := b.e
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if b.ok && t < b.last {
		panic(fmt.Sprintf("sim: batch times must be nondecreasing (%v after %v)", t, b.last))
	}
	ev := e.alloc()
	ev.At, ev.fn2, ev.a1, ev.a2, ev.seq = t, fn, a1, a2, e.seq
	e.seq++
	e.npend++
	if e.nextEv != nil && t < e.nextEv.At {
		e.nextEv = ev
	}
	if b.ok && t == b.last {
		// Same timestamp, same slot: the cached tail is still the slot
		// tail because nothing dispatched since the last append.
		ev.next = nil
		(*b.tailp).next = ev
		*b.tailp = ev
		return ev
	}
	d := uint64(t ^ e.cur)
	switch {
	case d < nearSlots:
		i := int(uint64(t) & nearMask)
		e.pushNear(i, ev)
		b.tailp, b.last, b.ok = &e.near.tail[i], t, true
	case d>>wheelSpan != 0:
		e.pushOverflow(ev)
		b.ok = false
	default:
		l := coarseLevelOf(d)
		i := int((uint64(t) >> uint(nearBits+l*coarseBits)) & coarseMask)
		e.pushCoarseAt(l, i, ev)
		b.tailp, b.last, b.ok = &e.coarse[l].tail[i], t, true
	}
	return ev
}
