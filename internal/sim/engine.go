package sim

import (
	"errors"
	"fmt"
)

// Event is a unit of future work. Fn runs when the virtual clock reaches At.
// Fired and cancelled events are recycled through a per-engine free list, so
// a *Event handle is only valid until the event fires or its cancellation is
// collected — exactly the lifetime timer handles have in the kernel.
type Event struct {
	At   Time
	Fn   func()
	fn2  func(Time, any, any) // CallAt form: top-level fn + args, no closure
	a1   any
	a2   any
	seq  uint64 // tie-break: FIFO among equal timestamps
	next *Event // intrusive link in a wheel slot or the overflow list
	dead bool   // cancelled
}

// Cancelled reports whether the event was cancelled before it fired.
func (e *Event) Cancelled() bool { return e.dead }

// ErrHalted is returned by Run when Halt was called before the horizon.
var ErrHalted = errors.New("sim: halted")

// Engine is a single-threaded discrete-event scheduler. It is intentionally
// not safe for concurrent use: determinism requires a single logical thread
// of control, and all model code runs inside event callbacks.
//
// The event queue is a hierarchical timing wheel (see wheel.go), not a
// binary heap: schedule, cancel and dispatch are O(1) amortized, and the
// dispatch order is exactly (At, seq) — timestamp order with FIFO
// tie-breaking — the same total order the previous container/heap queue
// produced, so results are bit-identical across the two implementations.
type Engine struct {
	now Time
	// cur is the wheel reference point: every pending event is filed at
	// the level selected by the highest bit of (At ^ cur). It trails the
	// clock (cur <= now between dispatches) and advances only inside
	// takeNext, so scheduling — which requires At >= now — can never
	// land behind it.
	cur    Time
	near   nearWheel
	coarse [coarseLevels]coarseWheel
	// levelMask has bit 0 set iff the near wheel has any occupied slot
	// and bit l+1 set iff coarse level l does, so the dispatch scan finds
	// the lowest nonempty wheel with one bit op.
	levelMask uint32
	// overflow holds events beyond the wheels' span (At ^ cur covering
	// more than wheelSpan bits), as an unsorted FIFO list. It cascades
	// back into the wheels when every level drains (wheel.go).
	ofHead, ofTail *Event
	// nextEv caches the earliest pending event between dispatches; nil
	// means unknown. Maintained by peek/schedule/Cancel, cleared by Step.
	nextEv *Event
	npend  int      // live count of scheduled, uncancelled events
	free   []*Event // recycled event records
	seq    uint64
	halted bool
	rng    *RNG

	// Executed counts events dispatched since construction. Useful in tests
	// and for runaway detection.
	Executed uint64
}

// NewEngine returns an engine with its clock at zero and the given RNG seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Pending returns the number of scheduled, uncancelled events. The count is
// maintained live on schedule, cancel and dispatch, so invariant checkers
// may call it as often as they like without scanning the queue.
func (e *Engine) Pending() int { return e.npend }

// alloc pops a recycled event record or allocates a fresh one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.dead = false
		return ev
	}
	return &Event{}
}

// release returns a fired or collected-cancelled event to the free list.
// Callers must have dropped or rewritten every handle to it by now; ev.dead
// stays true so a straggler's Cancel before reuse remains a no-op.
func (e *Engine) release(ev *Event) {
	ev.Fn, ev.fn2, ev.a1, ev.a2 = nil, nil, nil, nil
	e.free = append(e.free, ev)
}

// schedule files a freshly armed event into the wheel and keeps the
// peek cache and pending count current.
func (e *Engine) schedule(ev *Event) {
	e.npend++
	// A strictly earlier arrival becomes the new minimum; an equal
	// timestamp keeps the cached event, whose seq is smaller.
	if e.nextEv != nil && ev.At < e.nextEv.At {
		e.nextEv = ev
	}
	e.push(ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it is always a model bug, and silently clamping it would hide
// causality violations.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.At, ev.Fn, ev.seq = t, fn, e.seq
	e.seq++
	e.schedule(ev)
	return ev
}

// CallAt schedules fn(at, a1, a2) at absolute virtual time t. It is the
// allocation-free form of At for the hot path: with fn a top-level function
// and pointer-shaped arguments, scheduling reuses a recycled event record
// and allocates nothing, where a capturing closure passed to At costs one
// allocation per call.
func (e *Engine) CallAt(t Time, fn func(Time, any, any), a1, a2 any) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.At, ev.fn2, ev.a1, ev.a2, ev.seq = t, fn, a1, a2, e.seq
	e.seq++
	e.schedule(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel marks ev so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op. The record is recycled when its wheel
// slot is next walked, so the caller must drop the handle after cancelling.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	ev.Fn, ev.fn2, ev.a1, ev.a2 = nil, nil, nil, nil
	e.npend--
	if e.nextEv == ev {
		e.nextEv = nil
	}
}

// Halt stops Run before the horizon. Pending events are left in the queue.
func (e *Engine) Halt() { e.halted = true }

// Step dispatches the single earliest event, advancing the clock to it.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	e.nextEv = nil
	ev := e.takeNext()
	if ev == nil {
		return false
	}
	e.now = ev.At
	// Tighten the wheel reference to the dispatch point. ev came from a
	// near-wheel slot, so cur and ev.At share every bit above the bottom
	// nearBits and no pending event changes level.
	e.cur = ev.At
	e.npend--
	fn, fn2, a1, a2 := ev.Fn, ev.fn2, ev.a1, ev.a2
	ev.Fn = nil
	ev.dead = true
	e.Executed++
	if fn2 != nil {
		fn2(e.now, a1, a2)
	} else {
		fn()
	}
	// Recycle only after the callback: it may hold ev's handle (a
	// timer re-arming itself) and must see it dead, not reused.
	e.release(ev)
	return true
}

// Run dispatches events until the clock would pass horizon, the queue
// drains, or Halt is called. The clock finishes at exactly horizon unless
// halted earlier. Events scheduled precisely at the horizon do fire.
func (e *Engine) Run(horizon Time) error {
	e.halted = false
	for !e.halted {
		next, ok := e.peek()
		if !ok || next.At > horizon {
			break
		}
		e.Step()
	}
	if e.halted {
		return ErrHalted
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// RunUntil dispatches every event scheduled strictly before t, then pauses.
// Unlike Run it does not advance the clock to t: the clock is left at the
// last dispatched event, so a caller may inject new events at any time >= t
// (via At) and resume with a later RunUntil or Run. This is the primitive
// the conservative shard scheduler (internal/par) builds its synchronization
// windows on: each shard burns events up to the window edge, cross-shard
// messages are injected at the barrier, and the next window resumes.
func (e *Engine) RunUntil(t Time) error {
	e.halted = false
	for !e.halted {
		next, ok := e.peek()
		if !ok || next.At >= t {
			break
		}
		e.Step()
	}
	if e.halted {
		return ErrHalted
	}
	return nil
}

// NextAt reports the timestamp of the earliest pending event. ok is false
// when the queue is empty.
func (e *Engine) NextAt() (Time, bool) {
	ev, ok := e.peek()
	if !ok {
		return 0, false
	}
	return ev.At, true
}

// RunUntilIdle dispatches events until the queue drains or Halt is called.
func (e *Engine) RunUntilIdle() error {
	e.halted = false
	for !e.halted && e.Step() {
	}
	if e.halted {
		return ErrHalted
	}
	return nil
}

// peek returns the earliest pending live event without dispatching it. The
// scan result is cached until the next dispatch, schedule of an earlier
// event, or cancellation of the cached minimum.
func (e *Engine) peek() (*Event, bool) {
	if e.nextEv == nil {
		e.nextEv = e.scanMin()
	}
	return e.nextEv, e.nextEv != nil
}
