package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Event is a unit of future work. Fn runs when the virtual clock reaches At.
// Fired and cancelled events are recycled through a per-engine free list, so
// a *Event handle is only valid until the event fires or its cancellation is
// collected — exactly the lifetime timer handles have in the kernel.
type Event struct {
	At   Time
	Fn   func()
	fn2  func(Time, any, any) // CallAt form: top-level fn + args, no closure
	a1   any
	a2   any
	seq  uint64 // tie-break: FIFO among equal timestamps
	idx  int    // heap index, -1 once popped or cancelled
	dead bool   // cancelled
}

// Cancelled reports whether the event was cancelled before it fired.
func (e *Event) Cancelled() bool { return e.dead }

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// ErrHalted is returned by Run when Halt was called before the horizon.
var ErrHalted = errors.New("sim: halted")

// Engine is a single-threaded discrete-event scheduler. It is intentionally
// not safe for concurrent use: determinism requires a single logical thread
// of control, and all model code runs inside event callbacks.
type Engine struct {
	now    Time
	queue  eventHeap
	free   []*Event // recycled event records
	seq    uint64
	halted bool
	rng    *RNG

	// Executed counts events dispatched since construction. Useful in tests
	// and for runaway detection.
	Executed uint64
}

// NewEngine returns an engine with its clock at zero and the given RNG seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// alloc pops a recycled event record or allocates a fresh one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.dead = false
		return ev
	}
	return &Event{}
}

// release returns a fired or collected-cancelled event to the free list.
// Callers must have dropped or rewritten every handle to it by now; ev.dead
// stays true so a straggler's Cancel before reuse remains a no-op.
func (e *Engine) release(ev *Event) {
	ev.Fn, ev.fn2, ev.a1, ev.a2 = nil, nil, nil, nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it is always a model bug, and silently clamping it would hide
// causality violations.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.At, ev.Fn, ev.seq = t, fn, e.seq
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// CallAt schedules fn(at, a1, a2) at absolute virtual time t. It is the
// allocation-free form of At for the hot path: with fn a top-level function
// and pointer-shaped arguments, scheduling reuses a recycled event record
// and allocates nothing, where a capturing closure passed to At costs one
// allocation per call.
func (e *Engine) CallAt(t Time, fn func(Time, any, any), a1, a2 any) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.At, ev.fn2, ev.a1, ev.a2, ev.seq = t, fn, a1, a2, e.seq
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel marks ev so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op. The record is recycled when the heap
// pops it, so the caller must drop the handle after cancelling.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	ev.Fn, ev.fn2, ev.a1, ev.a2 = nil, nil, nil, nil
}

// Halt stops Run before the horizon. Pending events are left in the queue.
func (e *Engine) Halt() { e.halted = true }

// Step dispatches the single earliest event, advancing the clock to it.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			e.release(ev)
			continue
		}
		e.now = ev.At
		fn, fn2, a1, a2 := ev.Fn, ev.fn2, ev.a1, ev.a2
		ev.Fn = nil
		ev.dead = true
		e.Executed++
		if fn2 != nil {
			fn2(e.now, a1, a2)
		} else {
			fn()
		}
		// Recycle only after the callback: it may hold ev's handle (a
		// timer re-arming itself) and must see it dead, not reused.
		e.release(ev)
		return true
	}
	return false
}

// Run dispatches events until the clock would pass horizon, the queue
// drains, or Halt is called. The clock finishes at exactly horizon unless
// halted earlier. Events scheduled precisely at the horizon do fire.
func (e *Engine) Run(horizon Time) error {
	e.halted = false
	for !e.halted {
		next, ok := e.peek()
		if !ok || next.At > horizon {
			break
		}
		e.Step()
	}
	if e.halted {
		return ErrHalted
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// RunUntil dispatches every event scheduled strictly before t, then pauses.
// Unlike Run it does not advance the clock to t: the clock is left at the
// last dispatched event, so a caller may inject new events at any time >= t
// (via At) and resume with a later RunUntil or Run. This is the primitive
// the conservative shard scheduler (internal/par) builds its synchronization
// windows on: each shard burns events up to the window edge, cross-shard
// messages are injected at the barrier, and the next window resumes.
func (e *Engine) RunUntil(t Time) error {
	e.halted = false
	for !e.halted {
		next, ok := e.peek()
		if !ok || next.At >= t {
			break
		}
		e.Step()
	}
	if e.halted {
		return ErrHalted
	}
	return nil
}

// NextAt reports the timestamp of the earliest pending event. ok is false
// when the queue is empty.
func (e *Engine) NextAt() (Time, bool) {
	ev, ok := e.peek()
	if !ok {
		return 0, false
	}
	return ev.At, true
}

// RunUntilIdle dispatches events until the queue drains or Halt is called.
func (e *Engine) RunUntilIdle() error {
	e.halted = false
	for !e.halted && e.Step() {
	}
	if e.halted {
		return ErrHalted
	}
	return nil
}

func (e *Engine) peek() (*Event, bool) {
	for len(e.queue) > 0 {
		if ev := e.queue[0]; !ev.dead {
			return ev, true
		}
		e.release(heap.Pop(&e.queue).(*Event))
	}
	return nil, false
}
