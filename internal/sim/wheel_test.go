package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
)

// ---------------------------------------------------------------------------
// Reference implementation: the engine contract on top of container/heap,
// exactly the queue the wheel replaced. The differential tests drive the
// reference and the real engine with the same randomized programs and demand
// identical dispatch order, Executed counts and Pending values.
// ---------------------------------------------------------------------------

type refEvent struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type refEngine struct {
	now      Time
	q        refHeap
	seq      uint64
	npend    int
	halted   bool
	executed uint64
}

func (e *refEngine) Now() Time    { return e.now }
func (e *refEngine) Pending() int { return e.npend }
func (e *refEngine) Halt()        { e.halted = true }

func (e *refEngine) At(t Time, fn func()) *refEvent {
	if t < e.now {
		panic(fmt.Sprintf("ref: scheduling at %v before now %v", t, e.now))
	}
	ev := &refEvent{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.npend++
	heap.Push(&e.q, ev)
	return ev
}

func (e *refEngine) Cancel(ev *refEvent) {
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	ev.fn = nil
	e.npend--
}

func (e *refEngine) peek() *refEvent {
	for len(e.q) > 0 {
		if e.q[0].dead {
			heap.Pop(&e.q)
			continue
		}
		return e.q[0]
	}
	return nil
}

func (e *refEngine) NextAt() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

func (e *refEngine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	heap.Pop(&e.q)
	e.now = ev.at
	e.npend--
	e.executed++
	ev.dead = true
	ev.fn()
	return true
}

func (e *refEngine) Run(horizon Time) error {
	e.halted = false
	for !e.halted {
		ev := e.peek()
		if ev == nil || ev.at > horizon {
			break
		}
		e.Step()
	}
	if e.halted {
		return ErrHalted
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

func (e *refEngine) RunUntil(t Time) error {
	e.halted = false
	for !e.halted {
		ev := e.peek()
		if ev == nil || ev.at >= t {
			break
		}
		e.Step()
	}
	if e.halted {
		return ErrHalted
	}
	return nil
}

func (e *refEngine) RunUntilIdle() error {
	e.halted = false
	for !e.halted && e.Step() {
	}
	if e.halted {
		return ErrHalted
	}
	return nil
}

// ---------------------------------------------------------------------------
// The differential driver. A program is interpreted twice through this
// queue-agnostic facade; any divergence in dispatch order, clocks, Executed,
// Pending or NextAt is a wheel bug (or a contract change).
// ---------------------------------------------------------------------------

type queueUnderTest struct {
	now         func() Time
	at          func(t Time, fn func()) any
	cancel      func(h any)
	step        func() bool
	run         func(h Time) error
	runUntil    func(t Time) error
	runUntilIdl func() error
	nextAt      func() (Time, bool)
	pending     func() int
	halt        func()
	executed    func() uint64
}

func wheelQUT(e *Engine) *queueUnderTest {
	return &queueUnderTest{
		now:         e.Now,
		at:          func(t Time, fn func()) any { return e.At(t, fn) },
		cancel:      func(h any) { e.Cancel(h.(*Event)) },
		step:        e.Step,
		run:         e.Run,
		runUntil:    e.RunUntil,
		runUntilIdl: e.RunUntilIdle,
		nextAt:      e.NextAt,
		pending:     e.Pending,
		halt:        e.Halt,
		executed:    func() uint64 { return e.Executed },
	}
}

func refQUT(e *refEngine) *queueUnderTest {
	return &queueUnderTest{
		now:         e.Now,
		at:          func(t Time, fn func()) any { return e.At(t, fn) },
		cancel:      func(h any) { e.Cancel(h.(*refEvent)) },
		step:        e.Step,
		run:         e.Run,
		runUntil:    e.RunUntil,
		runUntilIdl: e.RunUntilIdle,
		nextAt:      e.NextAt,
		pending:     e.Pending,
		halt:        e.Halt,
		executed:    func() uint64 { return e.executed },
	}
}

// splitmix64 gives every event id an independent deterministic stream, so
// callback behaviour depends only on the id, never on host state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// delayFor draws a delay for event id across every wheel regime: same-slot,
// near wheel, each coarse level, and past the overflow span.
func delayFor(id uint64, bucket int) Time {
	h := splitmix64(id*6364136223846793005 + uint64(bucket))
	switch bucket % 6 {
	case 0:
		return Time(h % 16) // same/adjacent near slot, many ties
	case 1:
		return Time(h % 8192) // near wheel
	case 2:
		return Time(h % (1 << 21)) // coarse level 0/1
	case 3:
		return Time(h % (1 << 30)) // coarse level 2
	case 4:
		return Time(h % (1 << 47)) // deep coarse levels
	default:
		return Time(1<<53 + h%(1<<55)) // overflow list
	}
}

// runProgram interprets the seeded op program against q, returning the
// dispatch log. Event callbacks append their id, sometimes re-arm children
// and sometimes cancel the oldest live handle — all decided by id-derived
// hashes, so both interpretations make identical choices as long as their
// dispatch orders match (which is exactly what the test asserts).
func runProgram(t *testing.T, seed int64, q *queueUnderTest) (log []uint64, executed uint64, pending int) {
	rng := rand.New(rand.NewSource(seed))
	var nextID uint64
	handles := make(map[uint64]any)
	order := make([]uint64, 0, 64) // live ids, oldest first

	dropHandle := func(id uint64) {
		delete(handles, id)
		for i, v := range order {
			if v == id {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
	}

	var schedule func(at Time, id uint64)
	fire := func(id uint64) func() {
		return func() {
			log = append(log, id)
			dropHandle(id)
			h := splitmix64(id)
			if h%4 == 0 { // re-arm a child
				cid := nextID
				nextID++
				schedule(q.now()+delayFor(cid, int(h>>8)), cid)
			}
			if h%5 == 0 && len(order) > 0 { // cancel the oldest live event
				victim := order[0]
				q.cancel(handles[victim])
				dropHandle(victim)
			}
			if h%97 == 0 {
				q.halt()
			}
		}
	}
	schedule = func(at Time, id uint64) {
		handles[id] = q.at(at, fire(id))
		order = append(order, id)
	}

	for op := 0; op < 400; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // schedule
			id := nextID
			nextID++
			schedule(q.now()+delayFor(id, rng.Intn(1000)), id)
		case 4: // cancel a random live handle
			if len(order) > 0 {
				victim := order[rng.Intn(len(order))]
				q.cancel(handles[victim])
				dropHandle(victim)
			}
		case 5, 6: // step
			q.step()
		case 7: // bounded run (ignore ErrHalted; state is still compared)
			_ = q.run(q.now() + Time(rng.Int63n(1<<22)))
		case 8: // window run
			_ = q.runUntil(q.now() + Time(rng.Int63n(1<<14)))
		case 9: // observe
			at, ok := q.nextAt()
			log = append(log, ^uint64(0)) // marker
			if ok {
				log = append(log, uint64(at))
			}
			log = append(log, uint64(q.pending()))
		}
	}
	// Drain everything, overflow cascades included.
	for q.step() {
	}
	return log, q.executed(), q.pending()
}

// TestWheelMatchesHeapReference is the differential property test: the
// timing wheel and the container/heap reference must produce identical
// dispatch logs, Executed counts and Pending values for randomized
// schedule/cancel/re-arm/Halt programs spanning every wheel level.
func TestWheelMatchesHeapReference(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			wl, we, wp := runProgram(t, seed, wheelQUT(NewEngine(uint64(seed))))
			rl, re, rp := runProgram(t, seed, refQUT(&refEngine{}))
			if len(wl) != len(rl) {
				t.Fatalf("dispatch log lengths differ: wheel %d, heap %d", len(wl), len(rl))
			}
			for i := range wl {
				if wl[i] != rl[i] {
					t.Fatalf("dispatch logs diverge at %d: wheel %d, heap %d", i, wl[i], rl[i])
				}
			}
			if we != re {
				t.Fatalf("Executed differs: wheel %d, heap %d", we, re)
			}
			if wp != rp || wp != 0 {
				t.Fatalf("Pending after drain: wheel %d, heap %d (want 0)", wp, rp)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Directed edge cases.
// ---------------------------------------------------------------------------

// TestWheelFarFutureOverflowCascade schedules events beyond the wheels'
// span, interleaved with near events, and checks the overflow list cascades
// back through every level in (At, seq) order.
func TestWheelFarFutureOverflowCascade(t *testing.T) {
	e := NewEngine(1)
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }

	far := Time(1) << 55 // beyond wheelSpan from cur=0
	e.At(far+5, rec(3))
	e.At(2, rec(0))
	e.At(far+5, rec(4)) // FIFO tie with id 3 across an overflow cascade
	e.At(far, rec(2))
	e.At(8191, rec(1))

	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dispatch order = %v, want %v", got, want)
	}
	if e.now != far+5 {
		t.Fatalf("clock = %v, want %v", e.now, far+5)
	}
}

// TestWheelOverflowRecascade forces an overflow cascade whose survivors are
// still beyond the wheel span and must re-enter the overflow list.
func TestWheelOverflowRecascade(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(1<<55, func() { got = append(got, 0) })
	e.At(1<<55+1<<54, func() { got = append(got, 1) }) // > span even from 1<<55
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1]" {
		t.Fatalf("dispatch order = %v, want [0 1]", got)
	}
}

// TestWheelLevelBoundaries exercises delays at exact level-width powers,
// one below and one above, from a non-zero clock position.
func TestWheelLevelBoundaries(t *testing.T) {
	e := NewEngine(1)
	e.At(12345, func() {})
	e.Step() // now = 12345, off slot-zero alignment

	base := e.Now()
	var deltas []Time
	for shift := uint(0); shift <= wheelSpan; shift += 4 {
		w := Time(1) << shift
		deltas = append(deltas, w-1, w, w+1)
	}
	type item struct {
		at  Time
		seq int
	}
	var want []item
	for i, d := range deltas {
		want = append(want, item{base + d, i})
	}
	var got []item
	for i, d := range deltas {
		i, at := i, base+d
		e.At(at, func() { got = append(got, item{at, i}) })
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Expected order: by (At, insertion seq).
	for i := 0; i < len(want); i++ {
		min := i
		for j := i + 1; j < len(want); j++ {
			if want[j].at < want[min].at || (want[j].at == want[min].at && want[j].seq < want[min].seq) {
				min = j
			}
		}
		want[i], want[min] = want[min], want[i]
	}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestWheelInjectEarlierAfterPeek reproduces the conservative-window
// pattern: RunUntil peeks past the window edge (the next pending event is
// far in the future), then the barrier injects a message earlier than that
// pending minimum. The wheel reference must not have advanced past the
// injection time.
func TestWheelInjectEarlierAfterPeek(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.At(1<<30, func() { got = append(got, "far") })
	if err := e.RunUntil(1000); err != nil { // dispatches nothing, peeks the far event
		t.Fatal(err)
	}
	if at, ok := e.NextAt(); !ok || at != 1<<30 {
		t.Fatalf("NextAt = %v,%v", at, ok)
	}
	e.At(2000, func() { got = append(got, "injected") }) // earlier than the peeked min
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[injected far]" {
		t.Fatalf("dispatch order = %v, want [injected far]", got)
	}
}

// TestWheelReanchorAfterDrain drains the queue after a far-future cascade
// (the wheel reference has jumped ahead of a fresh schedule's natural slot)
// and checks new events still dispatch in order.
func TestWheelReanchorAfterDrain(t *testing.T) {
	e := NewEngine(1)
	e.At(1<<40, func() {})
	if !e.Step() {
		t.Fatal("step failed")
	}
	if e.Step() {
		t.Fatal("queue should be empty") // drained: takeNext re-anchors cur
	}
	var got []int
	e.At(e.Now()+3, func() { got = append(got, 1) })
	e.At(e.Now()+1, func() { got = append(got, 0) })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1]" {
		t.Fatalf("dispatch order = %v, want [0 1]", got)
	}
}

// TestWheelCancelInterleaving cancels events in every structural position:
// slot head, slot tail, sole occupant, coarse level, overflow list.
func TestWheelCancelInterleaving(t *testing.T) {
	e := NewEngine(1)
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }

	h1 := e.At(10, rec(-1)) // head of a shared slot
	e.At(10, rec(0))
	e.At(10, rec(1))
	h2 := e.At(20, rec(-1)) // sole occupant
	e.At(30, rec(2))
	h3 := e.At(1<<20, rec(-1)) // coarse level
	e.At(1<<20+1, rec(3))
	h4 := e.At(1<<60, rec(-1)) // overflow
	e.At(1<<60, rec(4))

	for _, h := range []*Event{h1, h2, h3, h4} {
		e.Cancel(h)
	}
	if got := e.Pending(); got != 5 {
		t.Fatalf("Pending = %d, want 5", got)
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Fatalf("dispatch order = %v, want [0 1 2 3 4]", got)
	}
	if e.Pending() != 0 || e.Executed != 5 {
		t.Fatalf("Pending=%d Executed=%d, want 0/5", e.Pending(), e.Executed)
	}
}

// TestBatchCallAtOrdering checks batch-scheduled events keep global FIFO
// order against interleaved regular schedules, across slot and level
// boundaries.
func TestBatchCallAtOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	rec := func(_ Time, a1, _ any) { got = append(got, a1.(int)) }

	e.CallAt(100, rec, 0, nil)
	b := e.BeginBatch()
	b.CallAt(100, rec, 1, nil)   // same slot as the regular schedule
	b.CallAt(100, rec, 2, nil)   // cached-tail fast path
	b.CallAt(150, rec, 3, nil)   // new slot
	b.CallAt(1<<20, rec, 5, nil) // coarse level
	b.CallAt(1<<60, rec, 6, nil) // overflow
	e.CallAt(200, rec, 4, nil)   // interleaved regular schedule

	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3 4 5 6]" {
		t.Fatalf("dispatch order = %v, want [0 1 2 3 4 5 6]", got)
	}
}

// TestBatchCallAtPanics checks the cursor's contract violations panic.
func TestBatchCallAtPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	e := NewEngine(1)
	e.At(50, func() {})
	e.Run(50)
	rec := func(_ Time, _, _ any) {}
	mustPanic("past schedule", func() {
		b := e.BeginBatch()
		b.CallAt(e.Now()-1, rec, nil, nil)
	})
	mustPanic("decreasing times", func() {
		b := e.BeginBatch()
		b.CallAt(e.Now()+100, rec, nil, nil)
		b.CallAt(e.Now()+99, rec, nil, nil)
	})
}

// TestPendingCounterLive checks Pending across schedule, cancel,
// double-cancel, dispatch and drain.
func TestPendingCounterLive(t *testing.T) {
	e := NewEngine(1)
	if e.Pending() != 0 {
		t.Fatal("fresh engine should have 0 pending")
	}
	h1 := e.At(10, func() {})
	h2 := e.At(20, func() {})
	e.At(1<<55, func() {}) // overflow resident
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	e.Cancel(h1)
	e.Cancel(h1) // double-cancel is a no-op
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Cancel(h2) // already fired: no-op
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}
