// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every other component of this repository: a virtual
// clock measured in integer nanoseconds, a stable-ordered event queue, and
// a seeded random source. Determinism is a hard requirement — two runs with
// the same configuration and seed must produce byte-identical results — so
// the engine never consults wall-clock time and breaks timestamp ties by
// insertion order.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is a distinct type (rather than time.Time) because the
// simulation has no epoch and arithmetic on int64 nanoseconds is pervasive
// in the hot path.
type Time int64

// Common virtual-time unit constructors.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Std converts a virtual time span back to a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

// Micros reports t in fractional microseconds. It is the unit used in every
// table of the paper.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t in fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "12.3µs".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.1fµs", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}
