// Package sched models application threads: serial execution contexts
// bound to a core, with wakeup latency when scheduled in from idle. It is
// deliberately minimal — the paper's experiments pin one application per
// core — but it captures the two effects that matter to the results: a
// blocked server thread pays a wakeup (scheduler + cross-core IPI) before
// touching a freshly delivered packet, and requests serialize on a busy
// single-threaded server (which is what collapses memcached throughput in
// Fig. 12).
package sched

import (
	"prism/internal/cpu"
	"prism/internal/sim"
)

// Thread is a serial work queue bound to a core.
type Thread struct {
	Name string

	eng    *sim.Engine
	core   *cpu.Core
	wakeup sim.Time

	// Jobs counts submitted work items; WakeupCount counts schedule-ins
	// from idle.
	Jobs        uint64
	WakeupCount uint64
}

// NewThread binds a thread to a core. wakeup is the schedule-in latency
// paid when the thread was blocked (core idle at submission).
func NewThread(name string, eng *sim.Engine, core *cpu.Core, wakeup sim.Time) *Thread {
	return &Thread{Name: name, eng: eng, core: core, wakeup: wakeup}
}

// Core returns the thread's core.
func (t *Thread) Core() *cpu.Core { return t.core }

// Runner is a work item that receives its completion time. SubmitTo
// schedules one without the per-submit closure Submit costs: a long-lived
// Runner (a socket draining its own message queue) makes the handoff
// allocation-free.
type Runner interface {
	Run(done sim.Time)
}

// Submit enqueues cost worth of work triggered at now. fn, if non-nil,
// runs when the work completes, receiving the completion time. Work items
// execute serially in submission order.
func (t *Thread) Submit(now sim.Time, cost sim.Time, fn func(done sim.Time)) {
	done := t.schedule(now, cost)
	if fn != nil {
		t.eng.CallAt(done, runFn, fn, nil)
	}
}

// SubmitTo is Submit for a Runner: same serial accounting, no closure.
func (t *Thread) SubmitTo(now sim.Time, cost sim.Time, r Runner) {
	done := t.schedule(now, cost)
	if r != nil {
		t.eng.CallAt(done, runRunner, r, nil)
	}
}

// schedule charges the work on the core (plus a wakeup when the thread was
// blocked) and returns its completion time.
func (t *Thread) schedule(now, cost sim.Time) sim.Time {
	t.Jobs++
	wasIdle := t.core.IdleAt(now)
	start := t.core.Acquire(now)
	if wasIdle {
		t.WakeupCount++
		start = t.core.Consume(start, t.wakeup)
	}
	return t.core.Consume(start, cost)
}

// Stall occupies the thread's core for dur without completing any work —
// the thread is preempted or wedged (fault injection's stalled-consumer
// class). Queued work items finish later by exactly the stall; nothing is
// counted as a job and no wakeup is paid.
func (t *Thread) Stall(now, dur sim.Time) {
	start := t.core.Acquire(now)
	t.core.Consume(start, dur)
}

func runFn(done sim.Time, a1, _ any) { a1.(func(sim.Time))(done) }

func runRunner(done sim.Time, a1, _ any) { a1.(Runner).Run(done) }
