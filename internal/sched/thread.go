// Package sched models application threads: serial execution contexts
// bound to a core, with wakeup latency when scheduled in from idle. It is
// deliberately minimal — the paper's experiments pin one application per
// core — but it captures the two effects that matter to the results: a
// blocked server thread pays a wakeup (scheduler + cross-core IPI) before
// touching a freshly delivered packet, and requests serialize on a busy
// single-threaded server (which is what collapses memcached throughput in
// Fig. 12).
package sched

import (
	"prism/internal/cpu"
	"prism/internal/sim"
)

// Thread is a serial work queue bound to a core.
type Thread struct {
	Name string

	eng    *sim.Engine
	core   *cpu.Core
	wakeup sim.Time

	// Jobs counts submitted work items; WakeupCount counts schedule-ins
	// from idle.
	Jobs        uint64
	WakeupCount uint64
}

// NewThread binds a thread to a core. wakeup is the schedule-in latency
// paid when the thread was blocked (core idle at submission).
func NewThread(name string, eng *sim.Engine, core *cpu.Core, wakeup sim.Time) *Thread {
	return &Thread{Name: name, eng: eng, core: core, wakeup: wakeup}
}

// Core returns the thread's core.
func (t *Thread) Core() *cpu.Core { return t.core }

// Submit enqueues cost worth of work triggered at now. fn, if non-nil,
// runs when the work completes, receiving the completion time. Work items
// execute serially in submission order.
func (t *Thread) Submit(now sim.Time, cost sim.Time, fn func(done sim.Time)) {
	t.Jobs++
	wasIdle := t.core.IdleAt(now)
	start := t.core.Acquire(now)
	if wasIdle {
		t.WakeupCount++
		start = t.core.Consume(start, t.wakeup)
	}
	done := t.core.Consume(start, cost)
	if fn != nil {
		t.eng.At(done, func() { fn(done) })
	}
}
