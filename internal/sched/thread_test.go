package sched

import (
	"testing"

	"prism/internal/cpu"
	"prism/internal/sim"
)

func TestThreadWakeupFromIdle(t *testing.T) {
	eng := sim.NewEngine(1)
	core := cpu.NewCore(1, nil)
	th := NewThread("app", eng, core, 3000)
	var done sim.Time
	eng.At(100, func() {
		th.Submit(100, 500, func(d sim.Time) { done = d })
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// 100 (submit) + 3000 (wakeup) + 500 (work).
	if done != 3600 {
		t.Errorf("done = %v, want 3600", done)
	}
	if th.WakeupCount != 1 || th.Jobs != 1 {
		t.Errorf("wakeups/jobs = %d/%d", th.WakeupCount, th.Jobs)
	}
}

func TestThreadBackloggedSkipsWakeup(t *testing.T) {
	eng := sim.NewEngine(1)
	core := cpu.NewCore(1, nil)
	th := NewThread("app", eng, core, 3000)
	var dones []sim.Time
	eng.At(0, func() {
		th.Submit(0, 1000, func(d sim.Time) { dones = append(dones, d) })
		th.Submit(0, 1000, func(d sim.Time) { dones = append(dones, d) })
		th.Submit(0, 1000, func(d sim.Time) { dones = append(dones, d) })
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// First pays wakeup (3000); the rest queue behind it.
	want := []sim.Time{4000, 5000, 6000}
	for i := range want {
		if dones[i] != want[i] {
			t.Errorf("done[%d] = %v, want %v", i, dones[i], want[i])
		}
	}
	if th.WakeupCount != 1 {
		t.Errorf("WakeupCount = %d, want 1 (serial backlog)", th.WakeupCount)
	}
}

func TestThreadSerialOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	core := cpu.NewCore(1, nil)
	th := NewThread("app", eng, core, 0)
	var order []int
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			i := i
			th.Submit(0, 100, func(sim.Time) { order = append(order, i) })
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
	if th.Core() != core {
		t.Error("Core() mismatch")
	}
}

func TestThreadNilCallback(t *testing.T) {
	eng := sim.NewEngine(1)
	core := cpu.NewCore(1, nil)
	th := NewThread("app", eng, core, 0)
	eng.At(0, func() { th.Submit(0, 100, nil) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if core.BusyTotal() != 100 {
		t.Errorf("BusyTotal = %v", core.BusyTotal())
	}
}

func TestThreadCStateInteraction(t *testing.T) {
	eng := sim.NewEngine(1)
	core := cpu.NewCore(1, cpu.C1)
	th := NewThread("app", eng, core, 1000)
	var done sim.Time
	at := sim.Time(10 * sim.Millisecond) // long idle: C1 exit applies
	eng.At(at, func() { th.Submit(at, 500, func(d sim.Time) { done = d }) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := at + cpu.C1[0].ExitLatency + 1000 + 500
	if done != want {
		t.Errorf("done = %v, want %v (C-state exit + wakeup + work)", done, want)
	}
}
