// Package bridge models the Linux software bridge that interconnects the
// VXLAN tunnel endpoint with the containers' veth interfaces — stage 2 of
// the overlay pipeline. Its NAPI context is the gro_cells driver (§II-A3).
//
// The bridge is a learning switch: it keeps a forwarding database (FDB)
// from MAC address to output port, learns source addresses, ages entries,
// and floods unknown unicast to all ports.
package bridge

import (
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/sim"
)

// DefaultAging matches the Linux bridge default FDB aging of 300s.
const DefaultAging = 300 * sim.Second

// QueueCap sizes the gro_cells input queue.
const QueueCap = 4096

// fdbEntry is one learned MAC.
type fdbEntry struct {
	port *netdev.Device
	seen sim.Time
}

// Bridge is the stage-2 device plus its FDB.
type Bridge struct {
	Dev *netdev.Device

	costs *netdev.Costs
	aging sim.Time
	// fdb is keyed by the MAC packed into a uint64 (pkt.MAC.Key): integer
	// keys take the runtime's fast fixed-size map path, where a [6]byte
	// key would go through the generic variable-length hasher on every
	// frame.
	fdb   map[uint64]fdbEntry
	ports []*netdev.Device

	// nextSweep schedules the amortized garbage collection of expired
	// dynamic entries (br_fdb_cleanup). Without it a MAC that stops
	// receiving lookups would pin its entry forever — Lookup's expiry
	// check only fires for the address being queried.
	nextSweep sim.Time

	// Flooded counts unknown-unicast/broadcast floods; Unknown counts
	// frames dropped because no port could take them.
	Flooded uint64
	Unknown uint64
}

// New builds a bridge device named name.
func New(name string, costs *netdev.Costs) *Bridge {
	b := &Bridge{
		costs: costs,
		aging: DefaultAging,
		fdb:   make(map[uint64]fdbEntry),
	}
	b.Dev = netdev.NewDevice(name, netdev.DriverGroCells, netdev.HandlerFunc(b.handle), QueueCap)
	return b
}

// AddPort attaches a downstream device (a veth) to the bridge.
func (b *Bridge) AddPort(dev *netdev.Device) { b.ports = append(b.ports, dev) }

// LearnStatic installs a permanent FDB entry; used by topologies that
// don't want to rely on flooding for the first frame.
func (b *Bridge) LearnStatic(mac pkt.MAC, port *netdev.Device) {
	b.fdb[mac.Key()] = fdbEntry{port: port, seen: -1}
}

// Lookup returns the port a MAC maps to, honouring aging, or nil.
func (b *Bridge) Lookup(now sim.Time, mac pkt.MAC) *netdev.Device {
	e, ok := b.fdb[mac.Key()]
	if !ok {
		return nil
	}
	if e.seen >= 0 && now-e.seen > b.aging {
		delete(b.fdb, mac.Key())
		return nil
	}
	return e.port
}

// FDBLen returns the number of FDB entries (static and learned).
func (b *Bridge) FDBLen() int { return len(b.fdb) }

// sweep deletes every expired dynamic entry, then reschedules itself one
// aging period out. Driven by the virtual clock on the packet path, so a
// busy bridge cleans its whole table without per-entry timers and an idle
// bridge defers the work until there is traffic to account it to.
func (b *Bridge) sweep(now sim.Time) {
	for mac, e := range b.fdb {
		if e.seen >= 0 && now-e.seen > b.aging {
			delete(b.fdb, mac)
		}
	}
	b.nextSweep = now + b.aging
}

// handle is the stage-2 processing for one frame: learn source, look up
// destination, forward.
func (b *Bridge) handle(now sim.Time, skb *pkt.SKB) netdev.Result {
	if now >= b.nextSweep {
		b.sweep(now)
	}
	eth, err := pkt.ParseEthernet(skb.Data)
	if err != nil {
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: b.costs.BridgePacket}
	}
	// Refresh the source's dynamic FDB entry. (True source *learning* needs
	// the ingress port; frames reaching this bridge arrive via the VXLAN
	// tunnel, whose remote MACs the control plane installs — Docker's
	// overlay driver populates the FDB statically the same way.)
	if e, ok := b.fdb[eth.Src.Key()]; ok && e.seen >= 0 {
		e.seen = now
		b.fdb[eth.Src.Key()] = e
	}
	if eth.Dst.IsBroadcast() {
		b.Flooded++
		// The overlay experiments never broadcast; treat as flood-and-drop
		// to keep packet conservation simple and visible.
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: b.costs.BridgePacket}
	}
	port := b.Lookup(now, eth.Dst)
	if port == nil {
		b.Unknown++
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: b.costs.BridgePacket}
	}
	return netdev.Result{Verdict: netdev.VerdictForward, Cost: b.costs.BridgePacket, Next: port}
}
