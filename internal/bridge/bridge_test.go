package bridge

import (
	"testing"

	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/sim"
)

var (
	macA = pkt.MAC{0x02, 0x42, 0, 0, 0, 0xA}
	macB = pkt.MAC{0x02, 0x42, 0, 0, 0, 0xB}
	macC = pkt.MAC{0x02, 0x42, 0, 0, 0, 0xC}
)

func frameTo(dst pkt.MAC, src pkt.MAC) []byte {
	return pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: src, DstMAC: dst,
		SrcIP: pkt.Addr(172, 17, 0, 9), DstIP: pkt.Addr(172, 17, 0, 10),
		SrcPort: 1, DstPort: 2, Payload: []byte("x"),
	})
}

func dummyDev(name string) *netdev.Device {
	return netdev.NewDevice(name, netdev.DriverBacklog, netdev.HandlerFunc(
		func(sim.Time, *pkt.SKB) netdev.Result {
			return netdev.Result{Verdict: netdev.VerdictDrop}
		}), 16)
}

func TestForwardByStaticFDB(t *testing.T) {
	b := New("br0", netdev.DefaultCosts())
	vA := dummyDev("vethA")
	b.AddPort(vA)
	b.LearnStatic(macA, vA)

	skb := &pkt.SKB{Data: frameTo(macA, macB)}
	res := b.handle(0, skb)
	if res.Verdict != netdev.VerdictForward || res.Next != vA {
		t.Fatalf("result = %+v", res)
	}
	if res.Cost != netdev.DefaultCosts().BridgePacket {
		t.Errorf("cost = %v", res.Cost)
	}
	if b.FDBLen() != 1 {
		t.Errorf("FDBLen = %d", b.FDBLen())
	}
}

func TestUnknownUnicastCounted(t *testing.T) {
	b := New("br0", netdev.DefaultCosts())
	res := b.handle(0, &pkt.SKB{Data: frameTo(macC, macB)})
	if res.Verdict != netdev.VerdictDrop {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if b.Unknown != 1 {
		t.Errorf("Unknown = %d", b.Unknown)
	}
}

func TestBroadcastFlood(t *testing.T) {
	b := New("br0", netdev.DefaultCosts())
	res := b.handle(0, &pkt.SKB{Data: frameTo(pkt.BroadcastMAC, macB)})
	if res.Verdict != netdev.VerdictDrop {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if b.Flooded != 1 {
		t.Errorf("Flooded = %d", b.Flooded)
	}
}

func TestGarbageFrameDrops(t *testing.T) {
	b := New("br0", netdev.DefaultCosts())
	if res := b.handle(0, &pkt.SKB{Data: []byte{1}}); res.Verdict != netdev.VerdictDrop {
		t.Errorf("verdict = %v", res.Verdict)
	}
}

func TestFDBAging(t *testing.T) {
	b := New("br0", netdev.DefaultCosts())
	vA := dummyDev("vethA")
	// Dynamic entry: seen timestamp set.
	b.fdb[macA.Key()] = fdbEntry{port: vA, seen: 0}
	if b.Lookup(DefaultAging/2, macA) != vA {
		t.Error("entry aged too early")
	}
	if b.Lookup(DefaultAging+1, macA) != nil {
		t.Error("entry survived past aging")
	}
	if b.FDBLen() != 0 {
		t.Error("aged entry not removed")
	}
	// Static entries (seen < 0) never age.
	b.LearnStatic(macB, vA)
	if b.Lookup(10*DefaultAging, macB) != vA {
		t.Error("static entry aged")
	}
}

func TestExpiredEntrySweptAndFloods(t *testing.T) {
	b := New("br0", netdev.DefaultCosts())
	vA := dummyDev("vethA")
	vB := dummyDev("vethB")
	b.AddPort(vA)
	b.AddPort(vB)
	b.LearnStatic(macB, vB)
	b.fdb[macA.Key()] = fdbEntry{port: vA, seen: 0}

	// Before aging, A's entry forwards.
	if res := b.handle(sim.Second, &pkt.SKB{Data: frameTo(macA, macB)}); res.Verdict != netdev.VerdictForward {
		t.Fatalf("fresh entry verdict = %v", res.Verdict)
	}

	// Advance the virtual clock past the aging horizon with traffic that
	// never looks A up: the sweep must still collect A's expired entry.
	at := sim.Second + DefaultAging + sim.Second
	if res := b.handle(at, &pkt.SKB{Data: frameTo(macB, macC)}); res.Verdict != netdev.VerdictForward {
		t.Fatalf("static entry verdict = %v", res.Verdict)
	}
	if b.FDBLen() != 1 {
		t.Errorf("FDBLen = %d after sweep, want 1 (static only)", b.FDBLen())
	}

	// Frames to the expired MAC now flood (unknown unicast) and drop.
	if res := b.handle(at+1, &pkt.SKB{Data: frameTo(macA, macB)}); res.Verdict != netdev.VerdictDrop {
		t.Errorf("expired entry verdict = %v, want drop", res.Verdict)
	}
	if b.Unknown != 1 {
		t.Errorf("Unknown = %d, want 1", b.Unknown)
	}
}

func TestDynamicRefreshOnTraffic(t *testing.T) {
	b := New("br0", netdev.DefaultCosts())
	vA := dummyDev("vethA")
	vB := dummyDev("vethB")
	b.LearnStatic(macA, vA)
	b.fdb[macB.Key()] = fdbEntry{port: vB, seen: 0}

	// Traffic from B to A at time close to aging refreshes B's entry.
	at := DefaultAging - sim.Second
	if res := b.handle(at, &pkt.SKB{Data: frameTo(macA, macB)}); res.Verdict != netdev.VerdictForward {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if b.Lookup(at+DefaultAging/2, macB) != vB {
		t.Error("refreshed entry aged out")
	}
}
