// Package napi implements the vanilla Linux NAPI receive engine — the
// baseline PRISM is compared against. It reproduces the net_rx_action
// algorithm of Fig. 2 of the paper: a per-CPU *global* poll list that new
// devices are appended to, a *local* poll list the global list is moved to
// at the start of each softirq, batched per-device polling (weight 64),
// an overall softirq budget (300), and strict tail re-enqueuing of devices
// that still have packets.
//
// The two-list design plus tail-enqueue is exactly what produces the
// interleaved processing order of Fig. 6a — stage 3 of batch 1 runs after
// stage 1 of batch 2 — which PRISM (internal/core) eliminates.
package napi

import (
	"prism/internal/cpu"
	"prism/internal/netdev"
	"prism/internal/obs"
	"prism/internal/pkt"
	"prism/internal/sim"
)

// PollObservation describes one iteration of the device polling loop, for
// trace tooling (Fig. 6 tables).
type PollObservation struct {
	Time      sim.Time
	Iteration uint64
	Device    string
	// PollList is the poll-list state after the iteration's re-enqueueing,
	// in poll order. For vanilla this is the local list followed by the
	// global list (the paper's trace shows the same concatenated view).
	PollList []string
}

// Stats aggregates engine-level counters.
type Stats struct {
	SoftirqRuns uint64 // net_rx_action invocations
	Iterations  uint64 // device polls
	Packets     uint64 // packets processed through handlers
	Delivered   uint64 // packets that reached an application socket
	Dropped     uint64 // packets dropped by handlers or full queues
}

// Engine is the vanilla per-CPU NAPI receive engine. All methods must be
// called from simulation context (inside events).
type Engine struct {
	eng   *sim.Engine
	core  *cpu.Core
	costs *netdev.Costs

	global []*netdev.Device // POLL_LIST: devices added here when scheduled
	local  []*netdev.Device // net_rx_action's working list

	pending   bool // softirq raised but not yet started
	running   bool // net_rx_action in progress
	processed int  // packets processed in the current softirq

	// lastStage tracks which device's code last ran on this core, for the
	// I-cache stage-switch penalty (Costs.StageSwitch).
	lastStage *netdev.Device

	stats Stats

	// OnPoll, when set, is invoked once per device-poll iteration.
	OnPoll func(PollObservation)

	// obs, when set, receives per-packet lifecycle spans and labeled
	// metrics for every stage this engine polls.
	obs *obs.Pipeline
}

var _ netdev.Scheduler = (*Engine)(nil)

// NewEngine returns a vanilla NAPI engine bound to a core.
func NewEngine(eng *sim.Engine, core *cpu.Core, costs *netdev.Costs) *Engine {
	return &Engine{eng: eng, core: core, costs: costs}
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetOnPoll installs the per-iteration trace hook.
func (e *Engine) SetOnPoll(fn func(PollObservation)) { e.OnPoll = fn }

// SetObs installs the observability pipeline (nil disables collection).
func (e *Engine) SetObs(p *obs.Pipeline) { e.obs = p }

// Core returns the processing core this engine runs on.
func (e *Engine) Core() *cpu.Core { return e.core }

// NotifyArrival implements netdev.Scheduler: the hardware-IRQ path. If the
// device is already scheduled (NAPI_STATE_SCHED set), its IRQs are masked
// and the packet just sits in the queue; otherwise the top half runs,
// charges its cost, and schedules the device.
func (e *Engine) NotifyArrival(dev *netdev.Device, _ bool) {
	if dev.InPollList {
		return
	}
	dev.InPollList = true
	now := e.eng.Now()
	// Top half: charge the hardware interrupt on this core. If the core is
	// mid-softirq the charge extends its busy window (interrupts steal
	// cycles from the softirq); poll iterations re-sync with the ledger.
	start := e.core.Acquire(now)
	e.core.Consume(start, e.costs.IRQ)
	e.global = append(e.global, dev)
	e.raise(now)
}

// raise schedules net_rx_action if it is neither pending nor running.
func (e *Engine) raise(now sim.Time) {
	if e.running || e.pending {
		return
	}
	e.pending = true
	e.eng.At(e.core.BusyUntil(), e.runSoftirq)
}

// reraise schedules another net_rx_action after the softirq yields
// (ksoftirqd handoff delay).
func (e *Engine) reraise(now sim.Time) {
	if e.running || e.pending {
		return
	}
	e.pending = true
	e.eng.At(now+e.costs.SoftirqRestart, e.runSoftirq)
}

// runSoftirq is net_rx_action: move the global list to the local list and
// start the device polling loop.
func (e *Engine) runSoftirq() {
	e.pending = false
	e.running = true
	e.stats.SoftirqRuns++
	e.processed = 0
	// Fig. 2 line 8: move POLL_LIST to the tail of poll_list.
	e.local = append(e.local, e.global...)
	e.global = e.global[:0]
	e.pollNext()
}

// pollNext executes one iteration of the device polling loop (Fig. 2
// lines 11–20), then schedules itself at the batch's completion time.
func (e *Engine) pollNext() {
	now := e.eng.Now()
	if len(e.local) == 0 || e.processed >= e.costs.Budget {
		e.finish(now)
		return
	}
	dev := e.local[0]
	e.local = e.local[1:]

	// Re-sync with the core ledger: interrupts may have extended the busy
	// window past this event's timestamp.
	start := e.core.BusyUntil()
	if start < now {
		start = e.core.Acquire(now)
	}
	n, total := e.pollDevice(dev, start)
	end := e.core.Consume(start, total)
	e.processed += n
	e.stats.Iterations++

	// Fig. 2 lines 15–16: a device with remaining packets goes to the tail
	// of the *global* list; a drained device completes NAPI (IRQs back on).
	if dev.HasPackets() {
		e.global = append(e.global, dev)
	} else {
		dev.InPollList = false
	}
	e.observe(now, dev)
	e.eng.At(end, e.pollNext)
}

// finish is the net_rx_action epilogue (Fig. 2 lines 21–24): remaining
// local devices are prepended to the global list and, if any device is
// still scheduled, the softirq is re-raised.
func (e *Engine) finish(now sim.Time) {
	if len(e.local) > 0 {
		merged := make([]*netdev.Device, 0, len(e.local)+len(e.global))
		merged = append(merged, e.local...)
		merged = append(merged, e.global...)
		e.global = merged
		e.local = nil
	}
	e.running = false
	if len(e.global) > 0 {
		e.reraise(now)
	}
}

// pollDevice is napi_poll: process up to BatchSize packets from the
// device's queue in FIFO order, applying stage transitions. It returns the
// packet count and the total CPU time of the batch.
//
// Vanilla has a single input queue per device; in this codebase that is
// LowQ (HighQ exists only for PRISM and stays empty under this engine).
func (e *Engine) pollDevice(dev *netdev.Device, start sim.Time) (int, sim.Time) {
	if dev.LowQ.Empty() {
		return 0, 0
	}
	dev.Polls++
	t := start + e.costs.BatchOverhead
	count := 0
	for count < e.costs.BatchSize {
		skb := dev.LowQ.Dequeue()
		if skb == nil {
			break
		}
		// Cold instruction cache for this stage's code path; within a
		// batch the working set stays warm, so this fires once per poll.
		if e.lastStage != dev {
			t += e.costs.StageSwitch
			e.lastStage = dev
		}
		hStart := t
		res := dev.Handler.HandlePacket(t, skb)
		t += res.Cost
		skb.Stage++
		count++
		e.stats.Packets++
		dev.Processed++
		if e.obs != nil {
			e.obs.Span(dev.Name, dev.Kind.StageName(), skb.ID, skb.Priority, hStart, t)
		}
		e.applyTransition(dev, skb, res, t)
	}
	return count, t - start
}

// applyTransition routes a processed packet: enqueue to the next stage
// (scheduling that device), deliver to the application at the packet's
// completion time, or drop. dev is the stage that just processed the
// packet, for drop attribution.
func (e *Engine) applyTransition(dev *netdev.Device, skb *pkt.SKB, res netdev.Result, done sim.Time) {
	switch res.Verdict {
	case netdev.VerdictForward:
		next := res.Next
		if !next.LowQ.Enqueue(skb) {
			e.stats.Dropped++
			if e.obs != nil {
				e.obs.Drop(done, next.Name, next.Kind.StageName(), skb.ID, skb.Priority)
			}
			return
		}
		// napi_schedule from softirq context: append to the global list.
		if !next.InPollList {
			next.InPollList = true
			e.global = append(e.global, next)
		}
	case netdev.VerdictDeliver:
		skb.Delivered = done
		e.stats.Delivered++
		if res.Deliver != nil {
			deliver := res.Deliver
			e.eng.At(done, func() { deliver(done) })
		}
	case netdev.VerdictDrop:
		e.stats.Dropped++
		if e.obs != nil {
			e.obs.Drop(done, dev.Name, dev.Kind.StageName(), skb.ID, skb.Priority)
		}
	case netdev.VerdictAbsorbed:
		// GRO merged the frame into an earlier SKB; nothing to route.
		if e.obs != nil {
			e.obs.Absorbed(done, dev.Name, skb.ID, skb.Priority)
		}
	default:
		panic("napi: handler returned invalid verdict")
	}
}

// observe reports one loop iteration to the trace hook.
func (e *Engine) observe(now sim.Time, dev *netdev.Device) {
	if e.OnPoll == nil {
		return
	}
	list := make([]string, 0, len(e.local)+len(e.global))
	for _, d := range e.local {
		list = append(list, d.Name)
	}
	for _, d := range e.global {
		list = append(list, d.Name)
	}
	e.OnPoll(PollObservation{
		Time:      now,
		Iteration: e.stats.Iterations,
		Device:    dev.Name,
		PollList:  list,
	})
}
