// Package napi implements the vanilla Linux NAPI poll policy — the
// baseline PRISM is compared against — over the unified softirq runtime
// (internal/softirq). It reproduces the net_rx_action algorithm of Fig. 2
// of the paper: a per-CPU *global* poll list that new devices are
// appended to, a *local* poll list the global list is moved to at the
// start of each softirq, batched per-device polling (weight 64), an
// overall softirq budget (300), and strict tail re-enqueuing of devices
// that still have packets.
//
// The two-list design plus tail-enqueue is exactly what produces the
// interleaved processing order of Fig. 6a — stage 3 of batch 1 runs after
// stage 1 of batch 2 — which PRISM (internal/core) eliminates.
package napi

import (
	"prism/internal/cpu"
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/softirq"
)

// PolicyName is the registry name of the vanilla policy.
const PolicyName = "vanilla"

func init() {
	softirq.Register(PolicyName, func(*prio.DB) softirq.PollPolicy { return NewPolicy() })
}

// Engine, Stats and PollObservation are the unified runtime's types; the
// aliases keep this package the natural import for vanilla-NAPI users
// (tests, trace tooling) while guaranteeing there is exactly one
// definition of the shared plumbing.
type (
	Engine          = softirq.Engine
	Stats           = softirq.Stats
	PollObservation = softirq.PollObservation
)

// NewEngine returns a receive engine running the vanilla policy on a core.
func NewEngine(eng *sim.Engine, core *cpu.Core, costs *netdev.Costs) *Engine {
	return softirq.New(eng, core, costs, NewPolicy())
}

// Policy is the vanilla NAPI scheduling policy: two FIFO lists, tail
// insertion everywhere, low-queue-only polling, no priority routing.
//
// The lists are head-indexed deques over reusable backing arrays: Next
// advances head instead of reslicing, and Finish ping-pongs between two
// retained arrays, so steady-state polling never touches the heap.
type Policy struct {
	global  []*netdev.Device // POLL_LIST: devices added here when scheduled
	local   []*netdev.Device // net_rx_action's working list
	head    int              // index of local's first live entry
	scratch []*netdev.Device // retained merge buffer for Finish
}

var _ softirq.PollPolicy = (*Policy)(nil)

// NewPolicy returns a fresh per-CPU vanilla policy.
func NewPolicy() *Policy { return &Policy{} }

// Arrive appends an IRQ-scheduled device to the global list; vanilla has
// no priority rings, so the hint is ignored.
func (p *Policy) Arrive(dev *netdev.Device, _ bool) {
	p.global = append(p.global, dev)
}

// Begin is Fig. 2 line 8: move POLL_LIST to the tail of poll_list.
func (p *Policy) Begin() {
	if p.head > 0 {
		n := copy(p.local, p.local[p.head:])
		p.local = p.local[:n]
		p.head = 0
	}
	p.local = append(p.local, p.global...)
	p.global = p.global[:0]
}

// Next pops the local working list's head; an empty local list ends the
// run even if the global list refilled meanwhile.
func (p *Policy) Next() *netdev.Device {
	if p.head >= len(p.local) {
		return nil
	}
	dev := p.local[p.head]
	p.local[p.head] = nil
	p.head++
	return dev
}

// Requeue is Fig. 2 lines 15–16: a device with remaining packets goes to
// the tail of the *global* list; a drained device completes NAPI.
func (p *Policy) Requeue(dev *netdev.Device) {
	if dev.HasPackets() {
		p.global = append(p.global, dev)
	} else {
		dev.InPollList = false
	}
}

// Finish is the net_rx_action epilogue (Fig. 2 lines 21–24): remaining
// local devices are prepended to the global list. The merge writes into
// the retained scratch array and swaps it with global's, so the two
// backing arrays alternate roles and no round allocates once they've
// grown to the working-set size.
func (p *Policy) Finish() bool {
	if rem := p.local[p.head:]; len(rem) > 0 {
		merged := append(p.scratch[:0], rem...)
		merged = append(merged, p.global...)
		p.scratch = p.global[:0]
		p.global = merged
	}
	p.local = p.local[:0]
	p.head = 0
	return len(p.global) > 0
}

// SelectQueue serves the single input queue. Vanilla has one queue per
// device; in this codebase that is LowQ (HighQ exists only for
// priority-aware policies and stays empty under this one).
func (p *Policy) SelectQueue(dev *netdev.Device) softirq.Queue { return dev.LowQ }

// Route always forwards to the next stage's low queue with tail
// scheduling — the zero Route.
func (p *Policy) Route(*pkt.SKB) softirq.Route { return softirq.Route{} }

// Schedule appends a transition-scheduled device to the global list
// (napi_schedule from softirq context); vanilla never head-inserts.
func (p *Policy) Schedule(dev *netdev.Device, _ bool) {
	p.global = append(p.global, dev)
}

// Promote is never reached (Route never sets Head).
func (p *Policy) Promote(*netdev.Device) {}

// Snapshot renders the local list followed by the global list (the
// paper's trace shows the same concatenated view).
func (p *Policy) Snapshot() []string {
	list := make([]string, 0, len(p.local)-p.head+len(p.global))
	for _, d := range p.local[p.head:] {
		list = append(list, d.Name)
	}
	for _, d := range p.global {
		list = append(list, d.Name)
	}
	return list
}
