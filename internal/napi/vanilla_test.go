package napi_test

import (
	"testing"

	"prism/internal/cpu"
	"prism/internal/napi"
	"prism/internal/pkt"
	"prism/internal/sim"
	"prism/internal/testnet"
)

func newVanilla() (*sim.Engine, *napi.Engine, *testnet.Chain) {
	eng := sim.NewEngine(1)
	core := cpu.NewCore(0, nil)
	e := napi.NewEngine(eng, core, testnet.TestCosts())
	chain := testnet.NewChain(100, 4096)
	return eng, e, chain
}

func TestVanillaDeliversAllPackets(t *testing.T) {
	eng, e, chain := newVanilla()
	eng.At(0, func() { chain.Inject(e, 200, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 200 {
		t.Fatalf("delivered %d packets, want 200", len(chain.Delivered))
	}
	// Conservation + FIFO: IDs delivered in order, no dup, no loss.
	for i, d := range chain.Delivered {
		if d.SKB.ID != uint64(i) {
			t.Fatalf("delivery %d has ID %d (order violated)", i, d.SKB.ID)
		}
		if d.SKB.Stage != 3 {
			t.Errorf("packet %d completed %d stages, want 3", i, d.SKB.Stage)
		}
		if d.SKB.Delivered == 0 {
			t.Errorf("packet %d missing delivery timestamp", i)
		}
	}
	st := e.Stats()
	if st.Delivered != 200 {
		t.Errorf("stats.Delivered = %d", st.Delivered)
	}
	if st.Packets != 600 {
		t.Errorf("stats.Packets = %d, want 600 (200 pkts x 3 stages)", st.Packets)
	}
	if st.Dropped != 0 {
		t.Errorf("stats.Dropped = %d", st.Dropped)
	}
}

// TestVanillaPollOrderInterleaved reproduces Fig. 6a: with a saturated eth
// queue, the vanilla device order interleaves batches — the third stage of
// batch 1 (veth, iteration 4) runs only after the first stage of batch 2
// (eth, iteration 3).
func TestVanillaPollOrderInterleaved(t *testing.T) {
	eng, e, chain := newVanilla()
	var order []string
	e.OnPoll = func(o napi.PollObservation) { order = append(order, o.Device) }
	eng.At(0, func() { chain.Inject(e, 64*5, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"eth", "br", "eth", "veth", "br", "eth"}
	if len(order) < len(want) {
		t.Fatalf("only %d iterations observed: %v", len(order), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("poll order = %v, want prefix %v (Fig. 6a)", order[:len(want)], want)
		}
	}
}

// TestVanillaPollListSnapshots checks the poll-list evolution of the first
// two iterations against Fig. 6a.
func TestVanillaPollListSnapshots(t *testing.T) {
	eng, e, chain := newVanilla()
	var lists [][]string
	e.OnPoll = func(o napi.PollObservation) { lists = append(lists, o.PollList) }
	eng.At(0, func() { chain.Inject(e, 64*3, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(lists) < 2 {
		t.Fatalf("too few iterations: %d", len(lists))
	}
	assertList(t, "iter1", lists[0], "br", "eth")
	assertList(t, "iter2", lists[1], "eth", "veth")
}

func assertList(t *testing.T, label string, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s poll list = %v, want %v", label, got, want)
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s poll list = %v, want %v", label, got, want)
			return
		}
	}
}

// TestVanillaBatchSize verifies per-device batching: one poll of eth
// processes at most 64 packets before moving on.
func TestVanillaBatchSize(t *testing.T) {
	eng, e, chain := newVanilla()
	var perPoll []int
	var prev uint64
	e.OnPoll = func(o napi.PollObservation) {
		st := e.Stats()
		perPoll = append(perPoll, int(st.Packets-prev))
		prev = st.Packets
	}
	eng.At(0, func() { chain.Inject(e, 100, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if perPoll[0] != 64 {
		t.Errorf("first poll processed %d, want 64", perPoll[0])
	}
	for i, n := range perPoll {
		if n > 64 {
			t.Errorf("poll %d processed %d > batch size", i, n)
		}
	}
}

// TestVanillaLatencyReflectsQueueing: a packet at the back of a large burst
// waits for all earlier packets at every stage.
func TestVanillaLatencyReflectsQueueing(t *testing.T) {
	eng, e, chain := newVanilla()
	eng.At(0, func() { chain.Inject(e, 128, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	first := chain.Delivered[0].At
	last := chain.Delivered[127].At
	if last <= first {
		t.Fatal("no queueing delay observed")
	}
	// Total work: 128 pkts x 3 stages x 100ns + batch overheads; the last
	// delivery must come after at least the raw processing time.
	if minWork := sim.Time(128 * 3 * 100); last < minWork {
		t.Errorf("last delivery at %v, want >= %v", last, minWork)
	}
}

// TestVanillaIgnoresPriority: the baseline engine gives identical treatment
// to high-priority packets (FCFS), which is the paper's core complaint.
func TestVanillaIgnoresPriority(t *testing.T) {
	eng, e, chain := newVanilla()
	eng.At(0, func() {
		// 64 low-priority packets, then one high-priority packet.
		chain.Inject(e, 64, false, 0, 0)
		for i := 0; i < 1; i++ {
			chain.Eth.LowQ.Enqueue(&pkt.SKB{ID: 1000, HighPriority: true})
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	lastID := chain.Delivered[len(chain.Delivered)-1].SKB.ID
	if lastID != 1000 {
		t.Errorf("high-priority packet delivered at position != last (ID %d last)", lastID)
	}
}

// TestVanillaBudgetBoundsSoftirq: with four times the budget queued, one
// softirq must not process more than Budget packets.
func TestVanillaBudgetBoundsSoftirq(t *testing.T) {
	eng, e, chain := newVanilla()
	costs := testnet.TestCosts()
	costs.Budget = 128
	core := cpu.NewCore(0, nil)
	e = napi.NewEngine(eng, core, costs)

	var runs []uint64 // packets per softirq
	var lastPackets uint64
	var lastRun uint64
	e.OnPoll = func(o napi.PollObservation) {
		st := e.Stats()
		if st.SoftirqRuns != lastRun {
			runs = append(runs, 0)
			lastRun = st.SoftirqRuns
		}
		if len(runs) > 0 {
			runs[len(runs)-1] += st.Packets - lastPackets
		}
		lastPackets = st.Packets
	}
	eng.At(0, func() { chain.Inject(e, 512, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 512 {
		t.Fatalf("delivered %d, want 512", len(chain.Delivered))
	}
	for i, n := range runs {
		// One device poll may finish right at the boundary; allow one
		// batch of overshoot beyond Budget, as the kernel does.
		if n > uint64(costs.Budget+costs.BatchSize) {
			t.Errorf("softirq %d processed %d packets, budget %d", i, n, costs.Budget)
		}
	}
	if e.Stats().SoftirqRuns < 4 {
		t.Errorf("SoftirqRuns = %d, want >= 4 with budget 128 and 512*3 stage-packets", e.Stats().SoftirqRuns)
	}
}

// TestVanillaQueueOverflowDrops: a burst larger than the ring drops the
// excess and the engine survives.
func TestVanillaQueueOverflowDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	core := cpu.NewCore(0, nil)
	e := napi.NewEngine(eng, core, testnet.TestCosts())
	chain := testnet.NewChain(100, 128) // small ring
	eng.At(0, func() { chain.Inject(e, 200, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 128 {
		t.Errorf("delivered %d, want 128 (ring cap)", len(chain.Delivered))
	}
	if chain.Eth.LowQ.Dropped != 72 {
		t.Errorf("ring dropped %d, want 72", chain.Eth.LowQ.Dropped)
	}
}

// TestVanillaInterleavedArrivals: packets arriving while the softirq is
// running are picked up without an extra IRQ (NAPI polling mode).
func TestVanillaInterleavedArrivals(t *testing.T) {
	eng, e, chain := newVanilla()
	eng.At(0, func() { chain.Inject(e, 64, false, 0, 0) })
	// Arrives mid-processing: eth still in poll list -> no new IRQ charge.
	eng.At(3000, func() { chain.Inject(e, 64, false, 3000, 100) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 128 {
		t.Fatalf("delivered %d, want 128", len(chain.Delivered))
	}
}

// TestVanillaIdleLatency: a single packet on an idle system completes in
// IRQ + 3 batches + 3 stage costs; establishes the baseline the busy tests
// compare against.
func TestVanillaIdleLatency(t *testing.T) {
	eng, e, chain := newVanilla()
	eng.At(0, func() { chain.Inject(e, 1, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 1 {
		t.Fatal("packet lost")
	}
	got := chain.Delivered[0].At
	// IRQ 500 + 3 x (batch 1000 + stage switch 50 + stage 100) + 2 restarts
	// (vanilla needs a new softirq per downstream stage when idle: each
	// stage was scheduled to the global list) = 500 + 3450 + 2x2000 = 7950.
	want := sim.Time(7950)
	if got != want {
		t.Errorf("idle latency = %v, want %v", got, want)
	}
}

func BenchmarkVanillaPipeline(b *testing.B) {
	eng := sim.NewEngine(1)
	core := cpu.NewCore(0, nil)
	e := napi.NewEngine(eng, core, testnet.TestCosts())
	chain := testnet.NewChain(100, b.N+1)
	b.ReportAllocs()
	b.ResetTimer()
	eng.At(0, func() { chain.Inject(e, b.N, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
	if len(chain.Delivered) != b.N {
		b.Fatalf("delivered %d, want %d", len(chain.Delivered), b.N)
	}
}
