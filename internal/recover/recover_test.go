package recover

import (
	"reflect"
	"strings"
	"testing"

	"prism/internal/sim"
)

func TestEventKindRoundTrip(t *testing.T) {
	for _, k := range []EventKind{HostCrash, TorLinkDown} {
		got, err := ParseEventKind(k.String())
		if err != nil {
			t.Fatalf("ParseEventKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := ParseEventKind("meteor_strike"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestScriptValidate(t *testing.T) {
	ms := sim.Millisecond
	ok := Script{
		{Kind: HostCrash, Host: 3, At: 10 * ms, Until: 25 * ms},
		{Kind: TorLinkDown, Tor: 1, At: 5 * ms}, // never restores
	}
	if err := ok.Validate(8, 2); err != nil {
		t.Fatalf("valid script rejected: %v", err)
	}
	cases := []struct {
		name  string
		s     Script
		racks int
		want  string
	}{
		{"host out of range", Script{{Kind: HostCrash, Host: 8, At: ms}}, 2, "out of range"},
		{"negative host", Script{{Kind: HostCrash, Host: -1, At: ms}}, 2, "out of range"},
		{"tor out of range", Script{{Kind: TorLinkDown, Tor: 2, At: ms}}, 2, "out of range"},
		{"single rack", Script{{Kind: TorLinkDown, Tor: 0, At: ms}}, 1, "multi-rack"},
		{"zero time", Script{{Kind: HostCrash, Host: 0}}, 2, "must be positive"},
		{"recovery before failure", Script{{Kind: HostCrash, Host: 0, At: 2 * ms, Until: ms}}, 2, "not after"},
		{"bad kind", Script{{Kind: EventKind(9), At: ms}}, 2, "unknown event kind"},
	}
	for _, tc := range cases {
		err := tc.s.Validate(8, tc.racks)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestDetectorSuspectsAfterTimeout(t *testing.T) {
	ms := sim.Millisecond
	d := NewDetector(3, ms)
	d.Beat(0, 10*ms)
	d.Beat(1, 10*ms)
	d.Beat(2, 9*ms)
	if got := d.Suspects(10 * ms); got != nil {
		t.Fatalf("fresh hosts suspected: %v", got)
	}
	// Host 2's beat is now 2ms old; 0 and 1 are exactly at the timeout
	// (strict comparison keeps them alive).
	got := d.Suspects(11 * ms)
	if !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Suspects = %v, want [2]", got)
	}
	if !d.Suspected(2) || d.Suspected(0) {
		t.Fatal("Suspected flags wrong")
	}
	// Suspicion is reported once, and is permanent even if beats resume.
	if got := d.Suspects(11 * ms); len(got) != 0 {
		t.Fatalf("host 2 re-reported: %v", got)
	}
	d.Beat(2, 12*ms)
	if !d.Suspected(2) {
		t.Fatal("suspicion cleared by a late beat")
	}
}

// TestDetectorFalseSuspectBoundary pins the strict-timeout contract: a
// heartbeat arriving one tick before the deadline must NOT be suspected,
// and one tick past it must.
func TestDetectorFalseSuspectBoundary(t *testing.T) {
	timeout := sim.Millisecond
	d := NewDetector(2, timeout)
	beat := 5 * sim.Millisecond
	d.Beat(0, beat)
	d.Beat(1, beat-1) // one tick staler

	now := beat + timeout // host 0 exactly at the deadline
	got := d.Suspects(now)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("at the deadline: Suspects = %v, want [1] (host 0 is exactly at timeout, not past it)", got)
	}
	if got := d.Suspects(now + 1); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("one past the deadline: Suspects = %v, want [0]", got)
	}
}

func TestDetectorStaleBeatIgnored(t *testing.T) {
	d := NewDetector(1, sim.Millisecond)
	d.Beat(0, 10*sim.Millisecond)
	d.Beat(0, 4*sim.Millisecond)
	if d.LastBeat(0) != 10*sim.Millisecond {
		t.Fatalf("stale beat regressed LastBeat to %v", d.LastBeat(0))
	}
}

func TestReplaceSpread(t *testing.T) {
	load := []int{5, 1, 3, 2}
	alive := []bool{true, true, true, false}
	got, err := Replace(Spread, make([]bool, 4), load, alive, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Least-loaded among alive: 1(1), 1(2), 2(3→tie, lowest id 1? counts:
	// after two on host1 it holds 3, tying host2; ties break low ID.
	want := []int{1, 1, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Spread = %v, want %v", got, want)
	}
}

func TestReplacePackSkipsDeadAndFull(t *testing.T) {
	load := []int{1, 1, 0}
	alive := []bool{true, false, true}
	got, err := Replace(Pack, make([]bool, 3), load, alive, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Host 0 has one slot, host 1 is dead, host 2 takes the rest.
	want := []int{0, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Pack = %v, want %v", got, want)
	}
}

func TestReplacePriority(t *testing.T) {
	load := []int{0, 0}
	alive := []bool{true, true}
	hi := []bool{true, false, false}
	got, err := Replace(Priority, hi, load, alive, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Best-effort packed onto host 0 first; the hi orphan then spreads to
	// the emptier host 1.
	want := []int{1, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Priority = %v, want %v", got, want)
	}
}

// TestReplaceFullClusterFailsLoudly is the control-plane edge the issue
// calls out: re-placement onto a full surviving set must error, never
// wrap around or overload a host.
func TestReplaceFullClusterFailsLoudly(t *testing.T) {
	load := []int{2, 2, 1}
	alive := []bool{true, true, false} // the host with room is dead
	_, err := Replace(Pack, make([]bool, 1), load, alive, 2)
	if err == nil || !strings.Contains(err.Error(), "exceed surviving capacity") {
		t.Fatalf("full cluster: got %v, want loud capacity error", err)
	}
	// One free slot, two orphans: still loud.
	alive[2] = true
	_, err = Replace(Spread, make([]bool, 2), load, alive, 2)
	if err == nil || !strings.Contains(err.Error(), "exceed surviving capacity") {
		t.Fatalf("over capacity by one: got %v, want loud capacity error", err)
	}
	// Exactly enough capacity succeeds.
	if _, err := Replace(Spread, make([]bool, 1), load, alive, 2); err != nil {
		t.Fatalf("exact fit rejected: %v", err)
	}
}

func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 200 * sim.Microsecond, Max: 2 * sim.Millisecond}
	want := []sim.Time{
		200 * sim.Microsecond,  // attempt 1
		400 * sim.Microsecond,  // 2
		800 * sim.Microsecond,  // 3
		1600 * sim.Microsecond, // 4
		2 * sim.Millisecond,    // 5 clamped
		2 * sim.Millisecond,    // 6 clamped
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := b.Delay(0); got != b.Base {
		t.Errorf("Delay(0) = %v, want base", got)
	}
}

func TestCapacityFactor(t *testing.T) {
	cases := []struct {
		alive, total int
		want         float64
	}{
		{8, 8, 1}, {7, 8, 0.875}, {0, 8, 0}, {4, 0, 1}, {9, 8, 1}, {-1, 8, 0},
	}
	for _, tc := range cases {
		if got := CapacityFactor(tc.alive, tc.total); got != tc.want {
			t.Errorf("CapacityFactor(%d,%d) = %v, want %v", tc.alive, tc.total, got, tc.want)
		}
	}
}
