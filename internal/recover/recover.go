// Package recover holds the deterministic failure-detection and recovery
// primitives the cluster's live control plane is built from: scripted
// fail-stop events (host crashes, ToR-uplink failures), a heartbeat-based
// failure detector whose latency is measured in simulated virtual time,
// a re-placement solver that mirrors the build-time placement policies
// over the surviving hosts, and the retry/backoff and capacity math the
// degraded-mode admission path uses.
//
// Everything here is pure data and pure functions — no engines, no
// events, no RNG — so the package is trivially deterministic and the
// cluster layer decides when (at which barrier epoch) each piece runs.
package recover

import (
	"fmt"
	"sort"

	"prism/internal/sim"
)

// EventKind selects a scripted failure class.
type EventKind int

const (
	// HostCrash fail-stops a host at the wire: nothing enters or leaves
	// it until the event's recovery time. The host's internal state is
	// preserved (a crash-restart with warm caches, not a reimage).
	HostCrash EventKind = iota
	// TorLinkDown severs a rack's ToR→spine uplink: frames queued at or
	// arriving for the uplink are dropped until the link restores.
	TorLinkDown
)

// String names the kind as scenario files spell it.
func (k EventKind) String() string {
	switch k {
	case HostCrash:
		return "host_crash"
	case TorLinkDown:
		return "tor_link_down"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// ParseEventKind resolves a kind by its String name.
func ParseEventKind(name string) (EventKind, error) {
	switch name {
	case "host_crash":
		return HostCrash, nil
	case "tor_link_down":
		return TorLinkDown, nil
	}
	return 0, fmt.Errorf("recover: unknown event kind %q (valid: host_crash, tor_link_down)", name)
}

// Event is one scripted deterministic failure.
type Event struct {
	Kind EventKind
	// Host is the crashed host (HostCrash); Tor the rack whose spine
	// uplink fails (TorLinkDown).
	Host int
	Tor  int
	// At is the failure time; Until the recovery time (0 = never — the
	// failure lasts the rest of the run).
	At    sim.Time
	Until sim.Time
}

// Script is a deterministic failure timeline. Order does not matter; the
// cluster schedules each event at its own time.
type Script []Event

// Validate checks every event against the cluster's shape. hosts and
// racks are the topology bounds; racks < 2 means the fabric has no spine
// uplinks to sever.
func (s Script) Validate(hosts, racks int) error {
	for i, ev := range s {
		switch ev.Kind {
		case HostCrash:
			if ev.Host < 0 || ev.Host >= hosts {
				return fmt.Errorf("recover: script[%d]: host %d out of range [0,%d)", i, ev.Host, hosts)
			}
		case TorLinkDown:
			if racks < 2 {
				return fmt.Errorf("recover: script[%d]: tor_link_down needs a multi-rack fabric (got %d rack)", i, racks)
			}
			if ev.Tor < 0 || ev.Tor >= racks {
				return fmt.Errorf("recover: script[%d]: tor %d out of range [0,%d)", i, ev.Tor, racks)
			}
		default:
			return fmt.Errorf("recover: script[%d]: unknown event kind %d", i, int(ev.Kind))
		}
		if ev.At <= 0 {
			return fmt.Errorf("recover: script[%d]: failure time must be positive, got %v", i, ev.At)
		}
		if ev.Until != 0 && ev.Until <= ev.At {
			return fmt.Errorf("recover: script[%d]: recovery %v not after failure %v", i, ev.Until, ev.At)
		}
	}
	return nil
}

// Detector is the heartbeat failure detector. The cluster pushes every
// host's latest heartbeat timestamp at each barrier checkpoint and asks
// for newly suspected hosts; a host is suspected when its last heartbeat
// is strictly older than the timeout. Suspicion is permanent — recovery
// cordons the host, there is no failback.
type Detector struct {
	timeout   sim.Time
	last      []sim.Time
	suspected []bool
}

// NewDetector builds a detector over hosts with the given suspect
// timeout.
func NewDetector(hosts int, timeout sim.Time) *Detector {
	return &Detector{
		timeout:   timeout,
		last:      make([]sim.Time, hosts),
		suspected: make([]bool, hosts),
	}
}

// Beat records a heartbeat from host at time at. Stale beats (older than
// the recorded one) are ignored, so push order does not matter.
func (d *Detector) Beat(host int, at sim.Time) {
	if at > d.last[host] {
		d.last[host] = at
	}
}

// Suspects returns the hosts newly suspected as of now, in ascending
// order. A host whose last heartbeat arrived exactly timeout ago is NOT
// suspected (the comparison is strict), so a heartbeat landing one tick
// before the deadline keeps the host alive.
func (d *Detector) Suspects(now sim.Time) []int {
	var out []int
	for h := range d.last {
		if d.suspected[h] {
			continue
		}
		if now-d.last[h] > d.timeout {
			d.suspected[h] = true
			out = append(out, h)
		}
	}
	sort.Ints(out)
	return out
}

// Suspected reports whether host has ever been suspected.
func (d *Detector) Suspected(host int) bool { return d.suspected[host] }

// LastBeat returns host's most recent recorded heartbeat.
func (d *Detector) LastBeat(host int) sim.Time { return d.last[host] }

// Policy mirrors the cluster's placement policies for re-placement; the
// cluster maps its own Placement type onto this one (an import cycle
// keeps the two packages from sharing it).
type Policy int

const (
	// Spread re-places onto the least-loaded surviving hosts.
	Spread Policy = iota
	// Pack fills surviving hosts in ID order.
	Pack
	// Priority packs best-effort orphans first, then spreads the
	// high-priority ones across the hosts the packing left emptiest.
	Priority
)

// Replace assigns each orphaned container to a surviving host, applying
// the same deterministic policy semantics as the build-time placer but
// over live state: load is every host's current physical container
// count, alive marks the hosts still accepting work, and hostCap bounds
// per-host occupancy. hi flags each orphan's priority class (Priority
// policy only). It fails loudly — never wraps around — when the
// survivors cannot absorb the orphans.
func Replace(policy Policy, hi []bool, load []int, alive []bool, hostCap int) ([]int, error) {
	hosts := len(load)
	if len(alive) != hosts {
		return nil, fmt.Errorf("recover: %d load entries but %d alive entries", hosts, len(alive))
	}
	free := 0
	for h := 0; h < hosts; h++ {
		if alive[h] && load[h] < hostCap {
			free += hostCap - load[h]
		}
	}
	if len(hi) > free {
		return nil, fmt.Errorf("recover: %d orphaned containers exceed surviving capacity %d (cap %d per host)",
			len(hi), free, hostCap)
	}
	count := make([]int, hosts)
	copy(count, load)
	assign := make([]int, len(hi))
	leastLoaded := func() int {
		best := -1
		for h := 0; h < hosts; h++ {
			if !alive[h] || count[h] >= hostCap {
				continue
			}
			if best < 0 || count[h] < count[best] {
				best = h
			}
		}
		return best
	}
	firstFit := func() int {
		for h := 0; h < hosts; h++ {
			if alive[h] && count[h] < hostCap {
				return h
			}
		}
		return -1
	}
	place := func(i, h int) {
		assign[i] = h
		count[h]++
	}
	switch policy {
	case Spread:
		for i := range hi {
			place(i, leastLoaded())
		}
	case Pack:
		for i := range hi {
			place(i, firstFit())
		}
	case Priority:
		for i, isHi := range hi {
			if !isHi {
				place(i, firstFit())
			}
		}
		for i, isHi := range hi {
			if isHi {
				place(i, leastLoaded())
			}
		}
	default:
		return nil, fmt.Errorf("recover: unknown re-placement policy %d", int(policy))
	}
	return assign, nil
}

// Backoff is the degraded-mode admission retry schedule: exponential
// from Base, clamped at Max.
type Backoff struct {
	Base sim.Time
	Max  sim.Time
}

// Delay returns the wait before retry attempt n (1-based): Base·2^(n-1)
// clamped to Max. Attempts below 1 are treated as 1.
func (b Backoff) Delay(attempt int) sim.Time {
	if attempt < 1 {
		attempt = 1
	}
	d := b.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			return b.Max
		}
	}
	if b.Max > 0 && d > b.Max {
		return b.Max
	}
	return d
}

// CapacityFactor is the surviving-capacity fraction the degraded-mode
// token buckets scale their refill by: alive hosts over total, clamped
// to [0, 1].
func CapacityFactor(alive, total int) float64 {
	if total <= 0 || alive >= total {
		return 1
	}
	if alive <= 0 {
		return 0
	}
	return float64(alive) / float64(total)
}
