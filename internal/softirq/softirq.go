// Package softirq is the unified per-CPU receive datapath: one engine
// owning the softirq raise/reraise machinery, the budget/time-limit
// polling loop, per-device batch polling, stage-transition application,
// delivery scheduling, and the trace/observability hooks — parameterized
// by a small PollPolicy interface.
//
// The paper's contribution (Fig. 2 vs Fig. 7) is a *scheduling policy*
// swap inside this one fixed loop: vanilla NAPI and PRISM differ only in
// how the poll list is ordered, which input queue a poll serves, and
// where a forwarded packet goes. Those decisions are exactly the
// PollPolicy surface; internal/napi and internal/core implement it in
// ~80 lines each, and the paper's ablations (head-insertion-only,
// dual-queue-only) are additional policies over the same runtime.
//
// The runtime guarantees — what no policy can change:
//
//   - IRQ cost accounting, softirq raise at the core's busy horizon and
//     re-raise after the ksoftirqd yield delay (Costs.SoftirqRestart).
//   - The overall softirq budget (Costs.Budget) and per-device batch
//     weight (Costs.BatchSize).
//   - Per-batch overhead, the I-cache stage-switch penalty, handler cost
//     charging, and the core's time ledger.
//   - Verdict semantics: delivery scheduling, drop accounting and
//     attribution, GRO absorption.
//
// What a policy may decide:
//
//   - Poll-list shape and ordering (one list, two lists, head insertion).
//   - Which input queue a device poll serves (low-only or high-first).
//   - Where a forwarded packet goes: the next stage's low or high queue,
//     with tail or head scheduling — or inline run-to-completion
//     (PRISM-sync), in which case the runtime executes the remaining
//     stages synchronously in the current batch.
package softirq

import (
	"prism/internal/cpu"
	"prism/internal/fault"
	"prism/internal/netdev"
	"prism/internal/obs"
	"prism/internal/pkt"
	"prism/internal/sim"
)

// PollObservation describes one iteration of the device polling loop, for
// trace tooling (Fig. 6 tables).
type PollObservation struct {
	Time      sim.Time
	Iteration uint64
	Device    string
	// PollList is the poll-list state after the iteration's re-enqueueing,
	// in poll order, as rendered by the policy (vanilla shows local then
	// global, matching the paper's traces).
	PollList []string
}

// Stats aggregates engine-level counters.
type Stats struct {
	SoftirqRuns uint64 // net_rx_action invocations
	Iterations  uint64 // device polls
	Packets     uint64 // packets processed through handlers
	Delivered   uint64 // packets that reached an application socket
	Dropped     uint64 // packets dropped by handlers or full queues
	// Shed counts the subset of Dropped evicted by the priority-aware
	// overload policy (low-priority victims displaced by high-priority
	// arrivals at a full stage queue).
	Shed uint64
}

// Queue is the dequeue surface of a device input queue; both flavours
// (FIFO low queue, level-ordered high queue) expose it.
type Queue interface {
	Dequeue() *pkt.SKB
	Empty() bool
}

// Route is a policy's decision for one forwarded packet. The zero value
// is the vanilla route: the next stage's low queue, tail scheduling.
type Route struct {
	// Sync runs the next stage inline in the current context
	// (run-to-completion, netif_receive_skb instead of netif_rx); the
	// other fields are ignored.
	Sync bool
	// High enqueues to the next device's high-priority queue instead of
	// its low queue.
	High bool
	// Head asks for head placement: a newly scheduled next device is
	// inserted at the poll-list head (Schedule), an already-listed one is
	// promoted (Promote).
	Head bool
}

// PollPolicy is the scheduling surface of the softirq datapath. The
// engine calls it only from simulation context; implementations need no
// locking. All poll-list state — including clearing Device.InPollList
// when a drained device leaves the list — belongs to the policy; the
// engine owns the InPollList *set* on the arrival/schedule paths (the
// NAPI_STATE_SCHED test-and-set).
type PollPolicy interface {
	// Arrive inserts a newly scheduled device on the hardware-IRQ path.
	// high is the driver's priority hint (NIC priority rings, §VII-1);
	// policies without head insertion ignore it.
	Arrive(dev *netdev.Device, high bool)
	// Begin marks the start of one net_rx_action run (vanilla moves the
	// global POLL_LIST onto its local working list here).
	Begin()
	// Next pops the next device to poll, or nil to end the run.
	Next() *netdev.Device
	// Requeue re-inserts a just-polled device according to its remaining
	// packets, or completes NAPI for it (clears InPollList, re-enabling
	// its IRQs).
	Requeue(dev *netdev.Device)
	// Finish ends the run (vanilla prepends local remnants back onto the
	// global list) and reports whether any device is still scheduled, in
	// which case the engine re-raises the softirq.
	Finish() bool
	// SelectQueue picks the input queue this device poll serves.
	SelectQueue(dev *netdev.Device) Queue
	// Route decides where a forwarded packet goes (see Route).
	Route(skb *pkt.SKB) Route
	// Schedule inserts a device the transition path newly scheduled
	// (napi_schedule from softirq context). head is Route.Head.
	Schedule(dev *netdev.Device, head bool)
	// Promote reorders an already-scheduled device for a head route.
	Promote(dev *netdev.Device)
	// Snapshot renders the poll list for PollObservation traces.
	Snapshot() []string
}

// Engine is the unified per-CPU receive engine. All methods must be
// called from simulation context (inside events).
type Engine struct {
	eng    *sim.Engine
	core   *cpu.Core
	costs  *netdev.Costs
	policy PollPolicy

	pending   bool // softirq raised but not yet started
	running   bool // net_rx_action in progress
	processed int  // packets processed in the current softirq

	// lastStage tracks which device's code last ran on this core, for the
	// I-cache stage-switch penalty (Costs.StageSwitch). PRISM-sync chains
	// switch stages on every packet, which is where their throughput cost
	// comes from.
	lastStage *netdev.Device

	// runSoftirqFn / pollNextFn are the raise and loop continuations,
	// bound once at construction: scheduling a method value through
	// Engine.At would otherwise allocate a fresh closure per batch.
	runSoftirqFn func()
	pollNextFn   func()

	stats Stats

	// OnPoll, when set, is invoked once per device-poll iteration.
	OnPoll func(PollObservation)

	// obs, when set, receives per-packet lifecycle spans and labeled
	// metrics for every stage this engine polls.
	obs *obs.Pipeline
	// fault, when set, injects softirq worker stalls at run start.
	fault *fault.Plane
	// shed enables the priority-aware overload policy on stage
	// transitions: a high-priority packet facing a full low queue evicts
	// the oldest low-priority resident instead of being dropped itself.
	shed bool
}

var _ netdev.Scheduler = (*Engine)(nil)

// New returns an engine running the given poll policy on a core. Each
// engine needs its own policy instance (policies hold per-CPU state).
func New(eng *sim.Engine, core *cpu.Core, costs *netdev.Costs, policy PollPolicy) *Engine {
	e := &Engine{eng: eng, core: core, costs: costs, policy: policy}
	e.runSoftirqFn = e.runSoftirq
	e.pollNextFn = e.pollNext
	return e
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetOnPoll installs the per-iteration trace hook.
func (e *Engine) SetOnPoll(fn func(PollObservation)) { e.OnPoll = fn }

// SetObs installs the observability pipeline (nil disables collection).
func (e *Engine) SetObs(p *obs.Pipeline) { e.obs = p }

// SetFault installs the fault plane (nil disables injection).
func (e *Engine) SetFault(p *fault.Plane) { e.fault = p }

// SetShed enables the priority-aware overload drop policy on stage
// transitions.
func (e *Engine) SetShed(on bool) { e.shed = on }

// Core returns the processing core this engine runs on.
func (e *Engine) Core() *cpu.Core { return e.core }

// Policy returns the engine's poll policy.
func (e *Engine) Policy() PollPolicy { return e.policy }

// NotifyArrival implements netdev.Scheduler: the hardware-IRQ path. If
// the device is already scheduled (NAPI_STATE_SCHED set), its IRQs are
// masked and the packet just sits in the queue; otherwise the top half
// runs, charges its cost, and hands the device to the policy.
func (e *Engine) NotifyArrival(dev *netdev.Device, high bool) {
	if dev.InPollList {
		return
	}
	dev.InPollList = true
	now := e.eng.Now()
	// Top half: charge the hardware interrupt on this core. If the core is
	// mid-softirq the charge extends its busy window (interrupts steal
	// cycles from the softirq); poll iterations re-sync with the ledger.
	start := e.core.Acquire(now)
	e.core.Consume(start, e.costs.IRQ)
	e.policy.Arrive(dev, high)
	e.raise()
}

// raise schedules net_rx_action if it is neither pending nor running.
func (e *Engine) raise() {
	if e.running || e.pending {
		return
	}
	e.pending = true
	e.eng.At(e.core.BusyUntil(), e.runSoftirqFn)
}

// reraise schedules another net_rx_action after the softirq yields
// (ksoftirqd handoff delay).
func (e *Engine) reraise(now sim.Time) {
	if e.running || e.pending {
		return
	}
	e.pending = true
	e.eng.At(now+e.costs.SoftirqRestart, e.runSoftirqFn)
}

// runSoftirq is net_rx_action: open the run and start the polling loop.
func (e *Engine) runSoftirq() {
	e.pending = false
	e.running = true
	e.stats.SoftirqRuns++
	e.processed = 0
	e.policy.Begin()
	if d := e.fault.SoftirqStall(e.eng.Now()); d > 0 {
		// ksoftirqd preempted: the stall occupies the core before any
		// polling happens; pollNext re-syncs with the extended busy window
		// through the ledger.
		start := e.core.Acquire(e.eng.Now())
		e.core.Consume(start, d)
	}
	e.pollNext()
}

// pollNext executes one iteration of the device polling loop (Fig. 2
// lines 11–20 / Fig. 7 lines 6–20), then schedules itself at the batch's
// completion time.
func (e *Engine) pollNext() {
	now := e.eng.Now()
	if e.processed >= e.costs.Budget {
		e.finish(now)
		return
	}
	dev := e.policy.Next()
	if dev == nil {
		e.finish(now)
		return
	}

	// Re-sync with the core ledger: interrupts may have extended the busy
	// window past this event's timestamp.
	start := e.core.BusyUntil()
	if start < now {
		start = e.core.Acquire(now)
	}
	n, total := e.pollDevice(dev, start)
	end := e.core.Consume(start, total)
	e.processed += n
	e.stats.Iterations++

	// A device with remaining packets goes back to the list where the
	// policy wants it; a drained device completes NAPI (IRQs back on).
	e.policy.Requeue(dev)
	e.observe(now, dev)
	e.eng.At(end, e.pollNextFn)
}

// finish is the net_rx_action epilogue: the policy reconciles its lists
// and, if any device is still scheduled, the softirq is re-raised.
func (e *Engine) finish(now sim.Time) {
	again := e.policy.Finish()
	e.running = false
	if again {
		e.reraise(now)
	}
}

// pollDevice is napi_poll: process up to BatchSize packets from the
// policy-selected input queue in queue order, applying stage transitions.
// It returns the packet count and the total CPU time of the batch.
func (e *Engine) pollDevice(dev *netdev.Device, start sim.Time) (int, sim.Time) {
	q := e.policy.SelectQueue(dev)
	if q.Empty() {
		return 0, 0
	}
	dev.Polls++
	t := start + e.costs.BatchOverhead
	count := 0
	for count < e.costs.BatchSize {
		skb := q.Dequeue()
		if skb == nil {
			break
		}
		// Cold instruction cache for this stage's code path; within a
		// batch the working set stays warm, so this fires once per poll —
		// except after a run-to-completion chain, whose last hop left the
		// core in another stage's code (the batching loss of §III-B1).
		if e.lastStage != dev {
			t += e.costs.StageSwitch
			e.lastStage = dev
		}
		hStart := t
		res := dev.Handler.HandlePacket(t, skb)
		t += res.Cost
		skb.Stage++
		count++
		e.stats.Packets++
		dev.Processed++
		if e.obs != nil {
			e.obs.Span(dev.Name, dev.Kind.StageName(), skb.ID, skb.Priority, hStart, t)
		}
		t = e.applyTransition(dev, skb, res, t)
	}
	return count, t - start
}

// applyTransition routes a processed packet where the policy directs:
// enqueue to the next stage (scheduling that device), run the next stage
// inline (run-to-completion chains advance hop by hop in this loop),
// deliver to the application at the packet's completion time, or drop.
// dev is the stage that just processed the packet, for drop attribution.
// It returns the updated batch cursor (inline chains accrue the remaining
// stages' costs).
func (e *Engine) applyTransition(dev *netdev.Device, skb *pkt.SKB, res netdev.Result, t sim.Time) sim.Time {
	cur := dev
	for {
		switch res.Verdict {
		case netdev.VerdictForward:
			next := res.Next
			route := e.policy.Route(skb)
			if route.Sync {
				// Run-to-completion: call the next stage's processing
				// directly in this context (netif_receive_skb instead of
				// netif_rx), bypassing its queue entirely. Every hop
				// changes the instruction-cache working set.
				if e.lastStage != next {
					t += e.costs.StageSwitch
					e.lastStage = next
				}
				hStart := t
				res = next.Handler.HandlePacket(t, skb)
				t += res.Cost
				skb.Stage++
				e.stats.Packets++
				next.Processed++
				if e.obs != nil {
					e.obs.Span(next.Name, next.Kind.StageName(), skb.ID, skb.Priority, hStart, t)
				}
				cur = next
				continue
			}
			var ok bool
			if route.High {
				ok = next.HighQ.Enqueue(skb)
			} else {
				if e.shed && skb.Priority > 0 && next.LowQ.Len() >= next.LowQ.Cap() {
					// Overload shed: displace the oldest low-priority
					// resident rather than drop a prioritized packet at a
					// full queue. Fullness is checked before Enqueue so the
					// queue's reject counter never records a packet that
					// ends up admitted. The victim is accounted as a drop
					// (Shed is the informational subset), keeping packet
					// conservation the same either way.
					if victim := next.LowQ.EvictLowPrio(); victim != nil {
						e.stats.Dropped++
						e.stats.Shed++
						if e.obs != nil {
							e.obs.Drop(t, next.Name, obs.StageShed, victim.ID, victim.Priority)
						}
						victim.Free()
					}
				}
				ok = next.LowQ.Enqueue(skb)
			}
			if !ok {
				e.stats.Dropped++
				if e.obs != nil {
					e.obs.Drop(t, next.Name, next.Kind.StageName(), skb.ID, skb.Priority)
				}
				skb.Free()
				return t
			}
			if next.InPollList {
				if route.Head {
					e.policy.Promote(next)
				}
			} else {
				// napi_schedule from softirq context.
				next.InPollList = true
				e.policy.Schedule(next, route.Head)
			}
			return t
		case netdev.VerdictDeliver:
			skb.Delivered = t
			e.stats.Delivered++
			if res.Sink != nil {
				// Ownership transfers to the sink, which frees the SKB.
				e.eng.CallAt(t, runSink, res.Sink, skb)
			} else if res.Deliver != nil {
				deliver := res.Deliver
				done := t
				e.eng.At(done, func() { deliver(done) })
			}
			return t
		case netdev.VerdictDrop:
			e.stats.Dropped++
			if e.obs != nil {
				e.obs.Drop(t, cur.Name, cur.Kind.StageName(), skb.ID, skb.Priority)
			}
			skb.Free()
			return t
		case netdev.VerdictAbsorbed:
			// GRO merged the frame into an earlier SKB; nothing to route.
			if e.obs != nil {
				e.obs.Absorbed(t, cur.Name, skb.ID, skb.Priority)
			}
			skb.Free()
			return t
		default:
			panic("softirq: handler returned invalid verdict")
		}
	}
}

// runSink is the scheduled-delivery trampoline: a top-level function, so
// CallAt needs no per-packet closure.
func runSink(at sim.Time, a1, a2 any) {
	a1.(netdev.Sink).DeliverSKB(at, a2.(*pkt.SKB))
}

// observe reports one loop iteration to the trace hook.
func (e *Engine) observe(now sim.Time, dev *netdev.Device) {
	if e.OnPoll == nil {
		return
	}
	e.OnPoll(PollObservation{
		Time:      now,
		Iteration: e.stats.Iterations,
		Device:    dev.Name,
		PollList:  e.policy.Snapshot(),
	})
}
