package softirq

import (
	"fmt"
	"sort"

	"prism/internal/prio"
)

// PolicyFactory builds one per-CPU policy instance. The priority database
// carries both flow classification and the batch/sync runtime mode;
// policies that need neither ignore it.
type PolicyFactory func(db *prio.DB) PollPolicy

var registry = map[string]PolicyFactory{}

// Register adds a named policy to the registry. Policy packages call it
// from init(); registering a duplicate name panics, as that is always a
// wiring bug.
func Register(name string, f PolicyFactory) {
	if name == "" || f == nil {
		panic("softirq: Register needs a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("softirq: policy %q registered twice", name))
	}
	registry[name] = f
}

// NewPolicy builds a fresh instance of a registered policy.
func NewPolicy(name string, db *prio.DB) (PollPolicy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("softirq: unknown policy %q (have %v)", name, Policies())
	}
	return f(db), nil
}

// Policies lists the registered policy names, sorted.
func Policies() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
