package softirq_test

import (
	"reflect"
	"testing"

	// Imported for their init() registrations, as overlay does.
	"prism/internal/core"
	"prism/internal/napi"
	"prism/internal/prio"
	"prism/internal/softirq"
)

func TestRegistryNames(t *testing.T) {
	want := []string{core.PolicyDualQ, core.PolicyHeadOnly, core.PolicyName, napi.PolicyName}
	if got := softirq.Policies(); !reflect.DeepEqual(got, want) {
		t.Errorf("Policies() = %v, want %v", got, want)
	}
}

func TestNewPolicy(t *testing.T) {
	db := prio.NewDB()
	db.SetMode(prio.ModeBatch)
	for _, name := range softirq.Policies() {
		pol, err := softirq.NewPolicy(name, db)
		if err != nil || pol == nil {
			t.Errorf("NewPolicy(%q) = %v, %v", name, pol, err)
		}
	}
	if _, err := softirq.NewPolicy("no-such-policy", db); err == nil {
		t.Error("NewPolicy should reject unknown names")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	softirq.Register(napi.PolicyName, func(*prio.DB) softirq.PollPolicy { return nil })
}
