package netdev

import (
	"fmt"

	"prism/internal/pkt"
	"prism/internal/sim"
)

// DriverKind identifies which poll implementation a device uses. The paper
// distinguishes these in §II-A3: physical NICs have vendor NAPI drivers,
// bridges use gro_cells, and veth falls back to the per-CPU backlog.
type DriverKind int

// Driver kinds, in pipeline order for the standard overlay.
const (
	DriverNIC      DriverKind = iota + 1 // vendor NAPI driver (mlx5-like)
	DriverGroCells                       // bridge / tunnel gro_cells NAPI
	DriverBacklog                        // generic per-CPU backlog (veth)
)

// String names the driver kind.
func (k DriverKind) String() string {
	switch k {
	case DriverNIC:
		return "nic"
	case DriverGroCells:
		return "gro_cells"
	case DriverBacklog:
		return "backlog"
	default:
		return fmt.Sprintf("driver(%d)", int(k))
	}
}

// StageName maps the driver kind to the canonical pipeline-stage label
// used by the observability subsystem (the values of internal/obs's
// PipelineStages). It is defined here, as plain strings, so obs can stay
// import-free of netdev while every engine labels spans consistently.
func (k DriverKind) StageName() string {
	switch k {
	case DriverNIC:
		return "nic"
	case DriverGroCells:
		return "bridge"
	case DriverBacklog:
		return "veth"
	default:
		return k.String()
	}
}

// Verdict says what happens to a packet after a stage processes it.
type Verdict int

// Verdicts.
const (
	// VerdictForward hands the packet to Result.Next's input queue — the
	// stage transition (gro_cells_receive / netif_rx analogue).
	VerdictForward Verdict = iota + 1
	// VerdictDeliver copies the payload to the application: Result.Deliver
	// runs at the packet's completion time.
	VerdictDeliver
	// VerdictDrop discards the packet (no destination, parse failure).
	VerdictDrop
	// VerdictAbsorbed means GRO merged this frame into a previously
	// forwarded SKB; it consumes only the merge cost and goes nowhere.
	VerdictAbsorbed
)

// Sink consumes a delivered packet at its completion time. DeliverSKB takes
// ownership of the SKB — the implementation must Free it (directly or after
// detaching its frame buffer) — which is what lets delivery scheduling stay
// allocation-free: the softirq passes a long-lived Sink plus the SKB through
// sim.CallAt instead of building a per-packet closure.
type Sink interface {
	DeliverSKB(at sim.Time, skb *pkt.SKB)
}

// Result is the outcome of processing one packet at one stage.
type Result struct {
	Verdict Verdict
	// Cost is the CPU time this stage consumed for this packet.
	Cost sim.Time
	// Next is the device receiving the packet when Verdict is
	// VerdictForward.
	Next *Device
	// Sink receives the packet at its stage-completion time when Verdict
	// is VerdictDeliver — the allocation-free delivery path. It takes SKB
	// ownership.
	Sink Sink
	// Deliver is the legacy closure form of VerdictDeliver, used where a
	// per-packet callback is genuinely needed (synthetic test handlers).
	// Ignored when Sink is set. The callback must not reenter the engine
	// synchronously; it may schedule events.
	Deliver func(now sim.Time)
}

// Handler is a stage's packet processor: the protocol work a device's poll
// function performs on each packet (decap, FDB lookup, IP/UDP receive...).
// Handlers run logically inside the softirq; they see and mutate the SKB.
type Handler interface {
	HandlePacket(now sim.Time, s *pkt.SKB) Result
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(now sim.Time, s *pkt.SKB) Result

// HandlePacket calls f.
func (f HandlerFunc) HandlePacket(now sim.Time, s *pkt.SKB) Result { return f(now, s) }

// Device is a NAPI-pollable network device: physical NIC, virtual bridge,
// or veth/backlog. It owns its input packet queue(s) and its stage handler.
//
// LowQ is the device's ordinary input queue — the only one vanilla NAPI
// has. HighQ is the additional high-priority queue PRISM adds (§III-A);
// vanilla never touches it. The physical NIC's HighQ is present but unused,
// reflecting the paper's stage-1 limitation (§IV-D): priority cannot be
// differentiated inside the vendor ring.
type Device struct {
	Name    string
	Kind    DriverKind
	Handler Handler

	// HighQ holds priority levels >= 1 (multi-level per §VII-3); LowQ is
	// the best-effort queue and the only one vanilla NAPI uses.
	HighQ *PrioQueue
	LowQ  *Queue

	// InPollList tracks NAPI_STATE_SCHED: whether the device is currently
	// on a poll list (set by the engines; also gates IRQ raising at the
	// NIC, since NAPI disables device IRQs while scheduled).
	InPollList bool

	// Polls counts napi_poll invocations; Processed counts packets
	// processed through this device's handler.
	Polls     uint64
	Processed uint64
}

// NewDevice returns a device with the given queue capacities.
func NewDevice(name string, kind DriverKind, handler Handler, queueCap int) *Device {
	return &Device{
		Name:    name,
		Kind:    kind,
		Handler: handler,
		HighQ:   NewPrioQueue(queueCap),
		LowQ:    NewQueue(queueCap),
	}
}

// HasPackets reports whether either input queue is non-empty.
func (d *Device) HasPackets() bool { return !d.HighQ.Empty() || !d.LowQ.Empty() }

// QueuedPackets returns the total number of queued packets.
func (d *Device) QueuedPackets() int { return d.HighQ.Len() + d.LowQ.Len() }

// String returns the device name.
func (d *Device) String() string { return d.Name }

// Scheduler is the interface a receive engine exposes to IRQ-context code
// (the NIC arrival path) and to the traffic layer: "this device has new
// packets". It is the napi_schedule / netif_rx entry point.
type Scheduler interface {
	// NotifyArrival tells the engine dev received packets outside softirq
	// context. high hints at the packet priority where the caller knows it
	// (virtual devices); the NIC always passes false per the stage-1
	// limitation.
	NotifyArrival(dev *Device, high bool)
}
