package netdev

import (
	"testing"
	"testing/quick"

	"prism/internal/pkt"
)

func TestPrioQueueSingleLevelFIFO(t *testing.T) {
	q := NewPrioQueue(16)
	for i := uint64(0); i < 5; i++ {
		if !q.Enqueue(&pkt.SKB{ID: i, Priority: 1}) {
			t.Fatal("enqueue failed")
		}
	}
	for i := uint64(0); i < 5; i++ {
		s := q.Dequeue()
		if s == nil || s.ID != i {
			t.Fatalf("dequeue %d = %v", i, s)
		}
	}
	if !q.Empty() || q.Dequeue() != nil {
		t.Error("queue not drained")
	}
}

func TestPrioQueueLevelOrdering(t *testing.T) {
	q := NewPrioQueue(16)
	q.Enqueue(&pkt.SKB{ID: 1, Priority: 1})
	q.Enqueue(&pkt.SKB{ID: 2, Priority: 3})
	q.Enqueue(&pkt.SKB{ID: 3, Priority: 2})
	q.Enqueue(&pkt.SKB{ID: 4, Priority: 3})
	want := []uint64{2, 4, 3, 1} // level 3 first (FIFO within), then 2, then 1
	if q.Peek().ID != 2 {
		t.Errorf("Peek = %d", q.Peek().ID)
	}
	for _, id := range want {
		if s := q.Dequeue(); s.ID != id {
			t.Fatalf("got %d, want %d", s.ID, id)
		}
	}
}

func TestPrioQueueZeroPriorityClamped(t *testing.T) {
	q := NewPrioQueue(4)
	// Priority 0 and negative clamp to level 1; above max clamps to max.
	q.Enqueue(&pkt.SKB{ID: 1, Priority: 0})
	q.Enqueue(&pkt.SKB{ID: 2, Priority: 99})
	if s := q.Dequeue(); s.ID != 2 {
		t.Errorf("clamped max level not served first: %d", s.ID)
	}
	if s := q.Dequeue(); s.ID != 1 {
		t.Errorf("clamped min level lost: %v", s)
	}
}

func TestPrioQueueOverflowPerLevel(t *testing.T) {
	q := NewPrioQueue(2)
	q.Enqueue(&pkt.SKB{Priority: 1})
	q.Enqueue(&pkt.SKB{Priority: 1})
	if q.Enqueue(&pkt.SKB{Priority: 1}) {
		t.Error("level-1 overflow accepted")
	}
	if q.Dropped != 1 {
		t.Errorf("Dropped = %d", q.Dropped)
	}
	// Another level still has room.
	if !q.Enqueue(&pkt.SKB{Priority: 2}) {
		t.Error("level-2 enqueue failed")
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestPrioQueueCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPrioQueue(0) did not panic")
		}
	}()
	NewPrioQueue(0)
}

// Property: dequeue order is monotone non-increasing in level, FIFO within
// a level, and conserves packets.
func TestPrioQueueOrderProperty(t *testing.T) {
	prop := func(levels []uint8) bool {
		q := NewPrioQueue(len(levels) + 1)
		for i, l := range levels {
			q.Enqueue(&pkt.SKB{ID: uint64(i), Priority: int(l%3 + 1)})
		}
		lastLevel := MaxPriorityLevels + 1
		lastIDByLevel := map[int]uint64{}
		n := 0
		for {
			s := q.Dequeue()
			if s == nil {
				break
			}
			n++
			if s.Priority > lastLevel {
				return false // level went up
			}
			lastLevel = s.Priority
			if prev, ok := lastIDByLevel[s.Priority]; ok && s.ID <= prev {
				return false // FIFO within level violated
			}
			lastIDByLevel[s.Priority] = s.ID
		}
		return n == len(levels)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
