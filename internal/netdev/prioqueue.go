package netdev

import "prism/internal/pkt"

// MaxPriorityLevels bounds the number of distinct high-priority classes
// (§VII-3 of the paper discusses generalizing beyond two levels; this
// implementation supports levels 1..MaxPriorityLevels, with 0 remaining
// the best-effort class served from a device's LowQ).
const MaxPriorityLevels = 8

// PrioQueue is the high-priority input queue of a device, generalized to
// multiple levels: a FIFO per level, dequeued highest-level-first. With
// every packet at level 1 it behaves exactly like the paper's single
// high-priority queue.
type PrioQueue struct {
	buckets [MaxPriorityLevels]*Queue
	cap     int

	// Dropped and Enqueued aggregate across levels.
	Dropped  uint64
	Enqueued uint64
}

// NewPrioQueue returns an empty multi-level queue; each level holds at
// most capacity packets.
func NewPrioQueue(capacity int) *PrioQueue {
	if capacity <= 0 {
		panic("netdev: prio queue capacity must be positive")
	}
	return &PrioQueue{cap: capacity}
}

// level clamps an SKB's priority into a bucket index (level 1 .. Max).
func level(s *pkt.SKB) int {
	l := s.Priority
	if l < 1 {
		l = 1
	}
	if l > MaxPriorityLevels {
		l = MaxPriorityLevels
	}
	return l - 1
}

// Enqueue appends s to its level's FIFO, reporting false on overflow.
func (q *PrioQueue) Enqueue(s *pkt.SKB) bool {
	i := level(s)
	if q.buckets[i] == nil {
		q.buckets[i] = NewQueue(q.cap)
	}
	if !q.buckets[i].Enqueue(s) {
		q.Dropped++
		return false
	}
	q.Enqueued++
	return true
}

// Dequeue removes and returns the oldest packet of the highest non-empty
// level, or nil.
func (q *PrioQueue) Dequeue() *pkt.SKB {
	for i := MaxPriorityLevels - 1; i >= 0; i-- {
		if b := q.buckets[i]; b != nil && !b.Empty() {
			return b.Dequeue()
		}
	}
	return nil
}

// Peek returns the packet Dequeue would return, without removing it.
func (q *PrioQueue) Peek() *pkt.SKB {
	for i := MaxPriorityLevels - 1; i >= 0; i-- {
		if b := q.buckets[i]; b != nil && !b.Empty() {
			return b.Peek()
		}
	}
	return nil
}

// Len returns the total queued packets across levels.
func (q *PrioQueue) Len() int {
	n := 0
	for _, b := range q.buckets {
		if b != nil {
			n += b.Len()
		}
	}
	return n
}

// Empty reports whether no packets are queued at any level.
func (q *PrioQueue) Empty() bool { return q.Len() == 0 }
