package netdev

import "prism/internal/sim"

// Costs is the central CPU cost model: every virtual-time charge in the
// simulated kernel comes from one of these constants. The defaults are
// calibrated so that the two absolute anchors the paper reports hold —
// a single processing core sustains ~400 kpps through the overlay in
// vanilla mode and ~300 kpps in PRISM-sync mode (Fig. 8) — and every other
// result is left to emerge from the scheduling algorithms.
type Costs struct {
	// NICPacket is stage 1: driver RX, SKB allocation, priority
	// classification and VXLAN identification/decapsulation.
	NICPacket sim.Time
	// BridgePacket is stage 2: gro_cells receive, FDB lookup, forwarding.
	BridgePacket sim.Time
	// VethPacket is stage 3: backlog processing, inner IP/transport
	// receive, and socket enqueue.
	VethPacket sim.Time
	// HostPacket is the single-stage host-network path: IP/transport
	// receive and socket enqueue directly from the NIC poll.
	HostPacket sim.Time

	// BatchOverhead is the fixed cost of one napi_poll invocation: softirq
	// dispatch and list/queue manipulation. Amortized over up to BatchSize
	// packets — part of the batching benefit of §III-B.
	BatchOverhead sim.Time
	// StageSwitch is the instruction-cache penalty paid when consecutive
	// packet processing on a core changes stage (device): §III-B notes
	// that "batching also helps to improve the L1 instruction cache
	// locality". Vanilla pays it roughly once per batch per stage;
	// PRISM-sync's run-to-completion chains pay it on *every* packet at
	// *every* stage, which is exactly why its per-core throughput drops to
	// ~300 kpps (Fig. 8).
	StageSwitch sim.Time
	// IRQ is the hardware-interrupt top half.
	IRQ sim.Time
	// SoftirqRestart is the scheduling delay before a re-raised softirq
	// resumes after net_rx_action exhausts its budget (ksoftirqd handoff).
	SoftirqRestart sim.Time
	// GROPacket is the per-packet cost of the GRO merge attempt at the NIC
	// stage; merged TCP segments then traverse later stages as one SKB.
	GROPacket sim.Time

	// AppWakeup is the latency from socket enqueue to the blocked
	// application thread running (scheduler wakeup + cross-core IPI).
	AppWakeup sim.Time
	// AppTx is the cost of sending one reply through the egress stack,
	// charged to the application core (the egress path is outside PRISM's
	// scope, §VII).
	AppTx sim.Time

	// WireLatency is the one-way point-to-point link latency, including
	// both NICs' fixed forwarding delay.
	WireLatency sim.Time
	// LinkBandwidthBps is the link speed for serialization delay.
	LinkBandwidthBps int64

	// BatchSize is the NAPI per-device batch ("weight"), 64 in Linux.
	BatchSize int
	// Budget is the NAPI softirq budget, 300 in Linux.
	Budget int
}

// DefaultCosts returns the calibrated model for the paper's testbed
// (Xeon Silver 4114 @2.2 GHz, ConnectX-5 100 GbE, Linux 5.4).
func DefaultCosts() *Costs {
	return &Costs{
		NICPacket:    900 * sim.Nanosecond,
		BridgePacket: 700 * sim.Nanosecond,
		VethPacket:   800 * sim.Nanosecond,
		HostPacket:   1600 * sim.Nanosecond,

		BatchOverhead:  700 * sim.Nanosecond,
		StageSwitch:    300 * sim.Nanosecond,
		IRQ:            1200 * sim.Nanosecond,
		SoftirqRestart: 1500 * sim.Nanosecond,
		GROPacket:      150 * sim.Nanosecond,

		AppWakeup: 4 * sim.Microsecond,
		AppTx:     2500 * sim.Nanosecond,

		WireLatency:      2 * sim.Microsecond,
		LinkBandwidthBps: 100e9,

		BatchSize: 64,
		Budget:    300,
	}
}

// OverlayPerPacket returns the summed per-packet protocol cost of the
// three-stage overlay path, excluding batch overheads.
func (c *Costs) OverlayPerPacket() sim.Time {
	return c.NICPacket + c.BridgePacket + c.VethPacket
}

// Serialization returns the wire serialization delay of a frame of n bytes.
func (c *Costs) Serialization(n int) sim.Time {
	if c.LinkBandwidthBps <= 0 {
		return 0
	}
	return sim.Time(int64(n) * 8 * int64(sim.Second) / c.LinkBandwidthBps)
}
