// Package netdev defines the machinery shared by both receive engines
// (vanilla NAPI in internal/napi and PRISM in internal/core): packet
// queues, the network-device abstraction, per-stage processing results,
// and the central CPU cost model.
package netdev

import "prism/internal/pkt"

// Queue is a bounded FIFO of SKBs with drop accounting. It models a NIC RX
// descriptor ring, the per-CPU backlog input_pkt_queue, or a gro_cells
// queue, depending on capacity.
type Queue struct {
	items []*pkt.SKB
	head  int
	cap   int

	// Dropped counts enqueue attempts rejected because the queue was full
	// (ring overrun / netdev_max_backlog drop).
	Dropped uint64
	// Enqueued counts accepted packets.
	Enqueued uint64
}

// NewQueue returns an empty queue holding at most capacity packets.
// Capacity must be positive.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		panic("netdev: queue capacity must be positive")
	}
	return &Queue{cap: capacity}
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return q.cap }

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.items) - q.head }

// Empty reports whether the queue holds no packets.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Enqueue appends s, reporting false (and counting a drop) if full.
func (q *Queue) Enqueue(s *pkt.SKB) bool {
	if q.Len() >= q.cap {
		q.Dropped++
		return false
	}
	q.items = append(q.items, s)
	q.Enqueued++
	return true
}

// Dequeue removes and returns the oldest packet, or nil if empty.
func (q *Queue) Dequeue() *pkt.SKB {
	if q.Empty() {
		return nil
	}
	s := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	// Compact once the dead prefix dominates, to bound memory.
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return s
}

// EvictLowPrio removes and returns the oldest queued low-priority packet
// (Priority 0), or nil when every queued packet is prioritized. It backs
// the overload shed policy: under pressure a high-priority arrival evicts
// a low-priority victim instead of being rejected itself. The caller
// accounts the eviction (it is not an enqueue-reject, so Dropped is not
// touched) and owns the returned SKB.
func (q *Queue) EvictLowPrio() *pkt.SKB {
	for i := q.head; i < len(q.items); i++ {
		s := q.items[i]
		if s.Priority != 0 {
			continue
		}
		copy(q.items[i:], q.items[i+1:])
		q.items[len(q.items)-1] = nil
		q.items = q.items[:len(q.items)-1]
		return s
	}
	return nil
}

// Peek returns the oldest packet without removing it, or nil if empty.
func (q *Queue) Peek() *pkt.SKB {
	if q.Empty() {
		return nil
	}
	return q.items[q.head]
}
