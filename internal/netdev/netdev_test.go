package netdev

import (
	"testing"
	"testing/quick"

	"prism/internal/pkt"
	"prism/internal/sim"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(10)
	for i := uint64(0); i < 5; i++ {
		if !q.Enqueue(&pkt.SKB{ID: i}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Len() != 5 {
		t.Errorf("Len = %d", q.Len())
	}
	if q.Peek().ID != 0 {
		t.Errorf("Peek ID = %d", q.Peek().ID)
	}
	for i := uint64(0); i < 5; i++ {
		s := q.Dequeue()
		if s == nil || s.ID != i {
			t.Fatalf("dequeue %d = %v", i, s)
		}
	}
	if !q.Empty() || q.Dequeue() != nil || q.Peek() != nil {
		t.Error("drained queue not empty")
	}
}

func TestQueueDropsWhenFull(t *testing.T) {
	q := NewQueue(2)
	q.Enqueue(&pkt.SKB{ID: 1})
	q.Enqueue(&pkt.SKB{ID: 2})
	if q.Enqueue(&pkt.SKB{ID: 3}) {
		t.Error("enqueue into full queue succeeded")
	}
	if q.Dropped != 1 {
		t.Errorf("Dropped = %d", q.Dropped)
	}
	if q.Enqueued != 2 {
		t.Errorf("Enqueued = %d", q.Enqueued)
	}
	q.Dequeue()
	if !q.Enqueue(&pkt.SKB{ID: 4}) {
		t.Error("enqueue after dequeue failed")
	}
}

func TestQueueCompaction(t *testing.T) {
	q := NewQueue(1 << 20)
	// Drive enough churn to trigger compaction and verify order survives.
	next := uint64(0)
	var expect uint64
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			q.Enqueue(&pkt.SKB{ID: next})
			next++
		}
		for i := 0; i < 90; i++ {
			s := q.Dequeue()
			if s.ID != expect {
				t.Fatalf("order broken: got %d want %d", s.ID, expect)
			}
			expect++
		}
	}
	for !q.Empty() {
		s := q.Dequeue()
		if s.ID != expect {
			t.Fatalf("tail order broken: got %d want %d", s.ID, expect)
		}
		expect++
	}
	if expect != next {
		t.Errorf("drained %d packets, enqueued %d", expect, next)
	}
}

func TestQueueZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewQueue(0) did not panic")
		}
	}()
	NewQueue(0)
}

// Property: queue preserves FIFO order and conserves packets under any
// enqueue/dequeue interleaving.
func TestQueueConservationProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		q := NewQueue(64)
		var in, out uint64
		for _, enq := range ops {
			if enq {
				if q.Enqueue(&pkt.SKB{ID: in}) {
					in++
				}
			} else if s := q.Dequeue(); s != nil {
				if s.ID != out {
					return false
				}
				out++
			}
		}
		return int(in-out) == q.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeviceBasics(t *testing.T) {
	h := HandlerFunc(func(now sim.Time, s *pkt.SKB) Result {
		return Result{Verdict: VerdictDrop, Cost: 100}
	})
	d := NewDevice("eth0", DriverNIC, h, 16)
	if d.HasPackets() {
		t.Error("new device has packets")
	}
	d.LowQ.Enqueue(&pkt.SKB{ID: 1})
	if !d.HasPackets() || d.QueuedPackets() != 1 {
		t.Error("LowQ packet not visible")
	}
	d.HighQ.Enqueue(&pkt.SKB{ID: 2})
	if d.QueuedPackets() != 2 {
		t.Error("HighQ packet not counted")
	}
	if d.String() != "eth0" {
		t.Errorf("String = %q", d.String())
	}
	res := d.Handler.HandlePacket(0, &pkt.SKB{})
	if res.Verdict != VerdictDrop || res.Cost != 100 {
		t.Errorf("handler result = %+v", res)
	}
}

func TestDriverKindString(t *testing.T) {
	tests := []struct {
		k    DriverKind
		want string
	}{
		{DriverNIC, "nic"},
		{DriverGroCells, "gro_cells"},
		{DriverBacklog, "backlog"},
		{DriverKind(9), "driver(9)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestDefaultCostsAnchors(t *testing.T) {
	c := DefaultCosts()
	// Anchor 1: vanilla overlay per-packet cost with full batching
	// amortization (one batch overhead + one stage switch per stage per 64
	// packets) sustains roughly 400 kpps on one core.
	perPkt := c.OverlayPerPacket() + 3*(c.BatchOverhead+c.StageSwitch)/sim.Time(c.BatchSize)
	kpps := 1e9 / float64(perPkt) / 1e3
	if kpps < 380 || kpps > 450 {
		t.Errorf("vanilla anchor = %.0f kpps, want ~400", kpps)
	}
	// Anchor 2: PRISM-sync forfeits batching — every packet switches the
	// instruction cache through all three stages: ~300 kpps.
	syncPerPkt := c.OverlayPerPacket() + 3*c.StageSwitch +
		(c.BatchOverhead+c.StageSwitch)/sim.Time(c.BatchSize)
	syncKpps := 1e9 / float64(syncPerPkt) / 1e3
	if syncKpps < 270 || syncKpps > 330 {
		t.Errorf("sync anchor = %.0f kpps, want ~300", syncKpps)
	}
	if kpps <= syncKpps {
		t.Error("vanilla not faster than sync in raw throughput")
	}
}

func TestCostsSerialization(t *testing.T) {
	c := DefaultCosts()
	// 1500B at 100Gbps = 120ns.
	if got := c.Serialization(1500); got != 120 {
		t.Errorf("Serialization(1500) = %v, want 120ns", got)
	}
	c.LinkBandwidthBps = 0
	if got := c.Serialization(1500); got != 0 {
		t.Errorf("Serialization with no bandwidth = %v", got)
	}
}
