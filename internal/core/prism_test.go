package core_test

import (
	"testing"

	"prism/internal/core"
	"prism/internal/cpu"
	"prism/internal/napi"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/testnet"
)

func newPrism(mode prio.Mode) (*sim.Engine, *core.Engine, *testnet.Chain, *prio.DB) {
	eng := sim.NewEngine(1)
	cr := cpu.NewCore(0, nil)
	db := prio.NewDB()
	db.SetMode(mode)
	e := core.NewEngine(eng, cr, testnet.TestCosts(), db)
	chain := testnet.NewChain(100, 4096)
	return eng, e, chain, db
}

func TestPrismDeliversAllPackets(t *testing.T) {
	for _, mode := range []prio.Mode{prio.ModeBatch, prio.ModeSync} {
		t.Run(mode.String(), func(t *testing.T) {
			eng, e, chain, _ := newPrism(mode)
			eng.At(0, func() {
				chain.Inject(e, 100, false, 0, 0)
				chain.Inject(e, 100, true, 0, 1000)
			})
			if err := eng.RunUntilIdle(); err != nil {
				t.Fatal(err)
			}
			if len(chain.Delivered) != 200 {
				t.Fatalf("delivered %d, want 200", len(chain.Delivered))
			}
			seen := make(map[uint64]bool, 200)
			for _, d := range chain.Delivered {
				if seen[d.SKB.ID] {
					t.Fatalf("duplicate delivery of %d", d.SKB.ID)
				}
				seen[d.SKB.ID] = true
			}
			st := e.Stats()
			if st.Delivered != 200 || st.Dropped != 0 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

// TestPrismPollOrderStreamlined reproduces Fig. 6b: with a saturated eth
// queue of high-priority packets, PRISM polls devices strictly in pipeline
// order: eth, br, veth, eth, br, veth.
func TestPrismPollOrderStreamlined(t *testing.T) {
	eng, e, chain, _ := newPrism(prio.ModeBatch)
	var order []string
	var lists [][]string
	e.OnPoll = func(o napi.PollObservation) {
		order = append(order, o.Device)
		lists = append(lists, o.PollList)
	}
	eng.At(0, func() { chain.Inject(e, 64*5, true, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"eth", "br", "veth", "eth", "br", "veth"}
	if len(order) < len(want) {
		t.Fatalf("only %d iterations: %v", len(order), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("poll order = %v, want prefix %v (Fig. 6b)", order[:len(want)], want)
		}
	}
	// Fig. 6b poll-list snapshots: [br eth], [veth eth], [eth].
	assertList(t, "iter1", lists[0], "br", "eth")
	assertList(t, "iter2", lists[1], "veth", "eth")
	assertList(t, "iter3", lists[2], "eth")
}

func assertList(t *testing.T, label string, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s poll list = %v, want %v", label, got, want)
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s poll list = %v, want %v", label, got, want)
			return
		}
	}
}

// TestPrismBatchPreemption: a high-priority packet arriving behind a pile
// of low-priority traffic overtakes it at every stage past the NIC ring.
func TestPrismBatchPreemption(t *testing.T) {
	eng, e, chain, _ := newPrism(prio.ModeBatch)
	eng.At(0, func() {
		chain.Inject(e, 63, false, 0, 0) // fills most of the first batch
		chain.Eth.LowQ.Enqueue(&pkt.SKB{ID: 999, HighPriority: true, Arrived: 0})
		chain.Inject(e, 192, false, 0, 100) // three more batches behind
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// The high-priority packet is #64 in the ring (stage-1 FIFO limitation)
	// but must be delivered before every low-priority packet that shared
	// its NIC batch and before all later batches.
	pos := -1
	for i, d := range chain.Delivered {
		if d.SKB.ID == 999 {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("high-priority packet lost")
	}
	if pos != 0 {
		t.Errorf("high-priority packet delivered at position %d, want 0 (batch-level preemption)", pos)
	}
}

// TestPrismSyncRunToCompletion: in sync mode a high-priority packet is
// processed through all stages inside the stage-1 batch — its delivery
// precedes even the completion of that batch's remaining packets, and the
// downstream devices are never polled for it.
func TestPrismSyncRunToCompletion(t *testing.T) {
	eng, e, chain, _ := newPrism(prio.ModeSync)
	var order []string
	e.OnPoll = func(o napi.PollObservation) { order = append(order, o.Device) }
	eng.At(0, func() { chain.Inject(e, 64, true, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 64 {
		t.Fatalf("delivered %d, want 64", len(chain.Delivered))
	}
	// Only the eth device is ever polled: the paper's "only one device in
	// the poll list" property of PRISM-sync.
	for _, d := range order {
		if d != "eth" {
			t.Fatalf("device %s polled in sync mode; poll order %v", d, order)
		}
	}
	// Every packet went through all three stages.
	for _, d := range chain.Delivered {
		if d.SKB.Stage != 3 {
			t.Errorf("packet %d completed %d stages", d.SKB.ID, d.SKB.Stage)
		}
	}
	st := e.Stats()
	if st.Packets != 64*3 {
		t.Errorf("stats.Packets = %d, want 192", st.Packets)
	}
}

// TestPrismSyncFirstDeliveryBeatsBatch: the first high-priority packet is
// delivered after roughly one packet's full pipeline cost, not after the
// whole batch clears a stage.
func TestPrismSyncFirstDeliveryBeatsBatch(t *testing.T) {
	eng, e, chain, _ := newPrism(prio.ModeSync)
	eng.At(0, func() { chain.Inject(e, 64, true, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	first := chain.Delivered[0]
	if first.SKB.ID != 0 {
		t.Fatalf("first delivery ID = %d", first.SKB.ID)
	}
	// IRQ 500 + batch overhead 1000 + eth stage switch 50 + 3 stages x 100
	// + 2 sync stage switches x 50 = 1950.
	want := sim.Time(500 + 1000 + 50 + 300 + 100)
	if first.At != want {
		t.Errorf("first sync delivery at %v, want %v", first.At, want)
	}

	// Compare against batch mode: first delivery waits for the whole eth
	// batch to finish before the br/veth stages run.
	engB, eB, chainB, _ := newPrism(prio.ModeBatch)
	engB.At(0, func() { chainB.Inject(eB, 64, true, 0, 0) })
	if err := engB.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if chainB.Delivered[0].At <= first.At {
		t.Errorf("batch-mode first delivery (%v) not slower than sync (%v)",
			chainB.Delivered[0].At, first.At)
	}
}

// TestPrismLowPriorityMatchesVanillaDeliverySet: with no high-priority
// traffic, PRISM delivers exactly the same packet set as vanilla.
func TestPrismLowPriorityMatchesVanillaDeliverySet(t *testing.T) {
	eng, e, chain, _ := newPrism(prio.ModeBatch)
	eng.At(0, func() { chain.Inject(e, 300, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 300 {
		t.Fatalf("delivered %d, want 300", len(chain.Delivered))
	}
	for i, d := range chain.Delivered {
		if d.SKB.ID != uint64(i) {
			t.Fatalf("low-priority FIFO violated at %d: ID %d", i, d.SKB.ID)
		}
	}
}

// TestPrismHighBeforeLowWithinDevice: when both queues hold packets the
// high queue is served exclusively first.
func TestPrismHighBeforeLowWithinDevice(t *testing.T) {
	eng, e, chain, _ := newPrism(prio.ModeBatch)
	eng.At(0, func() {
		// Load br's queues directly to isolate napi_poll behaviour.
		for i := uint64(0); i < 10; i++ {
			chain.Br.LowQ.Enqueue(&pkt.SKB{ID: i})
		}
		for i := uint64(100); i < 105; i++ {
			chain.Br.HighQ.Enqueue(&pkt.SKB{ID: i, HighPriority: true})
		}
		e.NotifyArrival(chain.Br, true)
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 15 {
		t.Fatalf("delivered %d, want 15", len(chain.Delivered))
	}
	for i := 0; i < 5; i++ {
		if !chain.Delivered[i].SKB.HighPriority {
			t.Errorf("delivery %d is low priority; high queue not served first", i)
		}
	}
}

// TestPrismBudgetBoundsSoftirq mirrors the vanilla budget test.
func TestPrismBudgetBoundsSoftirq(t *testing.T) {
	eng := sim.NewEngine(1)
	cr := cpu.NewCore(0, nil)
	db := prio.NewDB()
	db.SetMode(prio.ModeBatch)
	costs := testnet.TestCosts()
	costs.Budget = 100
	e := core.NewEngine(eng, cr, costs, db)
	chain := testnet.NewChain(100, 4096)
	eng.At(0, func() { chain.Inject(e, 400, false, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 400 {
		t.Fatalf("delivered %d, want 400", len(chain.Delivered))
	}
	if e.Stats().SoftirqRuns < 8 {
		t.Errorf("SoftirqRuns = %d, want several with tight budget", e.Stats().SoftirqRuns)
	}
}

// TestPrismModeSwitchAtRuntime: flipping the proc-style mode variable
// changes behaviour without rebuilding the pipeline.
func TestPrismModeSwitchAtRuntime(t *testing.T) {
	eng, e, chain, db := newPrism(prio.ModeBatch)
	eng.At(0, func() { chain.Inject(e, 10, true, 0, 0) })
	eng.At(sim.Second, func() {
		db.SetMode(prio.ModeSync)
		chain.Inject(e, 10, true, eng.Now(), 100)
	})
	var syncOrder []string
	eng.At(sim.Second-1, func() {
		e.OnPoll = func(o napi.PollObservation) { syncOrder = append(syncOrder, o.Device) }
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 20 {
		t.Fatalf("delivered %d, want 20", len(chain.Delivered))
	}
	for _, d := range syncOrder {
		if d != "eth" {
			t.Fatalf("sync phase polled %v", syncOrder)
		}
	}
}

// TestPrismQueueOverflowDropsHigh: even high-priority packets drop when
// the next stage's high queue overflows.
func TestPrismQueueOverflowDropsHigh(t *testing.T) {
	eng := sim.NewEngine(1)
	cr := cpu.NewCore(0, nil)
	db := prio.NewDB()
	db.SetMode(prio.ModeBatch)
	costs := testnet.TestCosts()
	e := core.NewEngine(eng, cr, costs, db)
	chain := testnet.NewChain(100, 40) // tiny queues downstream
	eng.At(0, func() {
		for i := uint64(0); i < 40; i++ {
			chain.Eth.LowQ.Enqueue(&pkt.SKB{ID: i, HighPriority: true})
		}
		e.NotifyArrival(chain.Eth, false)
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// 40 packets move from eth into br.HighQ (cap 40): all fit; then from
	// br to veth similarly — no drops expected in this sizing, but the
	// engine must not wedge. Now overload: rerun with 80.
	if len(chain.Delivered) != 40 {
		t.Fatalf("delivered %d, want 40", len(chain.Delivered))
	}
}

func BenchmarkPrismPipelineBatch(b *testing.B) {
	eng := sim.NewEngine(1)
	cr := cpu.NewCore(0, nil)
	db := prio.NewDB()
	db.SetMode(prio.ModeBatch)
	e := core.NewEngine(eng, cr, testnet.TestCosts(), db)
	chain := testnet.NewChain(100, b.N+1)
	b.ReportAllocs()
	b.ResetTimer()
	eng.At(0, func() { chain.Inject(e, b.N, true, 0, 0) })
	if err := eng.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
	if len(chain.Delivered) != b.N {
		b.Fatalf("delivered %d, want %d", len(chain.Delivered), b.N)
	}
}

// TestPrismMultiLevelPriorities exercises the §VII-3 extension: three
// priority classes sharing a device are served strictly by level.
func TestPrismMultiLevelPriorities(t *testing.T) {
	eng, e, chain, _ := newPrism(prio.ModeBatch)
	eng.At(0, func() {
		for i := uint64(0); i < 10; i++ {
			chain.Br.HighQ.Enqueue(&pkt.SKB{ID: 100 + i, HighPriority: true, Priority: 1})
		}
		for i := uint64(0); i < 10; i++ {
			chain.Br.HighQ.Enqueue(&pkt.SKB{ID: 300 + i, HighPriority: true, Priority: 3})
		}
		for i := uint64(0); i < 10; i++ {
			chain.Br.HighQ.Enqueue(&pkt.SKB{ID: 200 + i, HighPriority: true, Priority: 2})
		}
		e.NotifyArrival(chain.Br, true)
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(chain.Delivered) != 30 {
		t.Fatalf("delivered %d, want 30", len(chain.Delivered))
	}
	// Level 3 first, then 2, then 1, FIFO within each.
	for i, d := range chain.Delivered {
		var wantBase uint64
		switch {
		case i < 10:
			wantBase = 300
		case i < 20:
			wantBase = 200
		default:
			wantBase = 100
		}
		if d.SKB.ID != wantBase+uint64(i%10) {
			t.Fatalf("delivery %d = ID %d, want %d", i, d.SKB.ID, wantBase+uint64(i%10))
		}
	}
}
