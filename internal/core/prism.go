// Package core implements PRISM, the paper's primary contribution: a
// priority-aware, streamlined NAPI receive engine (Fig. 7 pseudocode).
//
// Differences from the vanilla engine (internal/napi):
//
//   - A single per-CPU poll list. There is no global→local move, so no
//     synchronization delay, and devices can be inserted at the *head*.
//   - Two input packet queues per device (high/low). napi_poll serves a
//     batch exclusively from the high-priority queue when it is non-empty.
//   - Stage transitions are priority-aware. High-priority packets go to the
//     next device's high queue and move that device to the head of the poll
//     list (PRISM-batch: batch-level preemption), or are processed through
//     all remaining stages synchronously in the same context (PRISM-sync:
//     run-to-completion).
//
// The paper's stage-1 limitation (§IV-D) is preserved: the physical NIC's
// descriptor ring is a single FIFO, priorities are only known after the SKB
// is allocated during the stage-1 poll, so differentiation begins at the
// first stage *transition* — which is why PRISM helps multi-stage overlay
// pipelines but not the single-stage host path (Fig. 10).
package core

import (
	"prism/internal/cpu"
	"prism/internal/napi"
	"prism/internal/netdev"
	"prism/internal/obs"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
)

// Engine is the PRISM per-CPU receive engine.
type Engine struct {
	eng   *sim.Engine
	core  *cpu.Core
	costs *netdev.Costs
	db    *prio.DB

	list []*netdev.Device // the single per-CPU poll list

	pending   bool
	running   bool
	processed int

	// lastStage tracks which device's code last ran on this core, for the
	// I-cache stage-switch penalty (Costs.StageSwitch). PRISM-sync chains
	// switch stages on every packet, which is where their throughput cost
	// comes from.
	lastStage *netdev.Device

	stats napi.Stats

	// OnPoll, when set, is invoked once per device-poll iteration.
	OnPoll func(napi.PollObservation)

	// obs, when set, receives per-packet lifecycle spans and labeled
	// metrics for every stage this engine polls (including PRISM-sync
	// run-to-completion chains).
	obs *obs.Pipeline
}

var _ netdev.Scheduler = (*Engine)(nil)

// NewEngine returns a PRISM engine bound to a core. The prio.DB supplies
// both the flow classification (used by stage-1 handlers) and the runtime
// mode switch between PRISM-batch and PRISM-sync.
func NewEngine(eng *sim.Engine, core *cpu.Core, costs *netdev.Costs, db *prio.DB) *Engine {
	return &Engine{eng: eng, core: core, costs: costs, db: db}
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() napi.Stats { return e.stats }

// SetOnPoll installs the per-iteration trace hook.
func (e *Engine) SetOnPoll(fn func(napi.PollObservation)) { e.OnPoll = fn }

// SetObs installs the observability pipeline (nil disables collection).
func (e *Engine) SetObs(p *obs.Pipeline) { e.obs = p }

// Core returns the processing core this engine runs on.
func (e *Engine) Core() *cpu.Core { return e.core }

// NotifyArrival implements netdev.Scheduler for the hardware-IRQ path.
// The NIC cannot see packet priority (stage-1 limitation), so arriving
// devices are appended to the tail.
func (e *Engine) NotifyArrival(dev *netdev.Device, high bool) {
	if dev.InPollList {
		return
	}
	dev.InPollList = true
	now := e.eng.Now()
	start := e.core.Acquire(now)
	e.core.Consume(start, e.costs.IRQ)
	if high {
		e.insertHead(dev)
	} else {
		e.list = append(e.list, dev)
	}
	if !e.running && !e.pending {
		e.pending = true
		e.eng.At(e.core.BusyUntil(), e.runSoftirq)
	}
}

func (e *Engine) insertHead(dev *netdev.Device) {
	e.list = append(e.list, nil)
	copy(e.list[1:], e.list)
	e.list[0] = dev
}

// moveToHead moves an already-listed device to the head.
func (e *Engine) moveToHead(dev *netdev.Device) {
	for i, d := range e.list {
		if d == dev {
			copy(e.list[1:i+1], e.list[:i])
			e.list[0] = dev
			return
		}
	}
	// Device marked in-list but being polled right now (it will be
	// re-enqueued by the poll loop); nothing to move.
}

// reraise schedules another softirq run after the yield delay.
func (e *Engine) reraise(now sim.Time) {
	if e.running || e.pending {
		return
	}
	e.pending = true
	e.eng.At(now+e.costs.SoftirqRestart, e.runSoftirq)
}

// runSoftirq is PRISM's net_rx_action (Fig. 7 lines 6–20). There is no
// list synchronization step: devices are popped straight off the single
// per-CPU list, which is what enables batch-level preemption.
func (e *Engine) runSoftirq() {
	e.pending = false
	e.running = true
	e.stats.SoftirqRuns++
	e.processed = 0
	e.pollNext()
}

func (e *Engine) pollNext() {
	now := e.eng.Now()
	if len(e.list) == 0 || e.processed >= e.costs.Budget {
		e.finish(now)
		return
	}
	dev := e.list[0]
	e.list = e.list[1:]

	start := e.core.BusyUntil()
	if start < now {
		start = e.core.Acquire(now)
	}
	n, total := e.pollDevice(dev, start)
	end := e.core.Consume(start, total)
	e.processed += n
	e.stats.Iterations++

	// Fig. 7 lines 13–16: devices with pending high-priority packets go
	// back to the head; devices with only low-priority packets to the tail.
	switch {
	case !dev.HighQ.Empty():
		e.insertHead(dev)
	case !dev.LowQ.Empty():
		e.list = append(e.list, dev)
	default:
		dev.InPollList = false
	}
	e.observe(now, dev)
	e.eng.At(end, e.pollNext)
}

func (e *Engine) finish(now sim.Time) {
	e.running = false
	if len(e.list) > 0 {
		e.reraise(now)
	}
}

// pollDevice is PRISM's napi_poll (Fig. 7 lines 22–38): serve one batch
// exclusively from the high-priority queue if it has packets, otherwise
// from the low-priority queue.
func (e *Engine) pollDevice(dev *netdev.Device, start sim.Time) (int, sim.Time) {
	// Both queue flavours expose the dequeue surface; the high-priority
	// queue additionally orders by level (§VII-3).
	var q interface {
		Dequeue() *pkt.SKB
		Empty() bool
	} = dev.LowQ
	if !dev.HighQ.Empty() {
		q = dev.HighQ
	}
	if q.Empty() {
		return 0, 0
	}
	dev.Polls++
	t := start + e.costs.BatchOverhead
	count := 0
	for count < e.costs.BatchSize {
		skb := q.Dequeue()
		if skb == nil {
			break
		}
		// I-cache stage switch: once per batch ordinarily, but after a
		// PRISM-sync run-to-completion chain the previous packet ended in
		// the last stage's code, so every packet pays it again — the
		// batching loss of §III-B1.
		if e.lastStage != dev {
			t += e.costs.StageSwitch
			e.lastStage = dev
		}
		hStart := t
		res := dev.Handler.HandlePacket(t, skb)
		t += res.Cost
		skb.Stage++
		count++
		e.stats.Packets++
		dev.Processed++
		if e.obs != nil {
			e.obs.Span(dev.Name, dev.Kind.StageName(), skb.ID, skb.Priority, hStart, t)
		}
		t = e.applyTransition(dev, skb, res, t)
	}
	return count, t - start
}

// applyTransition routes a processed packet according to its priority and
// the current PRISM mode. dev is the stage that just processed the packet
// (drop attribution; PRISM-sync chains advance it hop by hop). It returns
// the updated batch cursor (PRISM-sync accrues the remaining stages'
// costs inline).
func (e *Engine) applyTransition(dev *netdev.Device, skb *pkt.SKB, res netdev.Result, t sim.Time) sim.Time {
	cur := dev
	for {
		switch res.Verdict {
		case netdev.VerdictForward:
			next := res.Next
			if skb.HighPriority {
				if e.db.Mode() == prio.ModeSync {
					// Run-to-completion: call the next stage's processing
					// directly in this context (netif_receive_skb instead
					// of netif_rx), bypassing its queue entirely. Every
					// hop changes the instruction-cache working set.
					if e.lastStage != next {
						t += e.costs.StageSwitch
						e.lastStage = next
					}
					hStart := t
					res = next.Handler.HandlePacket(t, skb)
					t += res.Cost
					skb.Stage++
					e.stats.Packets++
					next.Processed++
					if e.obs != nil {
						e.obs.Span(next.Name, next.Kind.StageName(), skb.ID, skb.Priority, hStart, t)
					}
					cur = next
					continue
				}
				// PRISM-batch: high-priority queue + head insertion.
				if !next.HighQ.Enqueue(skb) {
					e.stats.Dropped++
					if e.obs != nil {
						e.obs.Drop(t, next.Name, next.Kind.StageName(), skb.ID, skb.Priority)
					}
					return t
				}
				if next.InPollList {
					e.moveToHead(next)
				} else {
					next.InPollList = true
					e.insertHead(next)
				}
				return t
			}
			if !next.LowQ.Enqueue(skb) {
				e.stats.Dropped++
				if e.obs != nil {
					e.obs.Drop(t, next.Name, next.Kind.StageName(), skb.ID, skb.Priority)
				}
				return t
			}
			if !next.InPollList {
				next.InPollList = true
				e.list = append(e.list, next)
			}
			return t
		case netdev.VerdictDeliver:
			skb.Delivered = t
			e.stats.Delivered++
			if res.Deliver != nil {
				deliver := res.Deliver
				done := t
				e.eng.At(done, func() { deliver(done) })
			}
			return t
		case netdev.VerdictDrop:
			e.stats.Dropped++
			if e.obs != nil {
				e.obs.Drop(t, cur.Name, cur.Kind.StageName(), skb.ID, skb.Priority)
			}
			return t
		case netdev.VerdictAbsorbed:
			if e.obs != nil {
				e.obs.Absorbed(t, cur.Name, skb.ID, skb.Priority)
			}
			return t
		default:
			panic("core: handler returned invalid verdict")
		}
	}
}

func (e *Engine) observe(now sim.Time, dev *netdev.Device) {
	if e.OnPoll == nil {
		return
	}
	list := make([]string, 0, len(e.list))
	for _, d := range e.list {
		list = append(list, d.Name)
	}
	e.OnPoll(napi.PollObservation{
		Time:      now,
		Iteration: e.stats.Iterations,
		Device:    dev.Name,
		PollList:  list,
	})
}
