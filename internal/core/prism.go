// Package core implements PRISM, the paper's primary contribution: the
// priority-aware, streamlined poll policy (Fig. 7 pseudocode) over the
// unified softirq runtime (internal/softirq).
//
// Differences from the vanilla policy (internal/napi):
//
//   - A single per-CPU poll list. There is no global→local move, so no
//     synchronization delay, and devices can be inserted at the *head*.
//   - Two input packet queues per device (high/low). napi_poll serves a
//     batch exclusively from the high-priority queue when it is non-empty.
//   - Stage transitions are priority-aware. High-priority packets go to the
//     next device's high queue and move that device to the head of the poll
//     list (PRISM-batch: batch-level preemption), or are processed through
//     all remaining stages synchronously in the same context (PRISM-sync:
//     run-to-completion).
//
// The paper's stage-1 limitation (§IV-D) is preserved: the physical NIC's
// descriptor ring is a single FIFO, priorities are only known after the SKB
// is allocated during the stage-1 poll, so differentiation begins at the
// first stage *transition* — which is why PRISM helps multi-stage overlay
// pipelines but not the single-stage host path (Fig. 10).
//
// The package also registers the paper's two ablation policies, each one
// PRISM mechanism in isolation:
//
//   - "headonly": head insertion without dual queues — high-priority
//     transitions move the next device to the poll-list head, but packets
//     still share the single FIFO input queue with background traffic.
//   - "dualq": dual queues without head insertion — high-priority packets
//     get their own queue (served first within a device poll), but the
//     poll list stays strictly tail-ordered, so no batch-level preemption.
package core

import (
	"prism/internal/cpu"
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/softirq"
)

// Registry names of the policies this package provides.
const (
	PolicyName     = "prism"    // full PRISM (batch/sync via the DB's runtime mode)
	PolicyHeadOnly = "headonly" // head insertion only
	PolicyDualQ    = "dualq"    // dual queues only
)

func init() {
	softirq.Register(PolicyName, func(db *prio.DB) softirq.PollPolicy { return NewPolicy(db) })
	softirq.Register(PolicyHeadOnly, func(*prio.DB) softirq.PollPolicy { return &HeadOnlyPolicy{} })
	softirq.Register(PolicyDualQ, func(*prio.DB) softirq.PollPolicy { return &DualQueuePolicy{} })
}

// Engine is the unified runtime's engine type (see internal/softirq); the
// alias keeps this package the natural import for PRISM users.
type Engine = softirq.Engine

// NewEngine returns a receive engine running the full PRISM policy on a
// core. The prio.DB supplies both the flow classification (used by
// stage-1 handlers) and the runtime mode switch between PRISM-batch and
// PRISM-sync.
func NewEngine(eng *sim.Engine, core *cpu.Core, costs *netdev.Costs, db *prio.DB) *Engine {
	return softirq.New(eng, core, costs, NewPolicy(db))
}

// pollList is the single per-CPU poll list shared by the PRISM-family
// policies: pop from the head, insert at head or tail. It is a
// head-indexed deque over one retained backing array — Next advances the
// head index rather than reslicing, head insertion reclaims the popped
// slot when one is free, and a fully drained list rewinds to the start —
// so steady-state polling does not allocate.
type pollList struct {
	list []*netdev.Device
	head int // index of the first live entry
}

func (l *pollList) insertHead(dev *netdev.Device) {
	if l.head > 0 {
		l.head--
		l.list[l.head] = dev
		return
	}
	l.list = append(l.list, nil)
	copy(l.list[1:], l.list)
	l.list[0] = dev
}

func (l *pollList) insertTail(dev *netdev.Device) {
	if l.head == len(l.list) {
		l.list = l.list[:0]
		l.head = 0
	}
	l.list = append(l.list, dev)
}

// moveToHead moves an already-listed device to the head. A device marked
// in-list but absent is being polled right now (the poll loop will
// requeue it); nothing to move.
func (l *pollList) moveToHead(dev *netdev.Device) {
	for i := l.head; i < len(l.list); i++ {
		if l.list[i] == dev {
			copy(l.list[l.head+1:i+1], l.list[l.head:i])
			l.list[l.head] = dev
			return
		}
	}
}

// Begin is a no-op: there is no list synchronization step, which is what
// enables batch-level preemption (Fig. 7 lines 6–20).
func (l *pollList) Begin() {}

// Next pops the list head.
func (l *pollList) Next() *netdev.Device {
	if l.head >= len(l.list) {
		l.list = l.list[:0]
		l.head = 0
		return nil
	}
	dev := l.list[l.head]
	l.list[l.head] = nil
	l.head++
	return dev
}

// Finish reports whether the softirq must be re-raised.
func (l *pollList) Finish() bool { return len(l.list) > l.head }

// Snapshot renders the single list in poll order.
func (l *pollList) Snapshot() []string {
	list := make([]string, 0, len(l.list)-l.head)
	for _, d := range l.list[l.head:] {
		list = append(list, d.Name)
	}
	return list
}

// Schedule places a transition-scheduled device at the head or tail.
func (l *pollList) Schedule(dev *netdev.Device, head bool) {
	if head {
		l.insertHead(dev)
	} else {
		l.insertTail(dev)
	}
}

// Promote implements head promotion for already-listed devices.
func (l *pollList) Promote(dev *netdev.Device) { l.moveToHead(dev) }

// Policy is the full PRISM scheduling policy.
type Policy struct {
	pollList
	db *prio.DB
}

var _ softirq.PollPolicy = (*Policy)(nil)

// NewPolicy returns a fresh per-CPU PRISM policy.
func NewPolicy(db *prio.DB) *Policy { return &Policy{db: db} }

// Arrive handles the hardware-IRQ path. The NIC cannot see packet
// priority (stage-1 limitation), so arriving devices are appended to the
// tail — unless the driver has priority rings (§VII-1) and flags the IRQ
// high, in which case the device head-inserts.
func (p *Policy) Arrive(dev *netdev.Device, high bool) {
	if high {
		p.insertHead(dev)
	} else {
		p.insertTail(dev)
	}
}

// Requeue is Fig. 7 lines 13–16: devices with pending high-priority
// packets go back to the head; devices with only low-priority packets to
// the tail.
func (p *Policy) Requeue(dev *netdev.Device) {
	switch {
	case !dev.HighQ.Empty():
		p.insertHead(dev)
	case !dev.LowQ.Empty():
		p.insertTail(dev)
	default:
		dev.InPollList = false
	}
}

// SelectQueue is Fig. 7 lines 22–38: serve one batch exclusively from the
// high-priority queue if it has packets, otherwise from the low queue.
// The high queue additionally orders by level (§VII-3).
func (p *Policy) SelectQueue(dev *netdev.Device) softirq.Queue {
	if !dev.HighQ.Empty() {
		return dev.HighQ
	}
	return dev.LowQ
}

// Route sends high-priority packets through the priority path — inline
// run-to-completion under PRISM-sync, high queue + head insertion under
// PRISM-batch — and everything else to the next stage's low queue.
func (p *Policy) Route(skb *pkt.SKB) softirq.Route {
	if !skb.HighPriority {
		return softirq.Route{}
	}
	if p.db.Mode() == prio.ModeSync {
		return softirq.Route{Sync: true}
	}
	return softirq.Route{High: true, Head: true}
}

// HeadOnlyPolicy is the head-insertion ablation: PRISM's poll-list
// reordering without its dual queues. High-priority transitions pull the
// next stage to the poll-list head, but the packet itself still waits in
// the shared FIFO behind any batch already queued there — isolating how
// much of PRISM's win comes from ordering alone.
type HeadOnlyPolicy struct {
	pollList
}

var _ softirq.PollPolicy = (*HeadOnlyPolicy)(nil)

// Arrive honours a driver priority hint with head insertion, like PRISM.
func (p *HeadOnlyPolicy) Arrive(dev *netdev.Device, high bool) {
	if high {
		p.insertHead(dev)
	} else {
		p.insertTail(dev)
	}
}

// Requeue re-inserts at the tail: with one FIFO per device the policy
// cannot tell whether the remaining packets are high-priority.
func (p *HeadOnlyPolicy) Requeue(dev *netdev.Device) {
	if dev.HasPackets() {
		p.insertTail(dev)
	} else {
		dev.InPollList = false
	}
}

// SelectQueue serves the single shared queue.
func (p *HeadOnlyPolicy) SelectQueue(dev *netdev.Device) softirq.Queue { return dev.LowQ }

// Route head-inserts the next stage for high-priority packets but keeps
// them in the low queue.
func (p *HeadOnlyPolicy) Route(skb *pkt.SKB) softirq.Route {
	if skb.HighPriority {
		return softirq.Route{Head: true}
	}
	return softirq.Route{}
}

// DualQueuePolicy is the dual-queue ablation: PRISM's per-device priority
// queues without its poll-list reordering. A high-priority packet skips
// the background backlog *within* each device (the high queue is served
// first), but the device itself still waits its strict tail-order turn —
// isolating how much of PRISM's win comes from queue separation alone.
type DualQueuePolicy struct {
	pollList
}

var _ softirq.PollPolicy = (*DualQueuePolicy)(nil)

// Arrive appends at the tail; without head insertion a priority hint
// cannot reorder the list.
func (p *DualQueuePolicy) Arrive(dev *netdev.Device, _ bool) { p.insertTail(dev) }

// Requeue re-inserts at the tail regardless of which queue has packets.
func (p *DualQueuePolicy) Requeue(dev *netdev.Device) {
	if dev.HasPackets() {
		p.insertTail(dev)
	} else {
		dev.InPollList = false
	}
}

// SelectQueue serves the high queue first, like PRISM.
func (p *DualQueuePolicy) SelectQueue(dev *netdev.Device) softirq.Queue {
	if !dev.HighQ.Empty() {
		return dev.HighQ
	}
	return dev.LowQ
}

// Route sends high-priority packets to the next stage's high queue with
// tail scheduling.
func (p *DualQueuePolicy) Route(skb *pkt.SKB) softirq.Route {
	if skb.HighPriority {
		return softirq.Route{High: true}
	}
	return softirq.Route{}
}
