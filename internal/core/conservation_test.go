package core_test

import (
	"testing"
	"testing/quick"

	"prism/internal/core"
	"prism/internal/cpu"
	"prism/internal/napi"
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/testnet"
)

// arrival describes one randomized injection.
type arrival struct {
	Gap   uint16 // ns before this packet arrives
	High  bool
	Burst uint8 // extra packets arriving back-to-back
}

// runRandomTraffic drives an engine with a random arrival pattern and
// returns the chain plus total injected packets.
func runRandomTraffic(mode prio.Mode, arrivals []arrival, queueCap int) (*testnet.Chain, uint64, napi.Stats) {
	eng := sim.NewEngine(99)
	cr := cpu.NewCore(0, cpu.C1)
	chain := testnet.NewChain(100, queueCap)

	var sched interface {
		netdev.Scheduler
		Stats() napi.Stats
	}
	if mode == prio.ModeVanilla {
		sched = napi.NewEngine(eng, cr, testnet.TestCosts())
	} else {
		db := prio.NewDB()
		db.SetMode(mode)
		sched = core.NewEngine(eng, cr, testnet.TestCosts(), db)
	}

	var injected uint64
	var at sim.Time
	var id uint64
	for _, a := range arrivals {
		at += sim.Time(a.Gap)
		n := 1 + int(a.Burst%8)
		high := a.High
		first := id
		id += uint64(n)
		count := n
		atCopy := at
		eng.At(at, func() {
			for i := 0; i < count; i++ {
				skb := &pkt.SKB{ID: first + uint64(i), HighPriority: high, Arrived: atCopy}
				if high {
					skb.Priority = 1
				}
				if !chain.Eth.LowQ.Enqueue(skb) {
					continue // ring drop; counted by the queue
				}
			}
			sched.NotifyArrival(chain.Eth, false)
		})
		injected += uint64(n)
	}
	if err := eng.RunUntilIdle(); err != nil {
		panic(err)
	}
	return chain, injected, sched.Stats()
}

// TestConservationProperty: for any arrival pattern and any engine,
// injected packets are exactly partitioned into delivered and dropped —
// no losses, no duplicates — and per-priority-class FIFO order holds.
func TestConservationProperty(t *testing.T) {
	modes := []prio.Mode{prio.ModeVanilla, prio.ModeBatch, prio.ModeSync}
	prop := func(arrivals []arrival, modeIdx uint8, tinyQueues bool) bool {
		if len(arrivals) > 60 {
			arrivals = arrivals[:60]
		}
		mode := modes[int(modeIdx)%len(modes)]
		cap := 4096
		if tinyQueues {
			cap = 16
		}
		chain, injected, st := runRandomTraffic(mode, arrivals, cap)

		seen := make(map[uint64]bool, len(chain.Delivered))
		var lastHigh, lastLow int64 = -1, -1
		for _, d := range chain.Delivered {
			if seen[d.SKB.ID] {
				return false // duplicate delivery
			}
			seen[d.SKB.ID] = true
			// FIFO within each priority class (IDs are globally increasing
			// in injection order).
			if d.SKB.HighPriority {
				if int64(d.SKB.ID) < lastHigh {
					return false
				}
				lastHigh = int64(d.SKB.ID)
			} else {
				if int64(d.SKB.ID) < lastLow {
					return false
				}
				lastLow = int64(d.SKB.ID)
			}
		}
		ringDrops := chain.Eth.LowQ.Dropped
		queueDrops := chain.Br.LowQ.Dropped + chain.Br.HighQ.Dropped +
			chain.Veth.LowQ.Dropped + chain.Veth.HighQ.Dropped
		_ = queueDrops // engine counts these in st.Dropped
		total := uint64(len(chain.Delivered)) + ringDrops + st.Dropped
		return total == injected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestConservationUnderOverload drives far more traffic than tiny queues
// can hold and checks the exact partition again, deterministically.
func TestConservationUnderOverload(t *testing.T) {
	arrivals := make([]arrival, 50)
	for i := range arrivals {
		arrivals[i] = arrival{Gap: 10, High: i%3 == 0, Burst: 7}
	}
	for _, mode := range []prio.Mode{prio.ModeVanilla, prio.ModeBatch, prio.ModeSync} {
		chain, injected, st := runRandomTraffic(mode, arrivals, 8)
		got := uint64(len(chain.Delivered)) + chain.Eth.LowQ.Dropped + st.Dropped
		if got != injected {
			t.Errorf("%v: delivered+dropped = %d, injected %d", mode, got, injected)
		}
		if chain.Eth.LowQ.Dropped == 0 && st.Dropped == 0 {
			t.Errorf("%v: no drops despite 8-slot queues", mode)
		}
	}
}
