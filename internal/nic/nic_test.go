package nic

import (
	"testing"

	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/socket"
)

// fakeSched records NotifyArrival calls.
type fakeSched struct {
	calls []string
}

func (f *fakeSched) NotifyArrival(dev *netdev.Device, high bool) {
	f.calls = append(f.calls, dev.Name)
	dev.InPollList = true
}

var (
	hostMAC = pkt.MAC{0x52, 0x54, 0, 0, 0, 1}
	peerMAC = pkt.MAC{0x52, 0x54, 0, 0, 0, 2}
	hostIP  = pkt.Addr(192, 168, 1, 2)
	peerIP  = pkt.Addr(192, 168, 1, 3)
	ctrAIP  = pkt.Addr(172, 17, 0, 2)
	ctrBIP  = pkt.Addr(172, 17, 0, 3)
	ctrAMAC = pkt.MAC{0x02, 0x42, 0, 0, 0, 2}
	ctrBMAC = pkt.MAC{0x02, 0x42, 0, 0, 0, 3}
)

func newNIC(t *testing.T, cfg Config) (*sim.Engine, *fakeSched, *NIC, *prio.DB, *netdev.Device) {
	t.Helper()
	eng := sim.NewEngine(1)
	fs := &fakeSched{}
	db := prio.NewDB()
	costs := netdev.DefaultCosts()
	tbl := socket.NewTable("host")
	cfg.Name = "eth0"
	cfg.HostIP = hostIP
	n := New(eng, fs, costs, db, tbl, cfg)
	br := netdev.NewDevice("br0", netdev.DriverGroCells, netdev.HandlerFunc(
		func(now sim.Time, s *pkt.SKB) netdev.Result {
			return netdev.Result{Verdict: netdev.VerdictDrop, Cost: 1}
		}), 1024)
	n.AttachBridge(br)
	return eng, fs, n, db, br
}

func overlayFrame(srcPort uint16, payload []byte) []byte {
	inner := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: ctrBMAC, DstMAC: ctrAMAC, SrcIP: ctrBIP, DstIP: ctrAIP,
		SrcPort: srcPort, DstPort: 11211, Payload: payload,
	})
	return pkt.Encapsulate(pkt.VXLANSpec{
		OuterSrcMAC: peerMAC, OuterDstMAC: hostMAC,
		OuterSrcIP: peerIP, OuterDstIP: hostIP,
		SrcPort: 54000, VNI: 256,
	}, inner)
}

func TestDMAEnqueuesAndInterrupts(t *testing.T) {
	eng, fs, n, _, _ := newNIC(t, Config{})
	eng.At(0, func() { n.DMA(0, overlayFrame(1000, []byte("hi"))) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if n.Dev.LowQ.Len() != 1 {
		t.Errorf("ring len = %d", n.Dev.LowQ.Len())
	}
	if len(fs.calls) != 1 || fs.calls[0] != "eth0" {
		t.Errorf("NotifyArrival calls = %v", fs.calls)
	}
	if n.IRQs != 1 || n.DMAd != 1 {
		t.Errorf("IRQs/DMAd = %d/%d", n.IRQs, n.DMAd)
	}
}

func TestDMAWhilePollingSkipsIRQ(t *testing.T) {
	eng, fs, n, _, _ := newNIC(t, Config{})
	eng.At(0, func() {
		n.DMA(0, overlayFrame(1000, nil))
		n.DMA(0, overlayFrame(1001, nil)) // InPollList set by fake sched
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fs.calls) != 1 {
		t.Errorf("NotifyArrival called %d times, want 1 (NAPI masks IRQs)", len(fs.calls))
	}
	if n.Dev.LowQ.Len() != 2 {
		t.Errorf("ring holds %d", n.Dev.LowQ.Len())
	}
}

func TestInterruptModerationTimer(t *testing.T) {
	eng, fs, n, _, _ := newNIC(t, Config{RxUsecs: 8 * sim.Microsecond, RxFrames: 32})
	eng.At(0, func() { n.DMA(0, overlayFrame(1000, nil)) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fs.calls) != 1 {
		t.Fatalf("IRQ fired %d times", len(fs.calls))
	}
	// IRQ must have waited for the timer, not fired at t=0.
	if eng.Now() != 8*sim.Microsecond {
		t.Errorf("final time = %v, want 8µs (moderation timer)", eng.Now())
	}
}

func TestInterruptModerationFrameThreshold(t *testing.T) {
	eng, fs, n, _, _ := newNIC(t, Config{RxUsecs: sim.Millisecond, RxFrames: 4})
	eng.At(0, func() {
		for i := 0; i < 4; i++ {
			n.DMA(0, overlayFrame(uint16(1000+i), nil))
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fs.calls) != 1 {
		t.Fatalf("IRQ fired %d times, want 1", len(fs.calls))
	}
	if eng.Now() != 0 {
		t.Errorf("IRQ at %v, want immediately at frame threshold", eng.Now())
	}
	if n.IRQs != 1 {
		t.Errorf("IRQs = %d", n.IRQs)
	}
}

func TestRingOverrunDrops(t *testing.T) {
	eng, _, n, _, _ := newNIC(t, Config{RingSize: 4, RxUsecs: sim.Millisecond, RxFrames: 100})
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			n.DMA(0, overlayFrame(uint16(1000+i), nil))
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if n.Dev.LowQ.Dropped != 6 {
		t.Errorf("ring dropped %d, want 6", n.Dev.LowQ.Dropped)
	}
}

func TestHandleDecapsulatesAndClassifies(t *testing.T) {
	_, _, n, db, br := newNIC(t, Config{})
	db.Add(prio.Rule{IP: ctrAIP, Port: 11211})

	skb := &pkt.SKB{Data: overlayFrame(1000, []byte("req")), GROSegs: 1}
	res := n.handle(0, skb)
	if res.Verdict != netdev.VerdictForward || res.Next != br {
		t.Fatalf("result = %+v", res)
	}
	if !skb.HighPriority {
		t.Error("high-priority flow not classified")
	}
	if skb.Flow.DstPort != 11211 || skb.Flow.DstIP != ctrAIP {
		t.Errorf("inner flow = %v", skb.Flow)
	}
	// Outer headers must be stripped: the data now starts with the inner
	// Ethernet header (dst = container MAC).
	eth, err := pkt.ParseEthernet(skb.Data)
	if err != nil || eth.Dst != ctrAMAC {
		t.Errorf("inner frame not exposed: %v %v", eth, err)
	}
}

func TestHandleLowPriorityByDefault(t *testing.T) {
	_, _, n, _, _ := newNIC(t, Config{})
	skb := &pkt.SKB{Data: overlayFrame(1000, nil), GROSegs: 1}
	if res := n.handle(0, skb); res.Verdict != netdev.VerdictForward {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if skb.HighPriority {
		t.Error("unclassified flow marked high priority")
	}
}

func TestHandleHostPathDelivers(t *testing.T) {
	eng := sim.NewEngine(1)
	fs := &fakeSched{}
	db := prio.NewDB()
	costs := netdev.DefaultCosts()
	tbl := socket.NewTable("host")
	n := New(eng, fs, costs, db, tbl, Config{Name: "eth0", HostIP: hostIP})

	frame := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: peerMAC, DstMAC: hostMAC, SrcIP: peerIP, DstIP: hostIP,
		SrcPort: 100, DstPort: 200, Payload: []byte("host"),
	})
	skb := &pkt.SKB{Data: frame, GROSegs: 1}
	res := n.handle(0, skb)
	// No listener on port 200: the host path drops at socket demux, but the
	// verdict proves it took the single-stage route (no bridge attached).
	if res.Verdict != netdev.VerdictDrop {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.Cost != costs.HostPacket {
		t.Errorf("cost = %v, want HostPacket", res.Cost)
	}
}

func TestHandleGarbageDrops(t *testing.T) {
	_, _, n, _, _ := newNIC(t, Config{})
	res := n.handle(0, &pkt.SKB{Data: []byte{1, 2, 3}, GROSegs: 1})
	if res.Verdict != netdev.VerdictDrop {
		t.Errorf("verdict = %v", res.Verdict)
	}
	// Corrupt VXLAN: valid outer UDP/4789 but truncated inner.
	f := overlayFrame(1, nil)
	res = n.handle(0, &pkt.SKB{Data: f[:len(f)-20], GROSegs: 1})
	if res.Verdict != netdev.VerdictDrop {
		t.Errorf("truncated vxlan verdict = %v", res.Verdict)
	}
}

func tcpOverlayFrame(seq uint32) []byte {
	inner := pkt.BuildTCPFrame(pkt.TCPFrameSpec{
		SrcMAC: ctrBMAC, DstMAC: ctrAMAC, SrcIP: ctrBIP, DstIP: ctrAIP,
		SrcPort: 5001, DstPort: 5201, Seq: seq, Flags: pkt.TCPAck,
		Payload: make([]byte, 1000),
	})
	return pkt.Encapsulate(pkt.VXLANSpec{
		OuterSrcMAC: peerMAC, OuterDstMAC: hostMAC,
		OuterSrcIP: peerIP, OuterDstIP: hostIP,
		SrcPort: 54000, VNI: 256,
	}, inner)
}

func TestGROMergesConsecutiveTCP(t *testing.T) {
	_, _, n, _, _ := newNIC(t, Config{GRO: true})
	head := &pkt.SKB{Data: tcpOverlayFrame(0), GROSegs: 1}
	res := n.handle(0, head)
	if res.Verdict != netdev.VerdictForward {
		t.Fatalf("head verdict = %v", res.Verdict)
	}
	for i := 1; i < 5; i++ {
		s := &pkt.SKB{Data: tcpOverlayFrame(uint32(i * 1000)), GROSegs: 1}
		res := n.handle(sim.Time(i), s) // within the batch-overhead gap
		if res.Verdict != netdev.VerdictAbsorbed {
			t.Fatalf("segment %d verdict = %v, want absorbed", i, res.Verdict)
		}
	}
	if head.GROSegs != 5 {
		t.Errorf("head GROSegs = %d, want 5", head.GROSegs)
	}
	if n.Merged != 4 {
		t.Errorf("Merged = %d, want 4", n.Merged)
	}
}

func TestGRORunEndsOnFlowChange(t *testing.T) {
	_, _, n, _, _ := newNIC(t, Config{GRO: true})
	n.handle(0, &pkt.SKB{Data: tcpOverlayFrame(0), GROSegs: 1})
	// Different flow (UDP) breaks the run.
	if res := n.handle(1, &pkt.SKB{Data: overlayFrame(1000, nil), GROSegs: 1}); res.Verdict != netdev.VerdictForward {
		t.Fatalf("udp verdict = %v", res.Verdict)
	}
	// Next TCP segment starts a new head, not absorbed.
	if res := n.handle(2, &pkt.SKB{Data: tcpOverlayFrame(1000), GROSegs: 1}); res.Verdict != netdev.VerdictForward {
		t.Errorf("new head verdict = %v, want forward", res.Verdict)
	}
}

func TestGRORunEndsOnTimeGap(t *testing.T) {
	_, _, n, _, _ := newNIC(t, Config{GRO: true})
	n.handle(0, &pkt.SKB{Data: tcpOverlayFrame(0), GROSegs: 1})
	// Next segment arrives a full batch-overhead later: new batch, flush.
	res := n.handle(20*sim.Microsecond, &pkt.SKB{Data: tcpOverlayFrame(1000), GROSegs: 1})
	if res.Verdict != netdev.VerdictForward {
		t.Errorf("post-gap verdict = %v, want forward (GRO flushed)", res.Verdict)
	}
}

func TestGROCapsRun(t *testing.T) {
	_, _, n, _, _ := newNIC(t, Config{GRO: true})
	forwards := 0
	for i := 0; i < GROMaxSegs*2; i++ {
		res := n.handle(sim.Time(i), &pkt.SKB{Data: tcpOverlayFrame(uint32(i)), GROSegs: 1})
		if res.Verdict == netdev.VerdictForward {
			forwards++
		}
	}
	if forwards != 2 {
		t.Errorf("forwards = %d, want 2 (run capped at %d)", forwards, GROMaxSegs)
	}
}

func TestAdaptiveModerationFiresImmediatelyWhenQuiet(t *testing.T) {
	eng, fs, n, _, _ := newNIC(t, Config{
		RxUsecs: 8 * sim.Microsecond, RxFrames: 32,
		AdaptiveIdle: 100 * sim.Microsecond,
	})
	eng.At(0, func() { n.DMA(0, overlayFrame(1000, nil)) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fs.calls) != 1 || eng.Now() != 0 {
		t.Fatalf("quiet NIC did not interrupt immediately: calls=%d at %v", len(fs.calls), eng.Now())
	}
	// A second packet shortly after must coalesce (NIC no longer quiet).
	n.Dev.InPollList = false
	eng.At(10*sim.Microsecond, func() { n.DMA(eng.Now(), overlayFrame(1001, nil)) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fs.calls) != 2 {
		t.Fatalf("second IRQ missing: %d", len(fs.calls))
	}
	if eng.Now() != 18*sim.Microsecond {
		t.Errorf("second IRQ at %v, want 18µs (coalesced)", eng.Now())
	}
}

func TestPriorityRingsClassifyInHardware(t *testing.T) {
	eng, fs, n, db, _ := newNIC(t, Config{
		PriorityRings: true,
		RxUsecs:       8 * sim.Microsecond, RxFrames: 32,
	})
	db.Add(prio.Rule{IP: ctrAIP, Port: 11211})
	eng.At(0, func() {
		// Low-priority frame: goes to the FIFO ring, moderated IRQ.
		lo := overlayFrame(1000, nil)
		b := make([]byte, len(lo))
		copy(b, lo)
		// Rewrite inner dst port so it does not classify: build a fresh
		// frame toward a non-priority port instead.
		inner := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
			SrcMAC: ctrBMAC, DstMAC: ctrAMAC, SrcIP: ctrBIP, DstIP: ctrAIP,
			SrcPort: 1000, DstPort: 5001, Payload: nil,
		})
		loFrame := pkt.Encapsulate(pkt.VXLANSpec{
			OuterSrcMAC: peerMAC, OuterDstMAC: hostMAC,
			OuterSrcIP: peerIP, OuterDstIP: hostIP, SrcPort: 54000, VNI: 256,
		}, inner)
		n.DMA(0, loFrame)
		if n.Dev.LowQ.Len() != 1 || n.Dev.HighQ.Len() != 0 {
			t.Errorf("low frame placement: low=%d high=%d", n.Dev.LowQ.Len(), n.Dev.HighQ.Len())
		}
		if len(fs.calls) != 0 {
			t.Errorf("low frame interrupted immediately under moderation")
		}
		// High-priority frame: hardware steers it to the high ring and
		// interrupts immediately.
		n.Dev.InPollList = false
		n.DMA(0, overlayFrame(1000, nil))
		if n.Dev.HighQ.Len() != 1 {
			t.Errorf("high frame not in high ring")
		}
		if len(fs.calls) != 1 {
			t.Errorf("high frame did not interrupt immediately")
		}
		if s := n.Dev.HighQ.Peek(); s == nil || !s.HighPriority || s.Priority != 1 {
			t.Errorf("high frame not classified: %+v", s)
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityRingsGarbageGoesLow(t *testing.T) {
	eng, _, n, db, _ := newNIC(t, Config{PriorityRings: true})
	db.Add(prio.Rule{Port: 11211})
	eng.At(0, func() {
		n.DMA(0, []byte{1, 2, 3, 4})
		if n.Dev.LowQ.Len() != 1 {
			t.Error("unparseable frame not queued to the FIFO ring")
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}
