// Package nic models the physical network interface card and its stage-1
// driver poll: DMA into a descriptor ring, interrupt moderation
// (rx-usecs / rx-frames coalescing), GRO, priority classification at SKB
// allocation, and the first processing stage — VXLAN identification and
// decapsulation for overlay traffic, or direct protocol receive for host
// traffic.
//
// Per the paper's stage-1 limitation (§IV-D), the ring itself is a single
// FIFO: priority is determined here (the mlx5e_napi_poll analogue) but can
// only influence the packet's treatment from the first stage *transition*
// onward.
package nic

import (
	"prism/internal/fault"
	"prism/internal/netdev"
	"prism/internal/obs"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/socket"
)

// DefaultRingSize matches a common mlx5 RX ring configuration.
const DefaultRingSize = 1024

// GROMaxSegs caps how many consecutive same-flow TCP segments merge into
// one SKB (64 KB / MTU rounds to ~43; drivers often cap lower).
const GROMaxSegs = 16

// groFlushGap bounds the processing-time gap between two frames that may
// still merge: consecutive packets inside one poll session are a few
// hundred nanoseconds apart, while a new NAPI session (after
// napi_complete, which flushes GRO) arrives several microseconds later.
const groFlushGap = 2 * sim.Microsecond

// Config parameterizes the NIC.
type Config struct {
	Name string
	// HostIP is the NIC's own IPv4 address (outer/underlay address).
	HostIP pkt.IPv4
	// RingSize bounds the RX descriptor ring.
	RingSize int
	// RxUsecs and RxFrames configure interrupt moderation: an interrupt
	// fires when RxFrames packets are pending or RxUsecs has elapsed since
	// the first pending packet, whichever is sooner. Zero values disable
	// moderation (interrupt per packet).
	RxUsecs  sim.Time
	RxFrames int
	// AdaptiveIdle, when positive, models adaptive moderation (mlx5 CQE
	// moderation default): if the NIC has been interrupt-quiet for this
	// long, the next packet interrupts immediately — low latency at low
	// rate, coalescing under load.
	AdaptiveIdle sim.Time
	// GRO enables receive offload merging for TCP flows.
	GRO bool
	// PriorityRings models the paper's §VII-1 future work: a driver/NIC
	// that classifies flows in hardware (flow steering) and maintains a
	// separate high-priority RX ring, removing the stage-1 limitation.
	// Only PRISM engines exploit it; under vanilla all frames still go to
	// the single FIFO ring.
	PriorityRings bool
	// Shed enables the priority-aware overload drop policy: when the
	// single FIFO ring is full and the arriving frame classifies as
	// high-priority, the oldest queued low-priority packet is evicted to
	// make room — shed-low-first, mirroring the dual-queue design at the
	// admission point.
	Shed bool
	// FirstID is the base value for this NIC's SKB IDs. Topologies with
	// several RX queues give each queue's NIC a distinct base so packet
	// identities stay unique host-wide — the observability pipeline keys
	// per-packet lifecycle state by SKB ID.
	FirstID uint64
}

// NIC is the physical interface: a netdev.Device plus the DMA/IRQ front
// end that feeds it.
type NIC struct {
	Dev *netdev.Device

	eng   *sim.Engine
	sched netdev.Scheduler
	costs *netdev.Costs
	cfg   Config

	db *prio.DB
	// bridge receives decapsulated overlay frames (stage 2); nil for a
	// host-only NIC.
	bridge *netdev.Device
	// hostSockets demuxes non-encapsulated traffic addressed to HostIP.
	hostSockets *socket.Table

	// Interrupt moderation state.
	pendingIRQ   int
	irqTimer     *sim.Event
	firstPending sim.Time
	lastIRQ      sim.Time
	fireIRQFn    func() // bound once; scheduling a method value allocates

	// GRO state: current merge run. A run ends on a flow change, the seg
	// cap, or a time gap (batch boundary). groGen snapshots the head's
	// pool generation: the head is owned by downstream stages while the
	// NIC holds this reference, so a generation mismatch means the SKB
	// completed and was recycled — merging then would corrupt whatever
	// packet reuses it.
	groFlow pkt.FlowKey
	groHead *pkt.SKB
	groGen  uint32
	groRun  int
	groAt   sim.Time

	// skbs and frames recycle the per-packet allocations of the receive
	// path. DMA copies the wire bytes into a pooled frame — the model's
	// descriptor-ring buffer — so callers may reuse their frame slices.
	skbs   pkt.SKBPool
	frames pkt.FramePool

	nextID uint64

	// obs, when set, records frame DMA and interrupt instants.
	obs *obs.Pipeline
	// fault, when set, injects DMA overruns and interrupt loss; nil-safe
	// hooks make the unfaulted path identical to a plane-less build.
	fault *fault.Plane

	// Counters.
	DMAd      uint64
	IRQs      uint64
	Merged    uint64
	Overruns  uint64 // DMA attempts rejected by an injected ring overrun
	LostIRQs  uint64 // raised interrupts lost to injection
	ShedDrops uint64 // low-priority packets evicted by the shed policy
	// WatchdogRearms counts IRQs re-raised by the fault plane's watchdog
	// after it found the device stuck.
	WatchdogRearms uint64
}

// New builds the NIC and its stage-1 device.
func New(eng *sim.Engine, sched netdev.Scheduler, costs *netdev.Costs, db *prio.DB,
	hostSockets *socket.Table, cfg Config) *NIC {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	n := &NIC{
		eng:         eng,
		sched:       sched,
		costs:       costs,
		cfg:         cfg,
		db:          db,
		hostSockets: hostSockets,
		lastIRQ:     -sim.Second, // the first packet ever interrupts at once
		nextID:      cfg.FirstID,
	}
	n.Dev = netdev.NewDevice(cfg.Name, netdev.DriverNIC, netdev.HandlerFunc(n.handle), cfg.RingSize)
	n.fireIRQFn = n.fireIRQ
	return n
}

// AttachBridge wires the overlay path: decapsulated frames are forwarded
// to the bridge device.
func (n *NIC) AttachBridge(br *netdev.Device) { n.bridge = br }

// SetObs installs the observability pipeline (nil disables collection).
func (n *NIC) SetObs(p *obs.Pipeline) { n.obs = p }

// SetFault installs the fault plane (nil disables injection).
func (n *NIC) SetFault(p *fault.Plane) { n.fault = p }

// PoolOutstanding reports how many SKBs and pooled frame buffers this
// NIC's pools have checked out; both must be zero after a drained run.
func (n *NIC) PoolOutstanding() (skbs, frames int) {
	return n.skbs.Outstanding(), n.frames.Outstanding()
}

// DMA places a received frame into the RX ring at time now (the link layer
// calls this) and drives interrupt moderation. The bytes are copied into a
// pooled ring buffer, so the caller keeps ownership of frame and may reuse
// its backing array immediately.
func (n *NIC) DMA(now sim.Time, frame []byte) {
	if n.fault.RingOverrun(now, n.cfg.Name) {
		// The DMA engine lost the frame before posting a descriptor: no
		// SKB exists; the plane accounts the drop.
		n.Overruns++
		return
	}
	buf := n.frames.Get(len(frame))
	copy(buf.B, frame)
	skb := n.skbs.Get()
	skb.SetFrame(buf)
	skb.Arrived, skb.ID, skb.GROSegs = now, n.nextID, 1
	n.nextID++
	highRing := false
	if n.cfg.PriorityRings {
		// Hardware flow steering: classify before ring placement. The
		// lookup itself costs no host CPU — that is the whole point of
		// pushing it into the NIC.
		highRing = n.classify(frame, skb)
	}
	enqueued := false
	if highRing {
		enqueued = n.Dev.HighQ.Enqueue(skb)
	} else {
		if n.cfg.Shed && n.Dev.LowQ.Len() >= n.Dev.LowQ.Cap() {
			// Overload: before letting the full ring reject this frame,
			// check whether it deserves a slot more than something queued.
			// Without priority rings nothing in the ring has been
			// classified yet (the stage-1 limitation), so the policy
			// classifies only the arriving frame and treats every
			// unclassified resident as sheddable.
			if !n.cfg.PriorityRings {
				n.classify(frame, skb)
			}
			if skb.Priority > 0 {
				if victim := n.Dev.LowQ.EvictLowPrio(); victim != nil {
					n.ShedDrops++
					if n.obs != nil {
						n.obs.Drop(now, n.Dev.Name, obs.StageShed, victim.ID, victim.Priority)
					}
					victim.Free()
				}
			}
		}
		enqueued = n.Dev.LowQ.Enqueue(skb)
	}
	if !enqueued {
		// Ring overrun; drop counted by the queue.
		if n.obs != nil {
			n.obs.Drop(now, n.Dev.Name, obs.StageDMA, skb.ID, skb.Priority)
		}
		skb.Free()
		return
	}
	n.DMAd++
	if n.obs != nil {
		n.obs.DMA(now, n.Dev.Name, skb.ID, skb.Priority)
	}
	if highRing && !n.Dev.InPollList {
		// High-ring packets interrupt immediately, bypassing moderation.
		n.fireHighIRQ()
		return
	}
	if n.Dev.InPollList {
		// NAPI is already scheduled/polling: IRQs for this queue are
		// masked; the packet will be picked up by the poll loop.
		return
	}
	if n.cfg.RxUsecs <= 0 && n.cfg.RxFrames <= 1 {
		n.fireIRQ()
		return
	}
	if n.cfg.AdaptiveIdle > 0 && now-n.lastIRQ >= n.cfg.AdaptiveIdle {
		n.fireIRQ()
		return
	}
	n.pendingIRQ++
	if n.pendingIRQ == 1 {
		n.firstPending = now
		n.irqTimer = n.eng.At(now+n.cfg.RxUsecs, n.fireIRQFn)
	}
	if n.pendingIRQ >= n.cfg.RxFrames {
		n.fireIRQ()
	}
}

// classify runs priority classification against the wire frame and stamps
// the SKB, reporting whether the packet classified high. Both hardware
// flow steering (PriorityRings) and the shed policy's admission check use
// it; handle()'s software classification is idempotent with it.
func (n *NIC) classify(frame []byte, skb *pkt.SKB) bool {
	inner, ok := innerFrame(frame)
	if !ok {
		return false
	}
	flow, err := pkt.ParseFlow(inner)
	if err != nil {
		return false
	}
	if lvl := n.db.ClassifyLevel(flow); lvl > 0 {
		skb.Priority = lvl
		skb.HighPriority = true
		return true
	}
	return false
}

// innerFrame strips VXLAN encapsulation for classification, returning the
// frame whose flow identifies the application.
func innerFrame(frame []byte) ([]byte, bool) {
	if !pkt.IsVXLAN(frame) {
		return frame, true
	}
	_, inner, err := pkt.Decapsulate(frame)
	if err != nil {
		return nil, false
	}
	return inner, true
}

// fireHighIRQ raises an interrupt for the high-priority ring, telling the
// engine the device has urgent packets (head insertion in PRISM).
func (n *NIC) fireHighIRQ() {
	if n.irqTimer != nil {
		n.eng.Cancel(n.irqTimer)
		n.irqTimer = nil
	}
	n.pendingIRQ = 0
	if n.fault.DropIRQ(n.eng.Now(), n.cfg.Name) {
		n.LostIRQs++
		return
	}
	n.raise(n.eng.Now(), true)
}

// fireIRQ raises the hardware interrupt (once) and resets moderation.
func (n *NIC) fireIRQ() {
	if n.irqTimer != nil {
		n.eng.Cancel(n.irqTimer)
		n.irqTimer = nil
	}
	n.pendingIRQ = 0
	if n.Dev.InPollList {
		return
	}
	if n.fault.DropIRQ(n.eng.Now(), n.cfg.Name) {
		n.LostIRQs++
		return
	}
	n.raise(n.eng.Now(), false)
}

// raise delivers the interrupt to the scheduler unconditionally: past
// moderation, past injection. The moderated paths funnel here, and the
// watchdog rearm uses it directly (a rearm that could itself be lost
// would leave rescue to luck).
func (n *NIC) raise(now sim.Time, high bool) {
	n.IRQs++
	n.lastIRQ = now
	if n.obs != nil {
		n.obs.IRQ(now, n.Dev.Name)
	}
	n.sched.NotifyArrival(n.Dev, high)
}

// DeviceName implements fault.Device.
func (n *NIC) DeviceName() string { return n.cfg.Name }

// Stuck implements fault.Device: packets are queued but no poll is
// scheduled and no moderation timer is pending — the state a lost
// interrupt strands the device in, with nothing left to wake it except
// another arrival.
func (n *NIC) Stuck() bool {
	return n.Dev.HasPackets() && !n.Dev.InPollList && n.irqTimer == nil
}

// RearmIRQ implements fault.Device: the watchdog's dev_watchdog-style
// recovery re-raises the interrupt for a stuck device.
func (n *NIC) RearmIRQ(now sim.Time) {
	if !n.Stuck() {
		return
	}
	n.WatchdogRearms++
	n.raise(now, !n.Dev.HighQ.Empty())
}

// SpuriousIRQ implements fault.Device: an interrupt with no (new) packets
// behind it. Masked while the device is in the poll list, like the real
// IRQ line; moderation state is deliberately left alone.
func (n *NIC) SpuriousIRQ(now sim.Time) {
	if n.Dev.InPollList {
		return
	}
	n.raise(now, false)
}

// handle is the stage-1 poll processing for one SKB: GRO, classification,
// then decap-and-forward (overlay) or protocol receive (host).
func (n *NIC) handle(now sim.Time, skb *pkt.SKB) netdev.Result {
	// Identify the flow this packet belongs to. For VXLAN traffic the
	// priority database is matched against the *inner* flow — that is
	// what identifies the container application (§IV-A).
	encapsulated := pkt.IsVXLAN(skb.Data)
	var inner []byte
	if encapsulated {
		vni, in, err := pkt.Decapsulate(skb.Data)
		if err != nil {
			return netdev.Result{Verdict: netdev.VerdictDrop, Cost: n.costs.NICPacket}
		}
		_ = vni // a single-VNI fabric; multi-VNI demux lives in the bridge FDB
		inner = in
	} else {
		inner = skb.Data
	}
	flow, ferr := pkt.ParseFlow(inner)
	if ferr != nil {
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: n.costs.NICPacket}
	}
	skb.Flow = flow
	skb.Encapsulated = encapsulated
	// Priority classification happens exactly once, at SKB allocation in
	// the physical device's poll context. (With PriorityRings the NIC has
	// already classified in hardware; the software check is idempotent.)
	skb.Priority = n.db.ClassifyLevel(flow)
	skb.HighPriority = skb.Priority > 0

	// GRO: merge consecutive same-flow TCP segments into the run head. A
	// gap of more than ~one batch overhead means a new poll batch started,
	// which flushes the GRO table (napi_complete does this in Linux).
	if n.cfg.GRO && flow.Proto == pkt.ProtoTCP {
		// The generation check detects a head that completed downstream and
		// was recycled since the last merge; growing it then would mutate
		// whichever packet reuses the SKB (or a delivered one) — the
		// use-after-free the kernel's flush-on-complete prevents.
		fresh := n.groHead != nil && n.groHead.Gen() == n.groGen &&
			n.groFlow == flow && n.groRun < GROMaxSegs &&
			now-n.groAt <= groFlushGap
		n.groAt = now
		if fresh {
			n.groHead.GROSegs++
			n.groRun++
			n.Merged++
			return netdev.Result{Verdict: netdev.VerdictAbsorbed, Cost: n.costs.GROPacket}
		}
		n.groFlow = flow
		n.groHead = skb
		n.groGen = skb.Gen()
		n.groRun = 1
	} else {
		n.groHead = nil
	}

	if encapsulated {
		if n.bridge == nil {
			return netdev.Result{Verdict: netdev.VerdictDrop, Cost: n.costs.NICPacket}
		}
		// Strip the outer headers: the inner frame proceeds to stage 2.
		skb.Data = inner
		skb.Encapsulated = false
		return netdev.Result{Verdict: netdev.VerdictForward, Cost: n.costs.NICPacket, Next: n.bridge}
	}

	// Host network: single-stage receive straight to the socket.
	return socket.DeliverToTable(n.hostSockets, n.costs.HostPacket, skb)
}
