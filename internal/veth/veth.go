// Package veth models a container's virtual Ethernet interface — stage 3
// of the overlay pipeline. veth has no NAPI implementation of its own; in
// Linux it goes through netif_rx into the per-CPU backlog and is polled by
// process_backlog (§II-A3). The device here carries the DriverBacklog kind
// so traces show the same three driver classes as the paper's Fig. 1.
//
// The stage performs the container-side protocol receive: inner IP and
// transport processing, then socket demux within the container's network
// namespace.
package veth

import (
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/sim"
	"prism/internal/socket"
)

// QueueCap mirrors netdev_max_backlog (1000 in default Linux).
const QueueCap = 1000

// Veth is a container-facing virtual interface.
type Veth struct {
	Dev *netdev.Device

	costs *netdev.Costs
	// MAC and IP identify the container endpoint; frames not addressed to
	// them are dropped (the interface is not promiscuous).
	MAC pkt.MAC
	IP  pkt.IPv4
	// sockets is the container namespace's socket table.
	sockets *socket.Table

	// Misaddressed counts frames that reached this veth with a foreign
	// destination (would indicate an FDB bug).
	Misaddressed uint64
}

// New builds the veth device for a container endpoint.
func New(name string, costs *netdev.Costs, mac pkt.MAC, ip pkt.IPv4, sockets *socket.Table) *Veth {
	v := &Veth{costs: costs, MAC: mac, IP: ip, sockets: sockets}
	v.Dev = netdev.NewDevice(name, netdev.DriverBacklog, netdev.HandlerFunc(v.handle), QueueCap)
	return v
}

func (v *Veth) handle(now sim.Time, skb *pkt.SKB) netdev.Result {
	eth, err := pkt.ParseEthernet(skb.Data)
	if err != nil {
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: v.costs.VethPacket}
	}
	if eth.Dst != v.MAC && !eth.Dst.IsBroadcast() {
		v.Misaddressed++
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: v.costs.VethPacket}
	}
	// Validate the inner IP header the way ip_rcv does; the flow key was
	// already parsed and cached at stage 1.
	if _, err := pkt.ParseIPv4(skb.Data[pkt.EthHeaderLen:]); err != nil {
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: v.costs.VethPacket}
	}
	return socket.DeliverToTable(v.sockets, v.costs.VethPacket, skb)
}
