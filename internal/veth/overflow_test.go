package veth

import (
	"testing"

	"prism/internal/cpu"
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/sched"
	"prism/internal/sim"
	"prism/internal/socket"
)

// TestBacklogOverflowDropsAndRecovers models a stalled softirq consumer
// backing up the per-CPU backlog past netdev_max_backlog: the overflow is
// rejected with exact drop accounting and every rejected SKB returned to
// its pool, and once the consumer resumes the whole backlog drains to the
// sockets, the pools rebalance to zero, and new arrivals are admitted
// again with no residual drop counts.
func TestBacklogOverflowDropsAndRecovers(t *testing.T) {
	eng := sim.NewEngine(1)
	costs := netdev.DefaultCosts()
	b := NewBacklog("veth0", costs)

	tbl := socket.NewTable("ctr0")
	th := sched.NewThread("app", eng, cpu.NewCore(1, nil), 0)
	var got []socket.Message
	app := socket.AppFunc{Fn: func(_ sim.Time, m socket.Message) { got = append(got, m) }}
	// rcvbuf 0 = unlimited, so the socket absorbs the full backlog.
	if _, err := tbl.Bind(pkt.ProtoUDP, 9000, th, app, 0); err != nil {
		t.Fatal(err)
	}
	b.Register(ctrMAC, ctrIP, tbl)

	var skbs pkt.SKBPool
	var frames pkt.FramePool
	wire := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: srcMAC, DstMAC: ctrMAC, SrcIP: srcIP, DstIP: ctrIP,
		SrcPort: 5, DstPort: 9000, Payload: []byte("backlog"),
	})
	flow, err := pkt.ParseFlow(wire)
	if err != nil {
		t.Fatal(err)
	}
	mkSKB := func() *pkt.SKB {
		s := skbs.Get()
		f := frames.Get(len(wire))
		copy(f.B, wire)
		s.SetFrame(f)
		s.Flow = flow
		return s
	}

	// Phase 1 — consumer stalled: arrivals keep landing in the backlog
	// queue until netdev_max_backlog, then overflow. The producer (softirq
	// routing a stage transition) owns and frees each rejected SKB.
	const overflow = 50
	for i := 0; i < QueueCap+overflow; i++ {
		s := mkSKB()
		if !b.Dev.LowQ.Enqueue(s) {
			s.Free()
		}
	}
	if got, want := b.Dev.LowQ.Len(), QueueCap; got != want {
		t.Fatalf("backlog depth = %d, want %d", got, want)
	}
	if b.Dev.LowQ.Dropped != overflow {
		t.Fatalf("Dropped = %d, want %d", b.Dev.LowQ.Dropped, overflow)
	}
	if out := skbs.Outstanding(); out != QueueCap {
		t.Fatalf("SKBs outstanding while stalled = %d, want %d (rejected ones freed)", out, QueueCap)
	}

	// Phase 2 — consumer resumes: drain the backlog the way process_backlog
	// does — handle, then hand delivered packets to their socket sink.
	now := sim.Time(1000)
	for s := b.Dev.LowQ.Dequeue(); s != nil; s = b.Dev.LowQ.Dequeue() {
		res := b.handle(now, s)
		if res.Verdict == netdev.VerdictDeliver {
			res.Sink.DeliverSKB(now, s)
		} else {
			s.Free()
		}
		now += res.Cost
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != QueueCap {
		t.Fatalf("delivered %d messages after resume, want %d", len(got), QueueCap)
	}
	if out := skbs.Outstanding(); out != 0 {
		t.Fatalf("SKB pool leak after drain: %d outstanding", out)
	}
	if out := frames.Outstanding(); out != 0 {
		t.Fatalf("frame pool leak after drain: %d outstanding", out)
	}

	// Phase 3 — recovered: the next arrival is admitted and delivered, and
	// no new drops are charged.
	s := mkSKB()
	if !b.Dev.LowQ.Enqueue(s) {
		t.Fatal("recovered backlog rejected a new arrival")
	}
	s = b.Dev.LowQ.Dequeue()
	res := b.handle(now, s)
	if res.Verdict != netdev.VerdictDeliver {
		t.Fatalf("post-recovery verdict = %v", res.Verdict)
	}
	res.Sink.DeliverSKB(now, s)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != QueueCap+1 {
		t.Fatalf("post-recovery deliveries = %d, want %d", len(got), QueueCap+1)
	}
	if b.Dev.LowQ.Dropped != overflow {
		t.Fatalf("Dropped moved to %d after recovery, want %d", b.Dev.LowQ.Dropped, overflow)
	}
	if skbs.Outstanding() != 0 || frames.Outstanding() != 0 {
		t.Fatalf("pool leak after recovery: skbs=%d frames=%d", skbs.Outstanding(), frames.Outstanding())
	}
}

// TestBacklogShedPrefersLowPriority exercises the overload policy at the
// backlog queue: with the queue full of best-effort packets, EvictLowPrio
// makes room for a prioritized arrival, and a queue full of prioritized
// packets yields no victim.
func TestBacklogShedPrefersLowPriority(t *testing.T) {
	q := netdev.NewQueue(4)
	var skbs pkt.SKBPool
	fill := func(prio int) {
		for q.Len() < q.Cap() {
			s := skbs.Get()
			s.Priority = prio
			q.Enqueue(s)
		}
	}

	fill(0)
	victim := q.EvictLowPrio()
	if victim == nil {
		t.Fatal("no victim among best-effort packets")
	}
	victim.Free()
	hi := skbs.Get()
	hi.Priority = 1
	if !q.Enqueue(hi) {
		t.Fatal("high-priority arrival rejected after eviction")
	}
	if q.Dropped != 0 {
		t.Fatalf("eviction charged Dropped = %d, want 0 (shed is accounted by the caller)", q.Dropped)
	}

	for s := q.Dequeue(); s != nil; s = q.Dequeue() {
		s.Free()
	}
	fill(1)
	if v := q.EvictLowPrio(); v != nil {
		t.Fatalf("evicted a prioritized packet: %+v", v)
	}
	for s := q.Dequeue(); s != nil; s = q.Dequeue() {
		s.Free()
	}
	if skbs.Outstanding() != 0 {
		t.Fatalf("pool leak: %d outstanding", skbs.Outstanding())
	}
}
