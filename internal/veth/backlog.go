package veth

import (
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/sim"
	"prism/internal/socket"
)

// Backlog is the per-CPU generic receive context that serves *all* veth
// interfaces on a core — the kernel's softnet_data.input_pkt_queue +
// process_backlog pair (§II-A3 of the paper). This is an important piece
// of fidelity: because every non-NAPI virtual device shares this one
// queue, a high-priority packet in vanilla NAPI waits behind *all*
// containers' backlog at stage 3, not just its own flow's. PRISM's second
// queue is added to exactly this structure in the paper (§IV-B extends
// softnet_data).
type Backlog struct {
	Dev *netdev.Device

	costs *netdev.Costs
	// endpoints maps each veth MAC (packed with pkt.MAC.Key for the fast
	// integer map path) to its container's identity and socket table.
	endpoints map[uint64]*endpoint

	// Misaddressed counts frames whose destination MAC has no registered
	// veth (an FDB inconsistency).
	Misaddressed uint64
}

type endpoint struct {
	ip      pkt.IPv4
	sockets *socket.Table
}

// NewBacklog builds the per-CPU backlog device. Its queue capacity is
// netdev_max_backlog (1000), shared by all veths on the core.
func NewBacklog(name string, costs *netdev.Costs) *Backlog {
	b := &Backlog{costs: costs, endpoints: make(map[uint64]*endpoint)}
	b.Dev = netdev.NewDevice(name, netdev.DriverBacklog, netdev.HandlerFunc(b.handle), QueueCap)
	return b
}

// Register attaches a veth endpoint (a container) to this backlog.
func (b *Backlog) Register(mac pkt.MAC, ip pkt.IPv4, sockets *socket.Table) {
	b.endpoints[mac.Key()] = &endpoint{ip: ip, sockets: sockets}
}

func (b *Backlog) handle(now sim.Time, skb *pkt.SKB) netdev.Result {
	eth, err := pkt.ParseEthernet(skb.Data)
	if err != nil {
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: b.costs.VethPacket}
	}
	ep := b.endpoints[eth.Dst.Key()]
	if ep == nil {
		b.Misaddressed++
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: b.costs.VethPacket}
	}
	if _, err := pkt.ParseIPv4(skb.Data[pkt.EthHeaderLen:]); err != nil {
		return netdev.Result{Verdict: netdev.VerdictDrop, Cost: b.costs.VethPacket}
	}
	return socket.DeliverToTable(ep.sockets, b.costs.VethPacket, skb)
}
