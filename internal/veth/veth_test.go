package veth

import (
	"testing"

	"prism/internal/cpu"
	"prism/internal/netdev"
	"prism/internal/pkt"
	"prism/internal/sched"
	"prism/internal/sim"
	"prism/internal/socket"
)

var (
	ctrMAC = pkt.MAC{0x02, 0x42, 0, 0, 0, 2}
	ctrIP  = pkt.Addr(172, 17, 0, 2)
	srcMAC = pkt.MAC{0x02, 0x42, 0, 0, 0, 3}
	srcIP  = pkt.Addr(172, 17, 0, 3)
)

func newVeth(t *testing.T, eng *sim.Engine) (*Veth, *socket.Table, *[]socket.Message) {
	t.Helper()
	tbl := socket.NewTable("ctr0")
	th := sched.NewThread("app", eng, cpu.NewCore(1, nil), 0)
	var got []socket.Message
	app := socket.AppFunc{Fn: func(done sim.Time, m socket.Message) { got = append(got, m) }}
	if _, err := tbl.Bind(pkt.ProtoUDP, 11211, th, app, 0); err != nil {
		t.Fatal(err)
	}
	return New("veth0", netdev.DefaultCosts(), ctrMAC, ctrIP, tbl), tbl, &got
}

func frame(t *testing.T, dstMAC pkt.MAC, dstPort uint16) *pkt.SKB {
	t.Helper()
	f := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: srcMAC, DstMAC: dstMAC, SrcIP: srcIP, DstIP: ctrIP,
		SrcPort: 999, DstPort: dstPort, Payload: []byte("req"),
	})
	flow, err := pkt.ParseFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	return &pkt.SKB{Data: f, Flow: flow}
}

func TestVethDelivers(t *testing.T) {
	eng := sim.NewEngine(1)
	v, _, got := newVeth(t, eng)
	skb := frame(t, ctrMAC, 11211)
	res := v.handle(0, skb)
	if res.Verdict != netdev.VerdictDeliver {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	eng.At(100, func() { res.Sink.DeliverSKB(100, skb) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || string((*got)[0].Payload) != "req" {
		t.Fatalf("messages = %+v", got)
	}
}

func TestVethRejectsForeignMAC(t *testing.T) {
	eng := sim.NewEngine(1)
	v, _, _ := newVeth(t, eng)
	res := v.handle(0, frame(t, pkt.MAC{9, 9, 9, 9, 9, 9}, 11211))
	if res.Verdict != netdev.VerdictDrop {
		t.Errorf("verdict = %v", res.Verdict)
	}
	if v.Misaddressed != 1 {
		t.Errorf("Misaddressed = %d", v.Misaddressed)
	}
}

func TestVethNoListenerDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	v, _, _ := newVeth(t, eng)
	if res := v.handle(0, frame(t, ctrMAC, 4444)); res.Verdict != netdev.VerdictDrop {
		t.Errorf("verdict = %v", res.Verdict)
	}
}

func TestVethGarbageDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	v, _, _ := newVeth(t, eng)
	if res := v.handle(0, &pkt.SKB{Data: []byte{1, 2}}); res.Verdict != netdev.VerdictDrop {
		t.Errorf("verdict = %v", res.Verdict)
	}
	// Corrupt IP header under a valid Ethernet header.
	s := frame(t, ctrMAC, 11211)
	s.Data[pkt.EthHeaderLen] = 0x55 // bad version/IHL
	if res := v.handle(0, s); res.Verdict != netdev.VerdictDrop {
		t.Errorf("bad-ip verdict = %v", res.Verdict)
	}
}

func TestVethQueueCapMatchesBacklogDefault(t *testing.T) {
	eng := sim.NewEngine(1)
	v, _, _ := newVeth(t, eng)
	if v.Dev.LowQ.Cap() != 1000 {
		t.Errorf("backlog cap = %d, want 1000 (netdev_max_backlog)", v.Dev.LowQ.Cap())
	}
	if v.Dev.Kind != netdev.DriverBacklog {
		t.Errorf("kind = %v", v.Dev.Kind)
	}
}

func TestBacklogServesMultipleEndpoints(t *testing.T) {
	eng := sim.NewEngine(1)
	costs := netdev.DefaultCosts()
	b := NewBacklog("veth0", costs)

	mk := func(name string, mac pkt.MAC, ip pkt.IPv4) *[]socket.Message {
		tbl := socket.NewTable(name)
		th := sched.NewThread(name, eng, cpu.NewCore(1, nil), 0)
		var got []socket.Message
		app := socket.AppFunc{Fn: func(_ sim.Time, m socket.Message) { got = append(got, m) }}
		if _, err := tbl.Bind(pkt.ProtoUDP, 9000, th, app, 0); err != nil {
			t.Fatal(err)
		}
		b.Register(mac, ip, tbl)
		return &got
	}
	macB2 := pkt.MAC{0x02, 0x42, 0, 0, 0, 9}
	ipB2 := pkt.Addr(172, 17, 0, 9)
	gotA := mk("a", ctrMAC, ctrIP)
	gotB := mk("b", macB2, ipB2)

	deliver := func(dst pkt.MAC, dstIP pkt.IPv4, payload string) (netdev.Result, *pkt.SKB) {
		f := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
			SrcMAC: srcMAC, DstMAC: dst, SrcIP: srcIP, DstIP: dstIP,
			SrcPort: 5, DstPort: 9000, Payload: []byte(payload),
		})
		flow, err := pkt.ParseFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		skb := &pkt.SKB{Data: f, Flow: flow}
		return b.handle(0, skb), skb
	}

	resA, skbA := deliver(ctrMAC, ctrIP, "for-a")
	resB, skbB := deliver(macB2, ipB2, "for-b")
	if resA.Verdict != netdev.VerdictDeliver || resB.Verdict != netdev.VerdictDeliver {
		t.Fatalf("verdicts = %v/%v", resA.Verdict, resB.Verdict)
	}
	eng.At(10, func() { resA.Sink.DeliverSKB(10, skbA); resB.Sink.DeliverSKB(10, skbB) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*gotA) != 1 || string((*gotA)[0].Payload) != "for-a" {
		t.Errorf("endpoint a got %+v", gotA)
	}
	if len(*gotB) != 1 || string((*gotB)[0].Payload) != "for-b" {
		t.Errorf("endpoint b got %+v", gotB)
	}

	// Unknown MAC counts as misaddressed.
	if res, _ := deliver(pkt.MAC{9, 9, 9, 9, 9, 9}, ctrIP, "x"); res.Verdict != netdev.VerdictDrop {
		t.Errorf("unknown MAC verdict = %v", res.Verdict)
	}
	if b.Misaddressed != 1 {
		t.Errorf("Misaddressed = %d", b.Misaddressed)
	}
	// Garbage frame drops cleanly.
	if res := b.handle(0, &pkt.SKB{Data: []byte{1}}); res.Verdict != netdev.VerdictDrop {
		t.Errorf("garbage verdict = %v", res.Verdict)
	}
}
