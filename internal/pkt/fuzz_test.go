package pkt

import (
	"bytes"
	"os"
	"testing"
)

// The fuzz targets harden the wire-facing parsers against the fault
// plane's corrupted frames (internal/fault flips random bits before DMA):
// on arbitrary input the parsers must return an error or a result — never
// panic, never read past the buffer, and never hand back a slice that
// escapes the frame. Seed corpora live in testdata/fuzz (regenerate with
// `go run gen_fuzz_corpus.go`); CI additionally runs each target with
// -fuzz for a short smoke burst.

// fuzzInner builds the valid inner frame the generators use, so the
// mutation engine starts from the accepting path.
func fuzzInner() []byte {
	return BuildUDPFrame(UDPFrameSpec{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcIP: IPv4{10, 0, 0, 1}, DstIP: IPv4{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 11111,
		Payload: []byte("fuzz-seed-payload"),
	})
}

func fuzzOuter() []byte {
	return Encapsulate(VXLANSpec{
		OuterSrcMAC: MAC{2, 0, 0, 1, 0, 1}, OuterDstMAC: MAC{2, 0, 0, 1, 0, 2},
		OuterSrcIP: IPv4{192, 168, 0, 1}, OuterDstIP: IPv4{192, 168, 0, 2},
		SrcPort: 49152, VNI: 42,
	}, fuzzInner())
}

func FuzzDecapsulate(f *testing.F) {
	f.Add(fuzzOuter())
	f.Add(fuzzInner())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		vni, inner, err := Decapsulate(frame)
		if err != nil {
			return
		}
		if vni > 0xffffff {
			t.Fatalf("VNI %d exceeds 24 bits", vni)
		}
		// The inner frame must be a sub-slice of the input: the decapsulated
		// view can never escape the wire frame.
		if len(inner) > len(frame) {
			t.Fatalf("inner frame longer than wire frame: %d > %d", len(inner), len(frame))
		}
		if len(inner) > 0 && !sameBacking(frame, inner) {
			t.Fatalf("inner frame escaped the wire frame's backing array")
		}
		// The inner bytes must themselves survive the downstream parsers.
		_, _ = ParseFlow(inner)
		_ = IsVXLAN(inner)
	})
}

// sameBacking reports whether sub lies within outer's backing array.
func sameBacking(outer, sub []byte) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(outer); i++ {
		if &outer[i] == &sub[0] {
			return true
		}
	}
	return false
}

func FuzzParseIPv4(f *testing.F) {
	valid := fuzzInner()[EthHeaderLen:]
	f.Add(valid)
	f.Add(valid[:IPv4HeaderLen])
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := ParseIPv4(b)
		if err != nil {
			return
		}
		if int(h.TotalLen) > len(b) || h.TotalLen < IPv4HeaderLen {
			t.Fatalf("accepted total length %d outside [%d, %d]", h.TotalLen, IPv4HeaderLen, len(b))
		}
		// Round-trip: re-encoding the accepted header must parse back equal
		// (modulo the checksum field, which PutIPv4 recomputes). The buffer
		// is sized to TotalLen so the length validation still holds.
		buf := make([]byte, int(h.TotalLen))
		PutIPv4(buf, h)
		h2, err := ParseIPv4(buf)
		if err != nil {
			t.Fatalf("re-encoded accepted header rejected: %v", err)
		}
		h.Checksum, h2.Checksum = 0, 0
		if h != h2 {
			t.Fatalf("round-trip mismatch:\nparsed:   %+v\nreparsed: %+v", h, h2)
		}
	})
}

func FuzzParseUDP(f *testing.F) {
	valid := fuzzInner()[EthHeaderLen+IPv4HeaderLen:]
	f.Add(valid)
	f.Add(valid[:UDPHeaderLen])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := ParseUDP(b)
		if err != nil {
			return
		}
		if int(h.Length) > len(b) || h.Length < UDPHeaderLen {
			t.Fatalf("accepted UDP length %d outside [%d, %d]", h.Length, UDPHeaderLen, len(b))
		}
		var buf [UDPHeaderLen]byte
		PutUDP(buf[:], UDPHeader{SrcPort: h.SrcPort, DstPort: h.DstPort, Length: UDPHeaderLen})
		if h2, err := ParseUDP(buf[:]); err != nil || h2.SrcPort != h.SrcPort || h2.DstPort != h.DstPort {
			t.Fatalf("round-trip mismatch: %+v -> %+v (%v)", h, h2, err)
		}
	})
}

func FuzzParseTCP(f *testing.F) {
	tcp := BuildTCPFrame(TCPFrameSpec{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcIP: IPv4{10, 0, 0, 1}, DstIP: IPv4{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 5201, Seq: 1, Ack: 2, Flags: TCPAck,
	})[EthHeaderLen+IPv4HeaderLen:]
	f.Add(tcp)
	f.Add(tcp[:TCPHeaderLen])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := ParseTCP(b)
		if err != nil {
			return
		}
		var buf [TCPHeaderLen]byte
		PutTCP(buf[:], h)
		h2, err := ParseTCP(buf[:])
		if err != nil {
			t.Fatalf("re-encoded accepted header rejected: %v", err)
		}
		if h != h2 {
			t.Fatalf("round-trip mismatch:\nparsed:   %+v\nreparsed: %+v", h, h2)
		}
	})
}

// TestFuzzCorpusCommitted guards the committed seed corpus: each target
// must ship at least the generator's seeds so `go test` (without -fuzz)
// always replays them.
func TestFuzzCorpusCommitted(t *testing.T) {
	for _, target := range []string{"FuzzDecapsulate", "FuzzParseIPv4", "FuzzParseUDP", "FuzzParseTCP"} {
		dir := "testdata/fuzz/" + target
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			t.Errorf("%s: no committed corpus in %s (regenerate with `go run gen_fuzz_corpus.go`): %v", target, dir, err)
		}
	}
}

// TestDecapsulateCorruptionSweep mirrors the fault plane's exact
// corruption model deterministically: every single-bit flip of a valid
// overlay frame must either decode or fail cleanly — no panic, no
// over-read — and truncations at every length must fail cleanly.
func TestDecapsulateCorruptionSweep(t *testing.T) {
	frame := fuzzOuter()
	for bit := 0; bit < len(frame)*8; bit++ {
		mut := bytes.Clone(frame)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, inner, err := Decapsulate(mut); err == nil && len(inner) > len(mut) {
			t.Fatalf("bit %d: inner frame over-read", bit)
		}
	}
	for n := 0; n <= len(frame); n++ {
		_, _, _ = Decapsulate(frame[:n])
		_, _ = ParseFlow(frame[:n])
	}
}
