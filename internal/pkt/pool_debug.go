//go:build pooldebug

package pkt

// PoolDebug reports whether use-after-put poisoning is compiled in.
const PoolDebug = true

// poisonByte fills freed buffers. 0xDB reads as garbage everywhere a parser
// looks: ethertype 0xDBDB is not IPv4, lengths are absurd, probe timestamps
// are in the far future — so a use-after-put fails loudly instead of
// silently reprocessing stale bytes.
const poisonByte = 0xDB

func poisonFrame(f *Frame) {
	b := f.B[:cap(f.B)]
	for i := range b {
		b[i] = poisonByte
	}
}

// poisonedData is what a freed SKB's Data points at: any read returns
// poison, and the headroom is far too short for a real frame, so parsers
// reject it immediately.
var poisonedData = []byte{poisonByte, poisonByte, poisonByte, poisonByte}

func poisonSKB(s *SKB) {
	s.Data = poisonedData
	s.ID = ^uint64(0)
	s.Stage = -1
}
