package pkt

import (
	"bytes"
	"testing"
	"testing/quick"

	"prism/internal/sim"
)

var (
	macA = MAC{0x02, 0x42, 0xac, 0x11, 0x00, 0x02}
	macB = MAC{0x02, 0x42, 0xac, 0x11, 0x00, 0x03}
	ipA  = Addr(10, 0, 0, 2)
	ipB  = Addr(10, 0, 0, 3)
)

func TestMACString(t *testing.T) {
	if got := macA.String(); got != "02:42:ac:11:00:02" {
		t.Errorf("MAC string = %q", got)
	}
	if !BroadcastMAC.IsBroadcast() {
		t.Error("BroadcastMAC not broadcast")
	}
	if macA.IsBroadcast() {
		t.Error("unicast MAC reported broadcast")
	}
}

func TestIPv4String(t *testing.T) {
	if got := ipA.String(); got != "10.0.0.2" {
		t.Errorf("IPv4 string = %q", got)
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{SrcIP: ipA, DstIP: ipB, Proto: ProtoUDP, SrcPort: 1000, DstPort: 2000}
	r := k.Reverse()
	if r.SrcIP != ipB || r.DstIP != ipA || r.SrcPort != 2000 || r.DstPort != 1000 {
		t.Errorf("Reverse = %v", r)
	}
	if r.Reverse() != k {
		t.Error("double reverse != identity")
	}
	if k.String() == "" || (FlowKey{Proto: ProtoTCP}).String() == "" || (FlowKey{Proto: 99}).String() == "" {
		t.Error("empty flow string")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	h := EthernetHeader{Dst: macB, Src: macA, EtherType: EtherTypeIPv4}
	b := make([]byte, EthHeaderLen)
	if n := PutEthernet(b, h); n != EthHeaderLen {
		t.Fatalf("PutEthernet wrote %d", n)
	}
	got, err := ParseEthernet(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip = %+v, want %+v", got, h)
	}
}

func TestEthernetTooShort(t *testing.T) {
	if _, err := ParseEthernet(make([]byte, 5)); err == nil {
		t.Error("no error on short frame")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{
		TOS: 0x10, TotalLen: 100, ID: 7, Flags: 2, FragOff: 0,
		TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB,
	}
	b := make([]byte, 100)
	PutIPv4(b, h)
	got, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	// Checksum is filled in by encode; compare the rest.
	h.Checksum = got.Checksum
	if got != h {
		t.Errorf("round trip = %+v, want %+v", got, h)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	b := make([]byte, 40)
	PutIPv4(b, IPv4Header{TotalLen: 40, TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB})
	b[15] ^= 0xff // corrupt source IP
	if _, err := ParseIPv4(b); err == nil {
		t.Error("corrupted header parsed without error")
	}
}

func TestIPv4Malformed(t *testing.T) {
	tests := []struct {
		name string
		mut  func([]byte)
	}{
		{"bad version", func(b []byte) { b[0] = 0x65 }},
		{"bad ihl", func(b []byte) { b[0] = 0x46 }},
		{"bad total length", func(b []byte) { b[2], b[3] = 0xff, 0xff }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := make([]byte, 40)
			PutIPv4(b, IPv4Header{TotalLen: 40, TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB})
			tt.mut(b)
			// Recompute nothing: mutations must be caught by validation
			// (version/IHL checks fire before checksum for the first two).
			if _, err := ParseIPv4(b); err == nil {
				t.Error("malformed header parsed without error")
			}
		})
	}
	if _, err := ParseIPv4(make([]byte, 10)); err == nil {
		t.Error("short header parsed")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	h := UDPHeader{SrcPort: 1234, DstPort: 4789, Length: 20}
	b := make([]byte, 20)
	PutUDP(b, h)
	got, err := ParseUDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip = %+v, want %+v", got, h)
	}
	if _, err := ParseUDP(b[:4]); err == nil {
		t.Error("short datagram parsed")
	}
	PutUDP(b, UDPHeader{Length: 4})
	if _, err := ParseUDP(b); err == nil {
		t.Error("bad length parsed")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCPHeader{SrcPort: 80, DstPort: 5555, Seq: 1 << 30, Ack: 42, Flags: TCPAck | TCPPsh, Window: 65535}
	b := make([]byte, TCPHeaderLen)
	PutTCP(b, h)
	got, err := ParseTCP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip = %+v, want %+v", got, h)
	}
	if _, err := ParseTCP(b[:10]); err == nil {
		t.Error("short segment parsed")
	}
	b[12] = 6 << 4
	if _, err := ParseTCP(b); err == nil {
		t.Error("options segment parsed (unsupported)")
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	b := make([]byte, VXLANHeaderLen)
	PutVXLAN(b, VXLANHeader{VNI: 0xABCDEF})
	got, err := ParseVXLAN(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.VNI != 0xABCDEF {
		t.Errorf("VNI = %#x", got.VNI)
	}
	b[0] = 0
	if _, err := ParseVXLAN(b); err == nil {
		t.Error("missing I flag parsed")
	}
	if _, err := ParseVXLAN(b[:3]); err == nil {
		t.Error("short header parsed")
	}
}

func TestBuildUDPFrameAndParseFlow(t *testing.T) {
	payload := []byte("hello prism")
	f := BuildUDPFrame(UDPFrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 40000, DstPort: 11111, Payload: payload,
	})
	if len(f) != EthHeaderLen+IPv4HeaderLen+UDPHeaderLen+len(payload) {
		t.Fatalf("frame length %d", len(f))
	}
	k, err := ParseFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	want := FlowKey{SrcIP: ipA, DstIP: ipB, Proto: ProtoUDP, SrcPort: 40000, DstPort: 11111}
	if k != want {
		t.Errorf("flow = %v, want %v", k, want)
	}
	got, err := TransportPayload(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q", got)
	}
}

func TestBuildTCPFrame(t *testing.T) {
	payload := []byte("GET / HTTP/1.1\r\n\r\n")
	f := BuildTCPFrame(TCPFrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 33000, DstPort: 80, Seq: 100, Ack: 200, Flags: TCPAck | TCPPsh,
		Payload: payload,
	})
	k, err := ParseFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	if k.Proto != ProtoTCP || k.DstPort != 80 {
		t.Errorf("flow = %v", k)
	}
	got, err := TransportPayload(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q", got)
	}
}

func TestEncapsulateDecapsulate(t *testing.T) {
	inner := BuildUDPFrame(UDPFrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: Addr(172, 17, 0, 2), DstIP: Addr(172, 17, 0, 3),
		SrcPort: 1000, DstPort: 2000, Payload: []byte("inner"),
	})
	outer := Encapsulate(VXLANSpec{
		OuterSrcMAC: macB, OuterDstMAC: macA,
		OuterSrcIP: ipA, OuterDstIP: ipB,
		SrcPort: 54321, VNI: 42,
	}, inner)

	if !IsVXLAN(outer) {
		t.Fatal("IsVXLAN = false for encapsulated frame")
	}
	if IsVXLAN(inner) {
		t.Error("IsVXLAN = true for plain frame")
	}
	vni, got, err := Decapsulate(outer)
	if err != nil {
		t.Fatal(err)
	}
	if vni != 42 {
		t.Errorf("VNI = %d", vni)
	}
	if !bytes.Equal(got, inner) {
		t.Error("inner frame corrupted by encap/decap")
	}
}

func TestDecapsulateErrors(t *testing.T) {
	inner := BuildUDPFrame(UDPFrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1, DstPort: 2, Payload: []byte("x"),
	})
	if _, _, err := Decapsulate(inner); err == nil {
		t.Error("plain UDP frame decapsulated")
	}
	tcp := BuildTCPFrame(TCPFrameSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2})
	if _, _, err := Decapsulate(tcp); err == nil {
		t.Error("TCP frame decapsulated")
	}
	if _, _, err := Decapsulate([]byte{1, 2}); err == nil {
		t.Error("garbage decapsulated")
	}
}

// Property: VXLAN encapsulation round-trips arbitrary payloads.
func TestEncapRoundTripProperty(t *testing.T) {
	prop := func(payload []byte, vni uint32, sport uint16) bool {
		vni &= 0xffffff
		inner := BuildUDPFrame(UDPFrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: 5, DstPort: 6, Payload: payload,
		})
		if len(inner) > MTU+EthHeaderLen {
			return true // generator produced an over-MTU payload; skip
		}
		outer := Encapsulate(VXLANSpec{
			OuterSrcMAC: macB, OuterDstMAC: macA,
			OuterSrcIP: ipB, OuterDstIP: ipA,
			SrcPort: sport, VNI: vni,
		}, inner)
		gotVNI, gotInner, err := Decapsulate(outer)
		return err == nil && gotVNI == vni && bytes.Equal(gotInner, inner)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: flow key parse is stable under payload changes.
func TestParseFlowIgnoresPayloadProperty(t *testing.T) {
	prop := func(p1, p2 []byte) bool {
		f1 := BuildUDPFrame(UDPFrameSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, SrcPort: 9, DstPort: 10, Payload: p1})
		f2 := BuildUDPFrame(UDPFrameSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, SrcPort: 9, DstPort: 10, Payload: p2})
		k1, err1 := ParseFlow(f1)
		k2, err2 := ParseFlow(f2)
		return err1 == nil && err2 == nil && k1 == k2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseFlowErrors(t *testing.T) {
	if _, err := ParseFlow([]byte{1}); err == nil {
		t.Error("garbage produced flow key")
	}
	arp := make([]byte, EthHeaderLen)
	PutEthernet(arp, EthernetHeader{Dst: macB, Src: macA, EtherType: EtherTypeARP})
	if _, err := ParseFlow(arp); err == nil {
		t.Error("ARP frame produced flow key")
	}
	// ICMP: valid IP, no transport flow.
	b := make([]byte, EthHeaderLen+IPv4HeaderLen+8)
	PutEthernet(b, EthernetHeader{Dst: macB, Src: macA, EtherType: EtherTypeIPv4})
	PutIPv4(b[EthHeaderLen:], IPv4Header{TotalLen: IPv4HeaderLen + 8, TTL: 64, Protocol: ProtoICMP, Src: ipA, Dst: ipB})
	if _, err := ParseFlow(b); err == nil {
		t.Error("ICMP frame produced flow key")
	}
	if _, err := TransportPayload(b); err == nil {
		t.Error("ICMP frame produced transport payload")
	}
}

func TestProbeRoundTrip(t *testing.T) {
	buf := make([]byte, 64)
	PutProbe(buf, 77, 123456*sim.Nanosecond)
	seq, at, err := ParseProbe(buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 77 || at != 123456 {
		t.Errorf("probe = (%d, %v)", seq, at)
	}
	if _, _, err := ParseProbe(buf[:8]); err == nil {
		t.Error("short probe parsed")
	}
}

func TestSKBString(t *testing.T) {
	s := &SKB{ID: 1, Data: make([]byte, 60)}
	if s.Len() != 60 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.String() == "" {
		t.Error("empty string")
	}
	s.HighPriority = true
	if s.String() == "" {
		t.Error("empty string for high prio")
	}
}

func BenchmarkBuildUDPFrame(b *testing.B) {
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildUDPFrame(UDPFrameSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2, Payload: payload})
	}
}

func BenchmarkDecapsulate(b *testing.B) {
	inner := BuildUDPFrame(UDPFrameSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2, Payload: make([]byte, 64)})
	outer := Encapsulate(VXLANSpec{OuterSrcMAC: macB, OuterDstMAC: macA, OuterSrcIP: ipB, OuterDstIP: ipA, SrcPort: 3, VNI: 7}, inner)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decapsulate(outer); err != nil {
			b.Fatal(err)
		}
	}
}
