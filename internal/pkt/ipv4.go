package pkt

import (
	"encoding/binary"
	"fmt"
)

// IPv4HeaderLen is the length of an IPv4 header without options; the
// simulated stack never emits options.
const IPv4HeaderLen = 20

// IPv4Header is an IPv4 header without options.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16 // header + payload
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16 // as parsed; recomputed on encode
	Src      IPv4
	Dst      IPv4
}

// PutIPv4 encodes h at the start of b (which must have room for
// IPv4HeaderLen bytes), computing the header checksum, and returns the
// number of bytes written.
func PutIPv4(b []byte, h IPv4Header) int {
	_ = b[IPv4HeaderLen-1]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	cs := ipChecksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], cs)
	return IPv4HeaderLen
}

// ParseIPv4 decodes and validates an IPv4 header from the start of b. It
// verifies version, IHL, total length and the header checksum — the same
// validations ip_rcv performs.
func ParseIPv4(b []byte) (IPv4Header, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 packet too short: %d bytes", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 bad version %d", v)
	}
	if ihl := int(b[0]&0x0f) * 4; ihl != IPv4HeaderLen {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 unsupported header length %d", ihl)
	}
	if ipChecksum(b[:IPv4HeaderLen]) != 0 {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 header checksum mismatch")
	}
	var h IPv4Header
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	if int(h.TotalLen) > len(b) || h.TotalLen < IPv4HeaderLen {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 bad total length %d (frame %d)", h.TotalLen, len(b))
	}
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, nil
}

// ipChecksum computes the RFC 1071 internet checksum over b. Over a header
// whose checksum field holds the correct value, the result is zero.
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
