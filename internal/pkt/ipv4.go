package pkt

import (
	"encoding/binary"
	"fmt"
)

// IPv4HeaderLen is the length of an IPv4 header without options; the
// simulated stack never emits options.
const IPv4HeaderLen = 20

// IPv4Header is an IPv4 header without options.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16 // header + payload
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16 // as parsed; recomputed on encode
	Src      IPv4
	Dst      IPv4
}

// PutIPv4 encodes h at the start of b (which must have room for
// IPv4HeaderLen bytes), computing the header checksum, and returns the
// number of bytes written.
func PutIPv4(b []byte, h IPv4Header) int {
	_ = b[IPv4HeaderLen-1]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	cs := ipChecksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], cs)
	return IPv4HeaderLen
}

// ParseIPv4 decodes and validates an IPv4 header from the start of b. It
// verifies version, IHL, total length and the header checksum — the same
// validations ip_rcv performs.
func ParseIPv4(b []byte) (IPv4Header, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 packet too short: %d bytes", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 bad version %d", v)
	}
	if ihl := int(b[0]&0x0f) * 4; ihl != IPv4HeaderLen {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 unsupported header length %d", ihl)
	}
	if ipChecksum20(b) != 0 {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 header checksum mismatch")
	}
	var h IPv4Header
	h.TOS = b[1]
	h.TotalLen = uint16(b[2])<<8 | uint16(b[3])
	if int(h.TotalLen) > len(b) || h.TotalLen < IPv4HeaderLen {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 bad total length %d (frame %d)", h.TotalLen, len(b))
	}
	h.ID = uint16(b[4])<<8 | uint16(b[5])
	ff := uint16(b[6])<<8 | uint16(b[7])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = uint16(b[10])<<8 | uint16(b[11])
	h.Src = IPv4(b[12:16])
	h.Dst = IPv4(b[16:20])
	return h, nil
}

// ipChecksum computes the RFC 1071 internet checksum over b. Over a header
// whose checksum field holds the correct value, the result is zero.
func ipChecksum(b []byte) uint16 {
	if len(b) == IPv4HeaderLen {
		return ipChecksum20(b)
	}
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ipChecksum20 is ipChecksum unrolled for the option-less 20-byte header —
// the only shape this stack emits, validated on every hop of every packet.
// b must hold at least IPv4HeaderLen bytes.
func ipChecksum20(b []byte) uint16 {
	b = b[:IPv4HeaderLen]
	var s uint32
	s += uint32(b[0])<<8 | uint32(b[1])
	s += uint32(b[2])<<8 | uint32(b[3])
	s += uint32(b[4])<<8 | uint32(b[5])
	s += uint32(b[6])<<8 | uint32(b[7])
	s += uint32(b[8])<<8 | uint32(b[9])
	s += uint32(b[10])<<8 | uint32(b[11])
	s += uint32(b[12])<<8 | uint32(b[13])
	s += uint32(b[14])<<8 | uint32(b[15])
	s += uint32(b[16])<<8 | uint32(b[17])
	s += uint32(b[18])<<8 | uint32(b[19])
	for s > 0xffff {
		s = s&0xffff + s>>16
	}
	return ^uint16(s)
}
