package pkt

import (
	"bytes"
	"testing"
)

func TestFramePoolSizeClasses(t *testing.T) {
	var p FramePool
	f := p.Get(100)
	if len(f.B) != 100 {
		t.Fatalf("len = %d, want 100", len(f.B))
	}
	if cap(f.B) != 128 {
		t.Fatalf("cap = %d, want smallest class 128", cap(f.B))
	}
	backing := &f.B[0]
	f.Release()

	// Same class returns the same buffer.
	g := p.Get(128)
	if &g.B[0] != backing {
		t.Error("Get after Release did not reuse the freed buffer")
	}
	g.Release()

	// A larger request takes a larger class, leaving the freed one alone.
	h := p.Get(129)
	if cap(h.B) != 256 {
		t.Errorf("cap = %d, want 256", cap(h.B))
	}
	h.Release()
}

func TestFramePoolOverLargeUnpooled(t *testing.T) {
	var p FramePool
	f := p.Get(10000)
	if len(f.B) != 10000 {
		t.Fatalf("len = %d", len(f.B))
	}
	// Release of an unpooled frame must not panic; the buffer just drops
	// to the GC.
	f.Release()
}

func TestFrameDoublePutPanics(t *testing.T) {
	var p FramePool
	f := p.Get(64)
	f.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	f.Release()
}

func TestSKBPoolRecyclesAndBumpsGen(t *testing.T) {
	var p SKBPool
	s := p.Get()
	gen := s.Gen()
	s.ID = 7
	s.Stage = 3
	p.Put(s)
	r := p.Get()
	if r != s {
		t.Fatal("pool did not recycle the freed SKB")
	}
	if r.Gen() != gen+1 {
		t.Errorf("gen = %d, want %d", r.Gen(), gen+1)
	}
	if r.ID == 7 || r.Stage == 3 {
		t.Error("recycled SKB kept stale metadata")
	}
}

func TestSKBDoublePutPanics(t *testing.T) {
	var p SKBPool
	s := p.Get()
	p.Put(s)
	defer func() {
		if recover() == nil {
			t.Error("double Put did not panic")
		}
	}()
	p.Put(s)
}

func TestSKBFreeReleasesFrame(t *testing.T) {
	var sp SKBPool
	var fp FramePool
	f := fp.Get(256)
	backing := &f.B[0]
	s := sp.Get()
	s.SetFrame(f)
	if &s.Data[0] != backing {
		t.Fatal("SetFrame did not expose the frame bytes as Data")
	}
	s.Free()
	// Both the SKB and its frame must be back on their free lists.
	if g := fp.Get(256); &g.B[0] != backing {
		t.Error("Free did not return the frame to its pool")
	}
	if sp.Get() != s {
		t.Error("Free did not return the SKB to its pool")
	}
}

func TestSKBTakeFrameTransfersOwnership(t *testing.T) {
	var sp SKBPool
	var fp FramePool
	f := fp.Get(256)
	s := sp.Get()
	s.SetFrame(f)
	got := s.TakeFrame()
	if got != f {
		t.Fatal("TakeFrame returned a different frame")
	}
	s.Free() // must not release the taken frame
	if fp.Get(256) == f {
		t.Error("Free released a frame that had been taken")
	}
	got.Release() // the new owner returns it
}

func TestPoolFreeUnpooledSKB(t *testing.T) {
	// SKBs built directly (tests, cross-shard inject) have no owner pool;
	// Free must be a safe no-op for them.
	s := &SKB{Data: []byte{1, 2, 3}}
	s.Free()
}

// TestDecapsulatePaddedFrame is the trailing-bytes aliasing regression
// test: an outer frame padded past its IP datagram (Ethernet's 60-byte
// minimum does this to small packets) must decapsulate to the inner frame
// alone, with the padding sliced off by the outer UDP length rather than
// inherited from the wire length.
func TestDecapsulatePaddedFrame(t *testing.T) {
	payload := []byte("ping")
	inner := BuildUDPFrame(UDPFrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1000, DstPort: 2000, Payload: payload,
	})
	outer := Encapsulate(VXLANSpec{
		OuterSrcMAC: macB, OuterDstMAC: macA,
		OuterSrcIP: ipB, OuterDstIP: ipA, SrcPort: 3, VNI: 7,
	}, inner)

	padded := append(append([]byte{}, outer...), make([]byte, 18)...)
	_, got, err := Decapsulate(padded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, inner) {
		t.Fatalf("inner = %d bytes, want %d (padding leaked through)", len(got), len(inner))
	}
	p, err := TransportPayload(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, payload) {
		t.Errorf("payload = %q, want %q", p, payload)
	}

	// A truncated outer UDP length must be rejected, not sliced negative.
	bad := append([]byte{}, outer...)
	udpOff := EthHeaderLen + IPv4HeaderLen
	bad[udpOff+4], bad[udpOff+5] = 0, UDPHeaderLen+VXLANHeaderLen-1
	if _, _, err := Decapsulate(bad); err == nil {
		t.Error("Decapsulate accepted outer UDP length too short for VXLAN")
	}
}

func TestAppendEncodersReuseBuffer(t *testing.T) {
	sp := UDPFrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1, DstPort: 2, Payload: []byte("abc"),
	}
	want := BuildUDPFrame(sp)
	scratch := make([]byte, 0, 2048)
	got := AppendUDPFrame(scratch[:0], sp)
	if !bytes.Equal(got, want) {
		t.Error("AppendUDPFrame differs from BuildUDPFrame")
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("AppendUDPFrame did not reuse the scratch buffer")
	}

	vs := VXLANSpec{OuterSrcMAC: macB, OuterDstMAC: macA, OuterSrcIP: ipB, OuterDstIP: ipA, SrcPort: 3, VNI: 7}
	wantOuter := Encapsulate(vs, want)
	outerScratch := make([]byte, 0, 2048) // EncapInto's dst must not alias inner
	gotOuter := EncapInto(outerScratch, vs, got)
	if !bytes.Equal(gotOuter, wantOuter) {
		t.Error("EncapInto differs from Encapsulate")
	}
}
