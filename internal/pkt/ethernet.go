package pkt

import (
	"encoding/binary"
	"fmt"
)

// Ethernet and IP constants used across the stack.
const (
	EthHeaderLen = 14
	MTU          = 1500 // maximum L3 payload per Ethernet frame

	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806

	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// EthernetHeader is an Ethernet II header.
type EthernetHeader struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// PutEthernet encodes h at the start of b, which must have room for
// EthHeaderLen bytes, and returns the number of bytes written.
func PutEthernet(b []byte, h EthernetHeader) int {
	_ = b[EthHeaderLen-1]
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
	return EthHeaderLen
}

// ParseEthernet decodes an Ethernet II header from the start of b.
func ParseEthernet(b []byte) (EthernetHeader, error) {
	if len(b) < EthHeaderLen {
		return EthernetHeader{}, fmt.Errorf("pkt: ethernet frame too short: %d bytes", len(b))
	}
	var h EthernetHeader
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}
