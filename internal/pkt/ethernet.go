package pkt

import (
	"encoding/binary"
	"errors"
)

// Ethernet and IP constants used across the stack.
const (
	EthHeaderLen = 14
	MTU          = 1500 // maximum L3 payload per Ethernet frame

	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806

	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// EthernetHeader is an Ethernet II header.
type EthernetHeader struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// PutEthernet encodes h at the start of b, which must have room for
// EthHeaderLen bytes, and returns the number of bytes written.
func PutEthernet(b []byte, h EthernetHeader) int {
	_ = b[EthHeaderLen-1]
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
	return EthHeaderLen
}

// errEthernetShort is a static sentinel: the truncated-frame branch must
// stay cheap enough for ParseEthernet to inline into every stage.
var errEthernetShort = errors.New("pkt: ethernet frame too short")

// ParseEthernet decodes an Ethernet II header from the start of b. Every
// stage re-reads the header it needs rather than trusting upstream state
// (exactly like the kernel), so this is among the hottest functions in the
// simulator: the success path is small enough to inline, and the array
// conversions compile to direct loads instead of copies.
func ParseEthernet(b []byte) (EthernetHeader, error) {
	if len(b) < EthHeaderLen {
		return EthernetHeader{}, errEthernetShort
	}
	return EthernetHeader{
		Dst:       MAC(b[0:6]),
		Src:       MAC(b[6:12]),
		EtherType: uint16(b[12])<<8 | uint16(b[13]),
	}, nil
}
