package pkt

import (
	"encoding/binary"
	"fmt"

	"prism/internal/sim"
)

// ProbeLen is the minimum payload length carrying a latency probe: an
// 8-byte sequence number followed by an 8-byte virtual send timestamp —
// the same trick sockperf uses to compute per-packet latency.
const ProbeLen = 16

// PutProbe writes seq and sentAt at the start of payload, which must be at
// least ProbeLen bytes.
func PutProbe(payload []byte, seq uint64, sentAt sim.Time) {
	_ = payload[ProbeLen-1]
	binary.BigEndian.PutUint64(payload[0:8], seq)
	binary.BigEndian.PutUint64(payload[8:16], uint64(sentAt))
}

// ParseProbe extracts the probe fields written by PutProbe.
func ParseProbe(payload []byte) (seq uint64, sentAt sim.Time, err error) {
	if len(payload) < ProbeLen {
		return 0, 0, fmt.Errorf("pkt: payload too short for probe: %d bytes", len(payload))
	}
	return binary.BigEndian.Uint64(payload[0:8]),
		sim.Time(binary.BigEndian.Uint64(payload[8:16])), nil
}

// TransportPayload returns the application payload of a plain (already
// decapsulated) UDP or TCP frame.
func TransportPayload(frame []byte) ([]byte, error) {
	eth, err := ParseEthernet(frame)
	if err != nil {
		return nil, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return nil, fmt.Errorf("pkt: no transport payload in ethertype 0x%04x", eth.EtherType)
	}
	ip, err := ParseIPv4(frame[EthHeaderLen:])
	if err != nil {
		return nil, err
	}
	tOff := EthHeaderLen + IPv4HeaderLen
	switch ip.Protocol {
	case ProtoUDP:
		u, err := ParseUDP(frame[tOff:])
		if err != nil {
			return nil, err
		}
		return frame[tOff+UDPHeaderLen : tOff+int(u.Length)], nil
	case ProtoTCP:
		end := EthHeaderLen + int(ip.TotalLen)
		if end > len(frame) {
			end = len(frame)
		}
		return frame[tOff+TCPHeaderLen : end], nil
	default:
		return nil, fmt.Errorf("pkt: protocol %d has no transport payload", ip.Protocol)
	}
}
