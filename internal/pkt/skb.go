package pkt

import (
	"fmt"

	"prism/internal/sim"
)

// SKB mirrors the kernel's sk_buff: the frame bytes plus the metadata that
// travels with the packet through every processing stage. The same SKB
// instance is passed from device to device, exactly as in the kernel, so
// per-packet state (notably the PRISM priority bit, §IV-A) is computed once
// and reused.
type SKB struct {
	// Data holds the frame as currently visible to the stack. Decapsulation
	// re-slices it; the outer headers are "stripped" without copying.
	Data []byte

	// HighPriority is the binary priority variable PRISM adds to sk_buff.
	// It is assigned exactly once, when the SKB is allocated during the
	// physical device's poll (the paper's mlx5e_napi_poll analogue).
	HighPriority bool

	// Priority is the multi-level generalization (§VII-3): 0 is best
	// effort; levels 1..netdev.MaxPriorityLevels are increasingly urgent.
	// HighPriority == (Priority > 0).
	Priority int

	// Flow is the flow key of the *innermost* parsed headers so far; updated
	// after decapsulation. Zero until first parse.
	Flow FlowKey

	// Encapsulated marks a frame recognised as VXLAN during stage-1
	// processing (set before decapsulation, cleared after).
	Encapsulated bool

	// Arrived is when the NIC DMA'd the frame into the ring.
	Arrived sim.Time

	// Delivered is when the payload reached the application socket buffer;
	// zero while in flight.
	Delivered sim.Time

	// ID is a unique per-simulation packet identifier for conservation and
	// trace checks.
	ID uint64

	// Stage counts processing stages completed so far (for traces/tests).
	Stage int

	// GROSegs is the number of wire frames coalesced into this SKB by GRO
	// (1 for an unmerged packet). Downstream stages process a merged SKB
	// once — the whole point of GRO.
	GROSegs int

	// Payload caches the TransportPayload slice of Data, set by the
	// delivery stage when it validates the frame so the socket does not
	// re-parse the headers. It aliases Data: valid exactly as long as the
	// frame is, cleared when the SKB is recycled.
	Payload []byte

	// Pooling state (see pool.go). frame is the pooled buffer backing
	// Data; owner is the SKBPool Free returns the SKB to; gen counts
	// recycles; pooled guards against double-put.
	frame  *Frame
	owner  *SKBPool
	gen    uint32
	pooled bool
}

// Len returns the current frame length in bytes.
func (s *SKB) Len() int { return len(s.Data) }

// String summarises the SKB for traces.
func (s *SKB) String() string {
	prio := "lo"
	if s.HighPriority {
		prio = "HI"
	}
	return fmt.Sprintf("skb#%d[%s %s len=%d stage=%d]", s.ID, prio, s.Flow, s.Len(), s.Stage)
}

// UDPFrameSpec describes a plain (non-encapsulated) Ethernet+IPv4+UDP frame.
type UDPFrameSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	TOS              uint8
	ID               uint16
	Payload          []byte
}

// sized returns dst resized to n bytes, reusing its backing array when the
// capacity allows (the pooled hot path) and allocating only on overflow.
func sized(dst []byte, n int) []byte {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]byte, n)
}

// BuildUDPFrame encodes the spec into a complete Ethernet frame.
func BuildUDPFrame(sp UDPFrameSpec) []byte { return AppendUDPFrame(nil, sp) }

// AppendUDPFrame is BuildUDPFrame writing into dst's backing array when it
// has the capacity, allocating only on overflow. It returns the encoded
// frame.
func AppendUDPFrame(dst []byte, sp UDPFrameSpec) []byte {
	total := EthHeaderLen + IPv4HeaderLen + UDPHeaderLen + len(sp.Payload)
	b := sized(dst, total)
	off := PutEthernet(b, EthernetHeader{Dst: sp.DstMAC, Src: sp.SrcMAC, EtherType: EtherTypeIPv4})
	off += PutIPv4(b[off:], IPv4Header{
		TOS:      sp.TOS,
		TotalLen: uint16(IPv4HeaderLen + UDPHeaderLen + len(sp.Payload)),
		ID:       sp.ID,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      sp.SrcIP,
		Dst:      sp.DstIP,
	})
	off += PutUDP(b[off:], UDPHeader{
		SrcPort: sp.SrcPort,
		DstPort: sp.DstPort,
		Length:  uint16(UDPHeaderLen + len(sp.Payload)),
	})
	copy(b[off:], sp.Payload)
	return b
}

// TCPFrameSpec describes a plain Ethernet+IPv4+TCP frame.
type TCPFrameSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	ID               uint16
	Payload          []byte
}

// BuildTCPFrame encodes the spec into a complete Ethernet frame.
func BuildTCPFrame(sp TCPFrameSpec) []byte { return AppendTCPFrame(nil, sp) }

// AppendTCPFrame is BuildTCPFrame writing into dst's backing array when it
// has the capacity, allocating only on overflow.
func AppendTCPFrame(dst []byte, sp TCPFrameSpec) []byte {
	total := EthHeaderLen + IPv4HeaderLen + TCPHeaderLen + len(sp.Payload)
	b := sized(dst, total)
	off := PutEthernet(b, EthernetHeader{Dst: sp.DstMAC, Src: sp.SrcMAC, EtherType: EtherTypeIPv4})
	off += PutIPv4(b[off:], IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + TCPHeaderLen + len(sp.Payload)),
		ID:       sp.ID,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      sp.SrcIP,
		Dst:      sp.DstIP,
	})
	off += PutTCP(b[off:], TCPHeader{
		SrcPort: sp.SrcPort,
		DstPort: sp.DstPort,
		Seq:     sp.Seq,
		Ack:     sp.Ack,
		Flags:   sp.Flags,
		Window:  65535,
	})
	copy(b[off:], sp.Payload)
	return b
}

// VXLANSpec describes the outer encapsulation of an overlay frame.
type VXLANSpec struct {
	OuterSrcMAC, OuterDstMAC MAC
	OuterSrcIP, OuterDstIP   IPv4
	SrcPort                  uint16 // outer UDP source port (flow entropy)
	VNI                      uint32
	ID                       uint16
}

// Encapsulate wraps inner (a complete Ethernet frame) in outer
// Ethernet+IPv4+UDP+VXLAN headers, as the VXLAN egress path does.
func Encapsulate(sp VXLANSpec, inner []byte) []byte { return EncapInto(nil, sp, inner) }

// EncapInto is Encapsulate writing into dst's backing array when it has the
// capacity, allocating only on overflow. inner must not alias dst.
func EncapInto(dst []byte, sp VXLANSpec, inner []byte) []byte {
	outerLen := EthHeaderLen + IPv4HeaderLen + UDPHeaderLen + VXLANHeaderLen
	b := sized(dst, outerLen+len(inner))
	off := PutEthernet(b, EthernetHeader{Dst: sp.OuterDstMAC, Src: sp.OuterSrcMAC, EtherType: EtherTypeIPv4})
	off += PutIPv4(b[off:], IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + UDPHeaderLen + VXLANHeaderLen + len(inner)),
		ID:       sp.ID,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      sp.OuterSrcIP,
		Dst:      sp.OuterDstIP,
	})
	off += PutUDP(b[off:], UDPHeader{
		SrcPort: sp.SrcPort,
		DstPort: VXLANPort,
		Length:  uint16(UDPHeaderLen + VXLANHeaderLen + len(inner)),
	})
	off += PutVXLAN(b[off:], VXLANHeader{VNI: sp.VNI})
	copy(b[off:], inner)
	return b
}

// Decapsulate validates the outer Ethernet+IPv4+UDP+VXLAN headers of frame
// and returns the VNI and the inner Ethernet frame (a sub-slice, no copy).
func Decapsulate(frame []byte) (vni uint32, inner []byte, err error) {
	eth, err := ParseEthernet(frame)
	if err != nil {
		return 0, nil, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return 0, nil, fmt.Errorf("pkt: outer ethertype 0x%04x is not IPv4", eth.EtherType)
	}
	ip, err := ParseIPv4(frame[EthHeaderLen:])
	if err != nil {
		return 0, nil, err
	}
	if ip.Protocol != ProtoUDP {
		return 0, nil, fmt.Errorf("pkt: outer protocol %d is not UDP", ip.Protocol)
	}
	udpOff := EthHeaderLen + IPv4HeaderLen
	udp, err := ParseUDP(frame[udpOff:])
	if err != nil {
		return 0, nil, err
	}
	if udp.DstPort != VXLANPort {
		return 0, nil, fmt.Errorf("pkt: outer UDP port %d is not VXLAN", udp.DstPort)
	}
	if int(udp.Length) < UDPHeaderLen+VXLANHeaderLen {
		return 0, nil, fmt.Errorf("pkt: outer UDP length %d too short for VXLAN", udp.Length)
	}
	vxOff := udpOff + UDPHeaderLen
	vx, err := ParseVXLAN(frame[vxOff:])
	if err != nil {
		return 0, nil, err
	}
	// Bound the inner frame by the outer UDP datagram length, not the wire
	// frame length: a minimum-size Ethernet frame arrives padded to 60
	// bytes, and the pad after the datagram is not part of the inner frame.
	return vx.VNI, frame[vxOff+VXLANHeaderLen : udpOff+int(udp.Length)], nil
}

// IsVXLAN reports whether frame looks like a VXLAN-encapsulated packet,
// without fully validating it. This is the cheap early check the NIC-stage
// poll uses to route the frame to the tunnel endpoint.
func IsVXLAN(frame []byte) bool {
	if len(frame) < EthHeaderLen+IPv4HeaderLen+UDPHeaderLen+VXLANHeaderLen {
		return false
	}
	// EtherType IPv4, protocol UDP, destination port VXLAN — straight byte
	// compares; this runs once per frame in the stage-1 poll.
	if uint16(frame[12])<<8|uint16(frame[13]) != EtherTypeIPv4 {
		return false
	}
	if frame[EthHeaderLen+9] != ProtoUDP {
		return false
	}
	dport := uint16(frame[EthHeaderLen+IPv4HeaderLen+2])<<8 | uint16(frame[EthHeaderLen+IPv4HeaderLen+3])
	return dport == VXLANPort
}

// ParseFlow extracts the transport flow key from an Ethernet frame. For
// non-IPv4 or non-UDP/TCP frames it returns an error.
func ParseFlow(frame []byte) (FlowKey, error) {
	eth, err := ParseEthernet(frame)
	if err != nil {
		return FlowKey{}, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return FlowKey{}, fmt.Errorf("pkt: ethertype 0x%04x has no flow key", eth.EtherType)
	}
	ip, err := ParseIPv4(frame[EthHeaderLen:])
	if err != nil {
		return FlowKey{}, err
	}
	k := FlowKey{SrcIP: ip.Src, DstIP: ip.Dst, Proto: ip.Protocol}
	tOff := EthHeaderLen + IPv4HeaderLen
	switch ip.Protocol {
	case ProtoUDP:
		u, err := ParseUDP(frame[tOff:])
		if err != nil {
			return FlowKey{}, err
		}
		k.SrcPort, k.DstPort = u.SrcPort, u.DstPort
	case ProtoTCP:
		t, err := ParseTCP(frame[tOff:])
		if err != nil {
			return FlowKey{}, err
		}
		k.SrcPort, k.DstPort = t.SrcPort, t.DstPort
	default:
		return FlowKey{}, fmt.Errorf("pkt: protocol %d has no flow key", ip.Protocol)
	}
	return k, nil
}
