//go:build !pooldebug

package pkt

// PoolDebug reports whether use-after-put poisoning is compiled in.
const PoolDebug = false

func poisonFrame(*Frame) {}

func poisonSKB(*SKB) {}
