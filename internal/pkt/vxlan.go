package pkt

import (
	"encoding/binary"
	"fmt"
)

// VXLAN constants per RFC 7348.
const (
	VXLANHeaderLen = 8
	VXLANPort      = 4789 // IANA-assigned UDP destination port
	vxlanFlagVNI   = 0x08 // "I" flag: VNI field is valid

	// VXLANOverhead is the encapsulation cost per inner frame: the outer
	// Ethernet, IPv4, and UDP headers plus the VXLAN header itself.
	VXLANOverhead = EthHeaderLen + IPv4HeaderLen + UDPHeaderLen + VXLANHeaderLen
)

// VXLANHeader is the 8-byte VXLAN header.
type VXLANHeader struct {
	VNI uint32 // 24-bit VXLAN network identifier
}

// PutVXLAN encodes h at the start of b and returns the bytes written.
func PutVXLAN(b []byte, h VXLANHeader) int {
	_ = b[VXLANHeaderLen-1]
	b[0] = vxlanFlagVNI
	b[1], b[2], b[3] = 0, 0, 0
	binary.BigEndian.PutUint32(b[4:8], h.VNI<<8)
	return VXLANHeaderLen
}

// ParseVXLAN decodes a VXLAN header from the start of b, validating the
// I flag as RFC 7348 requires.
func ParseVXLAN(b []byte) (VXLANHeader, error) {
	if len(b) < VXLANHeaderLen {
		return VXLANHeader{}, fmt.Errorf("pkt: vxlan header too short: %d bytes", len(b))
	}
	if b[0]&vxlanFlagVNI == 0 {
		return VXLANHeader{}, fmt.Errorf("pkt: vxlan I flag not set")
	}
	return VXLANHeader{VNI: binary.BigEndian.Uint32(b[4:8]) >> 8}, nil
}
