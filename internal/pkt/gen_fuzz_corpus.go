//go:build ignore

// gen_fuzz_corpus regenerates the committed seed corpora under
// testdata/fuzz/<Target>/ in Go's native corpus encoding. The seeds cover
// the accepting path (a valid overlay frame and its layers), boundary
// truncations, and representative corruptions the fault plane produces,
// so a fuzz run starts at the interesting frontier instead of rediscovering
// the frame format.
//
// Usage: go run gen_fuzz_corpus.go
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"prism/internal/pkt"
)

func main() {
	inner := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.IPv4{10, 0, 0, 1}, DstIP: pkt.IPv4{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 11111,
		Payload: []byte("fuzz-seed-payload"),
	})
	outer := pkt.Encapsulate(pkt.VXLANSpec{
		OuterSrcMAC: pkt.MAC{2, 0, 0, 1, 0, 1}, OuterDstMAC: pkt.MAC{2, 0, 0, 1, 0, 2},
		OuterSrcIP: pkt.IPv4{192, 168, 0, 1}, OuterDstIP: pkt.IPv4{192, 168, 0, 2},
		SrcPort: 49152, VNI: 42,
	}, inner)
	tcp := pkt.BuildTCPFrame(pkt.TCPFrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.IPv4{10, 0, 0, 1}, DstIP: pkt.IPv4{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 5201, Seq: 1, Ack: 2, Flags: pkt.TCPAck,
	})

	flip := func(b []byte, bit int) []byte {
		m := append([]byte(nil), b...)
		m[bit/8] ^= 1 << (bit % 8)
		return m
	}

	corpora := map[string][][]byte{
		"FuzzDecapsulate": {
			outer,                 // accepting path
			inner,                 // not VXLAN: rejected at the UDP port check
			outer[:len(outer)-10], // truncated inner frame
			outer[:pkt.EthHeaderLen+pkt.IPv4HeaderLen],            // ends at the UDP header
			flip(outer, 12*8),                                     // corrupted outer ethertype
			flip(outer, (pkt.EthHeaderLen+2)*8),                   // corrupted outer IP total length
			flip(outer, (pkt.EthHeaderLen+pkt.IPv4HeaderLen+4)*8), // corrupted UDP length
		},
		"FuzzParseIPv4": {
			inner[pkt.EthHeaderLen:],
			inner[pkt.EthHeaderLen : pkt.EthHeaderLen+pkt.IPv4HeaderLen],
			flip(inner[pkt.EthHeaderLen:], 0),  // version/IHL nibble
			flip(inner[pkt.EthHeaderLen:], 80), // checksum field
		},
		"FuzzParseUDP": {
			inner[pkt.EthHeaderLen+pkt.IPv4HeaderLen:],
			inner[pkt.EthHeaderLen+pkt.IPv4HeaderLen : pkt.EthHeaderLen+pkt.IPv4HeaderLen+pkt.UDPHeaderLen],
			flip(inner[pkt.EthHeaderLen+pkt.IPv4HeaderLen:], 4*8), // length field
		},
		"FuzzParseTCP": {
			tcp[pkt.EthHeaderLen+pkt.IPv4HeaderLen:],
			tcp[pkt.EthHeaderLen+pkt.IPv4HeaderLen : pkt.EthHeaderLen+pkt.IPv4HeaderLen+pkt.TCPHeaderLen],
			flip(tcp[pkt.EthHeaderLen+pkt.IPv4HeaderLen:], 12*8), // data offset
		},
	}

	for target, seeds := range corpora {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("%s: %d seeds\n", dir, len(seeds))
	}
}
