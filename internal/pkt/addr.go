// Package pkt implements the packet substrate: real byte-level wire formats
// (Ethernet II, IPv4, UDP, TCP, RFC 7348 VXLAN) and the SKB metadata
// structure that travels with a frame through the simulated kernel.
//
// The simulator charges *virtual* CPU time for protocol processing, but the
// frames themselves are genuine: encapsulation, decapsulation, FDB lookups
// and socket demux all operate on parsed header fields, so a malformed
// frame fails the same way it would in a real stack.
package pkt

import "fmt"

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the address in canonical colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Key packs the address into a uint64 for use as a map key: integer keys
// take the runtime's fast fixed-size map path, where a [6]byte key goes
// through the generic hasher. The packing is injective, so two addresses
// collide iff they are equal.
func (m MAC) Key() uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// IsBroadcast reports whether m is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// BroadcastMAC is the Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IPv4 is a 32-bit IPv4 address.
type IPv4 [4]byte

// String renders the address in dotted-quad notation.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Addr builds an IPv4 address from four octets; a readability helper for
// topology construction code.
func Addr(a, b, c, d byte) IPv4 { return IPv4{a, b, c, d} }

// FlowKey identifies a transport flow: the tuple the PRISM priority
// database matches against (§IV-A of the paper uses IP and port pairs).
type FlowKey struct {
	SrcIP   IPv4
	DstIP   IPv4
	Proto   uint8
	SrcPort uint16
	DstPort uint16
}

// String renders the flow as "proto src:port->dst:port".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s:%d->%s:%d", protoName(k.Proto), k.SrcIP, k.SrcPort, k.DstIP, k.DstPort)
}

func protoName(p uint8) string {
	switch p {
	case ProtoUDP:
		return "udp"
	case ProtoTCP:
		return "tcp"
	default:
		return fmt.Sprintf("proto%d", p)
	}
}

// Reverse returns the key of the opposite direction of the same flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		SrcIP:   k.DstIP,
		DstIP:   k.SrcIP,
		Proto:   k.Proto,
		SrcPort: k.DstPort,
		DstPort: k.SrcPort,
	}
}
