package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Transport header lengths.
const (
	UDPHeaderLen = 8
	TCPHeaderLen = 20 // without options
)

// UDPHeader is a UDP header. The checksum is left zero (legal over IPv4);
// the simulated stack relies on the IPv4 header checksum plus the
// link-level integrity the simulation guarantees.
type UDPHeader struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16 // header + payload
}

// PutUDP encodes h at the start of b and returns the bytes written.
func PutUDP(b []byte, h UDPHeader) int {
	_ = b[UDPHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], 0)
	return UDPHeaderLen
}

// Static sentinels keep ParseUDP inlinable into the per-hop flow and
// payload extraction paths.
var (
	errUDPShort     = errors.New("pkt: udp datagram too short")
	errUDPBadLength = errors.New("pkt: udp bad length")
)

// ParseUDP decodes a UDP header from the start of b.
func ParseUDP(b []byte) (UDPHeader, error) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, errUDPShort
	}
	h := UDPHeader{
		SrcPort: uint16(b[0])<<8 | uint16(b[1]),
		DstPort: uint16(b[2])<<8 | uint16(b[3]),
		Length:  uint16(b[4])<<8 | uint16(b[5]),
	}
	if int(h.Length) > len(b) || h.Length < UDPHeaderLen {
		return UDPHeader{}, errUDPBadLength
	}
	return h, nil
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCPHeader is a TCP header without options.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
}

// PutTCP encodes h at the start of b and returns the bytes written.
func PutTCP(b []byte, h TCPHeader) int {
	_ = b[TCPHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	binary.BigEndian.PutUint16(b[16:18], 0) // checksum: see UDPHeader note
	binary.BigEndian.PutUint16(b[18:20], 0) // urgent
	return TCPHeaderLen
}

// ParseTCP decodes a TCP header from the start of b.
func ParseTCP(b []byte) (TCPHeader, error) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, fmt.Errorf("pkt: tcp segment too short: %d bytes", len(b))
	}
	if off := int(b[12]>>4) * 4; off != TCPHeaderLen {
		return TCPHeader{}, fmt.Errorf("pkt: tcp unsupported data offset %d", off)
	}
	var h TCPHeader
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	return h, nil
}
