package pkt

// Pooling gives the hot path DPDK-mempool-style object reuse: the NIC Gets
// an SKB plus a frame buffer per received packet, every intermediate stage
// hands the same SKB on, and exactly one stage — whichever delivers, drops
// or absorbs the packet — returns it with Free. Both pools are engine-local
// like everything else on the datapath, so there are no locks; build with
// -tags=pooldebug to poison freed buffers and catch use-after-put.
// Ownership rules are documented in DESIGN.md.

// frameClasses are the frame free-list size classes, in bytes. Get rounds
// the requested length up to the next class so a 60-byte ping and a 92-byte
// probe reuse the same buffers; requests beyond the largest class fall back
// to one-off heap buffers that are not recycled.
var frameClasses = [...]int{128, 256, 512, 1024, 2048, 4096}

// Frame is a pooled frame buffer. B is the usable slice (len = requested
// size, cap = the size class); the handle travels with the buffer so any
// holder can Release it without knowing which pool it came from.
type Frame struct {
	B     []byte
	pool  *FramePool
	class int
	freed bool
}

// Release returns the frame to its pool. Pool-less frames (the over-sized
// fallback) are left to the GC. Releasing twice panics: a double-put would
// hand the same buffer to two owners.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	if f.freed {
		panic("pkt: frame double-put")
	}
	f.freed = true
	if f.pool == nil {
		return
	}
	poisonFrame(f)
	p := f.pool
	p.puts++
	p.free[f.class] = append(p.free[f.class], f)
}

// FramePool recycles frame buffers through per-size-class free lists. The
// gets/puts counters track pooled-class buffers only (over-sized fallback
// frames are GC-owned and excluded from both sides), so Outstanding is the
// exact leak count at any quiescent point.
type FramePool struct {
	free [len(frameClasses)][]*Frame

	gets uint64
	puts uint64
}

// Outstanding returns how many pooled frame buffers are checked out (Get
// minus Release). Zero at the end of a drained run means no leaks.
func (p *FramePool) Outstanding() int { return int(p.gets - p.puts) }

// Get returns a frame buffer of length n, reusing a freed one of the same
// size class when available.
func (p *FramePool) Get(n int) *Frame {
	for c, size := range frameClasses {
		if n <= size {
			p.gets++
			if l := p.free[c]; len(l) > 0 {
				f := l[len(l)-1]
				l[len(l)-1] = nil
				p.free[c] = l[:len(l)-1]
				f.freed = false
				f.B = f.B[:n]
				return f
			}
			return &Frame{B: make([]byte, n, size), pool: p, class: c}
		}
	}
	return &Frame{B: make([]byte, n)}
}

// SKBPool recycles SKBs through a free list. Put resets every field and
// bumps the generation counter so stale references (the NIC's GRO head
// across a flush gap) can detect that their SKB has been recycled.
type SKBPool struct {
	free []*SKB

	gets uint64
	puts uint64
}

// Outstanding returns how many SKBs are checked out (Get minus Put). Zero
// at the end of a drained run means every stage honoured the single-Free
// ownership rule.
func (p *SKBPool) Outstanding() int { return int(p.gets - p.puts) }

// Get returns a zeroed SKB owned by this pool.
func (p *SKBPool) Get() *SKB {
	p.gets++
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		s.pooled = false
		return s
	}
	return &SKB{owner: p}
}

// Put returns s to the free list, releasing its frame buffer first. Putting
// twice, or into a pool that does not own the SKB, panics.
func (p *SKBPool) Put(s *SKB) {
	if s.owner != p {
		panic("pkt: SKB returned to a foreign pool")
	}
	if s.pooled {
		panic("pkt: SKB double-put")
	}
	p.puts++
	if s.frame != nil {
		s.frame.Release()
	}
	gen := s.gen + 1
	*s = SKB{owner: p, gen: gen, pooled: true}
	poisonSKB(s)
	p.free = append(p.free, s)
}

// Free returns the SKB — and the frame buffer backing it, if any — to their
// pools. The stage that delivers, drops or absorbs a packet owns it and
// must Free exactly once; SKBs built without a pool (tests, generators,
// synthetic testnet frames) only release their frame.
func (s *SKB) Free() {
	if s.owner == nil {
		if s.frame != nil {
			s.frame.Release()
			s.frame = nil
		}
		return
	}
	s.owner.Put(s)
}

// Gen identifies this incarnation of a pooled SKB: it increments on every
// Put, so a holder of a retained reference can verify the SKB it remembers
// has not been recycled under it.
func (s *SKB) Gen() uint32 { return s.gen }

// SetFrame attaches a pooled frame buffer as the SKB's backing storage,
// transferring its ownership to the SKB.
func (s *SKB) SetFrame(f *Frame) {
	s.frame = f
	s.Data = f.B
}

// TakeFrame detaches and returns the backing frame buffer (nil when the SKB
// is not frame-backed), transferring ownership to the caller. Delivery uses
// it: the payload outlives the SKB by one application callback.
func (s *SKB) TakeFrame() *Frame {
	f := s.frame
	s.frame = nil
	return f
}
