package prio

import (
	"sync"
	"testing"

	"prism/internal/pkt"
)

func TestModeString(t *testing.T) {
	tests := []struct {
		m    Mode
		want string
	}{
		{ModeVanilla, "vanilla"},
		{ModeBatch, "prism-batch"},
		{ModeSync, "prism-sync"},
		{Mode(0), "mode(0)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestDBModeSwitch(t *testing.T) {
	db := NewDB()
	if db.Mode() != ModeVanilla {
		t.Errorf("initial mode = %v", db.Mode())
	}
	db.SetMode(ModeSync)
	if db.Mode() != ModeSync {
		t.Errorf("mode after set = %v", db.Mode())
	}
}

func TestClassify(t *testing.T) {
	db := NewDB()
	flow := pkt.FlowKey{
		SrcIP: pkt.Addr(10, 0, 0, 1), DstIP: pkt.Addr(10, 0, 0, 2),
		Proto: pkt.ProtoUDP, SrcPort: 40000, DstPort: 11211,
	}
	if db.Classify(flow) {
		t.Error("empty DB classified high")
	}

	tests := []struct {
		name string
		rule Rule
		want bool
	}{
		{"exact dst", Rule{IP: pkt.Addr(10, 0, 0, 2), Port: 11211}, true},
		{"exact src", Rule{IP: pkt.Addr(10, 0, 0, 1), Port: 40000}, true},
		{"port wildcard ip", Rule{Port: 11211}, true},
		{"ip wildcard port", Rule{IP: pkt.Addr(10, 0, 0, 2)}, true},
		{"wrong port", Rule{IP: pkt.Addr(10, 0, 0, 2), Port: 80}, false},
		{"wrong ip", Rule{IP: pkt.Addr(9, 9, 9, 9), Port: 11211}, false},
		{"crossed ip/port", Rule{IP: pkt.Addr(10, 0, 0, 1), Port: 11211}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			db.Clear()
			db.Add(tt.rule)
			if got := db.Classify(flow); got != tt.want {
				t.Errorf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDBAddRemove(t *testing.T) {
	db := NewDB()
	r := Rule{Port: 80}
	db.Add(r)
	db.Add(r) // duplicate
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	if !db.Remove(r) {
		t.Error("Remove existing = false")
	}
	if db.Remove(r) {
		t.Error("Remove missing = true")
	}
	if db.Len() != 0 {
		t.Errorf("Len after remove = %d", db.Len())
	}
}

func TestDBRulesSorted(t *testing.T) {
	db := NewDB()
	db.Add(Rule{Port: 9})
	db.Add(Rule{IP: pkt.Addr(1, 2, 3, 4), Port: 5})
	db.Add(Rule{IP: pkt.Addr(1, 2, 3, 4)})
	rules := db.Rules()
	if len(rules) != 3 {
		t.Fatalf("Rules len = %d", len(rules))
	}
	for i := 1; i < len(rules); i++ {
		if rules[i-1].String() > rules[i].String() {
			t.Error("rules not sorted")
		}
	}
}

func TestRuleString(t *testing.T) {
	tests := []struct {
		r    Rule
		want string
	}{
		{Rule{}, "*:*"},
		{Rule{Port: 80}, "*:80"},
		{Rule{IP: pkt.Addr(10, 0, 0, 2)}, "10.0.0.2:*"},
		{Rule{IP: pkt.Addr(10, 0, 0, 2), Port: 443}, "10.0.0.2:443"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestParseRule(t *testing.T) {
	tests := []struct {
		in      string
		want    Rule
		wantErr bool
	}{
		{"10.0.0.2:11211", Rule{IP: pkt.Addr(10, 0, 0, 2), Port: 11211}, false},
		{"*:11211", Rule{Port: 11211}, false},
		{"10.0.0.2:*", Rule{IP: pkt.Addr(10, 0, 0, 2)}, false},
		{"*:*", Rule{}, false},
		{"nonsense", Rule{}, true},
		{"300.0.0.1:80", Rule{}, true},
		{"1.2.3.4:99999", Rule{}, true},
		{"1.2.3.4:0", Rule{}, true},
		{"a.b.c.d:80", Rule{}, true},
		{"1.2.3.4:x", Rule{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := ParseRule(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("ParseRule = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestParseRuleRoundTrip(t *testing.T) {
	for _, s := range []string{"*:*", "*:80", "9.8.7.6:*", "1.2.3.4:65535"} {
		r, err := ParseRule(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.String() != s {
			t.Errorf("round trip %q -> %q", s, r.String())
		}
	}
}

func TestDBConcurrentAccess(t *testing.T) {
	db := NewDB()
	flow := pkt.FlowKey{DstIP: pkt.Addr(1, 1, 1, 1), DstPort: 5, Proto: pkt.ProtoUDP}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				switch i % 4 {
				case 0:
					db.Add(Rule{Port: uint16(j%100 + 1)})
				case 1:
					db.Remove(Rule{Port: uint16(j%100 + 1)})
				case 2:
					db.Classify(flow)
				case 3:
					db.SetMode(ModeBatch)
					_ = db.Mode()
				}
			}
		}(i)
	}
	wg.Wait() // run with -race to validate
}
