// Package prio implements PRISM's priority *policy* layer (§IV-A of the
// paper): a runtime-configurable database of high-priority flows matched
// by IP address and port, plus the global mode switch. The paper exposes
// this through procfs; here it is a concurrency-safe API with a textual
// command interface (cmd/prismctl) that mirrors the procfs writes.
package prio

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"prism/internal/pkt"
)

// Mode selects how high-priority packets traverse the pipeline (§III-B).
type Mode int

// Modes. Vanilla disables PRISM entirely (baseline kernel behaviour).
const (
	ModeVanilla Mode = iota + 1
	// ModeBatch is PRISM-batch: batch-level preemption via head insertion
	// and dual queues.
	ModeBatch
	// ModeSync is PRISM-sync: run-to-completion processing of high-priority
	// packets through all stages within one softirq.
	ModeSync
)

// String names the mode as the experiment tables do.
func (m Mode) String() string {
	switch m {
	case ModeVanilla:
		return "vanilla"
	case ModeBatch:
		return "prism-batch"
	case ModeSync:
		return "prism-sync"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Rule marks flows as high priority. A zero IP matches any address; a zero
// port matches any port. Matching is applied to both the source and the
// destination endpoint of a packet, since the user configures services
// ("memcached on 10.0.0.2:11211"), not directions.
//
// Level generalizes the paper's binary priority to multiple classes
// (§VII-3): a zero Level means 1 (the paper's single high class); higher
// levels preempt lower ones within every high-priority queue.
type Rule struct {
	IP    pkt.IPv4
	Port  uint16
	Level int
}

// EffectiveLevel returns the rule's level with the zero-value default.
func (r Rule) EffectiveLevel() int {
	if r.Level <= 0 {
		return 1
	}
	return r.Level
}

// String renders the rule as "ip:port" (with "*" wildcards), appending
// "@level" for levels above 1.
func (r Rule) String() string {
	ip := "*"
	if r.IP != (pkt.IPv4{}) {
		ip = r.IP.String()
	}
	port := "*"
	if r.Port != 0 {
		port = fmt.Sprintf("%d", r.Port)
	}
	s := ip + ":" + port
	if r.EffectiveLevel() > 1 {
		s += fmt.Sprintf("@%d", r.EffectiveLevel())
	}
	return s
}

func (r Rule) matchEndpoint(ip pkt.IPv4, port uint16) bool {
	if r.IP != (pkt.IPv4{}) && r.IP != ip {
		return false
	}
	if r.Port != 0 && r.Port != port {
		return false
	}
	return true
}

// DB is the global high-priority flow database. It is safe for concurrent
// use: the simulation reads it from the NIC classification path while
// control-plane code (prismctl, tests, examples) mutates it.
//
// Reads go through an immutable snapshot published with an atomic pointer,
// so the per-packet classification path costs one atomic load and a scan
// of a small slice — no lock acquisition and no map iteration. Writers
// serialize on a mutex, rebuild the snapshot, and publish it.
type DB struct {
	mu    sync.Mutex // serializes writers
	rules map[Rule]struct{}
	snap  atomic.Pointer[dbSnapshot]
}

// dbSnapshot is the immutable read-side view: the mode plus the rule set
// in the deterministic sorted order Rules reports.
type dbSnapshot struct {
	mode  Mode
	rules []Rule
}

// NewDB returns an empty database in ModeVanilla.
func NewDB() *DB {
	db := &DB{rules: make(map[Rule]struct{})}
	db.snap.Store(&dbSnapshot{mode: ModeVanilla})
	return db
}

// publish rebuilds the snapshot from the rule map. Callers hold db.mu.
func (db *DB) publish(mode Mode) {
	rules := make([]Rule, 0, len(db.rules))
	for r := range db.rules {
		rules = append(rules, r)
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].String() < rules[j].String() })
	db.snap.Store(&dbSnapshot{mode: mode, rules: rules})
}

// Mode returns the current operation mode.
func (db *DB) Mode() Mode { return db.snap.Load().mode }

// SetMode switches the operation mode at runtime, like writing the paper's
// global binary proc variable.
func (db *DB) SetMode(m Mode) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.publish(m)
}

// Add inserts a rule. Adding an existing rule is a no-op.
func (db *DB) Add(r Rule) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.rules[r] = struct{}{}
	db.publish(db.snap.Load().mode)
}

// Remove deletes a rule, reporting whether it existed.
func (db *DB) Remove(r Rule) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.rules[r]
	delete(db.rules, r)
	db.publish(db.snap.Load().mode)
	return ok
}

// Clear removes all rules.
func (db *DB) Clear() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.rules = make(map[Rule]struct{})
	db.publish(db.snap.Load().mode)
}

// Len returns the number of rules.
func (db *DB) Len() int { return len(db.snap.Load().rules) }

// Rules returns a sorted copy of the rule set.
func (db *DB) Rules() []Rule {
	snap := db.snap.Load()
	out := make([]Rule, len(snap.rules))
	copy(out, snap.rules)
	return out
}

// Classify reports whether a flow is high priority: some rule matches
// either endpoint. This is the check performed once per packet at SKB
// allocation in the stage-1 poll (§IV-A).
func (db *DB) Classify(k pkt.FlowKey) bool { return db.ClassifyLevel(k) > 0 }

// ClassifyLevel returns the highest level among matching rules, or 0 for
// best effort.
func (db *DB) ClassifyLevel(k pkt.FlowKey) int {
	best := 0
	for _, r := range db.snap.Load().rules {
		if r.matchEndpoint(k.SrcIP, k.SrcPort) || r.matchEndpoint(k.DstIP, k.DstPort) {
			if l := r.EffectiveLevel(); l > best {
				best = l
			}
		}
	}
	return best
}

// ParseRule parses "ip:port[@level]" with "*" wildcards, e.g.
// "10.0.0.2:11211", "*:11211", "10.0.0.2:*", "*:53@3".
func ParseRule(s string) (Rule, error) {
	var lvl int
	if at := strings.LastIndexByte(s, '@'); at >= 0 {
		var err error
		if _, err = fmt.Sscanf(s[at+1:], "%d", &lvl); err != nil {
			return Rule{}, fmt.Errorf("prio: bad level in rule %q: %w", s, err)
		}
		if lvl < 1 || lvl > 8 {
			return Rule{}, fmt.Errorf("prio: level out of range in rule %q", s)
		}
		s = s[:at]
	}
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return Rule{}, fmt.Errorf("prio: rule %q missing ':'", s)
	}
	ipStr, portStr := s[:i], s[i+1:]
	r := Rule{Level: lvl}
	if ipStr != "*" {
		var a, b, c, d int
		if _, err := fmt.Sscanf(ipStr, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
			return Rule{}, fmt.Errorf("prio: bad IP in rule %q: %w", s, err)
		}
		if a|b|c|d < 0 || a > 255 || b > 255 || c > 255 || d > 255 {
			return Rule{}, fmt.Errorf("prio: IP octet out of range in rule %q", s)
		}
		r.IP = pkt.Addr(byte(a), byte(b), byte(c), byte(d))
	}
	if portStr != "*" {
		var p int
		if _, err := fmt.Sscanf(portStr, "%d", &p); err != nil {
			return Rule{}, fmt.Errorf("prio: bad port in rule %q: %w", s, err)
		}
		if p <= 0 || p > 65535 {
			return Rule{}, fmt.Errorf("prio: port out of range in rule %q", s)
		}
		r.Port = uint16(p)
	}
	return r, nil
}
