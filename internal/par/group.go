package par

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"prism/internal/sim"
)

// Group owns a set of shards and the links between them, and schedules
// their synchronized execution. Build the topology single-threaded (Add,
// Connect, model construction), then call Run.
type Group struct {
	shards []*Shard
	links  []*Link
	// lookahead is the minimum over all links — the global safe-window
	// width. Zero while the group has no links.
	lookahead sim.Time

	// Windows counts synchronization rounds, for tests and tuning.
	Windows uint64

	// OnBarrier, when set, runs on the coordinator goroutine at the end of
	// every synchronization window, after the window's events have executed
	// and cross-shard sends have been collected. All shards are quiescent
	// (their worker goroutines have joined), so the callback may read any
	// shard-local state race-free, and it may mutate quiescent state —
	// counters, routing tables, admission parameters, registering new
	// handlers — because no shard observes the mutation until the next
	// window starts (the spawn of the window's goroutines is the
	// happens-before edge). It must NOT schedule engine events or send on
	// links: the window schedule (and the Windows counter committed in
	// golden fixtures) must stay a pure function of the event timeline,
	// identical whether or not a hook is installed. Barrier-driven control
	// planes (cluster recovery) therefore act only on state; anything
	// needing an exact-time event schedules it from event context on the
	// owning shard instead. windowEnd is the window's exclusive bound:
	// every event strictly before it has executed.
	OnBarrier func(windowEnd sim.Time)
}

// NewGroup returns an empty group.
func NewGroup() *Group { return &Group{} }

// Add wraps eng as the next shard. Engines must not be shared between
// shards.
func (g *Group) Add(name string, eng *sim.Engine) *Shard {
	s := &Shard{ID: len(g.shards), Name: name, Eng: eng}
	g.shards = append(g.shards, s)
	return s
}

// Shards returns the shards in ID order.
func (g *Group) Shards() []*Shard { return g.shards }

// Connect creates a link from src to dst whose messages take at least
// lookahead to arrive; deliver runs on the destination shard, in event
// context at the message's delivery time. Conservative synchronization is
// impossible with zero lookahead, so it panics.
func (g *Group) Connect(src, dst *Shard, lookahead sim.Time, deliver func(at sim.Time, payload any)) *Link {
	if lookahead <= 0 {
		panic("par: conservative synchronization requires positive link lookahead")
	}
	if src == dst {
		panic("par: link endpoints must be distinct shards")
	}
	l := &Link{Src: src, Dst: dst, Lookahead: lookahead, deliver: deliver}
	g.links = append(g.links, l)
	if g.lookahead == 0 || lookahead < g.lookahead {
		g.lookahead = lookahead
	}
	return l
}

// Run executes all shards up to and including horizon (the same inclusive
// semantics as sim.Engine.Run), using up to workers goroutines per window.
// workers <= 1 runs the identical window schedule sequentially — the
// baseline every determinism test compares against. On return every
// shard's clock is at horizon, unless a shard halted, which surfaces as
// ErrHalted wrapped with the shard's identity (the lowest-ID halted shard,
// for determinism).
func (g *Group) Run(horizon sim.Time, workers int) error {
	// Flush construction-time sends so they participate in the first
	// window computation.
	g.collect()
	for {
		next, ok := g.nextTime()
		if !ok || next > horizon {
			break
		}
		// The safe horizon: nothing anywhere can affect another shard
		// before next+lookahead. Events exactly at the group horizon must
		// fire (inclusive semantics), hence the +1 bound with RunUntil's
		// strictly-before contract.
		end := horizon + 1
		if len(g.links) > 0 {
			if w := next + g.lookahead; w < end {
				end = w
			}
		}
		g.inject(end)
		g.Windows++
		if err := g.runWindow(end, workers); err != nil {
			return err
		}
		g.collect()
		if g.OnBarrier != nil {
			g.OnBarrier(end)
		}
	}
	// Finish with every clock at the horizon, mirroring Engine.Run.
	for _, s := range g.shards {
		if err := s.Eng.Run(horizon); err != nil {
			return fmt.Errorf("par: %s: %w", s, err)
		}
	}
	return nil
}

// nextTime returns the earliest pending work item — engine event or
// undelivered cross-shard message — across the whole group.
func (g *Group) nextTime() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, s := range g.shards {
		if at, ok := s.Eng.NextAt(); ok && (!found || at < best) {
			best, found = at, true
		}
		if len(s.inbox) > 0 {
			if at := s.inbox[0].at; !found || at < best {
				best, found = at, true
			}
		}
	}
	return best, found
}

// deliverMessage is the top-level trampoline injected messages dispatch
// through: a1 is the *Link, a2 the payload. Scheduling it via CallAt reuses
// a pooled event record — no capturing closure, no allocation per message.
func deliverMessage(at sim.Time, a1, a2 any) { a1.(*Link).deliver(at, a2) }

// inject moves every inbox message due before end into its destination
// engine. Inboxes are sorted by (at, src, seq), so the engines' FIFO
// tie-breaking observes a deterministic arrival order; that same order
// means each shard's messages arrive at nondecreasing timestamps, so the
// whole window is scheduled through one batch cursor — a single wheel
// insert run instead of one full queue push per message.
func (g *Group) inject(end sim.Time) {
	for _, s := range g.shards {
		i := 0
		b := s.Eng.BeginBatch()
		for i < len(s.inbox) && s.inbox[i].at < end {
			m := &s.inbox[i]
			b.CallAt(m.at, deliverMessage, m.link, m.payload)
			i++
		}
		if i > 0 {
			// Compact in place, then clear the vacated tail: the stale
			// entries beyond the new length still hold payload interfaces,
			// and leaving them pins delivered SKBs/frames across windows.
			n := copy(s.inbox, s.inbox[i:])
			clear(s.inbox[n:len(s.inbox)])
			s.inbox = s.inbox[:n]
		}
	}
}

// runWindow burns each shard's events up to end, concurrently when
// workers > 1. Shards share no state during a window, so assignment of
// shards to workers cannot affect results.
func (g *Group) runWindow(end sim.Time, workers int) error {
	if workers > len(g.shards) {
		workers = len(g.shards)
	}
	if workers <= 1 {
		for _, s := range g.shards {
			s.err = s.Eng.RunUntil(end)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(g.shards) {
						return
					}
					s := g.shards[i]
					s.err = s.Eng.RunUntil(end)
				}
			}()
		}
		wg.Wait()
	}
	for _, s := range g.shards {
		if s.err != nil {
			return fmt.Errorf("par: %s: %w", s, s.err)
		}
	}
	return nil
}

// collect drains every link buffer into the destination inboxes and
// restores their (at, src, seq) order. Runs only at barriers.
func (g *Group) collect() {
	for _, l := range g.links {
		if len(l.buf) == 0 {
			continue
		}
		l.Dst.inbox = append(l.Dst.inbox, l.buf...)
		l.buf = l.buf[:0]
	}
	for _, s := range g.shards {
		if len(s.inbox) > 1 {
			// (at, src, seq) is a total order — seq is unique per source —
			// so the unstable sort is deterministic. SortFunc with a
			// non-capturing comparator keeps the barrier allocation-free,
			// where sort.Slice boxed the slice and closure every window.
			slices.SortFunc(s.inbox, compareMessages)
		}
	}
}

// compareMessages orders inbox messages by (at, src, seq).
func compareMessages(a, b message) int {
	switch {
	case a.at < b.at:
		return -1
	case a.at > b.at:
		return 1
	case a.src != b.src:
		return a.src - b.src
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	default:
		return 0
	}
}
