package par

import (
	"reflect"
	"testing"

	"prism/internal/sim"
)

func TestTickerQuantization(t *testing.T) {
	var fired []sim.Time
	tk := NewTicker(10, func(at sim.Time) { fired = append(fired, at) })

	tk.Advance(5) // nothing due yet
	tk.Advance(25)
	tk.Advance(25) // idempotent at the same boundary
	tk.Advance(40)
	want := []sim.Time{10, 20, 30, 40}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}

	// Flush reports a final partial interval once and realigns the grid.
	tk.Flush(45)
	tk.Flush(45)
	tk.Advance(60)
	want = append(want, 45, 50, 60)
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("after flush, fired = %v, want %v", fired, want)
	}

	// Flush at an already-covered time is a no-op.
	tk.Flush(60)
	if len(fired) != len(want) {
		t.Errorf("flush at covered boundary refired: %v", fired)
	}
}

func TestTickerNilSafe(t *testing.T) {
	var tk *Ticker
	tk.Advance(100)
	tk.Flush(100)
	NewTicker(0, func(sim.Time) { t.Error("zero-interval ticker fired") }).Advance(100)
	NewTicker(10, nil).Advance(100)
}

// A barrier hook observes every window exactly once and never perturbs
// the window schedule: Windows and results match a hook-free run.
func TestGroupOnBarrier(t *testing.T) {
	build := func(hook bool) (*Group, *int, *[]sim.Time) {
		g := NewGroup()
		a := g.Add("a", sim.NewEngine(1))
		b := g.Add("b", sim.NewEngine(2))
		la := g.Connect(a, b, 10, func(at sim.Time, payload any) {})
		count := 0
		a.Eng.At(0, func() {})
		var rec func(at sim.Time)
		rec = func(at sim.Time) {
			count++
			if count < 5 {
				la.Send(a.Eng.Now(), 10, nil)
				a.Eng.At(a.Eng.Now()+7, func() { rec(a.Eng.Now()) })
			}
		}
		a.Eng.At(3, func() { rec(3) })
		var ends []sim.Time
		if hook {
			g.OnBarrier = func(end sim.Time) { ends = append(ends, end) }
		}
		return g, &count, &ends
	}

	gPlain, _, _ := build(false)
	if err := gPlain.Run(100, 1); err != nil {
		t.Fatal(err)
	}
	gHook, count, ends := build(true)
	if err := gHook.Run(100, 2); err != nil {
		t.Fatal(err)
	}
	if gHook.Windows != gPlain.Windows {
		t.Errorf("hook changed window schedule: %d vs %d", gHook.Windows, gPlain.Windows)
	}
	if uint64(len(*ends)) != gHook.Windows {
		t.Errorf("hook fired %d times over %d windows", len(*ends), gHook.Windows)
	}
	for i := 1; i < len(*ends); i++ {
		if (*ends)[i] <= (*ends)[i-1] {
			t.Errorf("window ends not strictly increasing: %v", *ends)
		}
	}
	if *count != 5 {
		t.Errorf("workload ran %d steps, want 5", *count)
	}
}
