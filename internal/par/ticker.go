package par

import "prism/internal/sim"

// Ticker quantizes an advancing virtual clock into fixed-interval
// checkpoint callbacks. Runners drive it from whatever boundaries their
// execution model exposes — barrier windows (Group.OnBarrier) or sliced
// monolithic horizons — and the ticker fires the callback at every
// interval multiple covered so far, exactly once each, regardless of how
// the boundaries land. It performs no synchronization itself: call it
// only from points where the observed state is quiescent.
type Ticker struct {
	interval sim.Time
	fn       func(at sim.Time)
	next     sim.Time
	// fired tracks the last timestamp delivered, so Flush never double
	// reports a boundary Advance already covered.
	fired    sim.Time
	hasFired bool
}

// NewTicker returns a ticker firing fn at every multiple of interval.
// A nil fn or non-positive interval yields a ticker that never fires.
func NewTicker(interval sim.Time, fn func(at sim.Time)) *Ticker {
	t := &Ticker{interval: interval, fn: fn, next: interval}
	if interval <= 0 {
		t.fn = nil
	}
	return t
}

// Advance fires the callback for every pending interval multiple ≤ now.
// Nil-safe.
func (t *Ticker) Advance(now sim.Time) {
	if t == nil || t.fn == nil {
		return
	}
	for t.next <= now {
		t.fire(t.next)
		t.next += t.interval
	}
}

// Flush fires the callback once at exactly `at` if nothing at or past it
// has fired yet — the end-of-run hook that reports a final partial
// interval. Nil-safe.
func (t *Ticker) Flush(at sim.Time) {
	if t == nil || t.fn == nil {
		return
	}
	if t.hasFired && t.fired >= at {
		return
	}
	t.fire(at)
	for t.next <= at {
		t.next += t.interval
	}
}

func (t *Ticker) fire(at sim.Time) {
	t.fired = at
	t.hasFired = true
	t.fn(at)
}
