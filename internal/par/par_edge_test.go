package par

import (
	"fmt"
	"reflect"
	"testing"

	"prism/internal/sim"
)

// TestMinimalLookaheadTieOrdering shrinks the safe window to its floor
// (lookahead 1, so every window advances one tick) and lands simultaneous
// arrivals from several sources on one shard: delivery must follow the
// (at, src, seq) key — source shard ID, then send order — for every
// worker count, with the same barrier count.
func TestMinimalLookaheadTieOrdering(t *testing.T) {
	capture := func(workers int) ([]string, uint64) {
		g := NewGroup()
		sink := g.Add("sink", sim.NewEngine(9))
		var got []string
		record := func(at sim.Time, payload any) {
			got = append(got, fmt.Sprintf("%d %v", at, payload))
		}
		for i := 1; i <= 3; i++ {
			i := i
			src := g.Add(fmt.Sprintf("src-%d", i), sim.NewEngine(uint64(i)))
			l := g.Connect(src, sink, 1, record)
			// Schedule the higher-ID shards earlier in wall-clock terms
			// (they fire at the same virtual time) so any accidental
			// execution-order dependence would invert the expected order.
			src.Eng.At(0, func() {
				l.Send(0, 40, fmt.Sprintf("s%d#0", i))
				l.Send(0, 40, fmt.Sprintf("s%d#1", i))
			})
		}
		if err := g.Run(100, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return got, g.Windows
	}

	want := []string{"40 s1#0", "40 s1#1", "40 s2#0", "40 s2#1", "40 s3#0", "40 s3#1"}
	base, windows := capture(1)
	if !reflect.DeepEqual(base, want) {
		t.Fatalf("sequential delivery order = %v, want %v", base, want)
	}
	for _, workers := range []int{2, 4} {
		got, w := capture(workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: order %v differs from sequential %v", workers, got, base)
		}
		if w != windows {
			t.Errorf("workers=%d: %d windows, sequential %d", workers, w, windows)
		}
	}
}

// TestIdleShardCrossesEmptyWindows connects a shard that schedules no
// events of its own: every window is empty on its side until a message
// lands. The scheduler must still advance its clock through those empty
// windows and deliver each message at its exact timestamp.
func TestIdleShardCrossesEmptyWindows(t *testing.T) {
	for _, workers := range []int{1, 2} {
		g := NewGroup()
		src := g.Add("busy", sim.NewEngine(1))
		idle := g.Add("idle", sim.NewEngine(2))
		var got []sim.Time
		l := g.Connect(src, idle, 5, func(at sim.Time, payload any) {
			if idle.Eng.Now() != at {
				t.Errorf("workers=%d: delivered at engine time %v, stamp %v", workers, idle.Eng.Now(), at)
			}
			got = append(got, at)
		})
		// Dense local ticks force many windows; only every 50th tick sends.
		var tick func()
		tick = func() {
			now := src.Eng.Now()
			if now%500 == 0 {
				l.Send(now, 7, nil)
			}
			src.Eng.After(10, tick)
		}
		src.Eng.At(0, tick)
		if err := g.Run(3000, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := []sim.Time{7, 507, 1007, 1507, 2007, 2507}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: deliveries %v, want %v", workers, got, want)
		}
		if idle.Eng.Now() != 3000 {
			t.Errorf("workers=%d: idle clock %v, want horizon 3000", workers, idle.Eng.Now())
		}
		if idle.Eng.Executed != uint64(len(want)) {
			t.Errorf("workers=%d: idle shard executed %d events, want %d", workers, idle.Eng.Executed, len(want))
		}
	}
}

// TestBurstyShardSilentWindows checks determinism when one shard enqueues
// nothing for long stretches: a sender bursts early and goes silent while
// another pair keeps the window machinery turning. The silent shard's
// stale window state must not perturb ordering at any worker count.
func TestBurstyShardSilentWindows(t *testing.T) {
	capture := func(workers int) ([][]string, uint64) {
		g := NewGroup()
		bursty := g.Add("bursty", sim.NewEngine(1))
		steady := g.Add("steady", sim.NewEngine(2))
		sink := g.Add("sink", sim.NewEngine(3))
		logs := make([][]string, 2)
		record := func(i int) func(at sim.Time, payload any) {
			return func(at sim.Time, payload any) {
				logs[i] = append(logs[i], fmt.Sprintf("%d %v", at, payload))
			}
		}
		lb := g.Connect(bursty, sink, 20, record(0))
		ls := g.Connect(steady, sink, 20, record(1))
		// The burst: ten sends in the first 100 ticks, then nothing ever
		// again — thousands of windows pass with this shard empty.
		for i := 0; i < 10; i++ {
			at := sim.Time(10 * i)
			bursty.Eng.At(at, func() { lb.Send(at, 25, fmt.Sprintf("burst@%d", at)) })
		}
		var tick func()
		tick = func() {
			now := steady.Eng.Now()
			ls.Send(now, 20+sim.Time(steady.Eng.RNG().Intn(90)), fmt.Sprintf("steady@%d", now))
			steady.Eng.After(37, tick)
		}
		steady.Eng.At(0, tick)
		if err := g.Run(50_000, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return logs, g.Windows
	}

	base, windows := capture(1)
	if len(base[0]) != 10 || len(base[1]) < 1000 {
		t.Fatalf("burst=%d steady=%d deliveries; model too idle", len(base[0]), len(base[1]))
	}
	for _, workers := range []int{2, 3} {
		logs, w := capture(workers)
		if !reflect.DeepEqual(logs, base) {
			t.Errorf("workers=%d: delivery logs differ from sequential baseline", workers)
		}
		if w != windows {
			t.Errorf("workers=%d: %d windows, sequential %d", workers, w, windows)
		}
	}
}

// TestWindowBoundaryMessage pins the barrier's half-open semantics: a
// message landing exactly on a window boundary (delay == lookahead, the
// legal minimum) belongs to the NEXT window, and one landing exactly at
// the group horizon must still fire (inclusive semantics), while one
// landing past the horizon stays queued in the destination inbox where
// conservation checkers can count it.
func TestWindowBoundaryMessage(t *testing.T) {
	for _, workers := range []int{1, 2} {
		g := NewGroup()
		a := g.Add("a", sim.NewEngine(1))
		b := g.Add("b", sim.NewEngine(2))
		var got []sim.Time
		l := g.Connect(a, b, 50, func(at sim.Time, payload any) { got = append(got, at) })
		a.Eng.At(0, func() {
			l.Send(0, 50, "boundary") // arrives exactly at first window end (0+lookahead)
		})
		a.Eng.At(950, func() {
			l.Send(950, 50, "at-horizon")   // arrives exactly at horizon 1000
			l.Send(950, 60, "past-horizon") // arrives at 1010 — beyond the run
		})
		if err := g.Run(1000, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := []sim.Time{50, 1000}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: deliveries at %v, want %v", workers, got, want)
		}
		// The undeliverable message is in flight: either still in the link
		// buffer (emitted by the tail run) or sorted into b's inbox.
		if inflight := l.Buffered() + b.InboxLen(); inflight != 1 {
			t.Errorf("workers=%d: %d in-flight messages past horizon, want 1", workers, inflight)
		}
	}
}
