// Package par is a conservative parallel discrete-event runtime: it runs
// one sim.Engine shard per goroutine and synchronizes the shards with
// lookahead derived from the model's physical delays (the wire latency of
// the point-to-point link, the IPI cost of cross-core wakeups, the
// per-queue independence of RSS steering).
//
// # Model
//
// A Group owns a set of Shards, each wrapping an independent sim.Engine
// with its own clock, event queue and RNG. Shards interact only through
// Links — unidirectional channels with a declared minimum latency (the
// link's lookahead). Because every cross-shard message arrives at least
// lookahead after it was sent, the classic conservative-window argument
// applies: if the earliest pending event anywhere in the group is at time
// T, then no shard can receive a message before T+lookahead, so every
// shard may safely burn its local events up to (but not including)
// T+lookahead with no synchronization at all. Group.Run repeats that
// window computation, runs the shards concurrently within each window,
// and exchanges buffered messages at the barrier.
//
// # Determinism
//
// A parallel run is bit-identical to the sequential run of the same shard
// decomposition, for any worker count:
//
//   - the window schedule is a pure function of event timestamps, which do
//     not depend on execution interleaving;
//   - within a window each shard executes single-threaded, exactly as the
//     sequential engine would;
//   - messages are exchanged only at barriers, sorted by the stable key
//     (delivery time, source shard ID, per-source sequence number) before
//     injection, so the destination engine's FIFO tie-breaking sees the
//     same arrival order every run.
//
// The determinism tests in this package and in internal/experiments
// assert exactly that: workers=1 (the sequential baseline) and workers=N
// produce identical delivered-packet sequences and histogram contents.
package par

import (
	"fmt"

	"prism/internal/sim"
)

// Shard is one unit of parallelism: an engine plus the cross-shard
// plumbing the Group scheduler needs. Model code on a shard must touch
// only state owned by that shard; the only sanctioned way to affect
// another shard is Link.Send.
type Shard struct {
	ID   int
	Name string
	Eng  *sim.Engine

	// inbox holds cross-shard messages awaiting injection, sorted by
	// (at, src, seq). Only the Group touches it, at barriers.
	inbox []message
	// outSeq numbers this shard's sends across all its outbound links,
	// giving equal-timestamp messages from one shard a total order.
	outSeq uint64
	// err is the shard's result from the last window.
	err error
}

// String identifies the shard in logs and errors.
func (s *Shard) String() string {
	return fmt.Sprintf("shard %d (%s)", s.ID, s.Name)
}

// InboxLen reports how many cross-shard messages are waiting to be
// injected into this shard — sends collected at a barrier whose delivery
// time falls beyond the horizon the group last ran to. Conservation
// checkers count these as in-flight on the medium.
func (s *Shard) InboxLen() int { return len(s.inbox) }
