package par

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across a pool of up to workers
// goroutines and returns when all calls have completed. It is the driver
// behind -parallel sweeps: multi-point experiments (the Fig. 11 load grid,
// the RSS scaling queue counts) are embarrassingly parallel because every
// point builds its own engine, so running points concurrently cannot
// change any point's result — provided each fn(i) writes only its own
// result slot, which is the required calling discipline.
//
// workers <= 1 runs inline in index order: the sequential baseline that
// the determinism tests compare parallel runs against.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Work-stealing by shared counter: long points (high-load sweeps) do
	// not leave workers idle behind a static partition.
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
