package par

import (
	"fmt"

	"prism/internal/sim"
)

// message is one cross-shard delivery. The (at, src, seq) triple is the
// stable ordering key that makes parallel delivery deterministic.
type message struct {
	at      sim.Time // delivery time on the destination shard
	src     int      // sending shard ID
	seq     uint64   // per-source send counter
	link    *Link
	payload any
}

// Link is a unidirectional cross-shard channel with a declared minimum
// latency. The lookahead is a physical property of the modelled medium —
// a wire's propagation delay, an IPI's cross-core cost — and is what the
// conservative scheduler turns into parallelism: the smaller the fastest
// link, the shorter the safe window.
type Link struct {
	Src, Dst *Shard
	// Lookahead is the minimum delay of any message on this link.
	Lookahead sim.Time

	deliver func(at sim.Time, payload any)
	// buf accumulates sends within a window. It is written only by the
	// source shard's goroutine and drained only at barriers, so it needs
	// no locking.
	buf []message
}

// Send delivers payload to the destination shard at now+delay, where delay
// must be at least the link's lookahead — sending faster than the medium
// allows would violate the window safety argument, so it panics. Send must
// be called from event context on the source shard (now is the source
// engine's current time).
func (l *Link) Send(now, delay sim.Time, payload any) {
	if delay < l.Lookahead {
		panic(fmt.Sprintf("par: send on %s→%s with delay %v below lookahead %v",
			l.Src.Name, l.Dst.Name, delay, l.Lookahead))
	}
	l.buf = append(l.buf, message{
		at:      now + delay,
		src:     l.Src.ID,
		seq:     l.Src.outSeq,
		link:    l,
		payload: payload,
	})
	l.Src.outSeq++
}

// Buffered reports how many sends are sitting in the link's window buffer
// awaiting the next barrier. Nonzero after a Group.Run only for messages
// emitted by the post-window tail run (delivery beyond the horizon);
// conservation checkers count these as in-flight on the medium.
func (l *Link) Buffered() int { return len(l.buf) }
