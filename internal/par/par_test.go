package par

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"prism/internal/sim"
)

// ringModel is a synthetic K-shard workload exercising everything the
// scheduler must get right: periodic local events, RNG-jittered cross-shard
// sends around a ring, and per-shard receive logs whose exact contents are
// the determinism oracle.
type ringModel struct {
	group *Group
	logs  [][]string // per shard: "(at src payload)" in delivery order
}

func buildRing(k int, lookahead sim.Time) *ringModel {
	m := &ringModel{group: NewGroup(), logs: make([][]string, k)}
	shards := make([]*Shard, k)
	for i := 0; i < k; i++ {
		shards[i] = m.group.Add(fmt.Sprintf("ring-%d", i), sim.NewEngine(uint64(100+i)))
	}
	links := make([]*Link, k)
	for i := 0; i < k; i++ {
		dst := (i + 1) % k
		links[i] = m.group.Connect(shards[i], shards[dst], lookahead,
			func(at sim.Time, payload any) {
				m.logs[dst] = append(m.logs[dst],
					fmt.Sprintf("%d %v", at, payload))
			})
	}
	for i := 0; i < k; i++ {
		i := i
		s := shards[i]
		period := sim.Time(700 + 130*i)
		var tick func()
		tick = func() {
			now := s.Eng.Now()
			// Jitter the delivery beyond the lookahead using the shard's
			// own deterministic RNG.
			extra := sim.Time(s.Eng.RNG().Intn(2500))
			links[i].Send(now, lookahead+extra, fmt.Sprintf("s%d@%d", i, now))
			s.Eng.After(period, tick)
		}
		s.Eng.At(sim.Time(50*i), tick)
	}
	return m
}

func runRing(t *testing.T, k, workers int, horizon sim.Time) *ringModel {
	t.Helper()
	m := buildRing(k, 1000)
	if err := m.group.Run(horizon, workers); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return m
}

func TestGroupDeterministicAcrossWorkers(t *testing.T) {
	const k, horizon = 5, 400_000
	base := runRing(t, k, 1, horizon)
	for _, workers := range []int{2, 4, 8} {
		m := runRing(t, k, workers, horizon)
		if !reflect.DeepEqual(base.logs, m.logs) {
			t.Fatalf("workers=%d delivery logs differ from sequential baseline", workers)
		}
		for i, s := range m.group.Shards() {
			if s.Eng.Executed != base.group.Shards()[i].Eng.Executed {
				t.Fatalf("workers=%d shard %d executed %d events, sequential %d",
					workers, i, s.Eng.Executed, base.group.Shards()[i].Eng.Executed)
			}
			if s.Eng.Now() != horizon {
				t.Fatalf("shard %d clock = %v, want horizon %v", i, s.Eng.Now(), horizon)
			}
		}
	}
	// Sanity: the workload actually crossed shards, a lot.
	total := 0
	for _, l := range base.logs {
		total += len(l)
	}
	if total < 1000 {
		t.Fatalf("only %d cross-shard deliveries; model too idle to prove anything", total)
	}
}

func TestLinkDeliveryTiming(t *testing.T) {
	g := NewGroup()
	a := g.Add("a", sim.NewEngine(1))
	b := g.Add("b", sim.NewEngine(2))
	var gotAt, engNow sim.Time
	l := g.Connect(a, b, 40, func(at sim.Time, payload any) {
		gotAt = at
		engNow = b.Eng.Now()
		if payload.(string) != "ping" {
			t.Errorf("payload = %v", payload)
		}
	})
	a.Eng.At(100, func() { l.Send(100, 50, "ping") })
	if err := g.Run(1000, 2); err != nil {
		t.Fatal(err)
	}
	if gotAt != 150 || engNow != 150 {
		t.Errorf("delivered at %v (engine now %v), want 150", gotAt, engNow)
	}
}

// TestCausalChainAcrossWindows bounces a token between two shards: each
// receive triggers the next send, so progress requires the window barrier
// to alternate correctly between the shards.
func TestCausalChainAcrossWindows(t *testing.T) {
	const lookahead = 100
	for _, workers := range []int{1, 2} {
		g := NewGroup()
		a := g.Add("a", sim.NewEngine(1))
		b := g.Add("b", sim.NewEngine(2))
		bounces := 0
		var ab, ba *Link
		ab = g.Connect(a, b, lookahead, func(at sim.Time, payload any) {
			bounces++
			ba.Send(at, lookahead, nil)
		})
		ba = g.Connect(b, a, lookahead, func(at sim.Time, payload any) {
			bounces++
			ab.Send(at, lookahead, nil)
		})
		a.Eng.At(0, func() { ab.Send(0, lookahead, nil) })
		if err := g.Run(10_000, workers); err != nil {
			t.Fatal(err)
		}
		// Token departs at 0 and hops every 100ns: receptions at 100,
		// 200, ..., 10000 — inclusive horizon semantics.
		if bounces != 100 {
			t.Errorf("workers=%d: bounces = %d, want 100", workers, bounces)
		}
	}
}

func TestConstructionTimeSendDelivered(t *testing.T) {
	g := NewGroup()
	a := g.Add("a", sim.NewEngine(1))
	b := g.Add("b", sim.NewEngine(2))
	got := false
	l := g.Connect(a, b, 10, func(at sim.Time, payload any) { got = at == 10 })
	// Sent during topology construction, before any event ran.
	l.Send(0, 10, nil)
	if err := g.Run(100, 1); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("construction-time send not delivered at its timestamp")
	}
}

func TestNoLinksRunsToHorizonInOneWindow(t *testing.T) {
	g := NewGroup()
	ran := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		s := g.Add(fmt.Sprintf("iso-%d", i), sim.NewEngine(uint64(i)))
		s.Eng.At(5, func() { ran[i]++ })
		s.Eng.At(500, func() { ran[i]++ }) // exactly at horizon: must fire
	}
	if err := g.Run(500, 2); err != nil {
		t.Fatal(err)
	}
	if ran != [2]int{2, 2} {
		t.Errorf("ran = %v, want both shards fully executed", ran)
	}
	if g.Windows != 1 {
		t.Errorf("Windows = %d, want 1 (no links → one window)", g.Windows)
	}
}

func TestHaltSurfacesShardIdentity(t *testing.T) {
	for _, workers := range []int{1, 3} {
		g := NewGroup()
		g.Add("calm", sim.NewEngine(1))
		s := g.Add("angry", sim.NewEngine(2))
		s.Eng.At(10, func() { s.Eng.Halt() })
		err := g.Run(100, workers)
		if !errors.Is(err, sim.ErrHalted) {
			t.Fatalf("workers=%d: err = %v, want ErrHalted", workers, err)
		}
		if !strings.Contains(err.Error(), "angry") {
			t.Errorf("workers=%d: err %q does not name the halted shard", workers, err)
		}
	}
}

func TestConnectValidation(t *testing.T) {
	g := NewGroup()
	a := g.Add("a", sim.NewEngine(1))
	b := g.Add("b", sim.NewEngine(2))
	mustPanic(t, "zero lookahead", func() { g.Connect(a, b, 0, nil) })
	mustPanic(t, "self link", func() { g.Connect(a, a, 5, nil) })
	l := g.Connect(a, b, 5, func(sim.Time, any) {})
	mustPanic(t, "sub-lookahead send", func() { l.Send(0, 4, nil) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		counts := make([]int, n)
		ForEach(n, workers, func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	ForEach(0, 4, func(int) { t.Error("fn called for n=0") })
}

func TestForEachResultsMatchSequential(t *testing.T) {
	const n = 33
	seq := make([]int, n)
	ForEach(n, 1, func(i int) { seq[i] = i * i })
	par := make([]int, n)
	ForEach(n, 7, func(i int) { par[i] = i * i })
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel results differ from sequential")
	}
}
