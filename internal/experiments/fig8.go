package experiments

import (
	"fmt"
	"strings"

	"prism/internal/prio"
	"prism/internal/stats"
	"prism/internal/traffic"
)

// Fig8Row is one mode's latency and single-core throughput without
// background traffic. The paper's anchors: Vanilla and PRISM-batch sustain
// ~400 kpps; PRISM-sync ~300 kpps; PRISM-sync cuts per-packet latency
// (median and tail) by ~50% versus Vanilla, with PRISM-batch in between.
type Fig8Row struct {
	Mode    prio.Mode
	Latency stats.Summary
	// MaxKpps is the sustained single-core delivery rate under overload.
	MaxKpps float64
	// OfferedUtil is the processing-core utilization during the latency
	// measurement.
	OfferedUtil float64
}

// Fig8Result holds all three rows.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 runs the streamlined-processing microbenchmark.
func Fig8(p Params) Fig8Result {
	var res Fig8Result
	for _, mode := range Modes {
		lat, util := fig8Latency(p, mode)
		res.Rows = append(res.Rows, Fig8Row{
			Mode:        mode,
			Latency:     lat,
			MaxKpps:     fig8MaxThroughput(p, mode),
			OfferedUtil: util,
		})
	}
	return res
}

// fig8Latency measures the sockperf under-load flow at p.LoadRate with the
// flow marked high-priority (in PRISM modes).
func fig8Latency(p Params, mode prio.Mode) (stats.Summary, float64) {
	r := NewRig(p, mode)
	ctr := r.Host.AddContainer("srv")
	r.Host.DB.Add(prio.Rule{IP: ctr.IP, Port: PortHighPrio})
	pp := traffic.NewPingPong(r.Eng, r.Host, ctr, clientSrc(0), PortHighPrio, p.LoadRate)
	pp.Warmup = p.Warmup
	mustNoErr(pp.InstallEcho(p.EchoCost))
	pp.Start(r.Client, 0)
	mustNoErr(r.Run(p))
	return pp.Hist.Summarize(), r.Utilization()
}

// fig8MaxThroughput overloads the server (2x vanilla capacity) with a
// one-way flood of small packets marked high-priority (so PRISM's sync
// path is exercised) and reports the delivered rate.
func fig8MaxThroughput(p Params, mode prio.Mode) float64 {
	r := NewRig(p, mode)
	ctr := r.Host.AddContainer("srv")
	r.Host.DB.Add(prio.Rule{IP: ctr.IP, Port: PortBackgrnd})
	fl := traffic.NewUDPFlood(r.Eng, r.Host, ctr, clientSrc(1), PortBackgrnd, 900_000)
	mustNoErr(fl.InstallSink(p.SinkCost))
	r.Eng.At(p.Warmup, func() { fl.Delivered.Start(p.Warmup) })
	fl.Start(0)
	mustNoErr(r.Run(p))
	return fl.Delivered.Kpps(r.Eng.Now())
}

// String renders the table.
func (r Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — latency & single-core throughput, no background\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %12s %6s\n", "mode", "p50(µs)", "mean(µs)", "p99(µs)", "tput(kpps)", "util")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10.1f %10.1f %10.1f %12.0f %5.0f%%\n",
			row.Mode, row.Latency.P50.Micros(), row.Latency.Mean.Micros(),
			row.Latency.P99.Micros(), row.MaxKpps, 100*row.OfferedUtil)
	}
	return b.String()
}
