package experiments

import (
	"strings"
	"testing"

	"prism/internal/prio"
)

// quickParams shrinks runs so the full suite stays fast while preserving
// enough samples for the shape assertions.
func quickParams() Params { return Default().quick() }

func TestFig6ReproducesPaperTables(t *testing.T) {
	res := Fig6(quickParams())
	if !res.VanillaInterleaved {
		t.Error("vanilla order not interleaved (paper Fig. 6a)")
	}
	if !res.PrismStreamlined {
		t.Error("prism order not streamlined (paper Fig. 6b)")
	}
	wantVan := []string{"eth0", "br0", "eth0", "veth0", "br0", "eth0"}
	gotVan := order(res.Vanilla)
	for i := range wantVan {
		if gotVan[i] != wantVan[i] {
			t.Fatalf("vanilla order = %v, want prefix %v", gotVan, wantVan)
		}
	}
	wantPr := []string{"eth0", "br0", "veth0", "eth0", "br0", "veth0"}
	gotPr := order(res.Prism)
	for i := range wantPr {
		if gotPr[i] != wantPr[i] {
			t.Fatalf("prism order = %v, want prefix %v", gotPr, wantPr)
		}
	}
	if !strings.Contains(res.String(), "Iter.") {
		t.Error("table rendering broken")
	}
}

func TestFig3BusyWorseThanIdle(t *testing.T) {
	res := Fig3(quickParams())
	if res.MedianRatio < 1.8 {
		t.Errorf("busy/idle median = %.2f, want substantially > 1 (paper ~5x)", res.MedianRatio)
	}
	if res.P99Ratio < 3 {
		t.Errorf("busy/idle p99 = %.2f, want > 3 (paper ~5.5x)", res.P99Ratio)
	}
	if res.BusyUtil < 0.5 || res.BusyUtil > 0.95 {
		t.Errorf("busy utilization = %.2f, want the paper's busy regime", res.BusyUtil)
	}
	if len(res.IdleCDF) == 0 || len(res.BusyCDF) == 0 {
		t.Error("CDFs missing")
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestFig8ThroughputAnchors(t *testing.T) {
	p := quickParams()
	p.Duration = 300 * 1e6 // 300ms for stable rates
	res := Fig8(p)
	byMode := map[prio.Mode]Fig8Row{}
	for _, row := range res.Rows {
		byMode[row.Mode] = row
	}
	van := byMode[prio.ModeVanilla]
	bat := byMode[prio.ModeBatch]
	syn := byMode[prio.ModeSync]
	if van.MaxKpps < 380 || van.MaxKpps > 460 {
		t.Errorf("vanilla throughput = %.0f kpps, want ~400 (paper)", van.MaxKpps)
	}
	if bat.MaxKpps < 380 || bat.MaxKpps > 460 {
		t.Errorf("batch throughput = %.0f kpps, want ~400 (paper)", bat.MaxKpps)
	}
	if syn.MaxKpps < 260 || syn.MaxKpps > 340 {
		t.Errorf("sync throughput = %.0f kpps, want ~300 (paper)", syn.MaxKpps)
	}
	// Latency ordering: PRISM modes no worse than vanilla.
	if float64(syn.Latency.P50) > float64(van.Latency.P50) {
		t.Errorf("sync p50 %v > vanilla p50 %v", syn.Latency.P50, van.Latency.P50)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestFig9PriorityDifferentiation(t *testing.T) {
	res := Fig9(quickParams())
	// Kernel-side cut is the paper's headline: ~50% for sync.
	if cut := res.KernelImprovement(prio.ModeSync, MeanOf); cut < 0.35 {
		t.Errorf("sync kernel avg cut = %.0f%%, want >= 35%% (paper ~50%%)", 100*cut)
	}
	if cut := res.KernelImprovement(prio.ModeSync, P99Of); cut < 0.3 {
		t.Errorf("sync kernel p99 cut = %.0f%%, want >= 30%%", 100*cut)
	}
	// Measured (RTT/2) improvements are diluted by client constants but
	// must still be substantial.
	if cut := res.Improvement(prio.ModeSync, MeanOf); cut < 0.2 {
		t.Errorf("sync measured avg cut = %.0f%%, want >= 20%%", 100*cut)
	}
	if cut := res.Improvement(prio.ModeBatch, MeanOf); cut < 0.15 {
		t.Errorf("batch measured avg cut = %.0f%%, want >= 15%%", 100*cut)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestFig10HostNetworkNullResult(t *testing.T) {
	res := Fig10(quickParams())
	for _, mode := range []prio.Mode{prio.ModeBatch, prio.ModeSync} {
		cut := res.Improvement(mode, MeanOf)
		if cut > 0.10 || cut < -0.10 {
			t.Errorf("%v host-network avg cut = %.0f%%, want ~0 (stage-1 limitation)", mode, 100*cut)
		}
	}
	if !res.Host {
		t.Error("Host flag not set")
	}
}

func TestFig11Shapes(t *testing.T) {
	p := quickParams()
	res := Fig11(p, []float64{0, 100_000, 300_000})
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	var van, syn Fig11Series
	for _, s := range res.Series {
		switch s.Mode {
		case prio.ModeVanilla:
			van = s
		case prio.ModeSync:
			syn = s
		}
	}
	for i := range van.Points {
		if syn.Points[i].Avg > van.Points[i].Avg {
			t.Errorf("at %v kpps: sync avg %v > vanilla avg %v",
				van.Points[i].BGKpps, syn.Points[i].Avg, van.Points[i].Avg)
		}
	}
	// Utilization grows with load.
	if van.Points[2].Util <= van.Points[1].Util || van.Points[1].Util <= van.Points[0].Util {
		t.Errorf("utilization not increasing: %+v", van.Points)
	}
	// Paper: the C-state penalty vanishes under load — the minimum at high
	// load is below the idle-system latency.
	if van.Points[2].Min >= van.Points[0].Min {
		t.Errorf("busy min %v not below idle min %v (C-state effect missing)",
			van.Points[2].Min, van.Points[0].Min)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestFig12MemcachedShapes(t *testing.T) {
	p := quickParams()
	res := Fig12(p)
	vanIdle, ok1 := res.Find(prio.ModeVanilla, false)
	vanBusy, ok2 := res.Find(prio.ModeVanilla, true)
	synBusy, ok3 := res.Find(prio.ModeSync, true)
	synIdle, ok4 := res.Find(prio.ModeSync, false)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatal("missing rows")
	}
	// Busy vanilla collapses (paper: -80%).
	if vanBusy.KOps > vanIdle.KOps*0.5 {
		t.Errorf("vanilla busy kops %.1f vs idle %.1f: collapse missing", vanBusy.KOps, vanIdle.KOps)
	}
	// PRISM recovers throughput and latency on the busy server.
	if synBusy.KOps <= vanBusy.KOps {
		t.Errorf("sync busy kops %.1f <= vanilla busy %.1f", synBusy.KOps, vanBusy.KOps)
	}
	if synBusy.Latency.Mean >= vanBusy.Latency.Mean {
		t.Errorf("sync busy avg %v >= vanilla busy avg %v", synBusy.Latency.Mean, vanBusy.Latency.Mean)
	}
	// Idle: no significant difference between modes (paper).
	ratio := synIdle.KOps / vanIdle.KOps
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("idle kops ratio sync/vanilla = %.2f, want ~1", ratio)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestFig13WebShapes(t *testing.T) {
	p := quickParams()
	res := Fig13(p)
	vanBusy, _ := res.Find(prio.ModeVanilla, true)
	batBusy, _ := res.Find(prio.ModeBatch, true)
	synBusy, _ := res.Find(prio.ModeSync, true)
	if batBusy.Latency.Mean >= vanBusy.Latency.Mean {
		t.Errorf("batch busy avg %v >= vanilla %v", batBusy.Latency.Mean, vanBusy.Latency.Mean)
	}
	if synBusy.Latency.Mean >= vanBusy.Latency.Mean {
		t.Errorf("sync busy avg %v >= vanilla %v", synBusy.Latency.Mean, vanBusy.Latency.Mean)
	}
	// All modes sustain the offered request rate at this calibration.
	for _, row := range res.Rows {
		if row.KReqs < 1.5 {
			t.Errorf("%v busy=%v kreq/s = %.2f, want ~2 (offered)", row.Mode, row.Busy, row.KReqs)
		}
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestRigDeterminism(t *testing.T) {
	p := quickParams()
	a, _, _ := latencyUnderLoad(p, prio.ModeBatch, p.BGRate, true)
	b, _, _ := latencyUnderLoad(p, prio.ModeBatch, p.BGRate, true)
	if a.Count() != b.Count() || a.Mean() != b.Mean() || a.Quantile(0.99) != b.Quantile(0.99) {
		t.Errorf("same seed produced different results: %v vs %v", a.Summarize(), b.Summarize())
	}
	p2 := p
	p2.Seed = 99
	c, _, _ := latencyUnderLoad(p2, prio.ModeBatch, p.BGRate, true)
	if a.Mean() == c.Mean() && a.Quantile(0.99) == c.Quantile(0.99) && a.Max() == c.Max() {
		t.Error("different seeds produced identical distributions")
	}
}

func TestExtDriverRemovesStage1Limitation(t *testing.T) {
	res := ExtDriver(quickParams())
	// Driver-level priority must beat software-only PRISM on the overlay…
	if res.OverlayDriver.Mean >= res.OverlayStock.Mean {
		t.Errorf("driver rings mean %v >= stock %v", res.OverlayDriver.Mean, res.OverlayStock.Mean)
	}
	// …and turn the host-network null result positive.
	hostCut := cut(res.HostVanilla, res.HostDriver, MeanOf)
	if hostCut < 0.1 {
		t.Errorf("host-network cut with driver rings = %.0f%%, want > 10%%", 100*hostCut)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestAblationBatchTradeoff(t *testing.T) {
	p := quickParams()
	res := AblationBatch(p, []int{8, 64, 128})
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Throughput grows with batch size (per-poll overheads amortize).
	if !(res.Points[0].MaxKpps < res.Points[1].MaxKpps) {
		t.Errorf("throughput not increasing with batch: %+v", res.Points)
	}
	// At equal relative load, both extremes lose to the default on
	// latency (the tradeoff that motivates the paper).
	mid := res.Points[1].BusyMean
	if res.Points[0].BusyMean <= mid && res.Points[2].BusyMean <= mid {
		t.Errorf("no latency tradeoff visible: %+v", res.Points)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestScalingRSS(t *testing.T) {
	p := quickParams()
	res := Scaling(p, []int{1, 4})
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	one, four := res.Points[0], res.Points[1]
	// Aggregate throughput scales with queues.
	if four.AggKpps < one.AggKpps*2 {
		t.Errorf("4-queue agg %.0f < 2x 1-queue %.0f", four.AggKpps, one.AggKpps)
	}
	// A colliding flow gets no help from extra queues; PRISM still cuts it.
	for _, pt := range res.Points {
		if pt.HighBusyMeanPrism >= pt.HighBusyMean {
			t.Errorf("queues=%d: sync %v >= vanilla %v on the colliding queue",
				pt.Queues, pt.HighBusyMeanPrism, pt.HighBusyMean)
		}
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}
