package experiments

import (
	"fmt"
	"strings"

	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/traffic"
)

// BatchPoint is one (batch size) measurement of the §II-A1/§III-B
// throughput↔latency tradeoff that motivates PRISM: growing the NAPI
// weight amortizes per-poll overheads (throughput up) but multiplies the
// queueing a packet suffers at every stage (latency up).
type BatchPoint struct {
	BatchSize int
	// BusyMean is the high-priority flow's mean latency under background
	// load in vanilla mode.
	BusyMean sim.Time
	// MaxKpps is the vanilla single-core delivery rate under overload.
	MaxKpps float64
}

// AblationBatchResult sweeps the NAPI batch weight.
type AblationBatchResult struct {
	Points []BatchPoint
}

// AblationBatch runs the sweep. Linux's default weight is 64; the sweep
// shows both smaller (latency-friendlier, slower) and larger settings.
func AblationBatch(p Params, sizes []int) AblationBatchResult {
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32, 64, 128}
	}
	var res AblationBatchResult
	for _, size := range sizes {
		kpps := batchThroughput(p, size)
		// Measure latency at equal *relative* load (75% of this batch
		// size's capacity); at a fixed absolute rate, small batches would
		// just run hotter and the utilization effect would mask the
		// batching-delay effect the sweep is about.
		pl := p
		pl.BGRate = kpps * 1e3 * 0.75
		res.Points = append(res.Points, BatchPoint{
			BatchSize: size,
			BusyMean:  batchLatency(pl, size),
			MaxKpps:   kpps,
		})
	}
	return res
}

func batchLatency(p Params, batch int) sim.Time {
	r := NewRig(p, prio.ModeVanilla, WithBatchSize(batch))
	hi := r.Host.AddContainer("hi-srv")
	pp := traffic.NewPingPong(r.Eng, r.Host, hi, clientSrc(0), PortHighPrio, p.HighRate)
	pp.Warmup = p.Warmup
	mustNoErr(pp.InstallEcho(p.EchoCost))
	pp.Start(r.Client, 0)

	bg := r.Host.AddContainer("bg-srv")
	fl := traffic.NewUDPFlood(r.Eng, r.Host, bg, clientSrc(1), PortBackgrnd, p.BGRate)
	fl.Burst = p.BGBurst
	fl.Poisson = false
	mustNoErr(fl.InstallSink(p.SinkCost))
	fl.Start(0)

	mustNoErr(r.Run(p))
	return pp.Hist.Mean()
}

func batchThroughput(p Params, batch int) float64 {
	r := NewRig(p, prio.ModeVanilla, WithBatchSize(batch))
	ctr := r.Host.AddContainer("srv")
	fl := traffic.NewUDPFlood(r.Eng, r.Host, ctr, clientSrc(1), PortBackgrnd, 900_000)
	mustNoErr(fl.InstallSink(p.SinkCost))
	r.Eng.At(p.Warmup, func() { fl.Delivered.Start(p.Warmup) })
	fl.Start(0)
	mustNoErr(r.Run(p))
	return fl.Delivered.Kpps(r.Eng.Now())
}

// String renders the sweep.
func (r AblationBatchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — NAPI batch weight (vanilla): throughput vs latency tradeoff\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "batch", "tput(kpps)", "busy-mean(µs)")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-10d %12.0f %12.1f\n", pt.BatchSize, pt.MaxKpps, pt.BusyMean.Micros())
	}
	return b.String()
}
