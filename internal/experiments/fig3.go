package experiments

import (
	"fmt"
	"strings"

	"prism/internal/overlay"
	"prism/internal/prio"
	"prism/internal/stats"
	"prism/internal/traffic"
)

// Fig3Result reproduces Fig. 3: the latency distribution of a
// latency-sensitive overlay flow on the *vanilla* kernel, with and without
// low-priority background traffic. The paper reports the busy median
// ~400% above idle and the busy p99 ~450% above idle.
type Fig3Result struct {
	Idle stats.Summary
	Busy stats.Summary

	IdleCDF []stats.CDFPoint
	BusyCDF []stats.CDFPoint

	// MedianRatio and P99Ratio are busy/idle.
	MedianRatio float64
	P99Ratio    float64
	// BusyUtil is the processing-core utilization under background load.
	BusyUtil float64
}

// Fig3 runs the experiment.
func Fig3(p Params) Fig3Result {
	idle, _, _ := latencyUnderLoad(p, prio.ModeVanilla, 0, true)
	busy, _, util := latencyUnderLoad(p, prio.ModeVanilla, p.BGRate, true)
	res := Fig3Result{
		Idle:     idle.Summarize(),
		Busy:     busy.Summarize(),
		IdleCDF:  idle.CDF(),
		BusyCDF:  busy.CDF(),
		BusyUtil: util,
	}
	if res.Idle.P50 > 0 {
		res.MedianRatio = float64(res.Busy.P50) / float64(res.Idle.P50)
	}
	if res.Idle.P99 > 0 {
		res.P99Ratio = float64(res.Busy.P99) / float64(res.Idle.P99)
	}
	return res
}

// latencyUnderLoad is the shared Fig. 3/9/10 rig: a 1 kpps high-priority
// ping-pong flow to one container, optionally competing with a bgRate
// background flood to a second container, all processed on one core.
// overlayPath selects container overlay vs host network; opts tweak the
// testbed (e.g. WithPolicy for the poll-policy ablation).
// It returns the latency histogram, the ping-pong flow, and the measured
// processing-core utilization.
func latencyUnderLoad(p Params, mode prio.Mode, bgRate float64, overlayPath bool, opts ...RigOption) (*stats.Histogram, *traffic.PingPong, float64) {
	r := NewRig(p, mode, opts...)

	var pp *traffic.PingPong
	if overlayPath {
		hi := r.Host.AddContainer("hi-srv")
		pp = traffic.NewPingPong(r.Eng, r.Host, hi, clientSrc(0), PortHighPrio, p.HighRate)
		r.Host.DB.Add(prio.Rule{IP: hi.IP, Port: PortHighPrio})
	} else {
		pp = traffic.NewPingPong(r.Eng, r.Host, nil, clientSrc(0), PortHighPrio, p.HighRate)
		r.Host.DB.Add(prio.Rule{Port: PortHighPrio})
	}
	pp.Warmup = p.Warmup
	mustNoErr(pp.InstallEcho(p.EchoCost))
	pp.Start(r.Client, 0)

	if bgRate > 0 {
		var fl *traffic.UDPFlood
		if overlayPath {
			bg := r.Host.AddContainer("bg-srv")
			fl = traffic.NewUDPFlood(r.Eng, r.Host, bg, clientSrc(1), PortBackgrnd, bgRate)
		} else {
			fl = traffic.NewUDPFlood(r.Eng, r.Host, nil, clientSrc(1), PortBackgrnd, bgRate)
		}
		fl.Burst = p.BGBurst
		fl.Poisson = false
		fl.JitterFrac = 0.25
		mustNoErr(fl.InstallSink(p.SinkCost))
		fl.Start(0)
	}

	mustNoErr(r.Run(p))
	return pp.Hist, pp, r.Utilization()
}

// clientSrc returns the idx-th client-side container endpoint; source
// ports are disjoint per flow so the client can demux replies.
func clientSrc(idx int) overlay.RemoteEndpoint {
	return overlay.ClientContainer(idx, uint16(40000+idx))
}

func mustNoErr(err error) {
	if err != nil {
		panic(fmt.Sprintf("experiments: rig construction failed: %v", err))
	}
}

// String renders the result as a table plus the headline ratios.
func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — vanilla overlay latency, idle vs busy server\n")
	fmt.Fprintf(&b, "  idle: %s\n", r.Idle)
	fmt.Fprintf(&b, "  busy: %s  (proc core %.0f%% busy)\n", r.Busy, 100*r.BusyUtil)
	fmt.Fprintf(&b, "  busy/idle median = %.1fx (paper ~5x), p99 = %.1fx (paper ~5.5x)\n",
		r.MedianRatio, r.P99Ratio)
	return b.String()
}
