package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"prism/internal/cluster"
)

const clusterGoldenPath = "testdata/cluster_golden.json"

// The cluster fixture runs the acceptance-scale point — 16 hosts, 1000
// containers, all three placement policies — at detParams duration, and
// must be bit-identical at 1, 2 and 4 workers (the committed digests are
// what the CI cluster-determinism job re-derives).
func clusterCapture(workers int) ClusterResult {
	p := detParams()
	p.Workers = workers
	return Cluster(p, DefaultClusterConfig())
}

// TestClusterGolden pins the datacenter experiment bit-for-bit: latency
// summaries, counts, fabric load, and the merged metrics/span digests of
// every placement policy must match the committed fixture for every
// worker count. Regenerate with:
//
//	go test ./internal/experiments -run TestClusterGolden -update-golden
func TestClusterGolden(t *testing.T) {
	got := clusterCapture(1)

	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(clusterGoldenPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(clusterGoldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("cluster golden fixture rewritten: %s", clusterGoldenPath)
		return
	}

	raw, err := os.ReadFile(clusterGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want ClusterResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	check := func(name string, gotR ClusterResult) {
		w, g := mustJSON(t, want), mustJSON(t, gotR)
		if string(w) != string(g) {
			t.Errorf("%s diverged from cluster golden fixture\nwant: %s\ngot:  %s", name, w, g)
		}
	}
	check("workers=1", got)
	for _, w := range []int{2, 4} {
		check("workers="+string(rune('0'+w)), clusterCapture(w))
	}
}

// TestClusterGoldenHasSignal guards the fixture's reach: the committed
// rows must show real traffic on both priority classes, a prioritized p99
// no worse than best-effort's, fabric utilization in (0, 1], and distinct
// digests per placement — so the golden cannot silently pin an idle or
// degenerate cluster.
func TestClusterGoldenHasSignal(t *testing.T) {
	raw, err := os.ReadFile(clusterGoldenPath)
	if err != nil {
		t.Skipf("cluster golden fixture not captured yet: %v", err)
	}
	var want ClusterResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if want.Hosts < 16 || want.Containers < 1000 {
		t.Fatalf("fixture below acceptance scale: %d hosts / %d containers", want.Hosts, want.Containers)
	}
	if len(want.Rows) != len(cluster.Placements) {
		t.Fatalf("fixture has %d rows, want one per placement", len(want.Rows))
	}
	digests := map[string]bool{}
	for _, row := range want.Rows {
		if row.HiRecv == 0 || row.LoRecv == 0 || row.FloodRecv == 0 {
			t.Errorf("%s: fixture looks idle: %+v", row.Placement, row)
		}
		if row.Hi.P99 > row.Lo.P99 {
			t.Errorf("%s: prioritized p99 (%v) worse than best-effort (%v)", row.Placement, row.Hi.P99, row.Lo.P99)
		}
		if row.FabricUtilMax <= 0 || row.FabricUtilMax > 1 {
			t.Errorf("%s: implausible fabric utilization %v", row.Placement, row.FabricUtilMax)
		}
		if len(row.MetricsSHA) != 64 || len(row.SpansSHA) != 64 {
			t.Errorf("%s: truncated digests", row.Placement)
		}
		digests[row.MetricsSHA] = true
	}
	if len(digests) != len(want.Rows) {
		t.Error("placement policies produced identical metrics digests — placement has no effect")
	}
}

// TestClusterSeedDeterministic reruns one placement point twice with the
// same seed (digest equality is the strongest check the run exposes) and
// demands a different span stream for a different seed.
func TestClusterSeedDeterministic(t *testing.T) {
	p := detParams()
	cc := ClusterConfig{Hosts: 4, Containers: 48, Placements: []cluster.Placement{cluster.PlaceSpread}}
	a := Cluster(p, cc)
	b := Cluster(p, cc)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	p.Seed = 7
	c := Cluster(p, cc)
	if a.Rows[0].SpansSHA == c.Rows[0].SpansSHA {
		t.Fatal("different seeds produced identical span streams")
	}
}
