package experiments

import (
	"fmt"
	"strings"

	"prism/internal/par"
	"prism/internal/prio"
	"prism/internal/sim"
)

// Fig11Point is one background-load level of the sweep.
type Fig11Point struct {
	BGKpps float64
	// Min/Avg/P99 of the high-priority flow (the figure's shaded band and
	// solid line).
	Min, Avg, P99 sim.Time
	// Util is the background packet-processing CPU (the dashed line).
	Util float64
}

// Fig11Series is one mode's sweep.
type Fig11Series struct {
	Mode   prio.Mode
	Points []Fig11Point
}

// Fig11Result reproduces Fig. 11: high-priority latency as a function of
// background load. The paper's shape: a hump at low load (C-state
// sleep/wake cycles), steady decline toward 80–90% CPU, and an explosion
// past saturation; PRISM's tail tracks vanilla's average and PRISM's
// average tracks vanilla's minimum.
type Fig11Result struct {
	Series []Fig11Series
}

// Fig11Loads is the default sweep grid (background kpps).
var Fig11Loads = []float64{0, 10_000, 50_000, 100_000, 150_000, 200_000, 250_000, 300_000}

// Fig11 sweeps vanilla and PRISM-sync over the load grid. The mode×load
// grid is a multi-point sweep of independent simulations, so it fans out
// over p.Workers (sequential when <= 1) with bit-identical results.
func Fig11(p Params, loads []float64) Fig11Result {
	if len(loads) == 0 {
		loads = Fig11Loads
	}
	modes := []prio.Mode{prio.ModeVanilla, prio.ModeSync}
	res := Fig11Result{Series: make([]Fig11Series, len(modes))}
	for mi, mode := range modes {
		res.Series[mi] = Fig11Series{Mode: mode, Points: make([]Fig11Point, len(loads))}
	}
	par.ForEach(len(modes)*len(loads), p.Workers, func(j int) {
		mi, li := j/len(loads), j%len(loads)
		load := loads[li]
		// Sender-side burstiness grows with rate: a 10 kpps sender
		// never accumulates the 96-frame trains a 300 kpps one does.
		lp := p
		lp.BGBurst = int(load / 3125)
		if lp.BGBurst < 8 {
			lp.BGBurst = 8
		}
		if lp.BGBurst > p.BGBurst {
			lp.BGBurst = p.BGBurst
		}
		hist, _, util := latencyUnderLoad(lp, modes[mi], load, true)
		sum := hist.Summarize()
		res.Series[mi].Points[li] = Fig11Point{
			BGKpps: load / 1e3,
			Min:    sum.Min,
			Avg:    sum.Mean,
			P99:    sum.P99,
			Util:   util,
		}
	})
	return res
}

// String renders the sweep as aligned series tables.
func (r Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 — high-priority latency vs background load\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%s:\n%-10s %10s %10s %10s %6s\n", s.Mode, "bg(kpps)", "min(µs)", "avg(µs)", "p99(µs)", "util")
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "%-10.0f %10.1f %10.1f %10.1f %5.0f%%\n",
				pt.BGKpps, pt.Min.Micros(), pt.Avg.Micros(), pt.P99.Micros(), 100*pt.Util)
		}
	}
	return b.String()
}
