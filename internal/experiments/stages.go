package experiments

import (
	"fmt"
	"strings"

	"prism/internal/obs"
	"prism/internal/par"
	"prism/internal/prio"
	"prism/internal/stats"
	"prism/internal/traffic"
)

// StageModeRow is one engine mode's fully instrumented run: the complete
// observability pipeline (span stream + metrics registry) plus the
// per-stage latency decomposition extracted from it.
type StageModeRow struct {
	Mode prio.Mode
	// Pipeline holds the run's span stream and metrics registry; the
	// Shard label of every metric is the mode name, so merged exports
	// keep the runs distinguishable.
	Pipeline  *obs.Pipeline
	Breakdown []obs.StageStat
	E2E       stats.Summary
	// HighBreakdown and HighE2E restrict the decomposition to the
	// high-priority flow (priority level 1) — the view Figs. 4/5 plot:
	// under vanilla the flow's wait accumulates behind background batches
	// at every stage; PRISM removes it from stage 2 onward.
	HighBreakdown []obs.StageStat
	HighE2E       stats.Summary
	Delivered     uint64
	Dropped       uint64
}

// StagesResult reproduces the per-stage latency decomposition behind the
// paper's Figs. 4–5: where receive latency accumulates (queue wait vs
// handler service at nic/bridge/veth/socket) for the standard contended
// workload — a 1 kpps high-priority flow against a ~300 kpps background
// flood on one core — under each engine. Vanilla accumulates wait at the
// later stages (the batch-interleaving of Fig. 6a); PRISM removes it.
type StagesResult struct {
	Rows []StageModeRow
}

// Stages runs the instrumented workload once per mode. The measurement
// points are independent engines, so they fan out over p.Workers with
// bit-identical results for any worker count (each mode's pipeline is
// local to its engine).
func Stages(p Params) StagesResult {
	res := StagesResult{Rows: make([]StageModeRow, len(Modes))}
	par.ForEach(len(Modes), p.Workers, func(i int) {
		mode := Modes[i]
		pipe := obs.NewPipeline(mode.String())
		r := NewRig(p, mode, WithObs(pipe))

		hi := r.Host.AddContainer("hi-srv")
		pp := traffic.NewPingPong(r.Eng, r.Host, hi, clientSrc(0), PortHighPrio, p.HighRate)
		r.Host.DB.Add(prio.Rule{IP: hi.IP, Port: PortHighPrio})
		pp.Warmup = p.Warmup
		mustNoErr(pp.InstallEcho(p.EchoCost))
		pp.Start(r.Client, 0)

		if p.BGRate > 0 {
			bg := r.Host.AddContainer("bg-srv")
			fl := traffic.NewUDPFlood(r.Eng, r.Host, bg, clientSrc(1), PortBackgrnd, p.BGRate)
			fl.Burst = p.BGBurst
			fl.Poisson = false
			fl.JitterFrac = 0.25
			mustNoErr(fl.InstallSink(p.SinkCost))
			fl.Start(0)
		}

		mustNoErr(r.Run(p))
		res.Rows[i] = StageModeRow{
			Mode:          mode,
			Pipeline:      pipe,
			Breakdown:     obs.StageBreakdown(pipe.M),
			E2E:           obs.E2ESummary(pipe.M),
			HighBreakdown: obs.StageBreakdownFilter(pipe.M, obs.Labels{Priority: 1}),
			HighE2E:       obs.E2ESummaryFilter(pipe.M, obs.Labels{Priority: 1}),
			Delivered:     pipe.M.CounterValue("prism_delivered_total", obs.Labels{}),
			Dropped:       pipe.M.CounterValue("prism_dropped_total", obs.Labels{}),
		}
	})
	return res
}

// MergedRegistry folds every mode's metrics into one registry (modes stay
// distinguishable via the shard label); exporters consume it.
func (r StagesResult) MergedRegistry() *obs.Registry {
	regs := make([]*obs.Registry, len(r.Rows))
	for i, row := range r.Rows {
		regs[i] = row.Pipeline.M
	}
	return obs.MergeRegistries(regs...)
}

// TraceProcesses returns one Chrome-trace process per mode, in run order.
func (r StagesResult) TraceProcesses() []obs.TraceProcess {
	procs := make([]obs.TraceProcess, len(r.Rows))
	for i, row := range r.Rows {
		procs[i] = obs.TraceProcess{Name: row.Mode.String(), Events: row.Pipeline.T.Events()}
	}
	return procs
}

// String renders one Fig. 4/5-style breakdown table per mode: first all
// traffic, then the high-priority flow alone.
func (r StagesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-stage latency decomposition (Fig. 4/5) — wait is time queued before a stage, service is handler CPU\n")
	for _, row := range r.Rows {
		title := fmt.Sprintf("\n[%s]  delivered=%d dropped=%d  e2e: %s",
			row.Mode, row.Delivered, row.Dropped, row.E2E)
		b.WriteString(obs.FormatBreakdown(title, row.Breakdown))
		title = fmt.Sprintf("[%s] high-priority flow only  e2e: %s", row.Mode, row.HighE2E)
		b.WriteString(obs.FormatBreakdown(title, row.HighBreakdown))
	}
	return b.String()
}
