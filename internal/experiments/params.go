// Package experiments contains one harness per figure of the paper's
// evaluation (§V). Each harness builds the full testbed — simulated server,
// traffic generators, measured flows — runs it for a configured duration,
// and returns the same rows/series the paper reports. EXPERIMENTS.md
// records paper-vs-measured for every figure.
package experiments

import (
	"prism/internal/cpu"
	"prism/internal/fault"
	"prism/internal/live"
	"prism/internal/nic"
	"prism/internal/obs"
	"prism/internal/overlay"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/testbed"
	"prism/internal/traffic"
)

// Well-known ports used across experiments, mirroring the real tools.
const (
	PortHighPrio  = 11111 // sockperf latency flow
	PortBackgrnd  = 5001  // sockperf throughput flow
	PortTCPStream = 5201  // sockperf TCP throughput flow
	PortMemcached = 11211
	PortHTTP      = 80
)

// Params are the shared knobs of the experiment harnesses.
type Params struct {
	// Seed drives every random choice; same seed, same results.
	Seed uint64
	// Warmup is discarded; Duration is the measured interval.
	Warmup   sim.Time
	Duration sim.Time

	// HighRate is the high-priority latency flow's packet rate (paper: a
	// constant 1000 pps).
	HighRate float64
	// BGRate is the low-priority background rate (paper: ~300 kpps,
	// consuming 60–70% of the processing core).
	BGRate float64
	// LoadRate drives Fig. 8's latency measurement. The paper offers
	// 300 kpps — which equals PRISM-sync's single-core capacity; at
	// exactly capacity a discrete-event model pins the overload artifact,
	// so the default measures at 90% of sync capacity (270 kpps), which
	// keeps the paper's regime. See EXPERIMENTS.md.
	LoadRate float64

	// BGBurst is how many background frames arrive back-to-back per
	// emission. The paper's busy latency distribution is tight (p99 close
	// to the median, both ~5x idle), consistent with steady sender-side
	// burst trains; see EXPERIMENTS.md for the calibration.
	BGBurst int

	// EchoCost is the sockperf server's per-request CPU; SinkCost the
	// background receiver's per-message CPU.
	EchoCost sim.Time
	SinkCost sim.Time

	// DriverPrio enables the §VII-1 extension: NIC-level priority rings
	// (hardware flow steering), removing the stage-1 limitation. Off by
	// default — the paper's prototype does not have it.
	DriverPrio bool

	// Live optionally attaches the HTTP operator surface (prismsim
	// -listen): experiments that support it publish checkpoint metric
	// snapshots, trace deltas, frame taps and run status into the server
	// while they execute. Nil leaves every hook uninstalled. Attaching a
	// server never changes simulation results — the live-surface
	// determinism tests re-derive the committed golden digests with a
	// server attached at every worker count.
	Live *live.Server

	// Workers is the parallelism of multi-point experiment drivers
	// (Fig. 9's mode set, Fig. 11's load grid, the RSS scaling queue
	// counts): up to Workers parameter points run concurrently, each on
	// its own engine (internal/par.ForEach). Results are bit-identical
	// for every value — the determinism tests assert it. <= 1 is the
	// sequential baseline.
	Workers int
}

// Default returns the calibrated defaults.
func Default() Params {
	return Params{
		Seed:     42,
		Warmup:   100 * sim.Millisecond,
		Duration: sim.Second,
		HighRate: 1000,
		BGRate:   300_000,
		BGBurst:  96,
		LoadRate: 270_000,
		EchoCost: 500 * sim.Nanosecond,
		SinkCost: 600 * sim.Nanosecond,
		Workers:  1,
	}
}

// quick shrinks runtimes for unit tests.
func (p Params) quick() Params {
	p.Warmup = 20 * sim.Millisecond
	p.Duration = 150 * sim.Millisecond
	return p
}

// RigOption tweaks the declarative testbed Spec a rig is built from.
type RigOption func(*testbed.Spec)

// WithObs instruments the host's whole receive path with an
// observability pipeline.
func WithObs(pipe *obs.Pipeline) RigOption {
	return func(s *testbed.Spec) { s.Pipe = pipe }
}

// WithBatchSize overrides the NAPI batch weight (Linux default 64) — the
// ablation knob of the batching tradeoff sweep.
func WithBatchSize(n int) RigOption {
	return func(s *testbed.Spec) { s.BatchSize = n }
}

// WithQueues sets the NIC RX queue count (RSS with per-core IRQ
// affinity); the default is the paper's single-core configuration.
func WithQueues(n int) RigOption {
	return func(s *testbed.Spec) { s.RxQueues = n }
}

// WithPolicy overrides the softirq poll policy by registry name
// ("vanilla", "prism", "headonly", "dualq", …) independently of the mode.
func WithPolicy(name string) RigOption {
	return func(s *testbed.Spec) { s.Policy = name }
}

// WithFault threads a deterministic fault-injection plane through the
// host (Monolithic rigs only; see testbed.Spec.Fault).
func WithFault(cfg *fault.Config) RigOption {
	return func(s *testbed.Spec) { s.Fault = cfg }
}

// WithShed enables the priority-aware overload drop policy: under
// pressure the NIC ring and the stage queues evict low-priority packets
// to admit high-priority ones instead of rejecting them.
func WithShed() RigOption {
	return func(s *testbed.Spec) { s.Shed = true }
}

// BaseSpec is the standard experiment testbed for a mode: the paper's
// server machine with C1-pinned cores and a ConnectX-5-like NIC (adaptive
// interrupt moderation, GRO on). It is the compilation target the
// declarative scenario layer (internal/scenario) shares with the Go
// harnesses, so a scenario file and the figure code build byte-identical
// testbeds.
func BaseSpec(p Params, mode prio.Mode) testbed.Spec {
	return testbed.Spec{
		Seed:       p.Seed,
		Mode:       mode,
		CStates:    cpu.C1,
		AppCStates: cpu.C1,
		NIC: nic.Config{
			RxUsecs:       8 * sim.Microsecond,
			RxFrames:      32,
			AdaptiveIdle:  100 * sim.Microsecond,
			GRO:           true,
			PriorityRings: p.DriverPrio,
		},
	}
}

// NewTestbed declaratively builds any experiment topology — Monolithic,
// WireSplit or RSSSplit — from the shared Params.
func NewTestbed(p Params, mode prio.Mode, split testbed.Split, opts ...RigOption) *testbed.Testbed {
	spec := BaseSpec(p, mode)
	spec.Split = split
	for _, opt := range opts {
		opt(&spec)
	}
	return testbed.New(spec)
}

// Rig is one fully wired single-engine testbed instance.
type Rig struct {
	Eng    *sim.Engine
	Host   *overlay.Host
	Client *traffic.Client

	tb *testbed.Testbed
}

// NewRig builds the standard monolithic testbed for a mode; options opt
// into observability, RX queues, poll-policy and batch-weight overrides.
func NewRig(p Params, mode prio.Mode, opts ...RigOption) *Rig {
	tb := NewTestbed(p, mode, testbed.Monolithic, opts...)
	return &Rig{Eng: tb.Eng, Host: tb.Host(), Client: tb.Client, tb: tb}
}

// Run executes warmup + duration and resets the utilization window at the
// end of warmup so Utilization reflects only the measured interval.
func (r *Rig) Run(p Params) error {
	return r.tb.Run(p.Warmup, p.Duration, 1)
}

// Utilization returns the processing core's busy fraction over the
// measured interval.
func (r *Rig) Utilization() float64 {
	return r.Host.ProcCore.Utilization(r.Eng.Now())
}

// Drain runs the rig's engine to idle after the horizon, letting the
// fault plane's watchdog rescue devices stranded by lost IRQs. Stop the
// traffic generators first.
func (r *Rig) Drain() error { return r.tb.Drain() }

// CheckInvariants verifies packet conservation and pool balance; after a
// Drain the strict zero-leak form applies.
func (r *Rig) CheckInvariants() error { return r.tb.CheckInvariants() }

// FaultStats returns the fault plane's counters (zero when the rig was
// built without WithFault).
func (r *Rig) FaultStats() fault.Counters {
	var c fault.Counters
	for _, p := range r.tb.Planes {
		c = p.Stats()
	}
	return c
}

// Modes lists the three compared configurations in presentation order.
var Modes = []prio.Mode{prio.ModeVanilla, prio.ModeBatch, prio.ModeSync}
