package experiments

import (
	"fmt"
	"strings"

	"prism/internal/overlay"
	"prism/internal/par"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/stats"
	"prism/internal/traffic"
)

// ScalingPoint is one RX-queue-count measurement.
type ScalingPoint struct {
	Queues int
	// AggKpps is the aggregate delivered rate under overload (8 flows).
	AggKpps float64
	// HighBusyMean is the high-priority flow's mean latency when its flow
	// happens to share an RX queue with the background flow — the case
	// where RSS does not isolate and PRISM still matters.
	HighBusyMean sim.Time
	// HighBusyMeanPrism is the same with the PRISM-sync engine per queue.
	HighBusyMeanPrism sim.Time
}

// ScalingResult evaluates multi-queue receive (RSS with per-core IRQ
// affinity). The paper's §III-A motivates the vanilla two-list design by
// multi-CPU scalability and observes that a single multi-stage flow
// saturates one CPU regardless — RSS cannot split a flow, so priority
// differentiation remains necessary whenever a latency-sensitive flow
// hashes onto the same queue as a heavy one.
type ScalingResult struct {
	Points []ScalingPoint
}

// Scaling runs the evaluation over the queue counts (default 1, 2, 4).
// Each queue count needs three independent measurements (aggregate
// throughput, colliding-flow latency under vanilla and under PRISM-sync);
// all 3×len(queues) points run as one sweep over p.Workers, each writing
// a distinct field of its point — deterministic for any worker count.
func Scaling(p Params, queues []int) ScalingResult {
	if len(queues) == 0 {
		queues = []int{1, 2, 4}
	}
	res := ScalingResult{Points: make([]ScalingPoint, len(queues))}
	par.ForEach(3*len(queues), p.Workers, func(j int) {
		qi, kind := j/3, j%3
		q := queues[qi]
		switch kind {
		case 0:
			res.Points[qi].Queues = q
			res.Points[qi].AggKpps = scalingThroughput(p, q)
		case 1:
			res.Points[qi].HighBusyMean = scalingCollision(p, q, prio.ModeVanilla)
		case 2:
			res.Points[qi].HighBusyMeanPrism = scalingCollision(p, q, prio.ModeSync)
		}
	})
	return res
}

func scalingRig(p Params, mode prio.Mode, queues int) *Rig {
	return NewRig(p, mode, WithQueues(queues))
}

// scalingThroughput overloads the server with 8 distinct flows and
// reports the aggregate delivered rate.
func scalingThroughput(p Params, queues int) float64 {
	r := scalingRig(p, prio.ModeVanilla, queues)
	ctr := r.Host.AddContainer("srv")
	counter := stats.NewRateCounter("agg")
	for f := 0; f < 8; f++ {
		fl := traffic.NewUDPFlood(r.Eng, r.Host, ctr, clientSrc(10+f), uint16(5001+f), 150_000)
		fl.Poisson = false
		fl.Delivered = counter
		mustNoErr(fl.InstallSink(p.SinkCost))
		fl.Start(0)
	}
	r.Eng.At(p.Warmup, func() { counter.Start(p.Warmup) })
	mustNoErr(r.Run(p))
	return counter.Kpps(r.Eng.Now())
}

// scalingCollision measures the high-priority flow when it shares an RX
// queue with the background flow (forced by probing source ports).
func scalingCollision(p Params, queues int, mode prio.Mode) sim.Time {
	r := scalingRig(p, mode, queues)
	hi := r.Host.AddContainer("hi-srv")
	bg := r.Host.AddContainer("bg-srv")
	r.Host.DB.Add(prio.Rule{IP: hi.IP, Port: PortHighPrio})

	bgSrc := clientSrc(1)
	// Find a client endpoint whose flow to hi lands on the same RX queue
	// as the background flow to bg.
	bgQ := r.Host.QueueFor(overlay.EncapToServer(bgSrc, bg, PortBackgrnd, make([]byte, 64)))
	hiSrc := bgSrc
	for idx := 0; idx < 64; idx++ {
		cand := overlay.ClientContainer(30, uint16(42000+idx))
		if r.Host.QueueFor(overlay.EncapToServer(cand, hi, PortHighPrio, make([]byte, 64))) == bgQ {
			hiSrc = cand
			break
		}
	}

	pp := traffic.NewPingPong(r.Eng, r.Host, hi, hiSrc, PortHighPrio, p.HighRate)
	pp.Warmup = p.Warmup
	mustNoErr(pp.InstallEcho(p.EchoCost))
	pp.Start(r.Client, 0)

	fl := traffic.NewUDPFlood(r.Eng, r.Host, bg, bgSrc, PortBackgrnd, p.BGRate)
	fl.Burst = p.BGBurst
	fl.Poisson = false
	mustNoErr(fl.InstallSink(p.SinkCost))
	fl.Start(0)

	mustNoErr(r.Run(p))
	return pp.Hist.Mean()
}

// String renders the table.
func (r ScalingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling — RSS multi-queue receive (8-flow overload; colliding high-prio flow)\n")
	fmt.Fprintf(&b, "%-8s %12s %22s %22s\n", "queues", "agg(kpps)", "collide-van-mean(µs)", "collide-sync-mean(µs)")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-8d %12.0f %22.1f %22.1f\n",
			pt.Queues, pt.AggKpps, pt.HighBusyMean.Micros(), pt.HighBusyMeanPrism.Micros())
	}
	b.WriteString("RSS scales aggregate throughput but cannot split a flow: when the\n")
	b.WriteString("latency-sensitive flow hashes onto the busy queue, PRISM is still needed.\n")
	return b.String()
}
