package experiments

import (
	"fmt"
	"strings"

	"prism/internal/apps/memcached"
	"prism/internal/prio"
	"prism/internal/stats"
	"prism/internal/traffic"
)

// Fig12Row is one (mode, busy?) memcached measurement.
type Fig12Row struct {
	Mode prio.Mode
	Busy bool
	// KOps is completed operations per second (closed loop).
	KOps float64
	// Latency is the full round-trip distribution memaslap reports.
	Latency  stats.Summary
	Timeouts uint64
}

// Fig12Result reproduces Fig. 12. Paper: on a busy server, vanilla loses
// ~80% throughput and average latency grows >5x; PRISM(-sync) roughly
// doubles vanilla's busy throughput and cuts min/avg/tail latency by
// ~66%/47%/27%.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 runs memcached/memaslap idle and busy for vanilla and PRISM-sync
// (the two configurations the paper compares).
func Fig12(p Params) Fig12Result {
	var res Fig12Result
	for _, mode := range []prio.Mode{prio.ModeVanilla, prio.ModeSync} {
		for _, busy := range []bool{false, true} {
			res.Rows = append(res.Rows, fig12Run(p, mode, busy))
		}
	}
	return res
}

func fig12Run(p Params, mode prio.Mode, busy bool) Fig12Row {
	r := NewRig(p, mode)
	ctr := r.Host.AddContainer("memcached")
	r.Host.DB.Add(prio.Rule{IP: ctr.IP, Port: memcached.Port})

	if _, err := memcached.InstallServer(ctr, memcached.DefaultServerConfig()); err != nil {
		panic(err)
	}
	cfg := memcached.DefaultMemaslapConfig()
	cfg.Warmup = p.Warmup
	ms := memcached.NewMemaslap(r.Eng, r.Host, ctr, clientSrc(0), cfg)
	ms.Start(r.Client, 0)

	if busy {
		bg := r.Host.AddContainer("bg-srv")
		fl := traffic.NewUDPFlood(r.Eng, r.Host, bg, clientSrc(1), PortBackgrnd, p.BGRate)
		mustNoErr(fl.InstallSink(p.SinkCost))
		fl.Start(0)
	}
	mustNoErr(r.Run(p))
	return Fig12Row{
		Mode:     mode,
		Busy:     busy,
		KOps:     ms.ThroughputOps() / 1e3,
		Latency:  ms.Hist.Summarize(),
		Timeouts: ms.Timeouts,
	}
}

// Find returns the row for (mode, busy).
func (r Fig12Result) Find(mode prio.Mode, busy bool) (Fig12Row, bool) {
	for _, row := range r.Rows {
		if row.Mode == mode && row.Busy == busy {
			return row, true
		}
	}
	return Fig12Row{}, false
}

// String renders the table.
func (r Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 — memcached (memaslap closed loop) with/without background\n")
	fmt.Fprintf(&b, "%-12s %-5s %10s %10s %10s %10s %9s\n",
		"mode", "load", "kops/s", "min(µs)", "avg(µs)", "p99(µs)", "timeouts")
	for _, row := range r.Rows {
		load := "idle"
		if row.Busy {
			load = "busy"
		}
		fmt.Fprintf(&b, "%-12s %-5s %10.1f %10.1f %10.1f %10.1f %9d\n",
			row.Mode, load, row.KOps, row.Latency.Min.Micros(),
			row.Latency.Mean.Micros(), row.Latency.P99.Micros(), row.Timeouts)
	}
	return b.String()
}
