package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"prism/internal/cluster"
	"prism/internal/obs"
	"prism/internal/prio"
	rec "prism/internal/recover"
	"prism/internal/sim"
	"prism/internal/stats"
)

// FailoverConfig sizes the kill-and-recover experiment: one host is
// fail-stopped mid-run and the recovery controller must detect it,
// migrate its containers and swap the routing epoch, under each
// placement policy in turn.
type FailoverConfig struct {
	Hosts      int
	Containers int
	Placements []cluster.Placement

	// CrashHost is the victim; CrashAfter the crash offset into the
	// measured window; Downtime how long the host stays dark before its
	// (cordoned, never failed-back) restart.
	CrashHost  int
	CrashAfter sim.Time
	Downtime   sim.Time
	// RecoverWindow bounds the "during" measurement phase: latency
	// samples land in before/during/after buckets split at the crash
	// time and crash+RecoverWindow. Fixed boundaries keep the phase
	// histograms a pure function of the timeline, so they golden.
	RecoverWindow sim.Time
}

// DefaultFailoverConfig is the fixture point: 8 hosts, 200 containers,
// host 0 killed 10ms into the measured window. Host 0 is the victim
// because every placement policy populates it — pack stacks the whole
// workload there, so its crash is also the worst case.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{
		Hosts:         8,
		Containers:    200,
		Placements:    cluster.Placements,
		CrashHost:     0,
		CrashAfter:    10 * sim.Millisecond,
		Downtime:      8 * sim.Millisecond,
		RecoverWindow: 10 * sim.Millisecond,
	}
}

func (fc FailoverConfig) withDefaults() FailoverConfig {
	def := DefaultFailoverConfig()
	if fc.Hosts <= 0 {
		fc.Hosts = def.Hosts
	}
	if fc.Containers <= 0 {
		fc.Containers = def.Containers
	}
	if len(fc.Placements) == 0 {
		fc.Placements = def.Placements
	}
	if fc.CrashHost < 0 || fc.CrashHost >= fc.Hosts {
		fc.CrashHost = def.CrashHost
	}
	if fc.CrashAfter <= 0 {
		fc.CrashAfter = def.CrashAfter
	}
	if fc.Downtime <= 0 {
		fc.Downtime = def.Downtime
	}
	if fc.RecoverWindow <= 0 {
		fc.RecoverWindow = def.RecoverWindow
	}
	return fc
}

// FailoverRow is one placement policy's recovery timeline: the echo
// latency split into the three phases plus the controller's counters.
type FailoverRow struct {
	Placement string

	// Hi/Lo phase summaries: Before ends at the crash, During covers
	// [crash, crash+RecoverWindow), After is the recovered steady state.
	HiBefore, HiDuring, HiAfter stats.Summary
	LoBefore, LoDuring, LoAfter stats.Summary

	// Detections / DetectLat: suspected-host count and the first
	// detection's virtual-time latency (suspect - crash).
	Detections int
	DetectLat  sim.Time
	// Migrated counts re-placed containers; SnapVersion the routing
	// epoch live at the end (2 = exactly one swap).
	Migrated    int
	SnapVersion int

	// CrashRx / CrashTx count frames absorbed at the dead host's wire;
	// EpochDrops frames that arrived under a stale routing epoch;
	// AdmitRetries admission retries scheduled while degraded.
	CrashRx, CrashTx uint64
	EpochDrops       uint64
	AdmitRetries     uint64

	Windows uint64

	MetricsSHA string
	SpansSHA   string
}

// FailoverResult is the failover experiment across placement policies.
type FailoverResult struct {
	Seed       uint64
	Hosts      int
	Containers int
	Racks      int
	CrashHost  int
	// CrashAt / RecoverBound are the absolute phase boundaries.
	CrashAt      sim.Time
	RecoverBound sim.Time
	Rows         []FailoverRow
}

// Failover runs the kill-and-recover grid: the same workload under each
// placement policy, with one scripted host crash mid-run. Bit-identical
// for any worker count.
func Failover(p Params, fc FailoverConfig) FailoverResult {
	fc = fc.withDefaults()
	res := FailoverResult{
		Seed: p.Seed, Hosts: fc.Hosts, Containers: fc.Containers,
		CrashHost:    fc.CrashHost,
		CrashAt:      p.Warmup + fc.CrashAfter,
		RecoverBound: p.Warmup + fc.CrashAfter + fc.RecoverWindow,
	}
	for _, pol := range fc.Placements {
		row, racks := failoverPoint(p, fc, pol)
		res.Racks = racks
		res.Rows = append(res.Rows, row)
	}
	return res
}

// phaseIndex buckets a sample time against the two phase boundaries.
func phaseIndex(at, crash, recovered sim.Time) int {
	switch {
	case at < crash:
		return 0
	case at < recovered:
		return 1
	default:
		return 2
	}
}

func failoverPoint(p Params, fc FailoverConfig, pol cluster.Placement) (FailoverRow, int) {
	crashAt := p.Warmup + fc.CrashAfter
	recovered := crashAt + fc.RecoverWindow
	cfg := cluster.Config{
		Hosts:     fc.Hosts,
		Placement: pol,
		Seed:      p.Seed,
		Host:      BaseSpec(p, prio.ModeSync),
		Specs:     clusterSpecs(p, fc.Hosts, fc.Containers),
		Admission: &cluster.Admission{Rate: 55_000, Burst: 96, HiReserve: 0.25},
		Fabric:    cluster.FabricConfig{Racks: 2},
		Warmup:    p.Warmup,
		EchoCost:  p.EchoCost,
		SinkCost:  p.SinkCost,
		Recovery: &cluster.RecoveryConfig{
			Script: rec.Script{{
				Kind: rec.HostCrash, Host: fc.CrashHost,
				At: crashAt, Until: crashAt + fc.Downtime,
			}},
			RetryMax:         3,
			DegradeAdmission: true,
		},
	}
	c, err := cluster.New(cfg)
	mustNoErr(err)

	// Attach the live operator surface, when one is listening — same
	// pure-observation hooks as the cluster grid, so an operator can
	// watch the crash and recovery (fabric load shifting, /capture of
	// the migrated flows) without perturbing the digests.
	if lv := p.Live; lv != nil {
		lv.SetRun("failover/"+pol.String(), cfg.Warmup+p.Duration)
		lv.SetClassifier(c.ClassifyFrame)
		c.SetTap(lv.Tap)
		streamer := obs.NewStreamer(lv, c.Pipes()...)
		c.SetCheckpoint(lv.Interval, func(at sim.Time) {
			lv.PublishFabric(c.FabricPortUtil(at))
			streamer.Checkpoint(at)
		})
	}

	// Per-flow three-phase histograms, fed from the echo sample hook.
	// The hook runs in event context on the flow's ingress shard, so the
	// ingress engine's clock is the sample time and every write is
	// shard-local — no synchronization needed, merged only after Run.
	type phased struct {
		hi bool
		h  [3]*stats.Histogram
	}
	var phasedFlows []*phased
	for _, f := range c.Flows {
		if f.PP == nil {
			continue
		}
		ph := &phased{hi: f.Spec.Hi}
		for i := range ph.h {
			ph.h[i] = stats.NewHistogram()
		}
		eng := c.Nodes[f.Ingress].Shard.Eng
		pp := f.PP
		pp.OnSample = func(seq uint64, lat sim.Time) {
			ph.h[phaseIndex(eng.Now(), crashAt, recovered)].Record(lat)
		}
		phasedFlows = append(phasedFlows, ph)
	}

	mustNoErr(c.Run(p.Duration, p.Workers))

	row := FailoverRow{Placement: pol.String(), Windows: c.Group.Windows}
	var hi, lo [3][]*stats.Histogram
	for _, ph := range phasedFlows {
		for i := range ph.h {
			if ph.hi {
				hi[i] = append(hi[i], ph.h[i])
			} else {
				lo[i] = append(lo[i], ph.h[i])
			}
		}
	}
	row.HiBefore = stats.MergeHistograms(hi[0]...).Summarize()
	row.HiDuring = stats.MergeHistograms(hi[1]...).Summarize()
	row.HiAfter = stats.MergeHistograms(hi[2]...).Summarize()
	row.LoBefore = stats.MergeHistograms(lo[0]...).Summarize()
	row.LoDuring = stats.MergeHistograms(lo[1]...).Summarize()
	row.LoAfter = stats.MergeHistograms(lo[2]...).Summarize()

	dets := c.Detections()
	row.Detections = len(dets)
	if len(dets) > 0 {
		row.DetectLat = dets[0].SuspectAt - dets[0].DownAt
	}
	row.Migrated = len(c.Migrations())
	row.SnapVersion = c.Snapshot().Version
	row.CrashRx, row.CrashTx = c.CrashDrops()
	row.EpochDrops = c.EpochDrops()
	row.AdmitRetries = c.RecoveryRetries()

	pipes := c.Pipes()
	regs := make([]*obs.Registry, len(pipes))
	streams := make([][]obs.Event, len(pipes))
	for i, pipe := range pipes {
		regs[i] = pipe.M
		streams[i] = pipe.T.Events()
	}
	row.MetricsSHA = digest([]byte(obs.PrometheusText(obs.MergeRegistries(regs...))))
	spans, err := json.Marshal(obs.MergeEvents(streams...))
	mustNoErr(err)
	row.SpansSHA = digest(spans)

	// Stop observing before Settle extends the clocks past the measured
	// horizon, as the cluster grid does.
	if p.Live != nil {
		c.SetCheckpoint(0, nil)
		c.SetTap(nil)
	}

	// Settle drains in-flight frames (the migrated flows keep serving),
	// then the strict cluster check must close every ledger — including
	// the crash, epoch-drop and per-migration conservation terms.
	mustNoErr(c.Settle(0, p.Workers))
	mustNoErr(c.CheckInvariants(true))
	return row, c.Cfg.Fabric.Racks
}

// String renders the recovery timeline per placement.
func (r FailoverResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failover — %d hosts / %d racks / %d containers; host%02d killed at %.1fms (seed %d)\n",
		r.Hosts, r.Racks, r.Containers, r.CrashHost, float64(r.CrashAt)/1e6, r.Seed)
	fmt.Fprintf(&b, "%-9s %11s %11s %11s %11s %8s %8s %5s %7s %9s %9s %7s\n",
		"placement", "hi-pre p99", "hi-mid p99", "hi-post p99", "lo-post p99",
		"detect", "migrated", "epoch", "crash-rx", "epoch-drop", "retries", "windows")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s %10.1fµ %10.1fµ %10.1fµ %10.1fµ %7.2fm %8d %5d %7d %9d %9d %7d\n",
			row.Placement,
			row.HiBefore.P99.Micros(), row.HiDuring.P99.Micros(), row.HiAfter.P99.Micros(),
			row.LoAfter.P99.Micros(),
			float64(row.DetectLat)/1e6,
			row.Migrated, row.SnapVersion, row.CrashRx, row.EpochDrops,
			row.AdmitRetries, row.Windows)
	}
	return b.String()
}
