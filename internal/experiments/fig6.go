package experiments

import (
	"fmt"

	"prism/internal/napi"
	"prism/internal/prio"
	"prism/internal/trace"
)

// Fig6Result reproduces Fig. 6: the NAPI device processing order for a
// saturated three-stage overlay pipeline, vanilla vs PRISM. The paper's
// tables show vanilla interleaving batches (eth, br, eth, veth, br, eth)
// while PRISM streams them (eth, br, veth, eth, br, veth).
type Fig6Result struct {
	Vanilla []napi.PollObservation
	Prism   []napi.PollObservation

	// VanillaInterleaved asserts the paper's vanilla pathology; reports
	// whether the first veth poll happened only after a second eth poll.
	VanillaInterleaved bool
	// PrismStreamlined asserts PRISM's strict eth→br→veth cycling.
	PrismStreamlined bool
}

// Fig6 runs both engines against a saturated high-priority flood and
// captures the first iterations of the poll loop.
func Fig6(p Params) Fig6Result {
	const iterations = 9
	capture := func(mode prio.Mode) []napi.PollObservation {
		r := NewRig(p, mode)
		ctr := r.Host.AddContainer("srv")
		r.Host.DB.Add(prio.Rule{IP: ctr.IP, Port: PortHighPrio})
		sink := newCountingSink()
		if _, err := ctr.Bind(17, PortHighPrio, sink, 0); err != nil {
			panic(err)
		}
		rec := &trace.Recorder{Limit: iterations}
		r.Host.Rx.SetOnPoll(rec.Hook)
		// Pre-fill the ring with five batches so the eth queue stays
		// saturated across the captured window, as in the paper's trace.
		r.Eng.At(0, func() {
			for i := 0; i < 5*r.Host.Costs.BatchSize; i++ {
				r.Host.InjectFromWire(0, overlayProbeFrame(ctr, i))
			}
		})
		mustNoErr(r.Eng.Run(p.Warmup))
		return rec.Observations
	}

	res := Fig6Result{
		Vanilla: capture(prio.ModeVanilla),
		Prism:   capture(prio.ModeBatch),
	}
	res.VanillaInterleaved = trace.Interleaved(order(res.Vanilla), "eth0", "veth0")
	res.PrismStreamlined = trace.Streamlined(order(res.Prism), []string{"eth0", "br0", "veth0"})
	return res
}

func order(obs []napi.PollObservation) []string {
	out := make([]string, len(obs))
	for i, o := range obs {
		out[i] = o.Device
	}
	return out
}

// String renders the two tables side by side conceptually (sequentially).
func (r Fig6Result) String() string {
	va := &trace.Recorder{Observations: r.Vanilla}
	pr := &trace.Recorder{Observations: r.Prism}
	return fmt.Sprintf("Fig. 6 — NAPI device processing order\n%s\n%s\ninterleaved(vanilla)=%v streamlined(prism)=%v\n",
		va.Table("(a) Vanilla"), pr.Table("(b) PRISM"),
		r.VanillaInterleaved, r.PrismStreamlined)
}
