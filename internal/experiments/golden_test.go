package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"prism/internal/prio"
	"prism/internal/stats"
)

// The golden equivalence fixtures pin the datapath's observable behavior
// bit-for-bit: they were captured on the pre-softirq-refactor engines
// (internal/napi + internal/core as two forked loops) and every later
// datapath change must reproduce them exactly. Regenerate only when a
// behavior change is intended:
//
//	go test ./internal/experiments -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden datapath fixtures")

const goldenPath = "testdata/datapath_golden.json"

// goldenSplit is one wire-split run's full observable state, with the two
// large streams (metrics exposition, span stream) compressed to digests.
// The same fixture must be reproduced by every worker count.
type goldenSplit struct {
	Samples    []sample
	CDF        []stats.CDFPoint
	Sent       uint64
	Received   uint64
	Windows    uint64
	SpanCount  int
	MetricsSHA string
	SpansSHA   string
}

// goldenFile is the committed equivalence fixture: the paper-figure
// results the ISSUE names (Fig. 3/8/9/11) at determinism-test scale, plus
// the split-rig per-flow delivered sequence and observability digests.
type goldenFile struct {
	Fig3  Fig3Result
	Fig8  Fig8Result
	Fig9  Fig9Result
	Fig11 Fig11Result
	Split goldenSplit
}

// goldenFig11Loads keeps the sweep small enough for a committed fixture
// while still covering idle, mid, and saturating load.
var goldenFig11Loads = []float64{0, 100_000, 300_000}

func sha(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// captureSplit reruns the deterministic split workload and reduces it to
// the golden shape.
func captureSplit(t *testing.T, workers int) goldenSplit {
	t.Helper()
	o := runSplit(t, workers)
	return goldenSplit{
		Samples:    o.Samples,
		CDF:        o.CDF,
		Sent:       o.Sent,
		Received:   o.Received,
		Windows:    o.Windows,
		SpanCount:  len(o.Spans),
		MetricsSHA: sha([]byte(o.Metrics)),
		SpansSHA:   sha(mustJSON(t, o.Spans)),
	}
}

func captureGolden(t *testing.T) goldenFile {
	t.Helper()
	p := detParams()
	return goldenFile{
		Fig3:  Fig3(p),
		Fig8:  Fig8(p),
		Fig9:  Fig9(p),
		Fig11: Fig11(p, goldenFig11Loads),
		Split: captureSplit(t, 1),
	}
}

// TestGoldenDatapathEquivalence asserts the current datapath reproduces
// the committed pre-refactor fixtures bit-identically — figure results as
// full JSON, split-rig flows sample-by-sample, and the metrics/span
// streams by digest — and that the split fixture holds for 1/2/4 workers.
func TestGoldenDatapathEquivalence(t *testing.T) {
	got := captureGolden(t)

	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("golden fixtures rewritten: %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	// Compare in JSON space so the on-disk fixture is the single source of
	// truth (avoids surprises from unexported state or float re-encoding).
	check := func(name string, wantPart, gotPart any) {
		w, g := mustJSON(t, wantPart), mustJSON(t, gotPart)
		if string(w) != string(g) {
			t.Errorf("%s diverged from golden fixture\nwant: %s\ngot:  %s", name, w, g)
		}
	}
	check("Fig3", want.Fig3, got.Fig3)
	check("Fig8", want.Fig8, got.Fig8)
	check("Fig9", want.Fig9, got.Fig9)
	check("Fig11", want.Fig11, got.Fig11)
	check("Split", want.Split, got.Split)

	// The split fixture must also be reproduced by parallel execution.
	for _, w := range []int{2, 4} {
		check("Split/workers="+string(rune('0'+w)), want.Split, captureSplit(t, w))
	}
}

// TestGoldenCoversAllModes guards the fixture's reach: the figure results
// embedded in the golden file must exercise every priority mode, so a
// datapath regression in any of them trips the equivalence test.
func TestGoldenCoversAllModes(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skipf("golden fixtures not captured yet: %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	seen := map[prio.Mode]bool{}
	for _, row := range want.Fig9.Rows {
		seen[row.Mode] = true
	}
	for _, m := range Modes {
		if !seen[m] {
			t.Errorf("golden Fig9 fixture missing mode %v", m)
		}
	}
	if want.Split.Sent == 0 || len(want.Split.Samples) == 0 {
		t.Errorf("golden split fixture looks empty: %+v", want.Split)
	}
	if want.Split.SpanCount == 0 || want.Split.MetricsSHA == "" {
		t.Errorf("golden split fixture missing observability digests")
	}
}
