package experiments

import (
	"prism/internal/overlay"
	"prism/internal/sim"
	"prism/internal/socket"
)

// countingSink is a trivial app that counts messages at negligible cost;
// used where the experiment only cares about the kernel path.
type countingSink struct {
	count uint64
}

func newCountingSink() *countingSink { return &countingSink{} }

func (s *countingSink) ProcessingCost(socket.Message) sim.Time { return 200 }
func (s *countingSink) OnMessage(_ sim.Time, _ socket.Message) { s.count++ }

// overlayProbeFrame builds one client→container overlay frame with a
// 64-byte payload, for pre-filling rings in trace experiments.
func overlayProbeFrame(ctr *overlay.Container, i int) []byte {
	payload := make([]byte, 64)
	payload[0] = byte(i)
	return overlay.EncapToServer(clientSrc(0), ctr, PortHighPrio, payload)
}
