package experiments

import (
	"fmt"
	"strings"

	"prism/internal/prio"
	"prism/internal/stats"
)

// ExtDriverResult evaluates the paper's §VII-1 future work: implementing
// PRISM's priority differentiation in the NIC driver itself (modelled as
// hardware flow steering into a separate high-priority RX ring). The paper
// predicts two effects, both checked here:
//
//  1. The host network (single-stage pipeline) becomes improvable — the
//     Fig. 10 null result turns positive.
//  2. The overlay improves further, because the high-priority packet no
//     longer waits behind the FIFO ring backlog (the dominant residual
//     term in Fig. 9).
type ExtDriverResult struct {
	// OverlayStock / OverlayDriver: PRISM-sync overlay latency without and
	// with driver-level priority, against the vanilla baseline.
	OverlayVanilla stats.Summary
	OverlayStock   stats.Summary
	OverlayDriver  stats.Summary
	// HostVanilla / HostDriver: the host-network comparison.
	HostVanilla stats.Summary
	HostDriver  stats.Summary
}

// ExtDriver runs the evaluation.
func ExtDriver(p Params) ExtDriverResult {
	var res ExtDriverResult

	van, _, _ := latencyUnderLoad(p, prio.ModeVanilla, p.BGRate, true)
	res.OverlayVanilla = van.Summarize()
	stock, _, _ := latencyUnderLoad(p, prio.ModeSync, p.BGRate, true)
	res.OverlayStock = stock.Summarize()

	pd := p
	pd.DriverPrio = true
	driver, _, _ := latencyUnderLoad(pd, prio.ModeSync, p.BGRate, true)
	res.OverlayDriver = driver.Summarize()

	hostVan, _, _ := latencyUnderLoad(p, prio.ModeVanilla, p.BGRate, false)
	res.HostVanilla = hostVan.Summarize()
	hostDrv, _, _ := latencyUnderLoad(pd, prio.ModeSync, p.BGRate, false)
	res.HostDriver = hostDrv.Summarize()
	return res
}

func cut(base, v stats.Summary, get func(stats.Summary) float64) float64 {
	b := get(base)
	if b == 0 {
		return 0
	}
	return 1 - get(v)/b
}

// String renders the comparison.
func (r ExtDriverResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension §VII-1 — priority differentiation in the NIC driver\n")
	fmt.Fprintf(&b, "overlay, PRISM-sync vs vanilla busy baseline (mean %.1fµs, p99 %.1fµs):\n",
		r.OverlayVanilla.Mean.Micros(), r.OverlayVanilla.P99.Micros())
	fmt.Fprintf(&b, "  stock (software only):  mean %.1fµs (cut %.0f%%)  p99 %.1fµs (cut %.0f%%)\n",
		r.OverlayStock.Mean.Micros(), 100*cut(r.OverlayVanilla, r.OverlayStock, MeanOf),
		r.OverlayStock.P99.Micros(), 100*cut(r.OverlayVanilla, r.OverlayStock, P99Of))
	fmt.Fprintf(&b, "  + driver prio rings:    mean %.1fµs (cut %.0f%%)  p99 %.1fµs (cut %.0f%%)\n",
		r.OverlayDriver.Mean.Micros(), 100*cut(r.OverlayVanilla, r.OverlayDriver, MeanOf),
		r.OverlayDriver.P99.Micros(), 100*cut(r.OverlayVanilla, r.OverlayDriver, P99Of))
	fmt.Fprintf(&b, "host network (Fig. 10 was a null result):\n")
	fmt.Fprintf(&b, "  vanilla busy:           mean %.1fµs  p99 %.1fµs\n",
		r.HostVanilla.Mean.Micros(), r.HostVanilla.P99.Micros())
	fmt.Fprintf(&b, "  + driver prio rings:    mean %.1fµs (cut %.0f%%)  p99 %.1fµs (cut %.0f%%)\n",
		r.HostDriver.Mean.Micros(), 100*cut(r.HostVanilla, r.HostDriver, MeanOf),
		r.HostDriver.P99.Micros(), 100*cut(r.HostVanilla, r.HostDriver, P99Of))
	return b.String()
}
