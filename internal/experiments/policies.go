package experiments

import (
	"fmt"
	"strings"

	"prism/internal/par"
	"prism/internal/prio"
	"prism/internal/stats"
)

// PolicyVariant names one softirq poll-policy configuration: a registry
// policy plus the DB mode it runs under (the mode matters only to
// policies that consult it — "prism" reads it for batch vs sync).
type PolicyVariant struct {
	Policy string
	Mode   prio.Mode
}

// Label renders the variant the way the paper names it.
func (v PolicyVariant) Label() string {
	if v.Policy == "prism" {
		return v.Mode.String()
	}
	return v.Policy
}

// PolicyVariants is the default ablation ladder: the two baselines of the
// paper (vanilla, PRISM-batch, PRISM-sync) plus each PRISM mechanism in
// isolation — head insertion only and dual queues only — which the forked
// engines could not express.
var PolicyVariants = []PolicyVariant{
	{Policy: "vanilla", Mode: prio.ModeVanilla},
	{Policy: "dualq", Mode: prio.ModeBatch},
	{Policy: "headonly", Mode: prio.ModeBatch},
	{Policy: "prism", Mode: prio.ModeBatch},
	{Policy: "prism", Mode: prio.ModeSync},
}

// PolicyRow is one variant's measurement under the standard contended
// workload (1 kpps high-priority flow vs background flood on one core).
type PolicyRow struct {
	Variant PolicyVariant
	Busy    stats.Summary
	BusyCDF []stats.CDFPoint
	Util    float64
}

// PoliciesResult is the poll-policy ablation: how much of PRISM's win
// comes from poll-list reordering vs queue separation vs
// run-to-completion.
type PoliciesResult struct {
	Rows []PolicyRow
}

// Policies runs the ablation over the given variants (default
// PolicyVariants). Each variant is an independent measurement point, so
// they fan out over p.Workers with bit-identical results.
func Policies(p Params, variants []PolicyVariant) PoliciesResult {
	if len(variants) == 0 {
		variants = PolicyVariants
	}
	res := PoliciesResult{Rows: make([]PolicyRow, len(variants))}
	par.ForEach(len(variants), p.Workers, func(i int) {
		v := variants[i]
		hist, _, util := latencyUnderLoad(p, v.Mode, p.BGRate, true, WithPolicy(v.Policy))
		res.Rows[i] = PolicyRow{
			Variant: v,
			Busy:    hist.Summarize(),
			BusyCDF: hist.CDF(),
			Util:    util,
		}
	})
	return res
}

// PolicyByName builds the variant list for a single -policy flag value:
// the bare registry name, with "prism" expanded to both modes.
func PolicyByName(name string) []PolicyVariant {
	if name == "" || name == "all" {
		return nil
	}
	if name == "prism" {
		return []PolicyVariant{
			{Policy: "prism", Mode: prio.ModeBatch},
			{Policy: "prism", Mode: prio.ModeSync},
		}
	}
	mode := prio.ModeBatch
	if name == "vanilla" {
		mode = prio.ModeVanilla
	}
	return []PolicyVariant{{Policy: name, Mode: mode}}
}

// String renders the ablation table.
func (r PoliciesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Poll-policy ablation — high-priority latency under background load, per softirq policy\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s %8s\n", "policy", "mean(µs)", "p50(µs)", "p99(µs)", "max(µs)", "util")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %10.1f %10.1f %10.1f %10.1f %7.0f%%\n",
			row.Variant.Label(), row.Busy.Mean.Micros(), row.Busy.P50.Micros(),
			row.Busy.P99.Micros(), row.Busy.Max.Micros(), 100*row.Util)
	}
	return b.String()
}
