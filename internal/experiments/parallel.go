package experiments

import (
	"fmt"

	"prism/internal/cpu"
	"prism/internal/nic"
	"prism/internal/obs"
	"prism/internal/overlay"
	"prism/internal/par"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/stats"
	"prism/internal/traffic"
)

// This file holds the topology-level parallel integrations: the
// two-machine testbed split at the wire, and the RSS receive path split
// per RX queue. Both run on the conservative shard runtime (internal/par)
// and are deterministic for any worker count — the lookahead comes from
// physical delays the sequential model already charges (wire propagation
// for the link split, and again wire propagation for the fan-out to
// per-queue shards, since RSS steering is decided before the frame ever
// touches a CPU).

// splitNICConfig is the standard experiment NIC (same as NewRig).
func splitNICConfig(p Params) nic.Config {
	return nic.Config{
		RxUsecs:       8 * sim.Microsecond,
		RxFrames:      32,
		AdaptiveIdle:  100 * sim.Microsecond,
		GRO:           true,
		PriorityRings: p.DriverPrio,
	}
}

// clientSeed derives the client shard's RNG stream from the experiment
// seed; it only needs to be deterministic and distinct from the server's.
func clientSeed(seed uint64) uint64 { return seed ^ 0xc11e47 }

// SplitRig is the paper's two-machine testbed split at the wire: the
// client machine (traffic generators, reply demux, latency recording)
// runs on one shard, the fully simulated server on another, and the
// 100 GbE point-to-point link becomes a pair of cross-shard channels
// whose lookahead is the wire's propagation delay.
type SplitRig struct {
	Group       *par.Group
	ClientShard *par.Shard
	ServerShard *par.Shard
	Host        *overlay.Host
	Client      *traffic.Client
	// Pipe collects the server shard's spans and metrics; it is shard-local
	// (only the server shard's goroutine touches it), so instrumentation
	// stays deterministic for any worker count.
	Pipe *obs.Pipeline

	toServer *par.Link
	toClient *par.Link
}

// NewSplitRig builds the wire-split testbed for a mode, mirroring NewRig.
func NewSplitRig(p Params, mode prio.Mode) *SplitRig {
	g := par.NewGroup()
	cs := g.Add("client", sim.NewEngine(clientSeed(p.Seed)))
	ss := g.Add("server", sim.NewEngine(p.Seed))
	pipe := obs.NewPipeline("server")
	host := overlay.NewHost(ss.Eng, overlay.Config{
		Mode:       mode,
		CStates:    cpu.C1,
		AppCStates: cpu.C1,
		NIC:        splitNICConfig(p),
		Obs:        pipe,
	})
	client := traffic.NewClient(host)
	r := &SplitRig{
		Group: g, ClientShard: cs, ServerShard: ss,
		Host: host, Client: client, Pipe: pipe,
	}
	wire := host.Costs.WireLatency
	r.toServer = g.Connect(cs, ss, wire, func(at sim.Time, payload any) {
		host.InjectFromWire(at, payload.([]byte))
	})
	r.toClient = g.Connect(ss, cs, wire, func(at sim.Time, payload any) {
		client.Deliver(at, payload.([]byte))
	})
	// Outbound frames leave over the cross-shard wire instead of being
	// scheduled on the server's own engine.
	host.WireTx = func(now, arrive sim.Time, frame []byte) {
		r.toClient.Send(now, arrive-now, frame)
	}
	return r
}

// InjectFn is the generator hook (PingPong.Inject and friends) routing
// client→server frames over the cross-shard wire link.
func (r *SplitRig) InjectFn() func(now, arrive sim.Time, frame []byte) {
	return func(now, arrive sim.Time, frame []byte) {
		r.toServer.Send(now, arrive-now, frame)
	}
}

// Run executes warmup + duration across the shard group with the given
// worker count, resetting the utilization window at the end of warmup
// exactly as Rig.Run does.
func (r *SplitRig) Run(p Params, workers int) error {
	r.Host.Eng.At(p.Warmup, func() { r.Host.ProcCore.ResetWindow(p.Warmup) })
	return r.Group.Run(p.Warmup+p.Duration, workers)
}

// splitWorkload wires the Fig. 3/9-style workload (1 kpps high-priority
// ping-pong plus optional background flood) onto a wire-split rig. The
// generators live on the client shard; the echo/sink apps on the server.
func splitWorkload(p Params, mode prio.Mode, bgRate float64) (*SplitRig, *traffic.PingPong, *traffic.UDPFlood) {
	r := NewSplitRig(p, mode)
	hi := r.Host.AddContainer("hi-srv")
	pp := traffic.NewPingPong(r.ClientShard.Eng, r.Host, hi, clientSrc(0), PortHighPrio, p.HighRate)
	r.Host.DB.Add(prio.Rule{IP: hi.IP, Port: PortHighPrio})
	pp.Warmup = p.Warmup
	pp.Inject = r.InjectFn()
	mustNoErr(pp.InstallEcho(p.EchoCost))
	pp.Start(r.Client, 0)

	var fl *traffic.UDPFlood
	if bgRate > 0 {
		bg := r.Host.AddContainer("bg-srv")
		fl = traffic.NewUDPFlood(r.ClientShard.Eng, r.Host, bg, clientSrc(1), PortBackgrnd, bgRate)
		fl.Burst = p.BGBurst
		fl.Poisson = false
		fl.JitterFrac = 0.25
		fl.Inject = r.InjectFn()
		mustNoErr(fl.InstallSink(p.SinkCost))
		fl.Start(0)
	}
	return r, pp, fl
}

// SplitLatencyUnderLoad is latencyUnderLoad on the wire-split parallel
// topology, returning the same (histogram, flow, utilization) triple.
func SplitLatencyUnderLoad(p Params, mode prio.Mode, bgRate float64, workers int) (*stats.Histogram, *traffic.PingPong, float64) {
	r, pp, _ := splitWorkload(p, mode, bgRate)
	mustNoErr(r.Run(p, workers))
	return pp.Hist, pp, r.Host.ProcCore.Utilization(r.Host.Eng.Now())
}

// RSSSplitRig shards the multi-queue receive path per RX queue: queue q's
// NIC, NAPI engine, processing core, bridge cell, backlog, containers and
// application threads all live on shard q, because RSS with per-core IRQ
// affinity makes the queues independent once steering has happened — and
// steering happens in NIC hardware, before any simulated CPU touches the
// frame. The client steers each frame with the exact RSS hash the NIC
// would use and sends it over that queue's wire link.
//
// The decomposition requires each flow's endpoints (container, sockets,
// app thread) to live with the queue its flow hashes to, which is true
// whenever RSS isolates flows — the regime the scaling experiment's
// aggregate-throughput measurement studies. Colliding flows (two flows,
// one queue) live on one shard together, which the model handles
// naturally: the collision is intra-shard.
type RSSSplitRig struct {
	Group       *par.Group
	ClientShard *par.Shard
	QueueShards []*par.Shard
	// Hosts[q] is queue q's slice of the server: a single-queue host on
	// shard q. They share the cost model and mode.
	Hosts  []*overlay.Host
	Client *traffic.Client
	// Pipes[q] is queue q's shard-local observability pipeline; merge them
	// in queue order (obs.MergeRegistries / obs.MergeEvents) to recover the
	// aggregate view deterministically.
	Pipes []*obs.Pipeline

	toQueue  []*par.Link
	toClient []*par.Link
}

// NewRSSSplitRig builds a queues-way sharded server.
func NewRSSSplitRig(p Params, mode prio.Mode, queues int) *RSSSplitRig {
	if queues < 1 {
		panic("experiments: RSS split needs at least one queue")
	}
	g := par.NewGroup()
	cs := g.Add("client", sim.NewEngine(clientSeed(p.Seed)))
	r := &RSSSplitRig{Group: g, ClientShard: cs}
	for q := 0; q < queues; q++ {
		ss := g.Add(fmt.Sprintf("rxq%d", q), sim.NewEngine(p.Seed+uint64(q)*0x9e3779b9))
		pipe := obs.NewPipeline(fmt.Sprintf("rxq%d", q))
		host := overlay.NewHost(ss.Eng, overlay.Config{
			Mode:       mode,
			RxQueues:   1,
			CStates:    cpu.C1,
			AppCStates: cpu.C1,
			NIC:        splitNICConfig(p),
			Obs:        pipe,
		})
		r.QueueShards = append(r.QueueShards, ss)
		r.Hosts = append(r.Hosts, host)
		r.Pipes = append(r.Pipes, pipe)
	}
	// One logical client machine demuxes every queue's replies; the
	// attach below is to the first host only for construction, the real
	// return path is the per-queue links.
	r.Client = traffic.NewClient(r.Hosts[0])
	wire := r.Hosts[0].Costs.WireLatency
	for q := 0; q < queues; q++ {
		host := r.Hosts[q]
		r.toQueue = append(r.toQueue, g.Connect(cs, r.QueueShards[q], wire,
			func(at sim.Time, payload any) {
				host.InjectFromWire(at, payload.([]byte))
			}))
		back := g.Connect(r.QueueShards[q], cs, wire,
			func(at sim.Time, payload any) {
				r.Client.Deliver(at, payload.([]byte))
			})
		r.toClient = append(r.toClient, back)
		host.WireTx = func(now, arrive sim.Time, frame []byte) {
			back.Send(now, arrive-now, frame)
		}
	}
	return r
}

// QueueFor reports which shard RSS steers a frame to.
func (r *RSSSplitRig) QueueFor(frame []byte) int {
	return overlay.RSSQueue(frame, len(r.Hosts))
}

// InjectFn returns the generator hook for a flow that must land on queue
// q. It panics if a frame's RSS hash disagrees with the placement — the
// decomposition would silently diverge from the single-host model
// otherwise.
func (r *RSSSplitRig) InjectFn(q int) func(now, arrive sim.Time, frame []byte) {
	return func(now, arrive sim.Time, frame []byte) {
		if got := r.QueueFor(frame); got != q {
			panic(fmt.Sprintf("experiments: flow placed on queue shard %d but RSS steers it to %d", q, got))
		}
		r.toQueue[q].Send(now, arrive-now, frame)
	}
}

// Run executes warmup + duration across all shards, resetting every
// queue's processing-core utilization window after warmup.
func (r *RSSSplitRig) Run(p Params, workers int) error {
	for _, h := range r.Hosts {
		h := h
		h.Eng.At(p.Warmup, func() { h.ProcCore.ResetWindow(p.Warmup) })
	}
	return r.Group.Run(p.Warmup+p.Duration, workers)
}
