package experiments

import (
	"prism/internal/prio"
	"prism/internal/stats"
	"prism/internal/testbed"
	"prism/internal/traffic"
)

// This file holds the topology-level parallel workloads: the paper's
// testbed split at the wire, and the RSS receive path split per RX queue.
// Both topologies are declarative testbed Specs (internal/testbed) over
// the conservative shard runtime (internal/par) and are deterministic for
// any worker count — the lookahead comes from physical delays the
// sequential model already charges (wire propagation for the link split,
// and again wire propagation for the fan-out to per-queue shards, since
// RSS steering is decided before the frame ever touches a CPU).

// splitWorkload wires the Fig. 3/9-style workload (1 kpps high-priority
// ping-pong plus optional background flood) onto a wire-split testbed.
// The generators live on the client shard; the echo/sink apps on the
// server.
func splitWorkload(p Params, mode prio.Mode, bgRate float64) (*testbed.Testbed, *traffic.PingPong, *traffic.UDPFlood) {
	r := NewTestbed(p, mode, testbed.WireSplit)
	host := r.Host()
	hi := host.AddContainer("hi-srv")
	pp := traffic.NewPingPong(r.ClientShard.Eng, host, hi, clientSrc(0), PortHighPrio, p.HighRate)
	host.DB.Add(prio.Rule{IP: hi.IP, Port: PortHighPrio})
	pp.Warmup = p.Warmup
	pp.Inject = r.Inject(0)
	mustNoErr(pp.InstallEcho(p.EchoCost))
	pp.Start(r.Client, 0)

	var fl *traffic.UDPFlood
	if bgRate > 0 {
		bg := host.AddContainer("bg-srv")
		fl = traffic.NewUDPFlood(r.ClientShard.Eng, host, bg, clientSrc(1), PortBackgrnd, bgRate)
		fl.Burst = p.BGBurst
		fl.Poisson = false
		fl.JitterFrac = 0.25
		fl.Inject = r.Inject(0)
		mustNoErr(fl.InstallSink(p.SinkCost))
		fl.Start(0)
	}
	return r, pp, fl
}

// SplitLatencyUnderLoad is latencyUnderLoad on the wire-split parallel
// topology, returning the same (histogram, flow, utilization) triple.
func SplitLatencyUnderLoad(p Params, mode prio.Mode, bgRate float64, workers int) (*stats.Histogram, *traffic.PingPong, float64) {
	r, pp, _ := splitWorkload(p, mode, bgRate)
	mustNoErr(r.Run(p.Warmup, p.Duration, workers))
	host := r.Host()
	return pp.Hist, pp, host.ProcCore.Utilization(host.Eng.Now())
}
