package experiments

import (
	"fmt"
	"strings"

	"prism/internal/apps/webserver"
	"prism/internal/prio"
	"prism/internal/stats"
	"prism/internal/traffic"
)

// Fig13Row is one (mode, busy?) web-serving measurement.
type Fig13Row struct {
	Mode prio.Mode
	Busy bool
	// KReqs is completed requests per second.
	KReqs   float64
	Latency stats.Summary
}

// Fig13Result reproduces Fig. 13. Paper: on a busy server, PRISM-batch
// cuts web latency ~14% and raises throughput ~15%; PRISM-sync ~22% and
// ~25%. The gains are smaller than the microbenchmarks because TCP and
// application time dominate the request path.
type Fig13Result struct {
	Rows []Fig13Row
	// TCPBGMsgRate is the background message rate used (64 KB messages).
	TCPBGMsgRate float64
}

// Fig13TCPBGRate is the default 64 KB-message background rate. The paper
// quotes "20 Kpps with 64 KB packets"; at this simulator's GRO and cost
// calibration that rate leaves the processing core nearly idle, so the
// default is raised to reach the busy regime (~70-80% of the processing
// core) that the paper's latency and throughput deltas imply. See
// EXPERIMENTS.md.
const Fig13TCPBGRate = 55_000

// Fig13 runs the web benchmark for all three modes, idle and busy.
func Fig13(p Params) Fig13Result {
	res := Fig13Result{TCPBGMsgRate: Fig13TCPBGRate}
	for _, mode := range Modes {
		for _, busy := range []bool{false, true} {
			res.Rows = append(res.Rows, fig13Run(p, mode, busy))
		}
	}
	return res
}

func fig13Run(p Params, mode prio.Mode, busy bool) Fig13Row {
	r := NewRig(p, mode)
	ctr := r.Host.AddContainer("nginx")
	r.Host.DB.Add(prio.Rule{IP: ctr.IP, Port: webserver.Port})

	if _, err := webserver.InstallServer(ctr, webserver.DefaultServerConfig()); err != nil {
		panic(err)
	}
	cfg := webserver.DefaultWrk2Config()
	cfg.Warmup = p.Warmup
	w := webserver.NewWrk2(r.Eng, r.Host, ctr, clientSrc(0), cfg)
	w.Start(r.Client, 0)

	if busy {
		bg := r.Host.AddContainer("bg-srv")
		st := traffic.NewTCPStream(r.Eng, r.Host, bg, clientSrc(1), PortTCPStream, Fig13TCPBGRate)
		mustNoErr(st.InstallSink(p.SinkCost))
		st.Start(0)
	}
	mustNoErr(r.Run(p))
	return Fig13Row{
		Mode:    mode,
		Busy:    busy,
		KReqs:   w.ThroughputReqs() / 1e3,
		Latency: w.Hist.Summarize(),
	}
}

// Find returns the row for (mode, busy).
func (r Fig13Result) Find(mode prio.Mode, busy bool) (Fig13Row, bool) {
	for _, row := range r.Rows {
		if row.Mode == mode && row.Busy == busy {
			return row, true
		}
	}
	return Fig13Row{}, false
}

// String renders the table.
func (r Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 — nginx/wrk2 web serving with/without TCP background (%.0f x 64KB msgs/s)\n", r.TCPBGMsgRate)
	fmt.Fprintf(&b, "%-12s %-5s %10s %10s %10s %10s\n",
		"mode", "load", "kreq/s", "min(µs)", "avg(µs)", "p99(µs)")
	for _, row := range r.Rows {
		load := "idle"
		if row.Busy {
			load = "busy"
		}
		fmt.Fprintf(&b, "%-12s %-5s %10.2f %10.1f %10.1f %10.1f\n",
			row.Mode, load, row.KReqs, row.Latency.Min.Micros(),
			row.Latency.Mean.Micros(), row.Latency.P99.Micros())
	}
	return b.String()
}
