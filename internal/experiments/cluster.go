package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"prism/internal/cluster"
	"prism/internal/obs"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/stats"
)

// ClusterConfig sizes the datacenter experiment.
type ClusterConfig struct {
	// Hosts / Containers set the cluster scale.
	Hosts      int
	Containers int
	// Placements lists the compared policies (empty = all three).
	Placements []cluster.Placement
}

// DefaultClusterConfig is the paper-scale point the golden fixtures pin:
// 16 hosts in 2 racks, 1000 containers.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{Hosts: 16, Containers: 1000, Placements: cluster.Placements}
}

func (cc ClusterConfig) withDefaults() ClusterConfig {
	def := DefaultClusterConfig()
	if cc.Hosts <= 0 {
		cc.Hosts = def.Hosts
	}
	if cc.Containers <= 0 {
		cc.Containers = def.Containers
	}
	if len(cc.Placements) == 0 {
		cc.Placements = def.Placements
	}
	return cc
}

// clusterSpecs builds the experiment workload: one flood sink per host
// (the cross-host background load), every ninth remaining container a
// high-priority echo at p.HighRate, the rest best-effort echoes at a
// fifth of that. Ingress hosts are a deterministic spread, so most flows
// cross the fabric and many cross racks.
func clusterSpecs(p Params, hosts, containers int) []cluster.ContainerSpec {
	specs := make([]cluster.ContainerSpec, 0, containers)
	for i := 0; i < containers; i++ {
		ingress := (i*7 + 3) % hosts
		switch {
		case i < hosts:
			specs = append(specs, cluster.ContainerSpec{
				Name: fmt.Sprintf("bg%04d", i), Flood: true,
				Rate: p.BGRate / 8, Ingress: ingress,
			})
		case (i-hosts)%9 == 0:
			specs = append(specs, cluster.ContainerSpec{
				Name: fmt.Sprintf("hi%04d", i), Hi: true,
				Rate: p.HighRate, Ingress: ingress,
			})
		default:
			specs = append(specs, cluster.ContainerSpec{
				Name: fmt.Sprintf("lo%04d", i),
				Rate: p.HighRate / 5, Ingress: ingress,
			})
		}
	}
	return specs
}

// ClusterRow is one placement policy's measurement.
type ClusterRow struct {
	Placement string

	// Hi / Lo summarize the prioritized and best-effort echo latencies
	// (merged across all flows of the class).
	Hi stats.Summary
	Lo stats.Summary

	HiSent, HiRecv uint64
	LoSent, LoRecv uint64
	FloodRecv      uint64

	// AdmitDenied counts ingress token-bucket refusals; FabricDrops the
	// switches' discards, FabricShed the best-effort victims evicted for
	// high-priority frames.
	AdmitDenied uint64
	FabricDrops uint64
	FabricShed  uint64

	FabricUtilMax  float64
	FabricUtilMean float64

	// Windows is the par scheduler's barrier count — identical for every
	// worker count by construction.
	Windows uint64

	// MetricsSHA / SpansSHA digest the merged observability streams of
	// every host and switch pipeline; the determinism gates compare them
	// across worker counts.
	MetricsSHA string
	SpansSHA   string
}

// ClusterResult is the datacenter experiment: hi/lo tail latency and
// fabric load per placement policy.
type ClusterResult struct {
	Seed       uint64
	Hosts      int
	Containers int
	Racks      int
	Rows       []ClusterRow
}

// Cluster runs the multi-host datacenter experiment: the same workload
// placed by each policy in turn, each run a full cluster simulation over
// p.Workers shard workers (bit-identical for any worker count).
func Cluster(p Params, cc ClusterConfig) ClusterResult {
	cc = cc.withDefaults()
	res := ClusterResult{Seed: p.Seed, Hosts: cc.Hosts, Containers: cc.Containers}
	for _, pol := range cc.Placements {
		row, racks := clusterPoint(p, cc, pol)
		res.Racks = racks
		res.Rows = append(res.Rows, row)
	}
	return res
}

func clusterPoint(p Params, cc ClusterConfig, pol cluster.Placement) (ClusterRow, int) {
	cfg := cluster.Config{
		Hosts:     cc.Hosts,
		Placement: pol,
		Seed:      p.Seed,
		Host:      BaseSpec(p, prio.ModeSync),
		Specs:     clusterSpecs(p, cc.Hosts, cc.Containers),
		// Slightly below the busiest hosts' offered ingress, so the
		// bucket visibly shaves best-effort bursts while the reserve
		// keeps prioritized flows untouched.
		Admission: &cluster.Admission{Rate: 55_000, Burst: 96, HiReserve: 0.25},
		Warmup:    p.Warmup,
		EchoCost:  p.EchoCost,
		SinkCost:  p.SinkCost,
	}
	c, err := cluster.New(cfg)
	mustNoErr(err)

	// Attach the live operator surface, when one is listening: frame taps
	// feed /capture (classified by the cluster's flow table), and a
	// virtual-time checkpoint streams merged metric snapshots, trace
	// deltas and per-port fabric load. All hooks are pure observation at
	// quiescent points — the digests below stay bit-identical either way.
	if lv := p.Live; lv != nil {
		lv.SetRun("cluster/"+pol.String(), cfg.Warmup+p.Duration)
		lv.SetClassifier(c.ClassifyFrame)
		c.SetTap(lv.Tap)
		streamer := obs.NewStreamer(lv, c.Pipes()...)
		c.SetCheckpoint(lv.Interval, func(at sim.Time) {
			lv.PublishFabric(c.FabricPortUtil(at))
			streamer.Checkpoint(at)
		})
	}

	mustNoErr(c.Run(p.Duration, p.Workers))

	row := ClusterRow{Placement: pol.String(), Windows: c.Group.Windows}
	hiH, loH := c.LatencyHists()
	row.Hi, row.Lo = hiH.Summarize(), loH.Summarize()
	row.HiSent, row.HiRecv, row.LoSent, row.LoRecv, _, row.FloodRecv = c.FlowCounts()
	row.AdmitDenied = c.AdmissionDenied()
	row.FabricDrops, row.FabricShed = c.FabricDrops()
	row.FabricUtilMax, row.FabricUtilMean = c.FabricUtilization(c.Horizon())

	// Digest the full observability surface at the measured horizon, in
	// shard order: the determinism gates compare these across worker
	// counts.
	pipes := c.Pipes()
	regs := make([]*obs.Registry, len(pipes))
	streams := make([][]obs.Event, len(pipes))
	for i, pipe := range pipes {
		regs[i] = pipe.M
		streams[i] = pipe.T.Events()
	}
	row.MetricsSHA = digest([]byte(obs.PrometheusText(obs.MergeRegistries(regs...))))
	spans, err := json.Marshal(obs.MergeEvents(streams...))
	mustNoErr(err)
	row.SpansSHA = digest(spans)

	// Stop observing before Settle extends the clocks past the measured
	// horizon: the final checkpoint (flushed at the horizon inside Run)
	// is the last snapshot the live surface serves for this point.
	if p.Live != nil {
		c.SetCheckpoint(0, nil)
		c.SetTap(nil)
	}

	// Tear down cleanly and enforce the zero-leak invariants cluster-wide.
	mustNoErr(c.Settle(0, p.Workers))
	mustNoErr(c.CheckInvariants(true))
	return row, c.Cfg.Fabric.Racks
}

// String renders the per-policy table.
func (r ClusterResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster — %d hosts / %d racks / %d containers, PRISM-sync hosts (seed %d)\n",
		r.Hosts, r.Racks, r.Containers, r.Seed)
	fmt.Fprintf(&b, "%-9s %10s %10s %10s %10s %8s %8s %9s %8s %7s %13s %13s\n",
		"placement", "hi p50(µs)", "hi p99(µs)", "lo p50(µs)", "lo p99(µs)",
		"hi recv", "lo recv", "admit-rej", "fab-drop", "util", "metrics", "spans")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s %10.1f %10.1f %10.1f %10.1f %8d %8d %9d %8d %3.0f%%/%2.0f%% %13s %13s\n",
			row.Placement,
			row.Hi.P50.Micros(), row.Hi.P99.Micros(),
			row.Lo.P50.Micros(), row.Lo.P99.Micros(),
			row.HiRecv, row.LoRecv, row.AdmitDenied, row.FabricDrops,
			100*row.FabricUtilMax, 100*row.FabricUtilMean,
			row.MetricsSHA[:12], row.SpansSHA[:12])
	}
	return b.String()
}
