package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"prism/internal/cluster"
	"prism/internal/live"
	"prism/internal/pcap"
)

// liveParams returns detParams with a fresh live surface attached —
// exactly what prismsim -listen does.
func liveParams(workers int) Params {
	p := detParams()
	p.Workers = workers
	p.Live = live.NewServer()
	return p
}

// TestClusterGoldenWithLiveSurface proves enabling the live operator
// surface is free: with a server attached — taps installed, classifier
// armed, checkpoints streaming every interval — the cluster rows must
// stay bit-identical to the committed golden fixture, at 1, 2 and 4
// workers. (The plain-run equivalence at all worker counts is
// TestClusterGolden; this test pins the -listen path against the same
// fixture.)
func TestClusterGoldenWithLiveSurface(t *testing.T) {
	raw, err := os.ReadFile(clusterGoldenPath)
	if err != nil {
		t.Skipf("cluster golden fixture not captured yet: %v", err)
	}
	var want ClusterResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	fixtureRow := func(placement string) ClusterRow {
		for _, row := range want.Rows {
			if row.Placement == placement {
				return row
			}
		}
		t.Fatalf("fixture has no %q row", placement)
		return ClusterRow{}
	}

	// All placements once at workers=1, then the spread placement again
	// in parallel — same coverage axes as the golden test, with the live
	// surface publishing throughout.
	p := liveParams(1)
	got := Cluster(p, DefaultClusterConfig())
	for _, row := range got.Rows {
		w, g := mustJSON(t, fixtureRow(row.Placement)), mustJSON(t, row)
		if string(w) != string(g) {
			t.Errorf("live surface perturbed %s\nwant: %s\ngot:  %s", row.Placement, w, g)
		}
	}
	cc := DefaultClusterConfig()
	cc.Placements = []cluster.Placement{cluster.PlaceSpread}
	for _, workers := range []int{2, 4} {
		got := Cluster(liveParams(workers), cc)
		w, g := mustJSON(t, fixtureRow(got.Rows[0].Placement)), mustJSON(t, got.Rows[0])
		if string(w) != string(g) {
			t.Errorf("live surface perturbed spread at workers=%d\nwant: %s\ngot:  %s", workers, w, g)
		}
	}
}

// TestChaosGoldenWithLiveSurface is the same proof for the chaos grid,
// whose points fan out concurrently and publish into one shared server:
// the full result must still match the committed fixture, sequentially
// and at workers=4.
func TestChaosGoldenWithLiveSurface(t *testing.T) {
	raw, err := os.ReadFile(chaosGoldenPath)
	if err != nil {
		t.Skipf("chaos golden fixture not captured yet: %v", err)
	}
	var want ChaosResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	for _, workers := range []int{1, 4} {
		p := chaosDetParams()
		p.Workers = workers
		p.Live = live.NewServer()
		got := Chaos(p, nil, chaosDetRates)
		w, g := mustJSON(t, want), mustJSON(t, got)
		if string(w) != string(g) {
			t.Errorf("live surface perturbed chaos at workers=%d\nwant: %s\ngot:  %s", workers, w, g)
		}
	}
}

// TestLiveSurfaceEndToEndCluster drives the whole consumer path against
// a real (small) cluster run: a pcap capture armed before the run
// streams classified high-priority frames with nanosecond timestamps,
// /metrics serves exactly the bytes the run's metrics digest pinned,
// and /trace replays a parseable NDJSON span stream.
func TestLiveSurfaceEndToEndCluster(t *testing.T) {
	lv := live.NewServer()
	ts := httptest.NewServer(lv.Handler())
	defer ts.Close()

	// Arm a bounded high-priority capture before the run starts.
	resp, err := http.Get(ts.URL + "/capture?prio=hi&max=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	for i := 0; lv.CaptureSubscribers() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if lv.CaptureSubscribers() == 0 {
		t.Fatal("capture subscription never registered")
	}

	p := detParams()
	p.Live = lv
	cc := ClusterConfig{Hosts: 4, Containers: 48, Placements: []cluster.Placement{cluster.PlaceSpread}}
	res := Cluster(p, cc)
	row := res.Rows[0]

	// The bounded capture closed at max=5; it must parse as a pcap with
	// nanosecond-resolution virtual timestamps from inside the run.
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := pcap.Parse(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("streamed capture does not parse: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("captured %d frames, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.At <= 0 || rec.At > p.Warmup+p.Duration {
			t.Errorf("rec %d timestamp %v outside the run", i, rec.At)
		}
		if i > 0 && rec.At < recs[i-1].At {
			t.Errorf("timestamps not monotonic: %v after %v", rec.At, recs[i-1].At)
		}
	}

	// /metrics is the final checkpoint snapshot — the very bytes whose
	// sha256 the cluster row pinned as MetricsSHA.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", mresp.StatusCode)
	}
	if digest(prom) != row.MetricsSHA {
		t.Errorf("/metrics digest %s != row MetricsSHA %s", digest(prom), row.MetricsSHA)
	}

	// After Finish, /trace replays the backlog and terminates: every
	// line is a Chrome trace event, and real spans are present.
	lv.Finish()
	tresp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	spans := 0
	sc := bufio.NewScanner(tresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Ph string `json:"ph"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		if ev.Ph == "X" {
			spans++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if spans == 0 {
		t.Error("trace stream carried no spans")
	}

	// /status after Finish: one terminal event, Done set, run labeled.
	sresp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var st live.Status
	line := bytes.TrimSpace(bytes.TrimPrefix(bytes.TrimSpace(sbody), []byte("data: ")))
	if err := json.Unmarshal(line, &st); err != nil {
		t.Fatalf("status payload %q: %v", sbody, err)
	}
	if !st.Done || st.Run != "cluster/spread" || st.Checkpoints == 0 {
		t.Errorf("terminal status = %+v", st)
	}
}
