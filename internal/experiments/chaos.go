package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"prism/internal/fault"
	"prism/internal/obs"
	"prism/internal/par"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/stats"
	"prism/internal/traffic"
)

// PortLowPrio is the chaos experiment's unprioritized latency flow: same
// workload shape as the PortHighPrio flow, but with no rule in the
// priority database — the pair measures how much of the fault damage each
// policy deflects onto best-effort traffic.
const PortLowPrio = 22222

// ChaosVariants are the default policy configurations the chaos driver
// degrades: the vanilla baseline against full PRISM (run-to-completion).
var ChaosVariants = []PolicyVariant{
	{Policy: "vanilla", Mode: prio.ModeVanilla},
	{Policy: "prism", Mode: prio.ModeSync},
}

// ChaosRates builds the fault-rate ladder up to maxRate (default 0.4):
// rate 0 — which runs with a nil plane and must be bit-identical to an
// unfaulted build — plus three increasing intensities.
func ChaosRates(maxRate float64) []float64 {
	if maxRate <= 0 {
		maxRate = 0.4
	}
	return []float64{0, maxRate / 4, maxRate / 2, maxRate}
}

// ChaosRow is one (policy, fault-rate) measurement point.
type ChaosRow struct {
	Variant   PolicyVariant
	FaultRate float64

	// High and Low summarize the prioritized and best-effort latency
	// flows; HighRecv/LowRecv are their reply counts and BGRecv the
	// background sink's deliveries.
	High     stats.Summary
	Low      stats.Summary
	HighRecv uint64
	LowRecv  uint64
	BGRecv   uint64

	// Faults is everything the plane injected; Shed counts low-priority
	// victims evicted by the overload policy (ring + stage queues);
	// Rescues counts watchdog IRQ re-arms.
	Faults  fault.Counters
	Shed    uint64
	Rescues uint64

	Util float64

	// MetricsSHA / SpansSHA digest the point's full observability streams;
	// the determinism tests compare them across seeds and worker counts.
	MetricsSHA string
	SpansSHA   string
}

// ChaosResult is the chaos experiment: latency degradation per policy as
// the fault rate rises, with priority-aware shedding and the watchdog
// active at every nonzero rate.
type ChaosResult struct {
	Seed uint64
	Rows []ChaosRow
}

// Chaos runs the (variants × rates) grid. Every point is an independent
// engine with its own fault plane, so points fan out over p.Workers with
// bit-identical results, and the same seed reproduces the same table.
func Chaos(p Params, variants []PolicyVariant, rates []float64) ChaosResult {
	if len(variants) == 0 {
		variants = ChaosVariants
	}
	if len(rates) == 0 {
		rates = ChaosRates(0)
	}
	type point struct {
		v    PolicyVariant
		rate float64
	}
	grid := make([]point, 0, len(variants)*len(rates))
	for _, v := range variants {
		for _, rate := range rates {
			grid = append(grid, point{v: v, rate: rate})
		}
	}
	res := ChaosResult{Seed: p.Seed, Rows: make([]ChaosRow, len(grid))}
	par.ForEach(len(grid), p.Workers, func(i int) {
		res.Rows[i] = chaosPoint(p, grid[i].v, grid[i].rate)
	})
	return res
}

// chaosPoint measures one policy at one fault rate: a prioritized and an
// unprioritized latency flow compete with a background flood while the
// plane injects every fault class; the run is then drained to idle and
// the conservation/leak invariants are enforced.
func chaosPoint(p Params, v PolicyVariant, rate float64) ChaosRow {
	label := fmt.Sprintf("chaos-%s-r%d", v.Label(), int(rate*1000))
	pipe := obs.NewPipeline(label)
	opts := []RigOption{WithObs(pipe), WithPolicy(v.Policy)}
	if rate > 0 {
		// Rate 0 runs with no plane at all (and no shedding), so its
		// datapath is bit-identical to an unfaulted build — the golden
		// fixtures prove the hooks are free.
		opts = append(opts, WithFault(&fault.Config{Seed: p.Seed, Rate: rate}), WithShed())
	}
	r := NewRig(p, v.Mode, opts...)

	// Attach the live operator surface, when one is listening. Chaos grid
	// points fan out over p.Workers and publish concurrently — the server
	// is thread-safe and the streams interleave (last writer labels the
	// run) — while each point's own digests stay bit-identical: taps and
	// checkpoints are pure observation.
	if lv := p.Live; lv != nil {
		lv.SetRun(label, p.Warmup+p.Duration)
		lv.SetClassifier(chaosClassify)
		r.Host.Tap = lv.HostTap(label)
		streamer := obs.NewStreamer(lv, pipe)
		r.tb.SetCheckpoint(lv.Interval, func(at sim.Time) { streamer.Checkpoint(at) })
	}

	hi := r.Host.AddContainer("hi-srv")
	ppHigh := traffic.NewPingPong(r.Eng, r.Host, hi, clientSrc(0), PortHighPrio, p.HighRate)
	r.Host.DB.Add(prio.Rule{IP: hi.IP, Port: PortHighPrio})
	ppHigh.Warmup = p.Warmup
	mustNoErr(ppHigh.InstallEcho(p.EchoCost))
	ppHigh.Start(r.Client, 0)

	lo := r.Host.AddContainer("lo-srv")
	ppLow := traffic.NewPingPong(r.Eng, r.Host, lo, clientSrc(1), PortLowPrio, p.HighRate)
	ppLow.Warmup = p.Warmup
	mustNoErr(ppLow.InstallEcho(p.EchoCost))
	ppLow.Start(r.Client, 0)

	bg := r.Host.AddContainer("bg-srv")
	fl := traffic.NewUDPFlood(r.Eng, r.Host, bg, clientSrc(2), PortBackgrnd, p.BGRate)
	fl.Burst = p.BGBurst
	fl.Poisson = false
	fl.JitterFrac = 0.25
	mustNoErr(fl.InstallSink(p.SinkCost))
	fl.Start(0)

	mustNoErr(r.Run(p))
	util := r.Utilization()
	ppHigh.Stop()
	ppLow.Stop()
	fl.Stop()
	mustNoErr(r.Drain())
	mustNoErr(r.CheckInvariants())
	if p.Live != nil {
		r.tb.SetCheckpoint(0, nil)
		r.Host.Tap = nil
	}

	row := ChaosRow{
		Variant:   v,
		FaultRate: rate,
		High:      ppHigh.Hist.Summarize(),
		Low:       ppLow.Hist.Summarize(),
		HighRecv:  ppHigh.Received,
		LowRecv:   ppLow.Received,
		BGRecv:    fl.Delivered.Count(),
		Faults:    r.FaultStats(),
		Util:      util,
	}
	row.Rescues = row.Faults.WatchdogRescues
	for _, n := range r.Host.NICs {
		row.Shed += n.ShedDrops
	}
	for _, rx := range r.Host.Rxs {
		row.Shed += rx.Stats().Shed
	}
	row.MetricsSHA = digest([]byte(obs.PrometheusText(pipe.M)))
	spans, err := json.Marshal(pipe.T.Events())
	mustNoErr(err)
	row.SpansSHA = digest(spans)
	return row
}

// chaosClassify resolves a chaos-rig wire frame to its workload for the
// live capture selectors. The monolithic rig's three containers listen on
// the experiment's well-known ports, so the inner flow's destination port
// — or, for reply frames, its source port — names the workload.
func chaosClassify(frame []byte) (container string, hi bool, ok bool) {
	inner := frame
	if pkt.IsVXLAN(frame) {
		_, in, err := pkt.Decapsulate(frame)
		if err != nil {
			return "", false, false
		}
		inner = in
	}
	fl, err := pkt.ParseFlow(inner)
	if err != nil {
		return "", false, false
	}
	for _, port := range [2]uint16{fl.DstPort, fl.SrcPort} {
		switch int(port) {
		case PortHighPrio:
			return "hi-srv", true, true
		case PortLowPrio:
			return "lo-srv", false, true
		case PortBackgrnd:
			return "bg-srv", false, true
		}
	}
	return "", false, false
}

func digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// String renders the degradation table: per policy, latency and loss as
// the fault rate rises, with each row's p99 also shown relative to the
// same policy's fault-free baseline.
func (r ChaosResult) String() string {
	base := map[PolicyVariant]stats.Summary{}
	for _, row := range r.Rows {
		if row.FaultRate == 0 {
			base[row.Variant] = row.High
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos — latency degradation under injected faults (seed %d)\n", r.Seed)
	fmt.Fprintf(&b, "%-11s %5s %10s %10s %8s %10s %10s %7s %7s %8s %8s\n",
		"policy", "rate", "hi p50(µs)", "hi p99(µs)", "hi p99x",
		"lo p50(µs)", "lo p99(µs)", "shed", "rescue", "injected", "util")
	for _, row := range r.Rows {
		p99x := "-"
		if b0, ok := base[row.Variant]; ok && b0.P99 > 0 && row.FaultRate > 0 {
			p99x = fmt.Sprintf("%.2fx", float64(row.High.P99)/float64(b0.P99))
		}
		injected := row.Faults.Corrupted + row.Faults.LinkDropped + row.Faults.Jittered +
			row.Faults.OverrunDropped + row.Faults.IRQsLost + row.Faults.IRQsSpurious +
			row.Faults.SoftirqStalls + row.Faults.ConsumerStalls
		fmt.Fprintf(&b, "%-11s %5.2f %10.1f %10.1f %8s %10.1f %10.1f %7d %7d %8d %7.0f%%\n",
			row.Variant.Label(), row.FaultRate,
			row.High.P50.Micros(), row.High.P99.Micros(), p99x,
			row.Low.P50.Micros(), row.Low.P99.Micros(),
			row.Shed, row.Rescues, injected, 100*row.Util)
	}
	return b.String()
}
