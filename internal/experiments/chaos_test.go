package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"prism/internal/fault"
	"prism/internal/prio"
	"prism/internal/traffic"
)

const chaosGoldenPath = "testdata/chaos_golden.json"

// chaosDetScale keeps the committed chaos fixture small: short run, two
// nonzero rates. Rate 0 stays in the ladder — that row runs with no plane
// at all, so the fixture also pins the unfaulted datapath (and the
// separate datapath_golden.json staying green proves the nil hooks cost
// nothing on every other workload).
func chaosDetParams() Params {
	return detParams()
}

var chaosDetRates = []float64{0, 0.2, 0.4}

// TestChaosGolden pins the chaos experiment bit-for-bit: the full result
// — latency summaries, counts, fault counters, and the metrics/span
// digests of every point — must match the committed fixture, and must be
// reproduced identically when the grid fans out over 2 and 4 workers.
// Regenerate with:
//
//	go test ./internal/experiments -run TestChaosGolden -update-golden
func TestChaosGolden(t *testing.T) {
	capture := func(workers int) ChaosResult {
		p := chaosDetParams()
		p.Workers = workers
		return Chaos(p, nil, chaosDetRates)
	}
	got := capture(1)

	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(chaosGoldenPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(chaosGoldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("chaos golden fixture rewritten: %s", chaosGoldenPath)
		return
	}

	raw, err := os.ReadFile(chaosGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want ChaosResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	check := func(name string, gotR ChaosResult) {
		w, g := mustJSON(t, want), mustJSON(t, gotR)
		if string(w) != string(g) {
			t.Errorf("%s diverged from chaos golden fixture\nwant: %s\ngot:  %s", name, w, g)
		}
	}
	check("workers=1", got)
	for _, w := range []int{2, 4} {
		check("workers="+string(rune('0'+w)), capture(w))
	}
}

// TestChaosGoldenInjectsFaults guards the fixture's reach: the committed
// nonzero-rate rows must actually have injected faults (and the rate-0
// rows none), so the golden test cannot silently pin a no-op plane.
func TestChaosGoldenInjectsFaults(t *testing.T) {
	raw, err := os.ReadFile(chaosGoldenPath)
	if err != nil {
		t.Skipf("chaos golden fixture not captured yet: %v", err)
	}
	var want ChaosResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	for _, row := range want.Rows {
		injected := row.Faults.Corrupted + row.Faults.LinkDropped + row.Faults.Jittered +
			row.Faults.OverrunDropped + row.Faults.IRQsLost + row.Faults.IRQsSpurious +
			row.Faults.SoftirqStalls + row.Faults.ConsumerStalls
		if row.FaultRate == 0 && injected != 0 {
			t.Errorf("%s rate 0: fixture shows %d injected faults, want 0", row.Variant.Label(), injected)
		}
		if row.FaultRate > 0 && injected == 0 {
			t.Errorf("%s rate %.2f: fixture shows no injected faults", row.Variant.Label(), row.FaultRate)
		}
		if row.HighRecv == 0 || row.BGRecv == 0 {
			t.Errorf("%s rate %.2f: fixture looks empty: %+v", row.Variant.Label(), row.FaultRate, row)
		}
	}
}

// TestChaosSeedDeterministic reruns one faulted point twice with the same
// seed and demands identical results — including the metrics and span
// stream digests, the strongest equality the run exposes.
func TestChaosSeedDeterministic(t *testing.T) {
	p := chaosDetParams()
	a := chaosPoint(p, PolicyVariant{Policy: "prism", Mode: prio.ModeSync}, 0.4)
	b := chaosPoint(p, PolicyVariant{Policy: "prism", Mode: prio.ModeSync}, 0.4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	p.Seed = 7
	c := chaosPoint(p, PolicyVariant{Policy: "prism", Mode: prio.ModeSync}, 0.4)
	if a.SpansSHA == c.SpansSHA {
		t.Fatalf("different seeds produced identical span streams (plane not seeded?)")
	}
}

// TestChaosInvariantsPerFaultClass runs the chaos workload under each
// fault class in isolation (and all together) at an aggressive rate, then
// drains and enforces the conservation/zero-leak invariants. A leak or a
// lost packet in any single fault path fails its own subtest.
func TestChaosInvariantsPerFaultClass(t *testing.T) {
	classes := []struct {
		name string
		c    fault.Class
		rate float64
	}{
		{"none", 0, 0}, // unfaulted baseline: the engines themselves leak nothing
		{"corrupt", fault.ClassCorrupt, 0.8},
		{"ring", fault.ClassRing, 0.8},
		{"link", fault.ClassLink, 0.8},
		{"consumer", fault.ClassConsumer, 0.8},
		{"softirq", fault.ClassSoftirq, 0.8},
		{"all", fault.ClassAll, 0.8},
	}
	for _, tc := range classes {
		t.Run(tc.name, func(t *testing.T) {
			p := chaosDetParams()
			opts := []RigOption{WithPolicy("prism")}
			if tc.rate > 0 {
				opts = append(opts,
					WithFault(&fault.Config{Seed: p.Seed, Rate: tc.rate, Classes: tc.c}),
					WithShed())
			}
			r := NewRig(p, prio.ModeSync, opts...)

			hi := r.Host.AddContainer("hi-srv")
			pp := traffic.NewPingPong(r.Eng, r.Host, hi, clientSrc(0), PortHighPrio, p.HighRate)
			r.Host.DB.Add(prio.Rule{IP: hi.IP, Port: PortHighPrio})
			pp.Warmup = p.Warmup
			mustNoErr(pp.InstallEcho(p.EchoCost))
			pp.Start(r.Client, 0)

			bg := r.Host.AddContainer("bg-srv")
			fl := traffic.NewUDPFlood(r.Eng, r.Host, bg, clientSrc(1), PortBackgrnd, p.BGRate)
			fl.Burst = p.BGBurst
			mustNoErr(fl.InstallSink(p.SinkCost))
			fl.Start(0)

			if err := r.Run(p); err != nil {
				t.Fatalf("run: %v", err)
			}
			pp.Stop()
			fl.Stop()
			if err := r.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("invariants under %s faults: %v", tc.name, err)
			}
			if pp.Received == 0 {
				t.Fatalf("no high-priority replies survived %s faults", tc.name)
			}
		})
	}
}
