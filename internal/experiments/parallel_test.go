package experiments

import (
	"reflect"
	"testing"

	"prism/internal/obs"
	"prism/internal/overlay"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/stats"
	"prism/internal/testbed"
	"prism/internal/traffic"
)

// detParams shrinks runs further than quick(): the determinism matrix
// re-runs each experiment once per worker count, so equality (not
// statistical quality) is what matters.
func detParams() Params {
	p := quickParams()
	p.Warmup = 5 * sim.Millisecond
	p.Duration = 50 * sim.Millisecond
	return p
}

// TestFig9ParallelDeterministic is the ISSUE's determinism regression for
// the figure drivers: Fig. 9 sequentially and with -parallel 2/4 must be
// bit-identical — summaries, CDF bucket lists, kernel residencies, all of
// it (reflect.DeepEqual over the whole result).
func TestFig9ParallelDeterministic(t *testing.T) {
	run := func(workers int) Fig9Result {
		p := detParams()
		p.Workers = workers
		return Fig9(p)
	}
	seq := run(1)
	if len(seq.Rows) != len(Modes) || seq.Rows[0].Busy.Count == 0 {
		t.Fatalf("sequential reference looks empty: %+v", seq)
	}
	for _, w := range []int{2, 4} {
		if got := run(w); !reflect.DeepEqual(seq, got) {
			t.Errorf("Fig9 with %d workers diverged from sequential\nseq: %+v\ngot: %+v", w, seq, got)
		}
	}
}

// TestScalingParallelDeterministic covers the RSS scaling driver the same
// way.
func TestScalingParallelDeterministic(t *testing.T) {
	run := func(workers int) ScalingResult {
		p := detParams()
		p.Workers = workers
		return Scaling(p, []int{1, 2})
	}
	seq := run(1)
	if len(seq.Points) != 2 || seq.Points[0].AggKpps == 0 {
		t.Fatalf("sequential reference looks empty: %+v", seq)
	}
	for _, w := range []int{2, 4} {
		if got := run(w); !reflect.DeepEqual(seq, got) {
			t.Errorf("Scaling with %d workers diverged from sequential\nseq: %+v\ngot: %+v", w, got, seq)
		}
	}
}

type sample struct {
	Seq uint64
	Lat sim.Time
}

// splitObs is everything a wire-split run observes: the per-flow delivered
// sequence (order included), the latency histogram's bucket counts, the
// endpoint counters, and the full observability state — the rendered
// metrics exposition and the span stream.
type splitObs struct {
	Samples        []sample
	CDF            []stats.CDFPoint
	Sent, Received uint64
	Util           float64
	Windows        uint64
	Metrics        string
	Spans          []obs.Event
}

func runSplit(t *testing.T, workers int) splitObs {
	t.Helper()
	p := detParams()
	r, pp, _ := splitWorkload(p, prio.ModeSync, p.BGRate)
	var o splitObs
	pp.OnSample = func(seq uint64, lat sim.Time) {
		o.Samples = append(o.Samples, sample{seq, lat})
	}
	if err := r.Run(p.Warmup, p.Duration, workers); err != nil {
		t.Fatalf("split run (workers=%d): %v", workers, err)
	}
	o.CDF = pp.Hist.CDF()
	o.Sent, o.Received = pp.Sent, pp.Received
	host := r.Host()
	o.Util = host.ProcCore.Utilization(host.Eng.Now())
	o.Windows = r.Group.Windows
	o.Metrics = obs.PrometheusText(r.Pipe().M)
	o.Spans = r.Pipe().T.Events()
	return o
}

// TestSplitRigDeterministicAcrossWorkers runs the wire-split two-shard
// topology under load and asserts the per-flow delivered sequence and the
// histogram bucket counts are identical whether the two shards run on one
// worker or several.
func TestSplitRigDeterministicAcrossWorkers(t *testing.T) {
	seq := runSplit(t, 1)
	if len(seq.Samples) < 20 {
		t.Fatalf("too few samples for a meaningful comparison: %d", len(seq.Samples))
	}
	if seq.Windows < 2 {
		t.Fatalf("expected multiple synchronization windows, got %d", seq.Windows)
	}
	if seq.Metrics == "" || len(seq.Spans) == 0 {
		t.Fatalf("observability state empty: metrics=%d bytes, spans=%d", len(seq.Metrics), len(seq.Spans))
	}
	for i := 1; i < len(seq.Samples); i++ {
		if seq.Samples[i].Seq <= seq.Samples[i-1].Seq {
			t.Fatalf("delivered sequence not monotonic at %d: %+v", i, seq.Samples[i-1:i+1])
		}
	}
	for _, w := range []int{2, 4} {
		got := runSplit(t, w)
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("split rig with %d workers diverged from sequential:\nseq: sent=%d recv=%d samples=%d windows=%d\ngot: sent=%d recv=%d samples=%d windows=%d",
				w, seq.Sent, seq.Received, len(seq.Samples), seq.Windows,
				got.Sent, got.Received, len(got.Samples), got.Windows)
		}
	}
}

// TestSplitRigMatchesPaperOrdering sanity-checks the split topology is a
// working PRISM testbed, not just a deterministic one: under background
// load, sync must beat vanilla on the wire-split rig too.
func TestSplitRigMatchesPaperOrdering(t *testing.T) {
	p := quickParams()
	vanHist, _, _ := SplitLatencyUnderLoad(p, prio.ModeVanilla, p.BGRate, 2)
	syncHist, _, _ := SplitLatencyUnderLoad(p, prio.ModeSync, p.BGRate, 2)
	van, sync := vanHist.Summarize(), syncHist.Summarize()
	if van.Count == 0 || sync.Count == 0 {
		t.Fatalf("no samples: vanilla=%d sync=%d", van.Count, sync.Count)
	}
	if sync.Mean >= van.Mean {
		t.Errorf("PRISM-sync mean %v not below vanilla %v on split rig", sync.Mean, van.Mean)
	}
	if sync.P99 >= van.P99 {
		t.Errorf("PRISM-sync p99 %v not below vanilla %v on split rig", sync.P99, van.P99)
	}
}

// rssObs is one RSS-split run's observable state: per-queue delivered
// sequences, the shard-local observations merged with the stats helpers
// (the aggregate view a sequential single-host run reports directly), and
// the observability state merged with the obs helpers — the rendered
// exposition of the merged registry and the merged span stream.
type rssObs struct {
	Samples   [][]sample
	MergedCDF []stats.CDFPoint
	AggCount  uint64
	AggKpps   float64
	Metrics   string
	Spans     []obs.Event
}

// steeredSrc probes client source ports until the flow (src → ctr:port)
// RSS-hashes onto queue q, mirroring scalingCollision's probing.
func steeredSrc(t *testing.T, r *testbed.Testbed, ctr *overlay.Container, port uint16, q, idx int) overlay.RemoteEndpoint {
	t.Helper()
	for i := 0; i < 256; i++ {
		cand := overlay.ClientContainer(idx, uint16(43000+i))
		if r.QueueFor(overlay.EncapToServer(cand, ctr, port, make([]byte, 64))) == q {
			return cand
		}
	}
	t.Fatalf("no source port found steering to queue %d", q)
	return overlay.RemoteEndpoint{}
}

func runRSSSplit(t *testing.T, workers int) rssObs {
	t.Helper()
	p := detParams()
	const queues = 2
	r := NewTestbed(p, prio.ModeSync, testbed.RSSSplit, WithQueues(queues))

	o := rssObs{Samples: make([][]sample, queues)}
	pps := make([]*traffic.PingPong, queues)
	counters := make([]*stats.RateCounter, queues)
	for q := 0; q < queues; q++ {
		host := r.Hosts[q]
		hi := host.AddContainer("hi-srv")
		bg := host.AddContainer("bg-srv")
		host.DB.Add(prio.Rule{IP: hi.IP, Port: PortHighPrio})

		hiSrc := steeredSrc(t, r, hi, PortHighPrio, q, 50+2*q)
		pp := traffic.NewPingPong(r.ClientShard.Eng, host, hi, hiSrc, PortHighPrio, p.HighRate)
		pp.Warmup = p.Warmup
		pp.Inject = r.Inject(q)
		qq := q
		pp.OnSample = func(seq uint64, lat sim.Time) {
			o.Samples[qq] = append(o.Samples[qq], sample{seq, lat})
		}
		mustNoErr(pp.InstallEcho(p.EchoCost))
		pp.Start(r.Client, 0)
		pps[q] = pp

		bgSrc := steeredSrc(t, r, bg, PortBackgrnd, q, 51+2*q)
		fl := traffic.NewUDPFlood(r.ClientShard.Eng, host, bg, bgSrc, PortBackgrnd, p.BGRate/4)
		fl.Burst = p.BGBurst
		fl.Poisson = false
		fl.JitterFrac = 0.25
		fl.Inject = r.Inject(q)
		counters[q] = stats.NewRateCounter("q")
		fl.Delivered = counters[q]
		mustNoErr(fl.InstallSink(p.SinkCost))
		fl.Start(0)

		ctr := counters[q]
		host.Eng.At(p.Warmup, func() { ctr.Start(p.Warmup) })
	}

	if err := r.Run(p.Warmup, p.Duration, workers); err != nil {
		t.Fatalf("rss split run (workers=%d): %v", workers, err)
	}

	// Shard-local observations fold into the aggregate view via the merge
	// helpers: histograms by bucket, rate counters by count + window union,
	// metric registries by label set, span streams by (time, stream, seq).
	merged := stats.MergeHistograms(pps[0].Hist, pps[1].Hist)
	o.MergedCDF = merged.CDF()
	agg := stats.NewRateCounter("agg")
	for _, c := range counters {
		agg.Merge(c)
	}
	o.AggCount = agg.Count()
	o.AggKpps = agg.Kpps(r.Hosts[0].Eng.Now())
	o.Metrics = obs.PrometheusText(obs.MergeRegistries(r.Pipes[0].M, r.Pipes[1].M))
	o.Spans = obs.MergeEvents(r.Pipes[0].T.Events(), r.Pipes[1].T.Events())
	return o
}

// TestRSSSplitDeterministicAcrossWorkers is the RSS half of the ISSUE's
// determinism regression: the per-RX-queue sharded topology must deliver
// identical per-flow sequences and identical merged histogram buckets
// sequentially and with 2/4 workers.
func TestRSSSplitDeterministicAcrossWorkers(t *testing.T) {
	seq := runRSSSplit(t, 1)
	for q, s := range seq.Samples {
		if len(s) < 20 {
			t.Fatalf("queue %d: too few samples: %d", q, len(s))
		}
	}
	if seq.AggCount == 0 {
		t.Fatal("no background deliveries recorded")
	}
	if seq.Metrics == "" || len(seq.Spans) == 0 {
		t.Fatalf("observability state empty: metrics=%d bytes, spans=%d", len(seq.Metrics), len(seq.Spans))
	}
	for _, w := range []int{2, 4} {
		got := runRSSSplit(t, w)
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("RSS split with %d workers diverged from sequential:\nseq: agg=%d kpps=%.3f q0=%d q1=%d\ngot: agg=%d kpps=%.3f q0=%d q1=%d",
				w, seq.AggCount, seq.AggKpps, len(seq.Samples[0]), len(seq.Samples[1]),
				got.AggCount, got.AggKpps, len(got.Samples[0]), len(got.Samples[1]))
		}
	}
}
