package experiments

import (
	"fmt"
	"strings"

	"prism/internal/par"
	"prism/internal/prio"
	"prism/internal/stats"
)

// Fig9Row is one mode's high-priority latency under background load.
type Fig9Row struct {
	Mode    prio.Mode
	Busy    stats.Summary
	BusyCDF []stats.CDFPoint
	// Kernel is the server-side in-kernel residence (ring→socket) of the
	// same requests — the path segment PRISM modifies. The sockperf-style
	// Busy numbers include client-side and reverse-path constants that
	// dilute relative improvements; Kernel shows the undiluted effect.
	Kernel stats.Summary
	Util   float64
}

// Fig9Result reproduces Fig. 9 (overlay) and, with Host=true, Fig. 10
// (host network): per-packet latency of a 1 kpps high-priority flow
// against ~300 kpps low-priority background on one processing core. Paper:
// on the overlay, PRISM-sync cuts average and tail by ~50% vs vanilla and
// PRISM-batch lands between (better on average than tail); on the host
// network all modes are equal (stage-1 limitation).
type Fig9Result struct {
	Host bool
	// Idle is the dashed reference line: vanilla, no background.
	Idle    stats.Summary
	IdleCDF []stats.CDFPoint
	Rows    []Fig9Row
}

// Fig9 runs the overlay priority-differentiation experiment.
func Fig9(p Params) Fig9Result { return prioritize(p, true) }

// Fig10 runs the same experiment on the host network.
func Fig10(p Params) Fig9Result { return prioritize(p, false) }

func prioritize(p Params, overlayPath bool) Fig9Result {
	// Four independent measurement points — the idle reference plus one
	// busy run per mode — each on its own engine, so they fan out over
	// p.Workers without any point's result changing (the determinism
	// regression test asserts bit-identical output for every worker
	// count).
	res := Fig9Result{
		Host: !overlayPath,
		Rows: make([]Fig9Row, len(Modes)),
	}
	par.ForEach(len(Modes)+1, p.Workers, func(i int) {
		if i == 0 {
			idleHist, _, _ := latencyUnderLoad(p, prio.ModeVanilla, 0, overlayPath)
			res.Idle = idleHist.Summarize()
			res.IdleCDF = idleHist.CDF()
			return
		}
		mode := Modes[i-1]
		hist, pp, util := latencyUnderLoad(p, mode, p.BGRate, overlayPath)
		res.Rows[i-1] = Fig9Row{
			Mode:    mode,
			Busy:    hist.Summarize(),
			BusyCDF: hist.CDF(),
			Kernel:  pp.KernelHist.Summarize(),
			Util:    util,
		}
	})
	return res
}

// Improvement returns 1 - mode/vanilla for the given quantile accessor on
// the sockperf-style measured latency.
func (r Fig9Result) Improvement(mode prio.Mode, get func(stats.Summary) float64) float64 {
	return r.improvement(mode, get, func(row Fig9Row) stats.Summary { return row.Busy })
}

// KernelImprovement is Improvement on the in-kernel residence.
func (r Fig9Result) KernelImprovement(mode prio.Mode, get func(stats.Summary) float64) float64 {
	return r.improvement(mode, get, func(row Fig9Row) stats.Summary { return row.Kernel })
}

func (r Fig9Result) improvement(mode prio.Mode, get func(stats.Summary) float64, sel func(Fig9Row) stats.Summary) float64 {
	var vanilla, m float64
	for _, row := range r.Rows {
		v := get(sel(row))
		if row.Mode == prio.ModeVanilla {
			vanilla = v
		}
		if row.Mode == mode {
			m = v
		}
	}
	if vanilla == 0 {
		return 0
	}
	return 1 - m/vanilla
}

// MeanOf and P99Of are Improvement accessors.
func MeanOf(s stats.Summary) float64 { return float64(s.Mean) }

// P99Of returns the tail latency.
func P99Of(s stats.Summary) float64 { return float64(s.P99) }

// String renders the table with improvements vs vanilla.
func (r Fig9Result) String() string {
	var b strings.Builder
	name, paper := "Fig. 9 — overlay", "paper: sync cuts avg & p99 ~50%"
	if r.Host {
		name, paper = "Fig. 10 — host network", "paper: no improvement (stage-1 limitation)"
	}
	fmt.Fprintf(&b, "%s high-priority latency under background load (%s)\n", name, paper)
	fmt.Fprintf(&b, "  idle reference: %s\n", r.Idle)
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %6s %12s %12s %14s %14s\n",
		"mode", "min(µs)", "p50(µs)", "mean(µs)", "p99(µs)", "util",
		"avg-vs-van", "p99-vs-van", "kern-avg-cut", "kern-p99-cut")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10.1f %10.1f %10.1f %10.1f %5.0f%% %11.0f%% %11.0f%% %13.0f%% %13.0f%%\n",
			row.Mode, row.Busy.Min.Micros(), row.Busy.P50.Micros(), row.Busy.Mean.Micros(),
			row.Busy.P99.Micros(), 100*row.Util,
			100*r.Improvement(row.Mode, MeanOf), 100*r.Improvement(row.Mode, P99Of),
			100*r.KernelImprovement(row.Mode, MeanOf), 100*r.KernelImprovement(row.Mode, P99Of))
	}
	return b.String()
}
