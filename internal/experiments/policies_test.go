package experiments

import (
	"reflect"
	"testing"

	"prism/internal/prio"
)

// TestPoliciesAblationLadder runs the full default variant ladder — which
// drives every registered policy, including the ablation-only headonly
// and dualq, through the unified softirq runtime — and checks the
// qualitative ordering the paper's mechanism decomposition predicts: each
// PRISM mechanism alone improves on vanilla, and the combined engine
// improves on either mechanism alone.
func TestPoliciesAblationLadder(t *testing.T) {
	p := quickParams()
	res := Policies(p, nil)
	if len(res.Rows) != len(PolicyVariants) {
		t.Fatalf("expected %d rows, got %d", len(PolicyVariants), len(res.Rows))
	}
	mean := map[string]float64{}
	for _, row := range res.Rows {
		if row.Busy.Count == 0 {
			t.Fatalf("%s: empty histogram", row.Variant.Label())
		}
		mean[row.Variant.Label()] = float64(row.Busy.Mean)
	}
	van := mean["vanilla"]
	for _, abl := range []string{"dualq", "headonly"} {
		if mean[abl] >= van {
			t.Errorf("%s mean %.0f not better than vanilla %.0f", abl, mean[abl], van)
		}
		for _, full := range []string{"prism-batch", "prism-sync"} {
			if mean[full] >= mean[abl] {
				t.Errorf("%s mean %.0f not better than ablation %s %.0f",
					full, mean[full], abl, mean[abl])
			}
		}
	}
}

// TestPoliciesParallelDeterministic: the ladder fans out over workers, so
// it must be bit-identical for any worker count.
func TestPoliciesParallelDeterministic(t *testing.T) {
	run := func(workers int) PoliciesResult {
		p := detParams()
		p.Workers = workers
		return Policies(p, nil)
	}
	seq := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); !reflect.DeepEqual(seq, got) {
			t.Errorf("Policies with %d workers diverged from sequential", w)
		}
	}
}

// TestPolicyByName covers the -policy flag mapping.
func TestPolicyByName(t *testing.T) {
	if got := PolicyByName("all"); got != nil {
		t.Errorf("all should map to the default ladder (nil), got %v", got)
	}
	if got := PolicyByName("prism"); len(got) != 2 ||
		got[0].Mode != prio.ModeBatch || got[1].Mode != prio.ModeSync {
		t.Errorf("prism should expand to batch+sync, got %v", got)
	}
	if got := PolicyByName("vanilla"); len(got) != 1 || got[0].Mode != prio.ModeVanilla {
		t.Errorf("vanilla should run under ModeVanilla, got %v", got)
	}
	if got := PolicyByName("headonly"); len(got) != 1 || got[0].Mode != prio.ModeBatch {
		t.Errorf("headonly should run under ModeBatch, got %v", got)
	}
}
