package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"prism/internal/cluster"
)

const failoverGoldenPath = "testdata/failover_golden.json"

// The failover fixture runs the kill-and-recover grid — 8 hosts, 200
// containers, host 2 killed mid-run, all three placement policies — and
// must be bit-identical at 1, 2 and 4 workers (the CI
// failover-determinism job re-derives the committed digests).
func failoverCapture(workers int) FailoverResult {
	p := detParams()
	p.Workers = workers
	return Failover(p, DefaultFailoverConfig())
}

// TestFailoverGolden pins the recovery timeline bit-for-bit: the phase
// latency summaries, detection latency, migration counts, epoch version
// and the merged metrics/span digests must match the committed fixture
// for every worker count. Regenerate with:
//
//	go test ./internal/experiments -run TestFailoverGolden -update-golden
func TestFailoverGolden(t *testing.T) {
	got := failoverCapture(1)

	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(failoverGoldenPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(failoverGoldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("failover golden fixture rewritten: %s", failoverGoldenPath)
		return
	}

	raw, err := os.ReadFile(failoverGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want FailoverResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	check := func(name string, gotR FailoverResult) {
		w, g := mustJSON(t, want), mustJSON(t, gotR)
		if string(w) != string(g) {
			t.Errorf("%s diverged from failover golden fixture\nwant: %s\ngot:  %s", name, w, g)
		}
	}
	check("workers=1", got)
	for _, w := range []int{2, 4} {
		check("workers="+string(rune('0'+w)), failoverCapture(w))
	}
}

// TestFailoverGoldenHasSignal guards the fixture's reach: every
// placement row must show a real detection, a full migration of the
// victim's containers, exactly one epoch swap, frames absorbed at the
// crashed wire — and the recovered high-priority tail within 10% of the
// pre-crash tail (the acceptance bound), so the golden cannot pin a run
// where recovery silently failed.
func TestFailoverGoldenHasSignal(t *testing.T) {
	raw, err := os.ReadFile(failoverGoldenPath)
	if err != nil {
		t.Skipf("failover golden fixture not captured yet: %v", err)
	}
	var want FailoverResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(want.Rows) != len(cluster.Placements) {
		t.Fatalf("fixture has %d rows, want one per placement", len(want.Rows))
	}
	for _, row := range want.Rows {
		if row.Detections != 1 {
			t.Errorf("%s: %d detections, want exactly the scripted crash", row.Placement, row.Detections)
		}
		if row.DetectLat <= 0 {
			t.Errorf("%s: non-positive detection latency %v", row.Placement, row.DetectLat)
		}
		if row.Migrated == 0 {
			t.Errorf("%s: no containers migrated off the dead host", row.Placement)
		}
		if row.SnapVersion != 2 {
			t.Errorf("%s: routing epoch %d, want exactly one swap", row.Placement, row.SnapVersion)
		}
		if row.CrashRx == 0 {
			t.Errorf("%s: nothing absorbed at the crashed host's wire", row.Placement)
		}
		if row.HiBefore.Count == 0 || row.HiDuring.Count == 0 || row.HiAfter.Count == 0 {
			t.Errorf("%s: empty high-priority phase: %+v", row.Placement, row)
		}
		// The acceptance bound: recovered hi-prio p99 within 10% of the
		// pre-crash p99.
		if limit := row.HiBefore.P99 + row.HiBefore.P99/10; row.HiAfter.P99 > limit {
			t.Errorf("%s: recovered hi p99 %v exceeds 110%% of pre-crash %v",
				row.Placement, row.HiAfter.P99, row.HiBefore.P99)
		}
		if len(row.MetricsSHA) != 64 || len(row.SpansSHA) != 64 {
			t.Errorf("%s: truncated digests", row.Placement)
		}
	}
}

// TestFailoverSeedDeterministic reruns one placement point twice with
// the same seed and demands divergent span streams for different seeds.
func TestFailoverSeedDeterministic(t *testing.T) {
	p := detParams()
	fc := FailoverConfig{Hosts: 4, Containers: 48,
		Placements: []cluster.Placement{cluster.PlaceSpread}, CrashHost: 1}
	a := Failover(p, fc)
	b := Failover(p, fc)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	p.Seed = 7
	c := Failover(p, fc)
	if a.Rows[0].SpansSHA == c.Rows[0].SpansSHA {
		t.Fatal("different seeds produced identical span streams")
	}
}
