// Package stats provides the measurement machinery used by every
// experiment: a log-bucketed latency histogram (in the spirit of
// HdrHistogram), percentile and CDF extraction, and rate counters.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"prism/internal/sim"
)

// Histogram records int64 nanosecond values with bounded relative error.
//
// Values are bucketed as (exponent, mantissa-slot): each power-of-two range
// is split into subBuckets linear slots, giving a worst-case relative
// quantile error of 1/subBuckets (~0.8% with the default 128). The zero
// value is NOT ready to use; call NewHistogram.
type Histogram struct {
	counts     []uint64
	subBuckets int
	subShift   uint // log2(subBuckets)
	count      uint64
	sum        float64
	min        int64
	max        int64
}

const defaultSubBuckets = 128

// NewHistogram returns an empty histogram able to record values in
// [0, 2^62) nanoseconds.
func NewHistogram() *Histogram {
	sb := defaultSubBuckets
	shift := uint(bits.Len64(uint64(sb)) - 1)
	// 64 exponent ranges x subBuckets slots is more than enough for any
	// latency this simulator can produce; ~64 KiB per histogram.
	return &Histogram{
		counts:     make([]uint64, 64*sb),
		subBuckets: sb,
		subShift:   shift,
		min:        math.MaxInt64,
		max:        -1,
	}
}

// bucketIndex maps a non-negative value to its bucket.
func (h *Histogram) bucketIndex(v int64) int {
	if v < int64(h.subBuckets) {
		return int(v)
	}
	u := uint64(v)
	exp := bits.Len64(u) - int(h.subShift) - 1 // how far above the linear range
	slot := int(u >> uint(exp))                // in [subBuckets, 2*subBuckets)
	return exp*h.subBuckets + slot
}

// bucketLow returns the smallest value mapping to bucket i.
func (h *Histogram) bucketLow(i int) int64 {
	if i < h.subBuckets {
		return int64(i)
	}
	exp := i/h.subBuckets - 1
	slot := i - exp*h.subBuckets // in [subBuckets, 2*subBuckets)
	return int64(slot) << uint(exp)
}

// Record adds one observation. Negative values are clamped to zero: they
// can only arise from model bugs, and the invariant tests catch those
// separately.
func (h *Histogram) Record(v sim.Time) {
	n := int64(v)
	if n < 0 {
		n = 0
	}
	h.counts[h.bucketIndex(n)]++
	h.count++
	h.sum += float64(n)
	if n < h.min {
		h.min = n
	}
	if n > h.max {
		h.max = n
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of recorded values in nanoseconds; exporters
// (Prometheus summaries) need it alongside Count.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() sim.Time {
	if h.count == 0 {
		return 0
	}
	return sim.Time(h.min)
}

// Max returns an upper bound of the largest recorded value (exact to bucket
// resolution), or 0 if empty.
func (h *Histogram) Max() sim.Time {
	if h.count == 0 {
		return 0
	}
	return sim.Time(h.max)
}

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.count))
}

// Quantile returns the value at quantile q in [0,1]. For q=0 it returns
// Min; for q=1 it returns Max. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := h.bucketLow(i)
			// Clamp to the exact observed range so quantiles are monotone
			// with the exact Min/Max endpoints.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return sim.Time(v)
		}
	}
	return sim.Time(h.max)
}

// Percentile returns the value at percentile p on the 0–100 scale the
// paper's tables use: Percentile(0) is the exact Min, Percentile(100) the
// exact Max, and out-of-range p is clamped to those endpoints. An empty
// histogram returns 0 for every p.
func (h *Histogram) Percentile(p float64) sim.Time {
	return h.Quantile(p / 100)
}

// Median is Quantile(0.5).
func (h *Histogram) Median() sim.Time { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() sim.Time { return h.Quantile(0.99) }

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value    sim.Time // latency
	Fraction float64  // cumulative fraction of observations <= Value
}

// CDF returns the cumulative distribution with one point per non-empty
// bucket, suitable for plotting Fig. 3/9/10-style curves.
func (h *Histogram) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	pts := make([]CDFPoint, 0, 64)
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		pts = append(pts, CDFPoint{
			Value:    sim.Time(h.bucketLow(i)),
			Fraction: float64(seen) / float64(h.count),
		})
	}
	return pts
}

// Merge adds all observations of other into h. The two histograms must
// share the same geometry (they do unless constructed differently).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if other.subBuckets != h.subBuckets {
		panic("stats: merging histograms with different geometry")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// MergeHistograms combines shard-local histograms into a fresh one,
// folding them in slice order. Bucket counts are order-independent, but
// taking shards in ID order keeps the operation deterministic by
// construction, matching the merge discipline of every other recorder
// under sharding (see internal/par).
func MergeHistograms(hs ...*Histogram) *Histogram {
	out := NewHistogram()
	for _, h := range hs {
		out.Merge(h)
	}
	return out
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = -1
}

// Summary is a compact set of the statistics the paper reports.
type Summary struct {
	Count          uint64
	Min, Mean, Max sim.Time
	P50, P90, P99  sim.Time
	P999           sim.Time
}

// Summarize extracts a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.count,
		Min:   h.Min(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// String renders the summary as a single human-readable line in µs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1fµs p50=%.1fµs mean=%.1fµs p90=%.1fµs p99=%.1fµs p99.9=%.1fµs max=%.1fµs",
		s.Count, s.Min.Micros(), s.P50.Micros(), s.Mean.Micros(),
		s.P90.Micros(), s.P99.Micros(), s.P999.Micros(), s.Max.Micros())
}

// FormatCDF renders a CDF as "value_us fraction" lines, the format the
// plotting pipeline and EXPERIMENTS.md tables consume.
func FormatCDF(pts []CDFPoint) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%.2f\t%.6f\n", p.Value.Micros(), p.Fraction)
	}
	return b.String()
}

// QuantileOfSorted returns the q-quantile of a sorted slice using nearest
// rank. It is the exact counterpart of Histogram.Quantile for tests.
func QuantileOfSorted(sorted []sim.Time, q float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// SortTimes sorts a slice of times ascending (helper for exact-quantile
// comparisons in tests).
func SortTimes(ts []sim.Time) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}
