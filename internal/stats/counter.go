package stats

import (
	"fmt"

	"prism/internal/sim"
)

// RateCounter accumulates discrete events (packets, requests, bytes) and
// reports rates over the window between Start and the last observation.
type RateCounter struct {
	name    string
	count   uint64
	bytes   uint64
	started bool
	start   sim.Time
	last    sim.Time
}

// NewRateCounter returns a named counter.
func NewRateCounter(name string) *RateCounter {
	return &RateCounter{name: name}
}

// Start marks the beginning of the measurement window. Observations before
// Start are counted from time zero.
func (c *RateCounter) Start(now sim.Time) {
	c.started = true
	c.start = now
	c.last = now
}

// Add records n events carrying total b bytes at virtual time now. If
// Start was never called, the measurement window implicitly starts at
// the first observation's timestamp — not at time zero — so rates over a
// counter that was never explicitly started reflect the observed span,
// not the full simulation.
func (c *RateCounter) Add(now sim.Time, n int, b int) {
	if !c.started {
		c.Start(now)
	}
	c.count += uint64(n)
	c.bytes += uint64(b)
	if now > c.last {
		c.last = now
	}
}

// Count returns the number of recorded events.
func (c *RateCounter) Count() uint64 { return c.count }

// Bytes returns the total recorded bytes.
func (c *RateCounter) Bytes() uint64 { return c.bytes }

// window returns the elapsed measurement window, at least 1ns to avoid
// division by zero.
func (c *RateCounter) window(now sim.Time) sim.Time {
	w := now - c.start
	if w < 1 {
		w = 1
	}
	return w
}

// PerSecond returns events/sec over [start, now].
func (c *RateCounter) PerSecond(now sim.Time) float64 {
	return float64(c.count) / c.window(now).Seconds()
}

// Kpps returns thousands of events per second, the unit of the paper's
// throughput figures.
func (c *RateCounter) Kpps(now sim.Time) float64 {
	return c.PerSecond(now) / 1e3
}

// Gbps returns gigabits per second of recorded bytes.
func (c *RateCounter) Gbps(now sim.Time) float64 {
	return float64(c.bytes) * 8 / 1e9 / c.window(now).Seconds()
}

// Merge folds other's observations into c: counts and bytes add, the
// measurement window becomes the union of the two windows. Shard-local
// counters (one per RX-queue shard, say) merge into the aggregate the
// sequential run would have produced; merge in shard ID order to keep the
// operation deterministic by construction.
func (c *RateCounter) Merge(other *RateCounter) {
	if other == nil || (other.count == 0 && other.bytes == 0 && !other.started) {
		return
	}
	c.count += other.count
	c.bytes += other.bytes
	if !c.started {
		c.started = other.started
		c.start = other.start
		c.last = other.last
		return
	}
	if other.started && other.start < c.start {
		c.start = other.start
	}
	if other.last > c.last {
		c.last = other.last
	}
}

// String renders the counter at the last observed time.
func (c *RateCounter) String() string {
	return fmt.Sprintf("%s: %d events (%.1f kpps), %d bytes (%.2f Gbps)",
		c.name, c.count, c.Kpps(c.last), c.bytes, c.Gbps(c.last))
}
