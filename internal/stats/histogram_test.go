package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"prism/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram stats not all zero")
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	if h.CDF() != nil {
		t.Error("empty histogram CDF != nil")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(42)
	if h.Count() != 1 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 42 || h.Max() != 42 || h.Mean() != 42 {
		t.Errorf("min/max/mean = %v/%v/%v, want 42", h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if h.Quantile(q) != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", q, h.Quantile(q))
		}
	}
}

func TestHistogramPercentile(t *testing.T) {
	scale := NewHistogram()
	for i := 1; i <= 100; i++ {
		scale.Record(sim.Time(i))
	}
	single := NewHistogram()
	single.Record(42)

	tests := []struct {
		name string
		h    *Histogram
		p    float64
		want sim.Time
	}{
		{"empty returns zero", NewHistogram(), 50, 0},
		{"empty min", NewHistogram(), 0, 0},
		{"empty max", NewHistogram(), 100, 0},
		{"zero is exact min", scale, 0, 1},
		{"hundred is exact max", scale, 100, 100},
		{"median nearest rank", scale, 50, 50},
		{"p99", scale, 99, 99},
		{"below range clamps to min", scale, -5, 1},
		{"above range clamps to max", scale, 150, 100},
		{"single value any p", single, 73, 42},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.h.Percentile(tc.p); got != tc.want {
				t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	// Values below subBuckets are recorded exactly.
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(sim.Time(i))
	}
	// Nearest-rank: median of 0..99 is the 50th smallest value, i.e. 49.
	if got := h.Quantile(0.5); got != 49 {
		t.Errorf("median = %v, want 49", got)
	}
	if got := h.Quantile(0.99); got != 98 {
		t.Errorf("p99 = %v, want 98", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Errorf("Min = %v, want 0", h.Min())
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	var exact []sim.Time
	r := sim.NewRNG(9)
	for i := 0; i < 50000; i++ {
		v := sim.Time(r.Intn(100_000_000)) // up to 100ms
		h.Record(v)
		exact = append(exact, v)
	}
	SortTimes(exact)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999} {
		want := QuantileOfSorted(exact, q)
		got := h.Quantile(q)
		if want == 0 {
			continue
		}
		relErr := math.Abs(float64(got-want)) / float64(want)
		if relErr > 0.01 {
			t.Errorf("q=%v: got %v want %v (rel err %.4f)", q, got, want, relErr)
		}
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		h := NewHistogram()
		for _, v := range raw {
			h.Record(sim.Time(v))
		}
		prev := sim.Time(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10; i++ {
		h.Record(sim.Time(i))
	}
	pts := h.CDF()
	if len(pts) != 10 {
		t.Fatalf("CDF has %d points, want 10", len(pts))
	}
	if pts[len(pts)-1].Fraction != 1.0 {
		t.Errorf("last CDF fraction = %v, want 1", pts[len(pts)-1].Fraction)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Fraction <= pts[i-1].Fraction || pts[i].Value <= pts[i-1].Value {
			t.Errorf("CDF not strictly increasing at %d", i)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(sim.Time(i))
		b.Record(sim.Time(i + 100))
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Errorf("Count = %d, want 200", a.Count())
	}
	if a.Min() != 0 || a.Max() != 199 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
	a.Merge(nil) // no-op
	if a.Count() != 200 {
		t.Error("Merge(nil) changed count")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear")
	}
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Error("histogram unusable after Reset")
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	s := h.Summarize()
	if s.Count != 1 {
		t.Errorf("Count = %d", s.Count)
	}
	str := s.String()
	if str == "" {
		t.Error("empty summary string")
	}
}

func TestFormatCDF(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	h.Record(2000)
	out := FormatCDF(h.CDF())
	if out == "" {
		t.Error("empty CDF output")
	}
}

func TestQuantileOfSortedEdges(t *testing.T) {
	if QuantileOfSorted(nil, 0.5) != 0 {
		t.Error("empty slice quantile != 0")
	}
	s := []sim.Time{10, 20, 30}
	if QuantileOfSorted(s, 0) != 10 || QuantileOfSorted(s, 1) != 30 {
		t.Error("edge quantiles wrong")
	}
	if QuantileOfSorted(s, 0.5) != 20 {
		t.Error("median wrong")
	}
}

func TestRateCounter(t *testing.T) {
	c := NewRateCounter("rx")
	c.Start(0)
	// 1000 packets of 100B over 10ms => 100 kpps, 0.08 Gbps
	for i := 0; i < 1000; i++ {
		c.Add(sim.Time(i)*10*sim.Microsecond, 1, 100)
	}
	now := 10 * sim.Millisecond
	if got := c.Kpps(now); math.Abs(got-100) > 1 {
		t.Errorf("Kpps = %v, want ~100", got)
	}
	if got := c.Gbps(now); math.Abs(got-0.08) > 0.001 {
		t.Errorf("Gbps = %v, want ~0.08", got)
	}
	if c.Count() != 1000 || c.Bytes() != 100000 {
		t.Errorf("count/bytes = %d/%d", c.Count(), c.Bytes())
	}
	if c.String() == "" {
		t.Error("empty string")
	}
}

func TestRateCounterAutoStart(t *testing.T) {
	// Add before Start opens the window at the first observation's
	// timestamp, not at time zero: 5 events at t=1s then 5 at t=2s is
	// 10 events over a 1s window.
	c := NewRateCounter("x")
	c.Add(sim.Second, 5, 0)
	c.Add(2*sim.Second, 5, 0)
	if got := c.PerSecond(2 * sim.Second); math.Abs(got-10) > 0.01 {
		t.Errorf("PerSecond = %v, want 10 (window starts at first Add)", got)
	}
}

func TestRateCounterNonMonotonic(t *testing.T) {
	// Merged shard streams can replay observations out of timestamp order.
	// Every event still counts, the window's start stays at the first
	// observation, and its end never regresses below the latest time seen.
	c := NewRateCounter("x")
	c.Add(2*sim.Second, 1, 0)
	c.Add(sim.Second, 1, 0) // out of order: must not move the window
	c.Add(3*sim.Second, 1, 0)
	if c.Count() != 3 {
		t.Fatalf("Count = %d, want 3", c.Count())
	}
	// Window is [2s, 3s]: 3 events over 1s.
	if got := c.PerSecond(3 * sim.Second); math.Abs(got-3) > 0.01 {
		t.Errorf("PerSecond = %v, want 3", got)
	}
	if v := c.PerSecond(2 * sim.Second); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("PerSecond with stale now = %v", v)
	}
}

func TestRateCounterZeroWindow(t *testing.T) {
	c := NewRateCounter("x")
	c.Start(100)
	c.Add(100, 1, 1)
	// Must not divide by zero.
	if v := c.PerSecond(100); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("PerSecond on zero window = %v", v)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(sim.Time(i % 1000000))
	}
}

func TestMergeHistogramsMatchesSingleRecorder(t *testing.T) {
	// Shard-local recording split across three histograms must merge to
	// exactly what one recorder would have seen.
	whole := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	rng := sim.NewRNG(9)
	for i := 0; i < 5000; i++ {
		v := sim.Time(rng.Intn(2_000_000))
		whole.Record(v)
		parts[i%3].Record(v)
	}
	merged := MergeHistograms(parts...)
	if !reflect.DeepEqual(merged.Summarize(), whole.Summarize()) {
		t.Errorf("merged summary %v != whole %v", merged.Summarize(), whole.Summarize())
	}
	if !reflect.DeepEqual(merged.CDF(), whole.CDF()) {
		t.Error("merged CDF bucket counts differ from single-recorder CDF")
	}
	// Merge order cannot matter for the contents.
	reversed := MergeHistograms(parts[2], parts[1], parts[0])
	if !reflect.DeepEqual(reversed.CDF(), merged.CDF()) {
		t.Error("merge is order-sensitive")
	}
}

func TestMergeHistogramsEmpty(t *testing.T) {
	m := MergeHistograms()
	if m.Count() != 0 {
		t.Errorf("empty merge count = %d", m.Count())
	}
	m = MergeHistograms(NewHistogram(), nil)
	if m.Count() != 0 {
		t.Errorf("merge with nil count = %d", m.Count())
	}
}

func TestRateCounterMerge(t *testing.T) {
	a := NewRateCounter("q0")
	a.Start(0)
	a.Add(10*sim.Millisecond, 100, 1000)
	b := NewRateCounter("q1")
	b.Start(5 * sim.Millisecond)
	b.Add(20*sim.Millisecond, 300, 3000)
	a.Merge(b)
	if a.Count() != 400 || a.Bytes() != 4000 {
		t.Errorf("count/bytes = %d/%d, want 400/4000", a.Count(), a.Bytes())
	}
	// Window is the union [0, 20ms]: 400 events over 20ms = 20 kpps.
	if got := a.Kpps(20 * sim.Millisecond); math.Abs(got-20) > 0.01 {
		t.Errorf("Kpps = %v, want 20", got)
	}
	// Merging into a never-started counter adopts the other's window.
	c := NewRateCounter("agg")
	c.Merge(b)
	if got := c.PerSecond(20 * sim.Millisecond); math.Abs(got-20000) > 1 {
		t.Errorf("PerSecond = %v, want 20000 (15ms window)", got)
	}
	c.Merge(nil) // no-op
	if c.Count() != 300 {
		t.Errorf("count after nil merge = %d", c.Count())
	}
}
