package obs

import (
	"bytes"
	"encoding/json"

	"prism/internal/sim"
)

// Sink consumes incremental observability output at virtual-time
// checkpoints. reg is a freshly merged registry snapshot the sink owns
// outright; delta is the merged stream of span/instant events recorded
// since the previous checkpoint. Implementations must not retain
// references into the pipelines — everything handed over is already
// copied or merged.
//
// Sink is the seam between deterministic collection and live export: the
// simulation side (testbed, cluster) decides *when* a checkpoint is safe
// (engine quiescent, or all par shards parked at a barrier) and drives a
// Streamer; the consumer side (internal/live) renders and serves without
// ever touching simulation state.
type Sink interface {
	Checkpoint(at sim.Time, reg *Registry, delta []Event)
}

// Streamer drains a fixed set of pipelines into a Sink incrementally.
// Each Checkpoint merges the pipelines' registries into a fresh snapshot
// (the same MergeRegistries path the end-of-run digests use) and drains
// each tracer from its cursor, so consecutive checkpoints see each event
// exactly once. Pass pipelines in shard ID order — MergeEvents breaks
// equal-time ties by stream index, and shard order is the discipline
// every other merge in the tree follows.
//
// Checkpoint must only be called while the pipelines are quiescent: from
// the engine's own goroutine (monolithic runs) or the par coordinator at
// a barrier (sharded runs). The Streamer itself is single-caller and
// lock-free; thread safety is the Sink's problem.
type Streamer struct {
	sink    Sink
	pipes   []*Pipeline
	cursors []uint64
}

// NewStreamer wires pipelines (in shard ID order) to sink. A nil sink or
// empty pipeline set yields a Streamer whose Checkpoint is a no-op.
func NewStreamer(sink Sink, pipes ...*Pipeline) *Streamer {
	return &Streamer{sink: sink, pipes: pipes, cursors: make([]uint64, len(pipes))}
}

// Checkpoint snapshots the pipelines as of virtual time at and hands the
// merged registry plus the event delta to the sink. Nil-safe.
func (s *Streamer) Checkpoint(at sim.Time) {
	if s == nil || s.sink == nil || len(s.pipes) == 0 {
		return
	}
	regs := make([]*Registry, len(s.pipes))
	deltas := make([][]Event, len(s.pipes))
	for i, p := range s.pipes {
		regs[i] = p.M
		deltas[i] = p.T.EventsSince(s.cursors[i])
		s.cursors[i] = p.T.Total()
	}
	s.sink.Checkpoint(at, MergeRegistries(regs...), MergeEvents(deltas...))
}

// ChromeStream renders event deltas as newline-delimited Chrome trace
// events — the incremental counterpart of ChromeTrace. Each Append call
// emits one JSON object per line: process/thread metadata rows the first
// time a process or device appears, then one event per lifecycle record.
// Thread IDs are assigned in first-appearance order, which is
// deterministic because the event delta stream itself is.
type ChromeStream struct {
	name string
	pid  int
	meta bool
	tids map[string]int
}

// NewChromeStream returns a stream whose process row carries name.
func NewChromeStream(name string) *ChromeStream {
	return &ChromeStream{name: name, pid: 1, tids: make(map[string]int)}
}

// Append encodes events (plus any newly needed metadata rows) as NDJSON
// into buf.
func (cs *ChromeStream) Append(buf *bytes.Buffer, events []Event) error {
	enc := json.NewEncoder(buf)
	if !cs.meta {
		cs.meta = true
		if err := enc.Encode(chromeEvent{
			Name: "process_name", Ph: "M", Pid: cs.pid, Tid: 0,
			Args: map[string]any{"name": cs.name},
		}); err != nil {
			return err
		}
	}
	for _, ev := range events {
		tid, ok := cs.tids[ev.Device]
		if !ok {
			tid = len(cs.tids) + 1
			cs.tids[ev.Device] = tid
			if err := enc.Encode(chromeEvent{
				Name: "thread_name", Ph: "M", Pid: cs.pid, Tid: tid,
				Args: map[string]any{"name": ev.Device},
			}); err != nil {
				return err
			}
		}
		if err := enc.Encode(chromeEventFor(ev, cs.pid, tid)); err != nil {
			return err
		}
	}
	return nil
}
