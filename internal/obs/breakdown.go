package obs

import (
	"fmt"
	"strings"

	"prism/internal/stats"
)

// StageStat is one row of the per-stage latency decomposition: how long
// packets queued before a stage (Wait) and how long the stage's handler
// ran per packet (Service). It is the simulator's equivalent of the
// paper's Fig. 4/5 breakdown of where receive latency accumulates.
type StageStat struct {
	Stage   string
	Packets uint64
	Wait    stats.Summary
	Service stats.Summary
}

// StageBreakdown aggregates a registry's per-stage wait/service
// histograms across devices, priorities and shards into one row per
// pipeline stage, in pipeline order. Stages with no observations are
// omitted. Aggregation is histogram merging (per-bucket addition), so
// the result is deterministic and shard-count invariant.
func StageBreakdown(r *Registry) []StageStat { return StageBreakdownFilter(r, Labels{}) }

// StageBreakdownFilter is StageBreakdown restricted to histograms whose
// labels match the non-zero fields of filter — e.g. Labels{Priority: 1}
// decomposes only the high-priority flow's latency, the view the paper's
// Fig. 4/5 actually plots.
func StageBreakdownFilter(r *Registry, filter Labels) []StageStat {
	waits := make(map[string]*stats.Histogram)
	services := make(map[string]*stats.Histogram)
	r.EachHistogram(func(name string, l Labels, h *HistogramMetric) {
		if !matches(l, filter) {
			return
		}
		var dst map[string]*stats.Histogram
		switch name {
		case "prism_stage_wait_ns":
			dst = waits
		case "prism_stage_service_ns":
			dst = services
		default:
			return
		}
		agg, ok := dst[l.Stage]
		if !ok {
			agg = stats.NewHistogram()
			dst[l.Stage] = agg
		}
		agg.Merge(h.Hist())
	})
	var rows []StageStat
	for _, stage := range PipelineStages {
		w, s := waits[stage], services[stage]
		if w == nil && s == nil {
			continue
		}
		row := StageStat{Stage: stage}
		if s != nil {
			row.Service = s.Summarize()
			row.Packets = s.Count()
		}
		if w != nil {
			row.Wait = w.Summarize()
			if row.Packets == 0 {
				row.Packets = w.Count()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// E2ESummary returns the registry's end-to-end (ring→socket) latency
// summary, aggregated across priorities and shards.
func E2ESummary(r *Registry) stats.Summary { return E2ESummaryFilter(r, Labels{}) }

// E2ESummaryFilter is E2ESummary restricted to matching label sets.
func E2ESummaryFilter(r *Registry, filter Labels) stats.Summary {
	agg := stats.NewHistogram()
	r.EachHistogram(func(name string, l Labels, h *HistogramMetric) {
		if name == "prism_e2e_latency_ns" && matches(l, filter) {
			agg.Merge(h.Hist())
		}
	})
	return agg.Summarize()
}

// FormatBreakdown renders breakdown rows as the Fig. 4/5-style table:
//
//	stage    packets   wait µs (mean/p50/p99)   service µs (mean/p50/p99)
func FormatBreakdown(title string, rows []StageStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %10s %12s %12s %12s %12s %12s %12s\n",
		"stage", "packets",
		"wait-mean", "wait-p50", "wait-p99",
		"svc-mean", "svc-p50", "svc-p99")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10d %11.2fµ %11.2fµ %11.2fµ %11.2fµ %11.2fµ %11.2fµ\n",
			r.Stage, r.Packets,
			r.Wait.Mean.Micros(), r.Wait.P50.Micros(), r.Wait.P99.Micros(),
			r.Service.Mean.Micros(), r.Service.P50.Micros(), r.Service.P99.Micros())
	}
	return b.String()
}
