package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format, which defines exactly three escapes: backslash,
// double-quote, and line feed. Go's %q is close but not conformant — it
// also escapes tabs, control bytes, and non-ASCII runes, which a
// spec-compliant scraper would read back literally.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabels renders a label set in exposition syntax. Empty string
// labels are omitted; priority is always rendered (0 is the best-effort
// class, a real value).
func promLabels(l Labels, extra ...string) string {
	pair := func(name, value string) string {
		return name + `="` + escapeLabelValue(value) + `"`
	}
	parts := make([]string, 0, 4+len(extra)/2)
	if l.Device != "" {
		parts = append(parts, pair("device", l.Device))
	}
	parts = append(parts, pair("priority", fmt.Sprint(l.Priority)))
	if l.Shard != "" {
		parts = append(parts, pair("shard", l.Shard))
	}
	if l.Stage != "" {
		parts = append(parts, pair("stage", l.Stage))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, pair(extra[i], extra[i+1]))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4). Counters and gauges map directly; histograms
// are exposed as summaries (quantile series plus _sum and _count), the
// natural fit for the quantile-centric tables the paper reports. Output
// order is deterministic: metrics sort by name then labels.
func WritePrometheus(w io.Writer, r *Registry) error {
	var lastType string
	typeLine := func(name, kind string) error {
		if name == lastType {
			return nil
		}
		lastType = name
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		return err
	}
	for _, k := range r.sortedCounterKeys() {
		if err := typeLine(k.name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", k.name, promLabels(k.labels), r.counters[k].v); err != nil {
			return err
		}
	}
	lastType = ""
	for _, k := range r.sortedGaugeKeys() {
		if err := typeLine(k.name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %g\n", k.name, promLabels(k.labels), r.gauges[k].v); err != nil {
			return err
		}
	}
	lastType = ""
	for _, k := range r.sortedHistKeys() {
		if err := typeLine(k.name, "summary"); err != nil {
			return err
		}
		h := r.hists[k].h
		for _, q := range []struct {
			q string
			v float64
		}{
			{"0.5", float64(h.Quantile(0.5))},
			{"0.9", float64(h.Quantile(0.9))},
			{"0.99", float64(h.Quantile(0.99))},
		} {
			if _, err := fmt.Fprintf(w, "%s%s %g\n", k.name, promLabels(k.labels, "quantile", q.q), q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", k.name, promLabels(k.labels), h.Sum()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", k.name, promLabels(k.labels), h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusText renders the registry to a string.
func PrometheusText(r *Registry) string {
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// JSON metrics snapshot
// ---------------------------------------------------------------------------

// LabelSet is the JSON form of Labels.
type LabelSet struct {
	Device   string `json:"device,omitempty"`
	Stage    string `json:"stage,omitempty"`
	Shard    string `json:"shard,omitempty"`
	Priority int    `json:"priority"`
}

func toLabelSet(l Labels) LabelSet {
	return LabelSet{Device: l.Device, Stage: l.Stage, Shard: l.Shard, Priority: l.Priority}
}

// CounterSnapshot is one counter in a snapshot.
type CounterSnapshot struct {
	Name   string   `json:"name"`
	Labels LabelSet `json:"labels"`
	Value  uint64   `json:"value"`
}

// GaugeSnapshot is one gauge in a snapshot.
type GaugeSnapshot struct {
	Name   string   `json:"name"`
	Labels LabelSet `json:"labels"`
	Value  float64  `json:"value"`
}

// HistogramSnapshot is one histogram in a snapshot; times are integer
// nanoseconds of virtual time.
type HistogramSnapshot struct {
	Name   string   `json:"name"`
	Labels LabelSet `json:"labels"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum_ns"`
	Min    int64    `json:"min_ns"`
	Mean   int64    `json:"mean_ns"`
	P50    int64    `json:"p50_ns"`
	P90    int64    `json:"p90_ns"`
	P99    int64    `json:"p99_ns"`
	P999   int64    `json:"p999_ns"`
	Max    int64    `json:"max_ns"`
}

// MetricsSnapshot is the full JSON snapshot of a registry.
type MetricsSnapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot extracts a deterministic (sorted) snapshot of the registry.
func Snapshot(r *Registry) MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	for _, k := range r.sortedCounterKeys() {
		snap.Counters = append(snap.Counters, CounterSnapshot{
			Name: k.name, Labels: toLabelSet(k.labels), Value: r.counters[k].v,
		})
	}
	for _, k := range r.sortedGaugeKeys() {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{
			Name: k.name, Labels: toLabelSet(k.labels), Value: r.gauges[k].v,
		})
	}
	for _, k := range r.sortedHistKeys() {
		h := r.hists[k].h
		s := h.Summarize()
		snap.Histograms = append(snap.Histograms, HistogramSnapshot{
			Name: k.name, Labels: toLabelSet(k.labels),
			Count: s.Count, Sum: h.Sum(),
			Min: int64(s.Min), Mean: int64(s.Mean),
			P50: int64(s.P50), P90: int64(s.P90), P99: int64(s.P99), P999: int64(s.P999),
			Max: int64(s.Max),
		})
	}
	return snap
}

// MetricsJSON marshals the registry snapshot as indented JSON.
func MetricsJSON(r *Registry) ([]byte, error) {
	return json.MarshalIndent(Snapshot(r), "", "  ")
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON (chrome://tracing, Perfetto)
// ---------------------------------------------------------------------------

// TraceProcess groups one event stream under one "process" row of the
// trace viewer — one per engine run (mode or shard).
type TraceProcess struct {
	Name   string
	Events []Event
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeEventFor converts one lifecycle event to its trace-viewer form:
// spans become complete ("X") events, instants thread-scoped instant
// ("i") events. Timestamps are virtual-time microseconds.
func chromeEventFor(ev Event, pid, tid int) chromeEvent {
	ce := chromeEvent{
		Name: ev.Stage,
		Cat:  "lifecycle",
		Ts:   float64(ev.Start) / 1e3,
		Pid:  pid,
		Tid:  tid,
	}
	args := map[string]any{"priority": ev.Priority}
	if ev.Pkt != NoPacket {
		args["pkt"] = ev.Pkt
	}
	ce.Args = args
	if ev.Kind == KindSpan {
		ce.Ph = "X"
		ce.Cat = "stage"
		dur := float64(ev.Duration()) / 1e3
		ce.Dur = &dur
	} else {
		ce.Ph = "i"
		ce.S = "t"
	}
	return ce
}

// ChromeTrace renders event streams as Chrome trace-event JSON: spans
// become complete ("X") events, instants become thread-scoped instant
// ("i") events, each process (engine run) gets a process_name metadata
// row and each device a named thread row. Load the output in Perfetto or
// chrome://tracing. Timestamps are virtual-time microseconds.
func ChromeTrace(procs ...TraceProcess) ([]byte, error) {
	file := chromeTraceFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	for pi, proc := range procs {
		pid := pi + 1
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": proc.Name},
		})
		// Deterministic thread IDs: devices sorted by name.
		devSet := map[string]bool{}
		for _, ev := range proc.Events {
			devSet[ev.Device] = true
		}
		devs := make([]string, 0, len(devSet))
		for d := range devSet {
			devs = append(devs, d)
		}
		sort.Strings(devs)
		tids := make(map[string]int, len(devs))
		for i, d := range devs {
			tids[d] = i + 1
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
				Args: map[string]any{"name": d},
			})
		}
		events := append([]Event(nil), proc.Events...)
		sort.SliceStable(events, func(i, j int) bool {
			if events[i].Start != events[j].Start {
				return events[i].Start < events[j].Start
			}
			return events[i].Seq < events[j].Seq
		})
		for _, ev := range events {
			file.TraceEvents = append(file.TraceEvents, chromeEventFor(ev, pid, tids[ev.Device]))
		}
	}
	return json.MarshalIndent(file, "", " ")
}

// WriteChromeTrace writes the Chrome trace JSON to w.
func WriteChromeTrace(w io.Writer, procs ...TraceProcess) error {
	b, err := ChromeTrace(procs...)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
