package obs

import (
	"sort"

	"prism/internal/sim"
	"prism/internal/stats"
)

// Labels is the fixed label schema of every metric: the dimensions the
// paper's figures break results down by. Empty string / zero values are
// omitted from exports. A fixed struct (rather than a map) keeps lookups
// allocation-free on the hot path and makes label ordering deterministic
// by construction.
type Labels struct {
	Device   string
	Stage    string
	Shard    string
	Priority int
}

type metricKey struct {
	name   string
	labels Labels
}

// less orders keys for deterministic export: by name, then each label.
func (k metricKey) less(o metricKey) bool {
	if k.name != o.name {
		return k.name < o.name
	}
	if k.labels.Device != o.labels.Device {
		return k.labels.Device < o.labels.Device
	}
	if k.labels.Stage != o.labels.Stage {
		return k.labels.Stage < o.labels.Stage
	}
	if k.labels.Shard != o.labels.Shard {
		return k.labels.Shard < o.labels.Shard
	}
	return k.labels.Priority < o.labels.Priority
}

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time value (queue depth, utilization).
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// HistogramMetric is a labeled latency histogram; it generalizes
// stats.Histogram into the registry's label scheme.
type HistogramMetric struct{ h *stats.Histogram }

// Observe records one value.
func (m *HistogramMetric) Observe(v sim.Time) { m.h.Record(v) }

// Snapshot returns the underlying histogram's summary.
func (m *HistogramMetric) Snapshot() stats.Summary { return m.h.Summarize() }

// Hist exposes the underlying histogram (for CDF export and merging).
func (m *HistogramMetric) Hist() *stats.Histogram { return m.h }

// Registry is a labeled metrics registry: counters, gauges and
// histograms keyed by (name, labels). It is deliberately single-threaded
// — one registry per engine instance (shard), merged after the run —
// which is what makes parallel collection deterministic (see the package
// comment).
type Registry struct {
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*HistogramMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[metricKey]*HistogramMetric),
	}
}

// Counter returns (creating on first use) the counter for (name, labels).
func (r *Registry) Counter(name string, l Labels) *Counter {
	k := metricKey{name: name, labels: l}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for (name, labels).
func (r *Registry) Gauge(name string, l Labels) *Gauge {
	k := metricKey{name: name, labels: l}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram for
// (name, labels).
func (r *Registry) Histogram(name string, l Labels) *HistogramMetric {
	k := metricKey{name: name, labels: l}
	h, ok := r.hists[k]
	if !ok {
		h = &HistogramMetric{h: stats.NewHistogram()}
		r.hists[k] = h
	}
	return h
}

// Merge folds other into r: counters add, gauges take the maximum (the
// only commutative choice that preserves "peak observed" semantics),
// histograms merge per bucket. All three operations are commutative and
// associative, so the merged registry is identical for any merge order —
// but merge in shard ID order anyway, matching the discipline of every
// other recorder under sharding.
func (r *Registry) Merge(other *Registry) {
	if other == nil {
		return
	}
	for k, c := range other.counters {
		r.Counter(k.name, k.labels).Add(c.v)
	}
	for k, g := range other.gauges {
		dst := r.Gauge(k.name, k.labels)
		if g.v > dst.v {
			dst.v = g.v
		}
	}
	for k, h := range other.hists {
		r.Histogram(k.name, k.labels).h.Merge(h.h)
	}
}

// MergeRegistries combines shard-local registries into a fresh one,
// folding them in slice order.
func MergeRegistries(regs ...*Registry) *Registry {
	out := NewRegistry()
	for _, r := range regs {
		out.Merge(r)
	}
	return out
}

// sortedCounterKeys / sortedGaugeKeys / sortedHistKeys give exporters a
// deterministic iteration order over the underlying maps.
func (r *Registry) sortedCounterKeys() []metricKey {
	keys := make([]metricKey, 0, len(r.counters))
	for k := range r.counters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

func (r *Registry) sortedGaugeKeys() []metricKey {
	keys := make([]metricKey, 0, len(r.gauges))
	for k := range r.gauges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

func (r *Registry) sortedHistKeys() []metricKey {
	keys := make([]metricKey, 0, len(r.hists))
	for k := range r.hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// EachHistogram visits histograms in deterministic key order; breakdown
// reports use it to aggregate per-stage latency across devices.
func (r *Registry) EachHistogram(fn func(name string, l Labels, h *HistogramMetric)) {
	for _, k := range r.sortedHistKeys() {
		fn(k.name, k.labels, r.hists[k])
	}
}

// CounterValue sums every counter with the given name whose labels match
// the non-zero fields of filter (empty/zero filter fields match any).
func (r *Registry) CounterValue(name string, filter Labels) uint64 {
	var total uint64
	for k, c := range r.counters {
		if k.name != name || !matches(k.labels, filter) {
			continue
		}
		total += c.v
	}
	return total
}

func matches(l, f Labels) bool {
	if f.Device != "" && l.Device != f.Device {
		return false
	}
	if f.Stage != "" && l.Stage != f.Stage {
		return false
	}
	if f.Shard != "" && l.Shard != f.Shard {
		return false
	}
	if f.Priority != 0 && l.Priority != f.Priority {
		return false
	}
	return true
}
