// Package obs is the simulator's observability subsystem: per-packet
// lifecycle spans and a labeled metrics registry, with exporters to the
// formats real tooling consumes (Prometheus text exposition, JSON
// snapshots, Chrome trace-event JSON loadable in Perfetto).
//
// It is the in-simulator equivalent of the instrumentation the paper's
// evaluation rests on — the eBPF poll-order tables of Fig. 6, the
// per-stage latency decompositions behind Figs. 4–5, and the CPU-usage
// accounting of Figs. 10–13 — generalized so every layer of the receive
// pipeline (DMA ring → IRQ → NAPI poll → bridge forward → VXLAN decap →
// veth poll → socket deliver) reports into one place.
//
// # Collection model
//
// A Pipeline bundles one Tracer (bounded span stream) and one Registry
// (labeled counters/gauges/histograms) for one collection domain — a
// single engine instance: one host, one shard, or one mode run. All
// instrumentation points (internal/nic, internal/napi, internal/core,
// internal/bridge, internal/veth, internal/socket) hold an optional
// *Pipeline and are zero-cost when it is nil.
//
// # Determinism under sharding
//
// Collection is strictly shard-local: a Pipeline is only ever touched by
// the single goroutine running its engine, so no synchronization exists
// on the hot path. Aggregation happens after the run via Registry.Merge
// and MergeEvents, both deterministic: counter merge is addition,
// histogram merge is per-bucket addition (both order-independent), and
// event-stream merge sorts by the stable key (time, stream index,
// per-stream sequence). The parallel determinism regressions in
// internal/experiments assert metrics and span streams are bit-identical
// across 1/2/4 workers.
package obs

import (
	"sort"

	"prism/internal/sim"
)

// Canonical stage names, in pipeline order. They are the values of the
// "stage" metric label and the span names in trace exports.
const (
	StageDMA    = "dma"    // frame DMA'd into the RX descriptor ring
	StageIRQ    = "irq"    // hardware interrupt raised (device-level)
	StageNIC    = "nic"    // stage-1 driver poll, incl. VXLAN decap
	StageBridge = "bridge" // stage-2 bridge FDB forward
	StageVeth   = "veth"   // stage-3 backlog/veth poll
	StageSocket = "socket" // payload copied into the socket buffer
	StageGRO    = "gro"    // frame absorbed into a GRO super-SKB
	StageDrop   = "drop"   // packet discarded
	StageShed   = "shed"   // low-priority packet evicted by the overload policy
)

// PipelineStages lists the span-producing stages of the overlay receive
// path in order, for breakdown reports.
var PipelineStages = []string{StageNIC, StageBridge, StageVeth, StageSocket}

// NoPacket marks device-level events (IRQs) that have no packet identity.
const NoPacket = ^uint64(0)

// EventKind distinguishes point events from intervals.
type EventKind uint8

// Event kinds.
const (
	KindInstant EventKind = iota + 1
	KindSpan
)

// Event is one lifecycle observation: an instant (DMA, IRQ, deliver,
// drop) or a span (a stage processing a packet). Instants have
// Start == End.
type Event struct {
	// Seq is the per-tracer sequence number; MergeEvents uses it to break
	// equal-time ties within one stream.
	Seq      uint64
	Kind     EventKind
	Stage    string
	Device   string
	Pkt      uint64 // NoPacket for device-level events
	Priority int
	Start    sim.Time
	End      sim.Time
}

// Time returns the event's representative timestamp (span start).
func (e Event) Time() sim.Time { return e.Start }

// Duration returns the span length (zero for instants).
func (e Event) Duration() sim.Time { return e.End - e.Start }

// Pipeline is the per-engine-instance observability bundle: a Tracer for
// the span stream and a Registry for metrics, plus the per-packet cursor
// that turns lifecycle events into stage wait/service decompositions.
type Pipeline struct {
	// Shard labels every metric this pipeline records; it identifies the
	// collection domain (RSS shard, mode run) in merged exports.
	Shard string

	T *Tracer
	M *Registry

	// lastAt tracks, per in-flight packet, when its previous lifecycle
	// event completed; the gap to the next stage's start is that stage's
	// queue wait. Entries are removed at deliver/drop/absorb, so the map
	// is bounded by the number of packets in flight (itself bounded by
	// the device queue capacities).
	lastAt map[uint64]sim.Time
}

// NewPipeline returns a pipeline labeled with the given shard name, with
// a default-capacity tracer and an empty registry.
func NewPipeline(shard string) *Pipeline {
	return &Pipeline{
		Shard:  shard,
		T:      NewTracer(0),
		M:      NewRegistry(),
		lastAt: make(map[uint64]sim.Time),
	}
}

// DMA records a frame entering the RX descriptor ring. It opens the
// packet's lifecycle: the gap to the first stage span is the ring wait.
func (p *Pipeline) DMA(now sim.Time, dev string, pkt uint64, prio int) {
	p.T.add(Event{Kind: KindInstant, Stage: StageDMA, Device: dev, Pkt: pkt, Priority: prio, Start: now, End: now})
	p.M.Counter("prism_dma_frames_total", Labels{Device: dev, Stage: StageDMA, Shard: p.Shard}).Add(1)
	p.lastAt[pkt] = now
}

// IRQ records a hardware interrupt raised by a device.
func (p *Pipeline) IRQ(now sim.Time, dev string) {
	p.T.add(Event{Kind: KindInstant, Stage: StageIRQ, Device: dev, Pkt: NoPacket, Start: now, End: now})
	p.M.Counter("prism_irqs_total", Labels{Device: dev, Stage: StageIRQ, Shard: p.Shard}).Add(1)
}

// Span records one stage processing one packet over [start, end]. The
// wait histogram receives the gap since the packet's previous lifecycle
// event (its time queued before this stage); the service histogram
// receives the span length.
func (p *Pipeline) Span(dev, stage string, pkt uint64, prio int, start, end sim.Time) {
	p.T.add(Event{Kind: KindSpan, Stage: stage, Device: dev, Pkt: pkt, Priority: prio, Start: start, End: end})
	l := Labels{Device: dev, Stage: stage, Priority: prio, Shard: p.Shard}
	p.M.Counter("prism_stage_packets_total", l).Add(1)
	p.M.Histogram("prism_stage_service_ns", l).Observe(end - start)
	if last, ok := p.lastAt[pkt]; ok {
		p.M.Histogram("prism_stage_wait_ns", l).Observe(start - last)
	}
	p.lastAt[pkt] = end
}

// Deliver records the payload reaching a socket buffer at time now, and
// closes the packet's lifecycle. arrived is the packet's NIC-ring entry
// time; the difference feeds the end-to-end latency histogram.
func (p *Pipeline) Deliver(now sim.Time, dev string, pkt uint64, prio int, arrived sim.Time) {
	p.T.add(Event{Kind: KindInstant, Stage: StageSocket, Device: dev, Pkt: pkt, Priority: prio, Start: now, End: now})
	l := Labels{Device: dev, Stage: StageSocket, Priority: prio, Shard: p.Shard}
	p.M.Counter("prism_delivered_total", l).Add(1)
	if last, ok := p.lastAt[pkt]; ok {
		p.M.Histogram("prism_stage_wait_ns", l).Observe(now - last)
	}
	p.M.Histogram("prism_e2e_latency_ns", Labels{Priority: prio, Shard: p.Shard}).Observe(now - arrived)
	delete(p.lastAt, pkt)
}

// Drop records a packet discarded at a stage (handler verdict, queue
// overrun, rcvbuf overflow) and closes its lifecycle.
func (p *Pipeline) Drop(now sim.Time, dev, stage string, pkt uint64, prio int) {
	p.T.add(Event{Kind: KindInstant, Stage: StageDrop, Device: dev, Pkt: pkt, Priority: prio, Start: now, End: now})
	p.M.Counter("prism_dropped_total", Labels{Device: dev, Stage: stage, Priority: prio, Shard: p.Shard}).Add(1)
	delete(p.lastAt, pkt)
}

// Absorbed records a frame merged into an earlier SKB by GRO; the frame's
// own lifecycle ends here (the super-SKB carries on).
func (p *Pipeline) Absorbed(now sim.Time, dev string, pkt uint64, prio int) {
	p.T.add(Event{Kind: KindInstant, Stage: StageGRO, Device: dev, Pkt: pkt, Priority: prio, Start: now, End: now})
	p.M.Counter("prism_gro_absorbed_total", Labels{Device: dev, Stage: StageGRO, Shard: p.Shard}).Add(1)
	delete(p.lastAt, pkt)
}

// InFlight reports how many packets have an open lifecycle (diagnostic).
func (p *Pipeline) InFlight() int { return len(p.lastAt) }

// StageFabric is the datacenter fabric forwarding stage: a ToR or spine
// switch carrying a frame between hosts (internal/cluster).
const StageFabric = "fabric"

// Fabric records one switch forwarding a frame over [start, end] — egress
// queue wait plus serialization onto the output link. Unlike Span it does
// not touch the per-packet wait cursor: fabric packet IDs are switch-local
// sequence numbers, not host SKB identities, and a fabric frame never
// reaches Deliver on this pipeline, so threading it through lastAt would
// leak an entry per frame.
func (p *Pipeline) Fabric(dev string, pkt uint64, prio int, start, end sim.Time) {
	p.T.add(Event{Kind: KindSpan, Stage: StageFabric, Device: dev, Pkt: pkt, Priority: prio, Start: start, End: end})
	l := Labels{Device: dev, Stage: StageFabric, Priority: prio, Shard: p.Shard}
	p.M.Counter("prism_fabric_frames_total", l).Add(1)
	p.M.Histogram("prism_fabric_residency_ns", l).Observe(end - start)
}

// FabricDrop records a frame the fabric discarded — egress queue overflow,
// a low-priority victim evicted for a high-priority frame, or no route in
// the control-plane snapshot. reason becomes the stage label so drop
// causes stay separable in merged exports.
func (p *Pipeline) FabricDrop(now sim.Time, dev, reason string, prio int) {
	p.T.add(Event{Kind: KindInstant, Stage: StageDrop, Device: dev, Pkt: NoPacket, Priority: prio, Start: now, End: now})
	p.M.Counter("prism_fabric_dropped_total", Labels{Device: dev, Stage: reason, Priority: prio, Shard: p.Shard}).Add(1)
}

// DefaultTracerCap bounds the span ring buffer: 64 Ki events is a few MB
// and several full softirq bursts of context.
const DefaultTracerCap = 1 << 16

// Tracer accumulates lifecycle events into a bounded ring buffer with
// optional per-packet sampling. Memory is bounded by construction: once
// the ring is full, new events overwrite the oldest (the overwrite count
// is kept, so exporters can report truncation instead of silently
// pretending full coverage).
type Tracer struct {
	capacity int
	// sampleEvery, when > 1, keeps only packets whose ID ≡ 0 (mod N);
	// device-level events are always kept. Aggregate metrics are not
	// affected — sampling bounds only the span stream.
	sampleEvery uint64

	events []Event
	head   int // ring start when full
	seq    uint64

	// Overwritten counts events displaced from the full ring; SampledOut
	// counts events skipped by the sampling filter.
	Overwritten uint64
	SampledOut  uint64
}

// NewTracer returns a tracer with the given ring capacity (<= 0 uses
// DefaultTracerCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{capacity: capacity}
}

// SetSampling keeps only every n-th packet's events (by packet ID).
// n <= 1 disables sampling.
func (t *Tracer) SetSampling(n int) {
	if n <= 1 {
		t.sampleEvery = 0
		return
	}
	t.sampleEvery = uint64(n)
}

func (t *Tracer) add(ev Event) {
	if t == nil {
		return
	}
	if t.sampleEvery > 1 && ev.Pkt != NoPacket && ev.Pkt%t.sampleEvery != 0 {
		t.SampledOut++
		return
	}
	ev.Seq = t.seq
	t.seq++
	if len(t.events) < t.capacity {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.head] = ev
	t.head = (t.head + 1) % t.capacity
	t.Overwritten++
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int { return len(t.events) }

// Total returns how many events were ever recorded (including ones since
// overwritten, excluding sampled-out ones).
func (t *Tracer) Total() uint64 { return t.seq }

// Events returns the buffered events in recording order.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// EventsSince returns the buffered events whose sequence number is at or
// past cursor, in recording order — the incremental-export counterpart of
// Events. Pass the previous call's Total() as the cursor to drain only
// what arrived since. Events that were overwritten in the ring before
// being drained are lost (the Overwritten counter reports how many); the
// live surface trades that bounded loss for bounded memory.
func (t *Tracer) EventsSince(cursor uint64) []Event {
	if t == nil || cursor >= t.seq {
		return nil
	}
	// The ring holds events with Seq in [t.seq-len(t.events), t.seq).
	oldest := t.seq - uint64(len(t.events))
	skip := 0
	if cursor > oldest {
		skip = int(cursor - oldest)
	}
	out := make([]Event, 0, len(t.events)-skip)
	tail := t.events[t.head:]
	if skip < len(tail) {
		out = append(out, tail[skip:]...)
		out = append(out, t.events[:t.head]...)
	} else {
		out = append(out, t.events[skip-len(tail):t.head]...)
	}
	return out
}

// MergeEvents folds shard-local event streams into one, ordered by
// (time, stream index, per-stream sequence). Pass streams in shard ID
// order; the stream index breaks cross-shard timestamp ties the same way
// every run, so the merged stream is deterministic regardless of worker
// count — the same discipline as trace.Merge and stats.MergeHistograms.
//
// A full sort (not a k-way merge) is required: within one engine, spans
// of a poll batch are emitted with start times ahead of the simulation
// clock (the core ledger runs ahead), while IRQ/DMA instants land at the
// current clock, so a single stream is not internally time-sorted.
func MergeEvents(streams ...[]Event) []Event {
	type keyed struct {
		ev     Event
		stream int
	}
	var all []keyed
	for si, s := range streams {
		for _, ev := range s {
			all = append(all, keyed{ev: ev, stream: si})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ev.Start != b.ev.Start {
			return a.ev.Start < b.ev.Start
		}
		if a.stream != b.stream {
			return a.stream < b.stream
		}
		return a.ev.Seq < b.ev.Seq
	})
	out := make([]Event, len(all))
	for i, k := range all {
		out[i] = k.ev
	}
	return out
}
