package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"prism/internal/sim"
)

func TestPipelineLifecycle(t *testing.T) {
	p := NewPipeline("s0")
	// Packet 7: DMA at 100, NIC span [150, 180], bridge span [200, 220],
	// delivered at 250.
	p.DMA(100, "eth0", 7, 1)
	p.IRQ(110, "eth0")
	p.Span("eth0", StageNIC, 7, 1, 150, 180)
	p.Span("br0", StageBridge, 7, 1, 200, 220)
	p.Deliver(250, "c0", 7, 1, 100)

	if got := p.M.CounterValue("prism_dma_frames_total", Labels{}); got != 1 {
		t.Errorf("dma counter = %d, want 1", got)
	}
	if got := p.M.CounterValue("prism_irqs_total", Labels{}); got != 1 {
		t.Errorf("irq counter = %d, want 1", got)
	}
	if got := p.M.CounterValue("prism_delivered_total", Labels{}); got != 1 {
		t.Errorf("delivered counter = %d, want 1", got)
	}
	// NIC wait = 150-100 = 50; NIC service = 30.
	wait := p.M.Histogram("prism_stage_wait_ns", Labels{Device: "eth0", Stage: StageNIC, Priority: 1, Shard: "s0"})
	if wait.Hist().Count() != 1 || wait.Hist().Max() != 50 {
		t.Errorf("nic wait = %v (n=%d), want 50", wait.Hist().Max(), wait.Hist().Count())
	}
	svc := p.M.Histogram("prism_stage_service_ns", Labels{Device: "eth0", Stage: StageNIC, Priority: 1, Shard: "s0"})
	if svc.Hist().Count() != 1 || svc.Hist().Max() != 30 {
		t.Errorf("nic service = %v, want 30", svc.Hist().Max())
	}
	// E2E = 250-100 = 150.
	e2e := p.M.Histogram("prism_e2e_latency_ns", Labels{Priority: 1, Shard: "s0"})
	if e2e.Hist().Count() != 1 || e2e.Hist().Max() != 150 {
		t.Errorf("e2e = %v, want 150", e2e.Hist().Max())
	}
	// Lifecycle closed: the cursor map must not leak.
	if p.InFlight() != 0 {
		t.Errorf("in-flight = %d after deliver, want 0", p.InFlight())
	}
	// 5 events buffered.
	if p.T.Len() != 5 {
		t.Errorf("tracer len = %d, want 5", p.T.Len())
	}
}

func TestPipelineDropAndAbsorb(t *testing.T) {
	p := NewPipeline("")
	p.DMA(10, "eth0", 1, 0)
	p.Drop(20, "eth0", StageNIC, 1, 0)
	p.DMA(30, "eth0", 2, 0)
	p.Absorbed(40, "eth0", 2, 0)
	if p.InFlight() != 0 {
		t.Errorf("in-flight = %d, want 0", p.InFlight())
	}
	if got := p.M.CounterValue("prism_dropped_total", Labels{}); got != 1 {
		t.Errorf("dropped = %d", got)
	}
	if got := p.M.CounterValue("prism_gro_absorbed_total", Labels{}); got != 1 {
		t.Errorf("absorbed = %d", got)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.add(Event{Stage: StageDMA, Pkt: uint64(i), Start: sim.Time(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
	if tr.Overwritten != 6 {
		t.Errorf("overwritten = %d, want 6", tr.Overwritten)
	}
	// Ring holds the newest 4 events in recording order.
	evs := tr.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Pkt != want {
			t.Errorf("event %d pkt = %d, want %d", i, ev.Pkt, want)
		}
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(0)
	tr.SetSampling(4)
	for i := 0; i < 16; i++ {
		tr.add(Event{Stage: StageNIC, Pkt: uint64(i), Start: sim.Time(i)})
	}
	tr.add(Event{Stage: StageIRQ, Pkt: NoPacket, Start: 100}) // device events always kept
	if tr.Len() != 5 {
		t.Errorf("len = %d, want 5 (pkts 0,4,8,12 + IRQ)", tr.Len())
	}
	if tr.SampledOut != 12 {
		t.Errorf("sampled out = %d, want 12", tr.SampledOut)
	}
	tr.SetSampling(0) // disable
	tr.add(Event{Stage: StageNIC, Pkt: 3, Start: 200})
	if tr.Len() != 6 {
		t.Errorf("len after disabling sampling = %d, want 6", tr.Len())
	}
}

func TestMergeEventsDeterministic(t *testing.T) {
	// Streams with interleaved and equal timestamps; one stream not
	// internally time-sorted (poll-batch spans start ahead of the clock).
	s0 := []Event{
		{Seq: 0, Kind: KindSpan, Stage: StageNIC, Start: 50, End: 60},
		{Seq: 1, Kind: KindInstant, Stage: StageIRQ, Start: 40, End: 40},
		{Seq: 2, Kind: KindSpan, Stage: StageNIC, Start: 50, End: 70},
	}
	s1 := []Event{
		{Seq: 0, Kind: KindInstant, Stage: StageDMA, Start: 50, End: 50},
	}
	m := MergeEvents(s0, s1)
	if len(m) != 4 {
		t.Fatalf("merged %d events, want 4", len(m))
	}
	if m[0].Stage != StageIRQ {
		t.Errorf("first merged event = %s, want irq (t=40)", m[0].Stage)
	}
	// Equal time 50: stream 0 before stream 1, seq order within stream 0.
	if m[1].Seq != 0 || m[1].Kind != KindSpan {
		t.Errorf("tie-break wrong: m[1] = %+v", m[1])
	}
	if m[2].Seq != 2 || m[3].Stage != StageDMA {
		t.Errorf("tie-break wrong: m[2]=%+v m[3]=%+v", m[2], m[3])
	}
	// Permuting events WITHIN a call must not matter for the sorted output
	// key; repeating the same call must be bit-identical.
	if !reflect.DeepEqual(m, MergeEvents(s0, s1)) {
		t.Error("MergeEvents not deterministic across calls")
	}
}

func TestRegistryMergeWorkerInvariance(t *testing.T) {
	// Record the same logical observations split across 1, 2 and 4
	// shard-local registries; merged exports must be bit-identical.
	record := func(regs []*Registry) *Registry {
		for i := 0; i < 1000; i++ {
			r := regs[i%len(regs)]
			l := Labels{Device: "eth0", Stage: StageNIC, Priority: i % 3}
			r.Counter("prism_stage_packets_total", l).Add(1)
			r.Histogram("prism_stage_service_ns", l).Observe(sim.Time(i * 10))
			r.Gauge("prism_backlog_depth", l).Set(float64(i % 17))
		}
		return MergeRegistries(regs...)
	}
	mk := func(n int) []*Registry {
		regs := make([]*Registry, n)
		for i := range regs {
			regs[i] = NewRegistry()
		}
		return regs
	}
	one := PrometheusText(record(mk(1)))
	two := PrometheusText(record(mk(2)))
	four := PrometheusText(record(mk(4)))
	if one != two || two != four {
		t.Error("merged Prometheus text differs across shard counts")
	}
}

func TestPrometheusTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("prism_delivered_total", Labels{Device: "c0", Priority: 1}).Add(42)
	r.Gauge("prism_backlog_depth", Labels{Device: "veth0"}).Set(3)
	r.Histogram("prism_e2e_latency_ns", Labels{Priority: 0}).Observe(1000)
	out := PrometheusText(r)
	for _, want := range []string{
		"# TYPE prism_delivered_total counter",
		`prism_delivered_total{device="c0",priority="1"} 42`,
		"# TYPE prism_backlog_depth gauge",
		"# TYPE prism_e2e_latency_ns summary",
		`prism_e2e_latency_ns{priority="0",quantile="0.5"} 1000`,
		`prism_e2e_latency_ns_sum{priority="0"} 1000`,
		`prism_e2e_latency_ns_count{priority="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus text missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsJSONValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("prism_irqs_total", Labels{Device: "eth0", Stage: StageIRQ}).Add(5)
	r.Histogram("prism_e2e_latency_ns", Labels{}).Observe(12345)
	b, err := MetricsJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 5 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].P50 != 12345 {
		t.Errorf("histograms = %+v", snap.Histograms)
	}
}

func TestChromeTraceValid(t *testing.T) {
	p := NewPipeline("vanilla")
	p.DMA(1000, "eth0", 0, 1)
	p.Span("eth0", StageNIC, 0, 1, 2000, 3500)
	p.Deliver(5000, "c0", 0, 1, 1000)
	b, err := ChromeTrace(TraceProcess{Name: "vanilla", Events: p.T.Events()})
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &file); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	var metas, spans, instants int
	for _, ev := range file.TraceEvents {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			spans++
			if ev["dur"].(float64) != 1.5 { // 1500ns = 1.5µs
				t.Errorf("span dur = %v, want 1.5", ev["dur"])
			}
		case "i":
			instants++
		}
	}
	// process_name + 2 thread_name rows; 1 span; DMA + deliver instants.
	if metas != 3 || spans != 1 || instants != 2 {
		t.Errorf("metas/spans/instants = %d/%d/%d, want 3/1/2", metas, spans, instants)
	}
}

func TestStageBreakdown(t *testing.T) {
	p := NewPipeline("")
	// Two packets through nic and bridge with known waits/services.
	for pkt := uint64(0); pkt < 2; pkt++ {
		base := sim.Time(pkt) * 1000
		p.DMA(base, "eth0", pkt, 0)
		p.Span("eth0", StageNIC, pkt, 0, base+100, base+150)   // wait 100, svc 50
		p.Span("br0", StageBridge, pkt, 0, base+200, base+220) // wait 50, svc 20
		p.Deliver(base+300, "c0", pkt, 0, base)
	}
	rows := StageBreakdown(p.M)
	if len(rows) != 3 { // nic, bridge, socket (wait only)
		t.Fatalf("breakdown rows = %d, want 3: %+v", len(rows), rows)
	}
	if rows[0].Stage != StageNIC || rows[1].Stage != StageBridge || rows[2].Stage != StageSocket {
		t.Errorf("row order = %s,%s,%s", rows[0].Stage, rows[1].Stage, rows[2].Stage)
	}
	if rows[0].Packets != 2 || rows[0].Service.Max != 50 || rows[0].Wait.Max != 100 {
		t.Errorf("nic row = %+v", rows[0])
	}
	if rows[1].Service.Max != 20 || rows[1].Wait.Max != 50 {
		t.Errorf("bridge row = %+v", rows[1])
	}
	e2e := E2ESummary(p.M)
	if e2e.Count != 2 || e2e.Max != 300 {
		t.Errorf("e2e summary = %+v", e2e)
	}
	if out := FormatBreakdown("test", rows); !strings.Contains(out, "bridge") {
		t.Errorf("formatted breakdown missing stage:\n%s", out)
	}
}

func TestCounterValueFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", Labels{Device: "a", Priority: 1}).Add(1)
	r.Counter("x", Labels{Device: "b", Priority: 1}).Add(2)
	r.Counter("x", Labels{Device: "a", Priority: 2}).Add(4)
	if got := r.CounterValue("x", Labels{}); got != 7 {
		t.Errorf("unfiltered = %d, want 7", got)
	}
	if got := r.CounterValue("x", Labels{Device: "a"}); got != 5 {
		t.Errorf("device=a = %d, want 5", got)
	}
	if got := r.CounterValue("x", Labels{Priority: 1}); got != 3 {
		t.Errorf("priority=1 = %d, want 3", got)
	}
}
