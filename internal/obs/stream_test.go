package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"prism/internal/sim"
)

// Label values containing the exposition format's escapable characters
// (backslash, double-quote, line feed) must round-trip per spec, and
// characters %q would over-escape (tabs, non-ASCII) must pass through raw.
func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("prism_test_total", Labels{Device: `ve"th\0` + "\nx"}).Add(1)
	r.Counter("prism_test_total", Labels{Device: "tab\there", Shard: "héøst"}).Add(2)
	out := PrometheusText(r)

	if !strings.Contains(out, `device="ve\"th\\0\nx"`) {
		t.Errorf("hostile label not escaped per exposition format:\n%s", out)
	}
	if !strings.Contains(out, "device=\"tab\there\"") {
		t.Errorf("tab should pass through unescaped (spec defines only \\\\ \\\" \\n):\n%s", out)
	}
	if !strings.Contains(out, `shard="héøst"`) {
		t.Errorf("non-ASCII should pass through raw:\n%s", out)
	}
	// No raw newline may survive inside a quoted label value: every line
	// must be a complete sample or comment.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Errorf("escaping leaked a raw newline into a label value:\n%s", out)
		}
	}
	// Benign values are untouched.
	if !strings.Contains(out, `device="tab`) || strings.Contains(out, `\t`) {
		t.Errorf("over-escaping detected:\n%s", out)
	}
}

func span(seq uint64, dev string, pkt uint64, start, end sim.Time) Event {
	return Event{Seq: seq, Kind: KindSpan, Stage: StageNIC, Device: dev, Pkt: pkt, Priority: 1, Start: start, End: end}
}

func decodeChrome(t *testing.T, b []byte) chromeTraceFile {
	t.Helper()
	var f chromeTraceFile
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("ChromeTrace output is not valid JSON: %v", err)
	}
	return f
}

func TestChromeTraceZeroSpans(t *testing.T) {
	b, err := ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	f := decodeChrome(t, b)
	if len(f.TraceEvents) != 0 {
		t.Errorf("no processes should yield no events, got %d", len(f.TraceEvents))
	}

	// A process with zero events still gets its process_name row.
	b, err = ChromeTrace(TraceProcess{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	f = decodeChrome(t, b)
	if len(f.TraceEvents) != 1 || f.TraceEvents[0].Ph != "M" || f.TraceEvents[0].Name != "process_name" {
		t.Errorf("empty process should emit exactly its metadata row, got %+v", f.TraceEvents)
	}
}

func TestChromeTraceSingleProcess(t *testing.T) {
	evs := []Event{
		span(0, "eth0", 1, 100, 130),
		{Seq: 1, Kind: KindInstant, Stage: StageSocket, Device: "c0", Pkt: 1, Priority: 1, Start: 150, End: 150},
	}
	b, err := ChromeTrace(TraceProcess{Name: "run", Events: evs})
	if err != nil {
		t.Fatal(err)
	}
	f := decodeChrome(t, b)
	// 1 process_name + 2 thread_name + 2 events.
	if len(f.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5:\n%s", len(f.TraceEvents), b)
	}
	var spans, instants int
	for _, ce := range f.TraceEvents {
		switch ce.Ph {
		case "X":
			spans++
			if ce.Dur == nil || *ce.Dur != 0.03 { // 30ns = 0.03µs
				t.Errorf("span dur = %v, want 0.03µs", ce.Dur)
			}
			if ce.Ts != 0.1 {
				t.Errorf("span ts = %v, want 0.1µs", ce.Ts)
			}
		case "i":
			instants++
		case "M":
			if ce.Pid != 1 {
				t.Errorf("metadata pid = %d, want 1", ce.Pid)
			}
		}
	}
	if spans != 1 || instants != 1 {
		t.Errorf("spans=%d instants=%d, want 1/1", spans, instants)
	}
}

// Multi-shard: each process keeps its own pid and thread-ID namespace,
// and events merged out of order still render sorted by start time.
func TestChromeTraceMergedShards(t *testing.T) {
	s0 := []Event{span(0, "eth0", 1, 300, 310), span(1, "eth0", 2, 100, 120)}
	s1 := []Event{span(0, "eth1", 3, 200, 250)}
	b, err := ChromeTrace(
		TraceProcess{Name: "shard0", Events: s0},
		TraceProcess{Name: "shard1", Events: s1},
	)
	if err != nil {
		t.Fatal(err)
	}
	f := decodeChrome(t, b)
	pids := map[int]bool{}
	var lastTs = map[int]float64{}
	for _, ce := range f.TraceEvents {
		pids[ce.Pid] = true
		if ce.Ph != "X" {
			continue
		}
		if ce.Ts < lastTs[ce.Pid] {
			t.Errorf("pid %d events not time-sorted: %v after %v", ce.Pid, ce.Ts, lastTs[ce.Pid])
		}
		lastTs[ce.Pid] = ce.Ts
	}
	if !pids[1] || !pids[2] {
		t.Errorf("expected two process IDs, got %v", pids)
	}
}

func TestEventsSinceCursor(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 3; i++ {
		tr.add(span(0, "eth0", uint64(i), sim.Time(i), sim.Time(i)))
	}
	first := tr.EventsSince(0)
	if len(first) != 3 {
		t.Fatalf("initial drain = %d events, want 3", len(first))
	}
	cursor := tr.Total()
	if got := tr.EventsSince(cursor); len(got) != 0 {
		t.Errorf("drain at cursor = %d events, want 0", len(got))
	}
	// Two more events; only they appear.
	tr.add(span(0, "eth0", 10, 10, 10))
	tr.add(span(0, "eth0", 11, 11, 11))
	delta := tr.EventsSince(cursor)
	if len(delta) != 2 || delta[0].Pkt != 10 || delta[1].Pkt != 11 {
		t.Fatalf("delta = %+v, want pkts 10,11", delta)
	}
	// Overflow the ring (capacity 4) past the cursor: the lost events are
	// skipped, the surviving ones drain in order.
	cursor = tr.Total() // 5
	for i := 0; i < 6; i++ {
		tr.add(span(0, "eth0", uint64(100+i), sim.Time(100+i), sim.Time(100+i)))
	}
	delta = tr.EventsSince(cursor)
	if len(delta) != 4 { // ring only holds the last 4
		t.Fatalf("post-overflow delta = %d events, want 4", len(delta))
	}
	for i, ev := range delta {
		if want := uint64(102 + i); ev.Pkt != want {
			t.Errorf("delta[%d].Pkt = %d, want %d", i, ev.Pkt, want)
		}
	}
}

type recordingSink struct {
	ats    []sim.Time
	deltas [][]Event
	regs   []*Registry
}

func (s *recordingSink) Checkpoint(at sim.Time, reg *Registry, delta []Event) {
	s.ats = append(s.ats, at)
	s.regs = append(s.regs, reg)
	s.deltas = append(s.deltas, delta)
}

// A Streamer hands each event to the sink exactly once, and its merged
// registry snapshot matches the end-of-run MergeRegistries result.
func TestStreamerExactlyOnce(t *testing.T) {
	p0, p1 := NewPipeline("s0"), NewPipeline("s1")
	sink := &recordingSink{}
	st := NewStreamer(sink, p0, p1)

	p0.DMA(10, "eth0", 1, 1)
	p1.DMA(10, "eth1", 2, 0)
	st.Checkpoint(20)

	p0.Span("eth0", StageNIC, 1, 1, 30, 40)
	st.Checkpoint(50)
	st.Checkpoint(60) // no new events

	if len(sink.ats) != 3 {
		t.Fatalf("sink saw %d checkpoints, want 3", len(sink.ats))
	}
	if n := len(sink.deltas[0]); n != 2 {
		t.Errorf("first delta = %d events, want 2", n)
	}
	if n := len(sink.deltas[1]); n != 1 || sink.deltas[1][0].Stage != StageNIC {
		t.Errorf("second delta = %+v, want the one NIC span", sink.deltas[1])
	}
	if n := len(sink.deltas[2]); n != 0 {
		t.Errorf("idle delta = %d events, want 0", n)
	}
	// The final snapshot equals the batch merge path.
	want := PrometheusText(MergeRegistries(p0.M, p1.M))
	if got := PrometheusText(sink.regs[2]); got != want {
		t.Errorf("streamed snapshot diverges from MergeRegistries:\n%s\nvs\n%s", got, want)
	}
	// Nil-safety.
	var nilStreamer *Streamer
	nilStreamer.Checkpoint(1)
	NewStreamer(nil).Checkpoint(1)
}

// ChromeStream output is valid NDJSON, equivalent event-for-event to the
// batch exporter, with metadata rows emitted once.
func TestChromeStreamNDJSON(t *testing.T) {
	var buf bytes.Buffer
	cs := NewChromeStream("live")
	if err := cs.Append(&buf, []Event{span(0, "eth0", 1, 100, 130)}); err != nil {
		t.Fatal(err)
	}
	if err := cs.Append(&buf, []Event{
		span(1, "eth0", 2, 200, 220),
		span(2, "br0", 2, 240, 260),
	}); err != nil {
		t.Fatal(err)
	}
	var lines []chromeEvent
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var ce chromeEvent
		if err := json.Unmarshal(sc.Bytes(), &ce); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", sc.Text(), err)
		}
		lines = append(lines, ce)
	}
	// process_name, thread_name(eth0), span, span, thread_name(br0), span.
	if len(lines) != 6 {
		t.Fatalf("got %d NDJSON lines, want 6:\n%s", len(lines), buf.String())
	}
	if lines[0].Name != "process_name" || lines[1].Name != "thread_name" {
		t.Errorf("metadata rows missing or misordered: %+v", lines[:2])
	}
	var meta, spans int
	for _, ce := range lines {
		if ce.Ph == "M" {
			meta++
		}
		if ce.Ph == "X" {
			spans++
		}
	}
	if meta != 3 || spans != 3 {
		t.Errorf("meta=%d spans=%d, want 3/3", meta, spans)
	}
}
