// Package fault is the deterministic fault-injection plane: a seed-driven
// source of adversarial events — corrupted wire frames, DMA ring overruns,
// lost and spurious interrupts, link flaps, latency jitter, stalled
// consumers, softirq worker stalls — threaded through the datapath layers
// via the same optional nil-safe hook pattern as internal/obs.
//
// Every layer holds the plane as an optional pointer and calls its hooks
// unconditionally; a nil plane (or a zero fault rate) makes every hook a
// no-op, so the unfaulted datapath is bit-identical to a build without the
// plane. All fault decisions draw from the plane's own RNG stream, derived
// from the configured seed — injecting faults never perturbs the workload
// generators' random sequences, which keeps A/B comparisons across fault
// rates meaningful.
//
// The plane also hosts the hardening counterpart to the injection: a NAPI
// watchdog (the kernel dev_watchdog analogue) that periodically scans the
// registered devices for a stuck state — packets queued, no poll scheduled,
// no interrupt pending — and re-arms the device's IRQ.
package fault

import (
	"prism/internal/obs"
	"prism/internal/sim"
)

// Class selects fault classes; classes combine as a bitmask. The zero
// value of Config.Classes means ClassAll.
type Class uint32

// Fault classes, one per layer the plane reaches into.
const (
	// ClassCorrupt flips bits in wire frames before DMA; the corruption
	// must surface as decode/parse drops in internal/pkt, never panics.
	ClassCorrupt Class = 1 << iota
	// ClassRing injects DMA ring overrun bursts plus lost and spurious
	// interrupts at the NIC.
	ClassRing
	// ClassLink injects link flaps (drop windows) and per-frame latency
	// jitter on the overlay wire.
	ClassLink
	// ClassConsumer stalls application threads so socket receive buffers
	// and the veth backlog fill up.
	ClassConsumer
	// ClassSoftirq stalls the softirq worker at the start of a run
	// (ksoftirqd preempted), delaying every queued packet.
	ClassSoftirq

	// ClassAll enables every class.
	ClassAll = ClassCorrupt | ClassRing | ClassLink | ClassConsumer | ClassSoftirq
)

// Recovery fault classes: fail-stop events a cluster's recovery
// controller reacts to. They are deliberately NOT part of ClassAll — a
// configuration must select them explicitly, and they fire only when the
// matching cluster hook (OnHostCrash / OnTorLink) is installed. A plane
// without the class or the hook draws nothing from its RNG for them, so
// every pre-existing configuration's random streams — and therefore its
// golden fixtures — are bit-identical.
const (
	// ClassHostCrash fail-stops a whole host at the wire, restarting it
	// after CrashDowntime.
	ClassHostCrash Class = 1 << 5
	// ClassTorLink severs the rack's ToR→spine uplink for
	// TorLinkDowntime.
	ClassTorLink Class = 1 << 6
)

// Per-event fault probabilities at Rate == 1; each scales linearly with
// the configured rate.
const (
	pCorrupt      = 0.30  // per wire frame
	pFlapStart    = 0.004 // per wire frame
	pJitter       = 0.10  // per wire frame
	pOverrunStart = 0.015 // per DMA attempt
	pIRQLoss      = 0.20  // per raised interrupt
	pSoftirqStall = 0.05  // per net_rx_action run
)

// Phase is one window of a fault timeline: Classes fire at Rate from
// From until Until (Until 0 = until the run's horizon). Outside every
// phase the plane is quiescent — hooks return the no-fault answer without
// drawing from the RNG, so a windowed plane's pre-window datapath is
// bit-identical to an unfaulted one.
type Phase struct {
	From  sim.Time
	Until sim.Time
	// Rate is the window's fault intensity in [0, 1].
	Rate float64
	// Classes selects which fault classes the window enables; zero means
	// ClassAll. When windows overlap, the first phase (in Config order)
	// enabling a class wins for that class.
	Classes Class
}

// Config parameterizes the plane. The zero value of every knob gets a
// sensible default from NewPlane; only Seed and Rate (or Phases) are
// required.
type Config struct {
	// Seed drives the plane's private RNG stream (distinct from the
	// engine's even for the same value).
	Seed uint64
	// Rate is the master fault intensity in [0, 1]. Per-event classes fire
	// with probability proportional to it; timeline classes (spurious
	// IRQs, consumer stalls) fire at a frequency proportional to it. Zero
	// disables injection entirely — every hook returns the no-fault answer
	// without drawing from the RNG.
	Rate float64
	// Classes selects which fault classes fire; zero means ClassAll.
	Classes Class
	// Phases, when non-empty, replaces Rate/Classes with a windowed fault
	// timeline: each phase injects its own class set at its own rate
	// inside [From, Until). Rate and Classes above are ignored while
	// Phases is set.
	Phases []Phase

	// CorruptBits is how many random bits flip per corrupted frame.
	CorruptBits int
	// OverrunBurst is how many consecutive DMA attempts one ring-overrun
	// burst rejects (a slow PCIe writeback stalls the whole ring, not one
	// descriptor).
	OverrunBurst int
	// FlapDuration is how long the link stays down per flap.
	FlapDuration sim.Time
	// JitterMax bounds the extra wire latency of a jittered frame.
	JitterMax sim.Time
	// SpuriousEvery is the mean gap between spurious interrupts per
	// device at Rate 1 (scaled up at lower rates).
	SpuriousEvery sim.Time
	// StallEvery is the mean gap between consumer stalls per thread at
	// Rate 1; StallDuration is how long each stall occupies the core.
	StallEvery    sim.Time
	StallDuration sim.Time
	// SoftirqStallDuration is the stall charged to the processing core
	// when a softirq-worker stall fires.
	SoftirqStallDuration sim.Time
	// CrashEvery is the mean gap between ClassHostCrash events at Rate 1
	// (scaled up at lower rates); CrashDowntime how long each crash keeps
	// the host fail-stopped.
	CrashEvery    sim.Time
	CrashDowntime sim.Time
	// TorLinkEvery / TorLinkDowntime are the ClassTorLink analogues.
	TorLinkEvery    sim.Time
	TorLinkDowntime sim.Time
	// WatchdogInterval is the stuck-device scan period (dev_watchdog).
	// Negative disables the watchdog; zero means the default.
	WatchdogInterval sim.Time
}

// Counters aggregates everything the plane injected and everything the
// watchdog repaired; the invariant checker folds the drop counters into
// its conservation equations.
type Counters struct {
	WireFrames      uint64 // frames inspected by the wire hook
	Corrupted       uint64
	LinkFlaps       uint64 // flap windows opened
	LinkDropped     uint64 // frames dropped while the link was down
	Jittered        uint64
	OverrunBursts   uint64
	OverrunDropped  uint64 // frames rejected at the DMA engine
	IRQsLost        uint64
	IRQsSpurious    uint64
	SoftirqStalls   uint64
	ConsumerStalls  uint64
	WatchdogRescues uint64
	HostCrashes     uint64
	TorLinkDowns    uint64
}

// Device is the watchdog/interrupt surface a NIC exposes to the plane.
type Device interface {
	// DeviceName labels the device in fault metrics.
	DeviceName() string
	// Stuck reports packets queued with no poll scheduled and no
	// interrupt pending — the state a lost IRQ strands a device in.
	Stuck() bool
	// RearmIRQ re-raises the device's interrupt if it is stuck.
	RearmIRQ(now sim.Time)
	// SpuriousIRQ raises an interrupt with no new packets behind it.
	SpuriousIRQ(now sim.Time)
}

// Consumer is the stall surface of an application thread.
type Consumer interface {
	// Stall occupies the consumer's core for dur without completing work.
	Stall(now, dur sim.Time)
}

// Plane is one engine's fault injector. All methods are nil-safe: calling
// them on a nil *Plane is the documented no-op, which is what lets every
// layer hold the plane as an optional pointer and skip nil checks at each
// hook site.
type Plane struct {
	cfg Config
	eng *sim.Engine
	rng *sim.RNG
	obs *obs.Pipeline

	// linkDownUntil is the current flap window's end; overrunLeft counts
	// the remaining rejections of the current overrun burst.
	linkDownUntil sim.Time
	overrunLeft   int

	// scratch backs corrupted frames: the wire hook must not mutate the
	// caller's buffer (generators reuse one frame for a whole run), so a
	// corrupted frame is a copy. Valid until the next corruption; the NIC
	// DMA-copies synchronously, so one buffer suffices.
	scratch []byte

	devices   []Device
	consumers []Consumer

	// crashFn / torFn are the cluster recovery hooks timeline crash and
	// uplink events fire; nil (no cluster attached) disarms the classes
	// entirely, RNG included.
	crashFn func(at, restore sim.Time)
	torFn   func(at, restore sim.Time)

	until   sim.Time
	started bool

	Counters
}

// NewPlane builds a plane for the engine with defaults filled in. The RNG
// stream is derived from cfg.Seed but distinct from an engine seeded with
// the same value.
func NewPlane(eng *sim.Engine, cfg Config) *Plane {
	if cfg.Classes == 0 {
		cfg.Classes = ClassAll
	}
	if cfg.CorruptBits <= 0 {
		cfg.CorruptBits = 3
	}
	if cfg.OverrunBurst <= 0 {
		cfg.OverrunBurst = 32
	}
	if cfg.FlapDuration <= 0 {
		cfg.FlapDuration = 150 * sim.Microsecond
	}
	if cfg.JitterMax <= 0 {
		cfg.JitterMax = 50 * sim.Microsecond
	}
	if cfg.SpuriousEvery <= 0 {
		cfg.SpuriousEvery = 5 * sim.Millisecond
	}
	if cfg.StallEvery <= 0 {
		cfg.StallEvery = 10 * sim.Millisecond
	}
	if cfg.StallDuration <= 0 {
		cfg.StallDuration = 400 * sim.Microsecond
	}
	if cfg.SoftirqStallDuration <= 0 {
		cfg.SoftirqStallDuration = 30 * sim.Microsecond
	}
	if cfg.WatchdogInterval == 0 {
		cfg.WatchdogInterval = 2 * sim.Millisecond
	}
	if cfg.CrashEvery <= 0 {
		cfg.CrashEvery = 25 * sim.Millisecond
	}
	if cfg.CrashDowntime <= 0 {
		cfg.CrashDowntime = 8 * sim.Millisecond
	}
	if cfg.TorLinkEvery <= 0 {
		cfg.TorLinkEvery = 30 * sim.Millisecond
	}
	if cfg.TorLinkDowntime <= 0 {
		cfg.TorLinkDowntime = 5 * sim.Millisecond
	}
	for i := range cfg.Phases {
		if cfg.Phases[i].Classes == 0 {
			cfg.Phases[i].Classes = ClassAll
		}
	}
	return &Plane{cfg: cfg, eng: eng, rng: sim.NewRNG(cfg.Seed ^ 0xfa017fa017)}
}

// SetObs installs the observability pipeline fault metrics are exported
// through (nil disables export).
func (p *Plane) SetObs(pipe *obs.Pipeline) {
	if p == nil {
		return
	}
	p.obs = pipe
}

// Config returns the plane's effective configuration (defaults applied).
func (p *Plane) Config() Config { return p.cfg }

// Stats returns a copy of the fault counters; zero for a nil plane.
func (p *Plane) Stats() Counters {
	if p == nil {
		return Counters{}
	}
	return p.Counters
}

// Watch registers a device with the watchdog and the spurious-IRQ
// timeline.
func (p *Plane) Watch(d Device) {
	if p == nil {
		return
	}
	p.devices = append(p.devices, d)
}

// WatchConsumer registers an application thread with the stall timeline.
func (p *Plane) WatchConsumer(c Consumer) {
	if p == nil {
		return
	}
	p.consumers = append(p.consumers, c)
}

// OnHostCrash installs the hook a ClassHostCrash timeline event fires:
// fail-stop at `at`, restart at `restore`. Install before Start; without
// a hook the class never arms. Nil-safe.
func (p *Plane) OnHostCrash(fn func(at, restore sim.Time)) {
	if p == nil {
		return
	}
	p.crashFn = fn
}

// OnTorLink installs the hook a ClassTorLink timeline event fires: the
// rack uplink goes down at `at` and restores at `restore`. Install
// before Start; without a hook the class never arms. Nil-safe.
func (p *Plane) OnTorLink(fn func(at, restore sim.Time)) {
	if p == nil {
		return
	}
	p.torFn = fn
}

// injecting reports whether the plane can inject at any point of the run
// — the cheap guard per-event hooks check before touching the clock.
func (p *Plane) injecting() bool {
	if p == nil {
		return false
	}
	if len(p.cfg.Phases) == 0 {
		return p.cfg.Rate > 0
	}
	for _, ph := range p.cfg.Phases {
		if ph.Rate > 0 {
			return true
		}
	}
	return false
}

// rateFor returns class c's fault intensity at time now: the flat
// Rate/Classes configuration, or — with Phases set — the first window
// containing now that enables c. Zero means the hook must return the
// no-fault answer without drawing from the RNG.
func (p *Plane) rateFor(now sim.Time, c Class) float64 {
	if len(p.cfg.Phases) == 0 {
		if p.cfg.Classes&c == 0 {
			return 0
		}
		return p.cfg.Rate
	}
	for _, ph := range p.cfg.Phases {
		if now < ph.From || (ph.Until > 0 && now >= ph.Until) {
			continue
		}
		if ph.Classes&c == 0 {
			continue
		}
		return ph.Rate
	}
	return 0
}

// injected exports one injected-fault event through obs.
func (p *Plane) injected(class string) {
	if p.obs == nil {
		return
	}
	p.obs.M.Counter("prism_fault_injected_total", obs.Labels{Stage: class, Shard: p.obs.Shard}).Add(1)
}

// dropped exports one fault-induced frame drop with its reason.
func (p *Plane) dropped(dev, reason string) {
	if p.obs == nil {
		return
	}
	p.obs.M.Counter("prism_fault_drops_total", obs.Labels{Device: dev, Stage: reason, Shard: p.obs.Shard}).Add(1)
}

// WireRx is the overlay's receive hook, called for every frame arriving
// from the wire before DMA. It returns the frame to deliver (a plane-owned
// copy when corrupted — the caller's buffer is never mutated), whether the
// frame is lost to a link flap, and an extra latency to impose before DMA.
// A delayed frame must be copied by the caller: the returned slice is only
// valid until the hook runs again.
func (p *Plane) WireRx(now sim.Time, frame []byte) (out []byte, drop bool, delay sim.Time) {
	if !p.injecting() {
		return frame, false, 0
	}
	p.WireFrames++
	if lr := p.rateFor(now, ClassLink); lr > 0 {
		if now < p.linkDownUntil {
			p.LinkDropped++
			p.dropped("wire", "linkflap")
			return nil, true, 0
		}
		if p.rng.Float64() < pFlapStart*lr {
			p.linkDownUntil = now + p.cfg.FlapDuration
			p.LinkFlaps++
			p.LinkDropped++
			p.injected("linkflap")
			p.dropped("wire", "linkflap")
			return nil, true, 0
		}
		if p.rng.Float64() < pJitter*lr {
			delay = sim.Time(p.rng.Uint64()%uint64(p.cfg.JitterMax)) + 1
			p.Jittered++
			p.injected("jitter")
		}
	}
	out = frame
	if cr := p.rateFor(now, ClassCorrupt); cr > 0 && p.rng.Float64() < pCorrupt*cr {
		out = p.corrupt(frame)
		p.Corrupted++
		p.injected("corrupt")
	}
	return out, false, delay
}

// corrupt copies frame into the plane's scratch buffer and flips
// CorruptBits random bits.
func (p *Plane) corrupt(frame []byte) []byte {
	if cap(p.scratch) < len(frame) {
		p.scratch = make([]byte, len(frame))
	}
	s := p.scratch[:len(frame)]
	copy(s, frame)
	if len(s) == 0 {
		return s
	}
	for i := 0; i < p.cfg.CorruptBits; i++ {
		bit := p.rng.Intn(len(s) * 8)
		s[bit/8] ^= 1 << (bit % 8)
	}
	return s
}

// RingOverrun is the NIC's DMA admission hook: true means the DMA engine
// rejected the frame before a descriptor was posted (no SKB exists; the
// plane accounts the drop). Overruns arrive in bursts.
func (p *Plane) RingOverrun(now sim.Time, dev string) bool {
	if p == nil {
		return false
	}
	rate := p.rateFor(now, ClassRing)
	if rate <= 0 {
		return false
	}
	if p.overrunLeft > 0 {
		p.overrunLeft--
		p.OverrunDropped++
		p.dropped(dev, "overrun")
		return true
	}
	if p.rng.Float64() < pOverrunStart*rate {
		p.OverrunBursts++
		p.overrunLeft = p.cfg.OverrunBurst - 1
		p.OverrunDropped++
		p.injected("overrun")
		p.dropped(dev, "overrun")
		return true
	}
	return false
}

// DropIRQ is the NIC's interrupt-raise hook: true means the interrupt is
// lost on its way to the core. The packets stay in the ring until the next
// arrival re-raises — or, with no follow-up traffic, until the watchdog
// notices the stuck device.
func (p *Plane) DropIRQ(now sim.Time, dev string) bool {
	if p == nil {
		return false
	}
	rate := p.rateFor(now, ClassRing)
	if rate <= 0 {
		return false
	}
	if p.rng.Float64() < pIRQLoss*rate {
		p.IRQsLost++
		p.injected("irqloss")
		return true
	}
	return false
}

// SoftirqStall is the softirq engine's run hook: a nonzero return is extra
// CPU charged to the processing core before the poll loop starts, modeling
// ksoftirqd being preempted with the whole backlog waiting behind it.
func (p *Plane) SoftirqStall(now sim.Time) sim.Time {
	if p == nil {
		return 0
	}
	rate := p.rateFor(now, ClassSoftirq)
	if rate <= 0 {
		return 0
	}
	if p.rng.Float64() < pSoftirqStall*rate {
		p.SoftirqStalls++
		p.injected("softirqstall")
		return p.cfg.SoftirqStallDuration
	}
	return 0
}
