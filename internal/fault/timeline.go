package fault

import "prism/internal/sim"

// Timeline faults are the ones that fire on their own clock rather than
// piggybacking on a datapath event: spurious interrupts, consumer stalls,
// and the watchdog's stuck-device scan. Start schedules one self-renewing
// chain per registered device/consumer; every chain stops rescheduling
// once its next firing would land past the horizon, so RunUntilIdle after
// a run terminates instead of chasing fault events forever.

// Start arms the timeline fault chains and the watchdog up to the given
// horizon. It is idempotent per plane (the chains are armed once) and
// nil-safe. The watchdog runs even at Rate 0 if devices are registered —
// it is hardening, not injection — but a zero-rate plane schedules no
// fault events.
func (p *Plane) Start(until sim.Time) {
	if p == nil || p.started {
		return
	}
	p.started = true
	p.until = until
	if p.cfg.Rate > 0 {
		if p.cfg.Classes&ClassRing != 0 {
			for _, d := range p.devices {
				p.armSpurious(d)
			}
		}
		if p.cfg.Classes&ClassConsumer != 0 {
			for _, c := range p.consumers {
				p.armStall(c)
			}
		}
	}
	if len(p.devices) > 0 && p.cfg.WatchdogInterval > 0 {
		p.armWatchdog(p.eng.Now() + p.cfg.WatchdogInterval)
	}
}

// armSpurious schedules the next spurious interrupt for d. Gaps are
// exponential with mean SpuriousEvery/Rate, so the event frequency scales
// with the master rate like the per-event probabilities do.
func (p *Plane) armSpurious(d Device) {
	gap := p.rng.ExpDuration(sim.Time(float64(p.cfg.SpuriousEvery) / p.cfg.Rate))
	at := p.eng.Now() + gap + 1
	if at >= p.until {
		return
	}
	p.eng.At(at, func() {
		p.IRQsSpurious++
		p.injected("spuriousirq")
		d.SpuriousIRQ(at)
		p.armSpurious(d)
	})
}

// armStall schedules the next consumer stall for c.
func (p *Plane) armStall(c Consumer) {
	gap := p.rng.ExpDuration(sim.Time(float64(p.cfg.StallEvery) / p.cfg.Rate))
	at := p.eng.Now() + gap + 1
	if at >= p.until {
		return
	}
	p.eng.At(at, func() {
		p.ConsumerStalls++
		p.injected("consumerstall")
		c.Stall(at, p.cfg.StallDuration)
		p.armStall(c)
	})
}

// armWatchdog schedules the next stuck-device scan.
func (p *Plane) armWatchdog(at sim.Time) {
	if at >= p.until {
		return
	}
	p.eng.At(at, func() {
		p.rescue(at)
		p.armWatchdog(at + p.cfg.WatchdogInterval)
	})
}

// rescue scans the registered devices and re-arms the IRQ of every stuck
// one, returning how many it rescued.
func (p *Plane) rescue(now sim.Time) int {
	n := 0
	for _, d := range p.devices {
		if !d.Stuck() {
			continue
		}
		p.WatchdogRescues++
		p.injected("watchdogrescue")
		d.RearmIRQ(now)
		n++
	}
	return n
}

// RescueStuck runs one watchdog scan immediately. The drain loop uses it
// after the horizon: a lost IRQ with no follow-up traffic strands packets
// in the ring past the last scheduled scan, and draining to idle must not
// leave them there. Nil-safe; returns the number of devices rescued.
func (p *Plane) RescueStuck(now sim.Time) int {
	if p == nil {
		return 0
	}
	return p.rescue(now)
}
