package fault

import "prism/internal/sim"

// Timeline faults are the ones that fire on their own clock rather than
// piggybacking on a datapath event: spurious interrupts, consumer stalls,
// and the watchdog's stuck-device scan. Start schedules one self-renewing
// chain per registered device/consumer; every chain stops rescheduling
// once its next firing would land past the horizon, so RunUntilIdle after
// a run terminates instead of chasing fault events forever.

// Start arms the timeline fault chains and the watchdog up to the given
// horizon. It is idempotent per plane (the chains are armed once) and
// nil-safe. The watchdog runs even at Rate 0 if devices are registered —
// it is hardening, not injection — but a zero-rate plane schedules no
// fault events. With Phases configured, each window arms its own chains
// clamped to the window, so timeline faults respect start/stop times the
// same way the per-event hooks do.
func (p *Plane) Start(until sim.Time) {
	if p == nil || p.started {
		return
	}
	p.started = true
	p.until = until
	if len(p.cfg.Phases) > 0 {
		now := p.eng.Now()
		for _, ph := range p.cfg.Phases {
			if ph.Rate <= 0 {
				continue
			}
			from := ph.From
			if from < now {
				from = now
			}
			end := until
			if ph.Until > 0 && ph.Until < end {
				end = ph.Until
			}
			if from >= end {
				continue
			}
			p.armPhase(ph.Classes, from, end, ph.Rate)
		}
	} else if p.cfg.Rate > 0 {
		p.armPhase(p.cfg.Classes, p.eng.Now(), until, p.cfg.Rate)
	}
	if len(p.devices) > 0 && p.cfg.WatchdogInterval > 0 {
		p.armWatchdog(p.eng.Now() + p.cfg.WatchdogInterval)
	}
}

// armPhase arms one window's timeline chains: a spurious-IRQ chain per
// device and a stall chain per consumer, each confined to [base, end).
// The recovery classes additionally require their cluster hook — the
// class-then-hook guard order means a plane without both draws nothing
// from the RNG, keeping pre-existing configurations bit-identical.
func (p *Plane) armPhase(classes Class, base, end sim.Time, rate float64) {
	if classes&ClassRing != 0 {
		for _, d := range p.devices {
			p.armSpurious(d, base, end, rate)
		}
	}
	if classes&ClassConsumer != 0 {
		for _, c := range p.consumers {
			p.armStall(c, base, end, rate)
		}
	}
	if classes&ClassHostCrash != 0 && p.crashFn != nil {
		p.armCrash(base, end, rate)
	}
	if classes&ClassTorLink != 0 && p.torFn != nil {
		p.armTorLink(base, end, rate)
	}
}

// armSpurious schedules the next spurious interrupt for d after base,
// stopping at end. Gaps are exponential with mean SpuriousEvery/rate, so
// the event frequency scales with the window's rate like the per-event
// probabilities do.
func (p *Plane) armSpurious(d Device, base, end sim.Time, rate float64) {
	gap := p.rng.ExpDuration(sim.Time(float64(p.cfg.SpuriousEvery) / rate))
	at := base + gap + 1
	if at >= end {
		return
	}
	p.eng.At(at, func() {
		p.IRQsSpurious++
		p.injected("spuriousirq")
		d.SpuriousIRQ(at)
		p.armSpurious(d, at, end, rate)
	})
}

// armStall schedules the next consumer stall for c after base, stopping
// at end.
func (p *Plane) armStall(c Consumer, base, end sim.Time, rate float64) {
	gap := p.rng.ExpDuration(sim.Time(float64(p.cfg.StallEvery) / rate))
	at := base + gap + 1
	if at >= end {
		return
	}
	p.eng.At(at, func() {
		p.ConsumerStalls++
		p.injected("consumerstall")
		c.Stall(at, p.cfg.StallDuration)
		p.armStall(c, at, end, rate)
	})
}

// armCrash schedules the next host-crash event after base, stopping at
// end. The chain re-arms from the restart time, so one crash's downtime
// never overlaps the next.
func (p *Plane) armCrash(base, end sim.Time, rate float64) {
	gap := p.rng.ExpDuration(sim.Time(float64(p.cfg.CrashEvery) / rate))
	at := base + gap + 1
	if at >= end {
		return
	}
	restore := at + p.cfg.CrashDowntime
	p.eng.At(at, func() {
		p.HostCrashes++
		p.injected("hostcrash")
		p.crashFn(at, restore)
		p.armCrash(restore, end, rate)
	})
}

// armTorLink schedules the next uplink failure after base, stopping at
// end, re-arming from the restore time.
func (p *Plane) armTorLink(base, end sim.Time, rate float64) {
	gap := p.rng.ExpDuration(sim.Time(float64(p.cfg.TorLinkEvery) / rate))
	at := base + gap + 1
	if at >= end {
		return
	}
	restore := at + p.cfg.TorLinkDowntime
	p.eng.At(at, func() {
		p.TorLinkDowns++
		p.injected("torlinkdown")
		p.torFn(at, restore)
		p.armTorLink(restore, end, rate)
	})
}

// armWatchdog schedules the next stuck-device scan.
func (p *Plane) armWatchdog(at sim.Time) {
	if at >= p.until {
		return
	}
	p.eng.At(at, func() {
		p.rescue(at)
		p.armWatchdog(at + p.cfg.WatchdogInterval)
	})
}

// rescue scans the registered devices and re-arms the IRQ of every stuck
// one, returning how many it rescued.
func (p *Plane) rescue(now sim.Time) int {
	n := 0
	for _, d := range p.devices {
		if !d.Stuck() {
			continue
		}
		p.WatchdogRescues++
		p.injected("watchdogrescue")
		d.RearmIRQ(now)
		n++
	}
	return n
}

// RescueStuck runs one watchdog scan immediately. The drain loop uses it
// after the horizon: a lost IRQ with no follow-up traffic strands packets
// in the ring past the last scheduled scan, and draining to idle must not
// leave them there. Nil-safe; returns the number of devices rescued.
func (p *Plane) RescueStuck(now sim.Time) int {
	if p == nil {
		return 0
	}
	return p.rescue(now)
}
