package fault

import (
	"bytes"
	"testing"

	"prism/internal/sim"
)

// TestNilPlaneIsInert pins the hook contract: every method on a nil plane
// is a no-op returning the pass-through value, so unfaulted builds pay
// nothing and change nothing.
func TestNilPlaneIsInert(t *testing.T) {
	var p *Plane
	frame := []byte{1, 2, 3, 4}
	out, drop, delay := p.WireRx(0, frame)
	if &out[0] != &frame[0] || drop || delay != 0 {
		t.Error("nil plane touched a wire frame")
	}
	if p.RingOverrun(0, "eth0") || p.DropIRQ(0, "eth0") || p.SoftirqStall(0) != 0 {
		t.Error("nil plane injected a fault")
	}
	if p.RescueStuck(0) != 0 {
		t.Error("nil plane rescued something")
	}
	p.Start(0)
	p.Watch(nil)
	p.WatchConsumer(nil)
	if p.Stats() != (Counters{}) {
		t.Error("nil plane has counters")
	}
}

// TestRateZeroPassesThrough: a constructed plane at rate 0 must behave
// exactly like a nil one on the injection paths.
func TestRateZeroPassesThrough(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlane(eng, Config{Seed: 1, Rate: 0})
	frame := []byte{9, 9, 9}
	for i := 0; i < 1000; i++ {
		out, drop, delay := p.WireRx(sim.Time(i), frame)
		if &out[0] != &frame[0] || drop || delay != 0 {
			t.Fatal("rate-0 plane touched a wire frame")
		}
		if p.RingOverrun(sim.Time(i), "eth0") || p.DropIRQ(sim.Time(i), "eth0") {
			t.Fatal("rate-0 plane injected a fault")
		}
	}
	if p.Stats() != (Counters{}) {
		t.Errorf("rate-0 plane counted something: %+v", p.Stats())
	}
}

// TestWireRxDeterministic: two planes with the same seed produce the same
// corruption/drop/jitter sequence; a different seed diverges.
func TestWireRxDeterministic(t *testing.T) {
	run := func(seed uint64) (drops int, sum int) {
		eng := sim.NewEngine(1)
		p := NewPlane(eng, Config{Seed: seed, Rate: 0.5})
		frame := bytes.Repeat([]byte{0xAA}, 64)
		for i := 0; i < 5000; i++ {
			out, drop, delay := p.WireRx(sim.Time(i)*1000, frame)
			if drop {
				drops++
				continue
			}
			sum += int(delay % 251)
			for _, b := range out {
				sum += int(b)
			}
		}
		return
	}
	d1, s1 := run(42)
	d2, s2 := run(42)
	if d1 != d2 || s1 != s2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, s1, d2, s2)
	}
	if d3, s3 := run(7); d1 == d3 && s1 == s3 {
		t.Error("different seeds produced identical fault streams")
	}
	if d1 == 0 {
		t.Error("no link drops at rate 0.5")
	}
}

// TestCorruptionNeverMutatesInput: corruption must copy into scratch, not
// flip bits in the caller's (possibly pooled and reused) buffer.
func TestCorruptionNeverMutatesInput(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlane(eng, Config{Seed: 3, Rate: 1, Classes: ClassCorrupt})
	frame := bytes.Repeat([]byte{0x55}, 128)
	orig := bytes.Clone(frame)
	corrupted := 0
	for i := 0; i < 2000; i++ {
		out, drop, _ := p.WireRx(sim.Time(i), frame)
		if drop {
			t.Fatal("ClassCorrupt alone produced a link drop")
		}
		if !bytes.Equal(frame, orig) {
			t.Fatal("caller's frame mutated in place")
		}
		if !bytes.Equal(out, orig) {
			corrupted++
			if len(out) != len(orig) {
				t.Fatalf("corruption changed frame length: %d != %d", len(out), len(orig))
			}
		}
	}
	if corrupted == 0 {
		t.Error("rate 1 never corrupted a frame")
	}
	if got := p.Stats().Corrupted; got != uint64(corrupted) {
		t.Errorf("Corrupted = %d, observed %d", got, corrupted)
	}
}

// TestClassGating: a plane restricted to one class must never fire the
// others.
func TestClassGating(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlane(eng, Config{Seed: 5, Rate: 1, Classes: ClassRing})
	frame := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 2000; i++ {
		out, drop, delay := p.WireRx(sim.Time(i), frame)
		if drop || delay != 0 || !bytes.Equal(out, frame) {
			t.Fatal("ClassRing plane fired a wire fault")
		}
	}
	c := p.Stats()
	if c.Corrupted != 0 || c.LinkFlaps != 0 || c.Jittered != 0 {
		t.Errorf("wire counters moved under ClassRing: %+v", c)
	}
	overruns := 0
	for i := 0; i < 2000; i++ {
		if p.RingOverrun(sim.Time(i), "eth0") {
			overruns++
		}
	}
	if overruns == 0 {
		t.Error("ClassRing plane never overran the ring")
	}
}

// TestPhaseWindowConfinesInjection: with Phases configured, per-event
// hooks inject only inside their window and pass through (no RNG draws,
// so no divergence) everywhere else.
func TestPhaseWindowConfinesInjection(t *testing.T) {
	eng := sim.NewEngine(1)
	from, until := 10*sim.Millisecond, 20*sim.Millisecond
	p := NewPlane(eng, Config{Seed: 9, Phases: []Phase{{From: from, Until: until, Rate: 1}}})
	frame := bytes.Repeat([]byte{0x33}, 64)
	insideFired, outsideFired := false, false
	for i := 0; i < 30000; i++ {
		now := sim.Time(i) * sim.Microsecond
		out, drop, delay := p.WireRx(now, frame)
		over := p.RingOverrun(now, "eth0")
		irq := p.DropIRQ(now, "eth0")
		stall := p.SoftirqStall(now)
		fired := drop || delay != 0 || !bytes.Equal(out, frame) || over || irq || stall != 0
		switch {
		case now >= from && now < until:
			insideFired = insideFired || fired
		case fired:
			outsideFired = true
		}
	}
	if !insideFired {
		t.Error("rate-1 phase never injected inside its window")
	}
	if outsideFired {
		t.Error("phase plane injected outside its window")
	}
}

// TestPhasePreWindowMatchesUnfaulted: before the first phase opens, a
// windowed plane's hook answers are bit-identical to a nil plane's — the
// quiescent stretches draw nothing from the RNG.
func TestPhasePreWindowMatchesUnfaulted(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlane(eng, Config{Seed: 4, Phases: []Phase{{From: 50 * sim.Millisecond, Rate: 1}}})
	frame := []byte{7, 7, 7, 7}
	for i := 0; i < 5000; i++ {
		now := sim.Time(i) * sim.Microsecond // all < From
		out, drop, delay := p.WireRx(now, frame)
		if &out[0] != &frame[0] || drop || delay != 0 {
			t.Fatal("pre-window WireRx diverged from pass-through")
		}
		if p.RingOverrun(now, "eth0") || p.DropIRQ(now, "eth0") || p.SoftirqStall(now) != 0 {
			t.Fatal("pre-window hook injected")
		}
	}
	c := p.Stats()
	if c.Corrupted != 0 || c.LinkFlaps != 0 || c.OverrunDropped != 0 || c.IRQsLost != 0 || c.SoftirqStalls != 0 {
		t.Errorf("pre-window counters moved: %+v", c)
	}
}

// TestPhaseClassesAndTimeline: phase Classes gate per-event hooks the
// same way flat Classes do, and timeline chains (spurious IRQs) arm only
// inside their phase's window.
func TestPhaseClassesAndTimeline(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlane(eng, Config{
		Seed:          2,
		SpuriousEvery: 100 * sim.Microsecond,
		Phases: []Phase{
			{From: 5 * sim.Millisecond, Until: 15 * sim.Millisecond, Rate: 1, Classes: ClassRing},
		},
	})
	dev := &stubDevice{name: "eth0"}
	p.Watch(dev)
	p.Start(40 * sim.Millisecond)

	// ClassRing only: the wire hook must stay silent even mid-window.
	frame := []byte{1, 2, 3, 4}
	out, drop, delay := p.WireRx(10*sim.Millisecond, frame)
	if drop || delay != 0 || !bytes.Equal(out, frame) {
		t.Error("ClassRing phase fired a wire fault")
	}
	if err := eng.Run(40 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if dev.spurios == 0 {
		t.Error("phase never raised a spurious IRQ inside its window")
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 0 {
		t.Errorf("%d events pending after horizon", eng.Pending())
	}
}

type stubDevice struct {
	name    string
	stuck   bool
	rearms  int
	spurios int
}

func (d *stubDevice) DeviceName() string       { return d.name }
func (d *stubDevice) Stuck() bool              { return d.stuck }
func (d *stubDevice) RearmIRQ(now sim.Time)    { d.rearms++ }
func (d *stubDevice) SpuriousIRQ(now sim.Time) { d.spurios++ }

// TestWatchdogRescuesStuckDevice: the watchdog timeline runs even at rate
// 0 (it is hardening, not injection) and re-arms only stuck devices.
func TestWatchdogRescuesStuckDevice(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlane(eng, Config{Seed: 1, Rate: 0, WatchdogInterval: sim.Millisecond})
	healthy := &stubDevice{name: "eth0"}
	wedged := &stubDevice{name: "eth1", stuck: true}
	p.Watch(healthy)
	p.Watch(wedged)
	p.Start(10 * sim.Millisecond)
	if err := eng.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if healthy.rearms != 0 {
		t.Errorf("healthy device re-armed %d times", healthy.rearms)
	}
	if wedged.rearms == 0 {
		t.Error("stuck device never rescued")
	}
	if got := p.Stats().WatchdogRescues; got != uint64(wedged.rearms) {
		t.Errorf("WatchdogRescues = %d, device saw %d", got, wedged.rearms)
	}
	// Timelines stop at the horizon: the engine must go idle.
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 0 {
		t.Errorf("%d events pending after horizon", eng.Pending())
	}
}
