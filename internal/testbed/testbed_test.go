package testbed

import (
	"strings"
	"testing"

	"prism/internal/obs"
	"prism/internal/overlay"
	"prism/internal/prio"
	"prism/internal/sim"
)

func TestMonolithicTopology(t *testing.T) {
	pipe := obs.NewPipeline("host")
	tb := New(Spec{Split: Monolithic, Seed: 1, Mode: prio.ModeVanilla, Pipe: pipe})
	if tb.Eng == nil {
		t.Fatal("monolithic testbed has no engine")
	}
	if tb.Group != nil || tb.ClientShard != nil || tb.ServerShards != nil {
		t.Error("monolithic testbed grew shards")
	}
	if len(tb.Hosts) != 1 {
		t.Fatalf("hosts = %d, want 1", len(tb.Hosts))
	}
	if tb.Pipe() != pipe {
		t.Error("caller's pipeline not installed")
	}
	if tb.ClientEng() != tb.Eng {
		t.Error("ClientEng is not the single engine")
	}
	if tb.Inject(0) != nil {
		t.Error("monolithic Inject hook should be nil (generators use the host engine)")
	}
}

func TestWireSplitTopology(t *testing.T) {
	tb := New(Spec{Split: WireSplit, Seed: 1, Mode: prio.ModeVanilla})
	if tb.Eng != nil {
		t.Error("wire-split testbed kept a monolithic engine")
	}
	if tb.Group == nil || tb.ClientShard == nil {
		t.Fatal("wire-split testbed has no shards")
	}
	if len(tb.ServerShards) != 1 || len(tb.Hosts) != 1 {
		t.Fatalf("server shards/hosts = %d/%d, want 1/1", len(tb.ServerShards), len(tb.Hosts))
	}
	if tb.Pipe() == nil {
		t.Error("wire split must build its own pipeline when the Spec has none")
	}
	if tb.ClientEng() != tb.ClientShard.Eng {
		t.Error("ClientEng is not the client shard's engine")
	}
	if tb.Inject(0) == nil {
		t.Error("wire-split Inject hook is nil")
	}
	if tb.Host().WireTx == nil {
		t.Error("server host does not transmit over the cross-shard wire")
	}
}

func TestRSSSplitTopology(t *testing.T) {
	tb := New(Spec{Split: RSSSplit, Seed: 1, Mode: prio.ModeBatch, RxQueues: 2})
	if len(tb.ServerShards) != 2 || len(tb.Hosts) != 2 || len(tb.Pipes) != 2 {
		t.Fatalf("shards/hosts/pipes = %d/%d/%d, want 2/2/2",
			len(tb.ServerShards), len(tb.Hosts), len(tb.Pipes))
	}
	for q, s := range tb.ServerShards {
		if want := "rxq"; !strings.HasPrefix(s.Name, want) {
			t.Errorf("shard %d name = %q", q, s.Name)
		}
	}
	// RxQueues < 1 still builds one queue shard.
	if tb := New(Spec{Split: RSSSplit, Seed: 1}); len(tb.Hosts) != 1 {
		t.Errorf("zero RxQueues built %d hosts, want 1", len(tb.Hosts))
	}
}

func TestRSSInjectPanicsOnMisSteeredFlow(t *testing.T) {
	tb := New(Spec{Split: RSSSplit, Seed: 1, RxQueues: 2})
	frame := overlay.HostUDPToServer(4000, 5000, []byte("x"))
	q := tb.QueueFor(frame)
	inject := tb.Inject(1 - q)
	defer func() {
		if recover() == nil {
			t.Error("mis-steered inject did not panic")
		}
	}()
	inject(0, 1000, frame)
}

func TestBatchSizeAppliedAfterBuild(t *testing.T) {
	// The override must be applied to every host after construction, so it
	// wins regardless of where the Costs came from.
	tb := New(Spec{Split: RSSSplit, Seed: 1, RxQueues: 2, BatchSize: 16})
	for i, h := range tb.Hosts {
		if h.Costs.BatchSize != 16 {
			t.Errorf("host %d BatchSize = %d, want 16", i, h.Costs.BatchSize)
		}
	}
}

func TestUnknownSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown split did not panic")
		}
	}()
	New(Spec{Split: Split(99)})
}

func TestMonolithicRunDeterministic(t *testing.T) {
	run := func() uint64 {
		tb := New(Spec{Split: Monolithic, Seed: 7, Mode: prio.ModeVanilla})
		host := tb.Host()
		// Drive a handful of host-path frames through the full pipeline.
		for i := 0; i < 5; i++ {
			frame := overlay.HostUDPToServer(4000, 5000, []byte{byte(i)})
			at := sim.Time(1000 * (i + 1))
			tb.Eng.At(at, func() { host.InjectFromWire(at, frame) })
		}
		if err := tb.Run(0, sim.Time(1_000_000), 1); err != nil {
			t.Fatal(err)
		}
		// End-of-run hygiene: every injected frame is accounted for and the
		// SKB/frame pools are back in balance (strict once the queue drains).
		if err := tb.Drain(); err != nil {
			t.Fatal(err)
		}
		if err := tb.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return host.Rx.Stats().Packets
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same Spec produced different packet counts: %d vs %d", a, b)
	}
}

// TestInvariantsCatchLeaks guards the checker itself: a fabricated pool
// imbalance must be reported, so a silent pass can't hide a broken ledger.
func TestInvariantsCatchLeaks(t *testing.T) {
	tb := New(Spec{Split: Monolithic, Seed: 3, Mode: prio.ModeVanilla})
	host := tb.Host()
	frame := overlay.HostUDPToServer(4000, 5000, []byte("leak"))
	tb.Eng.At(1000, func() { host.InjectFromWire(1000, frame) })
	if err := tb.Run(0, sim.Time(1_000_000), 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	// Fabricate a phantom wire arrival: conservation must break.
	host.RxWire++
	if err := tb.CheckInvariants(); err == nil {
		t.Error("unaccounted wire frame not detected")
	}
	host.RxWire--
	if err := tb.CheckInvariants(); err != nil {
		t.Errorf("balance not restored: %v", err)
	}
}
