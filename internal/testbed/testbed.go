// Package testbed builds the paper's two-machine testbed declaratively:
// one Spec — clients, wire links with their lookahead, NIC configuration,
// engine policy, and shard boundaries — is data, and New wires whichever
// topology it describes:
//
//   - Monolithic: client and server share one engine (the sequential
//     single-machine model every figure harness uses by default).
//   - WireSplit: the client machine runs on one shard, the fully
//     simulated server on another, and the 100 GbE point-to-point link
//     becomes a pair of cross-shard channels whose lookahead is the
//     wire's propagation delay (internal/par).
//   - RSSSplit: the server is additionally sharded per RX queue. Queue
//     q's NIC, softirq engine, processing core, bridge cell, backlog,
//     containers and application threads all live on shard q, because
//     RSS with per-core IRQ affinity makes the queues independent once
//     steering has happened — and steering happens in NIC hardware,
//     before the frame ever touches a simulated CPU. The client steers
//     each frame with the exact RSS hash the NIC would use and sends it
//     over that queue's wire link.
//
// Every topology is deterministic for any worker count; shard RNG
// streams and observability pipelines are derived from the Spec alone.
package testbed

import (
	"fmt"

	"prism/internal/cpu"
	"prism/internal/fault"
	"prism/internal/netdev"
	"prism/internal/nic"
	"prism/internal/obs"
	"prism/internal/overlay"
	"prism/internal/par"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/traffic"
)

// Split selects the shard boundaries of the testbed.
type Split int

const (
	// Monolithic runs everything on one engine.
	Monolithic Split = iota
	// WireSplit cuts the testbed at the wire: client shard | server shard.
	WireSplit
	// RSSSplit additionally shards the server per RX queue:
	// client shard | rxq0 … rxqN-1 shards.
	RSSSplit
)

// Spec declares a whole testbed as data.
type Spec struct {
	// Split selects the shard boundaries (default Monolithic).
	Split Split
	// Seed drives every random choice. The client shard's RNG stream is
	// derived from it (distinct but deterministic).
	Seed uint64
	// Mode is the priority-database mode (flow classification plus the
	// PRISM batch/sync switch).
	Mode prio.Mode
	// Policy optionally overrides the softirq poll policy by registry
	// name; empty derives it from Mode (see overlay.Config).
	Policy string
	// NIC carries interrupt moderation, GRO and priority-ring settings;
	// per-queue identity is filled in by the overlay.
	NIC nic.Config
	// Costs is the CPU cost model; nil uses netdev.DefaultCosts.
	Costs *netdev.Costs
	// CStates / AppCStates configure processing and application cores.
	CStates    []cpu.CState
	AppCStates []cpu.CState
	// BatchSize, when positive, overrides the NAPI batch weight
	// (Costs.BatchSize) on every host — the ablation knob.
	BatchSize int
	// RxQueues is the number of NIC RX queues. Monolithic and WireSplit
	// hosts own all of them; RSSSplit builds one single-queue host per
	// queue, each on its own shard. 0 means 1.
	RxQueues int
	// Pipe instruments a Monolithic or WireSplit testbed's host (the
	// caller names it). RSSSplit and WireSplit testbeds without a Pipe
	// build their own shard-local pipelines ("server", "rxq%d"), keeping
	// collection deterministic for any worker count.
	Pipe *obs.Pipeline

	// Fault, when set, builds a deterministic fault-injection plane from
	// this configuration and threads it through every layer of the host.
	// Monolithic only: a plane is engine-local state, and the sharded
	// splits would need one plane per shard with split RNG streams to stay
	// deterministic — New panics rather than silently diverge.
	Fault *fault.Config
	// Shed enables the priority-aware overload drop policy (NIC ring
	// admission and softirq stage transitions shed low-priority first).
	Shed bool
}

// clientSeed derives the client shard's RNG stream from the testbed seed;
// it only needs to be deterministic and distinct from the server's.
func clientSeed(seed uint64) uint64 { return seed ^ 0xc11e47 }

// queueSeed derives RX-queue shard q's RNG stream.
func queueSeed(seed uint64, q int) uint64 { return seed + uint64(q)*0x9e3779b9 }

// Testbed is one fully wired instance of a Spec.
type Testbed struct {
	Spec Spec

	// Eng is the single engine of a Monolithic testbed; nil when sharded.
	Eng *sim.Engine

	// Group, ClientShard and ServerShards are set when sharded. WireSplit
	// has one server shard; RSSSplit one per RX queue.
	Group        *par.Group
	ClientShard  *par.Shard
	ServerShards []*par.Shard

	// Hosts are the server hosts: one for Monolithic/WireSplit, one per
	// queue for RSSSplit (each single-queue).
	Hosts []*overlay.Host
	// Pipes are the per-host observability pipelines (nil entries when
	// uninstrumented); merge them in order to recover the aggregate view.
	Pipes []*obs.Pipeline
	// Client is the client machine's reply demux.
	Client *traffic.Client

	// Planes holds the fault planes built from Spec.Fault (one per host;
	// empty when not injecting). Run arms their timelines.
	Planes []*fault.Plane

	toServer []*par.Link
	horizon  sim.Time

	ckptEvery  sim.Time
	ckptTicker *par.Ticker
}

// New wires the testbed a Spec describes.
func New(spec Spec) *Testbed {
	if spec.Fault != nil && spec.Split != Monolithic {
		panic("testbed: fault injection requires a Monolithic split")
	}
	t := &Testbed{Spec: spec}
	switch spec.Split {
	case Monolithic:
		t.buildMonolithic(spec)
	case WireSplit:
		t.buildWireSplit(spec)
	case RSSSplit:
		t.buildRSSSplit(spec)
	default:
		panic(fmt.Sprintf("testbed: unknown split %d", spec.Split))
	}
	if spec.BatchSize > 0 {
		for _, h := range t.Hosts {
			h.Costs.BatchSize = spec.BatchSize
		}
	}
	return t
}

func (spec Spec) hostConfig(rxQueues int, pipe *obs.Pipeline) overlay.Config {
	return overlay.Config{
		RxQueues:   rxQueues,
		Mode:       spec.Mode,
		Policy:     spec.Policy,
		Costs:      spec.Costs,
		CStates:    spec.CStates,
		AppCStates: spec.AppCStates,
		NIC:        spec.NIC,
		Obs:        pipe,
	}
}

// BuildHost wires one server host from the Spec onto the given engine —
// the per-host building block of multi-host topologies (internal/cluster),
// which derive one Spec per host (distinct seed and fault stream) and
// connect the resulting hosts over fabric links instead of a single
// client wire. The host is always instrumented: the returned pipeline is
// spec.Pipe when set, otherwise a fresh one labeled name, so per-host
// collection stays shard-local and deterministic at any worker count. The
// fault plane is non-nil only when spec.Fault is set; its timeline is NOT
// started — the caller arms it with Plane.Start once the run's horizon is
// known.
func (spec Spec) BuildHost(eng *sim.Engine, name string) (*overlay.Host, *obs.Pipeline, *fault.Plane) {
	pipe := spec.Pipe
	if pipe == nil {
		pipe = obs.NewPipeline(name)
	}
	cfg := spec.hostConfig(spec.RxQueues, pipe)
	cfg.Shed = spec.Shed
	var plane *fault.Plane
	if spec.Fault != nil {
		plane = fault.NewPlane(eng, *spec.Fault)
		plane.SetObs(pipe)
		cfg.Fault = plane
	}
	return overlay.NewHost(eng, cfg), pipe, plane
}

func (t *Testbed) buildMonolithic(spec Spec) {
	eng := sim.NewEngine(spec.Seed)
	cfg := spec.hostConfig(spec.RxQueues, spec.Pipe)
	cfg.Shed = spec.Shed
	if spec.Fault != nil {
		plane := fault.NewPlane(eng, *spec.Fault)
		plane.SetObs(spec.Pipe)
		cfg.Fault = plane
		t.Planes = []*fault.Plane{plane}
	}
	host := overlay.NewHost(eng, cfg)
	t.Eng = eng
	t.Hosts = []*overlay.Host{host}
	t.Pipes = []*obs.Pipeline{spec.Pipe}
	t.Client = traffic.NewClient(host)
}

func (t *Testbed) buildWireSplit(spec Spec) {
	g := par.NewGroup()
	cs := g.Add("client", sim.NewEngine(clientSeed(spec.Seed)))
	ss := g.Add("server", sim.NewEngine(spec.Seed))
	pipe := spec.Pipe
	if pipe == nil {
		pipe = obs.NewPipeline("server")
	}
	host := overlay.NewHost(ss.Eng, spec.hostConfig(spec.RxQueues, pipe))
	client := traffic.NewClient(host)
	t.Group, t.ClientShard, t.ServerShards = g, cs, []*par.Shard{ss}
	t.Hosts = []*overlay.Host{host}
	t.Pipes = []*obs.Pipeline{pipe}
	t.Client = client

	wire := host.Costs.WireLatency
	t.toServer = []*par.Link{g.Connect(cs, ss, wire, func(at sim.Time, payload any) {
		host.InjectFromWire(at, payload.([]byte))
	})}
	toClient := g.Connect(ss, cs, wire, func(at sim.Time, payload any) {
		client.Deliver(at, payload.([]byte))
	})
	// Outbound frames leave over the cross-shard wire instead of being
	// scheduled on the server's own engine.
	host.WireTx = func(now, arrive sim.Time, frame []byte) {
		toClient.Send(now, arrive-now, frame)
	}
}

func (t *Testbed) buildRSSSplit(spec Spec) {
	queues := spec.RxQueues
	if queues < 1 {
		queues = 1
	}
	g := par.NewGroup()
	cs := g.Add("client", sim.NewEngine(clientSeed(spec.Seed)))
	t.Group, t.ClientShard = g, cs
	for q := 0; q < queues; q++ {
		ss := g.Add(fmt.Sprintf("rxq%d", q), sim.NewEngine(queueSeed(spec.Seed, q)))
		pipe := obs.NewPipeline(fmt.Sprintf("rxq%d", q))
		host := overlay.NewHost(ss.Eng, spec.hostConfig(1, pipe))
		t.ServerShards = append(t.ServerShards, ss)
		t.Hosts = append(t.Hosts, host)
		t.Pipes = append(t.Pipes, pipe)
	}
	// One logical client machine demuxes every queue's replies; the
	// attach below is to the first host only for construction, the real
	// return path is the per-queue links.
	t.Client = traffic.NewClient(t.Hosts[0])
	wire := t.Hosts[0].Costs.WireLatency
	for q := 0; q < queues; q++ {
		host := t.Hosts[q]
		t.toServer = append(t.toServer, g.Connect(cs, t.ServerShards[q], wire,
			func(at sim.Time, payload any) {
				host.InjectFromWire(at, payload.([]byte))
			}))
		back := g.Connect(t.ServerShards[q], cs, wire,
			func(at sim.Time, payload any) {
				t.Client.Deliver(at, payload.([]byte))
			})
		host.WireTx = func(now, arrive sim.Time, frame []byte) {
			back.Send(now, arrive-now, frame)
		}
	}
}

// Host returns the (first) server host — the whole server for
// Monolithic/WireSplit, queue 0's slice for RSSSplit.
func (t *Testbed) Host() *overlay.Host { return t.Hosts[0] }

// Pipe returns the (first) host's observability pipeline, if any.
func (t *Testbed) Pipe() *obs.Pipeline { return t.Pipes[0] }

// ClientEng returns the engine client-side generators schedule on.
func (t *Testbed) ClientEng() *sim.Engine {
	if t.ClientShard != nil {
		return t.ClientShard.Eng
	}
	return t.Eng
}

// QueueFor reports which RX queue (and, under RSSSplit, which shard) RSS
// steers a frame to.
func (t *Testbed) QueueFor(frame []byte) int {
	return overlay.RSSQueue(frame, len(t.Hosts))
}

// Inject returns the generator hook (PingPong.Inject and friends) routing
// client→server frames onto queue q's host. Monolithic testbeds return
// nil: generators default to scheduling on the host's own engine. Under
// RSSSplit the hook panics if a frame's RSS hash disagrees with the
// placement — the decomposition would silently diverge from the
// single-host model otherwise.
func (t *Testbed) Inject(q int) func(now, arrive sim.Time, frame []byte) {
	if t.Group == nil {
		return nil
	}
	link := t.toServer[q]
	if t.Spec.Split != RSSSplit {
		return func(now, arrive sim.Time, frame []byte) {
			link.Send(now, arrive-now, frame)
		}
	}
	return func(now, arrive sim.Time, frame []byte) {
		if got := t.QueueFor(frame); got != q {
			panic(fmt.Sprintf("testbed: flow placed on queue shard %d but RSS steers it to %d", q, got))
		}
		link.Send(now, arrive-now, frame)
	}
}

// SetCheckpoint arms a virtual-time checkpoint callback: fn observes the
// testbed every interval of virtual time, at points where every engine is
// quiescent, so it may read hosts, pipelines and counters race-free. It
// must not mutate simulation state. Checkpoints are pure observation and
// provably leave the run bit-identical: a Monolithic run is sliced into
// consecutive Engine.Run horizons (the event schedule is untouched —
// running to t1 then t2 executes exactly the events one run to t2 would),
// and sharded runs hook the par barrier on the coordinator goroutine
// without altering the window schedule. Call before Run.
func (t *Testbed) SetCheckpoint(interval sim.Time, fn func(at sim.Time)) {
	if interval <= 0 || fn == nil {
		t.ckptEvery, t.ckptTicker = 0, nil
		if t.Group != nil {
			t.Group.OnBarrier = nil
		}
		return
	}
	t.ckptEvery = interval
	t.ckptTicker = par.NewTicker(interval, fn)
	if t.Group != nil {
		// All events strictly before windowEnd have executed at a barrier,
		// so every interval multiple ≤ windowEnd-1 is fully covered.
		t.Group.OnBarrier = func(windowEnd sim.Time) { t.ckptTicker.Advance(windowEnd - 1) }
	}
}

// Run executes warmup + duration (with the given worker count when
// sharded), resetting every host's processing-core utilization window at
// the end of warmup so utilization reflects only the measured interval.
func (t *Testbed) Run(warmup, duration sim.Time, workers int) error {
	t.horizon = warmup + duration
	for _, h := range t.Hosts {
		h := h
		h.Eng.At(warmup, func() { h.ProcCore.ResetWindow(warmup) })
	}
	for _, p := range t.Planes {
		// Fault timelines stop scheduling past the horizon, so a
		// post-run Drain terminates.
		p.Start(t.horizon)
	}
	if t.Group == nil {
		if t.ckptTicker != nil {
			for at := t.ckptEvery; at < t.horizon; at += t.ckptEvery {
				if err := t.Eng.Run(at); err != nil {
					return err
				}
				t.ckptTicker.Advance(at)
			}
		}
		if err := t.Eng.Run(t.horizon); err != nil {
			return err
		}
		t.ckptTicker.Flush(t.horizon)
		return nil
	}
	if err := t.Group.Run(t.horizon, workers); err != nil {
		return err
	}
	t.ckptTicker.Flush(t.horizon)
	return nil
}

// Drain runs a Monolithic testbed to event-queue idle after the horizon,
// interleaving watchdog scans: a lost IRQ with no follow-up traffic
// strands ring packets with no event left to move them, and only a rescue
// re-arms the device. Callers must stop their traffic generators first or
// the engine never goes idle.
func (t *Testbed) Drain() error {
	if t.Eng == nil {
		return fmt.Errorf("testbed: Drain requires a Monolithic testbed")
	}
	for i := 0; ; i++ {
		if err := t.Eng.RunUntilIdle(); err != nil {
			return err
		}
		rescued := 0
		for _, p := range t.Planes {
			rescued += p.RescueStuck(t.Eng.Now())
		}
		if rescued == 0 {
			return nil
		}
		if i >= 64 {
			return fmt.Errorf("testbed: drain did not converge after %d watchdog rounds", i)
		}
	}
}
