package testbed

import (
	"fmt"
	"strings"

	"prism/internal/fault"
	"prism/internal/overlay"
	"prism/internal/sim"
	"prism/internal/socket"
)

// The invariant checker closes the loop on fault injection: whatever the
// plane did to a run — corrupted frames, overrun rings, lost interrupts,
// stalled consumers — every wire frame must still be accounted for
// (conserved into a delivery, an attributed drop, or a visible in-flight
// position) and every pooled object must come back. The equations hold at
// any point between events; at quiescence the in-flight terms must all be
// zero, which is the zero-leak assertion.

// hostLedger aggregates one host's conservation terms.
type hostLedger struct {
	wire        uint64 // frames arrived from the wire
	linkDropped uint64 // lost to injected link flaps (pre-DMA)
	overruns    uint64 // lost to injected DMA overruns (pre-ring)
	ringDrops   uint64 // rejected by full RX rings
	dmad        uint64 // admitted to a ring
	merged      uint64 // absorbed into GRO super-SKBs
	nicShed     uint64 // evicted from rings by the shed policy
	rxDelivered uint64 // softirq delivery verdicts
	rxDropped   uint64 // softirq drop verdicts (handlers, full queues, shed)

	delayed    int // jitter-delayed frames awaiting their deferred DMA
	queued     int // packets sitting in device input queues
	pend       int // deliveries scheduled but not yet run at a socket
	sockQueued int // messages buffered in socket rcvbufs
	heldFrames int // frames parked under buffered socket messages

	skbOut      int    // SKBs checked out of the NIC pools
	frameOut    int    // frame buffers checked out of the NIC pools
	delayPool   int    // frame buffers checked out of the delay pool
	sockAttempt uint64 // socket push attempts (received + rcvbuf drops)
}

func ledger(h *overlay.Host, plane *fault.Plane) hostLedger {
	var l hostLedger
	l.wire = h.RxWire
	if plane != nil {
		c := plane.Stats()
		l.linkDropped = c.LinkDropped
	}
	for _, n := range h.NICs {
		l.overruns += n.Overruns
		l.ringDrops += n.Dev.LowQ.Dropped + n.Dev.HighQ.Dropped
		l.dmad += n.DMAd
		l.merged += n.Merged
		l.nicShed += n.ShedDrops
		l.queued += n.Dev.QueuedPackets()
		s, f := n.PoolOutstanding()
		l.skbOut += s
		l.frameOut += f
	}
	for _, rx := range h.Rxs {
		st := rx.Stats()
		l.rxDelivered += st.Delivered
		l.rxDropped += st.Dropped
	}
	for _, br := range h.BridgeCells {
		l.queued += br.Dev.QueuedPackets()
	}
	for _, bl := range h.Backlogs {
		l.queued += bl.Dev.QueuedPackets()
	}
	tables := []*socket.Table{h.HostSockets}
	for _, c := range h.Containers {
		tables = append(tables, c.Sockets)
	}
	for _, tbl := range tables {
		tbl.Each(func(s *socket.Socket) {
			l.sockAttempt += s.Receivd + s.Drops
			l.sockQueued += s.Queued()
			l.heldFrames += s.HeldFrames()
		})
	}
	l.delayed = h.DelayedInFlight()
	l.delayPool = h.DelayPoolOutstanding()
	l.pend = int(l.rxDelivered) - int(l.sockAttempt)
	return l
}

// check verifies one host's ledger. strict additionally demands that every
// in-flight term is zero — the post-drain zero-leak assertion.
func (l hostLedger) check(name string, strict bool) error {
	// (1) Wire conservation: every arrived frame is pre-DMA-dropped,
	// parked for deferred DMA, rejected by a full ring, or admitted.
	if l.wire != l.linkDropped+l.overruns+uint64(l.delayed)+l.ringDrops+l.dmad {
		return fmt.Errorf("%s: wire conservation broken: %d arrived != %d flap + %d overrun + %d delayed + %d ring-reject + %d admitted",
			name, l.wire, l.linkDropped, l.overruns, l.delayed, l.ringDrops, l.dmad)
	}
	// (2) Ring conservation: every admitted packet is delivered, dropped
	// (with its reason accounted by softirq or the shed policy), absorbed
	// by GRO, or still queued in a device.
	if l.dmad != l.rxDelivered+l.rxDropped+l.nicShed+l.merged+uint64(l.queued) {
		return fmt.Errorf("%s: ring conservation broken: %d admitted != %d delivered + %d dropped + %d shed + %d merged + %d queued",
			name, l.dmad, l.rxDelivered, l.rxDropped, l.nicShed, l.merged, l.queued)
	}
	// (3) Delivery handoff: softirq cannot have handed sockets more
	// packets than it delivered.
	if l.pend < 0 {
		return fmt.Errorf("%s: sockets saw %d pushes but softirq delivered only %d",
			name, l.sockAttempt, l.rxDelivered)
	}
	// (4) SKB balance: every checked-out SKB is queued in a device or
	// riding a scheduled delivery.
	if l.skbOut != l.queued+l.pend {
		return fmt.Errorf("%s: SKB pool leak: %d outstanding != %d queued + %d pending delivery",
			name, l.skbOut, l.queued, l.pend)
	}
	// (5) Frame balance: every checked-out frame backs a live SKB or a
	// buffered socket message.
	if l.frameOut != l.skbOut+l.heldFrames {
		return fmt.Errorf("%s: frame pool leak: %d outstanding != %d SKB-backed + %d socket-held",
			name, l.frameOut, l.skbOut, l.heldFrames)
	}
	// (6) Delay pool: exactly one parked buffer per delayed frame.
	if l.delayPool != l.delayed {
		return fmt.Errorf("%s: delay pool leak: %d outstanding != %d delayed frames",
			name, l.delayPool, l.delayed)
	}
	if strict {
		if l.delayed != 0 || l.queued != 0 || l.pend != 0 || l.sockQueued != 0 ||
			l.heldFrames != 0 || l.skbOut != 0 || l.frameOut != 0 {
			return fmt.Errorf("%s: drained run still holds state: delayed=%d queued=%d pend=%d sockQueued=%d heldFrames=%d skbOut=%d frameOut=%d",
				name, l.delayed, l.queued, l.pend, l.sockQueued, l.heldFrames, l.skbOut, l.frameOut)
		}
	}
	return nil
}

// CheckHosts verifies packet conservation and pool balance for each host.
// planes pairs with hosts by index (nil or shorter when not injecting).
// strict additionally requires every in-flight term to be zero — use it
// after a Drain.
func CheckHosts(hosts []*overlay.Host, planes []*fault.Plane, strict bool) error {
	for i, h := range hosts {
		var plane *fault.Plane
		if i < len(planes) {
			plane = planes[i]
		}
		name := fmt.Sprintf("host%d", i)
		if len(hosts) == 1 {
			name = "host"
		}
		if err := ledger(h, plane).check(name, strict); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants verifies packet conservation and pool balance for the
// testbed's hosts. On a Monolithic testbed whose event queue has drained,
// the strict zero-leak form is applied automatically.
func (t *Testbed) CheckInvariants() error {
	strict := t.Eng != nil && t.Eng.Pending() == 0
	return CheckHosts(t.Hosts, t.Planes, strict)
}

// ClusterTerms aggregates the fabric-level conservation terms of a
// multi-host topology: what entered the fabric, where it left, and what
// is still riding it. The per-host ledgers account for everything after
// InjectFromWire; these terms close the loop across hosts.
type ClusterTerms struct {
	// Injected counts frames handed to the fabric: generator sends
	// admitted at an ingress host plus server replies leaving over
	// WireTx.
	Injected uint64
	// ToHosts counts fabric frames delivered into a host's wire-RX path;
	// ToClients counts reply frames delivered to an ingress host's
	// client demux.
	ToHosts   uint64
	ToClients uint64
	// Dropped counts frames the fabric discarded: egress-queue tail
	// drops, low-priority shed victims, unroutable frames, and
	// misdeliveries.
	Dropped uint64
	// InFlight counts frames still inside the fabric: queued at or being
	// serialized by a switch egress port, buffered on a cross-shard
	// link, or waiting in a shard inbox past the horizon.
	InFlight int

	// CrashDropped is the subset of Dropped absorbed at fail-stopped
	// hosts' wires; EpochDropped the subset that crossed a routing-epoch
	// swap in flight. Both are informational breakouts — they are already
	// inside Dropped.
	CrashDropped uint64
	EpochDropped uint64

	// PerHost / PerSwitch break the aggregate terms down per component;
	// a failed cluster equation prints them so the residual is
	// attributable. Optional — older callers leave them empty.
	PerHost   []HostTerms
	PerSwitch []SwitchTerms
	// Migrations carries one reconciliation record per recovery
	// re-placement; CheckCluster verifies each one's service counters
	// are consistent across the old and new replica.
	Migrations []MigrationTerm
}

// HostTerms is one host's fabric-boundary counters.
type HostTerms struct {
	Name       string
	Injected   uint64
	FromFabric uint64
	ToClients  uint64
	Misrouted  uint64
	CrashRx    uint64
	CrashTx    uint64
	EpochDrops uint64
}

// SwitchTerms is one switch's closed conservation equation: every
// arrival is forwarded, dropped, or still inside the switch.
type SwitchTerms struct {
	Name      string
	Rx        uint64
	Forwarded uint64
	Dropped   uint64
	InFlight  int
}

// MigrationTerm reconciles one migrated flow across its replicas: the
// old host had served ServedAtSwap requests when the routing epoch
// swapped at At; Served is the live total across old and new replicas,
// Sent the generator's emissions, Received the client-side deliveries.
type MigrationTerm struct {
	Flow             string
	OldHost, NewHost int
	At               sim.Time
	ServedAtSwap     uint64
	Sent             uint64
	Served           uint64
	Received         uint64
}

// residualTables renders the per-host and per-switch breakdowns appended
// to a failed cluster equation.
func residualTables(terms ClusterTerms) string {
	var b strings.Builder
	if len(terms.PerHost) > 0 {
		b.WriteString("\nper-host terms (injected / from-fabric / to-clients / misrouted / crash-rx / crash-tx / epoch-drops):")
		for _, h := range terms.PerHost {
			fmt.Fprintf(&b, "\n  %s: %d / %d / %d / %d / %d / %d / %d",
				h.Name, h.Injected, h.FromFabric, h.ToClients, h.Misrouted, h.CrashRx, h.CrashTx, h.EpochDrops)
		}
	}
	if len(terms.PerSwitch) > 0 {
		b.WriteString("\nper-switch terms (rx / forwarded / dropped / in-flight):")
		for _, s := range terms.PerSwitch {
			fmt.Fprintf(&b, "\n  %s: %d / %d / %d / %d", s.Name, s.Rx, s.Forwarded, s.Dropped, s.InFlight)
		}
	}
	return b.String()
}

// CheckCluster verifies a multi-host topology: each host's own ledger
// must balance, the per-host wire counts must sum to the fabric's
// delivered total, every frame that entered the fabric must be
// delivered, dropped, or visibly in flight, each switch's own arrivals
// must balance, and every migration record must reconcile across its
// replicas. strict additionally demands an empty fabric — use it after
// the cluster has settled. Conservation holds across host crashes and
// routing-epoch swaps because the boundary cases are counted, not
// discarded: a down host's wire absorbs frames into CrashDropped, a
// stale-epoch arrival lands in EpochDropped, and both are inside
// Dropped. A failed cluster equation appends the per-host and
// per-switch residual tables when the caller provided them.
func CheckCluster(hosts []*overlay.Host, planes []*fault.Plane, terms ClusterTerms, strict bool) error {
	if err := CheckHosts(hosts, planes, strict); err != nil {
		return err
	}
	var wire uint64
	for _, h := range hosts {
		wire += h.RxWire
	}
	if wire != terms.ToHosts {
		return fmt.Errorf("cluster: fabric handoff broken: hosts saw %d wire frames but the fabric delivered %d%s",
			wire, terms.ToHosts, residualTables(terms))
	}
	if terms.InFlight < 0 {
		return fmt.Errorf("cluster: negative in-flight count %d", terms.InFlight)
	}
	if terms.Injected != terms.ToHosts+terms.ToClients+terms.Dropped+uint64(terms.InFlight) {
		return fmt.Errorf("cluster: fabric conservation broken: %d injected != %d to-hosts + %d to-clients + %d dropped + %d in-flight%s",
			terms.Injected, terms.ToHosts, terms.ToClients, terms.Dropped, terms.InFlight, residualTables(terms))
	}
	if terms.CrashDropped+terms.EpochDropped > terms.Dropped {
		return fmt.Errorf("cluster: drop breakouts exceed the total: %d crash + %d epoch > %d dropped",
			terms.CrashDropped, terms.EpochDropped, terms.Dropped)
	}
	for _, s := range terms.PerSwitch {
		if s.InFlight < 0 {
			return fmt.Errorf("cluster: %s: negative in-flight count %d", s.Name, s.InFlight)
		}
		if s.Rx != s.Forwarded+s.Dropped+uint64(s.InFlight) {
			return fmt.Errorf("cluster: %s conservation broken: %d rx != %d forwarded + %d dropped + %d in-flight%s",
				s.Name, s.Rx, s.Forwarded, s.Dropped, s.InFlight, residualTables(terms))
		}
	}
	for _, m := range terms.Migrations {
		if m.ServedAtSwap > m.Served {
			return fmt.Errorf("cluster: migration %s (host%02d->host%02d at %d): old replica had served %d at the swap but the replicas total only %d",
				m.Flow, m.OldHost, m.NewHost, m.At, m.ServedAtSwap, m.Served)
		}
		if m.Served > m.Sent {
			return fmt.Errorf("cluster: migration %s (host%02d->host%02d at %d): replicas served %d of only %d sent",
				m.Flow, m.OldHost, m.NewHost, m.At, m.Served, m.Sent)
		}
		if m.Received > m.Served {
			return fmt.Errorf("cluster: migration %s (host%02d->host%02d at %d): client received %d but the replicas served only %d",
				m.Flow, m.OldHost, m.NewHost, m.At, m.Received, m.Served)
		}
	}
	if strict && terms.InFlight != 0 {
		return fmt.Errorf("cluster: settled fabric still holds %d frames%s", terms.InFlight, residualTables(terms))
	}
	return nil
}
